(* Command-line driver for the reproduction: run circuits through the
   Figure-2 flow and print the paper's tables, plus a fault-injection
   selftest of the flow guards. *)

open Cmdliner

let circuit_arg =
  let doc = "Benchmark circuit: s38417, pcore_a or pcore_b." in
  Arg.(value & opt string "s38417" & info [ "c"; "circuit" ] ~docv:"NAME" ~doc)

let scale_arg =
  let doc = "Scale factor applied to the circuit profile (default: per-circuit)." in
  Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"F" ~doc)

let levels_arg =
  let doc = "Test point percentages to sweep." in
  Arg.(value & opt (list int) [ 0; 1; 2; 3; 4; 5 ] & info [ "levels" ] ~docv:"L" ~doc)

let atpg_arg =
  let doc = "Run ATPG (needed for Table 1; slower)." in
  Arg.(value & flag & info [ "atpg" ] ~doc)

let tables_arg =
  let doc = "Tables to print (1, 2 and/or 3)." in
  Arg.(value & opt (list int) [ 2; 3 ] & info [ "tables" ] ~docv:"T" ~doc)

let svg_arg =
  let doc = "Write Figure-3 SVG renderings of the baseline layout to this directory." in
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"DIR" ~doc)

let def_arg =
  let doc = "Write the baseline placement as a DEF file." in
  Arg.(value & opt (some string) None & info [ "def" ] ~docv:"FILE" ~doc)

let lib_arg =
  let doc = "Export the standard-cell library as a Liberty (.lib) file." in
  Arg.(value & opt (some string) None & info [ "liberty" ] ~docv:"FILE" ~doc)

let policy_arg =
  let doc =
    "Stage-failure policy: fail-fast stops the sweep at the first failed layout, \
     recover retries seed-sensitive stages with a reseeded RNG, degrade keeps going \
     and flags the failed level as a degraded row."
  in
  let parse s =
    match Core.Guard.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg ("unknown policy " ^ s ^ " (fail-fast|recover|degrade)"))
  in
  let policy_conv =
    Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Core.Guard.policy_name p))
  in
  Arg.(value & opt policy_conv Core.Guard.Fail_fast & info [ "policy" ] ~docv:"POLICY" ~doc)

let retries_arg =
  let doc = "Retry budget for --policy recover." in
  Arg.(value & opt int Core.Guard.default_retries & info [ "retries" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Record a span trace of the run and write it as Chrome trace-event JSON \
     (open in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Write the kernel metrics registry (counters, gauges, histograms) as JSON." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let verbose_arg =
  let doc = "Print per-stage span timings and non-zero metrics after the sweep." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel kernels (fault simulation, STA \
     propagation, sweep fan-out). Results are bit-identical for every \
     value; 1 (the default) runs fully sequentially."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_arg =
  let doc =
    "Persist the content-addressed stage cache in this directory (created \
     if missing). A repeated sweep is then served from cache -- tables and \
     metrics stay byte-identical to a cold, cache-less run; only the \
     cache.* counters report the hits."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let sta_arg =
  let doc =
    "How the STA stage computes its (identical) timing report: $(b,full) runs \
     whole-design analysis per level; $(b,incremental) compiles a flat timing \
     graph and level-propagates it, keeping the graph alive for downstream ECO \
     retiming. Reports, tables and kernel metrics are byte-identical either way."
  in
  Arg.(value
       & opt (enum [ ("full", Core.Pipeline.Full_sta);
                     ("incremental", Core.Pipeline.Incremental_sta) ])
           Core.Pipeline.Full_sta
       & info [ "sta" ] ~docv:"MODE" ~doc)

let repair_arg =
  let doc =
    "Run the post-route timing-repair ECO stage after STA: buffer insertion, \
     gate up/down-sizing and commutative-pin swapping on the near-critical \
     set, each trial individually re-timed and reverted exactly unless it \
     improves WNS/TNS. Table 3 output then also prints the \
     repaired-vs-unrepaired comparison."
  in
  Arg.(value & flag & info [ "repair" ] ~doc)

let lint_flag_arg =
  let doc =
    "Pre-flight every generated design through the lint engine before the first \
     stage; error-severity findings abort the level with a typed lint-failed \
     stage fault instead of letting the flow mis-build."
  in
  Arg.(value & flag & info [ "lint" ] ~doc)

(* ---- telemetry plane flags (shared by run/selftest/profile/serve) ---- *)

let log_file_arg =
  let doc = "Append structured JSONL log records (timestamp, level, domain, job and \
             span correlation fields) to this file." in
  Arg.(value & opt (some string) None & info [ "log-file" ] ~docv:"FILE" ~doc)

let log_level_arg =
  let doc = "Minimum log level: debug, info, warn or error." in
  Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let flight_arg =
  let doc =
    "Write a flight-recorder post-mortem (the last events before the failure) to \
     this file when a stage faults, a job exhausts its retries or the daemon dies \
     on a signal."
  in
  Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)

let prom_arg =
  let doc =
    "Write the metrics registry as a Prometheus text-format exposition snapshot \
     (atomically; the daemon republishes it about once a second)."
  in
  Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"FILE" ~doc)

let telemetry_term =
  let setup log_file log_level flight =
    (match Core.Log.level_of_string log_level with
     | Some l -> Core.Log.set_level l
     | None ->
       Format.eprintf "tpi_flow: unknown log level %s (debug|info|warn|error)@."
         log_level);
    (match log_file with Some path -> Core.Log.to_file path | None -> ());
    Core.Recorder.set_dump_path flight
  in
  Term.(const setup $ log_file_arg $ log_level_arg $ flight_arg)

let store_of_dir = Option.map (fun dir -> Core.Stage_cache.create ~dir ())

(* a pool only when asked for: -j 1 never spawns a domain *)
let with_jobs jobs f =
  if jobs <= 1 then f None else Core.Pool.with_pool ~domains:jobs (fun p -> f (Some p))

(* validate everything that can fail *before* any side-effecting export,
   so a bad flag never leaves partial output files behind *)
let validated ?scale ~circuit ~levels () =
  match Core.Experiment.spec_for ?scale circuit with
  | exception Invalid_argument msg -> Error msg
  | spec ->
    (match List.find_opt (fun l -> l < 0 || l > 100) levels with
     | Some l -> Error (Printf.sprintf "test point level %d%% out of range 0-100" l)
     | None -> Ok spec)

(* guarded sweep: under fail-fast the sweep stops at the first failed
   level; under recover/degrade every level is attempted and failures
   become degraded rows *)
let guarded_sweep ?pool ?cache ?lint ?sta_mode ?repair spec ~policy ~retries ~atpg
    levels =
  let rec loop acc = function
    | [] -> List.rev acc
    | tp_pct :: rest ->
      let g =
        Core.Experiment.run_one_guarded ?pool ?cache ?lint ?sta_mode ?repair ~policy
          ~retries ~with_atpg:atpg spec ~tp_pct
      in
      let failed = g.Core.Experiment.g_report.Core.Guard.result = None in
      if failed && policy = Core.Guard.Fail_fast then List.rev (g :: acc)
      else loop (g :: acc) rest
  in
  loop [] levels

let run () circuit scale levels atpg tables svg_dir def_file lib_file policy retries
    trace_file metrics_file prom_file verbose jobs cache_dir lint sta_mode repair =
  match validated ?scale ~circuit ~levels () with
  | Error msg ->
    Format.eprintf "tpi_flow: %s@." msg;
    2
  | Ok spec ->
  (match lib_file with
   | Some path ->
     Core.Liberty.write_file path Core.Library.default;
     Printf.printf "wrote %s\n" path
   | None -> ());
  if trace_file <> None then Core.Trace.enable ();
  let cache = store_of_dir cache_dir in
  let grows =
    with_jobs jobs (fun pool ->
        guarded_sweep ?pool ?cache ~lint ~sta_mode ~repair spec ~policy ~retries ~atpg
          levels)
  in
  let rows = Core.Experiment.completed_rows grows in
  if rows <> [] then begin
    if List.mem 1 tables && atpg then print_string (Core.Report.table1 rows);
    if List.mem 2 tables then print_string (Core.Report.table2 rows);
    if List.mem 3 tables then begin
      print_string (Core.Report.table3 rows);
      if repair then print_string (Core.Report.table3_repaired rows)
    end
  end;
  print_string (Core.Report.guarded_summary grows);
  (match (svg_dir, rows) with
   | Some dir, row :: _ ->
     let r = row.Core.Experiment.result in
     let pl = r.Core.Pipeline.placement in
     Core.Render.write_file (Filename.concat dir "floorplan.svg")
       (Core.Render.svg_floorplan pl.Core.Place.fp);
     Core.Render.write_file (Filename.concat dir "placement.svg")
       (Core.Render.svg_placement pl);
     Core.Render.write_file (Filename.concat dir "routed.svg")
       (Core.Render.svg_routed pl r.Core.Pipeline.route);
     Printf.printf "wrote Figure-3 SVGs to %s\n" dir
   | _ -> ());
  (match (def_file, rows) with
   | Some path, row :: _ ->
     Core.Defout.write_file path row.Core.Experiment.result.Core.Pipeline.placement;
     Printf.printf "wrote %s\n" path
   | _ -> ());
  if verbose then begin
    List.iter
      (fun g -> Format.printf "%a@." Core.Guard.pp_report g.Core.Experiment.g_report)
      grows;
    Format.printf "metrics:@.%a@." Core.Metrics.pp ()
  end;
  (match trace_file with
   | Some path ->
     Core.Trace.write_chrome path;
     Printf.printf "wrote %s (%d spans)\n" path (List.length (Core.Trace.spans ()))
   | None -> ());
  (match metrics_file with
   | Some path ->
     Core.Metrics.write_json path;
     Printf.printf "wrote %s\n" path
   | None -> ());
  (match prom_file with
   | Some path ->
     Core.Export.write_prom path;
     Printf.printf "wrote %s\n" path
   | None -> ());
  match (policy, Core.Experiment.degraded_rows grows) with
  | Core.Guard.Fail_fast, g :: _ ->
    (match g.Core.Experiment.g_report.Core.Guard.error with
     | Some e -> Format.eprintf "%a@." Core.Guard.pp_stage_error e
     | None -> ());
    1
  | _ -> 0

let selftest_ffs_arg =
  let doc = "Flip-flops in the injection-target circuit." in
  Arg.(value & opt int 40 & info [ "ffs" ] ~docv:"N" ~doc)

let selftest_gates_arg =
  let doc = "Gates in the injection-target circuit." in
  Arg.(value & opt int 500 & info [ "gates" ] ~docv:"N" ~doc)

let selftest () ffs gates jobs =
  Printf.printf "fault-injection matrix (%d classes):\n" (List.length Core.Inject.all);
  let outcomes = with_jobs jobs (fun pool -> Core.Inject.selftest ?pool ~ffs ~gates ()) in
  List.iter (fun o -> Format.printf "  %a@." Core.Inject.pp_outcome o) outcomes;
  let recover_ok = Core.Inject.recover_converges () in
  let degrade_ok = Core.Inject.degrade_keeps_partials () in
  Printf.printf "policy recover: placement crash reseeds and converges: %s\n"
    (if recover_ok then "ok" else "FAILED");
  Printf.printf "policy degrade: extraction crash keeps placed/routed partials: %s\n"
    (if degrade_ok then "ok" else "FAILED");
  let detected = List.length (List.filter (fun o -> o.Core.Inject.detected) outcomes) in
  Printf.printf "%d/%d classes detected and classified\n" detected (List.length outcomes);
  Printf.printf "service fault matrix (%d classes):\n"
    (List.length Core.Inject.service_all);
  let service = Core.Serve_chaos.selftest () in
  List.iter (fun o -> Format.printf "  %a@." Core.Inject.pp_service_outcome o) service;
  let retry_ok = Core.Serve_chaos.retry_recovers () in
  Printf.printf "retry/backoff: transient first attempt completes on retry: %s\n"
    (if retry_ok then "ok" else "FAILED");
  let s_detected =
    List.length (List.filter (fun o -> o.Core.Inject.s_detected) service)
  in
  Printf.printf "%d/%d service classes detected and classified\n" s_detected
    (List.length service);
  if Core.Recorder.dumps () > 0 then
    Printf.printf "flight recorder: %d post-mortem dump(s) written\n"
      (Core.Recorder.dumps ());
  if
    Core.Inject.all_detected outcomes && recover_ok && degrade_ok
    && Core.Inject.all_service_detected service && retry_ok
  then 0
  else 1

(* profile: run a traced sweep and print the self-time kernel ranking *)
let profile () circuit scale levels atpg policy retries trace_file jobs =
  match validated ?scale ~circuit ~levels () with
  | Error msg ->
    Format.eprintf "tpi_flow: %s@." msg;
    2
  | Ok spec ->
    Core.Trace.enable ();
    let grows =
      with_jobs jobs (fun pool -> guarded_sweep ?pool spec ~policy ~retries ~atpg levels)
    in
    let completed = List.length (Core.Experiment.completed_rows grows) in
    Format.printf "profile: %s, levels %s, %d/%d levels completed, %d spans@.@."
      circuit
      (String.concat "," (List.map string_of_int levels))
      completed (List.length grows)
      (List.length (Core.Trace.spans ()));
    Format.printf "%a@." Core.Trace.pp_profile ();
    (* where each domain's self time went: the -j N diagnosis table *)
    Format.printf "@.per-domain self time:@.%a@." Core.Trace.pp_domains ();
    (match trace_file with
     | Some path ->
       Core.Trace.write_chrome path;
       Printf.printf "wrote %s\n" path
     | None -> ());
    if completed = List.length grows then 0 else 1

let run_term =
  Term.(const run $ telemetry_term $ circuit_arg $ scale_arg $ levels_arg $ atpg_arg
        $ tables_arg $ svg_arg $ def_arg $ lib_arg $ policy_arg $ retries_arg
        $ trace_arg $ metrics_arg $ prom_arg $ verbose_arg $ jobs_arg $ cache_arg
        $ lint_flag_arg $ sta_arg $ repair_arg)

let selftest_cmd =
  let doc = "Run the guarded-flow fault-injection selftest (11 mutation classes)." in
  Cmd.v (Cmd.info "selftest" ~doc)
    Term.(const selftest $ telemetry_term $ selftest_ffs_arg $ selftest_gates_arg
          $ jobs_arg)

let profile_cmd =
  let doc =
    "Run a traced sweep and print the kernels ranked by self time (time spent in a \
     span minus time spent in its children), with call counts and allocation totals."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const profile $ telemetry_term $ circuit_arg $ scale_arg $ levels_arg
          $ atpg_arg $ policy_arg $ retries_arg $ trace_arg $ jobs_arg)

(* ---- standalone lint driver ---- *)

let lint_target_arg =
  let doc =
    "What to lint: a gate-level Verilog netlist file, or a benchmark circuit \
     name (s38417, pcore_a, pcore_b). Anything that exists on disk or ends in \
     .v is treated as a file."
  in
  Arg.(value & pos 0 string "s38417" & info [] ~docv:"TARGET" ~doc)

let waive_arg =
  let doc =
    "Apply this waiver file: diagnostics whose content-addressed fingerprint \
     appears in it are suppressed (still visible in --json/--sarif output as \
     suppressed results)."
  in
  Arg.(value & opt (some string) None & info [ "waive" ] ~docv:"FILE" ~doc)

let lint_json_arg =
  let doc = "Write the report in the machine JSON shape (DESIGN.md \xc2\xa76.5)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let sarif_arg =
  let doc = "Write the report as SARIF 2.1.0 (code-scanning upload format)." in
  Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)

let write_waivers_arg =
  let doc =
    "Baseline: write a waiver file covering every diagnostic of this run, so a \
     follow-up run with --waive on the unchanged design exits clean."
  in
  Arg.(value & opt (some string) None & info [ "write-waivers" ] ~docv:"FILE" ~doc)

let strict_arg =
  let doc = "Fail (exit 1) on warnings too, not only on errors." in
  Arg.(value & flag & info [ "strict" ] ~doc)

let lint_design target scale =
  if Sys.file_exists target || Filename.check_suffix target ".v" then
    match Core.Verilog.parse_file target with
    | d -> Ok d
    | exception Core.Verilog.Parse_error (line, msg) ->
      Error (Printf.sprintf "%s:%d: %s" target line msg)
    | exception Sys_error msg -> Error msg
  else
    match validated ?scale ~circuit:target ~levels:[] () with
    | Error msg -> Error msg
    | Ok spec ->
      Ok (Core.Bench.by_name spec.Core.Experiment.circuit ~scale:spec.Core.Experiment.scale)

let lint () target scale waive_file json_file sarif_file write_waivers strict =
  match lint_design target scale with
  | Error msg ->
    Format.eprintf "tpi_flow lint: %s@." msg;
    2
  | Ok d ->
    let waivers =
      match waive_file with
      | None -> Ok Core.Lint_waiver.empty
      | Some path -> Core.Lint_waiver.load path
    in
    match waivers with
    | Error msg ->
      Format.eprintf "tpi_flow lint: %s@." msg;
      2
    | Ok waivers ->
      let report = Core.Lint_engine.run ~waivers d in
      print_string (Core.Lint_emit.text d report);
      (match json_file with
       | Some path ->
         Core.Json.write_file path (Core.Lint_emit.json d report);
         Printf.printf "wrote %s\n" path
       | None -> ());
      (match sarif_file with
       | Some path ->
         Core.Json.write_file path (Core.Lint_emit.sarif d report);
         Printf.printf "wrote %s\n" path
       | None -> ());
      (match write_waivers with
       | Some path ->
         Core.Lint_waiver.save path (Core.Lint_engine.baseline report);
         Printf.printf "wrote %s (%d waiver(s))\n" path
           (List.length (Core.Lint_engine.baseline report).Core.Lint_waiver.entries)
       | None -> ());
      if report.Core.Lint_engine.errors > 0
         || (strict && report.Core.Lint_engine.warnings > 0)
      then 1
      else 0

let lint_cmd =
  let doc =
    "Run the static-analysis rule packs (structural, clock/scan, TPI/timing) over \
     a netlist or benchmark circuit and report typed diagnostics as text, JSON \
     and SARIF. Exit 0 when clean or fully waived, 1 on findings, 2 on usage \
     errors."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const lint $ telemetry_term $ lint_target_arg $ scale_arg $ waive_arg
          $ lint_json_arg $ sarif_arg $ write_waivers_arg $ strict_arg)

(* ---- flow as a service ---- *)

let socket_arg =
  let doc = "Unix socket path the daemon listens on / the client dials." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let queue_arg =
  let doc =
    "Bounded job-queue capacity; a submit past it is rejected immediately \
     with a typed backpressure error instead of blocking or buffering."
  in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)

let serve () metrics_file prom_file verbose jobs cache_dir lint socket_path
    queue_capacity =
  if queue_capacity < 1 then begin
    Format.eprintf "tpi_flow: queue capacity must be at least 1@.";
    2
  end
  else
    match
      Core.Serve_daemon.run
        { Core.Serve_daemon.socket_path; cache_dir; jobs;
          queue_capacity; metrics_file; prom_file; verbose; lint }
    with
    | code -> code
    | exception Unix.Unix_error (err, _, _) ->
      Format.eprintf "tpi_flow serve: cannot listen on %s: %s@." socket_path
        (Unix.error_message err);
      2

let client_id_arg =
  let doc = "Job id the daemon tags this job's events with." in
  Arg.(value & opt string "cli" & info [ "id" ] ~docv:"ID" ~doc)

let priority_arg =
  let doc = "Queue priority, 0 (default) to 9 (most urgent)." in
  Arg.(value & opt int 0 & info [ "priority" ] ~docv:"P" ~doc)

let deadline_arg =
  let doc = "Per-job deadline in milliseconds; past it the job is cancelled." in
  Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let ping_arg =
  let doc = "Just check the daemon answers, print nothing else." in
  Arg.(value & flag & info [ "ping" ] ~doc)

let stats_arg =
  let doc = "Print the daemon's service counters as JSON and exit." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let client_prom_arg =
  let doc = "Print the daemon's live Prometheus text exposition and exit." in
  Arg.(value & flag & info [ "prom" ] ~doc)

let client circuit scale levels atpg tables policy repair socket_path id priority
    deadline_ms ping stats prom =
  match Core.Serve_client.connect ~socket_path with
  | exception Unix.Unix_error (err, _, _) ->
    Format.eprintf "tpi_flow client: cannot reach %s: %s@." socket_path
      (Unix.error_message err);
    2
  | c ->
    Fun.protect ~finally:(fun () -> Core.Serve_client.close c)
      (fun () ->
        if ping then
          if Core.Serve_client.ping c then begin
            Printf.printf "pong\n";
            0
          end
          else begin
            Format.eprintf "tpi_flow client: no pong from %s@." socket_path;
            1
          end
        else if prom then
          match Core.Serve_client.prometheus c with
          | Some text ->
            print_string text;
            0
          | None ->
            Format.eprintf "tpi_flow client: no metrics from %s@." socket_path;
            1
        else if stats then
          match Core.Serve_client.stats c with
          | Some j ->
            print_endline (Core.Json.to_string ~pretty:true j);
            0
          | None ->
            Format.eprintf "tpi_flow client: no stats from %s@." socket_path;
            1
        else begin
          let req =
            Core.Serve_client.submit_line ~id ~priority ?deadline_ms ~circuit ?scale
              ~levels ~atpg ~repair ~tables
              ~policy:(Core.Guard.policy_name policy) ()
          in
          let o = Core.Serve_client.run_job c req in
          match (o.Core.Serve_client.output, o.Core.Serve_client.error) with
          | Some output, _ ->
            print_string output;
            0
          | None, Some (cls, detail) ->
            Format.eprintf "tpi_flow client: %s: %s@." cls detail;
            if o.Core.Serve_client.rejected then 2 else 1
          | None, None ->
            Format.eprintf "tpi_flow client: connection closed without a result@.";
            1
        end)

(* ---- top: live dashboard over the daemon's Prometheus exposition ---- *)

let interval_arg =
  let doc = "Polling interval in milliseconds." in
  Arg.(value & opt int 1000 & info [ "interval-ms" ] ~docv:"MS" ~doc)

let iterations_arg =
  let doc = "Number of polls before exiting; 0 polls until the daemon goes away." in
  Arg.(value & opt int 0 & info [ "n"; "iterations" ] ~docv:"K" ~doc)

let top_render samples =
  let open Core.Export in
  let c name = match find samples (sanitize_name name) with Some v -> v | None -> 0.0 in
  Printf.printf "uptime %.0fs  queue %d  inflight %d\n" (c "serve.uptime_s")
    (int_of_float (c "serve.queue_depth"))
    (int_of_float (c "serve.jobs_inflight"));
  Printf.printf
    "jobs: %d submitted, %d completed, %d failed, %d cancelled, %d rejected, %d retries\n"
    (int_of_float (c "serve.jobs_submitted"))
    (int_of_float (c "serve.jobs_completed"))
    (int_of_float (c "serve.jobs_failed"))
    (int_of_float (c "serve.jobs_cancelled"))
    (int_of_float (c "serve.jobs_rejected"))
    (int_of_float (c "serve.retries"));
  let quant name q =
    let buckets = buckets_of samples (sanitize_name name) in
    quantile ~buckets ~q
  in
  Printf.printf "%-16s %10s %10s %8s\n" "stage latency" "p50 ms" "p95 ms" "n";
  List.iter
    (fun stage ->
      let sname = Core.Guard.stage_name stage in
      let metric = "serve.stage_ms." ^ sname in
      match find samples (sanitize_name metric ^ "_count") with
      | Some n when n > 0.0 ->
        let p v = match v with Some x -> Printf.sprintf "%10.1f" x | None -> "         -" in
        Printf.printf "%-16s %s %s %8d\n" sname
          (p (quant metric 0.50)) (p (quant metric 0.95)) (int_of_float n)
      | _ -> ())
    Core.Guard.all_stages;
  (match quant "serve.job_ms" 0.50 with
   | Some p50 ->
     let p95 = Option.value ~default:p50 (quant "serve.job_ms" 0.95) in
     Printf.printf "job latency: p50 <= %.0f ms, p95 <= %.0f ms\n" p50 p95
   | None -> ());
  flush stdout

let top socket_path interval_ms iterations =
  match Core.Serve_client.connect ~socket_path with
  | exception Unix.Unix_error (err, _, _) ->
    Format.eprintf "tpi_flow top: cannot reach %s: %s@." socket_path
      (Unix.error_message err);
    2
  | c ->
    Fun.protect ~finally:(fun () -> Core.Serve_client.close c)
      (fun () ->
        let rec poll k =
          match Core.Serve_client.prometheus c with
          | None ->
            Format.eprintf "tpi_flow top: daemon went away@.";
            if k = 0 then 1 else 0
          | Some text ->
            if k > 0 then print_newline ();
            top_render (Core.Export.parse text);
            if iterations > 0 && k + 1 >= iterations then 0
            else begin
              Thread.delay (float_of_int (max 1 interval_ms) /. 1000.0);
              poll (k + 1)
            end
        in
        poll 0)

let top_cmd =
  let doc =
    "Poll a running daemon's live Prometheus exposition and render queue depth, \
     in-flight jobs, retry counts and per-stage latency quantiles."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const top $ socket_arg $ interval_arg $ iterations_arg)

let serve_cmd =
  let doc =
    "Run the flow as a long-lived daemon on a Unix socket: JSONL jobs in, streamed \
     events out, with admission control (bounded queue, typed backpressure), per-job \
     deadlines and cancellation, retry with exponential backoff for transient stage \
     faults, client-disconnect reclamation and graceful drain on SIGTERM/SIGINT. \
     Served results are byte-identical to the one-shot CLI."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const serve $ telemetry_term $ metrics_arg $ prom_arg $ verbose_arg
          $ jobs_arg $ cache_arg $ lint_flag_arg $ socket_arg $ queue_arg)

let client_cmd =
  let doc =
    "Submit one job to a running daemon and print its output (byte-identical to \
     running the same flags one-shot), or --ping / --stats it."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const client $ circuit_arg $ scale_arg $ levels_arg $ atpg_arg $ tables_arg
          $ policy_arg $ repair_arg $ socket_arg $ client_id_arg $ priority_arg
          $ deadline_arg $ ping_arg $ stats_arg $ client_prom_arg)

let cmd =
  let doc = "Reproduce 'Impact of Test Point Insertion on Silicon Area and Timing during Layout' (DATE 2004)" in
  Cmd.group ~default:run_term (Cmd.info "tpi_flow" ~doc)
    [ selftest_cmd; profile_cmd; lint_cmd; serve_cmd; client_cmd; top_cmd ]

let () =
  (* a client vanishing mid-write must surface as a typed error, never as
     a SIGPIPE process death *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  exit
    (try Cmd.eval' cmd
     with Sys_error msg ->
       (try Format.eprintf "tpi_flow: io-error: %s@." msg with Sys_error _ -> ());
       3)
