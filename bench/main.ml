(* Benchmark harness: regenerates every table and figure of the paper and
   (with `--perf`) times the flow's computational kernels with Bechamel.

     dune exec bench/main.exe                 regenerate everything
     dune exec bench/main.exe -- table1       just Table 1 (runs ATPG)
     dune exec bench/main.exe -- table2 table3 fig1 fig2 fig3 ablations
     dune exec bench/main.exe -- --full       paper-scale circuits (slow)
     dune exec bench/main.exe -- --perf       Bechamel micro-benchmarks

   Absolute numbers come from the synthetic substrate (see DESIGN.md); the
   shapes — who wins, by what rough factor, where things level off — are
   what reproduce the paper. *)

let say fmt = Format.printf (fmt ^^ "@.")

(* ---- experiment scales ----
   Table 1 re-runs ATPG per layout, so it defaults to a reduced scale;
   Tables 2/3 run the physical flow at the documented default scales. *)
let table1_scale = ref 0.35
let area_scale : float option ref = ref None

let circuits = [ "s38417"; "pcore_a"; "pcore_b" ]

let table1 () =
  say "=== Table 1: impact of TPI on test data (ATPG scale %.2f) ===" !table1_scale;
  List.iter
    (fun c ->
      let rows = Core.Experiment.sweep ~with_atpg:true ~scale:!table1_scale c in
      print_string (Core.Report.table1 rows);
      print_newline ())
    circuits

let area_rows = Hashtbl.create 4

let rows_for c =
  match Hashtbl.find_opt area_rows c with
  | Some rows -> rows
  | None ->
    let rows = Core.Experiment.sweep ~with_atpg:false ?scale:!area_scale c in
    Hashtbl.replace area_rows c rows;
    rows

let table2 () =
  say "=== Table 2: impact of TPI on silicon area ===";
  List.iter
    (fun c ->
      print_string (Core.Report.table2 (rows_for c));
      print_newline ())
    circuits

let table3 () =
  say "=== Table 3: impact of TPI on timing (area-only optimisation) ===";
  List.iter
    (fun c ->
      print_string (Core.Report.table3 (rows_for c));
      print_newline ())
    circuits

let fig1 () =
  say "=== Figure 1: transparent scan flip-flop modes ===";
  List.iter
    (fun (te, tr) ->
      let t = Core.Tsff.create ~init:true () in
      let mode =
        match Core.Tsff.mode_of ~te ~tr with
        | Core.Tsff.Application -> "application "
        | Core.Tsff.Scan_shift -> "scan shift  "
        | Core.Tsff.Scan_capture -> "scan capture"
        | Core.Tsff.Flush -> "flush       "
      in
      let q d ti = Core.Tsff.output t ~d ~ti ~te ~tr in
      say "TE=%d TR=%d %s  Q(D=0,TI=1)=%d  Q(D=1,TI=0)=%d" (Bool.to_int te)
        (Bool.to_int tr) mode
        (Bool.to_int (q false true))
        (Bool.to_int (q true false)))
    [ (false, false); (true, true); (false, true); (true, false) ];
  say ""

let fig2 () =
  say "=== Figure 2: tool flow, stage by stage (s38417 at 0.25x, 1%% TP) ===";
  let t0 = Unix.gettimeofday () in
  let row = Core.quickstart ~circuit:"s38417" ~scale:0.25 ~tp_percent:1.0 () in
  let r = row.Core.Experiment.result in
  say "1. TPI + scan insertion      : %d test points, %d scan cells" r.Core.Pipeline.tp_count
    r.Core.Pipeline.stats.Core.Stats.scan_ffs;
  say "2. floorplanning + placement : %d rows, %.0f um2 core"
    (Core.Floorplan.num_rows r.Core.Pipeline.placement.Core.Place.fp)
    (Core.Floorplan.core_area r.Core.Pipeline.placement.Core.Place.fp);
  say "3. scan reorder + ATPG       : %.0f -> %.0f um scan wire; %d patterns"
    r.Core.Pipeline.reorder.Core.Scan_reorder.wirelength_before
    r.Core.Pipeline.reorder.Core.Scan_reorder.wirelength_after
    (match r.Core.Pipeline.atpg with Some o -> Core.Patgen.num_patterns o | None -> 0);
  say "4. ECO + CTS + filler + route: %d clock buffers, %.2f%% filler, %.0f um wire"
    r.Core.Pipeline.cts.Core.Cts.buffers
    r.Core.Pipeline.filler.Core.Filler.filler_area_pct
    r.Core.Pipeline.route.Core.Route.total_wirelength;
  say "5-6. extraction + STA        : %s"
    (match r.Core.Pipeline.sta.Core.Sta_analysis.worst with
     | Some p -> Printf.sprintf "T_cp %.0f ps (F_max %.1f MHz)" p.Core.Sta_analysis.t_cp
                   p.Core.Sta_analysis.fmax_mhz
     | None -> "-");
  say "total %.1fs" (Unix.gettimeofday () -. t0);
  say ""

let fig3 () =
  say "=== Figure 3: layout after floorplanning / placement / routing ===";
  let rows = rows_for "s38417" in
  match rows with
  | [] -> ()
  | row :: _ ->
    let r = row.Core.Experiment.result in
    let pl = r.Core.Pipeline.placement in
    Core.Render.write_file "fig3a_floorplan.svg" (Core.Render.svg_floorplan pl.Core.Place.fp);
    Core.Render.write_file "fig3b_placement.svg" (Core.Render.svg_placement pl);
    Core.Render.write_file "fig3c_routed.svg"
      (Core.Render.svg_routed pl r.Core.Pipeline.route);
    say "wrote fig3a_floorplan.svg, fig3b_placement.svg, fig3c_routed.svg";
    say "placement density map:";
    print_string (Core.Render.ascii_density ~cols:60 pl);
    say ""

let ablations () =
  say "=== Ablation (paper section 5): excluding test points from critical paths ===";
  let spec = Core.Experiment.spec_for ~scale:0.35 "s38417" in
  let unrestricted = Core.Experiment.run_one ~with_atpg:true spec ~tp_pct:2 in
  let restricted =
    Core.Experiment.blocked_critical_nets spec ~tp_pct:2 ~slack_margin_ps:400.0
  in
  let describe name (row : Core.Experiment.row) =
    let r = row.Core.Experiment.result in
    let tcp =
      match r.Core.Pipeline.sta.Core.Sta_analysis.worst with
      | Some p -> p.Core.Sta_analysis.t_cp
      | None -> 0.0
    in
    let tps_on_path =
      match r.Core.Pipeline.sta.Core.Sta_analysis.worst with
      | Some p -> p.Core.Sta_analysis.test_points_on_path
      | None -> 0
    in
    say "%-14s: %d TPs, %d patterns, FC %.2f%%, T_cp %.0f ps, %d TPs on critical path"
      name r.Core.Pipeline.tp_count
      (match r.Core.Pipeline.atpg with Some o -> Core.Patgen.num_patterns o | None -> 0)
      (match r.Core.Pipeline.atpg with
       | Some o -> 100.0 *. o.Core.Patgen.fault_coverage
       | None -> 0.0)
      tcp tps_on_path
  in
  describe "unrestricted" unrestricted;
  describe "path-excluded" restricted;
  say "";
  say "=== Ablation (paper section 5): timing optimisation vs. area ===";
  let d = Core.Bench.s38417_like ~scale:0.35 () in
  ignore (Core.Tpi_select.run d ~count:6);
  ignore (Scan.Replace.run d);
  let fp = Core.Floorplan.create d in
  let pl = Core.Place.run d fp in
  let tf = Flow.Timingfix.run pl in
  say "before: T_cp %.0f ps, cell area %.0f um2" tf.Flow.Timingfix.t_cp_before
    tf.Flow.Timingfix.cell_area_before;
  say "after %d rounds (%d cells upsized): T_cp %.0f ps (%.1f%% faster), cell area %.0f um2 (+%.2f%%)"
    tf.Flow.Timingfix.rounds tf.Flow.Timingfix.upsized_cells tf.Flow.Timingfix.t_cp_after
    (100.0 *. (1.0 -. (tf.Flow.Timingfix.t_cp_after /. tf.Flow.Timingfix.t_cp_before)))
    tf.Flow.Timingfix.cell_area_after
    (100.0 *. ((tf.Flow.Timingfix.cell_area_after /. tf.Flow.Timingfix.cell_area_before) -. 1.0));
  say "";
  say "=== Ablation: layout-driven scan reorder (step 3) ===";
  let row = List.nth (rows_for "s38417") 0 in
  let r = row.Core.Experiment.result in
  say "scan wiring without reordering: %.0f um"
    r.Core.Pipeline.reorder.Core.Scan_reorder.wirelength_before;
  say "scan wiring with reordering:    %.0f um"
    r.Core.Pipeline.reorder.Core.Scan_reorder.wirelength_after;
  say ""

(* BENCH_perf.json is written by more than one bench mode (`--perf`, `serve`);
   each mode merges its own sections into the existing file instead of
   clobbering the others' *)
let read_bench_fields () =
  if Sys.file_exists "BENCH_perf.json" then
    match
      Obs.Json.parse (In_channel.with_open_bin "BENCH_perf.json" In_channel.input_all)
    with
    | Ok (Obs.Json.Obj fields) -> fields
    | _ -> []
  else []

let write_bench_sections updates =
  let fields =
    List.fold_left
      (fun acc (k, v) -> List.remove_assoc k acc @ [ (k, v) ])
      (read_bench_fields ()) updates
  in
  Obs.Json.write_file "BENCH_perf.json" (Obs.Json.Obj fields)

(* ---- Bechamel kernels: one per table/figure ---- *)
let perf () =
  let open Bechamel in
  let tiny () = Core.Bench.tiny ~ffs:40 ~gates:500 () in
  let table1_kernel =
    Test.make ~name:"table1/atpg" (Staged.stage (fun () ->
        let m = Core.Cmodel.build (tiny ()) in
        ignore (Core.Patgen.run m)))
  in
  let table2_kernel =
    Test.make ~name:"table2/place+route" (Staged.stage (fun () ->
        let d = tiny () in
        ignore (Core.Scan_chains.plan d (Core.Scan_chains.Max_length 20));
        let fp = Core.Floorplan.create d in
        let pl = Core.Place.run d fp in
        ignore (Core.Route.run pl)))
  in
  let table3_kernel =
    Test.make ~name:"table3/extract+sta" (Staged.stage (fun () ->
        let d = tiny () in
        let fp = Core.Floorplan.create d in
        let pl = Core.Place.run d fp in
        let rt = Core.Route.run pl in
        let rc = Core.Extract.run pl rt in
        ignore (Core.Sta_analysis.run pl rc)))
  in
  let fig1_kernel =
    Test.make ~name:"fig1/tsff-sim" (Staged.stage (fun () ->
        let t = Core.Tsff.create () in
        for k = 0 to 999 do
          let b = k land 1 = 0 in
          ignore (Core.Tsff.output t ~d:b ~ti:(not b) ~te:b ~tr:(not b));
          Core.Tsff.clock t ~d:b ~ti:(not b) ~te:b
        done))
  in
  let fig2_kernel =
    Test.make ~name:"fig2/full-pipeline" (Staged.stage (fun () ->
        let d = tiny () in
        let options =
          { Core.Pipeline.default_options with
            Core.Pipeline.run_atpg = false;
            chain_config = Core.Scan_chains.Max_length 20 }
        in
        ignore (Core.Pipeline.run ~options d)))
  in
  let fig3_kernel =
    Test.make ~name:"fig3/render" (Staged.stage (fun () ->
        let d = tiny () in
        let fp = Core.Floorplan.create d in
        let pl = Core.Place.run d fp in
        ignore (Core.Render.svg_placement pl)))
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ minor_allocated; monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 2.0) () in
    Benchmark.all cfg instances test
  in
  let analyze instance results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |])
      instance results
  in
  let estimates instance results =
    let ols = analyze instance results in
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> (name, est) :: acc
        | _ -> acc)
      ols []
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"kernel" [ test ]) in
      let times = estimates Toolkit.Instance.monotonic_clock results in
      let words = estimates Toolkit.Instance.minor_allocated results in
      List.iter
        (fun (name, ns) ->
          let w = match List.assoc_opt name words with Some w -> w | None -> 0.0 in
          say "%-24s %12.3f ms/run %14.0f minor words/run" name (ns /. 1e6) w;
          rows := (name, ns, w) :: !rows)
        times)
    [ table1_kernel; table2_kernel; table3_kernel; fig1_kernel; fig2_kernel; fig3_kernel ];
  (* machine-readable trajectory point: one JSON object per kernel, so
     successive runs of `--perf` can be diffed / plotted over time *)
  let kernels =
    List.rev_map
      (fun (name, ns, w) ->
        Obs.Json.Obj
          [ ("name", Obs.Json.String name);
            ("ns_per_run", Obs.Json.Float ns);
            ("minor_words_per_run", Obs.Json.Float w) ])
      !rows
  in
  (* ---- seq vs par: the deterministic multicore layer ----
     Bechamel's per-run model fits poorly once a kernel spans domains, so
     these are plain best-of-N wall-clock measurements. The recorded
     host_cores is the honest context for the speedup: on a single-core
     host the parallel variants pay the fork-join overhead and win
     nothing; the fan-out only converts into wall-clock gain with real
     cores underneath. *)
  let time_best ~reps f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (Sys.opaque_identity (f ()));
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let par_jobs = 4 in
  let host_cores = Domain.recommended_domain_count () in
  let m = Core.Cmodel.build (Core.Bench.tiny ~ffs:150 ~gates:2500 ()) in
  let faults = (Atpg.Fault.build m).Atpg.Fault.representatives in
  let nf = Array.length faults in
  let words =
    let rng = Util.Rng.create 0x9E37 in
    Array.init (Array.length m.Core.Cmodel.sources) (fun _ -> Util.Rng.int64 rng)
  in
  let masks_seq = Array.make nf 0L and masks_par = Array.make nf 0L in
  let sim = Atpg.Fsim.create m in
  let fsim_seq () =
    Atpg.Fsim.set_sources sim words;
    for i = 0 to nf - 1 do
      masks_seq.(i) <- Atpg.Fsim.detect_mask sim faults.(i)
    done
  in
  let t_fsim_seq = time_best ~reps:5 fsim_seq in
  let t_fsim_par =
    Par.Pool.with_pool ~domains:par_jobs (fun p ->
        let sims = Array.init (Par.Pool.size p) (fun _ -> Atpg.Fsim.create m) in
        time_best ~reps:5 (fun () ->
            Par.Pool.iter_slots p ~n:nf (fun ~slot ~lo ~hi ->
                let s = sims.(slot) in
                Atpg.Fsim.set_sources s words;
                for i = lo to hi - 1 do
                  masks_par.(i) <- Atpg.Fsim.detect_mask s faults.(i)
                done)))
  in
  assert (masks_seq = masks_par);
  let sweep_seq () = Core.Experiment.sweep ~with_atpg:false ~scale:0.06 "s38417" in
  let t_sweep_seq = time_best ~reps:3 sweep_seq in
  let t_sweep_par =
    Par.Pool.with_pool ~domains:par_jobs (fun p ->
        time_best ~reps:3 (fun () ->
            Core.Experiment.sweep ~pool:p ~with_atpg:false ~scale:0.06 "s38417"))
  in
  (* ---- cold vs warm: the content-addressed stage cache ----
     The same sweep, once uncached and once against a memory-only store;
     time_best's untimed warmup rep is what fills the store, so the timed
     reps are all served from cache. The tables must not notice. *)
  let cache_store = Core.Stage_cache.create () in
  let sweep_cached () =
    Core.Experiment.sweep ~cache:cache_store ~with_atpg:false ~scale:0.06 "s38417"
  in
  let t_sweep_warm = time_best ~reps:3 sweep_cached in
  assert (Core.Report.table2 (sweep_seq ()) = Core.Report.table2 (sweep_cached ()));
  let speedup seq par = if par > 0.0 then seq /. par else 0.0 in
  (* ---- incremental vs full STA: one ECO test point, cone retime vs
     whole-design re-extract + re-time ----
     The headline number of the incremental timing layer: on a finished
     layout, splicing one more test point in as an ECO (split net,
     control nets and leaf clock re-routed, cone worklist-retimed)
     against what a full-STA flow pays for the same edit — Extract.run +
     Sta_analysis.run over the whole design. Exactness is asserted at
     the end: the retimed context must agree with a from-scratch
     analysis of its own placement. *)
  let eco_r =
    let options =
      { Core.Pipeline.default_options with
        Core.Pipeline.run_atpg = false;
        tp_percent = 2.0;
        chain_config = Core.Scan_chains.Max_length 100;
        sta_mode = Core.Pipeline.Incremental_sta }
    in
    Core.Pipeline.run ~options (Core.Bench.by_name "s38417" ~scale:0.12)
  in
  let ctx =
    Core.Retime.create eco_r.Core.Pipeline.placement eco_r.Core.Pipeline.route
      eco_r.Core.Pipeline.rc
  in
  let eco_nets =
    (* cell-driven, non-TSFF-driven nets with sinks, strided across the design *)
    let d = Core.Retime.design ctx in
    let nn = Core.Design.num_nets d in
    let acc = ref [] and i = ref 0 in
    let step = max 1 (nn / 64) in
    while List.length !acc < 9 && !i < nn do
      let n = Core.Design.net d !i in
      (match n.Core.Design.driver with
       | Core.Design.Cell_pin (iid, _)
         when n.Core.Design.sinks <> []
              && (Core.Design.inst d iid).Core.Design.cell.Core.Cell.kind
                 <> Core.Cell.Tsff ->
         acc := !i :: !acc
       | _ -> ());
      i := !i + step
    done;
    List.rev !acc
  in
  (* one warm-up edit absorbs one-time costs; the timed block is then
     [n_edits] genuine single-TP ECOs on distinct nets *)
  let warm_net, timed_nets = (List.hd eco_nets, List.tl eco_nets) in
  ignore (Core.Retime.insert_tp ctx ~net:warm_net);
  let n_edits = List.length timed_nets in
  let t0 = Unix.gettimeofday () in
  List.iter (fun net -> ignore (Core.Retime.insert_tp ctx ~net)) timed_nets;
  let t_retime = (Unix.gettimeofday () -. t0) /. float_of_int n_edits in
  let eco_pl = Core.Retime.placement ctx in
  let eco_rt = Core.Retime.route ctx in
  let t_full_sta =
    time_best ~reps:3 (fun () ->
        let rc = Core.Extract.run eco_pl eco_rt in
        ignore (Core.Sta_analysis.run eco_pl rc))
  in
  assert (
    Core.Retime.analysis ctx
    = Core.Sta_analysis.run eco_pl (Core.Extract.run eco_pl eco_rt));
  say "%-24s full %7.2f ms  retime %6.2f ms/edit  speedup %.1fx (%d edits)"
    "incr/single-tp-retime" (t_full_sta *. 1e3) (t_retime *. 1e3)
    (speedup t_full_sta t_retime) n_edits;
  (* ---- timing repair: the same ECO engine under both STA modes ----
     Every trial the repair stage makes is re-timed and possibly reverted,
     so its runtime is dominated by how each trial is evaluated: a cone
     worklist-retime (incremental) or a whole-design propagate (full).
     Both modes take identical decisions -- asserted below on the
     bit-pattern of the repaired critical path -- so the speedup is pure
     evaluation cost. Fresh placements come from the stage cache warmed
     by the sweeps above. *)
  let repair_spec = Core.Experiment.spec_for ~scale:0.06 "s38417" in
  let time_repair mode =
    let best = ref infinity and last = ref None in
    for _ = 1 to 3 do
      let row =
        Core.Experiment.run_one ~cache:cache_store ~with_atpg:false repair_spec
          ~tp_pct:1
      in
      let r = row.Core.Experiment.result in
      let t0 = Unix.gettimeofday () in
      let rep =
        Core.Repair.run ~mode ~route:r.Core.Pipeline.route ~rc:r.Core.Pipeline.rc
          r.Core.Pipeline.placement
      in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      last := Some rep
    done;
    (!best, Option.get !last)
  in
  let t_repair_full, rep_full = time_repair Core.Repair.Full_sta in
  let t_repair_incr, rep_incr = time_repair Core.Repair.Incremental_sta in
  assert (rep_full.Core.Repair.t_cp_after = rep_incr.Core.Repair.t_cp_after);
  assert (rep_full.Core.Repair.accepted = rep_incr.Core.Repair.accepted);
  assert (rep_incr.Core.Repair.t_cp_after <= rep_incr.Core.Repair.t_cp_before);
  say "%-24s full %7.1f ms  incr %8.1f ms  speedup %.2fx (%d/%d ECOs accepted)"
    "repair/eco-repair" (t_repair_full *. 1e3) (t_repair_incr *. 1e3)
    (speedup t_repair_full t_repair_incr)
    rep_incr.Core.Repair.accepted rep_incr.Core.Repair.tried;
  say "%-24s seq %8.1f ms  par(j=%d) %8.1f ms  speedup %.2fx"
    "par/fsim-detect-fanout" (t_fsim_seq *. 1e3) par_jobs (t_fsim_par *. 1e3)
    (speedup t_fsim_seq t_fsim_par);
  say "%-24s seq %8.1f ms  par(j=%d) %8.1f ms  speedup %.2fx"
    "par/sweep-fanout" (t_sweep_seq *. 1e3) par_jobs (t_sweep_par *. 1e3)
    (speedup t_sweep_seq t_sweep_par);
  say "(host has %d cores; speedups ~1.0x are expected on single-core hosts)" host_cores;
  say "%-24s cold %7.1f ms  warm %8.1f ms  speedup %.2fx" "cache/sweep-stage-cache"
    (t_sweep_seq *. 1e3) (t_sweep_warm *. 1e3)
    (speedup t_sweep_seq t_sweep_warm);
  (* each parallel entry carries the core count it was measured on, and a
     single-core measurement is flagged outright: its ~1.0x "speedup"
     reflects the host, not the fan-out, and the gate must not read it as
     a regression against a multicore baseline *)
  if host_cores = 1 then
    say "NOTE: single-core host; parallel speedups recorded but flagged";
  let par_entry name seq par =
    Obs.Json.Obj
      [ ("name", Obs.Json.String name);
        ("seq_s", Obs.Json.Float seq);
        ("par_s", Obs.Json.Float par);
        ("jobs", Obs.Json.Int par_jobs);
        ("host_cores", Obs.Json.Int host_cores);
        ("single_core_host", Obs.Json.Bool (host_cores = 1));
        ("speedup", Obs.Json.Float (speedup seq par)) ]
  in
  write_bench_sections
    [ ("schema", Obs.Json.String "tpi-bench-perf/6");
      ("kernels", Obs.Json.List kernels);
      ("parallel",
       Obs.Json.Obj
         [ ("host_cores", Obs.Json.Int host_cores);
           ("kernels",
            Obs.Json.List
              [ par_entry "fsim-detect-fanout" t_fsim_seq t_fsim_par;
                par_entry "sweep-fanout" t_sweep_seq t_sweep_par ]) ]);
      ("cache",
       Obs.Json.Obj
         [ ("kernels",
            Obs.Json.List
              [ Obs.Json.Obj
                  [ ("name", Obs.Json.String "sweep-stage-cache");
                    ("cold_s", Obs.Json.Float t_sweep_seq);
                    ("warm_s", Obs.Json.Float t_sweep_warm);
                    ("speedup", Obs.Json.Float (speedup t_sweep_seq t_sweep_warm)) ]
              ]) ]);
      ("incremental",
       Obs.Json.Obj
         [ ("kernels",
            Obs.Json.List
              [ Obs.Json.Obj
                  [ ("name", Obs.Json.String "single-tp-retime");
                    ("full_s", Obs.Json.Float t_full_sta);
                    ("retime_s", Obs.Json.Float t_retime);
                    ("edits", Obs.Json.Int n_edits);
                    ("speedup", Obs.Json.Float (speedup t_full_sta t_retime)) ]
              ]) ]);
      ("repair",
       Obs.Json.Obj
         [ ("kernels",
            Obs.Json.List
              [ Obs.Json.Obj
                  [ ("name", Obs.Json.String "eco-repair");
                    ("full_s", Obs.Json.Float t_repair_full);
                    ("incr_s", Obs.Json.Float t_repair_incr);
                    ("tried", Obs.Json.Int rep_incr.Core.Repair.tried);
                    ("accepted", Obs.Json.Int rep_incr.Core.Repair.accepted);
                    ("speedup",
                     Obs.Json.Float (speedup t_repair_full t_repair_incr)) ]
              ]) ]) ];
  say "wrote BENCH_perf.json (%d kernels + 2 parallel + 1 cache + 1 incremental + 1 repair)"
    (List.length kernels)

(* ---- serve: end-to-end daemon throughput under concurrent clients ----
   An in-process daemon on a scratch socket, N client threads each pushing
   a stream of small jobs (one of them with an injected transient fault,
   so the retry path is always part of the measurement), then a deliberate
   overload burst against the held executor to measure typed-backpressure
   rejection. Wall-clock numbers, not Bechamel: the daemon serializes job
   compute by design, so per-run modelling adds nothing. *)
let serve_bench clients =
  say "=== serve: daemon throughput, %d concurrent clients ===" clients;
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpi-bench-%d.sock" (Unix.getpid ()))
  in
  let capacity = (2 * clients) + 2 in
  let cfg =
    { (Core.Serve_daemon.default_config ~socket_path) with
      Core.Serve_daemon.queue_capacity = capacity }
  in
  let daemon = Core.Serve_daemon.start cfg in
  let spec_line ~id ?fail_attempts ?sleep_ms () =
    Core.Serve_client.submit_line ~id ?fail_attempts ?sleep_ms ~circuit:"s38417"
      ~scale:0.05 ~levels:[ 0 ] ~tables:[ 2 ] ()
  in
  let jobs_per_client = 3 in
  let mutex = Mutex.create () in
  let latencies = ref [] in
  let retries = ref 0 and completed = ref 0 and failed = ref 0 in
  let submit_one c id ?fail_attempts () =
    let t0 = Unix.gettimeofday () in
    let o = Core.Serve_client.run_job c (spec_line ~id ?fail_attempts ()) in
    let dt_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    Mutex.lock mutex;
    latencies := dt_ms :: !latencies;
    retries := !retries + o.Core.Serve_client.retries;
    if o.Core.Serve_client.output <> None then incr completed else incr failed;
    Mutex.unlock mutex
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun k ->
        Thread.create
          (fun () ->
            let c = Core.Serve_client.connect ~socket_path in
            Fun.protect
              ~finally:(fun () -> Core.Serve_client.close c)
              (fun () ->
                for j = 1 to jobs_per_client do
                  submit_one c (Printf.sprintf "c%d-j%d" k j) ()
                done;
                submit_one c (Printf.sprintf "c%d-retry" k) ~fail_attempts:1 ()))
          ())
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  (* overload burst: park a sleeper on the executor, then submit past the
     queue bound and count the typed backpressure rejections *)
  let burst = 2 * capacity in
  let rejected = ref 0 in
  let c = Core.Serve_client.connect ~socket_path in
  Fun.protect
    ~finally:(fun () -> Core.Serve_client.close c)
    (fun () ->
      Core.Serve_client.request c (spec_line ~id:"hold" ~sleep_ms:400 ());
      let rec await pred =
        match Core.Serve_client.next_event c with
        | None -> ()
        | Some j -> if pred j then () else await pred
      in
      await (fun j ->
          Core.Serve_protocol.event_of j = "started"
          && Core.Serve_protocol.id_of j = Some "hold");
      for b = 1 to burst do
        let id = Printf.sprintf "burst-%d" b in
        Core.Serve_client.request c (spec_line ~id ());
        await (fun j ->
            let terminal =
              match Core.Serve_protocol.event_of j with
              | "accepted" -> true
              | "rejected" ->
                incr rejected;
                true
              | _ -> false
            in
            terminal && Core.Serve_protocol.id_of j = Some id)
      done);
  Core.Serve_daemon.drain daemon;
  ignore (Core.Serve_daemon.wait daemon);
  let sorted = List.sort compare !latencies in
  let n = List.length sorted in
  let pct p =
    if n = 0 then 0.0 else List.nth sorted (min (n - 1) (int_of_float (float_of_int n *. p)))
  in
  let throughput = if wall_s > 0.0 then float_of_int !completed /. wall_s else 0.0 in
  let rejection_rate = float_of_int !rejected /. float_of_int burst in
  say "%d jobs (%d clients x %d+1), %d completed, %d failed, %d retries" n clients
    jobs_per_client !completed !failed !retries;
  say "throughput %.2f jobs/s, latency p50 %.1f ms / p95 %.1f ms" throughput (pct 0.50)
    (pct 0.95);
  say "overload burst: %d/%d rejected with typed backpressure (%.0f%%)" !rejected burst
    (100.0 *. rejection_rate);
  write_bench_sections
    [ ("schema", Obs.Json.String "tpi-bench-perf/4");
      ("serve",
       Obs.Json.Obj
         [ ("clients", Obs.Json.Int clients);
           ("jobs", Obs.Json.Int n);
           ("jobs_completed", Obs.Json.Int !completed);
           ("jobs_failed", Obs.Json.Int !failed);
           ("retries", Obs.Json.Int !retries);
           ("throughput_jobs_per_s", Obs.Json.Float throughput);
           ("p50_ms", Obs.Json.Float (pct 0.50));
           ("p95_ms", Obs.Json.Float (pct 0.95));
           ("rejection_burst",
            Obs.Json.Obj
              [ ("submitted", Obs.Json.Int burst);
                ("rejected", Obs.Json.Int !rejected);
                ("rate", Obs.Json.Float rejection_rate) ]) ]) ];
  say "wrote BENCH_perf.json (serve section)"

(* perf-regression gate: diff the (freshly measured or existing)
   BENCH_perf.json against a checked-in baseline and exit non-zero past
   tolerance -- the CI step that makes a silent slowdown loud *)
let check_gate ~baseline ~tolerance_pct =
  match
    Core.Perfgate.check ~baseline_path:baseline ~current_path:"BENCH_perf.json"
      ~tolerance_pct
  with
  | exception (Core.Perfgate.Invalid_baseline msg | Sys_error msg) ->
    Printf.eprintf "bench --check: %s\n" msg;
    exit 2
  | verdict ->
    Format.printf "%a@." Core.Perfgate.pp_verdict verdict;
    if verdict.Core.Perfgate.violations <> [] then exit 1

let rec flag_value name = function
  | f :: v :: _ when f = name -> Some v
  | _ :: rest -> flag_value name rest
  | [] -> None

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--full" args then begin
    table1_scale := 1.0;
    area_scale := None (* default per-circuit scales are the documented ones *)
  end;
  let check_baseline = flag_value "--check" args in
  let tolerance_pct =
    match Option.bind (flag_value "--tolerance" args) float_of_string_opt with
    | Some t when t >= 0.0 -> t
    | _ -> 25.0
  in
  let gate () =
    match check_baseline with
    | Some baseline -> check_gate ~baseline ~tolerance_pct
    | None -> ()
  in
  let wants = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let wants =
    (* flag operands are not section names *)
    match check_baseline with Some b -> List.filter (fun w -> w <> b) wants | None -> wants
  in
  let wants =
    match flag_value "--tolerance" args with
    | Some t -> List.filter (fun w -> w <> t) wants
    | None -> wants
  in
  let run name f = if wants = [] || List.mem name wants then f () in
  if List.mem "--perf" args then begin
    perf ();
    gate ()
  end
  else if check_baseline <> None && wants = [] then
    (* bare `--check BASELINE`: judge the existing BENCH_perf.json *)
    gate ()
  else if List.mem "serve" wants then begin
    let rec clients_of = function
      | "--clients" :: v :: _ -> Option.value ~default:4 (int_of_string_opt v)
      | _ :: rest -> clients_of rest
      | [] -> 4
    in
    serve_bench (max 1 (clients_of args))
  end
  else begin
    run "fig1" fig1;
    run "table2" table2;
    run "table3" table3;
    run "fig2" fig2;
    run "fig3" fig3;
    run "ablations" ablations;
    run "table1" table1
  end
