(* flow.Repair: post-route WNS/TNS-driven ECO repair, its exactness
   contract across STA modes, and the Timingfix accept-worse regression *)
module Design = Netlist.Design
module Cell = Stdcell.Cell
module A = Sta.Analysis
module T = Sta.Tgraph
module R = Flow.Repair
module TF = Flow.Timingfix

let bits = Int64.bits_of_float

let check_floats_bitwise msg (a : float array) (b : float array) =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if bits x <> bits b.(i) then
        Alcotest.failf "%s: index %d: %h <> %h" msg i x b.(i))
    a

let check_analysis_equal msg (x : A.t) (y : A.t) =
  check_floats_bitwise (msg ^ " arrival") x.A.arrival y.A.arrival;
  check_floats_bitwise (msg ^ " slew") x.A.slew y.A.slew;
  Alcotest.(check bool) (msg ^ " per_domain") true (x.A.per_domain = y.A.per_domain);
  Alcotest.(check bool) (msg ^ " worst") true (x.A.worst = y.A.worst)

(* a placed+TPI'd design fresh out of the pipeline; rebuilt identically on
   every call so each STA mode can mutate its own copy *)
let placed ?(seed = 9) ?(ffs = 50) ?(gates = 500) ?(tp_percent = 2.0) () =
  let d = Circuits.Bench.tiny ~seed ~ffs ~gates () in
  let options =
    { Flow.Pipeline.default_options with
      Flow.Pipeline.tp_percent;
      run_atpg = false }
  in
  let r = Flow.Pipeline.run ~options d in
  (r.Flow.Pipeline.placement, r.Flow.Pipeline.route, r.Flow.Pipeline.rc)

let test_repair_improves () =
  let pl, rt, rc = placed () in
  let rep = R.run ~route:rt ~rc pl in
  Alcotest.(check bool) "tried some ECOs" true (rep.R.tried > 0);
  Alcotest.(check bool) "wns never degrades" true (rep.R.wns_after >= rep.R.wns_before);
  Alcotest.(check bool) "t_cp never degrades" true
    (rep.R.t_cp_after <= rep.R.t_cp_before);
  Alcotest.(check int) "accepted = sum of kinds" rep.R.accepted
    (rep.R.buffers_inserted + rep.R.upsized + rep.R.downsized + rep.R.swapped);
  Alcotest.(check int) "one edit record per trial" rep.R.tried
    (List.length rep.R.edits);
  Alcotest.(check int) "accepted edit records" rep.R.accepted
    (List.length (List.filter (fun (e : R.eco) -> e.R.accepted) rep.R.edits))

(* the report must describe the design actually left behind: re-route,
   re-extract and re-analyse the mutated placement from scratch and compare.
   This is what pins the exact-revert discipline — one leaky rejected trial
   and the fresh analysis walks a different design. *)
let test_repair_state_coherent () =
  let pl, rt, rc = placed ~seed:13 () in
  let rep = R.run ~route:rt ~rc pl in
  let rt' = Layout.Route.run pl in
  let rc' = Layout.Extract.run pl rt' in
  let fresh = A.run pl rc' in
  check_analysis_equal "report sta vs fresh analysis" fresh rep.R.sta;
  Alcotest.(check bool) "t_cp_after is the fresh worst" true
    (match fresh.A.worst with
     | Some p -> bits p.A.t_cp = bits rep.R.t_cp_after
     | None -> false);
  Alcotest.(check bool) "route wirelength" true
    (bits rt'.Layout.Route.total_wirelength
    = bits rep.R.route.Layout.Route.total_wirelength);
  Alcotest.(check bool) "reported area is live area" true
    (bits rep.R.cell_area_after
    = bits (Netlist.Stats.compute pl.Layout.Place.design).Netlist.Stats.cell_area)

let test_repair_modes_identical () =
  let run mode =
    let pl, rt, rc = placed ~seed:21 () in
    R.run ~mode ~route:rt ~rc pl
  in
  let full = run R.Full_sta in
  let inc = run R.Incremental_sta in
  Alcotest.(check int) "passes" full.R.passes inc.R.passes;
  Alcotest.(check int) "tried" full.R.tried inc.R.tried;
  Alcotest.(check int) "accepted" full.R.accepted inc.R.accepted;
  Alcotest.(check int) "buffers" full.R.buffers_inserted inc.R.buffers_inserted;
  Alcotest.(check int) "upsized" full.R.upsized inc.R.upsized;
  Alcotest.(check int) "downsized" full.R.downsized inc.R.downsized;
  Alcotest.(check int) "swapped" full.R.swapped inc.R.swapped;
  List.iter
    (fun (name, a, b) ->
      if bits a <> bits b then Alcotest.failf "%s: %h <> %h" name a b)
    [ ("wns_before", full.R.wns_before, inc.R.wns_before);
      ("wns_after", full.R.wns_after, inc.R.wns_after);
      ("tns_after", full.R.tns_after, inc.R.tns_after);
      ("t_cp_after", full.R.t_cp_after, inc.R.t_cp_after);
      ("area_after", full.R.cell_area_after, inc.R.cell_area_after);
      ( "wirelength",
        full.R.route.Layout.Route.total_wirelength,
        inc.R.route.Layout.Route.total_wirelength ) ];
  (* every trial — target, verdict and objective movement — matches *)
  List.iter2
    (fun (a : R.eco) (b : R.eco) ->
      if
        a.R.kind <> b.R.kind || a.R.target <> b.R.target
        || a.R.accepted <> b.R.accepted
        || bits a.R.wns_gain_ps <> bits b.R.wns_gain_ps
      then
        Alcotest.failf "trial diverges: %s %s vs %s %s" (R.kind_name a.R.kind)
          a.R.target (R.kind_name b.R.kind) b.R.target)
    full.R.edits inc.R.edits;
  check_analysis_equal "pre_sta" full.R.pre_sta inc.R.pre_sta;
  check_analysis_equal "post sta" full.R.sta inc.R.sta

let test_repair_pre_sta_is_unrepaired () =
  (* pre_sta must be byte-identical to the STA an unrepaired flow reports —
     the contract that lets one repaired sweep fill both Table 3 columns *)
  let _, _, rc0 = placed ~seed:29 () in
  let pl, rt, rc = placed ~seed:29 () in
  let unrepaired = A.run pl rc0 in
  let rep = R.run ~route:rt ~rc pl in
  check_analysis_equal "pre_sta vs unrepaired flow" unrepaired rep.R.pre_sta

(* regression for the stale-level rebirth bug: a rejected buffer frees the
   newest instance slot, a later propagate rebuilds the evaluation order
   without it, and the next buffer reuses the slot. Its true level sits at
   or below the dead occupant's, so the raise-only releveler used to leave
   [order_valid] standing — and full-STA propagate skipped the reborn cell,
   leaving its output net at the -inf seed. *)
let test_full_sta_slot_rebirth () =
  let pl, rt, rc = placed ~seed:9 () in
  let ctx = Flow.Retime.create ~full_sta:true pl rt rc in
  let d = Flow.Retime.design ctx in
  let tg = Flow.Retime.tgraph ctx in
  (* deepest and shallowest cell-driven nets with sinks *)
  let deep = ref (-1) and shallow = ref (-1) in
  for nid = 0 to Design.num_nets d - 1 do
    let n = Design.net d nid in
    match n.Design.driver with
    | Design.Cell_pin _ when n.Design.sinks <> [] ->
      if !deep < 0 || T.net_level tg nid > T.net_level tg !deep then deep := nid;
      if !shallow < 0 || T.net_level tg nid < T.net_level tg !shallow then
        shallow := nid
    | _ -> ()
  done;
  Alcotest.(check bool) "level gap" true
    (T.net_level tg !deep > T.net_level tg !shallow);
  let b1, _ = Flow.Retime.insert_buffer ctx ~net:!deep in
  ignore (Flow.Retime.remove_buffer ctx ~inst:b1.Design.id);
  let b2, _ = Flow.Retime.insert_buffer ctx ~net:!shallow in
  let out = (Design.inst d b2.Design.id).Design.conns.(1) in
  let arrival, _, _, _ = T.arrival_arrays tg in
  Alcotest.(check bool) "reborn buffer was propagated" true
    (arrival.(out) > neg_infinity);
  (* and the whole graph equals a from-scratch analysis of the edited design *)
  let rt' = Layout.Route.run pl in
  let rc' = Layout.Extract.run pl rt' in
  check_analysis_equal "post-rebirth" (A.run pl rc') (Flow.Retime.analysis ctx)

(* ---- the Timingfix accept-worse regression ---- *)

let test_timingfix_reports_best_state () =
  (* the final round may regress timing; the report — and the design left
     in the placement — must be the best state seen, not the last tried *)
  List.iter
    (fun mode ->
      let d = Circuits.Bench.tiny ~seed:29 ~ffs:40 ~gates:400 () in
      let fp = Layout.Floorplan.create d in
      let pl = Layout.Place.run d fp in
      let r = TF.run ~max_rounds:10 ~mode pl in
      Alcotest.(check bool) "never worse than start" true
        (r.TF.t_cp_after <= r.TF.t_cp_before);
      (* a fresh analysis of the mutated design reports exactly t_cp_after:
         the degrading round's upsizes were rolled back cell-for-cell *)
      let rt = Layout.Route.run pl in
      let rc = Layout.Extract.run pl rt in
      let fresh = A.run pl rc in
      (match fresh.A.worst with
       | Some p ->
         if bits p.A.t_cp <> bits r.TF.t_cp_after then
           Alcotest.failf "reported %h but the design times at %h" r.TF.t_cp_after
             p.A.t_cp
       | None -> Alcotest.fail "no worst path");
      check_analysis_equal "report sta vs live design" fresh r.TF.sta)
    [ TF.Full_sta; TF.Incremental_sta ]

let test_worst_tcp_option () =
  (* constrained design: Some of the worst path's t_cp *)
  let pl, _, rc = placed ~seed:9 () in
  let sta = A.run pl rc in
  (match (TF.worst_tcp sta, sta.A.worst) with
   | Some t, Some p -> Alcotest.(check bool) "some" true (bits t = bits p.A.t_cp)
   | _ -> Alcotest.fail "expected a constrained path");
  (* purely combinational design: no endpoint, no sentinel leaking out *)
  let d = Circuits.Iscas.parse "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n" in
  let fp = Layout.Floorplan.create d in
  let pl = Layout.Place.run d fp in
  let rt = Layout.Route.run pl in
  let rc = Layout.Extract.run pl rt in
  let sta = A.run pl rc in
  Alcotest.(check bool) "none on unconstrained design" true
    (TF.worst_tcp sta = None)

(* ---- typed generator/parser errors (the retired assert-false paths) ---- *)

let test_typed_circuit_errors () =
  (* a degenerate gate line surfaces as Parse_error, not an assert *)
  Alcotest.(check bool) "empty operand list" true
    (try
       ignore (Circuits.Iscas.parse "INPUT(a)\nOUTPUT(y)\ny = AND()\n");
       false
     with Circuits.Iscas.Parse_error _ -> true);
  (* inconsistent profiles fail validation up front... *)
  let bad = { Circuits.Bench.s38417_profile with Circuits.Profile.num_pis = 0 } in
  Alcotest.(check bool) "invalid profile" true
    (try Circuits.Profile.validate bad; false with Invalid_argument _ -> true);
  (* ...while mid-generation invariants have their own typed exception *)
  Alcotest.(check bool) "generation error carries its message" true
    (try raise (Circuits.Synth.Generation_error "invariant")
     with Circuits.Synth.Generation_error m -> m = "invariant")

(* ---- QCheck: repair never loses timing at any TP density ---- *)

let prop_repaired_never_worse =
  QCheck.Test.make ~name:"repaired T_cp <= unrepaired at any TP level" ~count:4
    QCheck.(pair (int_range 1 1000) (int_range 0 8))
    (fun (seed, tp) ->
      let pl, rt, rc = placed ~seed ~tp_percent:(float_of_int tp) () in
      let rep = R.run ~route:rt ~rc pl in
      rep.R.t_cp_after <= rep.R.t_cp_before
      && rep.R.wns_after >= rep.R.wns_before)

let suite =
  [ Alcotest.test_case "repair improves" `Slow test_repair_improves;
    Alcotest.test_case "repair leaves coherent state" `Slow
      test_repair_state_coherent;
    Alcotest.test_case "STA modes byte-identical" `Slow test_repair_modes_identical;
    Alcotest.test_case "pre_sta = unrepaired flow" `Slow
      test_repair_pre_sta_is_unrepaired;
    Alcotest.test_case "full-STA slot rebirth" `Slow test_full_sta_slot_rebirth;
    Alcotest.test_case "timingfix reports best state" `Slow
      test_timingfix_reports_best_state;
    Alcotest.test_case "worst_tcp option" `Quick test_worst_tcp_option;
    Alcotest.test_case "typed circuit errors" `Quick test_typed_circuit_errors;
    QCheck_alcotest.to_alcotest prop_repaired_never_worse ]
