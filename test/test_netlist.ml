(* netlist: design, levelize, check, stats, cmodel, verilog *)
module Design = Netlist.Design
module Cell = Stdcell.Cell

let test_mini_construction () =
  let d = Helpers.mini_design () in
  Alcotest.(check int) "insts" 3 (Design.num_insts d);
  Netlist.Check.assert_clean d;
  let stats = Netlist.Stats.compute d in
  Alcotest.(check int) "cells" 3 stats.Netlist.Stats.cells;
  Alcotest.(check int) "ffs" 1 stats.Netlist.Stats.ffs;
  Alcotest.(check int) "depth" 2 stats.Netlist.Stats.logic_depth

let test_double_driver_rejected () =
  let d = Design.create "bad" in
  let a = Design.add_instance d ~name:"a" ~cell:(Helpers.cell Cell.Inv) in
  let b = Design.add_instance d ~name:"b" ~cell:(Helpers.cell Cell.Inv) in
  let n = Design.add_net d "n" in
  Design.connect d ~inst:a.Design.id ~pin:1 ~net:n.Design.nid;
  Alcotest.(check bool) "raises" true
    (try
       Design.connect d ~inst:b.Design.id ~pin:1 ~net:n.Design.nid;
       false
     with Invalid_argument _ -> true)

let test_disconnect_restores () =
  let d = Helpers.mini_design () in
  let g1 = Design.inst d 0 in
  let n = g1.Design.conns.(0) in
  Design.disconnect d ~inst:g1.Design.id ~pin:0;
  Alcotest.(check int) "pin cleared" (-1) g1.Design.conns.(0);
  Alcotest.(check bool) "sink removed" true
    (not (List.mem (g1.Design.id, 0) (Design.net d n).Design.sinks));
  Design.connect d ~inst:g1.Design.id ~pin:0 ~net:n;
  Netlist.Check.assert_clean d

let test_split_net () =
  let d = Helpers.mini_design () in
  (* split n1 (driven by g1, feeding g2) *)
  let n1 = (Design.inst d 0).Design.conns.(2) in
  let before_sinks = (Design.net d n1).Design.sinks in
  let fresh = Design.split_net d ~net:n1 ~name:"n1_tp" in
  Alcotest.(check bool) "old net keeps driver" true ((Design.net d n1).Design.driver <> Design.No_driver);
  Alcotest.(check (list (pair int int))) "sinks moved" before_sinks fresh.Design.sinks;
  Alcotest.(check (list (pair int int))) "old empty" [] (Design.net d n1).Design.sinks

let test_replace_cell () =
  let d = Helpers.mini_design () in
  let ff = Design.inst d 2 in
  let sdff = Helpers.cell Cell.Sdff in
  Design.replace_cell d ~inst:ff.Design.id ~cell:sdff ~pin_map:[ (0, 0); (1, 3); (2, 4) ];
  Alcotest.(check string) "kind swapped" "SDFF" (Cell.kind_name ff.Design.cell.Cell.kind);
  Alcotest.(check bool) "D preserved" true (ff.Design.conns.(0) >= 0);
  Alcotest.(check bool) "CK preserved" true (ff.Design.conns.(3) >= 0);
  Alcotest.(check bool) "Q preserved" true (ff.Design.conns.(4) >= 0);
  Alcotest.(check int) "TI open" (-1) ff.Design.conns.(1)

let test_levelize_order () =
  let d = Circuits.Bench.tiny () in
  let lv = Netlist.Levelize.compute d in
  Alcotest.(check bool) "has depth" true (Netlist.Levelize.depth lv > 0);
  (* every combinational gate's level exceeds all its input net levels *)
  Array.iter
    (fun iid ->
      let i = Design.inst d iid in
      Array.iteri
        (fun pin nid ->
          if nid >= 0 && Stdcell.Pin.is_input i.Design.cell.Cell.pins.(pin) then
            Alcotest.(check bool) "level ordering" true
              (lv.Netlist.Levelize.level_of_inst.(iid)
               > lv.Netlist.Levelize.level_of_net.(nid) - 1))
        i.Design.conns)
    lv.Netlist.Levelize.order

let test_levelize_detects_cycle () =
  let d = Design.create "loop" in
  let a = Design.add_instance d ~name:"a" ~cell:(Helpers.cell Cell.Inv) in
  let b = Design.add_instance d ~name:"b" ~cell:(Helpers.cell Cell.Inv) in
  let n1 = Design.add_net d "n1" and n2 = Design.add_net d "n2" in
  Design.connect d ~inst:a.Design.id ~pin:0 ~net:n2.Design.nid;
  Design.connect d ~inst:a.Design.id ~pin:1 ~net:n1.Design.nid;
  Design.connect d ~inst:b.Design.id ~pin:0 ~net:n1.Design.nid;
  Design.connect d ~inst:b.Design.id ~pin:1 ~net:n2.Design.nid;
  Alcotest.(check bool) "cycle detected" true
    (try
       ignore (Netlist.Levelize.compute d);
       false
     with Netlist.Levelize.Combinational_loop _ -> true)

let test_check_flags_floating () =
  let d = Design.create "float" in
  let a = Design.add_instance d ~name:"a" ~cell:(Helpers.cell Cell.Nand2) in
  let n = Design.add_net d "n" in
  Design.connect d ~inst:a.Design.id ~pin:2 ~net:n.Design.nid;
  let vs = Netlist.Check.run d in
  Alcotest.(check bool) "floating inputs reported" true
    (List.exists (function Netlist.Check.Floating_input _ -> true | _ -> false) vs)

let test_verilog_roundtrip_mini () =
  let d = Helpers.mini_design () in
  let s = Netlist.Verilog.to_string d in
  let d' = Netlist.Verilog.parse s in
  Netlist.Check.assert_clean d';
  Alcotest.(check int) "insts" (Design.num_insts d) (Design.num_insts d');
  Alcotest.(check int) "domains" 1 (Array.length d'.Design.domains);
  let s' = Netlist.Verilog.to_string d' in
  Alcotest.(check string) "stable fixpoint" s s'

let test_verilog_roundtrip_tiny () =
  let d = Circuits.Bench.tiny () in
  let d' = Netlist.Verilog.parse (Netlist.Verilog.to_string d) in
  Netlist.Check.assert_clean d';
  let s1 = Netlist.Stats.compute d and s2 = Netlist.Stats.compute d' in
  Alcotest.(check int) "cells survive" s1.Netlist.Stats.cells s2.Netlist.Stats.cells;
  Alcotest.(check int) "ffs survive" s1.Netlist.Stats.ffs s2.Netlist.Stats.ffs

let test_verilog_parse_error () =
  Alcotest.(check bool) "unknown cell rejected" true
    (try
       ignore (Netlist.Verilog.parse "module m (a); input a; BOGUS u (.A(a)); endmodule");
       false
     with Netlist.Verilog.Parse_error _ -> true)

let test_cmodel_structure () =
  let d = Circuits.Bench.tiny () in
  let m = Netlist.Cmodel.build d in
  (* sources = PIs (minus clock) + FF outputs *)
  let stats = Netlist.Stats.compute d in
  Alcotest.(check bool) "sources include ffs" true
    (Array.length m.Netlist.Cmodel.sources >= stats.Netlist.Stats.ffs);
  (* every gate's inputs precede it (levels ascend along the array) *)
  Array.iter
    (fun (g : Netlist.Cmodel.gate) ->
      Array.iter
        (fun inn ->
          let gi = m.Netlist.Cmodel.driver_gate.(inn) in
          if gi >= 0 then
            Alcotest.(check bool) "topological" true
              (m.Netlist.Cmodel.gates.(gi).Netlist.Cmodel.g_level < g.Netlist.Cmodel.g_level
               || m.Netlist.Cmodel.gates.(gi).Netlist.Cmodel.g_level + 1
                  = g.Netlist.Cmodel.g_level))
        g.Netlist.Cmodel.g_ins)
    m.Netlist.Cmodel.gates;
  (* observed nets are exactly PO bindings and FF D nets *)
  Array.iter
    (fun (n, _) -> Alcotest.(check bool) "observe marked" true m.Netlist.Cmodel.is_observed.(n))
    m.Netlist.Cmodel.observes

let test_check_failed_typed () =
  let d = Helpers.mini_design () in
  (* 25 disconnected inverters: each adds a floating input and a dangling
     output, taking the violation list well past the 20-entry report cap *)
  for k = 0 to 24 do
    ignore
      (Design.add_instance d ~name:(Printf.sprintf "u%d" k) ~cell:(Helpers.cell Cell.Inv))
  done;
  match Netlist.Check.assert_clean d with
  | () -> Alcotest.fail "expected Check_failed"
  | exception Netlist.Check.Check_failed vs ->
    Alcotest.(check int) "exception carries every violation" 50 (List.length vs);
    let printed = Printexc.to_string (Netlist.Check.Check_failed vs) in
    Alcotest.(check bool) "printer tallies the classes" true
      (Astring_contains.contains printed "50 violation(s)");
    Alcotest.(check bool) "printer names the classes" true
      (Astring_contains.contains printed "floating-input x25");
    let r = Netlist.Check.report d vs in
    Alcotest.(check bool) "report states the total" true
      (Astring_contains.contains r "50 check violations");
    Alcotest.(check bool) "report flags the truncation" true
      (Astring_contains.contains r "... and 30 more");
    let rendered =
      List.length
        (List.filter
           (fun l -> Astring_contains.contains l "of u")
           (String.split_on_char '\n' r))
    in
    Alcotest.(check int) "only the cap is rendered" 20 rendered

let test_report_short_list_untruncated () =
  let d = Helpers.mini_design () in
  let g2 = Design.inst d 1 in
  (* unhooking g2's input floats that pin and leaves g1's output sinkless *)
  Design.disconnect d ~inst:g2.Design.id ~pin:0;
  let vs = Netlist.Check.run d in
  Alcotest.(check int) "two violations" 2 (List.length vs);
  let r = Netlist.Check.report d vs in
  Alcotest.(check bool) "no truncation line" true
    (not (Astring_contains.contains r "more"))

let suite =
  [ Alcotest.test_case "mini construction" `Quick test_mini_construction;
    Alcotest.test_case "double driver" `Quick test_double_driver_rejected;
    Alcotest.test_case "disconnect" `Quick test_disconnect_restores;
    Alcotest.test_case "split net" `Quick test_split_net;
    Alcotest.test_case "replace cell" `Quick test_replace_cell;
    Alcotest.test_case "levelize order" `Quick test_levelize_order;
    Alcotest.test_case "levelize cycle" `Quick test_levelize_detects_cycle;
    Alcotest.test_case "check floating" `Quick test_check_flags_floating;
    Alcotest.test_case "verilog mini roundtrip" `Quick test_verilog_roundtrip_mini;
    Alcotest.test_case "verilog tiny roundtrip" `Quick test_verilog_roundtrip_tiny;
    Alcotest.test_case "verilog parse error" `Quick test_verilog_parse_error;
    Alcotest.test_case "cmodel structure" `Quick test_cmodel_structure;
    Alcotest.test_case "check-failed typed" `Quick test_check_failed_typed;
    Alcotest.test_case "report untruncated" `Quick test_report_short_list_untruncated ]
