(* incremental STA: flat timing graph vs the reference Analysis engine,
   worklist re-timing after ECO edits, required-time patching *)
module Design = Netlist.Design
module Cell = Stdcell.Cell
module A = Sta.Analysis
module T = Sta.Tgraph
module I = Sta.Incremental

let analysed d =
  let fp = Layout.Floorplan.create d in
  let pl = Layout.Place.run d fp in
  let rt = Layout.Route.run pl in
  let rc = Layout.Extract.run pl rt in
  (pl, rt, rc)

let bits = Int64.bits_of_float

let check_floats_bitwise msg (a : float array) (b : float array) =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if bits x <> bits b.(i) then
        Alcotest.failf "%s: index %d: %h <> %h" msg i x b.(i))
    a

(* full structural equality of two Analysis.t results (paths, breakdowns,
   provenance) plus bitwise equality of the per-net arrays *)
let check_analysis_equal msg (x : A.t) (y : A.t) =
  check_floats_bitwise (msg ^ " arrival") x.A.arrival y.A.arrival;
  check_floats_bitwise (msg ^ " slew") x.A.slew y.A.slew;
  Alcotest.(check int) (msg ^ " slow_nodes") x.A.slow_nodes y.A.slow_nodes;
  Alcotest.(check bool) (msg ^ " per_domain") true (x.A.per_domain = y.A.per_domain);
  Alcotest.(check bool) (msg ^ " worst") true (x.A.worst = y.A.worst)

let check_tgraph_matches msg pl rc =
  let full = A.run pl rc in
  let tg = T.compile pl.Layout.Place.design rc in
  T.propagate tg;
  let inc = T.analysis tg in
  check_analysis_equal msg full inc;
  tg

let test_tgraph_mini () =
  let d = Helpers.mini_design () in
  let pl, _, rc = analysed d in
  ignore (check_tgraph_matches "mini" pl rc)

let test_tgraph_tiny () =
  let d = Circuits.Bench.tiny ~ffs:40 ~gates:500 () in
  let pl, _, rc = analysed d in
  ignore (check_tgraph_matches "tiny" pl rc)

let test_tgraph_full_flow () =
  (* post-CTS, post-TPI design straight out of the pipeline: clock trees,
     test points, scan chains, fillers *)
  let d = Circuits.Bench.tiny ~seed:7 ~ffs:60 ~gates:600 () in
  let options = { Flow.Pipeline.default_options with Flow.Pipeline.tp_percent = 3.0 } in
  let r = Flow.Pipeline.run ~options d in
  let full = A.run r.Flow.Pipeline.placement r.Flow.Pipeline.rc in
  let tg = T.compile r.Flow.Pipeline.design r.Flow.Pipeline.rc in
  T.propagate tg;
  check_analysis_equal "pipeline design" full (T.analysis tg)

let test_tgraph_pool_identical () =
  let d = Circuits.Bench.tiny ~seed:3 ~ffs:60 ~gates:800 () in
  let pl, _, rc = analysed d in
  let tg = T.compile pl.Layout.Place.design rc in
  T.propagate tg;
  let seq = T.analysis tg in
  Par.Pool.with_pool ~domains:4 (fun pool ->
      T.propagate ~pool tg;
      check_analysis_equal "pool vs seq" seq (T.analysis tg))

let test_tgraph_wns_matches_slack_report () =
  let d = Circuits.Bench.tiny ~seed:11 ~ffs:50 ~gates:400 () in
  let pl, _, rc = analysed d in
  let a = A.run pl rc in
  let expected = Sta.Slack.report pl rc a in
  let tg = T.compile pl.Layout.Place.design rc in
  T.propagate tg;
  let got = T.slack tg in
  Alcotest.(check bool) "wns" true (bits expected.Sta.Slack.wns = bits got.Sta.Slack.wns);
  Alcotest.(check bool) "endpoints" true
    (expected.Sta.Slack.endpoints = got.Sta.Slack.endpoints);
  Alcotest.(check int) "violations" expected.Sta.Slack.violations got.Sta.Slack.violations

let test_required_consistent () =
  (* on every net that has both, slack(net) >= wns of the endpoint report
     (required times are endpoint constraints propagated backward) *)
  let d = Circuits.Bench.tiny ~seed:5 ~ffs:40 ~gates:400 () in
  let pl, _, rc = analysed d in
  let tg = T.compile pl.Layout.Place.design rc in
  T.propagate tg;
  T.compute_required tg;
  let wns = (T.slack tg).Sta.Slack.wns in
  let min_net_slack = ref infinity in
  for nid = 0 to T.num_nets tg - 1 do
    match T.net_slack tg nid with
    | Some s ->
      if s < !min_net_slack then min_net_slack := s;
      if s < wns -. 1e-6 then
        Alcotest.failf "net %d slack %.3f below wns %.3f" nid s wns
    | None -> ()
  done;
  (* the critical endpoint's data net carries exactly the wns *)
  Alcotest.(check bool) "worst net slack = wns" true
    (Float.abs (!min_net_slack -. wns) < 1e-6)

(* ---- ECO context: every edit must leave the context byte-identical to a
   from-scratch route/extract/analyse of the same mutated design ---- *)

let check_ctx_matches_full msg (ctx : Flow.Retime.t) =
  let pl = Flow.Retime.placement ctx in
  let rt = Layout.Route.run pl in
  let rc = Layout.Extract.run pl rt in
  let full = A.run pl rc in
  check_analysis_equal msg full (Flow.Retime.analysis ctx);
  let crc = Flow.Retime.rc ctx in
  Array.iteri
    (fun nid (r : Layout.Extract.net_rc) ->
      let c = crc.(nid) in
      if bits r.Layout.Extract.total_cap_ff <> bits c.Layout.Extract.total_cap_ff
         || r.Layout.Extract.sink_delays <> c.Layout.Extract.sink_delays then
        Alcotest.failf "%s: rc mismatch on net %d" msg nid)
    rc;
  let crt = Flow.Retime.route ctx in
  Alcotest.(check bool) (msg ^ " route total") true
    (bits rt.Layout.Route.total_wirelength = bits crt.Layout.Route.total_wirelength);
  Alcotest.(check int) (msg ^ " overflow") rt.Layout.Route.overflowed_gcells
    crt.Layout.Route.overflowed_gcells

let eco_ctx ?(seed = 9) ?(ffs = 50) ?(gates = 500) ?(tp_percent = 2.0) () =
  let d = Circuits.Bench.tiny ~seed ~ffs ~gates () in
  let options = { Flow.Pipeline.default_options with Flow.Pipeline.tp_percent } in
  let r = Flow.Pipeline.run ~options d in
  Flow.Retime.create r.Flow.Pipeline.placement r.Flow.Pipeline.route r.Flow.Pipeline.rc

(* a net suitable for tapping: cell-driven, with at least one sink *)
let pick_nets d k =
  let acc = ref [] in
  let nn = Design.num_nets d in
  let step = max 1 (nn / (4 * k)) in
  let i = ref 0 in
  while List.length !acc < k && !i < nn do
    let n = Design.net d !i in
    (match n.Design.driver with
     | Design.Cell_pin (iid, _)
       when n.Design.sinks <> []
            && (Design.inst d iid).Design.cell.Cell.kind <> Cell.Tsff ->
       acc := !i :: !acc
     | _ -> ());
    i := !i + step
  done;
  List.rev !acc

let test_eco_tp_insert () =
  let ctx = eco_ctx () in
  let nets = pick_nets (Flow.Retime.design ctx) 3 in
  List.iteri
    (fun k net ->
      let _, stats = Flow.Retime.insert_tp ctx ~net in
      Alcotest.(check bool) "cone evaluated" true (stats.I.insts_evaluated > 0);
      check_ctx_matches_full (Printf.sprintf "tp eco %d" k) ctx)
    nets

let test_eco_upsize () =
  let ctx = eco_ctx ~seed:13 () in
  let d = Flow.Retime.design ctx in
  (* upsize a few upsizable combinational cells *)
  let done_ = ref 0 in
  let iid = ref 0 in
  while !done_ < 3 && !iid < Design.num_insts d do
    let i = Design.inst d !iid in
    if (not i.Design.cell.Cell.sequential)
       && Stdcell.Library.upsize d.Design.lib i.Design.cell <> None
       && Layout.Place.is_placed (Flow.Retime.placement ctx) !iid
    then begin
      (match Flow.Retime.upsize ctx ~inst:!iid with
       | Some _ -> incr done_
       | None -> ());
      check_ctx_matches_full (Printf.sprintf "upsize eco %d" !done_) ctx
    end;
    iid := !iid + 17
  done;
  Alcotest.(check bool) "upsized some" true (!done_ > 0)

let test_eco_buffer () =
  let ctx = eco_ctx ~seed:21 ~tp_percent:0.0 () in
  let nets = pick_nets (Flow.Retime.design ctx) 2 in
  List.iteri
    (fun k net ->
      let _, stats = Flow.Retime.insert_buffer ctx ~net in
      Alcotest.(check bool) "cone evaluated" true (stats.I.insts_evaluated > 0);
      check_ctx_matches_full (Printf.sprintf "buffer eco %d" k) ctx)
    nets

let test_eco_cone_bounded () =
  (* the re-timed cone after one TP insert stays well below the design *)
  let ctx = eco_ctx ~seed:17 ~ffs:80 ~gates:1200 () in
  let d = Flow.Retime.design ctx in
  let net = List.hd (pick_nets d 1) in
  let _, stats = Flow.Retime.insert_tp ctx ~net in
  let total = Design.num_insts d in
  Alcotest.(check bool)
    (Printf.sprintf "cone %d of %d insts" stats.I.insts_evaluated total)
    true
    (stats.I.insts_evaluated < total / 2)

let test_timingfix_modes_equal () =
  (* the per-edit incremental engine must reproduce the per-pass engine's
     report bit for bit: two identical designs, one run each way *)
  let mk () =
    let d = Circuits.Bench.tiny ~seed:29 ~ffs:40 ~gates:400 () in
    let fp = Layout.Floorplan.create d in
    Layout.Place.run d fp
  in
  let full = Flow.Timingfix.run ~mode:Flow.Timingfix.Full_sta (mk ()) in
  let inc = Flow.Timingfix.run ~mode:Flow.Timingfix.Incremental_sta (mk ()) in
  Alcotest.(check int) "rounds" full.Flow.Timingfix.rounds inc.Flow.Timingfix.rounds;
  Alcotest.(check int) "upsized" full.Flow.Timingfix.upsized_cells
    inc.Flow.Timingfix.upsized_cells;
  List.iter
    (fun (name, a, b) ->
      if bits a <> bits b then Alcotest.failf "%s: %h <> %h" name a b)
    [ ("t_cp_before", full.Flow.Timingfix.t_cp_before, inc.Flow.Timingfix.t_cp_before);
      ("t_cp_after", full.Flow.Timingfix.t_cp_after, inc.Flow.Timingfix.t_cp_after);
      ("area_after", full.Flow.Timingfix.cell_area_after, inc.Flow.Timingfix.cell_area_after);
      ( "wirelength",
        full.Flow.Timingfix.route.Layout.Route.total_wirelength,
        inc.Flow.Timingfix.route.Layout.Route.total_wirelength ) ];
  check_analysis_equal "final sta" full.Flow.Timingfix.sta inc.Flow.Timingfix.sta

let test_pipeline_sta_modes_equal () =
  let mk () = Circuits.Bench.tiny ~seed:31 ~ffs:40 ~gates:400 () in
  let opts mode =
    { Flow.Pipeline.default_options with
      Flow.Pipeline.tp_percent = 2.0;
      run_atpg = false;
      sta_mode = mode }
  in
  let full = Flow.Pipeline.run ~options:(opts Flow.Pipeline.Full_sta) (mk ()) in
  let inc = Flow.Pipeline.run ~options:(opts Flow.Pipeline.Incremental_sta) (mk ()) in
  check_analysis_equal "pipeline sta modes" full.Flow.Pipeline.sta inc.Flow.Pipeline.sta;
  Alcotest.(check bool) "graph kept alive" true (inc.Flow.Pipeline.tgraph <> None);
  Alcotest.(check bool) "full mode has no graph" true (full.Flow.Pipeline.tgraph = None)

let test_sweep_eco () =
  let s = Flow.Experiment.sweep_eco ~tp_levels:[ 1; 2; 3 ] ~scale:0.05 "s38417" in
  let counts = List.map (fun r -> r.Flow.Experiment.e_tp_count) s.Flow.Experiment.eco_rows in
  Alcotest.(check bool) "cumulative tp counts" true (List.sort compare counts = counts);
  Alcotest.(check bool) "inserted some" true (List.nth counts 2 > 0);
  List.iter
    (fun (r : Flow.Experiment.eco_row) ->
      Alcotest.(check bool) "tcp positive" true (r.Flow.Experiment.e_tcp > 0.0))
    s.Flow.Experiment.eco_rows;
  (* the live context is still exact after the whole sweep *)
  check_ctx_matches_full "post-sweep" s.Flow.Experiment.eco_ctx

(* QCheck: on a random design, a random sequence of ECO edits (TP insert,
   buffer insert, gate resize) leaves the context equal to a from-scratch
   full run after EVERY edit — the incremental timing contract *)
let gen_eco_case =
  QCheck.make
    ~print:(fun (seed, edits) ->
      Printf.sprintf "seed=%d edits=[%s]" seed
        (String.concat ";"
           (List.map (fun (k, i) -> Printf.sprintf "(%d,%d)" k i) edits)))
    QCheck.Gen.(
      pair (int_range 1 10_000)
        (list_size (int_range 3 6) (pair (int_range 0 2) (int_range 0 1_000))))

let upsizable_insts d =
  let acc = ref [] in
  Design.iter_insts d (fun i ->
      if Stdcell.Library.upsize d.Design.lib i.Design.cell <> None then
        acc := i.Design.id :: !acc);
  Array.of_list (List.rev !acc)

let prop_random_eco_sequence =
  QCheck.Test.make ~name:"random ECO sequences stay exact" ~count:6 gen_eco_case
    (fun (seed, edits) ->
      let d = Circuits.Bench.tiny ~seed ~ffs:30 ~gates:250 () in
      let options =
        { Flow.Pipeline.default_options with
          Flow.Pipeline.tp_percent = 1.0;
          run_atpg = false }
      in
      let r = Flow.Pipeline.run ~options d in
      let ctx =
        Flow.Retime.create r.Flow.Pipeline.placement r.Flow.Pipeline.route
          r.Flow.Pipeline.rc
      in
      List.for_all
        (fun (kind, pick) ->
          let d = Flow.Retime.design ctx in
          (match kind with
           | 0 ->
             let nets = pick_nets d 8 in
             let net = List.nth nets (pick mod List.length nets) in
             ignore (Flow.Retime.insert_tp ctx ~net)
           | 1 ->
             let nets = pick_nets d 8 in
             let net = List.nth nets (pick mod List.length nets) in
             ignore (Flow.Retime.insert_buffer ctx ~net)
           | _ ->
             let ups = upsizable_insts d in
             ignore (Flow.Retime.upsize ctx ~inst:ups.(pick mod Array.length ups)));
          let pl = Flow.Retime.placement ctx in
          let rt = Layout.Route.run pl in
          let rc = Layout.Extract.run pl rt in
          let full = A.run pl rc in
          let inc = Flow.Retime.analysis ctx in
          Array.for_all2 (fun a b -> bits a = bits b) full.A.arrival inc.A.arrival
          && Array.for_all2 (fun a b -> bits a = bits b) full.A.slew inc.A.slew
          && full.A.per_domain = inc.A.per_domain
          && full.A.worst = inc.A.worst
          && full.A.slow_nodes = inc.A.slow_nodes)
        edits)

let test_lint_reuses_graph () =
  let d = Circuits.Bench.tiny ~seed:41 ~ffs:40 ~gates:400 () in
  let options =
    { Flow.Pipeline.default_options with
      Flow.Pipeline.tp_percent = 3.0;
      run_atpg = false;
      lint = true;
      sta_mode = Flow.Pipeline.Incremental_sta }
  in
  let r = Flow.Pipeline.run ~options d in
  match r.Flow.Pipeline.lint_report with
  | None -> Alcotest.fail "no post-layout lint report"
  | Some rep ->
    (* only the post-layout packs ran, with real STA artifacts *)
    List.iter
      (fun (s : Lint.Engine.stat) ->
        Alcotest.(check bool) ("pack of " ^ s.Lint.Engine.rule_id) true
          (List.mem s.Lint.Engine.pack [ "tpi-timing"; "tpi-repair" ]))
      rep.Lint.Engine.stats;
    Alcotest.(check bool) "ran some rules" true (rep.Lint.Engine.stats <> [])

let suite =
  [ Alcotest.test_case "tgraph mini = analysis" `Quick test_tgraph_mini;
    Alcotest.test_case "tgraph tiny = analysis" `Quick test_tgraph_tiny;
    Alcotest.test_case "tgraph full flow = analysis" `Quick test_tgraph_full_flow;
    Alcotest.test_case "tgraph pool bit-identical" `Quick test_tgraph_pool_identical;
    Alcotest.test_case "tgraph wns = slack report" `Quick test_tgraph_wns_matches_slack_report;
    Alcotest.test_case "required times consistent" `Quick test_required_consistent;
    Alcotest.test_case "eco tp insert = full rerun" `Quick test_eco_tp_insert;
    Alcotest.test_case "eco upsize = full rerun" `Quick test_eco_upsize;
    Alcotest.test_case "eco buffer = full rerun" `Quick test_eco_buffer;
    Alcotest.test_case "eco cone bounded" `Quick test_eco_cone_bounded;
    Alcotest.test_case "timingfix modes equal" `Quick test_timingfix_modes_equal;
    Alcotest.test_case "pipeline sta modes equal" `Quick test_pipeline_sta_modes_equal;
    Alcotest.test_case "eco sweep exact" `Quick test_sweep_eco;
    Alcotest.test_case "lint reuses graph" `Quick test_lint_reuses_graph;
    QCheck_alcotest.to_alcotest prop_random_eco_sequence ]
