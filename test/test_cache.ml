(* Stage cache: store tiers (LRU memory, digest-verified disk), key
   derivation, single-flight under domains, metrics-delta capture, and the
   §6.2 contract — cold, warm-memory and warm-disk sweeps byte-identical
   in tables and kernel metrics at any -j, with corruption falling back to
   recompute. *)

module Store = Cache.Store
module Design = Netlist.Design
module M = Obs.Metrics

let tmp_dir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpi-cache-test-%d" (Unix.getpid ()))
  in
  fun suffix ->
    let dir = d ^ "-" ^ suffix in
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    dir

(* ---- key derivation ---- *)

let test_key_derivation () =
  let k = Store.key [ "a"; "bc" ] in
  Alcotest.(check int) "hex digest width" 32 (String.length k);
  Alcotest.(check string) "deterministic" k (Store.key [ "a"; "bc" ]);
  Alcotest.(check bool) "parts are length-prefixed" true
    (Store.key [ "ab"; "c" ] <> k);
  Alcotest.(check bool) "order matters" true (Store.key [ "bc"; "a" ] <> k)

(* ---- memory tier: add/find and LRU eviction ---- *)

let test_memory_tier () =
  let t = Store.create ~mem_capacity:10 () in
  Alcotest.(check (option string)) "empty miss" None (Store.find t "k1");
  Store.add t "k1" "aaaa";
  Store.add t "k2" "bbbb";
  Alcotest.(check (option string)) "hit" (Some "aaaa") (Store.find t "k1");
  Alcotest.(check int) "entries" 2 (Store.mem_entries t);
  Alcotest.(check int) "bytes" 8 (Store.mem_bytes t);
  (* k1 was just touched, so inserting 4 more bytes evicts k2 (LRU) *)
  Store.add t "k3" "cccc";
  Alcotest.(check (option string)) "lru evicted" None (Store.find t "k2");
  Alcotest.(check (option string)) "recent survives" (Some "aaaa") (Store.find t "k1");
  Alcotest.(check (option string)) "new present" (Some "cccc") (Store.find t "k3");
  Alcotest.(check bool) "capacity respected" true (Store.mem_bytes t <= 10);
  (* an entry larger than the whole tier is refused, not thrashed *)
  Store.add t "big" (String.make 64 'x');
  Alcotest.(check (option string)) "oversized not resident" None (Store.find t "big")

(* ---- disk tier: persistence, promotion, corruption fallback ---- *)

let test_disk_tier () =
  let dir = tmp_dir "disk" in
  let t1 = Store.create ~dir () in
  Store.add t1 "deadbeef" "payload-bytes";
  (* a second store on the same directory starts with a cold memory tier
     but finds the entry on disk and promotes it *)
  let t2 = Store.create ~dir () in
  Alcotest.(check int) "fresh memory tier" 0 (Store.mem_entries t2);
  Alcotest.(check (option string)) "disk hit" (Some "payload-bytes")
    (Store.find t2 "deadbeef");
  Alcotest.(check int) "promoted" 1 (Store.mem_entries t2)

let test_disk_corruption_falls_back () =
  let dir = tmp_dir "corrupt" in
  let t = Store.create ~dir () in
  Store.add t "cafe" "good-bytes";
  Store.add t "f00d" "other-bytes";
  (* corrupt one entry, truncate the other *)
  let write path s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  write (Filename.concat dir "cafe") "garbage that is not a cache entry";
  write (Filename.concat dir "f00d") "TPICA";
  let fresh = Store.create ~dir () in
  let corrupt_before = M.value (M.counter "cache.disk_corrupt") in
  Alcotest.(check (option string)) "corrupted entry rejected" None
    (Store.find fresh "cafe");
  Alcotest.(check (option string)) "truncated entry rejected" None
    (Store.find fresh "f00d");
  Alcotest.(check int) "corruptions counted"
    (corrupt_before + 2)
    (M.value (M.counter "cache.disk_corrupt"));
  (* find_or_compute recomputes and heals the entry in place *)
  let v, hit = Store.find_or_compute fresh ~key:"cafe" (fun () -> "recomputed") in
  Alcotest.(check string) "recomputed" "recomputed" v;
  Alcotest.(check bool) "was a miss" false hit;
  let t3 = Store.create ~dir () in
  Alcotest.(check (option string)) "healed on disk" (Some "recomputed")
    (Store.find t3 "cafe")

(* ---- memo: structurally fresh copies ---- *)

let test_memo_fresh_copies () =
  let t = Store.create () in
  let built = ref 0 in
  let mk () =
    incr built;
    Array.init 4 (fun i -> i)
  in
  let a = Store.memo t ~key:"arr" mk in
  a.(0) <- 99;
  let b = Store.memo t ~key:"arr" mk in
  Alcotest.(check int) "built once" 1 !built;
  Alcotest.(check int) "caller mutation does not leak" 0 b.(0);
  Alcotest.(check bool) "distinct copies" true (a != b)

(* ---- single flight: concurrent requesters, one compute ---- *)

let test_single_flight () =
  let t = Store.create () in
  let computed = Atomic.make 0 in
  let compute () =
    Atomic.incr computed;
    Unix.sleepf 0.02;
    "shared-value"
  in
  let workers =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () -> fst (Store.find_or_compute t ~key:"sf" compute)))
  in
  let values = Array.map Domain.join workers in
  Array.iter (fun v -> Alcotest.(check string) "same value" "shared-value" v) values;
  Alcotest.(check int) "computed exactly once" 1 (Atomic.get computed)

(* ---- Design.fingerprint: structural, mutation-sensitive ---- *)

let test_fingerprint () =
  let mk () = Circuits.Bench.tiny ~ffs:20 ~gates:200 () in
  let d1 = mk () and d2 = mk () in
  Alcotest.(check string) "structurally equal designs agree"
    (Design.fingerprint d1) (Design.fingerprint d2);
  let before = Design.fingerprint d2 in
  (Design.inst d2 0).Design.iname <- "renamed";
  Alcotest.(check bool) "instance rename changes it" true
    (Design.fingerprint d2 <> before);
  let d3 = mk () in
  ignore (Design.add_net d3 "extra_net");
  Alcotest.(check bool) "added net changes it" true
    (Design.fingerprint d3 <> Design.fingerprint d1)

(* ---- Metrics.with_scoped: exact delta, ambient effect preserved ---- *)

let test_with_scoped_delta () =
  let c = M.counter "cache.test.scoped_counter" in
  let base = M.value c in
  let (), delta = M.with_scoped (fun () -> M.add c 7) in
  Alcotest.(check int) "ambient sees the adds" (base + 7) (M.value c);
  (* replaying the delta doubles the counter: exactly what a hit does *)
  M.absorb delta;
  Alcotest.(check int) "delta replays exactly" (base + 14) (M.value c)

(* ---- the §6.2 contract: cold = warm-memory = warm-disk, at -j 1 and 4 ---- *)

let metrics_sans_cache () =
  Format.asprintf "%a" M.pp ()
  |> String.split_on_char '\n'
  |> List.filter (fun line -> not (Astring_contains.contains line "cache."))
  |> String.concat "\n"

let render ?pool ?cache () =
  M.reset ();
  let rows =
    Flow.Experiment.sweep ?pool ?cache ~with_atpg:false ~tp_levels:[ 0; 2; 4 ]
      ~scale:0.06 "s38417"
  in
  (Flow.Report.table2 rows ^ Flow.Report.table3 rows, metrics_sans_cache ())

let test_sweep_byte_identity () =
  let dir = tmp_dir "sweep" in
  let t0, m0 = render () in
  let store = Store.create ~dir () in
  let t_cold, m_cold = render ~cache:store () in
  let t_warm, m_warm = render ~cache:store () in
  let t_disk, m_disk = render ~cache:(Store.create ~dir ()) () in
  Alcotest.(check string) "cold-with-cache tables" t0 t_cold;
  Alcotest.(check string) "warm-memory tables" t0 t_warm;
  Alcotest.(check string) "warm-disk tables" t0 t_disk;
  Alcotest.(check string) "cold-with-cache metrics" m0 m_cold;
  Alcotest.(check string) "warm-memory metrics" m0 m_warm;
  Alcotest.(check string) "warm-disk metrics" m0 m_disk;
  Par.Pool.with_pool ~domains:4 (fun p ->
      let t_j4, m_j4 = render ~pool:p ~cache:(Store.create ~dir ()) () in
      Alcotest.(check string) "warm-disk -j4 tables" t0 t_j4;
      Alcotest.(check string) "warm-disk -j4 metrics" m0 m_j4)

let test_hit_accounting () =
  let store = Store.create () in
  (* [render] resets the registry, so counters read as per-run deltas *)
  let stage_hits () = M.value (M.counter "cache.stage_hits") in
  let stage_misses () = M.value (M.counter "cache.stage_misses") in
  let _ = render ~cache:store () in
  (* 7 stages x 3 levels, all cold *)
  Alcotest.(check int) "cold run misses every stage" 21 (stage_misses ());
  Alcotest.(check int) "cold run hits nothing" 0 (stage_hits ());
  Alcotest.(check int) "one entry per stage plus design-gen" 22 (Store.mem_entries store);
  let _ = render ~cache:store () in
  Alcotest.(check int) "warm run hits every stage" 21 (stage_hits ());
  Alcotest.(check int) "warm run misses nothing" 0 (stage_misses ())

let test_corrupted_entries_recompute () =
  let dir = tmp_dir "sweep-corrupt" in
  let t0, _ = render () in
  let _ = render ~cache:(Store.create ~dir ()) () in
  Array.iter
    (fun f ->
      let oc = open_out_bin (Filename.concat dir f) in
      output_string oc "scribbled over by a crashing writer";
      close_out oc)
    (Sys.readdir dir);
  let t_again, _ = render ~cache:(Store.create ~dir ()) () in
  Alcotest.(check string) "recomputed tables identical" t0 t_again;
  Alcotest.(check bool) "corruptions observed" true
    (M.value (M.counter "cache.disk_corrupt") > 0)

(* ---- guarded runs share the cache; tampered runs bypass it ---- *)

let test_guarded_warm_run () =
  let store = Store.create () in
  let sweep () =
    M.reset ();
    let grows =
      Flow.Experiment.sweep_guarded ~cache:store ~with_atpg:false
        ~tp_levels:[ 0; 2 ] ~scale:0.06 "s38417"
    in
    Flow.Report.table2 (Flow.Experiment.completed_rows grows)
    ^ Flow.Report.guarded_summary grows
  in
  let cold = sweep () in
  let hits_before = M.value (M.counter "cache.stage_hits") in
  let warm = sweep () in
  Alcotest.(check string) "guarded warm run byte-identical" cold warm;
  Alcotest.(check bool) "warm run served from cache" true
    (M.value (M.counter "cache.stage_hits") > hits_before)

let test_tamper_bypasses_cache () =
  let store = Store.create () in
  let spec = Flow.Experiment.spec_for ~scale:0.06 "s38417" in
  let tamper ~attempt:_ _stage _st = () in
  let g =
    Flow.Experiment.run_one_guarded ~cache:store ~tamper ~with_atpg:false spec ~tp_pct:2
  in
  Alcotest.(check bool) "flow completed" true (Flow.Guard.succeeded g.Flow.Experiment.g_report);
  (* only the design-generation memo may be present: no stage entries *)
  Alcotest.(check int) "no stage entries stored" 1 (Store.mem_entries store)

let suite =
  [ Alcotest.test_case "key derivation" `Quick test_key_derivation;
    Alcotest.test_case "memory tier LRU" `Quick test_memory_tier;
    Alcotest.test_case "disk tier roundtrip" `Quick test_disk_tier;
    Alcotest.test_case "disk corruption falls back" `Quick test_disk_corruption_falls_back;
    Alcotest.test_case "memo returns fresh copies" `Quick test_memo_fresh_copies;
    Alcotest.test_case "single flight" `Quick test_single_flight;
    Alcotest.test_case "design fingerprint" `Quick test_fingerprint;
    Alcotest.test_case "with_scoped exact delta" `Quick test_with_scoped_delta;
    Alcotest.test_case "sweep byte-identity (cold/warm/disk, -j)" `Slow
      test_sweep_byte_identity;
    Alcotest.test_case "hit accounting" `Quick test_hit_accounting;
    Alcotest.test_case "corrupted entries recompute" `Quick
      test_corrupted_entries_recompute;
    Alcotest.test_case "guarded warm run" `Quick test_guarded_warm_run;
    Alcotest.test_case "tamper bypasses cache" `Quick test_tamper_bypasses_cache ]
