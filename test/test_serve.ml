(* Flow-as-a-service: the JSONL protocol's hostile-input handling, the
   bounded priority queue, per-class retry policies, cooperative
   cancellation through the guarded flow, cross-process cache hardening,
   and end-to-end daemon behavior — byte-identity with the one-shot
   renderer, retry recovery, the service fault matrix, graceful drain and
   deadline enforcement. *)

module Protocol = Serve.Protocol
module Jobq = Serve.Jobq
module Retry = Serve.Retry
module Daemon = Serve.Daemon
module Client = Serve.Client
module Chaos = Serve.Chaos
module Guard = Flow.Guard
module Cancel = Flow.Cancel
module Experiment = Flow.Experiment
module Store = Cache.Store
module J = Obs.Json

let tmp_dir suffix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpi-serve-test-%d-%s" (Unix.getpid ()) suffix)
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let scratch_socket suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "tpi-st-%d-%s.sock" (Unix.getpid ()) suffix)

(* ---- protocol: parsing and defence ---- *)

let test_parse_submit () =
  let line =
    {|{"op":"submit","id":"j1","circuit":"pcore_a","scale":0.1,"levels":[0,2],
       "atpg":true,"tables":[1,2],"policy":"degrade","priority":7,
       "deadline_ms":5000,"fail_attempts":2,"sleep_ms":10}|}
  in
  let line = String.concat "" (String.split_on_char '\n' line) in
  (match Protocol.parse_request line with
   | Ok (Protocol.Submit { id; priority; deadline_ms; spec }) ->
     Alcotest.(check string) "id" "j1" id;
     Alcotest.(check int) "priority" 7 priority;
     Alcotest.(check (option (float 0.01))) "deadline" (Some 5000.0) deadline_ms;
     Alcotest.(check string) "circuit" "pcore_a" spec.Protocol.circuit;
     Alcotest.(check (list int)) "levels" [ 0; 2 ] spec.Protocol.tp_levels;
     Alcotest.(check bool) "atpg" true spec.Protocol.with_atpg;
     Alcotest.(check bool) "policy" true (spec.Protocol.policy = Guard.Degrade);
     Alcotest.(check int) "fail_attempts" 2 spec.Protocol.fail_attempts;
     Alcotest.(check int) "sleep_ms" 10 spec.Protocol.sleep_ms
   | _ -> Alcotest.fail "submit did not parse");
  (* omitted fields take the one-shot CLI defaults *)
  match Protocol.parse_request {|{"op":"submit","id":"j2"}|} with
  | Ok (Protocol.Submit { spec; priority; deadline_ms; _ }) ->
    Alcotest.(check string) "default circuit" "s38417" spec.Protocol.circuit;
    Alcotest.(check (list int)) "default levels" [ 0; 1; 2; 3; 4; 5 ]
      spec.Protocol.tp_levels;
    Alcotest.(check (list int)) "default tables" [ 2; 3 ] spec.Protocol.tables;
    Alcotest.(check int) "default priority" 0 priority;
    Alcotest.(check bool) "no deadline" true (deadline_ms = None);
    Alcotest.(check bool) "default policy" true (spec.Protocol.policy = Guard.Fail_fast)
  | _ -> Alcotest.fail "defaulted submit did not parse"

let expect_error name line =
  match Protocol.parse_request line with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail (name ^ ": hostile line parsed as a request")

let test_malformed_lines () =
  List.iter
    (fun (name, line) -> expect_error name line)
    [ ("empty", "");
      ("truncated object", {|{"op":"submit","id":|});
      ("truncated string", {|{"op":"subm|});
      ("bare word", "submit please");
      ("non-object", {|["op","submit"]|});
      ("number", "42");
      ("missing op", {|{"id":"j1"}|});
      ("unknown op", {|{"op":"reboot"}|});
      ("cancel without id", {|{"op":"cancel"}|});
      ("bad priority", {|{"op":"submit","id":"j","priority":11}|});
      ("bad level", {|{"op":"submit","id":"j","levels":[0,101]}|});
      ("empty levels", {|{"op":"submit","id":"j","levels":[]}|});
      ("bad policy", {|{"op":"submit","id":"j","policy":"yolo"}|});
      ("long id", Printf.sprintf {|{"op":"submit","id":"%s"}|} (String.make 129 'a'));
      ("negative sleep", {|{"op":"submit","id":"j","sleep_ms":-1}|}) ]

let test_oversized_line () =
  let line = String.make (Protocol.max_line_bytes + 1) 'x' in
  expect_error "oversized" line;
  (* the limit itself is admissible as a length (still malformed JSON) *)
  match Protocol.parse_request (String.make Protocol.max_line_bytes 'x') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage at the limit parsed"

let test_non_utf8 () =
  List.iter
    (fun (name, line) -> expect_error name line)
    [ ("lone continuation", "{\"op\":\"ping\"}\x80");
      ("truncated 2-byte", "{\"op\":\"ping\xC3");
      ("overlong slash", "\xC0\xAF{\"op\":\"ping\"}");
      ("surrogate half", "{\"op\":\"\xED\xA0\x80\"}");
      ("past U+10FFFF", "{\"op\":\"\xF4\x90\x80\x80\"}") ];
  Alcotest.(check bool) "valid multibyte accepted" true
    (Protocol.is_valid_utf8 "{\"op\":\"caf\xC3\xA9 \xE2\x9C\x93\"}")

let test_deep_nesting () =
  (* far past the depth bound: must come back as a typed error, not a
     stack overflow *)
  let deep n = String.concat "" (List.init n (fun _ -> "[")) in
  expect_error "unclosed 4k-deep" (deep 4096);
  let wrapped n =
    {|{"op":"submit","id":"j","x":|}
    ^ String.concat "" (List.init n (fun _ -> "["))
    ^ String.concat "" (List.init n (fun _ -> "]"))
    ^ "}"
  in
  expect_error "closed 64-deep" (wrapped 64);
  match Protocol.parse_request (wrapped 8) with
  | Ok (Protocol.Submit _) -> ()
  | _ -> Alcotest.fail "shallow nesting rejected"

let fuzz_parser_total =
  QCheck.Test.make ~name:"parse_request is total on arbitrary bytes" ~count:1000
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s ->
      match Protocol.parse_request s with Ok _ | Error _ -> true)

(* ---- job queue ---- *)

let test_jobq_priority () =
  let q = Jobq.create ~capacity:8 () in
  List.iter
    (fun (p, x) ->
      match Jobq.push q ~priority:p x with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "push rejected below capacity")
    [ (0, "low1"); (5, "mid1"); (0, "low2"); (9, "hi"); (5, "mid2") ];
  let popped = List.init 5 (fun _ -> Option.get (Jobq.pop q)) in
  (* highest priority first, FIFO within a priority *)
  Alcotest.(check (list string)) "pop order" [ "hi"; "mid1"; "mid2"; "low1"; "low2" ]
    popped

let test_jobq_bounds () =
  let q = Jobq.create ~capacity:2 () in
  Alcotest.(check bool) "1st" true (Result.is_ok (Jobq.push q ~priority:0 "a"));
  Alcotest.(check bool) "2nd" true (Result.is_ok (Jobq.push q ~priority:0 "b"));
  (match Jobq.push q ~priority:9 "c" with
   | Error (Jobq.Full { depth; capacity }) ->
     Alcotest.(check int) "depth" 2 depth;
     Alcotest.(check int) "capacity" 2 capacity
   | _ -> Alcotest.fail "over-capacity push admitted");
  Jobq.close q;
  (match Jobq.push q ~priority:0 "d" with
   | Error Jobq.Closed -> ()
   | _ -> Alcotest.fail "closed queue admitted a push");
  (* closed but non-empty: drains, then None *)
  Alcotest.(check (option string)) "drain a" (Some "a") (Jobq.pop q);
  Alcotest.(check (option string)) "drain b" (Some "b") (Jobq.pop q);
  Alcotest.(check (option string)) "closed empty" None (Jobq.pop q)

let test_jobq_scan_remove () =
  let q = Jobq.create ~capacity:8 () in
  List.iter
    (fun (p, x) -> ignore (Jobq.push q ~priority:p x))
    [ (1, "keep1"); (1, "drop1"); (3, "drop2"); (3, "keep2") ];
  let removed = Jobq.scan_remove q (fun x -> String.length x >= 4 && String.sub x 0 4 = "drop") in
  Alcotest.(check (list string)) "removed in pop order" [ "drop2"; "drop1" ] removed;
  Alcotest.(check int) "remaining" 2 (Jobq.length q);
  Alcotest.(check (option string)) "survivors order 1" (Some "keep2") (Jobq.pop q);
  Alcotest.(check (option string)) "survivors order 2" (Some "keep1") (Jobq.pop q)

(* ---- retry policies ---- *)

let stage_error detail =
  { Guard.stage = Guard.Extract; circuit = "s38417"; detail }

let test_retry_table () =
  Alcotest.(check bool) "transient retryable" true
    (Retry.retryable (stage_error "transient: flaky license") <> None);
  Alcotest.(check bool) "oom retryable" true
    (Retry.retryable (stage_error "out-of-memory: arena") <> None);
  Alcotest.(check bool) "checker class permanent" true
    (Retry.retryable (stage_error "cell-overlap: two cells") = None);
  Alcotest.(check bool) "cancelled never retryable" true
    (Retry.retryable (stage_error "cancelled: deadline") = None);
  match Retry.policy_for "transient" with
  | None -> Alcotest.fail "transient missing from the table"
  | Some p -> Alcotest.(check int) "transient budget" 4 p.Retry.max_retries

let test_retry_backoff () =
  match Retry.policy_for "transient" with
  | None -> Alcotest.fail "transient missing"
  | Some p ->
    Alcotest.(check (float 0.001)) "attempt 1" 25.0 (Retry.backoff_ms p ~attempt:1);
    Alcotest.(check (float 0.001)) "attempt 2" 50.0 (Retry.backoff_ms p ~attempt:2);
    Alcotest.(check (float 0.001)) "attempt 4" 200.0 (Retry.backoff_ms p ~attempt:4);
    Alcotest.(check (float 0.001)) "capped" 2000.0 (Retry.backoff_ms p ~attempt:20)

(* ---- cancellation through the guarded flow ---- *)

let test_cancel_token () =
  let spec = Experiment.spec_for ~scale:0.05 "s38417" in
  let cancel = Cancel.create () in
  Cancel.cancel cancel ~reason:"test-stop";
  let g =
    Experiment.run_one_guarded ~policy:Guard.Degrade ~cancel ~with_atpg:false spec
      ~tp_pct:0
  in
  (match g.Experiment.g_report.Guard.error with
   | Some e ->
     Alcotest.(check bool) "typed cancelled" true (Guard.is_cancelled e);
     Alcotest.(check bool) "reason in detail" true
       (Astring_contains.contains e.Guard.detail "test-stop")
   | None -> Alcotest.fail "cancelled run reported success");
  Alcotest.(check bool) "no result" true (g.Experiment.g_report.Guard.result = None);
  (* a deadline is just a cancel that fires on the clock *)
  let d = Cancel.create ~deadline_ms:1.0 () in
  Alcotest.(check bool) "not yet fired" true (Cancel.state d = None || true);
  let until = Obs.Clock.now_us () +. 10_000.0 in
  while Obs.Clock.now_us () < until do
    ()
  done;
  Alcotest.(check (option string)) "deadline fired" (Some "deadline") (Cancel.state d)

let test_transient_class () =
  let spec = Experiment.spec_for ~scale:0.05 "s38417" in
  let tamper ~attempt:_ stage _ =
    if stage = Guard.Extract then raise (Guard.Transient "injected hiccup")
  in
  let g =
    Experiment.run_one_guarded ~policy:Guard.Degrade ~tamper ~with_atpg:false spec
      ~tp_pct:0
  in
  match g.Experiment.g_report.Guard.error with
  | Some e ->
    Alcotest.(check string) "classified transient" "transient" (Guard.error_class e);
    Alcotest.(check bool) "is_transient" true (Guard.is_transient e);
    Alcotest.(check bool) "retry policy applies" true (Retry.retryable e <> None)
  | None -> Alcotest.fail "transient crash reported success"

(* ---- cache hardening ---- *)

let test_stale_tmp_cleanup () =
  let dir = tmp_dir "staletmp" in
  let t = Store.create ~dir () in
  Store.add t "deadbeef" "payload";
  let plant name = Out_channel.with_open_bin (Filename.concat dir name)
      (fun oc -> Out_channel.output_string oc "partial") in
  plant "deadbeef.tmp-999999-0";                              (* dead pid *)
  plant (Printf.sprintf "deadbeef.tmp-%d-7" (Unix.getpid ())); (* own debris *)
  plant "deadbeef.tmp-1-0";                                   (* live pid 1 *)
  ignore (Store.create ~dir ());
  Alcotest.(check bool) "dead writer's tmp swept" false
    (Sys.file_exists (Filename.concat dir "deadbeef.tmp-999999-0"));
  Alcotest.(check bool) "own debris swept" false
    (Sys.file_exists (Filename.concat dir (Printf.sprintf "deadbeef.tmp-%d-7" (Unix.getpid ()))));
  Alcotest.(check bool) "live writer's tmp kept" true
    (Sys.file_exists (Filename.concat dir "deadbeef.tmp-1-0"));
  let t2 = Store.create ~dir () in
  Alcotest.(check (option string)) "real entry untouched" (Some "payload")
    (Store.find t2 "deadbeef")

(* two separate writer processes race find_or_compute on the same key;
   the per-key file lock must let exactly one of them compute. Spawned as
   fork+exec of a helper binary: a bare Unix.fork is forbidden here once
   earlier suites have created domains. *)
let test_forked_writers () =
  let dir = tmp_dir "forked" in
  ignore (Store.create ~dir ()); (* materialize the directory *)
  let key = Store.key [ "forked-single-flight" ] in
  let marker = Filename.concat dir "compute-count" in
  let writer =
    Filename.concat (Filename.dirname Sys.executable_name) "forked_writer.exe"
  in
  let spawn () =
    Unix.create_process writer [| writer; dir; key; marker |] Unix.stdin Unix.stdout
      Unix.stderr
  in
  let pids = [ spawn (); spawn () ] in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "forked writer failed")
    pids;
  Alcotest.(check int) "exactly one compute across processes" 1
    (Unix.stat marker).Unix.st_size;
  let t = Store.create ~dir () in
  Alcotest.(check (option string)) "entry published" (Some "shared-value")
    (Store.find t key)

(* ---- the daemon end to end ---- *)

let with_daemon ?(capacity = 8) suffix f =
  let socket_path = scratch_socket suffix in
  let cfg = { (Daemon.default_config ~socket_path) with Daemon.queue_capacity = capacity } in
  let t = Daemon.start cfg in
  let finish = ref true in
  Fun.protect
    ~finally:(fun () ->
      if !finish then begin
        Daemon.drain t;
        ignore (Daemon.wait t)
      end)
    (fun () -> f socket_path t)

let tiny_submit ~id ?priority ?deadline_ms ?fail_attempts ?sleep_ms ?(levels = [ 0 ]) () =
  Client.submit_line ~id ?priority ?deadline_ms ?fail_attempts ?sleep_ms
    ~circuit:"s38417" ~scale:0.05 ~levels ~tables:[ 2 ] ()

let test_served_byte_identity () =
  (* what the one-shot CLI would print for the same flags, via the same
     library entry points it uses *)
  let spec = Experiment.spec_for ~scale:0.05 "s38417" in
  let grows =
    List.map
      (fun tp_pct ->
        Experiment.run_one_guarded ~policy:Guard.Fail_fast ~with_atpg:false spec ~tp_pct)
      [ 0; 1 ]
  in
  let expected =
    Flow.Report.table2 (Experiment.completed_rows grows)
    ^ Flow.Report.guarded_summary grows
  in
  with_daemon "bytes" (fun socket_path _ ->
      let c = Client.connect ~socket_path in
      Fun.protect ~finally:(fun () -> Client.close c)
        (fun () ->
          let o = Client.run_job c (tiny_submit ~id:"ident" ~levels:[ 0; 1 ] ()) in
          (match o.Client.output with
           | Some served -> Alcotest.(check string) "served = one-shot" expected served
           | None -> Alcotest.fail "job did not complete");
          Alcotest.(check int) "single attempt" 1 o.Client.attempts;
          (* per-stage streaming: 7 stages x 2 levels, all ok *)
          let stages =
            List.filter (fun e -> Protocol.event_of e = "stage") o.Client.events
          in
          Alcotest.(check int) "stage events" 14 (List.length stages);
          Alcotest.(check bool) "all stages ok" true
            (List.for_all
               (fun e -> Protocol.str_field "status" e = Some "ok")
               stages);
          let metrics =
            List.filter (fun e -> Protocol.event_of e = "metrics") o.Client.events
          in
          Alcotest.(check int) "metrics delta streamed" 1 (List.length metrics)))

let test_served_warm_cache_identity () =
  let dir = tmp_dir "servedcache" in
  let socket_path = scratch_socket "warm" in
  let cfg =
    { (Daemon.default_config ~socket_path) with
      Daemon.cache_dir = Some dir; queue_capacity = 4 }
  in
  let t = Daemon.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Daemon.drain t;
      ignore (Daemon.wait t))
    (fun () ->
      let c = Client.connect ~socket_path in
      Fun.protect ~finally:(fun () -> Client.close c)
        (fun () ->
          let cold = Client.run_job c (tiny_submit ~id:"cold" ~levels:[ 0; 1 ] ()) in
          let warm = Client.run_job c (tiny_submit ~id:"warm" ~levels:[ 0; 1 ] ()) in
          Alcotest.(check bool) "cold completed" true (cold.Client.output <> None);
          Alcotest.(check bool) "warm = cold bytes" true
            (warm.Client.output = cold.Client.output)))

let test_served_retry_recovery () =
  Alcotest.(check bool) "transient first attempt recovers on retry" true
    (Chaos.retry_recovers ())

let test_service_fault_matrix () =
  let outcomes = Chaos.selftest () in
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Flow.Inject.service_name o.Flow.Inject.fault ^ " detected+recovered") true
        o.Flow.Inject.s_detected)
    outcomes;
  Alcotest.(check int) "matrix size" 3 (List.length outcomes);
  Alcotest.(check bool) "all detected" true (Flow.Inject.all_service_detected outcomes)

let test_graceful_drain () =
  with_daemon "drain" (fun socket_path t ->
      let c = Client.connect ~socket_path in
      Fun.protect ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.request c (tiny_submit ~id:"sleeper" ~sleep_ms:300 ());
          let rec await pred =
            match Client.next_event c with
            | None -> None
            | Some j -> if pred j then Some j else await pred
          in
          (match
             await (fun j ->
                 Protocol.event_of j = "started" && Protocol.id_of j = Some "sleeper")
           with
           | Some _ -> ()
           | None -> Alcotest.fail "sleeper never started");
          Daemon.drain t;
          (* drain stops admission with a typed rejection... *)
          Client.request c (tiny_submit ~id:"late" ());
          (match
             await (fun j ->
                 Protocol.event_of j = "rejected" && Protocol.id_of j = Some "late")
           with
           | Some j ->
             Alcotest.(check (option string)) "draining class" (Some "draining")
               (Protocol.str_field "class" j)
           | None -> Alcotest.fail "post-drain submit was not rejected");
          (* ...but finishes the in-flight job before exiting cleanly *)
          Alcotest.(check int) "clean exit" 0 (Daemon.wait t);
          match
            await (fun j ->
                Protocol.event_of j = "done" && Protocol.id_of j = Some "sleeper")
          with
          | Some _ -> ()
          | None -> Alcotest.fail "accepted job dropped by drain"))

let test_deadline_and_cancel_op () =
  with_daemon "deadline" (fun socket_path _ ->
      let c = Client.connect ~socket_path in
      Fun.protect ~finally:(fun () -> Client.close c)
        (fun () ->
          (* deadline fires during the job's cancellable hold *)
          let o =
            Client.run_job c
              (tiny_submit ~id:"late-job" ~deadline_ms:50.0 ~sleep_ms:2000 ())
          in
          (match o.Client.error with
           | Some (cls, detail) ->
             Alcotest.(check string) "deadline class" "cancelled" cls;
             Alcotest.(check bool) "deadline reason" true
               (Astring_contains.contains detail "deadline")
           | None -> Alcotest.fail "deadline job completed");
          (* explicit cancel of a queued job reclaims its slot *)
          Client.request c (tiny_submit ~id:"hold" ~sleep_ms:400 ());
          let rec await pred =
            match Client.next_event c with
            | None -> None
            | Some j -> if pred j then Some j else await pred
          in
          ignore
            (await (fun j ->
                 Protocol.event_of j = "started" && Protocol.id_of j = Some "hold"));
          Client.request c (tiny_submit ~id:"victim" ());
          ignore
            (await (fun j ->
                 Protocol.event_of j = "accepted" && Protocol.id_of j = Some "victim"));
          Client.request c (J.Obj [ ("op", J.String "cancel"); ("id", J.String "victim") ]);
          match
            await (fun j ->
                Protocol.event_of j = "error" && Protocol.id_of j = Some "victim")
          with
          | Some j ->
            Alcotest.(check (option string)) "cancelled class" (Some "cancelled")
              (Protocol.str_field "class" j)
          | None -> Alcotest.fail "queued victim not cancelled"))

let test_backpressure_depth () =
  with_daemon ~capacity:1 "bp" (fun socket_path _ ->
      let c = Client.connect ~socket_path in
      Fun.protect ~finally:(fun () -> Client.close c)
        (fun () ->
          let rec await pred =
            match Client.next_event c with
            | None -> None
            | Some j -> if pred j then Some j else await pred
          in
          Client.request c (tiny_submit ~id:"run" ~sleep_ms:400 ());
          ignore
            (await (fun j ->
                 Protocol.event_of j = "started" && Protocol.id_of j = Some "run"));
          Client.request c (tiny_submit ~id:"fill" ());
          ignore
            (await (fun j ->
                 Protocol.event_of j = "accepted" && Protocol.id_of j = Some "fill"));
          Client.request c (tiny_submit ~id:"spill" ());
          match
            await (fun j ->
                Protocol.event_of j = "rejected" && Protocol.id_of j = Some "spill")
          with
          | Some j ->
            Alcotest.(check (option string)) "typed backpressure" (Some "backpressure")
              (Protocol.str_field "class" j);
            Alcotest.(check bool) "mentions bound" true
              (match Protocol.str_field "detail" j with
               | Some d -> Astring_contains.contains d "capacity 1"
               | None -> false)
          | None -> Alcotest.fail "overflow submit was not rejected"))

let suite =
  [ Alcotest.test_case "protocol: submit parsing + defaults" `Quick test_parse_submit;
    Alcotest.test_case "protocol: malformed lines typed" `Quick test_malformed_lines;
    Alcotest.test_case "protocol: oversized line rejected" `Quick test_oversized_line;
    Alcotest.test_case "protocol: non-UTF-8 rejected" `Quick test_non_utf8;
    Alcotest.test_case "protocol: deep nesting bounded" `Quick test_deep_nesting;
    QCheck_alcotest.to_alcotest fuzz_parser_total;
    Alcotest.test_case "jobq: priority order" `Quick test_jobq_priority;
    Alcotest.test_case "jobq: bounds and close" `Quick test_jobq_bounds;
    Alcotest.test_case "jobq: scan_remove reclaims" `Quick test_jobq_scan_remove;
    Alcotest.test_case "retry: policy table" `Quick test_retry_table;
    Alcotest.test_case "retry: exponential backoff capped" `Quick test_retry_backoff;
    Alcotest.test_case "cancel: token stops guarded flow" `Quick test_cancel_token;
    Alcotest.test_case "guard: transient class retryable" `Quick test_transient_class;
    Alcotest.test_case "cache: stale tmp swept on open" `Quick test_stale_tmp_cleanup;
    Alcotest.test_case "cache: forked writers single-flight" `Quick test_forked_writers;
    Alcotest.test_case "daemon: served bytes = one-shot" `Quick test_served_byte_identity;
    Alcotest.test_case "daemon: warm cache identical" `Quick test_served_warm_cache_identity;
    Alcotest.test_case "daemon: retry recovers transient" `Quick test_served_retry_recovery;
    Alcotest.test_case "daemon: service fault matrix" `Quick test_service_fault_matrix;
    Alcotest.test_case "daemon: graceful drain" `Quick test_graceful_drain;
    Alcotest.test_case "daemon: deadline + cancel op" `Quick test_deadline_and_cancel_op;
    Alcotest.test_case "daemon: typed backpressure" `Quick test_backpressure_depth ]
