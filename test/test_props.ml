(* Cross-cutting property tests over randomly generated circuits. *)
module Design = Netlist.Design

let gen_circuit =
  QCheck.make
    ~print:(fun (seed, ffs, gates) -> Printf.sprintf "seed=%d ffs=%d gates=%d" seed ffs gates)
    QCheck.Gen.(triple (int_range 1 10_000) (int_range 8 48) (int_range 100 600))

let circuit_of (seed, ffs, gates) = Circuits.Bench.tiny ~seed ~ffs ~gates ()

let prop_verilog_roundtrip =
  QCheck.Test.make ~name:"verilog roundtrip preserves any generated design" ~count:10
    gen_circuit
    (fun spec ->
      let d = circuit_of spec in
      let d' = Netlist.Verilog.parse (Netlist.Verilog.to_string d) in
      Netlist.Check.assert_clean d';
      let s = Netlist.Stats.compute d and s' = Netlist.Stats.compute d' in
      s.Netlist.Stats.cells = s'.Netlist.Stats.cells
      && s.Netlist.Stats.ffs = s'.Netlist.Stats.ffs
      && s.Netlist.Stats.pins = s'.Netlist.Stats.pins)

let prop_scan_chain_walk =
  QCheck.Test.make ~name:"stitched chains visit every scan cell exactly once" ~count:10
    gen_circuit
    (fun spec ->
      let d = circuit_of spec in
      ignore (Scan.Replace.run d);
      let t = Scan.Chains.plan d (Scan.Chains.Max_length 7) in
      Scan.Chains.stitch d t;
      let visited = Hashtbl.create 64 in
      Array.iter
        (fun chain ->
          Array.iter
            (fun iid ->
              if Hashtbl.mem visited iid then failwith "cell in two chains";
              Hashtbl.replace visited iid ())
            chain)
        t.Scan.Chains.chains;
      let scan_cells = ref 0 in
      Design.iter_insts d (fun i ->
          match i.Design.cell.Stdcell.Cell.kind with
          | Stdcell.Cell.Sdff | Stdcell.Cell.Tsff -> incr scan_cells
          | _ -> ());
      Hashtbl.length visited = !scan_cells)

let prop_tpi_preserves_checks =
  (* a low gate/FF ratio can leave a generated FF output legitimately
     dangling (tolerated by the flow), so the property is that TPI adds no
     violations of its own, not that the input was spotless *)
  QCheck.Test.make ~name:"TPI at any density introduces no netlist violations" ~count:8
    QCheck.(pair gen_circuit (int_range 1 8))
    (fun (spec, count) ->
      let d = circuit_of spec in
      let before = Netlist.Check.run d in
      let rep = Tpi.Select.run d ~count in
      let after = Netlist.Check.run d in
      List.for_all (fun v -> List.mem v before) after
      && List.length rep.Tpi.Select.inserted <= count
      && (Netlist.Stats.compute d).Netlist.Stats.test_points
         = List.length rep.Tpi.Select.inserted)

let prop_route_length_at_least_hpwl =
  QCheck.Test.make ~name:"routed net length >= half-perimeter bound" ~count:6 gen_circuit
    (fun spec ->
      let d = circuit_of spec in
      let fp = Layout.Floorplan.create d in
      let pl = Layout.Place.run d fp in
      let rt = Layout.Route.run pl in
      let ok = ref true in
      Array.iter
        (fun route ->
          match route with
          | None -> ()
          | Some (r : Layout.Route.net_route) ->
            let pts = Array.map (fun t -> t.Layout.Route.t_point) r.Layout.Route.terminals in
            let lx = Array.fold_left (fun a (p : Geom.Point.t) -> Float.min a p.Geom.Point.x) infinity pts in
            let ux = Array.fold_left (fun a (p : Geom.Point.t) -> Float.max a p.Geom.Point.x) neg_infinity pts in
            let ly = Array.fold_left (fun a (p : Geom.Point.t) -> Float.min a p.Geom.Point.y) infinity pts in
            let uy = Array.fold_left (fun a (p : Geom.Point.t) -> Float.max a p.Geom.Point.y) neg_infinity pts in
            if r.Layout.Route.length +. 1e-6 < ux -. lx +. uy -. ly then ok := false)
        rt.Layout.Route.routes;
      !ok)

let prop_sta_breakdown_sums =
  QCheck.Test.make ~name:"eq-3 breakdown always sums to T_cp" ~count:6 gen_circuit
    (fun spec ->
      let d = circuit_of spec in
      let fp = Layout.Floorplan.create d in
      let pl = Layout.Place.run d fp in
      let rt = Layout.Route.run pl in
      let rc = Layout.Extract.run pl rt in
      let sta = Sta.Analysis.run pl rc in
      Array.for_all
        (fun path ->
          match path with
          | None -> true
          | Some (p : Sta.Analysis.critical_path) ->
            Float.abs (Sta.Analysis.breakdown_total p.Sta.Analysis.breakdown -. p.Sta.Analysis.t_cp)
            < 1.0)
        sta.Sta.Analysis.per_domain)

let prop_patgen_cubes_detect =
  QCheck.Test.make ~name:"every final pattern set reaches its claimed coverage" ~count:4
    QCheck.(int_range 1 1000)
    (fun seed ->
      let d = Circuits.Bench.tiny ~seed ~ffs:16 ~gates:150 () in
      let m = Netlist.Cmodel.build d in
      let o = Atpg.Patgen.run m in
      (* claimed = representative statuses; replay and compare *)
      let u = Atpg.Fault.build m in
      let sim = Atpg.Fsim.create m in
      let ns = Array.length m.Netlist.Cmodel.sources in
      let live = ref (Array.to_list u.Atpg.Fault.representatives) in
      List.iter
        (fun pat ->
          let words = Array.init ns (fun s -> if Bytes.get pat s = '\001' then -1L else 0L) in
          Atpg.Fsim.set_sources sim words;
          live := List.filter (fun f -> Atpg.Fsim.detect_mask sim f = 0L) !live)
        o.Atpg.Patgen.patterns;
      let replay = Array.length u.Atpg.Fault.representatives - List.length !live in
      let claimed =
        Array.fold_left
          (fun acc (f : Atpg.Fault.fault) ->
            if f.Atpg.Fault.status = Atpg.Fault.Detected then acc + 1 else acc)
          0 o.Atpg.Patgen.universe.Atpg.Fault.representatives
      in
      replay >= claimed)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_verilog_roundtrip;
      prop_scan_chain_walk;
      prop_tpi_preserves_checks;
      prop_route_length_at_least_hpwl;
      prop_sta_breakdown_sums;
      prop_patgen_cubes_detect ]

(* additions: determinism and collapsing invariants *)
let prop_generation_deterministic =
  QCheck.Test.make ~name:"generation is a pure function of the seed" ~count:8
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let a = Circuits.Bench.tiny ~seed () and b = Circuits.Bench.tiny ~seed () in
      Netlist.Verilog.to_string a = Netlist.Verilog.to_string b)

let prop_collapse_classes_agree_on_detection =
  QCheck.Test.make ~name:"collapsed fault classes are detected together" ~count:4
    QCheck.(int_range 1 1000)
    (fun seed ->
      let d = Circuits.Bench.tiny ~seed ~ffs:12 ~gates:120 () in
      let m = Netlist.Cmodel.build d in
      let u = Atpg.Fault.build m in
      let sim = Atpg.Fsim.create m in
      let rng = Util.Rng.create seed in
      let ns = Array.length m.Netlist.Cmodel.sources in
      let ok = ref true in
      for _ = 1 to 5 do
        let words = Array.init ns (fun _ -> Util.Rng.int64 rng) in
        Atpg.Fsim.set_sources sim words;
        Array.iter
          (fun (f : Atpg.Fault.fault) ->
            let rep = Atpg.Fault.representative u f in
            if rep != f then begin
              (* equivalent faults have identical detection masks *)
              if Atpg.Fsim.detect_mask sim f <> Atpg.Fsim.detect_mask sim rep then ok := false
            end)
          u.Atpg.Fault.faults
      done;
      !ok)

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_generation_deterministic; prop_collapse_classes_agree_on_detection ]
