(* lib/lint: rule packs (positive + negative per rule), engine
   behaviour (crash containment, gate, read-only property), waiver
   fingerprint stability under renames, and the three emitters. *)

module Design = Netlist.Design
module Cell = Stdcell.Cell
module Diag = Lint.Diag
module Rule = Lint.Rule
module Engine = Lint.Engine
module Waiver = Lint.Waiver
module Emit = Lint.Emit

let cell = Helpers.cell

let run ?arts ?rules ?waivers d = Engine.run ?arts ?rules ?waivers d
let ids (r : Engine.report) = List.map (fun (d, _) -> d.Diag.rule) r.Engine.diags
let has id r = List.mem id (ids r)

let find_diag id (r : Engine.report) =
  List.find (fun (d, _) -> d.Diag.rule = id) r.Engine.diags |> fst

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let ok = ref false in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then ok := true
  done;
  !ok

let net_named d name =
  let found = ref None in
  Design.iter_nets d (fun n -> if n.Design.nname = name then found := Some n);
  match !found with
  | Some n -> n
  | None -> Alcotest.fail ("no net named " ^ name)

let inst_named d name =
  let found = ref None in
  Design.iter_insts d (fun i -> if i.Design.iname = name then found := Some i);
  match !found with
  | Some i -> i
  | None -> Alcotest.fail ("no instance named " ^ name)

let check_has r id = Alcotest.(check bool) (id ^ " reported") true (has id r)
let check_not r id = Alcotest.(check bool) (id ^ " quiet") false (has id r)

(* --- fixtures ------------------------------------------------------ *)

(* mini_design from Helpers is the lint-clean base: one domain, fully
   wired, every output observed *)
let clean = Helpers.mini_design

let add_gate d name kind ins =
  let g = Design.add_instance d ~name ~cell:(cell kind) in
  List.iteri (fun pin net -> Design.connect d ~inst:g.Design.id ~pin ~net) ins;
  let y = Design.add_net d (name ^ "_y") in
  Design.connect d ~inst:g.Design.id ~pin:(Cell.output_pin g.Design.cell)
    ~net:y.Design.nid;
  y.Design.nid

let add_dff d name ~data ~clk ~domain =
  let ff = Design.add_instance d ~name ~cell:(cell Cell.Dff) in
  ff.Design.domain <- domain;
  Design.connect d ~inst:ff.Design.id ~pin:0 ~net:data;
  Design.connect d ~inst:ff.Design.id ~pin:1 ~net:clk;
  let q = Design.add_net d (name ^ "_q") in
  Design.connect d ~inst:ff.Design.id ~pin:2 ~net:q.Design.nid;
  q.Design.nid

(* long inverter chain capped by a flip-flop, optionally with a test
   point dropped on the chain through the real TPI API: the in-memory
   twin of examples/lint_viol.v's critical-path half *)
let chain_design ?(stages = 30) ?(period_ps = 500.0) () =
  let d = Design.create "crit" in
  let clk = Design.add_port d "clk" Design.In in
  let a = Design.add_port d "a" Design.In in
  let y = Design.add_port d "y" Design.Out in
  let dom = Design.add_domain d ~name:"core" ~period_ps ~clock_net:clk.Design.pnet in
  let chain = ref a.Design.pnet in
  for k = 1 to stages do
    chain := add_gate d (Printf.sprintf "c%d" k) Cell.Inv [ !chain ]
  done;
  let q = add_dff d "ff_cap" ~data:!chain ~clk:clk.Design.pnet ~domain:dom in
  Design.connect_out_port d ~port:y.Design.pid ~net:q;
  d

let critical_tp ?stages ?period_ps ?(tap = "c25_y") () =
  let d = chain_design ?stages ?period_ps () in
  let tap = (net_named d tap).Design.nid in
  let tp = Tpi.Insert.insert_point d ~net:tap ~index:0 in
  (d, tp, tap)

(* --- whole-engine sanity ------------------------------------------- *)

let test_clean_design () =
  let r = run (clean ()) in
  Alcotest.(check int) "no active diagnostics" 0 (List.length r.Engine.diags);
  Alcotest.(check int) "no errors" 0 r.Engine.errors;
  Alcotest.(check int) "no warnings" 0 r.Engine.warnings;
  Alcotest.(check bool) "worst is None" true (Engine.worst r = None)

let test_registry () =
  let rules = Engine.all_rules in
  Alcotest.(check int) "20 registered rules" 20 (List.length rules);
  Alcotest.(check int) "4 packs" 4 (List.length Engine.packs);
  let ids = List.map (fun r -> r.Rule.id) rules in
  let uniq = List.sort_uniq compare ids in
  Alcotest.(check int) "rule ids unique" (List.length ids) (List.length uniq);
  List.iter
    (fun r ->
      let prefixed p = String.length r.Rule.id > String.length p
                       && String.sub r.Rule.id 0 (String.length p) = p in
      Alcotest.(check bool)
        (r.Rule.id ^ " pack-prefixed") true
        (List.exists prefixed [ "struct."; "clock."; "scan."; "tpi."; "repair." ]))
    rules

let test_stats_cover_rules () =
  let r = run (clean ()) in
  Alcotest.(check int) "one stat per rule" (List.length Engine.all_rules)
    (List.length r.Engine.stats)

(* --- structural pack ----------------------------------------------- *)

let test_comb_loop () =
  let d = clean () in
  (* l1 -> l2 -> l3 -> l1 *)
  let mk name = Design.add_instance d ~name ~cell:(cell Cell.Inv) in
  let l1 = mk "l1" and l2 = mk "l2" and l3 = mk "l3" in
  let wire src (dst : Design.instance) =
    let n = Design.add_net d (src.Design.iname ^ "_y") in
    Design.connect d ~inst:src.Design.id ~pin:1 ~net:n.Design.nid;
    Design.connect d ~inst:dst.Design.id ~pin:0 ~net:n.Design.nid
  in
  wire l1 l2; wire l2 l3; wire l3 l1;
  let r = run d in
  check_has r "struct.comb-loop";
  Alcotest.(check bool) "is an error" true
    ((find_diag "struct.comb-loop" r).Diag.severity = Diag.Error)

let test_multi_driver () =
  let d = clean () in
  (* second driver wired behind Design.connect's back: the connection
     array is the ground truth the fact sweep audits *)
  let n1 = net_named d "n1" in
  let h = Design.add_instance d ~name:"h" ~cell:(cell Cell.Inv) in
  Design.connect d ~inst:h.Design.id ~pin:0 ~net:n1.Design.nid;
  h.Design.conns.(1) <- n1.Design.nid;
  let r = run d in
  check_has r "struct.multi-driver";
  check_not (run (clean ())) "struct.multi-driver"

let test_undriven_and_unloaded () =
  let d = clean () in
  let u = Design.add_net d "u" in
  let w = Design.add_net d "w" in
  let g = Design.add_instance d ~name:"dead" ~cell:(cell Cell.Inv) in
  Design.connect d ~inst:g.Design.id ~pin:0 ~net:u.Design.nid;
  Design.connect d ~inst:g.Design.id ~pin:1 ~net:w.Design.nid;
  let r = run d in
  check_has r "struct.undriven-net";
  check_has r "struct.unloaded-output"

let test_floating_input () =
  let d = clean () in
  let g = Design.add_instance d ~name:"half" ~cell:(cell Cell.Inv) in
  let w = Design.add_net d "half_y" in
  Design.connect d ~inst:g.Design.id ~pin:1 ~net:w.Design.nid;
  let r = run d in
  check_has r "struct.floating-input"

let test_unbound_port () =
  let d = clean () in
  let p = Design.add_port d "px" Design.In in
  (Design.port d p.Design.pid).Design.pnet <- -1;
  check_has (run d) "struct.unbound-port"

let test_dangling_ff () =
  let d = clean () in
  let clk = (net_named d "clk").Design.nid in
  let (_ : int) =
    add_dff d "ff_dead" ~data:(net_named d "n1").Design.nid ~clk ~domain:0
  in
  let r = run d in
  check_has r "struct.dangling-ff";
  Alcotest.(check bool) "warn, not error" true
    ((find_diag "struct.dangling-ff" r).Diag.severity = Diag.Warn)

let test_arity_mismatch () =
  let d = clean () in
  let bogus = { (cell Cell.Inv) with Cell.name = "BOGUS_X1" } in
  let g = Design.add_instance d ~name:"alien" ~cell:bogus in
  Design.connect d ~inst:g.Design.id ~pin:0 ~net:(net_named d "n1").Design.nid;
  let w = Design.add_net d "alien_y" in
  Design.connect d ~inst:g.Design.id ~pin:1 ~net:w.Design.nid;
  check_has (run d) "struct.arity-mismatch"

(* --- clock/scan pack ----------------------------------------------- *)

let test_ff_no_domain () =
  let d = clean () in
  (inst_named d "ff0").Design.domain <- -1;
  check_has (run d) "clock.ff-no-domain"

let test_ff_clock_mismatch () =
  let d = clean () in
  (* clock pin quietly rewired onto a data net *)
  (inst_named d "ff0").Design.conns.(1) <- (net_named d "n1").Design.nid;
  check_has (run d) "clock.ff-clock-mismatch"

let two_domain d =
  let clk2 = Design.add_port d "clk2" Design.In in
  Design.add_domain d ~name:"io" ~period_ps:8000.0 ~clock_net:clk2.Design.pnet

let add_capture_ff d ~data ~through_gate =
  let dom2 = two_domain d in
  let clk2 = d.Design.domains.(dom2).Design.clock_net in
  let src = if through_gate then add_gate d "x1" Cell.Inv [ data ] else data in
  add_dff d "ff_io" ~data:src ~clk:clk2 ~domain:dom2

let test_cdc_unsynced () =
  let d = clean () in
  let q0 = Design.net_of_output d (inst_named d "ff0") in
  let (_ : int) = add_capture_ff d ~data:q0 ~through_gate:true in
  check_has (run d) "clock.cdc-unsynced"

let test_cdc_direct_hop_quiet () =
  (* a straight FF->FF hop is the first stage of a synchronizer *)
  let d = clean () in
  let q0 = Design.net_of_output d (inst_named d "ff0") in
  let (_ : int) = add_capture_ff d ~data:q0 ~through_gate:false in
  check_not (run d) "clock.cdc-unsynced"

let test_tp_domain () =
  let d = clean () in
  (* tap behind ff0's Q, so the neighbourhood domain is pinned by ff0
     (domain 0) and not by the test point's own flop *)
  let q0 = Design.net_of_output d (inst_named d "ff0") in
  let n4 = add_gate d "g4" Cell.Inv [ q0 ] in
  let tp = Tpi.Insert.insert_point d ~net:n4 ~index:0 in
  let dom2 = two_domain d in
  tp.Design.domain <- dom2;
  check_has (run d) "clock.tp-domain"

let test_tp_insertion_is_clean () =
  (* a test point inserted through the real API on an off-critical net
     raises no errors; the only finding left is the density warn (one
     point over two plain flip-flops bursts the 3% envelope) *)
  let d = chain_design ~stages:12 ~period_ps:1_000_000.0 () in
  let clk = (net_named d "clk").Design.nid in
  let b = Design.add_port d "b" Design.In in
  let side = add_gate d "sb" Cell.Inv [ b.Design.pnet ] in
  let (_ : int) = add_dff d "ff_side" ~data:side ~clk ~domain:0 in
  let (_ : Design.instance) = Tpi.Insert.insert_point d ~net:side ~index:0 in
  let r = run d in
  Alcotest.(check int) "no errors" 0 r.Engine.errors;
  check_not r "clock.tp-domain";
  check_not r "scan.chain-stitch";
  check_not r "tpi.critical-path";
  check_has r "tpi.density"

let scan_pair () =
  (* mini + a second observed flop, both converted to SDFFs and stitched *)
  let d = clean () in
  let clk = (net_named d "clk").Design.nid in
  let q1 = add_dff d "ff1" ~data:(net_named d "n1").Design.nid ~clk ~domain:0 in
  let o = add_gate d "gq" Cell.Inv [ q1 ] in
  let po = Design.add_port d "po1" Design.Out in
  Design.connect_out_port d ~port:po.Design.pid ~net:o;
  let (_ : int) = Scan.Replace.run d in
  let plan = Scan.Chains.plan d (Scan.Chains.Max_length 100) in
  Scan.Chains.stitch d plan;
  (d, plan)

let arts_with_chains plan = { Rule.no_artifacts with Rule.chains = Some plan }

let test_chain_stitch_structural () =
  let d = clean () in
  let clk = (net_named d "clk").Design.nid in
  let s = Design.add_instance d ~name:"s0" ~cell:(cell Cell.Sdff) in
  s.Design.domain <- 0;
  Design.connect d ~inst:s.Design.id ~pin:0 ~net:(net_named d "n1").Design.nid;
  (* TI (pin 1) left unconnected: broken stitching *)
  Design.connect d ~inst:s.Design.id ~pin:3 ~net:clk;
  let q = Design.add_net d "s0_q" in
  Design.connect d ~inst:s.Design.id ~pin:4 ~net:q.Design.nid;
  check_has (run d) "scan.chain-stitch"

let test_chain_stitch_with_plan () =
  let d, plan = scan_pair () in
  check_not (run ~arts:(arts_with_chains plan) d) "scan.chain-stitch";
  (* a plan the stitching does not realise: same cells, reversed order *)
  let rev =
    Array.map
      (fun c ->
        let n = Array.length c in
        Array.init n (fun i -> c.(n - 1 - i)))
      plan.Scan.Chains.chains
  in
  let bad = { plan with Scan.Chains.chains = rev } in
  check_has (run ~arts:(arts_with_chains bad) d) "scan.chain-stitch"

let test_lockup_crossing () =
  let d, plan = scan_pair () in
  Alcotest.(check int) "one chain of two" 2
    (Array.length plan.Scan.Chains.chains.(0));
  let dom2 = two_domain d in
  let second = Design.inst d plan.Scan.Chains.chains.(0).(1) in
  second.Design.domain <- dom2;
  check_has (run ~arts:(arts_with_chains plan) d) "scan.lockup-crossing";
  (* same-domain chain stays quiet *)
  second.Design.domain <- 0;
  check_not (run ~arts:(arts_with_chains plan) d) "scan.lockup-crossing"

(* --- tpi/timing pack ----------------------------------------------- *)

let test_critical_path_estimate () =
  let d, _, _ = critical_tp () in
  let r = run d in
  check_has r "tpi.critical-path";
  let diag = find_diag "tpi.critical-path" r in
  Alcotest.(check bool) "error severity" true (diag.Diag.severity = Diag.Error);
  Alcotest.(check bool) "names the overrun" true
    (contains diag.Diag.message "past the 500 ps period")

let test_near_critical_warns () =
  (* relaxed period, but the tap rides the single worst path *)
  let d, _, _ = critical_tp ~stages:10 ~period_ps:8000.0 ~tap:"c10_y" () in
  let r = run d in
  check_has r "tpi.critical-path";
  Alcotest.(check bool) "demoted to warn" true
    ((find_diag "tpi.critical-path" r).Diag.severity = Diag.Warn)

let test_critical_path_sta_artifact () =
  let d = clean () in
  let tap = (net_named d "n1").Design.nid in
  let (_ : Design.instance) = Tpi.Insert.insert_point d ~net:tap ~index:0 in
  let arts = { Rule.no_artifacts with Rule.crit_nets = Some [ tap ] } in
  check_has (run ~arts d) "tpi.critical-path";
  (* the same design against an empty critical set is quiet *)
  let arts = { Rule.no_artifacts with Rule.crit_nets = Some [] } in
  check_not (run ~arts d) "tpi.critical-path"

let test_density_envelope () =
  (* 1 test point on 1 plain flip-flop = 100% of the 3% envelope *)
  let d, _, _ = critical_tp ~stages:10 ~period_ps:1_000_000.0 ~tap:"c3_y" () in
  check_has (run d) "tpi.density"

let test_low_observability_cop () =
  let d = Design.create "blind" in
  let clk = Design.add_port d "clk" Design.In in
  let a = Design.add_port d "a" Design.In in
  let (_ : int) =
    Design.add_domain d ~name:"core" ~period_ps:4000.0 ~clock_net:clk.Design.pnet
  in
  let n1 = add_gate d "g1" Cell.Inv [ a.Design.pnet ] in
  (* g2's output observes nothing, so values injected on n1 die there *)
  let (_ : int) = add_gate d "g2" Cell.Inv [ n1 ] in
  let (_ : Design.instance) = Tpi.Insert.insert_point d ~net:n1 ~index:0 in
  let r = run d in
  check_has r "tpi.low-observability";
  Alcotest.(check bool) "names the dead downstream" true
    (contains (find_diag "tpi.low-observability" r).Diag.message "unobservable")

let test_low_observability_redundant () =
  let d = clean () in
  let q0 = Design.net_of_output d (inst_named d "ff0") in
  let clk = (net_named d "clk").Design.nid in
  let se = (net_named d "pi0").Design.nid in
  (* hand-built TSFF tapping q0, which already drives an output port *)
  let tp = Design.add_instance d ~name:"tp0" ~cell:(cell Cell.Tsff) in
  tp.Design.domain <- 0;
  Design.connect d ~inst:tp.Design.id ~pin:0 ~net:q0;
  Design.connect d ~inst:tp.Design.id ~pin:1 ~net:se;  (* TI off a port: legal *)
  Design.connect d ~inst:tp.Design.id ~pin:2 ~net:se;
  Design.connect d ~inst:tp.Design.id ~pin:3 ~net:se;
  Design.connect d ~inst:tp.Design.id ~pin:4 ~net:clk;
  let q = Design.add_net d "tp0_q" in
  Design.connect d ~inst:tp.Design.id ~pin:5 ~net:q.Design.nid;
  let r = run d in
  Alcotest.(check bool) "redundant tap reported" true
    (List.exists
       (fun (dg, _) ->
         dg.Diag.rule = "tpi.low-observability"
         && contains dg.Diag.message "already directly observed")
       r.Engine.diags)

(* --- engine behaviour ---------------------------------------------- *)

let test_rule_crash_contained () =
  let crash =
    { Rule.id = "test.crash"; pack = "test"; title = "always raises";
      severity = Diag.Warn; check = (fun _ -> failwith "boom") }
  in
  let r = run ~rules:[ crash ] (clean ()) in
  Alcotest.(check int) "one diagnostic" 1 (List.length r.Engine.diags);
  let d = find_diag "test.crash" r in
  Alcotest.(check bool) "promoted to error" true (d.Diag.severity = Diag.Error);
  Alcotest.(check bool) "anchored at the lint stage" true
    (d.Diag.loc = Diag.Stage "lint");
  Alcotest.(check bool) "carries the escape" true (contains d.Diag.message "boom")

let test_gate () =
  Engine.gate (run (clean ()));
  let d, _, _ = critical_tp () in
  match Engine.gate (run d) with
  | () -> Alcotest.fail "gate accepted an erroring report"
  | exception Engine.Lint_failed msg ->
    Alcotest.(check bool) "names the rule" true (contains msg "tpi.critical-path")

let test_read_only () =
  let designs =
    [ ("mini", clean ());
      ("crit", (let d, _, _ = critical_tp () in d));
      ("tiny", Helpers.tiny ()) ]
  in
  List.iter
    (fun (name, d) ->
      let before = Design.fingerprint d in
      let (_ : Engine.report) = run d in
      Alcotest.(check string) (name ^ " untouched by lint") before
        (Design.fingerprint d))
    designs

let test_guard_preflight () =
  let d, _, _ = critical_tp () in
  let options = { Flow.Pipeline.default_options with Flow.Pipeline.lint = true } in
  let report = Flow.Guard.run ~options ~circuit:"lint-viol" (fun () -> d) in
  Alcotest.(check bool) "flow failed" false (Flow.Guard.succeeded report);
  (match report.Flow.Guard.error with
   | None -> Alcotest.fail "no stage error"
   | Some e ->
     Alcotest.(check string) "lint-failed class" "lint-failed"
       (Flow.Guard.error_class e));
  List.iter
    (fun (_, st) ->
      Alcotest.(check bool) "stage skipped" true (st = Flow.Guard.Skipped))
    report.Flow.Guard.stage_log

(* --- waivers ------------------------------------------------------- *)

let test_waiver_rename_stable () =
  let d, _, _ = critical_tp () in
  let diags = List.map fst (run d).Engine.diags in
  Alcotest.(check bool) "fixture reports something" true (diags <> []);
  let before = List.map (Waiver.signature d) diags in
  Design.iter_insts d (fun i -> i.Design.iname <- "renamed_" ^ i.Design.iname);
  Design.iter_nets d (fun n -> n.Design.nname <- "renamed_" ^ n.Design.nname);
  let after = List.map (Waiver.signature d) diags in
  List.iter2 (Alcotest.(check string) "signature survives a rename") before after

let test_waiver_occurrence_split () =
  (* two structurally identical findings get distinct #k qualifiers *)
  let d = clean () in
  List.iter
    (fun name ->
      let g = Design.add_instance d ~name ~cell:(cell Cell.Inv) in
      let w = Design.add_net d (name ^ "_y") in
      Design.connect d ~inst:g.Design.id ~pin:1 ~net:w.Design.nid)
    [ "twin_a"; "twin_b" ];
  let fps =
    (run d).Engine.diags
    |> List.filter (fun (dg, _) -> dg.Diag.rule = "struct.floating-input")
    |> List.map snd
  in
  Alcotest.(check int) "two findings" 2 (List.length fps);
  Alcotest.(check bool) "distinct fingerprints" true
    (List.nth fps 0 <> List.nth fps 1);
  let base fp = List.hd (String.split_on_char '#' fp) in
  Alcotest.(check string) "same structural hash" (base (List.nth fps 0))
    (base (List.nth fps 1))

let test_waiver_apply_and_stale () =
  let d, _, _ = critical_tp () in
  let first = run d in
  let w = Engine.baseline ~reason:"known" first in
  let again = run ~waivers:w d in
  Alcotest.(check int) "everything waived" 0 (List.length again.Engine.diags);
  Alcotest.(check int) "waived count" (List.length first.Engine.diags)
    (List.length again.Engine.waived);
  Alcotest.(check int) "no errors left" 0 again.Engine.errors;
  Engine.gate again;
  let stale =
    { Waiver.entries =
        [ { Waiver.fingerprint = "deadbeef#0"; rule = "struct.comb-loop";
            reason = "long gone" } ] }
  in
  let r = run ~waivers:stale d in
  Alcotest.(check int) "stale entry surfaced" 1 (List.length r.Engine.stale);
  Alcotest.(check int) "diagnostics unaffected" (List.length first.Engine.diags)
    (List.length r.Engine.diags)

let test_waiver_file_roundtrip () =
  let d, _, _ = critical_tp () in
  let w = Engine.baseline ~reason:"seed" (run d) in
  let path = Filename.temp_file "tpi_waivers" ".json" in
  Waiver.save path w;
  (match Waiver.load path with
   | Error e -> Alcotest.fail ("load failed: " ^ e)
   | Ok back ->
     Alcotest.(check int) "entry count survives" (List.length w.Waiver.entries)
       (List.length back.Waiver.entries);
     List.iter2
       (fun (a : Waiver.entry) (b : Waiver.entry) ->
         Alcotest.(check string) "fingerprint" a.Waiver.fingerprint
           b.Waiver.fingerprint;
         Alcotest.(check string) "rule" a.Waiver.rule b.Waiver.rule)
       w.Waiver.entries back.Waiver.entries);
  Sys.remove path;
  match Waiver.load path with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ()

(* --- emitters ------------------------------------------------------ *)

let member path j =
  List.fold_left
    (fun acc k -> match acc with Some v -> Obs.Json.member k v | None -> None)
    (Some j) path

let as_list = function Some (Obs.Json.List l) -> l | _ -> []

let test_text_emitter () =
  let d = clean () in
  (inst_named d "ff0").Design.domain <- -1;
  let r = run d in
  let out = Emit.text d r in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "diag line + summary" 2 (List.length lines);
  let first = List.hd lines in
  Alcotest.(check string) "severity leads" "error" (String.sub first 0 5);
  Alcotest.(check bool) "rule id present" true (contains first "clock.ff-no-domain");
  Alcotest.(check bool) "instance named" true (contains first "ff0");
  Alcotest.(check bool) "hint rendered" true (contains first "declared domain");
  let last = List.nth lines 1 in
  Alcotest.(check string) "summary counts the error" "lint: 1 error,"
    (String.sub last 0 14);
  (* clean report: just the summary line *)
  let clean_out = Emit.text d (run (clean ())) in
  Alcotest.(check int) "clean = one line" 1
    (String.split_on_char '\n' clean_out
     |> List.filter (fun l -> l <> "")
     |> List.length)

let test_json_emitter () =
  let d, _, _ = critical_tp () in
  let r = run d in
  let j = Emit.json d r in
  (* must survive its own serializer *)
  (match Obs.Json.parse (Obs.Json.to_string j) with
   | Error e -> Alcotest.fail ("round-trip: " ^ e)
   | Ok _ -> ());
  (match member [ "summary"; "errors" ] j with
   | Some (Obs.Json.Int n) -> Alcotest.(check int) "error count" r.Engine.errors n
   | _ -> Alcotest.fail "summary.errors missing");
  let diags = as_list (member [ "diagnostics" ] j) in
  Alcotest.(check int) "diagnostic count" (List.length r.Engine.diags)
    (List.length diags);
  List.iter
    (fun dj ->
      match (member [ "rule" ] dj, member [ "fingerprint" ] dj) with
      | Some (Obs.Json.String _), Some (Obs.Json.String fp) ->
        Alcotest.(check bool) "occurrence-qualified" true (contains fp "#")
      | _ -> Alcotest.fail "diagnostic missing rule/fingerprint")
    diags

let test_sarif_emitter () =
  let d, _, _ = critical_tp () in
  let r = run d in
  let s = Emit.sarif d r in
  (match member [ "version" ] s with
   | Some (Obs.Json.String v) -> Alcotest.(check string) "sarif version" "2.1.0" v
   | _ -> Alcotest.fail "version missing");
  let runs = as_list (member [ "runs" ] s) in
  Alcotest.(check int) "one run" 1 (List.length runs);
  let run0 = List.hd runs in
  Alcotest.(check int) "all rules carried as metadata"
    (List.length Engine.all_rules)
    (List.length (as_list (member [ "tool"; "driver"; "rules" ] run0)));
  let results = as_list (member [ "results" ] run0) in
  Alcotest.(check int) "one result per active diagnostic"
    (List.length r.Engine.diags) (List.length results);
  Alcotest.(check bool) "critical-path result present" true
    (List.exists
       (fun res ->
         member [ "ruleId" ] res = Some (Obs.Json.String "tpi.critical-path"))
       results);
  (* a fully-waived run renders every result suppressed *)
  let waived = Engine.run ~waivers:(Engine.baseline r) d in
  let s2 = Emit.sarif d waived in
  let results2 =
    as_list (member [ "results" ] (List.hd (as_list (member [ "runs" ] s2))))
  in
  Alcotest.(check bool) "waived results kept" true (results2 <> []);
  List.iter
    (fun res ->
      Alcotest.(check bool) "suppressed" true
        (as_list (member [ "suppressions" ] res) <> []))
    results2

(* --- typed-error satellites ---------------------------------------- *)

let test_perfgate_typed_error () =
  let bad = Filename.temp_file "tpi_badbase" ".json" in
  let oc = open_out bad in
  output_string oc "not json at all";
  close_out oc;
  (match
     Obs.Perfgate.check ~baseline_path:bad ~current_path:bad ~tolerance_pct:10.0
   with
   | _ -> Alcotest.fail "invalid baseline accepted"
   | exception Obs.Perfgate.Invalid_baseline _ -> ());
  Sys.remove bad

let test_inject_printer () =
  let s = Printexc.to_string (Flow.Inject.No_candidate "no scan chain to break") in
  Alcotest.(check bool) "registered printer used" true
    (contains s "no scan chain to break")

let suite =
  [ Alcotest.test_case "clean design is quiet" `Quick test_clean_design;
    Alcotest.test_case "rule registry" `Quick test_registry;
    Alcotest.test_case "stats cover every rule" `Quick test_stats_cover_rules;
    Alcotest.test_case "struct.comb-loop" `Quick test_comb_loop;
    Alcotest.test_case "struct.multi-driver" `Quick test_multi_driver;
    Alcotest.test_case "struct.undriven-net + unloaded-output" `Quick
      test_undriven_and_unloaded;
    Alcotest.test_case "struct.floating-input" `Quick test_floating_input;
    Alcotest.test_case "struct.unbound-port" `Quick test_unbound_port;
    Alcotest.test_case "struct.dangling-ff" `Quick test_dangling_ff;
    Alcotest.test_case "struct.arity-mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "clock.ff-no-domain" `Quick test_ff_no_domain;
    Alcotest.test_case "clock.ff-clock-mismatch" `Quick test_ff_clock_mismatch;
    Alcotest.test_case "clock.cdc-unsynced" `Quick test_cdc_unsynced;
    Alcotest.test_case "clock.cdc direct hop quiet" `Quick test_cdc_direct_hop_quiet;
    Alcotest.test_case "clock.tp-domain" `Quick test_tp_domain;
    Alcotest.test_case "tp insertion is lint-clean" `Quick test_tp_insertion_is_clean;
    Alcotest.test_case "scan.chain-stitch structural" `Quick
      test_chain_stitch_structural;
    Alcotest.test_case "scan.chain-stitch vs plan" `Quick test_chain_stitch_with_plan;
    Alcotest.test_case "scan.lockup-crossing" `Quick test_lockup_crossing;
    Alcotest.test_case "tpi.critical-path estimate" `Quick test_critical_path_estimate;
    Alcotest.test_case "tpi.critical-path near-critical warn" `Quick
      test_near_critical_warns;
    Alcotest.test_case "tpi.critical-path via STA artifact" `Quick
      test_critical_path_sta_artifact;
    Alcotest.test_case "tpi.density" `Quick test_density_envelope;
    Alcotest.test_case "tpi.low-observability (COP)" `Quick test_low_observability_cop;
    Alcotest.test_case "tpi.low-observability (redundant)" `Quick
      test_low_observability_redundant;
    Alcotest.test_case "rule crash contained" `Quick test_rule_crash_contained;
    Alcotest.test_case "gate raises Lint_failed" `Quick test_gate;
    Alcotest.test_case "lint is read-only" `Quick test_read_only;
    Alcotest.test_case "guard maps preflight to lint-failed" `Quick
      test_guard_preflight;
    Alcotest.test_case "waiver fingerprints survive renames" `Quick
      test_waiver_rename_stable;
    Alcotest.test_case "occurrence qualifiers split twins" `Quick
      test_waiver_occurrence_split;
    Alcotest.test_case "waiver apply + stale" `Quick test_waiver_apply_and_stale;
    Alcotest.test_case "waiver file round-trip" `Quick test_waiver_file_roundtrip;
    Alcotest.test_case "text emitter" `Quick test_text_emitter;
    Alcotest.test_case "json emitter" `Quick test_json_emitter;
    Alcotest.test_case "sarif emitter" `Quick test_sarif_emitter;
    Alcotest.test_case "perfgate invalid baseline is typed" `Quick
      test_perfgate_typed_error;
    Alcotest.test_case "inject no-candidate printer" `Quick test_inject_printer ]
