(* Deterministic multicore execution layer: pool semantics, bit-identity
   of every parallel kernel against its sequential run, table/metrics
   byte-identity across domain counts, and the Fsim scratch-buffer
   regression. *)

module Pool = Par.Pool
module Cmodel = Netlist.Cmodel
module Cell = Stdcell.Cell

(* ---- partition: exact cover, contiguous, balanced ---- *)
let test_partition () =
  List.iter
    (fun (n, slots) ->
      let prev_hi = ref 0 in
      let sizes = ref [] in
      for slot = 0 to slots - 1 do
        let lo, hi = Pool.partition ~n ~slots ~slot in
        Alcotest.(check int) "contiguous" !prev_hi lo;
        Alcotest.(check bool) "ordered" true (hi >= lo);
        prev_hi := hi;
        sizes := (hi - lo) :: !sizes
      done;
      Alcotest.(check int) "covers range" n !prev_hi;
      let mx = List.fold_left max 0 !sizes and mn = List.fold_left min n !sizes in
      Alcotest.(check bool) "balanced" true (mx - mn <= 1))
    [ (0, 1); (0, 4); (1, 4); (7, 3); (64, 4); (65, 4); (100, 7); (3, 8) ]

(* ---- parallel_map: indexed, ordered, domain-count independent ---- *)
let test_parallel_map () =
  let n = 1000 in
  let expect = Array.init n (fun i -> i * i) in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let got = Pool.parallel_map p ~n (fun i -> i * i) in
          Alcotest.(check bool)
            (Printf.sprintf "map identical at %d domains" domains)
            true (got = expect)))
    [ 1; 2; 4 ]

(* ---- map_reduce: the fold must run in index order ---- *)
let test_map_reduce_order () =
  Pool.with_pool ~domains:4 (fun p ->
      let order =
        Pool.map_reduce p ~n:10 ~map:string_of_int
          ~merge:(fun acc s -> acc ^ s)
          ~init:""
      in
      Alcotest.(check string) "index order" "0123456789" order;
      (* non-commutative arithmetic: order changes the value *)
      let v =
        Pool.map_reduce p ~n:20
          ~map:(fun i -> float_of_int (i + 1))
          ~merge:(fun acc x -> (acc /. x) +. x)
          ~init:1.0
      in
      let expect = ref 1.0 in
      for i = 1 to 20 do
        expect := (!expect /. float_of_int i) +. float_of_int i
      done;
      Alcotest.(check (float 0.0)) "non-commutative fold bit-identical" !expect v)

(* ---- nested regions degrade to inline, never deadlock ---- *)
let test_nested_inline () =
  Pool.with_pool ~domains:4 (fun p ->
      let got =
        Pool.parallel_map p ~n:8 (fun i ->
            (* inner use of the same pool from a region: runs inline *)
            Array.fold_left ( + ) 0 (Pool.parallel_map p ~n:4 (fun j -> (10 * i) + j)))
      in
      let expect = Array.init 8 (fun i -> (40 * i) + 6) in
      Alcotest.(check bool) "nested result" true (got = expect))

(* ---- a raising slot re-raises deterministically; pool survives ---- *)
let test_exception_propagation () =
  Pool.with_pool ~domains:4 (fun p ->
      (match Pool.run p (fun ~slot -> if slot >= 2 then failwith "slot boom") with
       | () -> Alcotest.fail "expected Failure"
       | exception Failure msg -> Alcotest.(check string) "first slot wins" "slot boom" msg);
      (* the pool must still work after a failed region *)
      let got = Pool.parallel_map p ~n:5 (fun i -> i + 1) in
      Alcotest.(check bool) "usable after failure" true (got = [| 1; 2; 3; 4; 5 |]))

(* ---- Fsim: detection masks identical for every domain count ---- *)
let test_fsim_masks_identical () =
  let m = Cmodel.build (Circuits.Bench.tiny ~ffs:40 ~gates:600 ()) in
  let faults = (Atpg.Fault.build m).Atpg.Fault.representatives in
  let nf = Array.length faults in
  let words =
    let rng = Util.Rng.create 0x51CA in
    Array.init (Array.length m.Cmodel.sources) (fun _ -> Util.Rng.int64 rng)
  in
  let masks domains =
    Pool.with_pool ~domains (fun p ->
        let sims = Array.init (Pool.size p) (fun _ -> Atpg.Fsim.create m) in
        let out = Array.make nf 0L in
        Pool.iter_slots p ~n:nf (fun ~slot ~lo ~hi ->
            let s = sims.(slot) in
            Atpg.Fsim.set_sources s words;
            for i = lo to hi - 1 do
              out.(i) <- Atpg.Fsim.detect_mask s faults.(i)
            done);
        out)
  in
  let m1 = masks 1 in
  Alcotest.(check bool) "some detection happens" true (Array.exists (fun w -> w <> 0L) m1);
  Alcotest.(check bool) "j1 = j2" true (m1 = masks 2);
  Alcotest.(check bool) "j1 = j4" true (m1 = masks 4)

(* ---- Patgen: the whole ATPG outcome is bit-identical under a pool ---- *)
let test_patgen_identical () =
  let mk () = Cmodel.build (Circuits.Bench.tiny ~ffs:50 ~gates:700 ()) in
  let seq = Atpg.Patgen.run (mk ()) in
  Pool.with_pool ~domains:4 (fun p ->
      let par = Atpg.Patgen.run ~pool:p (mk ()) in
      Alcotest.(check bool) "patterns" true
        (seq.Atpg.Patgen.patterns = par.Atpg.Patgen.patterns);
      Alcotest.(check (float 0.0)) "coverage" seq.Atpg.Patgen.fault_coverage
        par.Atpg.Patgen.fault_coverage;
      Alcotest.(check int) "aborted" seq.Atpg.Patgen.aborted par.Atpg.Patgen.aborted;
      Alcotest.(check int) "redundant" seq.Atpg.Patgen.redundant par.Atpg.Patgen.redundant)

(* ---- STA: every arrival float identical under a pool ---- *)
let test_sta_identical () =
  let d = Circuits.Bench.tiny ~ffs:50 ~gates:700 () in
  let fp = Layout.Floorplan.create d in
  let pl = Layout.Place.run d fp in
  let rt = Layout.Route.run pl in
  let rc = Layout.Extract.run pl rt in
  let seq = Sta.Analysis.run pl rc in
  Pool.with_pool ~domains:4 (fun p ->
      let par = Sta.Analysis.run ~pool:p pl rc in
      Alcotest.(check bool) "arrivals" true
        (seq.Sta.Analysis.arrival = par.Sta.Analysis.arrival);
      Alcotest.(check bool) "slews" true (seq.Sta.Analysis.slew = par.Sta.Analysis.slew);
      Alcotest.(check int) "slow nodes" seq.Sta.Analysis.slow_nodes
        par.Sta.Analysis.slow_nodes;
      match (seq.Sta.Analysis.worst, par.Sta.Analysis.worst) with
      | Some a, Some b ->
        Alcotest.(check (float 0.0)) "t_cp" a.Sta.Analysis.t_cp b.Sta.Analysis.t_cp;
        Alcotest.(check bool) "steps" true (a.Sta.Analysis.steps = b.Sta.Analysis.steps)
      | None, None -> ()
      | _ -> Alcotest.fail "worst-path presence differs")

(* ---- Tables 1/2/3 and the metrics snapshot: byte-identical per -j ---- *)
let test_tables_and_metrics_identical () =
  let render pool =
    Obs.Metrics.reset ();
    let rows =
      Flow.Experiment.sweep ?pool ~with_atpg:true ~tp_levels:[ 0; 2; 4 ] ~scale:0.06
        "s38417"
    in
    let tables =
      Flow.Report.table1 rows ^ Flow.Report.table2 rows ^ Flow.Report.table3 rows
    in
    (tables, Format.asprintf "%a" Obs.Metrics.pp ())
  in
  let t1, m1 = render None in
  let t2, m2 = Pool.with_pool ~domains:2 (fun p -> render (Some p)) in
  let t4, m4 = Pool.with_pool ~domains:4 (fun p -> render (Some p)) in
  Alcotest.(check string) "tables j1 = j2" t1 t2;
  Alcotest.(check string) "tables j1 = j4" t1 t4;
  Alcotest.(check string) "metrics j1 = j2" m1 m2;
  Alcotest.(check string) "metrics j1 = j4" m1 m4

(* ---- Fsim scratch-buffer regression: a gate wider than 4 inputs ----
   The simulator's input buffer was a fixed Array.make 4; a model whose
   widest gate exceeds that overflowed in [set_sources]. Handcraft a
   model with a 6-input gate (eval64 only reads the first inputs a kind
   needs, so Nand2 semantics stay well-defined). *)
let test_fsim_wide_gate () =
  let design = Circuits.Bench.tiny ~ffs:2 ~gates:10 () in
  let num_nets = 7 in
  let gate =
    { Cmodel.g_inst = 0; g_kind = Cell.Nand2; g_ins = [| 0; 1; 2; 3; 4; 5 |];
      g_out = 6; g_level = 0 }
  in
  let fanout = Array.make num_nets [] in
  for i = 0 to 5 do
    fanout.(i) <- [ (0, i) ]
  done;
  let driver_gate = Array.make num_nets (-1) in
  driver_gate.(6) <- 0;
  let is_source = Array.init num_nets (fun n -> n < 6) in
  let is_observed = Array.init num_nets (fun n -> n = 6) in
  let m =
    { Cmodel.design;
      gates = [| gate |];
      gate_of_inst = [| 0 |];
      sources = Array.init 6 (fun n -> (n, Cmodel.From_port n));
      observes = [| (6, Cmodel.At_port 0) |];
      consts = [||];
      fanout;
      driver_gate;
      is_source;
      is_observed;
      modeled = Array.make num_nets true;
      num_nets }
  in
  let sim = Atpg.Fsim.create m in
  (* with the old fixed-size buffer this raised Invalid_argument *)
  Atpg.Fsim.set_sources sim [| -1L; 0xF0F0L; 0L; -1L; 0L; -1L |];
  Alcotest.(check int64) "nand of first two inputs"
    (Int64.lognot 0xF0F0L) (Atpg.Fsim.good sim 6);
  (* fault propagation through the wide gate uses the same buffer *)
  let f =
    { Atpg.Fault.fid = 0; site = Atpg.Fault.Stem 1; stuck = false;
      status = Atpg.Fault.Undetected; equiv_to = 0 }
  in
  Alcotest.(check int64) "stem fault propagates" 0xF0F0L (Atpg.Fsim.detect_mask sim f)

(* ---- worker metrics merge: counters sum across domains ---- *)
let test_metrics_merge () =
  let c = Obs.Metrics.counter "par.test.merge_counter" in
  let before = Obs.Metrics.value c in
  Pool.with_pool ~domains:4 (fun p ->
      Pool.iter_slots p ~n:40 (fun ~slot:_ ~lo ~hi ->
          for _ = lo to hi - 1 do
            Obs.Metrics.incr c
          done));
  Alcotest.(check int) "all increments absorbed" (before + 40) (Obs.Metrics.value c)

(* ---- worker trace spans: absorbed, domain-tagged, own chrome tracks ---- *)
let test_trace_worker_spans () =
  Obs.Trace.enable ();
  Obs.Trace.reset ();
  Pool.with_pool ~domains:4 (fun p ->
      Pool.run p (fun ~slot ->
          Obs.Trace.with_span ~name:(Printf.sprintf "par.test.slot%d" slot) ignore));
  let spans =
    List.filter
      (fun (s : Obs.Trace.span) ->
        String.length s.Obs.Trace.name >= 13
        && String.sub s.Obs.Trace.name 0 13 = "par.test.slot")
      (Obs.Trace.spans ())
  in
  let domains =
    List.sort_uniq compare (List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.domain) spans)
  in
  Alcotest.(check int) "one span per slot" 4 (List.length spans);
  Alcotest.(check (list int)) "all four domains present" [ 0; 1; 2; 3 ] domains;
  (* ids must be unique after renumbering worker-local ids *)
  let ids = List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.id) (Obs.Trace.spans ()) in
  Alcotest.(check int) "span ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Obs.Trace.disable ();
  Obs.Trace.reset ()

let suite =
  [ Alcotest.test_case "partition covers/contiguous/balanced" `Quick test_partition;
    Alcotest.test_case "parallel_map deterministic" `Quick test_parallel_map;
    Alcotest.test_case "map_reduce folds in index order" `Quick test_map_reduce_order;
    Alcotest.test_case "nested regions run inline" `Quick test_nested_inline;
    Alcotest.test_case "slot exception re-raised, pool survives" `Quick
      test_exception_propagation;
    Alcotest.test_case "fsim masks identical j1/j2/j4" `Quick test_fsim_masks_identical;
    Alcotest.test_case "patgen outcome identical under pool" `Slow test_patgen_identical;
    Alcotest.test_case "sta identical under pool" `Quick test_sta_identical;
    Alcotest.test_case "tables+metrics byte-identical j1/j2/j4" `Slow
      test_tables_and_metrics_identical;
    Alcotest.test_case "fsim survives gates wider than 4 inputs" `Quick test_fsim_wide_gate;
    Alcotest.test_case "worker counters merge into global" `Quick test_metrics_merge;
    Alcotest.test_case "worker spans domain-tagged and renumbered" `Quick
      test_trace_worker_spans ]
