(* Child process for the cross-process cache single-flight test: open the
   shared store, record one marker byte per actual compute, and race
   find_or_compute on the given key. Spawned (fork+exec) by
   Test_serve.test_forked_writers — a bare Unix.fork is not allowed in the
   test binary itself once other suites have created domains. *)
let () =
  match Sys.argv with
  | [| _; dir; key; marker |] ->
    let t = Cache.Store.create ~dir () in
    let compute () =
      (* O_APPEND: one byte lands per compute whoever wins the race *)
      let fd =
        Unix.openfile marker [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
      in
      ignore (Unix.write_substring fd "x" 0 1);
      Unix.close fd;
      Unix.sleepf 0.05; (* widen the race window *)
      "shared-value"
    in
    let v, _ = Cache.Store.find_or_compute t ~key compute in
    exit (if v = "shared-value" then 0 else 1)
  | _ -> exit 2
