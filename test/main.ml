let () =
  Alcotest.run "tpi_repro"
    [ ("util", Test_util.suite);
      ("geom", Test_geom.suite);
      ("stdcell", Test_stdcell.suite);
      ("netlist", Test_netlist.suite);
      ("circuits", Test_circuits.suite);
      ("iscas", Test_iscas.suite);
      ("lbist", Test_lbist.suite);
      ("testability", Test_testability.suite);
      ("tpi", Test_tpi.suite);
      ("scan", Test_scan.suite);
      ("atpg", Test_atpg.suite);
      ("layout", Test_layout.suite);
      ("sta", Test_sta.suite);
      ("incremental", Test_incremental.suite);
      ("extra", Test_extra.suite);
      ("timingfix", Test_timingfix.suite);
      ("repair", Test_repair.suite);
      ("properties", Test_props.suite);
      ("edge-cases", Test_more.suite);
      ("flow", Test_flow.suite);
      ("guard", Test_guard.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("cache", Test_cache.suite);
      ("serve", Test_serve.suite);
      ("telemetry", Test_telemetry.suite);
      ("lint", Test_lint.suite) ]
