(* obs: span nesting, histogram bucketing, export well-formedness, and
   the determinism guarantee (tracing must not perturb results) *)

module T = Obs.Trace
module M = Obs.Metrics
module J = Obs.Json
module G = Flow.Guard
module P = Flow.Pipeline

(* every test leaves the tracer as it found it: disabled and empty *)
let with_tracing f =
  T.enable ();
  T.reset ();
  Fun.protect
    ~finally:(fun () ->
      T.disable ();
      T.reset ())
    f

let tiny_options =
  { P.default_options with
    P.tp_percent = 2.0;
    chain_config = Scan.Chains.Max_length 10;
    run_atpg = false }

let mk_tiny () = Circuits.Bench.tiny ~ffs:40 ~gates:500 ()

(* ---- span recording ---- *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  T.with_span ~name:"outer" (fun () ->
      T.with_span ~name:"in1" (fun () -> ());
      T.with_span ~name:"in2" (fun () ->
          T.with_span ~name:"leaf" (fun () -> ())));
  match T.spans () with
  | [ outer; in1; in2; leaf ] ->
    Alcotest.(check string) "creation order" "outer,in1,in2,leaf"
      (String.concat "," [ outer.T.name; in1.T.name; in2.T.name; leaf.T.name ]);
    Alcotest.(check int) "outer is a root" (-1) outer.T.parent;
    Alcotest.(check int) "in1 under outer" outer.T.id in1.T.parent;
    Alcotest.(check int) "in2 under outer" outer.T.id in2.T.parent;
    Alcotest.(check int) "leaf under in2" in2.T.id leaf.T.parent;
    Alcotest.(check int) "leaf depth" 2 leaf.T.depth;
    Alcotest.(check bool) "outer contains in2" true (outer.T.dur_us >= in2.T.dur_us)
  | sps -> Alcotest.failf "expected 4 spans, got %d" (List.length sps)

let test_disabled_records_nothing () =
  T.disable ();
  T.reset ();
  T.with_span ~name:"ghost" (fun () -> ());
  let t = T.enter ~name:"timed-only" () in
  let ms = T.stop t in
  Alcotest.(check bool) "stop still measures time" true (ms >= 0.0);
  Alcotest.(check int) "nothing recorded while disabled" 0 (List.length (T.spans ()))

let test_error_span () =
  with_tracing @@ fun () ->
  (try T.with_span ~name:"boom" (fun () -> failwith "expected") with Failure _ -> ());
  (match T.spans () with
   | [ sp ] ->
     Alcotest.(check bool) "error recorded" true (sp.T.error <> None)
   | sps -> Alcotest.failf "expected 1 span, got %d" (List.length sps));
  (* the raise must not corrupt the stack: the next span is a root *)
  T.with_span ~name:"after" (fun () -> ());
  match List.rev (T.spans ()) with
  | after :: _ -> Alcotest.(check int) "stack rebalanced" (-1) after.T.parent
  | [] -> Alcotest.fail "no spans"

let test_aggregate_self_time () =
  with_tracing @@ fun () ->
  T.with_span ~name:"parent" (fun () ->
      T.with_span ~name:"child" (fun () -> Sys.opaque_identity (ignore (Array.make 1000 0))));
  T.with_span ~name:"parent" (fun () -> ());
  let aggs = T.aggregate () in
  let find name = List.find (fun a -> a.T.a_name = name) aggs in
  let p = find "parent" and c = find "child" in
  Alcotest.(check int) "parent called twice" 2 p.T.a_calls;
  Alcotest.(check int) "child called once" 1 c.T.a_calls;
  Alcotest.(check bool) "self <= total" true (p.T.a_self_us <= p.T.a_total_us);
  Alcotest.(check bool) "child time excluded from parent self" true
    (p.T.a_self_us <= p.T.a_total_us -. c.T.a_total_us +. 1e-6)

(* ---- histogram bucketing ---- *)

let test_histogram_buckets () =
  List.iter
    (fun (v, expected) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %g" v) expected (M.bucket_of v))
    [ (-3.0, 0); (0.0, 0); (0.5, 0); (1.0, 0); (1.0001, 1); (2.0, 1); (2.5, 2);
      (4.0, 2); (4.1, 3); (1024.0, 10); (1e300, 63); (Float.infinity, 63);
      (Float.nan, 0) ];
  Alcotest.(check (float 0.0)) "bucket 0 upper" 1.0 (M.bucket_upper 0);
  Alcotest.(check (float 0.0)) "bucket 10 upper" 1024.0 (M.bucket_upper 10);
  Alcotest.(check bool) "last bucket open-ended" true (M.bucket_upper 63 = Float.infinity);
  let h = M.histogram "test.obs_hist" in
  List.iter (M.observe h) [ 0.0; 1.0; 3.0; 3.5; 1e300 ];
  Alcotest.(check int) "count" 5 (M.hist_count h);
  Alcotest.(check int) "bucket 0 holds <=1" 2 (M.hist_bucket h 0);
  Alcotest.(check int) "bucket 2 holds (2,4]" 2 (M.hist_bucket h 2);
  Alcotest.(check int) "bucket 63 holds the tail" 1 (M.hist_bucket h 63);
  M.reset ();
  Alcotest.(check int) "reset zeroes in place" 0 (M.hist_count h)

let test_counters_and_gauges () =
  let c = M.counter "test.obs_counter" in
  let before = M.value c in
  M.incr c;
  M.add c 4;
  Alcotest.(check int) "counter adds" (before + 5) (M.value c);
  Alcotest.(check bool) "interned by name" true (M.counter "test.obs_counter" == c);
  let g = M.gauge "test.obs_gauge" in
  M.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge holds last value" 2.5 (M.gauge_value g)

(* ---- JSON parser ---- *)

let test_json_parser () =
  (match J.parse {|{"a": [1, 2.5, "x\"\n", true, null], "b": {}}|} with
   | Ok (J.Obj [ ("a", J.List [ J.Int 1; J.Float f; J.String s; J.Bool true; J.Null ]);
                 ("b", J.Obj []) ]) ->
     Alcotest.(check (float 0.0)) "float" 2.5 f;
     Alcotest.(check string) "escapes decoded" "x\"\n" s
   | Ok _ -> Alcotest.fail "wrong shape"
   | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match J.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "tru"; "{\"a\" 1}"; "1 2"; "" ];
  (* emitter output always re-parses *)
  let v =
    J.Obj
      [ ("nan", J.Float Float.nan); ("inf", J.Float Float.infinity);
        ("s", J.String "a\"b\\c\nd\te"); ("k", J.Int (-42)) ]
  in
  match J.parse (J.to_string ~pretty:true v) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "emitted JSON does not re-parse: %s" e

(* ---- export well-formedness on a real flow ---- *)

let traced_tiny_run () =
  with_tracing @@ fun () ->
  let r = G.run ~options:tiny_options ~circuit:"tiny" mk_tiny in
  Alcotest.(check bool) "flow succeeded" true (G.succeeded r);
  (r, T.spans (), T.chrome_json (), T.jsonl ())

let test_chrome_trace_roundtrip () =
  let _, spans, chrome, _ = traced_tiny_run () in
  let stage_spans =
    List.filter
      (fun sp -> String.length sp.T.name > 6 && String.sub sp.T.name 0 6 = "stage.")
      spans
  in
  Alcotest.(check int) "seven top-level stage spans" 7 (List.length stage_spans);
  List.iter
    (fun sp -> Alcotest.(check int) "stage spans are roots" (-1) sp.T.parent)
    stage_spans;
  Alcotest.(check bool) "kernel spans nest underneath" true
    (List.exists (fun sp -> sp.T.depth >= 2) spans);
  (* the export must parse back and carry one complete event per span *)
  match J.parse (J.to_string chrome) with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok doc ->
    (match J.member "traceEvents" doc with
     | Some (J.List events) ->
       Alcotest.(check int) "one event per span" (List.length spans)
         (List.length events);
       List.iter
         (fun ev ->
           List.iter
             (fun field ->
               if J.member field ev = None then
                 Alcotest.failf "event missing %s" field)
             [ "name"; "ph"; "ts"; "dur"; "pid"; "tid" ];
           Alcotest.(check bool) "complete event" true
             (J.member "ph" ev = Some (J.String "X")))
         events
     | _ -> Alcotest.fail "no traceEvents array")

let test_jsonl_roundtrip () =
  let _, spans, _, jsonl = traced_tiny_run () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per span" (List.length spans) (List.length lines);
  List.iter
    (fun line ->
      match J.parse line with
      | Ok (J.Obj _) -> ()
      | Ok _ -> Alcotest.fail "line is not an object"
      | Error e -> Alcotest.failf "jsonl line does not parse: %s" e)
    lines

let test_metrics_snapshot_roundtrip () =
  let _ = traced_tiny_run () in
  match J.parse (J.to_string (M.snapshot ())) with
  | Error e -> Alcotest.failf "metrics snapshot does not parse: %s" e
  | Ok doc ->
    let section name =
      match J.member name doc with
      | Some (J.Obj fields) -> fields
      | _ -> Alcotest.failf "missing %s section" name
    in
    let counters = section "counters" in
    ignore (section "gauges");
    ignore (section "histograms");
    List.iter
      (fun key ->
        if not (List.mem_assoc key counters) then
          Alcotest.failf "expected counter %s in snapshot" key)
      [ "place.fm_moves"; "route.segments"; "sta.arcs_evaluated"; "guard.stages_run" ]

(* ---- guard timing comes from the span clock ---- *)

let test_guard_timing_is_span_clock () =
  let r, spans, _, _ = traced_tiny_run () in
  List.iter
    (fun (stage, status) ->
      match status with
      | G.Completed ms ->
        let sp =
          List.find (fun sp -> sp.T.name = "stage." ^ G.stage_name stage) spans
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s status matches its span" (G.stage_name stage))
          true
          (Float.abs ((sp.T.dur_us /. 1000.0) -. ms) < 1e-6)
      | _ -> Alcotest.fail "expected completed stage")
    r.G.stage_log

(* ---- determinism: tracing must not perturb results ---- *)

let sweep_tables () =
  let spec = Flow.Experiment.spec_for ~scale:0.1 "s38417" in
  let rows =
    List.map
      (fun tp_pct -> Flow.Experiment.run_one ~with_atpg:false spec ~tp_pct)
      [ 0; 2 ]
  in
  Flow.Report.table2 rows ^ Flow.Report.table3 rows

let test_tracing_deterministic () =
  T.disable ();
  T.reset ();
  let untraced = sweep_tables () in
  let traced = with_tracing sweep_tables in
  Alcotest.(check string) "Table 2/3 rows bit-identical with tracing on vs off"
    untraced traced

let suite =
  [ Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "disabled tracer records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "raised exceptions close the span" `Quick test_error_span;
    Alcotest.test_case "self-time aggregation" `Quick test_aggregate_self_time;
    Alcotest.test_case "histogram log-scale bucketing" `Quick test_histogram_buckets;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "json parser accepts/rejects" `Quick test_json_parser;
    Alcotest.test_case "chrome trace round-trips" `Quick test_chrome_trace_roundtrip;
    Alcotest.test_case "jsonl round-trips" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "metrics snapshot round-trips" `Quick
      test_metrics_snapshot_roundtrip;
    Alcotest.test_case "guard statuses use the span clock" `Quick
      test_guard_timing_is_span_clock;
    Alcotest.test_case "tracing does not perturb results" `Quick
      test_tracing_deterministic ]
