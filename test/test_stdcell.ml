(* stdcell: LUTs, cells, logic functions, library *)
module Cell = Stdcell.Cell
module Lut = Stdcell.Lut
module Lib = Stdcell.Library

let lib = Lib.default

let test_lut_grid_exact () =
  let slews = [| 10.0; 100.0 |] and loads = [| 0.0; 50.0 |] in
  let t = Lut.make ~slews ~loads ~values:[| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Helpers.check_approx "corner" 1.0 (Lut.corner t);
  Helpers.check_approx "grid 00" 1.0 (Lut.value t ~slew:10.0 ~load:0.0);
  Helpers.check_approx "grid 11" 4.0 (Lut.value t ~slew:100.0 ~load:50.0);
  Helpers.check_approx "bilinear center" 2.5 (Lut.value t ~slew:55.0 ~load:25.0)

let test_lut_extrapolation_flag () =
  let slews = [| 10.0; 100.0 |] and loads = [| 0.0; 50.0 |] in
  let t = Lut.make ~slews ~loads ~values:[| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let inside = Lut.eval t ~slew:50.0 ~load:25.0 in
  Alcotest.(check bool) "inside not flagged" false inside.Lut.extrapolated;
  let outside = Lut.eval t ~slew:50.0 ~load:100.0 in
  Alcotest.(check bool) "outside flagged" true outside.Lut.extrapolated;
  (* linear extrapolation from the border segment *)
  Helpers.check_approx "extrapolated value" 3.5 (Lut.value t ~slew:10.0 ~load:125.0)

let test_lut_bad_axes () =
  Alcotest.check_raises "non-increasing axis"
    (Invalid_argument "Lut.make slews: axis not increasing") (fun () ->
      ignore (Lut.make ~slews:[| 2.0; 1.0 |] ~loads:[| 0.0 |] ~values:[| [| 0. |]; [| 0. |] |]))

let test_eval64_truth_tables () =
  let t = -1L and f = 0L in
  Alcotest.(check int64) "nand2" (-1L) (Cell.eval64 Cell.Nand2 [| t; f |]);
  Alcotest.(check int64) "nand2 both" 0L (Cell.eval64 Cell.Nand2 [| t; t |]);
  Alcotest.(check int64) "xor2" (-1L) (Cell.eval64 Cell.Xor2 [| t; f |]);
  Alcotest.(check int64) "aoi21" 0L (Cell.eval64 Cell.Aoi21 [| t; t; f |]);
  Alcotest.(check int64) "oai21" (-1L) (Cell.eval64 Cell.Oai21 [| t; f; f |]);
  Alcotest.(check int64) "mux sel a" (-1L) (Cell.eval64 Cell.Mux2 [| t; f; f |]);
  Alcotest.(check int64) "mux sel b" 0L (Cell.eval64 Cell.Mux2 [| t; f; t |]);
  Alcotest.(check int64) "tiehi" (-1L) (Cell.eval64 Cell.Tiehi [||])

let comb_kinds =
  [ Cell.Inv; Cell.Buf; Cell.Nand2; Cell.Nand3; Cell.Nor2; Cell.Nor3; Cell.And2;
    Cell.Or2; Cell.Xor2; Cell.Xnor2; Cell.Aoi21; Cell.Oai21; Cell.Mux2 ]

let prop_eval3_matches_eval_ternary =
  let kind_gen = QCheck.Gen.oneofl comb_kinds in
  let tern_gen = QCheck.Gen.oneofl [ 0; 1; 2 ] in
  let gen = QCheck.Gen.(quad kind_gen tern_gen tern_gen tern_gen) in
  let arb = QCheck.make gen in
  QCheck.Test.make ~name:"eval3 agrees with eval_ternary" ~count:2000 arb
    (fun (kind, a, b, c) ->
      let arity = Cell.num_inputs kind in
      let of_int = function
        | 0 -> Cell.Zero
        | 1 -> Cell.One
        | _ -> Cell.Unknown
      in
      let args = [| a; b; c |] in
      let inputs = Array.init arity (fun i -> of_int args.(i)) in
      let expected =
        match Cell.eval_ternary kind inputs with
        | Cell.Zero -> 0
        | Cell.One -> 1
        | Cell.Unknown -> 2
      in
      Cell.eval3 kind a b c = expected)

let prop_eval3_refines_eval64 =
  let kind_gen = QCheck.Gen.oneofl comb_kinds in
  let bool3 = QCheck.Gen.oneofl [ 0; 1 ] in
  let arb = QCheck.make QCheck.Gen.(quad kind_gen bool3 bool3 bool3) in
  QCheck.Test.make ~name:"eval3 on known values equals eval64" ~count:1000 arb
    (fun (kind, a, b, c) ->
      let arity = Cell.num_inputs kind in
      let args = [| a; b; c |] in
      let words = Array.init arity (fun i -> if args.(i) = 1 then -1L else 0L) in
      let expected = if Int64.logand (Cell.eval64 kind words) 1L = 1L then 1 else 0 in
      Cell.eval3 kind a b c = expected)

let test_library_lookup () =
  let nand = Lib.find lib Cell.Nand2 ~drive:2 in
  Alcotest.(check string) "name" "NAND2X2" nand.Cell.name;
  Alcotest.(check int) "pins" 3 (Array.length nand.Cell.pins);
  Alcotest.(check bool) "by_name" true (Lib.by_name lib "INVX1" <> None);
  Alcotest.(check bool) "unknown" true (Lib.by_name lib "FOO" = None)

let test_library_upsize () =
  let x1 = Lib.find lib Cell.Inv ~drive:1 in
  match Lib.upsize lib x1 with
  | None -> Alcotest.fail "INVX1 should upsize"
  | Some x2 ->
    Alcotest.(check int) "next drive" 2 x2.Cell.drive;
    Alcotest.(check bool) "wider" true (x2.Cell.width > x1.Cell.width);
    let x8 = Lib.find lib Cell.Inv ~drive:8 in
    Alcotest.(check bool) "x8 tops out" true (Lib.upsize lib x8 = None)

let test_tsff_cell_arcs () =
  let tsff = Lib.find lib Cell.Tsff ~drive:1 in
  Alcotest.(check int) "6 pins" 6 (Array.length tsff.Cell.pins);
  let app =
    List.filter (fun (a : Cell.arc) -> not a.Cell.test_only) (Array.to_list tsff.Cell.arcs)
  in
  (* exactly one application-mode arc: the transparent D -> Q path *)
  Alcotest.(check int) "one app arc" 1 (List.length app);
  Alcotest.(check int) "from D" 0 (List.hd app).Cell.from_pin;
  Alcotest.(check bool) "sequential" true tsff.Cell.sequential

let test_drive_scaling_monotone () =
  let d1 = Lib.find lib Cell.Nand2 ~drive:1 and d4 = Lib.find lib Cell.Nand2 ~drive:4 in
  let delay c load =
    Lut.value (c.Cell.arcs.(0)).Cell.delay ~slew:50.0 ~load
  in
  Alcotest.(check bool) "stronger drive is faster under load" true
    (delay d4 40.0 < delay d1 40.0);
  Alcotest.(check bool) "stronger drive is bigger" true (d4.Cell.width > d1.Cell.width)

let test_fillers () =
  let fs = Lib.fillers lib in
  Alcotest.(check int) "three fillers" 3 (List.length fs);
  let widths = List.map (fun (c : Cell.t) -> c.Cell.width) fs in
  Alcotest.(check bool) "descending" true (widths = List.sort (fun a b -> compare b a) widths)

let test_wide_input_names () =
  Alcotest.(check (list string)) "arity 6"
    [ "A"; "B"; "C"; "D"; "E"; "F" ]
    (Lib.input_names ~arity:6 Cell.Nand2);
  Alcotest.(check (list string)) "mux keeps its select pin" [ "A"; "B"; "S" ]
    (Lib.input_names Cell.Mux2);
  let names = Lib.input_names ~arity:60 Cell.And2 in
  Alcotest.(check int) "arity 60" 60 (List.length names);
  Alcotest.(check string) "spreadsheet spill at 26" "AA" (List.nth names 26);
  Alcotest.(check string) "index 59" "BH" (List.nth names 59);
  Alcotest.(check int) "all names distinct" 60
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "negative arity rejected" true
    (try
       ignore (Lib.input_names ~arity:(-1) Cell.Nand2);
       false
     with Invalid_argument _ -> true)

let test_wide_gate_construction () =
  (* build a 6-input NAND the way the library builds its cells and wire it
     into a checked design: wide gates must survive the netlist DRCs *)
  let names = Lib.input_names ~arity:6 Cell.Nand2 in
  let pins =
    Array.of_list
      (List.map (fun n -> Stdcell.Pin.input n ~cap:2.0) names
      @ [ Stdcell.Pin.output "Y" ])
  in
  let wide =
    { Cell.name = "NAND6X1"; kind = Cell.Nand2; drive = 1; width = 3.2; pins;
      arcs = [||]; setup = 0.0; hold = 0.0; sequential = false }
  in
  Alcotest.(check int) "output pin after 6 inputs" 6 (Cell.output_pin wide);
  let module D = Netlist.Design in
  let d = D.create "wide" in
  let g = D.add_instance d ~name:"g0" ~cell:wide in
  List.iteri
    (fun k _ ->
      let pi = D.add_port d (Printf.sprintf "pi%d" k) D.In in
      D.connect d ~inst:g.D.id ~pin:k ~net:pi.D.pnet)
    names;
  let y = D.add_net d "y" in
  D.connect d ~inst:g.D.id ~pin:6 ~net:y.D.nid;
  let po = D.add_port d "po" D.Out in
  D.connect_out_port d ~port:po.D.pid ~net:y.D.nid;
  Netlist.Check.assert_clean d;
  Alcotest.(check int) "six sinks recorded" 6
    (List.fold_left
       (fun acc (p : D.port) ->
         acc + List.length (D.net d p.D.pnet).D.sinks)
       0
       (D.input_ports d))

let suite =
  [ Alcotest.test_case "lut grid exact" `Quick test_lut_grid_exact;
    Alcotest.test_case "lut extrapolation" `Quick test_lut_extrapolation_flag;
    Alcotest.test_case "lut bad axes" `Quick test_lut_bad_axes;
    Alcotest.test_case "eval64 truth tables" `Quick test_eval64_truth_tables;
    Alcotest.test_case "library lookup" `Quick test_library_lookup;
    Alcotest.test_case "library upsize" `Quick test_library_upsize;
    Alcotest.test_case "tsff arcs" `Quick test_tsff_cell_arcs;
    Alcotest.test_case "drive scaling" `Quick test_drive_scaling_monotone;
    Alcotest.test_case "fillers" `Quick test_fillers;
    Alcotest.test_case "wide input names" `Quick test_wide_input_names;
    Alcotest.test_case "wide gate construction" `Quick test_wide_gate_construction;
    QCheck_alcotest.to_alcotest prop_eval3_matches_eval_ternary;
    QCheck_alcotest.to_alcotest prop_eval3_refines_eval64 ]
