(* guard: typed stage errors, policies, layout checks, fault injection *)
module G = Flow.Guard
module P = Flow.Pipeline
module I = Flow.Inject

let tiny_options =
  { P.default_options with
    P.tp_percent = 2.0;
    chain_config = Scan.Chains.Max_length 10;
    run_atpg = false }

let mk_tiny () = Circuits.Bench.tiny ~ffs:40 ~gates:500 ()

let test_guarded_flow_completes () =
  let r = G.run ~options:tiny_options ~circuit:"tiny" mk_tiny in
  Alcotest.(check bool) "succeeded" true (G.succeeded r);
  Alcotest.(check bool) "has result" true (r.G.result <> None);
  Alcotest.(check int) "one attempt" 1 r.G.attempts;
  Alcotest.(check int) "seven stages logged" 7 (List.length r.G.stage_log);
  Alcotest.(check int) "all completed" 7 (List.length (G.completed_stages r));
  List.iter
    (fun (_, st) ->
      match st with
      | G.Completed ms -> Alcotest.(check bool) "time >= 0" true (ms >= 0.0)
      | _ -> Alcotest.fail "expected completed stage")
    r.G.stage_log

let test_injection_matrix () =
  let outcomes = I.selftest () in
  Alcotest.(check int) "eleven classes" 11 (List.length outcomes);
  List.iter
    (fun (o : I.outcome) ->
      (* every class must land in the expected stage with the expected
         error-class tag — and as a typed error, not an exception *)
      Alcotest.(check bool)
        (Printf.sprintf "%s detected and classified" (I.name o.I.mutation))
        true o.I.detected)
    outcomes;
  Alcotest.(check bool) "matrix passes" true (I.all_detected outcomes)

let test_recover_converges () =
  Alcotest.(check bool) "recover reseeds placement and converges" true
    (I.recover_converges ())

let test_recover_exhausts () =
  (* placement always crashes: Recover must give up after its retry budget
     and report the typed error instead of raising *)
  let tamper ~attempt:_ stage _ =
    if stage = G.Placement then failwith "always crashing"
  in
  let r =
    G.run ~policy:G.Recover ~retries:2 ~options:tiny_options ~tamper ~circuit:"tiny"
      mk_tiny
  in
  Alcotest.(check bool) "failed" false (G.succeeded r);
  Alcotest.(check int) "3 attempts (1 + 2 retries)" 3 r.G.attempts;
  (match r.G.error with
   | Some e -> Alcotest.(check bool) "failed in placement" true (e.G.stage = G.Placement)
   | None -> Alcotest.fail "expected an error")

let test_degrade_keeps_partials () =
  Alcotest.(check bool) "degrade keeps placed/routed head stages" true
    (I.degrade_keeps_partials ())

let test_fail_fast_drops_state () =
  let tamper ~attempt:_ stage _ = if stage = G.Extract then failwith "boom" in
  let r = G.run ~policy:G.Fail_fast ~options:tiny_options ~tamper ~circuit:"tiny" mk_tiny in
  Alcotest.(check bool) "failed" false (G.succeeded r);
  Alcotest.(check bool) "no partial state under fail-fast" true (r.G.state = None)

let test_non_seed_sensitive_not_retried () =
  (* a crash in extraction is not seed-sensitive: Recover must not retry *)
  let tamper ~attempt:_ stage _ = if stage = G.Extract then failwith "boom" in
  let r = G.run ~policy:G.Recover ~options:tiny_options ~tamper ~circuit:"tiny" mk_tiny in
  Alcotest.(check bool) "failed" false (G.succeeded r);
  Alcotest.(check int) "single attempt" 1 r.G.attempts

let test_sweep_degrade_continues () =
  (* STA "crashes" at the 2% level only: the guarded sweep must keep the
     other levels, flag the degraded row, and still render the tables *)
  let tamper ~attempt:_ stage (st : P.state) =
    if stage = G.Sta && st.P.s_options.P.tp_percent = 2.0 then
      failwith "injected STA crash"
  in
  let grows =
    Flow.Experiment.sweep_guarded ~policy:G.Degrade ~tamper ~with_atpg:false
      ~tp_levels:[ 0; 1; 2 ] ~scale:0.04 "s38417"
  in
  Alcotest.(check int) "three levels attempted" 3 (List.length grows);
  let ok = Flow.Experiment.completed_rows grows in
  let bad = Flow.Experiment.degraded_rows grows in
  Alcotest.(check int) "two levels completed" 2 (List.length ok);
  Alcotest.(check int) "one level degraded" 1 (List.length bad);
  (match bad with
   | [ g ] ->
     Alcotest.(check int) "the 2% level failed" 2 g.Flow.Experiment.g_tp_pct;
     (match g.Flow.Experiment.g_report.G.error with
      | Some e -> Alcotest.(check bool) "failed at sta" true (e.G.stage = G.Sta)
      | None -> Alcotest.fail "degraded row carries no error")
   | _ -> Alcotest.fail "expected exactly one degraded row");
  let t2 = Flow.Report.table2 ok in
  Alcotest.(check bool) "table renders from survivors" true
    (Astring_contains.contains t2 "core um2");
  let s = Flow.Report.guarded_summary grows in
  Alcotest.(check bool) "summary flags degraded row" true
    (Astring_contains.contains s "DEGRADED");
  Alcotest.(check bool) "summary names the stage" true (Astring_contains.contains s "sta")

let test_sta_typed_exceptions () =
  (* wire a 2-cycle directly and check the typed exception carries the
     offending instance *)
  let d = mk_tiny () in
  let r = P.run ~options:tiny_options d in
  let pl = r.P.placement in
  let module D = Netlist.Design in
  let module C = Stdcell.Cell in
  let g1 = ref None and g2 = ref None in
  D.iter_insts d (fun i ->
      let comb =
        match i.D.cell.C.kind with
        | C.Nand2 | C.Nor2 | C.And2 | C.Or2 | C.Xor2 -> true
        | _ -> false
      in
      if comb then
        if !g1 = None then g1 := Some i
        else if !g2 = None then g2 := Some i);
  (match (!g1, !g2) with
   | Some a, Some b ->
     let oa = D.net_of_output d a and ob = D.net_of_output d b in
     D.disconnect d ~inst:a.D.id ~pin:0;
     D.connect d ~inst:a.D.id ~pin:0 ~net:ob;
     D.disconnect d ~inst:b.D.id ~pin:0;
     D.connect d ~inst:b.D.id ~pin:0 ~net:oa;
     (match Sta.Analysis.run pl r.P.rc with
      | _ -> Alcotest.fail "expected Combinational_cycle"
      | exception Sta.Analysis.Combinational_cycle { inst; iname } ->
        Alcotest.(check bool) "carries an instance" true (inst >= 0 && iname <> ""))
   | _ -> Alcotest.fail "no combinational gates in tiny circuit")

let test_layout_check_clean_flow () =
  let d = mk_tiny () in
  let st = P.init ~options:tiny_options d in
  P.stage_tpi_scan st;
  P.stage_place st;
  let pl = Option.get st.P.s_placement in
  Alcotest.(check int) "clean placement" 0
    (List.length (Layout.Check.check_placement ~overlaps:true pl));
  P.stage_reorder_atpg st;
  Alcotest.(check bool) "chains verify" true
    (Scan.Chains.verify d (Option.get st.P.s_chains) = None);
  P.stage_eco_route st;
  Alcotest.(check int) "clean route" 0
    (List.length (Layout.Check.check_route pl (Option.get st.P.s_route)));
  P.stage_extract st;
  Alcotest.(check int) "clean rc" 0
    (List.length (Layout.Check.check_rc (Option.get st.P.s_rc)))

let test_staged_equals_straightline () =
  let run_straight () =
    let d = mk_tiny () in
    let r = P.run ~options:tiny_options d in
    match r.P.sta.Sta.Analysis.worst with Some p -> p.Sta.Analysis.t_cp | None -> 0.0
  in
  let run_staged () =
    let d = mk_tiny () in
    let st = P.init ~options:tiny_options d in
    P.stage_tpi_scan st;
    P.stage_place st;
    P.stage_reorder_atpg st;
    P.stage_eco_route st;
    P.stage_extract st;
    P.stage_sta st;
    let r = P.finish st in
    match r.P.sta.Sta.Analysis.worst with Some p -> p.Sta.Analysis.t_cp | None -> 0.0
  in
  Helpers.check_approx "staged flow = straight-line flow" (run_straight ()) (run_staged ())

let test_policy_strings () =
  List.iter
    (fun p ->
      Alcotest.(check bool) (G.policy_name p) true
        (G.policy_of_string (G.policy_name p) = Some p))
    [ G.Fail_fast; G.Recover; G.Degrade ];
  Alcotest.(check bool) "junk rejected" true (G.policy_of_string "yolo" = None)

let test_stage_out_of_order () =
  let d = mk_tiny () in
  let st = P.init ~options:tiny_options d in
  Alcotest.(check bool) "sta before place rejected" true
    (try P.stage_sta st; false with Invalid_argument _ -> true)

let test_check_failed_classified () =
  (* a stage tripping the netlist DRCs surfaces as a typed "check-failed"
     stage error, not an anonymous Failure *)
  let vs = [ Netlist.Check.Undriven_net 3; Netlist.Check.Floating_input (1, 0) ] in
  let tamper ~attempt:_ stage _ =
    if stage = G.Extract then raise (Netlist.Check.Check_failed vs)
  in
  let r = G.run ~options:tiny_options ~tamper ~circuit:"tiny" mk_tiny in
  Alcotest.(check bool) "failed" false (G.succeeded r);
  match r.G.error with
  | None -> Alcotest.fail "expected a stage error"
  | Some e ->
    Alcotest.(check bool) "classified as check-failed" true
      (Astring_contains.contains e.G.detail "check-failed: 2 violation(s)");
    Alcotest.(check bool) "first class named" true
      (Astring_contains.contains e.G.detail "undriven-net")

let suite =
  [ Alcotest.test_case "guarded flow completes" `Quick test_guarded_flow_completes;
    Alcotest.test_case "injection matrix" `Slow test_injection_matrix;
    Alcotest.test_case "recover converges" `Quick test_recover_converges;
    Alcotest.test_case "recover exhausts retries" `Quick test_recover_exhausts;
    Alcotest.test_case "degrade keeps partials" `Quick test_degrade_keeps_partials;
    Alcotest.test_case "fail-fast drops state" `Quick test_fail_fast_drops_state;
    Alcotest.test_case "extract crash not retried" `Quick test_non_seed_sensitive_not_retried;
    Alcotest.test_case "degraded sweep continues" `Slow test_sweep_degrade_continues;
    Alcotest.test_case "sta typed exceptions" `Quick test_sta_typed_exceptions;
    Alcotest.test_case "layout checks clean on healthy flow" `Quick
      test_layout_check_clean_flow;
    Alcotest.test_case "staged = straight-line" `Quick test_staged_equals_straightline;
    Alcotest.test_case "policy strings" `Quick test_policy_strings;
    Alcotest.test_case "stages enforce order" `Quick test_stage_out_of_order;
    Alcotest.test_case "check-failed classified" `Quick test_check_failed_classified ]
