(* The live telemetry plane: Prometheus exposition goldens and parser
   round-trips, structured leveled logging with correlation fields, the
   crash flight recorder (ring wraparound and dump-on-fault), the
   perf-regression gate's pass/fail boundaries, live exposition from a
   running daemon, and the determinism contract (telemetry on or off
   never changes table bytes). *)

module M = Obs.Metrics
module E = Obs.Export
module L = Obs.Log
module R = Obs.Recorder
module PG = Obs.Perfgate
module J = Obs.Json
module G = Flow.Guard
module P = Flow.Pipeline
module Daemon = Serve.Daemon
module Client = Serve.Client
module Protocol = Serve.Protocol

let contains haystack needle = Astring_contains.contains haystack needle

let tmp_file suffix = Filename.temp_file "tpi-telemetry" suffix

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* ---- exporter ---- *)

let test_sanitize_name () =
  Alcotest.(check string) "dots" "serve_job_ms" (E.sanitize_name "serve.job_ms");
  Alcotest.(check string) "dashes" "stage_ms_tpi_scan"
    (E.sanitize_name "stage_ms.tpi-scan");
  Alcotest.(check string) "leading digit" "_9lives" (E.sanitize_name "9lives");
  Alcotest.(check string) "empty" "_" (E.sanitize_name "");
  Alcotest.(check string) "colon kept" "a:b" (E.sanitize_name "a:b");
  Alcotest.(check string) "already clean" "x_y_z" (E.sanitize_name "x_y_z")

let test_escape_label () =
  Alcotest.(check string) "backslash" "a\\\\b" (E.escape_label "a\\b");
  Alcotest.(check string) "quote" "a\\\"b" (E.escape_label "a\"b");
  Alcotest.(check string) "newline" "a\\nb" (E.escape_label "a\nb");
  Alcotest.(check string) "plain" "plain" (E.escape_label "plain")

let check_line text line =
  Alcotest.(check bool) ("has line: " ^ line) true (contains text (line ^ "\n"))

let test_prometheus_exposition () =
  let c = M.counter "tst.export.jobs" in
  let g = M.gauge "tst.export.depth" in
  let h = M.histogram "tst.export.lat" in
  M.reset ();
  M.add c 7;
  M.set g 3.5;
  (* log-2 buckets: 0.5 -> le 1; 3.0 -> le 4; 5.0 -> le 8 *)
  M.observe h 0.5;
  M.observe h 3.0;
  M.observe h 5.0;
  let text = E.prometheus () in
  check_line text "# TYPE tst_export_jobs counter";
  check_line text "tst_export_jobs 7";
  check_line text "# TYPE tst_export_depth gauge";
  check_line text "tst_export_depth 3.5";
  check_line text "# TYPE tst_export_lat histogram";
  (* the le-series is cumulative and closed by +Inf = _count *)
  check_line text "tst_export_lat_bucket{le=\"1\"} 1";
  check_line text "tst_export_lat_bucket{le=\"4\"} 2";
  check_line text "tst_export_lat_bucket{le=\"8\"} 3";
  check_line text "tst_export_lat_bucket{le=\"+Inf\"} 3";
  check_line text "tst_export_lat_sum 8.5";
  check_line text "tst_export_lat_count 3";
  (* the build_info gauge makes every snapshot self-describing *)
  Alcotest.(check bool) "build_info present" true
    (contains text "tpi_build_info{version=\"");
  Alcotest.(check bool) "ocaml version label" true
    (contains text ("ocaml=\"" ^ Sys.ocaml_version ^ "\""));
  M.reset ()

let test_prometheus_parse_roundtrip () =
  let c = M.counter "tst.roundtrip.count" in
  let h = M.histogram "tst.roundtrip.h" in
  M.reset ();
  M.add c 42;
  M.observe h 3.0;
  M.observe h 300.0;
  let samples = E.parse (E.prometheus ()) in
  Alcotest.(check (option (float 1e-9))) "counter" (Some 42.0)
    (E.find samples "tst_roundtrip_count");
  Alcotest.(check (option (float 1e-9))) "hist count" (Some 2.0)
    (E.find samples "tst_roundtrip_h_count");
  Alcotest.(check (option (float 1e-9))) "+Inf bucket" (Some 2.0)
    (E.find samples ~labels:[ ("le", "+Inf") ] "tst_roundtrip_h_bucket");
  let buckets = E.buckets_of samples "tst_roundtrip_h" in
  Alcotest.(check bool) "buckets ascending, +Inf last" true
    (match List.rev buckets with
     | (top, n) :: _ -> top = Float.infinity && n = 2
     | [] -> false);
  (* build_info labels survive the parse *)
  Alcotest.(check (option (float 1e-9))) "build_info" (Some 1.0)
    (E.find samples "tpi_build_info");
  M.reset ()

let test_quantile () =
  (* cumulative: 10 samples <= 1, 20 <= 4, 40 <= 8 *)
  let buckets = [ (1.0, 10); (4.0, 20); (8.0, 40) ] in
  Alcotest.(check (option (float 1e-9))) "p25" (Some 1.0) (E.quantile ~buckets ~q:0.25);
  Alcotest.(check (option (float 1e-9))) "p50" (Some 4.0) (E.quantile ~buckets ~q:0.50);
  Alcotest.(check (option (float 1e-9))) "p95" (Some 8.0) (E.quantile ~buckets ~q:0.95);
  Alcotest.(check (option (float 1e-9))) "empty" None (E.quantile ~buckets:[] ~q:0.5)

let test_write_atomic () =
  let path = tmp_file ".prom" in
  E.write_atomic path "hello\n";
  Alcotest.(check string) "contents" "hello\n" (read_file path);
  E.write_atomic path "world\n";
  Alcotest.(check string) "replaced" "world\n" (read_file path);
  Sys.remove path

(* ---- structured logging ---- *)

let with_log_file f =
  let path = tmp_file ".log" in
  L.to_file path;
  Fun.protect
    ~finally:(fun () ->
      L.disable ();
      L.set_level L.Info;
      Sys.remove path)
    (fun () -> f path)

let log_lines path =
  read_file path |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")

let test_log_level_filtering () =
  with_log_file (fun path ->
      L.set_level L.Warn;
      L.debug "suppressed %d" 1;
      L.info "suppressed %d" 2;
      L.warn "kept %d" 3;
      L.error "kept %d" 4;
      let lines = log_lines path in
      Alcotest.(check int) "two records" 2 (List.length lines);
      List.iter
        (fun line ->
          match J.parse line with
          | Ok j ->
            Alcotest.(check bool) "has ts_us" true (J.member "ts_us" j <> None);
            Alcotest.(check bool) "has level" true (J.member "level" j <> None);
            Alcotest.(check bool) "has domain" true (J.member "domain" j <> None);
            Alcotest.(check bool) "has msg" true (J.member "msg" j <> None)
          | Error msg -> Alcotest.fail ("record is not JSON: " ^ msg))
        lines;
      match J.parse (List.nth lines 0) with
      | Ok j ->
        Alcotest.(check (option string)) "level" (Some "warn")
          (match J.member "level" j with Some (J.String s) -> Some s | _ -> None);
        Alcotest.(check (option string)) "msg" (Some "kept 3")
          (match J.member "msg" j with Some (J.String s) -> Some s | _ -> None)
      | Error msg -> Alcotest.fail msg)

let test_log_correlation_fields () =
  with_log_file (fun path ->
      Obs.Trace.enable ();
      Obs.Trace.reset ();
      let t = Obs.Trace.enter ~name:"tst.corr" () in
      L.info ~job:"job-9" ~fields:[ ("extra", J.Int 5) ] "correlated";
      ignore (Obs.Trace.stop t);
      Obs.Trace.disable ();
      Obs.Trace.reset ();
      match J.parse (List.nth (log_lines path) 0) with
      | Ok j ->
        Alcotest.(check (option string)) "job" (Some "job-9")
          (match J.member "job" j with Some (J.String s) -> Some s | _ -> None);
        Alcotest.(check bool) "span id >= 0" true
          (match J.member "span" j with Some (J.Int i) -> i >= 0 | _ -> false);
        Alcotest.(check bool) "extra field" true
          (match J.member "extra" j with Some (J.Int 5) -> true | _ -> false)
      | Error msg -> Alcotest.fail msg)

let test_level_of_string () =
  Alcotest.(check bool) "debug" true (L.level_of_string "debug" = Some L.Debug);
  Alcotest.(check bool) "WARN" true (L.level_of_string "WARN" = Some L.Warn);
  Alcotest.(check bool) "warning alias" true (L.level_of_string "warning" = Some L.Warn);
  Alcotest.(check bool) "junk" true (L.level_of_string "loud" = None)

(* ---- flight recorder ---- *)

let reset_recorder () =
  R.set_dump_path None;
  R.set_capacity R.default_capacity;
  R.clear ()

let test_recorder_wraparound () =
  reset_recorder ();
  R.set_capacity 8;
  for i = 0 to 19 do
    R.log ~label:"tst" ~detail:(string_of_int i) ()
  done;
  let evs = R.events () in
  Alcotest.(check int) "ring holds capacity" 8 (List.length evs);
  Alcotest.(check int) "total survives wraparound" 20 (R.total ());
  Alcotest.(check string) "oldest kept" "12" (List.hd evs).R.detail;
  Alcotest.(check string) "newest kept" "19" (List.nth evs 7).R.detail;
  reset_recorder ()

let test_recorder_dump_on_stage_fault () =
  reset_recorder ();
  let path = tmp_file ".flight" in
  R.set_dump_path (Some path);
  let tiny_options =
    { P.default_options with
      P.tp_percent = 2.0;
      chain_config = Scan.Chains.Max_length 10;
      run_atpg = false }
  in
  let tamper ~attempt:_ stage _ = if stage = G.Extract then failwith "boom" in
  let mk_tiny () = Circuits.Bench.tiny ~ffs:40 ~gates:500 () in
  let r =
    G.run ~policy:G.Fail_fast ~options:tiny_options ~tamper ~circuit:"tiny" mk_tiny
  in
  Alcotest.(check bool) "run failed" false (G.succeeded r);
  Alcotest.(check bool) "dump written" true (R.dumps () > 0);
  (match J.parse (read_file path) with
   | Ok doc ->
     (match J.member "reason" doc with
      | Some (J.String reason) ->
        Alcotest.(check bool) "reason names the fault" true
          (String.length reason >= 11
           && String.sub reason 0 11 = "stage-fault"
           && contains reason "extract")
      | _ -> Alcotest.fail "missing reason");
     (match J.member "events" doc with
      | Some (J.List evs) ->
        Alcotest.(check bool) "events present" true (evs <> []);
        let label_is l ev =
          match J.member "label" ev with Some (J.String s) -> s = l | _ -> false
        in
        let has_fault =
          List.exists
            (fun ev ->
              label_is "stage.extract" ev
              && (match J.member "kind" ev with
                  | Some (J.String "fault") -> true
                  | _ -> false))
            evs
        in
        Alcotest.(check bool) "faulting stage's event recorded" true has_fault;
        Alcotest.(check bool) "preceding stage events recorded" true
          (List.exists (label_is "stage.place") evs)
      | _ -> Alcotest.fail "missing events")
   | Error msg -> Alcotest.fail ("dump is not JSON: " ^ msg));
  Sys.remove path;
  reset_recorder ()

let test_recorder_dump_without_path () =
  reset_recorder ();
  R.fault ~label:"tst" ~detail:"x" ();
  Alcotest.(check bool) "no path, no dump" false (R.dump ~reason:"tst");
  Alcotest.(check int) "dump counter untouched" 0 (R.dumps ());
  reset_recorder ()

(* ---- perf gate ---- *)

let perf_doc ~ns ~speedup ~throughput ~p95 =
  J.Obj
    [ ("kernels",
       J.List
         [ J.Obj [ ("name", J.String "kernel/t/x"); ("ns_per_run", J.Float ns) ] ]);
      ("parallel",
       J.Obj
         [ ("kernels",
            J.List
              [ J.Obj [ ("name", J.String "par-x"); ("speedup", J.Float speedup) ] ])
         ]);
      ("cache",
       J.Obj
         [ ("kernels",
            J.List
              [ J.Obj [ ("name", J.String "cache-x"); ("speedup", J.Float 4.0) ] ]) ]);
      ("serve",
       J.Obj
         [ ("throughput_jobs_per_s", J.Float throughput); ("p95_ms", J.Float p95) ])
    ]

let baseline = perf_doc ~ns:100.0 ~speedup:2.0 ~throughput:10.0 ~p95:500.0

let violations ~current =
  (PG.compare_docs ~baseline ~current ~tolerance_pct:10.0).PG.violations

let test_perfgate_passes_on_equal () =
  let v = PG.compare_docs ~baseline ~current:baseline ~tolerance_pct:0.0 in
  Alcotest.(check int) "five metrics checked" 5 v.PG.checked;
  Alcotest.(check int) "no violations" 0 (List.length v.PG.violations);
  Alcotest.(check int) "nothing skipped" 0 (List.length v.PG.skipped)

let test_perfgate_boundaries () =
  (* lower-better: the limit is base * 1.1; exactly on the limit passes *)
  Alcotest.(check int) "ns at limit passes" 0
    (List.length
       (violations
          ~current:(perf_doc ~ns:110.0 ~speedup:2.0 ~throughput:10.0 ~p95:500.0)));
  Alcotest.(check int) "ns past limit fails" 1
    (List.length
       (violations
          ~current:(perf_doc ~ns:110.2 ~speedup:2.0 ~throughput:10.0 ~p95:500.0)));
  (* higher-better: the limit is base / 1.1 *)
  Alcotest.(check int) "speedup at limit passes" 0
    (List.length
       (violations
          ~current:
            (perf_doc ~ns:100.0 ~speedup:(2.0 /. 1.1) ~throughput:10.0 ~p95:500.0)));
  Alcotest.(check int) "speedup below limit fails" 1
    (List.length
       (violations
          ~current:(perf_doc ~ns:100.0 ~speedup:1.7 ~throughput:10.0 ~p95:500.0)));
  (* several regressions are all named *)
  let v =
    violations ~current:(perf_doc ~ns:200.0 ~speedup:1.0 ~throughput:5.0 ~p95:1500.0)
  in
  Alcotest.(check int) "four violations" 4 (List.length v);
  let metrics = List.map (fun x -> x.PG.v_metric) v in
  Alcotest.(check bool) "kernel named" true (List.mem "kernel/t/x/ns_per_run" metrics);
  Alcotest.(check bool) "p95 named" true (List.mem "serve/p95_ms" metrics)

let test_perfgate_skips_missing () =
  let current = J.Obj [ ("kernels", J.List []) ] in
  let v = PG.compare_docs ~baseline ~current ~tolerance_pct:10.0 in
  Alcotest.(check int) "nothing checked" 0 v.PG.checked;
  Alcotest.(check int) "all five skipped" 5 (List.length v.PG.skipped);
  Alcotest.(check int) "no violations from absence" 0 (List.length v.PG.violations)

let test_perfgate_incremental_section () =
  let doc ~speedup =
    J.Obj
      [ ("incremental",
         J.Obj
           [ ("kernels",
              J.List
                [ J.Obj
                    [ ("name", J.String "single-tp-retime");
                      ("speedup", J.Float speedup) ] ]) ]) ]
  in
  let metrics = PG.gated_metrics (doc ~speedup:8.0) in
  Alcotest.(check int) "one gated metric" 1 (List.length metrics);
  (match metrics with
   | [ (name, dir, v) ] ->
     Alcotest.(check string) "metric path" "incremental/single-tp-retime/speedup" name;
     Alcotest.(check bool) "higher is better" true (dir = PG.Higher_better);
     Alcotest.(check (float 0.0)) "value" 8.0 v
   | _ -> Alcotest.fail "unexpected metric shape");
  (* a collapsed speedup trips the gate like any other metric *)
  let v =
    PG.compare_docs ~baseline:(doc ~speedup:8.0) ~current:(doc ~speedup:1.0)
      ~tolerance_pct:25.0
  in
  Alcotest.(check int) "violation named" 1 (List.length v.PG.violations)

let test_perfgate_host_cores_skip () =
  let doc ~cores ~speedup =
    J.Obj
      [ ("parallel",
         J.Obj
           [ ("host_cores", J.Int cores);
             ("kernels",
              J.List
                [ J.Obj [ ("name", J.String "par-x"); ("speedup", J.Float speedup) ] ])
           ]);
        ("serve", J.Obj [ ("p95_ms", J.Float 500.0) ]) ]
  in
  (* a 4-core baseline against a 1-core runner: the halved speedup is
     hardware, not regression -- skipped, while serve is still gated *)
  let v =
    PG.compare_docs ~baseline:(doc ~cores:4 ~speedup:3.0)
      ~current:(doc ~cores:1 ~speedup:1.0) ~tolerance_pct:10.0
  in
  Alcotest.(check int) "parallel skipped" 1 (List.length v.PG.skipped);
  Alcotest.(check bool) "skip names the metric" true
    (List.mem "parallel/par-x/speedup" v.PG.skipped);
  Alcotest.(check int) "serve still checked" 1 v.PG.checked;
  Alcotest.(check int) "no violations from hardware" 0 (List.length v.PG.violations);
  (* same core count: the identical regression is a real violation *)
  let v' =
    PG.compare_docs ~baseline:(doc ~cores:4 ~speedup:3.0)
      ~current:(doc ~cores:4 ~speedup:1.0) ~tolerance_pct:10.0
  in
  Alcotest.(check int) "same cores gate normally" 1 (List.length v'.PG.violations)

let test_perfgate_degraded_baseline_fails () =
  (* the CI scenario: a synthetically "better" baseline (faster kernels,
     higher speedups than we can measure) must trip the gate *)
  let degraded = perf_doc ~ns:10.0 ~speedup:20.0 ~throughput:100.0 ~p95:50.0 in
  let v = PG.compare_docs ~baseline:degraded ~current:baseline ~tolerance_pct:25.0 in
  Alcotest.(check bool) "gate trips" true (v.PG.violations <> [])

(* ---- the daemon's live telemetry ---- *)

let scratch_socket suffix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "tpi-tt-%d-%s.sock" (Unix.getpid ()) suffix)

let with_daemon suffix f =
  let socket_path = scratch_socket suffix in
  let cfg = Daemon.default_config ~socket_path in
  let t = Daemon.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Daemon.drain t;
      ignore (Daemon.wait t))
    (fun () -> f socket_path)

let tiny_submit ~id ?fail_attempts ?sleep_ms () =
  Client.submit_line ~id ?fail_attempts ?sleep_ms ~circuit:"s38417" ~scale:0.05
    ~levels:[ 0 ] ~tables:[ 2 ] ()

let rec await c pred =
  match Client.next_event c with
  | None -> None
  | Some j -> if pred j then Some j else await c pred

let test_daemon_live_prometheus_while_running () =
  M.reset ();
  with_daemon "live" (fun socket_path ->
      let c = Client.connect ~socket_path in
      Fun.protect ~finally:(fun () -> Client.close c)
        (fun () ->
          (* the sleep holds the executor (inflight = 1) for 1.5 s before
             the job's real work; polling 0.3 s after admission lands
             solidly inside that hold *)
          Client.request c (tiny_submit ~id:"slow" ~sleep_ms:1500 ());
          (match
             await c (fun j ->
                 Protocol.event_of j = "accepted" && Protocol.id_of j = Some "slow")
           with
           | Some _ -> ()
           | None -> Alcotest.fail "job never accepted");
          Unix.sleepf 0.3;
          (* a second connection polls while the executor is busy *)
          let poller = Client.connect ~socket_path in
          let text =
            Fun.protect ~finally:(fun () -> Client.close poller)
              (fun () -> Client.prometheus poller)
          in
          (match text with
           | None -> Alcotest.fail "no exposition while job running"
           | Some text ->
             let samples = E.parse text in
             Alcotest.(check (option (float 1e-9))) "one job in flight" (Some 1.0)
               (E.find samples "serve_jobs_inflight");
             Alcotest.(check (option (float 1e-9))) "submitted counted" (Some 1.0)
               (E.find samples "serve_jobs_submitted");
             Alcotest.(check bool) "uptime gauge present" true
               (match E.find samples "serve_uptime_s" with
                | Some v -> v >= 0.0
                | None -> false);
             Alcotest.(check (option (float 1e-9))) "build info" (Some 1.0)
               (E.find samples "tpi_build_info"));
          (* let the job finish so the drain stays prompt *)
          match
            await c (fun j ->
                let e = Protocol.event_of j in
                e = "done" || e = "error")
          with
          | Some j ->
            Alcotest.(check string) "job completed" "done" (Protocol.event_of j)
          | None -> Alcotest.fail "job never finished"))

let test_daemon_dump_when_retries_exhaust () =
  reset_recorder ();
  let path = tmp_file ".flight" in
  R.set_dump_path (Some path);
  with_daemon "doomed" (fun socket_path ->
      let c = Client.connect ~socket_path in
      Fun.protect ~finally:(fun () -> Client.close c)
        (fun () ->
          (* fail_attempts past the transient retry budget (4 retries):
             the job exhausts its retries and fails terminally *)
          let o = Client.run_job c (tiny_submit ~id:"doomed" ~fail_attempts:8 ()) in
          Alcotest.(check bool) "job failed terminally" true (o.Client.error <> None)));
  Alcotest.(check bool) "post-mortem written" true (R.dumps () > 0);
  (match J.parse (read_file path) with
   | Ok doc ->
     Alcotest.(check bool) "reason is the job failure" true
       (match J.member "reason" doc with
        | Some (J.String r) -> contains r "job-failed: doomed"
        | _ -> false)
   | Error msg -> Alcotest.fail ("dump is not JSON: " ^ msg));
  Sys.remove path;
  reset_recorder ()

(* ---- determinism: telemetry on/off cannot change table bytes ---- *)

let render_tiny_table () =
  let spec = Flow.Experiment.spec_for ~scale:0.05 "s38417" in
  let grows = [ Flow.Experiment.run_one_guarded ~with_atpg:false spec ~tp_pct:0 ] in
  Flow.Report.table2 (Flow.Experiment.completed_rows grows)

let test_telemetry_does_not_change_tables () =
  reset_recorder ();
  L.disable ();
  let off = render_tiny_table () in
  (* everything on: debug logging to a file, a tiny recorder ring *)
  with_log_file (fun _ ->
      L.set_level L.Debug;
      R.set_capacity 16;
      let on = render_tiny_table () in
      Alcotest.(check string) "tables byte-identical" off on);
  reset_recorder ()

let suite =
  [ Alcotest.test_case "export: name sanitization" `Quick test_sanitize_name;
    Alcotest.test_case "export: label escaping" `Quick test_escape_label;
    Alcotest.test_case "export: exposition golden" `Quick test_prometheus_exposition;
    Alcotest.test_case "export: parse roundtrip" `Quick test_prometheus_parse_roundtrip;
    Alcotest.test_case "export: bucket quantiles" `Quick test_quantile;
    Alcotest.test_case "export: atomic writes" `Quick test_write_atomic;
    Alcotest.test_case "log: level filtering" `Quick test_log_level_filtering;
    Alcotest.test_case "log: correlation fields" `Quick test_log_correlation_fields;
    Alcotest.test_case "log: level parsing" `Quick test_level_of_string;
    Alcotest.test_case "recorder: ring wraparound" `Quick test_recorder_wraparound;
    Alcotest.test_case "recorder: dump on stage fault" `Quick
      test_recorder_dump_on_stage_fault;
    Alcotest.test_case "recorder: no path, no dump" `Quick
      test_recorder_dump_without_path;
    Alcotest.test_case "perfgate: equal passes" `Quick test_perfgate_passes_on_equal;
    Alcotest.test_case "perfgate: tolerance boundaries" `Quick test_perfgate_boundaries;
    Alcotest.test_case "perfgate: missing metrics skip" `Quick
      test_perfgate_skips_missing;
    Alcotest.test_case "perfgate: degraded baseline trips" `Quick
      test_perfgate_degraded_baseline_fails;
    Alcotest.test_case "perfgate: incremental section gated" `Quick
      test_perfgate_incremental_section;
    Alcotest.test_case "perfgate: host_cores mismatch skips parallel" `Quick
      test_perfgate_host_cores_skip;
    Alcotest.test_case "daemon: live exposition mid-job" `Quick
      test_daemon_live_prometheus_while_running;
    Alcotest.test_case "daemon: flight dump on retry exhaustion" `Quick
      test_daemon_dump_when_retries_exhaust;
    Alcotest.test_case "determinism: tables identical with telemetry on" `Quick
      test_telemetry_does_not_change_tables ]
