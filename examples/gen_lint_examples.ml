(* Regenerate the checked-in lint example netlists used by the CI lint
   gate and the docs:

   - lint_clean.v          -- passes every rule pack, exit 0
   - lint_viol.v           -- seeded combinational loop (struct.comb-loop)
                              plus a test point on a critical path
                              (tpi.critical-path), exit 1
   - lint_viol.waivers.json -- content-addressed baseline for the above,
                              so --waive brings it back to exit 0

   dune exec examples/gen_lint_examples.exe [DIR]   (default: examples) *)

module Design = Core.Design
module Cell = Core.Cell

let cell kind = Core.Library.min_drive_strength Core.Library.default kind

let dff = lazy (cell Cell.Dff)
let inv = lazy (cell Cell.Inv)
let nand2 = lazy (cell Cell.Nand2)
let xor2 = lazy (cell Cell.Xor2)

let gate d name c ins =
  let i = Design.add_instance d ~name ~cell:(Lazy.force c) in
  List.iteri (fun pin net -> Design.connect d ~inst:i.Design.id ~pin ~net) ins;
  let y = Design.add_net d (name ^ "_y") in
  Design.connect d ~inst:i.Design.id ~pin:(Cell.output_pin i.Design.cell) ~net:y.Design.nid;
  y.Design.nid

let flop d name ~data ~clk ~domain =
  let i = Design.add_instance d ~name ~cell:(Lazy.force dff) in
  i.Design.domain <- domain;
  Design.connect d ~inst:i.Design.id ~pin:0 ~net:data;
  Design.connect d ~inst:i.Design.id ~pin:1 ~net:clk;
  let q = Design.add_net d (name ^ "_q") in
  Design.connect d ~inst:i.Design.id ~pin:2 ~net:q.Design.nid;
  q.Design.nid

(* every rule pack happy: one domain, fully wired, all outputs observed *)
let clean () =
  let d = Design.create "lint_clean" in
  let clk = Design.add_port d "clk" Design.In in
  let a = Design.add_port d "a" Design.In in
  let b = Design.add_port d "b" Design.In in
  let y = Design.add_port d "y" Design.Out in
  let clk_n = (Design.port d clk.Design.pid).Design.pnet in
  let dom = Design.add_domain d ~name:"core" ~period_ps:2000.0 ~clock_net:clk_n in
  let n1 =
    gate d "g1" nand2
      [ (Design.port d a.Design.pid).Design.pnet;
        (Design.port d b.Design.pid).Design.pnet ]
  in
  (* q feeds back into the XOR, so the flop output is observed twice *)
  let q = ref (-1) in
  let d1 = gate d "g2" xor2 [ n1; (q := flop d "ff1" ~data:n1 ~clk:clk_n ~domain:dom; !q) ] in
  let q2 = flop d "ff2" ~data:d1 ~clk:clk_n ~domain:dom in
  let yn = gate d "g3" inv [ q2 ] in
  Design.connect_out_port d ~port:y.Design.pid ~net:yn;
  d

(* two seeded violations on top of an otherwise legal design: a
   three-gate combinational loop, and a test point dropped onto a long
   inverter chain whose path overruns the 500 ps clock period *)
let violating () =
  let d = Design.create "lint_viol" in
  let clk = Design.add_port d "clk" Design.In in
  let a = Design.add_port d "a" Design.In in
  let b = Design.add_port d "b" Design.In in
  let y = Design.add_port d "y" Design.Out in
  let clk_n = (Design.port d clk.Design.pid).Design.pnet in
  let dom = Design.add_domain d ~name:"core" ~period_ps:500.0 ~clock_net:clk_n in
  (* the critical chain: 40 inverters port-to-flop *)
  let chain = ref (Design.port d a.Design.pid).Design.pnet in
  let tap = ref (-1) in
  for k = 1 to 40 do
    chain := gate d (Printf.sprintf "c%d" k) inv [ !chain ];
    if k = 35 then tap := !chain
  done;
  let qc = flop d "ff_cap" ~data:!chain ~clk:clk_n ~domain:dom in
  let yn = gate d "g_out" inv [ qc ] in
  Design.connect_out_port d ~port:y.Design.pid ~net:yn;
  (* the loop: l1 -> l2 -> l3 -> back into l1 *)
  let l1 = Design.add_instance d ~name:"l1" ~cell:(Lazy.force nand2) in
  Design.connect d ~inst:l1.Design.id ~pin:0
    ~net:(Design.port d b.Design.pid).Design.pnet;
  let l1y = Design.add_net d "l1_y" in
  Design.connect d ~inst:l1.Design.id ~pin:2 ~net:l1y.Design.nid;
  let l2y = gate d "l2" inv [ l1y.Design.nid ] in
  let l3y = gate d "l3" inv [ l2y ] in
  Design.connect d ~inst:l1.Design.id ~pin:1 ~net:l3y;
  (* the mis-placed test point, inserted through the real TPI API *)
  let (_ : Design.instance) = Core.Tpi_insert.insert_point d ~net:!tap ~index:0 in
  d

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "examples" in
  let path name = Filename.concat dir name in
  Core.Verilog.write_file (path "lint_clean.v") (clean ());
  Core.Verilog.write_file (path "lint_viol.v") (violating ());
  (* baseline from the PARSED file: the waiver fingerprints must match
     what `tpi_flow lint lint_viol.v --waive ...` computes *)
  let reparsed = Core.Verilog.parse_file (path "lint_viol.v") in
  let report = Core.Lint_engine.run reparsed in
  Core.Lint_waiver.save
    (path "lint_viol.waivers.json")
    (Core.Lint_engine.baseline ~reason:"seeded example violation" report);
  Printf.printf "wrote %s, %s, %s (%d diagnostic(s) baselined)\n"
    (path "lint_clean.v") (path "lint_viol.v")
    (path "lint_viol.waivers.json")
    (List.length report.Core.Lint_engine.diags)
