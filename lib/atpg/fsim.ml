module Cmodel = Netlist.Cmodel
module Cell = Stdcell.Cell

type t = {
  m : Cmodel.t;
  val_good : int64 array;     (* by net id *)
  val_fault : int64 array;    (* by net id, valid when dirty *)
  dirty : bool array;         (* by net id *)
  touched : int Stack.t;
  scheduled : bool array;     (* by gate index *)
  buckets : int list array;   (* gates to process, by level *)
  max_level : int;
  ins_buf : int64 array;      (* scratch for gate inputs, max arity *)
}

let create (m : Cmodel.t) =
  let nn = m.Cmodel.num_nets in
  let max_level =
    Array.fold_left (fun acc (g : Cmodel.gate) -> max acc g.Cmodel.g_level) 0 m.Cmodel.gates
  in
  (* the scratch buffer must hold the widest gate in *this* model, not a
     library-wide guess: a model with a wider-than-expected gate used to
     overflow the historical [Array.make 4] *)
  let max_arity =
    Array.fold_left
      (fun acc (g : Cmodel.gate) -> max acc (Array.length g.Cmodel.g_ins))
      4 m.Cmodel.gates
  in
  { m;
    val_good = Array.make nn 0L;
    val_fault = Array.make nn 0L;
    dirty = Array.make nn false;
    touched = Stack.create ();
    scheduled = Array.make (Array.length m.Cmodel.gates) false;
    buckets = Array.make (max_level + 2) [];
    max_level;
    ins_buf = Array.make max_arity 0L }

let model t = t.m

let num_sources t = Array.length t.m.Cmodel.sources

let set_sources t words =
  if Array.length words <> num_sources t then invalid_arg "Fsim.set_sources: arity";
  Array.iteri (fun k (n, _) -> t.val_good.(n) <- words.(k)) t.m.Cmodel.sources;
  Array.iter
    (fun (n, v) -> t.val_good.(n) <- (if v then -1L else 0L))
    t.m.Cmodel.consts;
  Array.iter
    (fun (g : Cmodel.gate) ->
      let arity = Array.length g.Cmodel.g_ins in
      for i = 0 to arity - 1 do
        t.ins_buf.(i) <- t.val_good.(g.Cmodel.g_ins.(i))
      done;
      (* eval64 only reads the first [arity] entries *)
      t.val_good.(g.Cmodel.g_out) <- Cell.eval64 g.Cmodel.g_kind t.ins_buf)
    t.m.Cmodel.gates

let good t n = t.val_good.(n)

let effective t n = if t.dirty.(n) then t.val_fault.(n) else t.val_good.(n)

let set_faulty t n v =
  if not t.dirty.(n) then begin
    t.dirty.(n) <- true;
    Stack.push n t.touched
  end;
  t.val_fault.(n) <- v

let reset t =
  while not (Stack.is_empty t.touched) do
    t.dirty.(Stack.pop t.touched) <- false
  done

let schedule t scheduled_list gi =
  if not t.scheduled.(gi) then begin
    t.scheduled.(gi) <- true;
    scheduled_list := gi :: !scheduled_list;
    let level = t.m.Cmodel.gates.(gi).Cmodel.g_level in
    t.buckets.(level) <- gi :: t.buckets.(level)
  end

let schedule_fanout t scheduled_list n =
  List.iter (fun (gi, _) -> schedule t scheduled_list gi) t.m.Cmodel.fanout.(n)

(* Propagate pending events level by level. [forced] optionally overrides
   one gate input (branch fault injection). Returns the accumulated
   detection mask. *)
let propagate t scheduled_list ~forced =
  let detected = ref 0L in
  for level = 0 to t.max_level + 1 do
    let gates = t.buckets.(level) in
    t.buckets.(level) <- [];
    List.iter
      (fun gi ->
        let g = t.m.Cmodel.gates.(gi) in
        let arity = Array.length g.Cmodel.g_ins in
        for i = 0 to arity - 1 do
          t.ins_buf.(i) <- effective t g.Cmodel.g_ins.(i)
        done;
        (match forced with
         | Some (fgi, pos, word) when fgi = gi -> t.ins_buf.(pos) <- word
         | _ -> ());
        let out_f = Cell.eval64 g.Cmodel.g_kind t.ins_buf in
        let out = g.Cmodel.g_out in
        if out_f <> effective t out then begin
          set_faulty t out out_f;
          if t.m.Cmodel.is_observed.(out) then
            detected := Int64.logor !detected (Int64.logxor out_f t.val_good.(out));
          schedule_fanout t scheduled_list out
        end)
      gates
  done;
  !detected

let cleanup t scheduled_list =
  List.iter (fun gi -> t.scheduled.(gi) <- false) !scheduled_list;
  reset t

let stuck_word stuck = if stuck then -1L else 0L

let detect_mask t (f : Fault.fault) =
  let sw = stuck_word f.Fault.stuck in
  match f.Fault.site with
  | Fault.Obs_branch k ->
    let n = fst t.m.Cmodel.observes.(k) in
    Int64.logxor t.val_good.(n) sw
  | Fault.Stem n ->
    let diff = Int64.logxor t.val_good.(n) sw in
    if diff = 0L then 0L
    else if t.m.Cmodel.is_observed.(n) then diff
    else begin
      let scheduled_list = ref [] in
      set_faulty t n sw;
      schedule_fanout t scheduled_list n;
      let detected = propagate t scheduled_list ~forced:None in
      cleanup t scheduled_list;
      detected
    end
  | Fault.Branch (gi, pos) ->
    let g = t.m.Cmodel.gates.(gi) in
    let n = g.Cmodel.g_ins.(pos) in
    let diff = Int64.logxor t.val_good.(n) sw in
    if diff = 0L then 0L
    else begin
      let scheduled_list = ref [] in
      schedule t scheduled_list gi;
      let detected = propagate t scheduled_list ~forced:(Some (gi, pos, sw)) in
      cleanup t scheduled_list;
      detected
    end

let detects t f = detect_mask t f <> 0L
