module Cmodel = Netlist.Cmodel
module Cell = Stdcell.Cell

type t = {
  m : Cmodel.t;
  val_good : int64 array;     (* by net id *)
  val_fault : int64 array;    (* by net id, valid when dirty *)
  dirty : bool array;         (* by net id *)
  touched : int Stack.t;
  scheduled : bool array;     (* by gate index *)
  (* per-fault event queue, allocation-free: every scheduled gate is
     recorded once in [sched_buf] (for O(touched) cleanup) and threaded
     into its level's intrusive list via [bucket_head]/[bucket_next] --
     the cons cells the historical [int list array] built and dropped per
     fault dominated minor-heap traffic across a run *)
  sched_buf : int array;      (* gates scheduled for the current fault *)
  mutable sched_len : int;
  bucket_head : int array;    (* by level; -1 = empty *)
  bucket_next : int array;    (* by gate index *)
  max_level : int;
  ins_buf : int64 array;      (* scratch for gate inputs, max arity *)
}

let create (m : Cmodel.t) =
  let nn = m.Cmodel.num_nets in
  let max_level =
    Array.fold_left (fun acc (g : Cmodel.gate) -> max acc g.Cmodel.g_level) 0 m.Cmodel.gates
  in
  (* the scratch buffer must hold the widest gate in *this* model, not a
     library-wide guess: a model with a wider-than-expected gate used to
     overflow the historical [Array.make 4] *)
  let max_arity =
    Array.fold_left
      (fun acc (g : Cmodel.gate) -> max acc (Array.length g.Cmodel.g_ins))
      4 m.Cmodel.gates
  in
  { m;
    val_good = Array.make nn 0L;
    val_fault = Array.make nn 0L;
    dirty = Array.make nn false;
    touched = Stack.create ();
    scheduled = Array.make (Array.length m.Cmodel.gates) false;
    sched_buf = Array.make (max 1 (Array.length m.Cmodel.gates)) 0;
    sched_len = 0;
    bucket_head = Array.make (max_level + 2) (-1);
    bucket_next = Array.make (max 1 (Array.length m.Cmodel.gates)) (-1);
    max_level;
    ins_buf = Array.make max_arity 0L }

let model t = t.m

let num_sources t = Array.length t.m.Cmodel.sources

let set_sources t words =
  if Array.length words <> num_sources t then invalid_arg "Fsim.set_sources: arity";
  Array.iteri (fun k (n, _) -> t.val_good.(n) <- words.(k)) t.m.Cmodel.sources;
  Array.iter
    (fun (n, v) -> t.val_good.(n) <- (if v then -1L else 0L))
    t.m.Cmodel.consts;
  Array.iter
    (fun (g : Cmodel.gate) ->
      let arity = Array.length g.Cmodel.g_ins in
      for i = 0 to arity - 1 do
        t.ins_buf.(i) <- t.val_good.(g.Cmodel.g_ins.(i))
      done;
      (* eval64 only reads the first [arity] entries *)
      t.val_good.(g.Cmodel.g_out) <- Cell.eval64 g.Cmodel.g_kind t.ins_buf)
    t.m.Cmodel.gates

let good t n = t.val_good.(n)

let effective t n = if t.dirty.(n) then t.val_fault.(n) else t.val_good.(n)

let set_faulty t n v =
  if not t.dirty.(n) then begin
    t.dirty.(n) <- true;
    Stack.push n t.touched
  end;
  t.val_fault.(n) <- v

let reset t =
  while not (Stack.is_empty t.touched) do
    t.dirty.(Stack.pop t.touched) <- false
  done

let schedule t gi =
  if not t.scheduled.(gi) then begin
    t.scheduled.(gi) <- true;
    t.sched_buf.(t.sched_len) <- gi;
    t.sched_len <- t.sched_len + 1;
    let level = t.m.Cmodel.gates.(gi).Cmodel.g_level in
    t.bucket_next.(gi) <- t.bucket_head.(level);
    t.bucket_head.(level) <- gi
  end

let schedule_fanout t n =
  List.iter (fun (gi, _) -> schedule t gi) t.m.Cmodel.fanout.(n)

(* Propagate pending events level by level. [forced] optionally overrides
   one gate input (branch fault injection). Returns the accumulated
   detection mask. *)
let propagate t ~forced =
  let detected = ref 0L in
  for level = 0 to t.max_level + 1 do
    (* detach the level's chain before walking it; fanout scheduling only
       ever targets strictly higher levels (combinational levelization) *)
    let gi = ref t.bucket_head.(level) in
    t.bucket_head.(level) <- -1;
    while !gi >= 0 do
      let g = t.m.Cmodel.gates.(!gi) in
      let arity = Array.length g.Cmodel.g_ins in
      for i = 0 to arity - 1 do
        t.ins_buf.(i) <- effective t g.Cmodel.g_ins.(i)
      done;
      (match forced with
       | Some (fgi, pos, word) when fgi = !gi -> t.ins_buf.(pos) <- word
       | _ -> ());
      let out_f = Cell.eval64 g.Cmodel.g_kind t.ins_buf in
      let out = g.Cmodel.g_out in
      if out_f <> effective t out then begin
        set_faulty t out out_f;
        if t.m.Cmodel.is_observed.(out) then
          detected := Int64.logor !detected (Int64.logxor out_f t.val_good.(out));
        schedule_fanout t out
      end;
      gi := t.bucket_next.(!gi)
    done
  done;
  !detected

let cleanup t =
  for i = 0 to t.sched_len - 1 do
    t.scheduled.(t.sched_buf.(i)) <- false
  done;
  t.sched_len <- 0;
  reset t

let stuck_word stuck = if stuck then -1L else 0L

let detect_mask t (f : Fault.fault) =
  let sw = stuck_word f.Fault.stuck in
  match f.Fault.site with
  | Fault.Obs_branch k ->
    let n = fst t.m.Cmodel.observes.(k) in
    Int64.logxor t.val_good.(n) sw
  | Fault.Stem n ->
    let diff = Int64.logxor t.val_good.(n) sw in
    if diff = 0L then 0L
    else if t.m.Cmodel.is_observed.(n) then diff
    else begin
      set_faulty t n sw;
      schedule_fanout t n;
      let detected = propagate t ~forced:None in
      cleanup t;
      detected
    end
  | Fault.Branch (gi, pos) ->
    let g = t.m.Cmodel.gates.(gi) in
    let n = g.Cmodel.g_ins.(pos) in
    let diff = Int64.logxor t.val_good.(n) sw in
    if diff = 0L then 0L
    else begin
      schedule t gi;
      let detected = propagate t ~forced:(Some (gi, pos, sw)) in
      cleanup t;
      detected
    end

let detects t f = detect_mask t f <> 0L
