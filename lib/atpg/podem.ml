module Cmodel = Netlist.Cmodel
module Cell = Stdcell.Cell

type result =
  | Test of (int * bool) list
  | Untestable
  | Abort

(* ternary encoding: 0, 1, 2 = X *)
let x = 2

let debug = ref false

type trail_entry =
  | Gv of int * int          (* net, old good value *)
  | Fv of int * int * int    (* net, old fv, old fstamp *)

type t = {
  m : Cmodel.t;
  gv : int array;               (* good ternary value per net *)
  fv : int array;               (* faulty overlay, valid when fstamp = stamp *)
  fstamp : int array;
  mutable stamp : int;
  trail : trail_entry Stack.t;
  d_nets : (int * int) Stack.t; (* (net, trail length when it became a D) *)
  source_index : int array;     (* net id -> index in m.sources, or -1 *)
  cc0 : float array;            (* SCOAP guidance *)
  cc1 : float array;
  co : float array;             (* SCOAP observability: D-frontier ranking *)
  obs_dist : int array;         (* net id -> gate-distance to an observe site *)
  xpath_seen : int array;
  mutable xpath_stamp : int;
  rng : Util.Rng.t;  (* randomises search tie-breaks between restarts *)
}

let create (m : Cmodel.t) =
  let nn = m.Cmodel.num_nets in
  let source_index = Array.make nn (-1) in
  Array.iteri (fun k (n, _) -> source_index.(n) <- k) m.Cmodel.sources;
  let scoap = Testability.Scoap.compute m in
  let obs_dist = Array.make nn max_int in
  Array.iter (fun (n, _) -> obs_dist.(n) <- 0) m.Cmodel.observes;
  for gi = Array.length m.Cmodel.gates - 1 downto 0 do
    let g = m.Cmodel.gates.(gi) in
    let dout = obs_dist.(g.Cmodel.g_out) in
    if dout < max_int then
      Array.iter
        (fun n -> if dout + 1 < obs_dist.(n) then obs_dist.(n) <- dout + 1)
        m.Cmodel.gates.(gi).Cmodel.g_ins
  done;
  let gv = Array.make nn x in
  (* constants are baked in and never touched by trails *)
  Array.iter (fun (n, v) -> gv.(n) <- (if v then 1 else 0)) m.Cmodel.consts;
  { m;
    gv;
    fv = Array.make nn x;
    fstamp = Array.make nn (-1);
    stamp = 0;
    trail = Stack.create ();
    d_nets = Stack.create ();
    source_index;
    cc0 = scoap.Testability.Scoap.cc0;
    cc1 = scoap.Testability.Scoap.cc1;
    co = scoap.Testability.Scoap.co;
    obs_dist;
    xpath_seen = Array.make nn (-1);
    xpath_stamp = 0;
    rng = Util.Rng.create 0x90DE }

(* ---- fault context ---- *)

type fault_ctx = {
  fault : Fault.fault;
  stem_net : int;                   (* net pinned in the faulty circuit, or -1 *)
  branch : (int * int) option;      (* (gate index, pos) forced, or None *)
  site_net : int;
  justify_only : bool;
}

let make_ctx (m : Cmodel.t) (f : Fault.fault) =
  match f.Fault.site with
  | Fault.Stem n ->
    { fault = f; stem_net = n; branch = None; site_net = n; justify_only = false }
  | Fault.Branch (gi, pos) ->
    { fault = f;
      stem_net = -1;
      branch = Some (gi, pos);
      site_net = m.Cmodel.gates.(gi).Cmodel.g_ins.(pos);
      justify_only = false }
  | Fault.Obs_branch k ->
    { fault = f;
      stem_net = -1;
      branch = None;
      site_net = fst m.Cmodel.observes.(k);
      justify_only = true }

(* ---- state primitives ---- *)

let eff_fv t n = if t.fstamp.(n) = t.stamp then t.fv.(n) else t.gv.(n)

let mark_d t n =
  let g = t.gv.(n) and f = eff_fv t n in
  if g <> x && f <> x && g <> f then Stack.push (n, Stack.length t.trail) t.d_nets

let set_gv t n v =
  if t.gv.(n) <> v then begin
    Stack.push (Gv (n, t.gv.(n))) t.trail;
    t.gv.(n) <- v;
    true
  end
  else false

let set_fv t n v =
  if eff_fv t n <> v then begin
    Stack.push (Fv (n, t.fv.(n), t.fstamp.(n))) t.trail;
    t.fv.(n) <- v;
    t.fstamp.(n) <- t.stamp;
    true
  end
  else false

let undo_to t mark =
  while Stack.length t.trail > mark do
    match Stack.pop t.trail with
    | Gv (n, old) -> t.gv.(n) <- old
    | Fv (n, old, old_stamp) ->
      t.fv.(n) <- old;
      t.fstamp.(n) <- old_stamp
  done;
  while (not (Stack.is_empty t.d_nets)) && snd (Stack.top t.d_nets) > mark do
    let (_ : int * int) = Stack.pop t.d_nets in
    ()
  done

let reset t =
  undo_to t 0;
  Stack.clear t.d_nets

(* ---- implication ---- *)

let gate_in (g : Cmodel.gate) i = if i < Array.length g.Cmodel.g_ins then g.Cmodel.g_ins.(i) else -1

let eval_gate t ctx gi =
  let g = t.m.Cmodel.gates.(gi) in
  let i0 = gate_in g 0 and i1 = gate_in g 1 and i2 = gate_in g 2 in
  let ga = if i0 >= 0 then t.gv.(i0) else 0
  and gb = if i1 >= 0 then t.gv.(i1) else 0
  and gc = if i2 >= 0 then t.gv.(i2) else 0 in
  let fa = if i0 >= 0 then eff_fv t i0 else 0
  and fb = if i1 >= 0 then eff_fv t i1 else 0
  and fc = if i2 >= 0 then eff_fv t i2 else 0 in
  let fa, fb, fc =
    match ctx.branch with
    | Some (bgi, pos) when bgi = gi ->
      let sv = if ctx.fault.Fault.stuck then 1 else 0 in
      (match pos with
       | 0 -> (sv, fb, fc)
       | 1 -> (fa, sv, fc)
       | _ -> (fa, fb, sv))
    | _ -> (fa, fb, fc)
  in
  let gout = Cell.eval3 g.Cmodel.g_kind ga gb gc in
  let fout = Cell.eval3 g.Cmodel.g_kind fa fb fc in
  (g.Cmodel.g_out, gout, fout)

(* forward implication from a changed net; values only refine *)
let imply t ctx start =
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    List.iter
      (fun (gi, _) ->
        let out, gout, fout = eval_gate t ctx gi in
        (* the stem net is pinned in the faulty circuit *)
        let fout =
          if out = ctx.stem_net then (if ctx.fault.Fault.stuck then 1 else 0) else fout
        in
        let changed_g = set_gv t out gout in
        let changed_f = set_fv t out fout in
        if changed_g || changed_f then begin
          mark_d t out;
          Queue.add out queue
        end)
      t.m.Cmodel.fanout.(n)
  done

let assign_source t ctx n v =
  let tv = if v then 1 else 0 in
  let (_ : bool) = set_gv t n tv in
  let fvv = if n = ctx.stem_net then (if ctx.fault.Fault.stuck then 1 else 0) else tv in
  let (_ : bool) = set_fv t n fvv in
  mark_d t n;
  imply t ctx n

(* ---- detection, frontier, objectives ---- *)

let detected t ctx =
  if ctx.justify_only then begin
    let want = if ctx.fault.Fault.stuck then 0 else 1 in
    t.gv.(ctx.site_net) = want
  end
  else begin
    let found = ref false in
    Stack.iter (fun (n, _) -> if t.m.Cmodel.is_observed.(n) then found := true) t.d_nets;
    !found
  end

(* X-path check: can [n] still reach an observable site through X nets? *)
let has_x_path t n =
  t.xpath_stamp <- t.xpath_stamp + 1;
  let stamp = t.xpath_stamp in
  let rec dfs n =
    if t.xpath_seen.(n) = stamp then false
    else begin
      t.xpath_seen.(n) <- stamp;
      if t.m.Cmodel.is_observed.(n) then true
      else
        List.exists
          (fun (gi, _) ->
            let out = t.m.Cmodel.gates.(gi).Cmodel.g_out in
            (t.gv.(out) = x || eff_fv t out = x) && dfs out)
          t.m.Cmodel.fanout.(n)
    end
  in
  dfs n

let d_frontier t ctx =
  let best = ref None in
  let consider gi =
    let g = t.m.Cmodel.gates.(gi) in
    let out = g.Cmodel.g_out in
    (* rank by SCOAP observability cost, not distance: a wide XOR tree sits
       next to an output yet needs its whole support justified *)
    if (t.gv.(out) = x || eff_fv t out = x)
       && (match !best with Some (_, bc) -> t.co.(out) < bc | None -> true)
       && has_x_path t out
    then best := Some (gi, t.co.(out))
  in
  Stack.iter
    (fun (n, _) -> List.iter (fun (gi, _) -> consider gi) t.m.Cmodel.fanout.(n))
    t.d_nets;
  (* a branch fault's D lives on the pin, not the net: once the site net is
     activated the faulted gate itself is the frontier *)
  (match ctx.branch with
   | Some (gi, _) ->
     let want = if ctx.fault.Fault.stuck then 0 else 1 in
     if t.gv.(ctx.site_net) = want then consider gi
   | None -> ());
  Option.map fst !best

type objective_verdict =
  | Assign of int * bool   (* justify (net, value) in the good circuit *)
  | Resolve_faulty         (* frontier alive but gated on unresolved faulty
                              values (reconvergence): branch on any free
                              source to make progress *)
  | Refuted                (* no way forward under the current assignment *)

let objective t ctx =
  let want_site = if ctx.fault.Fault.stuck then 0 else 1 in
  if t.gv.(ctx.site_net) = x then Assign (ctx.site_net, want_site = 1)
  else if t.gv.(ctx.site_net) <> want_site then Refuted
  else if ctx.justify_only then Refuted
  else
    match d_frontier t ctx with
    | None -> Refuted
    | Some gi ->
      let g = t.m.Cmodel.gates.(gi) in
      let arity = Array.length g.Cmodel.g_ins in
      let pick = ref None in
      for i = arity - 1 downto 0 do
        let n = g.Cmodel.g_ins.(i) in
        if t.gv.(n) = x then begin
          let v =
            match Fault.forced_output g.Cmodel.g_kind ~arity ~pos:i ~v:true with
            | Some _ -> false (* 1 is controlling: aim for the non-controlling 0 *)
            | None -> true
          in
          pick := Some (n, v)
        end
      done;
      (match !pick with
       | Some (n, v) -> Assign (n, v)
       | None ->
         (* every input's good value is known, but the frontier is open
            because a faulty-circuit value is still X -- more source
            assignments are needed to resolve it *)
         Resolve_faulty)

let backtrace t obj =
  let rec walk n v depth =
    if depth > 10_000 then None
    else if t.source_index.(n) >= 0 then if t.gv.(n) = x then Some (n, v) else None
    else
      match t.m.Cmodel.driver_gate.(n) with
      | -1 -> None
      | gi ->
        let g = t.m.Cmodel.gates.(gi) in
        let arity = Array.length g.Cmodel.g_ins in
        let best = ref None in
        for mask = 0 to (1 lsl arity) - 1 do
          let bits = Array.init arity (fun i -> mask land (1 lsl i) <> 0) in
          let consistent =
            Array.for_all2
              (fun b inn -> t.gv.(inn) = x || t.gv.(inn) = (if b then 1 else 0))
              bits g.Cmodel.g_ins
          in
          if consistent then begin
            let words = Array.map (fun b -> if b then -1L else 0L) bits in
            let out = Int64.logand (Cell.eval64 g.Cmodel.g_kind words) 1L = 1L in
            if out = v then begin
              let cost = ref 0.0 in
              Array.iteri
                (fun i b ->
                  let inn = g.Cmodel.g_ins.(i) in
                  if t.gv.(inn) = x then
                    cost := !cost +. (if b then t.cc1.(inn) else t.cc0.(inn)))
                bits;
              (* jitter breaks ties differently on every restart *)
              cost := !cost *. (1.0 +. Util.Rng.float t.rng 0.25);
              match !best with
              | Some (_, c) when c <= !cost -> ()
              | _ -> best := Some (bits, !cost)
            end
          end
        done;
        (match !best with
         | None -> None
         | Some (bits, _) ->
           let follow = ref None in
           Array.iteri
             (fun i b ->
               if !follow = None && t.gv.(g.Cmodel.g_ins.(i)) = x then
                 follow := Some (g.Cmodel.g_ins.(i), b))
             bits;
           (match !follow with
            | None -> None
            | Some (n', v') -> walk n' v' (depth + 1)))
  in
  walk (fst obj) (snd obj) 0

(* ---- search ---- *)

type search_state = {
  mutable backtracks : int;
  limit : int;
}

exception Found

(* Completeness fallback: the SCOAP-guided backtrace can dead-end on a
   state where a different frontier would still progress; declaring failure
   there would make "Untestable" unsound. Branch on any source that can
   still influence the remaining X logic instead. *)
let any_free_source t ctx =
  ignore ctx;
  let found = ref None in
  Array.iteri
    (fun _ (n, _) -> if !found = None && t.gv.(n) = x then found := Some (n, true))
    t.m.Cmodel.sources;
  !found

let rec search t ctx s =
  if detected t ctx then raise Found;
  let decision =
    match objective t ctx with
    | Refuted -> None
    | Resolve_faulty -> any_free_source t ctx
    | Assign (n, v) ->
      if !debug then
        Format.eprintf "  [bt=%d] objective net=%s v=%b@." s.backtracks
          (Netlist.Design.net t.m.Cmodel.design n).Netlist.Design.nname v;
      (match backtrace t (n, v) with
       | Some d -> Some d
       | None -> any_free_source t ctx)
  in
  (match decision with
     | None ->
       if !debug then
         Format.eprintf "  [bt=%d depth=%d] refuted (site gv=%d)@." s.backtracks
           (Stack.length t.trail) t.gv.(ctx.site_net);
       false
     | Some (src, v) ->
       let mark = Stack.length t.trail in
       let try_value v =
         assign_source t ctx src v;
         let ok = search t ctx s in
         if not ok then undo_to t mark;
         ok
       in
       if try_value v then true
       else begin
         s.backtracks <- s.backtracks + 1;
         if s.backtracks > s.limit then raise Exit;
         try_value (not v)
       end)

let extract_cube t =
  let cube = ref [] in
  Array.iteri
    (fun k (n, _) -> if t.gv.(n) <> x then cube := (k, t.gv.(n) = 1) :: !cube)
    t.m.Cmodel.sources;
  List.rev !cube

(* ---- public driver ---- *)

(* Randomised restarts exploit the heavy-tailed runtime distribution of
   chronological backtracking: several short searches with different
   tie-breaks succeed far more often than one long one. *)
let restarts = 5

let attempt ?(backtrack_limit = 250) t ~keep (f : Fault.fault) =
  let ctx = make_ctx t.m f in
  let mark = Stack.length t.trail in
  let run_once limit =
    t.stamp <- t.stamp + 1;
    (* D-nets from a previous kept attempt belong to a dead stamp *)
    Stack.clear t.d_nets;
    if ctx.stem_net >= 0 then begin
      let (_ : bool) = set_fv t ctx.stem_net (if f.Fault.stuck then 1 else 0) in
      mark_d t ctx.stem_net;
      imply t ctx ctx.stem_net
    end;
    let s = { backtracks = 0; limit } in
    let outcome =
      match search t ctx s with
      | true -> Test (extract_cube t)
      | false -> Untestable
      | exception Found -> Test (extract_cube t)
      | exception Exit -> Abort
    in
    (match outcome with
     | Test _ when keep -> ()
     | Test _ | Untestable | Abort -> undo_to t mark);
    outcome
  in
  let per_restart = max 16 (backtrack_limit / restarts) in
  let rec go k =
    match run_once per_restart with
    | Abort when k < restarts -> go (k + 1)
    | r -> r
  in
  go 1

let apply_cube t cube =
  (* a throwaway fault-free context: stem -1, no branch *)
  let dummy =
    { fault = { Fault.fid = -1; site = Fault.Stem (-1); stuck = false;
                status = Fault.Undetected; equiv_to = -1 };
      stem_net = -1;
      branch = None;
      site_net = -1;
      justify_only = true }
  in
  List.for_all
    (fun (k, v) ->
      let n, _ = t.m.Cmodel.sources.(k) in
      if t.gv.(n) = x then begin
        assign_source t dummy n v;
        true
      end
      else t.gv.(n) = (if v then 1 else 0))
    cube

let generate ?backtrack_limit t f =
  reset t;
  let r = attempt ?backtrack_limit t ~keep:false f in
  reset t;
  r

let generate_under ?backtrack_limit t ~base f =
  reset t;
  let ok = apply_cube t base in
  let r =
    if not ok then Abort
    else
      match attempt ?backtrack_limit t ~keep:false f with
      | Untestable -> Abort
      | r -> r
  in
  reset t;
  r
