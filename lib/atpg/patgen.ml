module Cmodel = Netlist.Cmodel
module Rng = Util.Rng

type config = {
  seed : int;
  random_batches_max : int;
  random_yield_stop : int;
  backtrack_limit : int;
  merge_fail_stop : int;
  merge_tries_max : int;
}

let default_config =
  { seed = 0xA7B6;
    random_batches_max = 0;  (* compact ATPG: deterministic-only by default *)
    random_yield_stop = 8;
    backtrack_limit = 250;
    merge_fail_stop = 24;
    merge_tries_max = 512 }

type outcome = {
  patterns : Bytes.t list;
  universe : Fault.universe;
  fault_coverage : float;
  fault_efficiency : float;
  random_patterns : int;
  deterministic_patterns : int;
  aborted : int;
  redundant : int;
}

let num_patterns o = List.length o.patterns

let m_patterns = Obs.Metrics.counter "atpg.patterns_generated"
let m_podem_attempts = Obs.Metrics.counter "atpg.podem_attempts"
let m_aborted = Obs.Metrics.counter "atpg.aborted_faults"
let m_redundant = Obs.Metrics.counter "atpg.redundant_faults"
let h_merge_tries = Obs.Metrics.histogram "atpg.merge_tries"

(* extract pattern [bit] of the batch as a concrete source assignment *)
let column words bit =
  let ns = Array.length words in
  let b = Bytes.create ns in
  for s = 0 to ns - 1 do
    Bytes.unsafe_set b s
      (if Int64.logand (Int64.shift_right_logical words.(s) bit) 1L = 1L then '\001'
       else '\000')
  done;
  b

let bit_set mask bit = Int64.logand (Int64.shift_right_logical mask bit) 1L = 1L

let random_words rng ns =
  Array.init ns (fun _ -> Rng.int64 rng)

(* Reverse-order static compaction: re-simulate the final pattern set newest
   first (in batches of 64) and keep only patterns that detect something not
   already covered by a kept pattern. Late patterns carry the hard targeted
   faults, so they survive and redundant early patterns fall out.
   [masks_for] is the (possibly domain-parallel) PPSFP fan-out of [run]. *)
let static_compact masks_for (universe : Fault.universe) patterns =
  let live =
    Array.of_seq
      (Seq.filter
         (fun (f : Fault.fault) ->
           Fault.representative universe f == f && f.Fault.status = Fault.Detected)
         (Array.to_seq universe.Fault.faults))
  in
  let undetected = Array.map (fun _ -> true) live in
  let pats = Array.of_list patterns in
  let np = Array.length pats in
  let keep = Array.make np false in
  let ns = if np > 0 then Bytes.length pats.(0) else 0 in
  let pos = ref (np - 1) in
  while !pos >= 0 do
    let first = max 0 (!pos - 63) in
    let width = !pos - first + 1 in
    let words = Array.make ns 0L in
    for bit = 0 to width - 1 do
      let p = pats.(first + bit) in
      for s = 0 to ns - 1 do
        if Bytes.unsafe_get p s = '\001' then
          words.(s) <- Int64.logor words.(s) (Int64.shift_left 1L bit)
      done
    done;
    let masks = masks_for ?keep:(Some (fun i -> undetected.(i))) words live in
    for bit = width - 1 downto 0 do
      let adds = ref false in
      Array.iteri
        (fun i m -> if undetected.(i) && bit_set m bit then adds := true)
        masks;
      if !adds then begin
        keep.(first + bit) <- true;
        Array.iteri
          (fun i m -> if bit_set m bit then undetected.(i) <- false)
          masks
      end
    done;
    pos := first - 1
  done;
  let out = ref [] in
  for p = np - 1 downto 0 do
    if keep.(p) then out := pats.(p) :: !out
  done;
  !out

(* PPSFP fan-out threshold: below this many live faults the per-domain
   good-circuit resimulation would dominate, so stay sequential *)
let fanout_min = 32

let run ?pool ?(config = default_config) (m : Cmodel.t) =
  let rng = Rng.create config.seed in
  let universe = Obs.Trace.with_span ~name:"atpg.fault_build" (fun () -> Fault.build m) in
  let sim = Fsim.create m in
  (* one simulator replica per pool slot (slot 0 reuses [sim]), created
     lazily so sequential runs and ATPG-free flows pay nothing *)
  let replicas =
    lazy
      (match pool with
       | None -> [| sim |]
       | Some p ->
         Array.init (Par.Pool.size p) (fun s -> if s = 0 then sim else Fsim.create m))
  in
  (* Apply the 64-pattern batch [words] and compute each fault's detection
     mask, in fault order. With a pool, the fault array is split into fixed
     contiguous chunks; each domain re-runs the good-circuit pass on its own
     replica and walks its chunk. Masks land by fault index and every
     consumer folds them in fault order, so drop decisions and pattern
     selection are bit-identical to the sequential run. *)
  let masks_for ?(keep = fun _ -> true) words (faults : Fault.fault array) =
    let n = Array.length faults in
    let out = Array.make n 0L in
    (match pool with
     | Some p when n >= fanout_min && Par.Pool.size p > 1 ->
       let sims = Lazy.force replicas in
       Par.Pool.iter_slots p ~n (fun ~slot ~lo ~hi ->
           let s = sims.(slot) in
           Fsim.set_sources s words;
           for i = lo to hi - 1 do
             if keep i then out.(i) <- Fsim.detect_mask s faults.(i)
           done)
     | _ ->
       Fsim.set_sources sim words;
       for i = 0 to n - 1 do
         if keep i then out.(i) <- Fsim.detect_mask sim faults.(i)
       done);
    out
  in
  let ns = Array.length m.Cmodel.sources in
  let patterns = ref [] in
  let random_patterns = ref 0 and deterministic_patterns = ref 0 in
  let live = ref [] in
  Array.iter
    (fun (f : Fault.fault) ->
      if f.Fault.status = Fault.Undetected then live := f :: !live)
    universe.Fault.representatives;
  live := List.rev !live;
  let drop_detected mask_of =
    live :=
      List.filter
        (fun (f : Fault.fault) ->
          if f.Fault.status <> Fault.Undetected then false
          else if mask_of f then begin
            f.Fault.status <- Fault.Detected;
            false
          end
          else true)
        !live
  in
  (* ---- optional random warm-up (off in the default compact flow) ---- *)
  let batches = ref 0 and stop = ref (config.random_batches_max <= 0) in
  Obs.Trace.with_span ~name:"atpg.random" (fun () ->
  while not !stop do
    incr batches;
    if !batches > config.random_batches_max || !live = [] then stop := true
    else begin
      let words = random_words rng ns in
      let larr = Array.of_list !live in
      let marr = masks_for words larr in
      let best = ref 0 and counts = Array.make 64 0 in
      let masks = Array.to_list (Array.map2 (fun f m -> (f, m)) larr marr) in
      List.iter
        (fun (_, m) ->
          for bit = 0 to 63 do
            if bit_set m bit then counts.(bit) <- counts.(bit) + 1
          done)
        masks;
      for bit = 1 to 63 do
        if counts.(bit) > counts.(!best) then best := bit
      done;
      if counts.(!best) < config.random_yield_stop then stop := true
      else begin
        patterns := column words !best :: !patterns;
        incr random_patterns;
        Obs.Metrics.incr m_patterns;
        let table = Hashtbl.create 64 in
        List.iter (fun ((f : Fault.fault), m) -> Hashtbl.replace table f.Fault.fid m) masks;
        drop_detected (fun f ->
            match Hashtbl.find_opt table f.Fault.fid with
            | Some m -> bit_set m !best
            | None -> false)
      end
    end
  done);
  (* ---- deterministic phase with dynamic compaction ---- *)
  let podem = Podem.create m in
  let aborted = ref 0 and redundant = ref 0 in
  (* hardest first: big cubes early absorb easier targets, and the merge
     capacity of a pattern then reflects the circuit's testability *)
  let cop = Testability.Cop.compute m in
  let hardness (f : Fault.fault) =
    let n = Fault.site_net m f.Fault.site in
    Testability.Cop.detectability cop n
  in
  let targets = Array.of_list !live in
  Array.sort (fun a b -> compare (hardness a) (hardness b)) targets;
  let ntargets = Array.length targets in
  Obs.Trace.with_span ~name:"atpg.deterministic"
    ~attrs:[ ("targets", Obs.Json.Int ntargets) ]
    (fun () ->
  Array.iteri
    (fun ti (f : Fault.fault) ->
      if f.Fault.status = Fault.Undetected then begin
        Podem.reset podem;
        Obs.Metrics.incr m_podem_attempts;
        match Podem.attempt ~backtrack_limit:config.backtrack_limit podem ~keep:true f with
        | Podem.Untestable ->
          f.Fault.status <- Fault.Redundant;
          incr redundant;
          Obs.Metrics.incr m_redundant
        | Podem.Abort ->
          f.Fault.status <- Fault.Aborted;
          incr aborted;
          Obs.Metrics.incr m_aborted
        | Podem.Test cube0 ->
          (* dynamic compaction: keep the cube applied and pile further
             targets on top until conflicts dominate (a run of consecutive
             failures) -- so merge capacity tracks testability, which is
             exactly the lever test points pull *)
          let fails = ref 0 and tries = ref 0 in
          let tj = ref (ti + 1) in
          let cube = ref cube0 in
          while
            !fails < config.merge_fail_stop
            && !tries < config.merge_tries_max
            && !tj < ntargets
          do
            let g = targets.(!tj) in
            incr tj;
            if g.Fault.status = Fault.Undetected then begin
              incr tries;
              Obs.Metrics.incr m_podem_attempts;
              match Podem.attempt ~backtrack_limit:8 podem ~keep:true g with
              | Podem.Test cube' ->
                cube := cube';
                fails := 0
              | Podem.Abort | Podem.Untestable -> incr fails
            end
          done;
          (* 64 random fills of the final cube; keep the most serendipitous *)
          let words = random_words rng ns in
          List.iter (fun (s, v) -> words.(s) <- (if v then -1L else 0L)) !cube;
          let larr = Array.of_list !live in
          let marr = masks_for words larr in
          let masks = Array.to_list (Array.map2 (fun g mask -> (g, mask)) larr marr) in
          let counts = Array.make 64 0 in
          List.iter
            (fun (_, mask) ->
              for bit = 0 to 63 do
                if bit_set mask bit then counts.(bit) <- counts.(bit) + 1
              done)
            masks;
          let best = ref 0 in
          for bit = 1 to 63 do
            if counts.(bit) > counts.(!best) then best := bit
          done;
          patterns := column words !best :: !patterns;
          incr deterministic_patterns;
          Obs.Metrics.incr m_patterns;
          Obs.Metrics.observe h_merge_tries (float_of_int !tries);
          let table = Hashtbl.create 64 in
          List.iter (fun ((g : Fault.fault), mask) -> Hashtbl.replace table g.Fault.fid mask) masks;
          drop_detected (fun g ->
              match Hashtbl.find_opt table g.Fault.fid with
              | Some mask -> bit_set mask !best
              | None -> false);
          if f.Fault.status = Fault.Undetected then begin
            f.Fault.status <- Fault.Aborted;
            incr aborted;
            Obs.Metrics.incr m_aborted
          end
      end)
    targets);
  let fault_coverage, fault_efficiency = Fault.coverage universe in
  let patterns =
    Obs.Trace.with_span ~name:"atpg.static_compact" (fun () ->
        static_compact masks_for universe (List.rev !patterns))
  in
  { patterns;
    universe;
    fault_coverage;
    fault_efficiency;
    random_patterns = !random_patterns;
    deterministic_patterns = !deterministic_patterns;
    aborted = !aborted;
    redundant = !redundant }
