module Design = Netlist.Design
module Cell = Stdcell.Cell
module Point = Geom.Point

type result = {
  plan : Chains.t;
  new_buffers : (int * Point.t) list;
  wirelength_before : float;
  wirelength_after : float;
}

let m_se_buffers = Obs.Metrics.counter "scan.se_buffers_added"
let g_wl_saved = Obs.Metrics.gauge "scan.wirelength_saved_um"
let h_chain_length = Obs.Metrics.histogram "scan.chain_length"

let chain_wirelength (t : Chains.t) ~position =
  Array.fold_left
    (fun acc chain ->
      let total = ref acc in
      for j = 1 to Array.length chain - 1 do
        total := !total +. Point.manhattan (position chain.(j - 1)) (position chain.(j))
      done;
      !total)
    0.0 t.chains

(* Row-banded snake: sort by row band, serpentine the x direction per band.
   Consecutive cells end up physically adjacent, which is what minimises
   the chain wiring the paper's step 3 is after. *)
let snake_order (d : Design.t) ~position ~band_height =
  let cells = ref [] in
  Design.iter_insts d (fun i ->
      match i.Design.cell.Cell.kind with
      | Cell.Sdff | Cell.Tsff -> cells := i.Design.id :: !cells
      | _ -> ());
  let arr = Array.of_list (List.rev !cells) in
  let key iid =
    let p = position iid in
    let band = int_of_float (p.Point.y /. band_height) in
    let x = if band mod 2 = 0 then p.Point.x else -.p.Point.x in
    (band, x)
  in
  let keyed = Array.map (fun iid -> (key iid, iid)) arr in
  Array.sort (fun (ka, _) (kb, _) -> compare ka kb) keyed;
  Array.map snd keyed

let add_se_buffers (d : Design.t) ~position ~max_se_fanout =
  match Design.find_port d "test_se" with
  | None -> []
  | Some p ->
    let se = p.Design.pnet in
    let sinks = (Design.net d se).Design.sinks in
    if List.length sinks <= max_se_fanout then []
    else begin
      (* group sinks geographically (snake over sink positions), one buffer
         per group, placed at the group's centroid *)
      let keyed =
        List.map
          (fun (iid, pin) ->
            let pt = position iid in
            ((int_of_float (pt.Point.y /. 60.0), pt.Point.x), (iid, pin)))
          sinks
      in
      let sorted = List.sort compare keyed in
      let groups = ref [] and current = ref [] and count = ref 0 in
      List.iter
        (fun (_, sink) ->
          current := sink :: !current;
          incr count;
          if !count >= max_se_fanout then begin
            groups := List.rev !current :: !groups;
            current := [];
            count := 0
          end)
        sorted;
      if !current <> [] then groups := List.rev !current :: !groups;
      let buf_cell = Stdcell.Library.find d.Design.lib Cell.Buf ~drive:8 in
      List.mapi
        (fun k group ->
          let b = Design.add_instance d ~name:(Printf.sprintf "se_buf%d" k) ~cell:buf_cell in
          let out = Design.add_net d (Printf.sprintf "se_buf%d_y" k) in
          Design.connect d ~inst:b.Design.id ~pin:0 ~net:se;
          Design.connect d ~inst:b.Design.id ~pin:1 ~net:out.Design.nid;
          let cx = ref 0.0 and cy = ref 0.0 and n = ref 0 in
          List.iter
            (fun (iid, pin) ->
              Design.disconnect d ~inst:iid ~pin;
              Design.connect d ~inst:iid ~pin ~net:out.Design.nid;
              let pt = position iid in
              cx := !cx +. pt.Point.x;
              cy := !cy +. pt.Point.y;
              incr n)
            group;
          let centroid = Point.make (!cx /. float_of_int !n) (!cy /. float_of_int !n) in
          (b.Design.id, centroid))
        !groups
    end

let run ?(max_se_fanout = 32) (d : Design.t) ~config ~position =
  let before_plan =
    Obs.Trace.with_span ~name:"scan.chain_plan" (fun () -> Chains.plan d config)
  in
  let wirelength_before = chain_wirelength before_plan ~position in
  let plan =
    Obs.Trace.with_span ~name:"scan.snake_reorder" (fun () ->
        let order =
          snake_order d ~position ~band_height:(Stdcell.Library.row_height *. 4.0)
        in
        let plan = Chains.of_order config order in
        Chains.stitch d plan;
        plan)
  in
  let wirelength_after = chain_wirelength plan ~position in
  let new_buffers =
    Obs.Trace.with_span ~name:"scan.se_buffers" (fun () ->
        add_se_buffers d ~position ~max_se_fanout)
  in
  Array.iter
    (fun chain -> Obs.Metrics.observe h_chain_length (float_of_int (Array.length chain)))
    plan.Chains.chains;
  Obs.Metrics.add m_se_buffers (List.length new_buffers);
  Obs.Metrics.set g_wl_saved (wirelength_before -. wirelength_after);
  { plan; new_buffers; wirelength_before; wirelength_after }
