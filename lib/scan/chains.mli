(** Scan-chain planning and stitching.

    All scan cells (SDFFs and TSFFs) are partitioned into balanced chains —
    either bounded-length chains (the paper uses at most 100 flip-flops for
    s38417 and the control core) or a fixed chain count (32 for the DSP
    core). Stitching wires each cell's TI to the previous cell's Q and
    binds scan-in/scan-out ports. *)

type config =
  | Max_length of int
  | Num_chains of int

type t = {
  chains : int array array;  (** instance ids, scan-in to scan-out order *)
  lmax : int;                (** longest chain *)
}

val plan : Netlist.Design.t -> config -> t
(** Balanced partition in instance-id order (the pre-layout netlist order;
    {!Scan.Reorder} redoes this from placement). *)

val of_order : config -> int array -> t
(** Balanced partition of an explicit cell order. *)

val stitch : Netlist.Design.t -> t -> unit
(** (Re)wire TI pins and scan ports according to the plan; any previous
    stitching is undone first. *)

val num_chains : t -> int

val verify : Netlist.Design.t -> t -> string option
(** Checks that the netlist's TI stitching realises the plan: every chain
    cell is a scan cell, heads come from a scan-in port, and each cell's TI
    rides its planned predecessor's Q. [None] = consistent; [Some msg]
    describes the first broken link (a "broken scan-chain order"). *)
