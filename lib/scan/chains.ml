module Design = Netlist.Design
module Cell = Stdcell.Cell

type config =
  | Max_length of int
  | Num_chains of int

type t = {
  chains : int array array;
  lmax : int;
}

let scan_cells (d : Design.t) =
  let acc = ref [] in
  Design.iter_insts d (fun i ->
      match i.Design.cell.Cell.kind with
      | Cell.Sdff | Cell.Tsff -> acc := i.Design.id :: !acc
      | _ -> ());
  Array.of_list (List.rev !acc)

let of_order config order =
  let n = Array.length order in
  if n = 0 then { chains = [||]; lmax = 0 }
  else begin
    let num =
      match config with
      | Max_length l ->
        if l <= 0 then invalid_arg "Chains: non-positive max length";
        (n + l - 1) / l
      | Num_chains c ->
        if c <= 0 then invalid_arg "Chains: non-positive chain count";
        min c n
    in
    let lmax = (n + num - 1) / num in
    let chains =
      Array.init num (fun k ->
          let start = k * lmax in
          let len = min lmax (n - start) in
          Array.sub order start (max 0 len))
    in
    let chains = Array.of_list (List.filter (fun c -> Array.length c > 0) (Array.to_list chains)) in
    { chains; lmax }
  end

let plan d config = of_order config (scan_cells d)

let ti_pin = 1 (* TI is pin 1 on both SDFF and TSFF *)

let q_net (d : Design.t) iid = Design.net_of_output d (Design.inst d iid)

let stitch (d : Design.t) t =
  let tie = Tpi.Insert.tie_low_net d in
  (* undo any previous stitching: park every TI back on the tie cell *)
  Design.iter_insts d (fun i ->
      match i.Design.cell.Cell.kind with
      | Cell.Sdff | Cell.Tsff ->
        Design.disconnect d ~inst:i.Design.id ~pin:ti_pin;
        Design.connect d ~inst:i.Design.id ~pin:ti_pin ~net:tie
      | _ -> ());
  Array.iteri
    (fun k chain ->
      let si_name = Printf.sprintf "si%d" k and so_name = Printf.sprintf "so%d" k in
      let si =
        match Design.find_port d si_name with
        | Some p -> p
        | None -> Design.add_port d si_name Design.In
      in
      let so =
        match Design.find_port d so_name with
        | Some p -> p
        | None -> Design.add_port d so_name Design.Out
      in
      Array.iteri
        (fun j iid ->
          Design.disconnect d ~inst:iid ~pin:ti_pin;
          let src = if j = 0 then si.Design.pnet else q_net d chain.(j - 1) in
          Design.connect d ~inst:iid ~pin:ti_pin ~net:src)
        chain;
      let last = chain.(Array.length chain - 1) in
      Design.connect_out_port d ~port:so.Design.pid ~net:(q_net d last))
    t.chains

let num_chains t = Array.length t.chains

let verify (d : Design.t) t =
  (* the netlist's TI wiring must realise exactly the planned chain order:
     cell j's TI driven by cell j-1's Q (j = 0 comes from a scan-in port) *)
  let problem = ref None in
  let report msg = if !problem = None then problem := Some msg in
  Array.iteri
    (fun k chain ->
      Array.iteri
        (fun j iid ->
          let i = Design.inst d iid in
          (match i.Design.cell.Cell.kind with
           | Cell.Sdff | Cell.Tsff -> ()
           | _ ->
             report
               (Printf.sprintf "chain %d cell %d (%s) is not a scan cell" k j
                  i.Design.iname));
          let ti_net = i.Design.conns.(ti_pin) in
          if ti_net < 0 then
            report (Printf.sprintf "chain %d cell %d (%s): TI unconnected" k j i.Design.iname)
          else if j = 0 then begin
            match (Design.net d ti_net).Design.driver with
            | Design.Port_in _ -> ()
            | _ ->
              report
                (Printf.sprintf "chain %d head %s: TI not fed from a scan-in port" k
                   i.Design.iname)
          end
          else begin
            let want = q_net d chain.(j - 1) in
            if ti_net <> want then
              report
                (Printf.sprintf
                   "chain %d cell %d (%s): TI on net %d, expected predecessor %s's Q (net %d)"
                   k j i.Design.iname ti_net
                   (Design.inst d chain.(j - 1)).Design.iname want)
          end)
        chain)
    t.chains;
  !problem
