module Vec = Util.Vec

type port_dir =
  | In
  | Out

type driver =
  | No_driver
  | Port_in of int
  | Cell_pin of int * int

type instance = {
  id : int;
  mutable iname : string;
  mutable cell : Stdcell.Cell.t;
  mutable conns : int array;
  mutable domain : int;
}

type net = {
  nid : int;
  mutable nname : string;
  mutable driver : driver;
  mutable sinks : (int * int) list;
  mutable out_port : int;
}

type port = {
  pid : int;
  pname : string;
  dir : port_dir;
  mutable pnet : int;
}

type domain = {
  dom_name : string;
  period_ps : float;
  mutable clock_net : int;
}

type t = {
  design_name : string;
  lib : Stdcell.Library.t;
  insts : instance Vec.t;
  nets : net Vec.t;
  ports : port Vec.t;
  mutable domains : domain array;
}

let create ?(lib = Stdcell.Library.default) design_name =
  { design_name;
    lib;
    insts = Vec.create ();
    nets = Vec.create ();
    ports = Vec.create ();
    domains = [||] }

let add_net t nname =
  let nid = Vec.length t.nets in
  let n = { nid; nname; driver = No_driver; sinks = []; out_port = -1 } in
  let (_ : int) = Vec.push t.nets n in
  n

let add_port t pname dir =
  let pid = Vec.length t.ports in
  let n = add_net t pname in
  let p = { pid; pname; dir; pnet = n.nid } in
  let (_ : int) = Vec.push t.ports p in
  (match dir with
   | In -> n.driver <- Port_in pid
   | Out -> n.out_port <- pid);
  p

let add_instance t ~name ~cell =
  let id = Vec.length t.insts in
  let npins = Array.length cell.Stdcell.Cell.pins in
  let i = { id; iname = name; cell; conns = Array.make npins (-1); domain = -1 } in
  let (_ : int) = Vec.push t.insts i in
  i

let add_domain t ~name ~period_ps ~clock_net =
  let d = { dom_name = name; period_ps; clock_net } in
  t.domains <- Array.append t.domains [| d |];
  Array.length t.domains - 1

let num_insts t = Vec.length t.insts
let num_nets t = Vec.length t.nets

let inst t id = Vec.get t.insts id
let net t id = Vec.get t.nets id
let port t id = Vec.get t.ports id

let iter_insts t f = Vec.iter f t.insts
let iter_nets t f = Vec.iter f t.nets

let find_port t name =
  let found = ref None in
  Vec.iter (fun p -> if p.pname = name then found := Some p) t.ports;
  !found

let connect t ~inst:iid ~pin ~net:nid =
  let i = inst t iid and n = net t nid in
  if pin < 0 || pin >= Array.length i.conns then invalid_arg "Design.connect: bad pin";
  if i.conns.(pin) >= 0 then
    invalid_arg (Printf.sprintf "Design.connect: pin %d of %s already connected" pin i.iname);
  i.conns.(pin) <- nid;
  let p = i.cell.Stdcell.Cell.pins.(pin) in
  match p.Stdcell.Pin.dir with
  | Stdcell.Pin.Input -> n.sinks <- (iid, pin) :: n.sinks
  | Stdcell.Pin.Output ->
    (match n.driver with
     | No_driver -> n.driver <- Cell_pin (iid, pin)
     | _ -> invalid_arg (Printf.sprintf "Design.connect: net %s double-driven" n.nname))

let disconnect t ~inst:iid ~pin =
  let i = inst t iid in
  let nid = i.conns.(pin) in
  if nid >= 0 then begin
    let n = net t nid in
    i.conns.(pin) <- -1;
    let p = i.cell.Stdcell.Cell.pins.(pin) in
    match p.Stdcell.Pin.dir with
    | Stdcell.Pin.Input ->
      n.sinks <- List.filter (fun (i', p') -> not (i' = iid && p' = pin)) n.sinks
    | Stdcell.Pin.Output ->
      (match n.driver with
       | Cell_pin (i', p') when i' = iid && p' = pin -> n.driver <- No_driver
       | _ -> ())
  end

let connect_out_port t ~port:pid ~net:nid =
  let p = port t pid and n = net t nid in
  if p.dir <> Out then invalid_arg "Design.connect_out_port: not an output port";
  (* release the placeholder net created by [add_port] *)
  if p.pnet >= 0 then (net t p.pnet).out_port <- -1;
  p.pnet <- nid;
  n.out_port <- pid

let fanout t nid = List.length (net t nid).sinks

let net_of_output _t (i : instance) =
  match i.cell.Stdcell.Cell.kind with
  | Stdcell.Cell.Filler -> -1
  | _ ->
    let out = Stdcell.Cell.output_pin i.cell in
    i.conns.(out)

let is_ff (i : instance) = i.cell.Stdcell.Cell.sequential

let ffs t =
  let acc = ref [] in
  iter_insts t (fun i -> if is_ff i then acc := i :: !acc);
  List.rev !acc

let ports_with dir t =
  let acc = ref [] in
  Vec.iter (fun p -> if p.dir = dir then acc := p :: !acc) t.ports;
  List.rev !acc

let input_ports t = ports_with In t
let output_ports t = ports_with Out t

let replace_cell t ~inst:iid ~cell ~pin_map =
  let i = inst t iid in
  let old_conns = Array.copy i.conns in
  (* detach all old pins first so the net driver/sink lists stay coherent *)
  Array.iteri (fun pin nid -> if nid >= 0 then disconnect t ~inst:iid ~pin) old_conns;
  i.cell <- cell;
  i.conns <- Array.make (Array.length cell.Stdcell.Cell.pins) (-1);
  let rewire (old_pin, new_pin) =
    let nid = old_conns.(old_pin) in
    if nid >= 0 then connect t ~inst:iid ~pin:new_pin ~net:nid
  in
  List.iter rewire pin_map

(* Structural fingerprint for the stage cache (lib/cache): an FNV-1a-style
   rolling hash over every field that downstream passes can read. Cells are
   identified by their (unique) library names, so the hash never depends on
   physical identity -- two independently generated but structurally equal
   designs fingerprint equally, which is exactly what lets a warm cache
   serve a fresh sweep. *)
let fingerprint t =
  let h = ref 0x1A2B3C4D5E6F17 in
  let mix k = h := (!h lxor (k land max_int)) * 0x100000001B3 in
  let mix_str s =
    String.iter (fun c -> mix (Char.code c)) s;
    mix (-1) (* terminator: ("ab","c") and ("a","bc") must differ *)
  in
  let mix_float f = mix (Int64.to_int (Int64.bits_of_float f)) in
  mix_str t.design_name;
  mix (Vec.length t.insts);
  Vec.iter
    (fun i ->
      mix i.id;
      mix_str i.iname;
      mix_str i.cell.Stdcell.Cell.name;
      Array.iter mix i.conns;
      mix i.domain)
    t.insts;
  mix (Vec.length t.nets);
  Vec.iter
    (fun n ->
      mix n.nid;
      mix_str n.nname;
      (match n.driver with
       | No_driver -> mix 0
       | Port_in p ->
         mix 1;
         mix p
       | Cell_pin (i, p) ->
         mix 2;
         mix i;
         mix p);
      List.iter
        (fun (i, p) ->
          mix i;
          mix p)
        n.sinks;
      mix (-2);
      mix n.out_port)
    t.nets;
  mix (Vec.length t.ports);
  Vec.iter
    (fun p ->
      mix p.pid;
      mix_str p.pname;
      mix (match p.dir with In -> 0 | Out -> 1);
      mix p.pnet)
    t.ports;
  mix (Array.length t.domains);
  Array.iter
    (fun d ->
      mix_str d.dom_name;
      mix_float d.period_ps;
      mix d.clock_net)
    t.domains;
  Printf.sprintf "%016x" (!h land max_int)

(* Speculative-edit undo. Instances are never deleted by optimization
   passes — the one sanctioned exception is rolling back the most recent
   edit of a trial-and-revert loop (Flow.Repair): the trial cell/net is by
   construction the newest one, must be fully disconnected, and removing it
   restores the exact pre-edit structure (ids, orders, fingerprint). *)

let remove_last_instance t =
  let n = Vec.length t.insts in
  if n = 0 then invalid_arg "Design.remove_last_instance: no instances";
  let i = Vec.get t.insts (n - 1) in
  Array.iteri
    (fun pin nid ->
      if nid >= 0 then
        invalid_arg
          (Printf.sprintf "Design.remove_last_instance: pin %d of %s still connected" pin
             i.iname))
    i.conns;
  Vec.truncate t.insts (n - 1)

let remove_last_net t =
  let n = Vec.length t.nets in
  if n = 0 then invalid_arg "Design.remove_last_net: no nets";
  let nt = Vec.get t.nets (n - 1) in
  if nt.driver <> No_driver || nt.sinks <> [] || nt.out_port >= 0 then
    invalid_arg
      (Printf.sprintf "Design.remove_last_net: net %s still referenced" nt.nname);
  Vec.truncate t.nets (n - 1)

let split_net t ~net:nid ~name =
  let old = net t nid in
  let fresh = add_net t name in
  fresh.sinks <- old.sinks;
  old.sinks <- [];
  List.iter
    (fun (iid, pin) -> (inst t iid).conns.(pin) <- fresh.nid)
    fresh.sinks;
  if old.out_port >= 0 then begin
    let p = port t old.out_port in
    p.pnet <- fresh.nid;
    fresh.out_port <- old.out_port;
    old.out_port <- -1
  end;
  fresh

(* exact inverse of [split_net]: moves the whole sink list back in order
   (split moved it wholesale, so the original order is preserved bit for
   bit) and restores the output-port binding. [old] must have no sinks of
   its own — any cell wired to it since the split must be detached first. *)
let unsplit_net t ~net:nid ~fresh:fid =
  let old = net t nid and fresh = net t fid in
  if old.sinks <> [] then invalid_arg "Design.unsplit_net: split net re-acquired sinks";
  (match fresh.driver with
   | No_driver -> ()
   | _ -> invalid_arg "Design.unsplit_net: fresh net still driven");
  old.sinks <- fresh.sinks;
  fresh.sinks <- [];
  List.iter (fun (iid, pin) -> (inst t iid).conns.(pin) <- old.nid) old.sinks;
  if fresh.out_port >= 0 then begin
    let p = port t fresh.out_port in
    p.pnet <- old.nid;
    old.out_port <- fresh.out_port;
    fresh.out_port <- -1
  end
