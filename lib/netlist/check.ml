type violation =
  | Undriven_net of int
  | Floating_input of int * int
  | Dangling_output of int
  | Unbound_port of int
  | Inconsistent_conn of int * int
  | Ff_without_domain of int
  | Ff_clock_mismatch of int

let class_name = function
  | Undriven_net _ -> "undriven-net"
  | Floating_input _ -> "floating-input"
  | Dangling_output _ -> "dangling-output"
  | Unbound_port _ -> "unbound-port"
  | Inconsistent_conn _ -> "inconsistent-conn"
  | Ff_without_domain _ -> "ff-without-domain"
  | Ff_clock_mismatch _ -> "clock-mismatch"

let pp_violation (d : Design.t) ppf = function
  | Undriven_net n -> Format.fprintf ppf "undriven net %s" (Design.net d n).nname
  | Floating_input (i, p) ->
    Format.fprintf ppf "floating input pin %d of %s" p (Design.inst d i).iname
  | Dangling_output i ->
    Format.fprintf ppf "dangling output of %s" (Design.inst d i).iname
  | Unbound_port p -> Format.fprintf ppf "unbound port %s" (Design.port d p).pname
  | Inconsistent_conn (i, p) ->
    Format.fprintf ppf "inconsistent connection at pin %d of %s" p (Design.inst d i).iname
  | Ff_without_domain i ->
    Format.fprintf ppf "flip-flop %s has no clock domain" (Design.inst d i).iname
  | Ff_clock_mismatch i ->
    Format.fprintf ppf "flip-flop %s clocked off its domain's net" (Design.inst d i).iname

let run (d : Design.t) =
  let out = ref [] in
  let add v = out := v :: !out in
  Design.iter_nets d (fun n ->
      if n.driver = Design.No_driver && n.sinks <> [] then add (Undriven_net n.nid));
  Design.iter_insts d (fun i ->
      let cell = i.cell in
      if cell.Stdcell.Cell.kind <> Stdcell.Cell.Filler then begin
        Array.iteri
          (fun pin nid ->
            let p = cell.Stdcell.Cell.pins.(pin) in
            if Stdcell.Pin.is_input p then begin
              if nid < 0 then add (Floating_input (i.id, pin))
              else begin
                let n = Design.net d nid in
                if not (List.mem (i.id, pin) n.sinks) then add (Inconsistent_conn (i.id, pin))
              end
            end
            else if nid >= 0 then begin
              let n = Design.net d nid in
              match n.driver with
              | Design.Cell_pin (src, sp) when src = i.id && sp = pin -> ()
              | _ -> add (Inconsistent_conn (i.id, pin))
            end)
          i.conns;
        (match Stdcell.Cell.output_pin cell with
         | out_pin ->
           let nid = i.conns.(out_pin) in
           let is_tie =
             match cell.Stdcell.Cell.kind with
             | Stdcell.Cell.Tiehi | Stdcell.Cell.Tielo -> true
             | _ -> false
           in
           (* tie cells may legitimately go sinkless once scan stitching
              reclaims the parked TI pins *)
           if not is_tie then begin
             if nid < 0 then add (Dangling_output i.id)
             else begin
               let n = Design.net d nid in
               if n.sinks = [] && n.out_port < 0 then add (Dangling_output i.id)
             end
           end
         | exception Invalid_argument _ -> ());
        if Design.is_ff i then begin
          if i.domain < 0 || i.domain >= Array.length d.domains then
            add (Ff_without_domain i.id)
          else begin
            (* the clock may be distributed through a buffer tree: walk
               drivers back through buffers to the domain's root net *)
            let rec clock_root nid depth =
              if depth > 64 || nid < 0 then nid
              else
                match (Design.net d nid).driver with
                | Design.Cell_pin (src, _) ->
                  let s = Design.inst d src in
                  (match s.cell.Stdcell.Cell.kind with
                   | Stdcell.Cell.Clkbuf | Stdcell.Cell.Buf | Stdcell.Cell.Inv ->
                     clock_root s.conns.(0) (depth + 1)
                   | _ -> nid)
                | Design.Port_in _ | Design.No_driver -> nid
            in
            match Stdcell.Cell.clock_pin cell with
            | Some ck ->
              if clock_root i.conns.(ck) 0 <> d.domains.(i.domain).clock_net then
                add (Ff_clock_mismatch i.id)
            | None -> add (Ff_clock_mismatch i.id)
          end
        end
      end);
  let ports = Design.input_ports d @ Design.output_ports d in
  List.iter (fun (p : Design.port) -> if p.pnet < 0 then add (Unbound_port p.pid)) ports;
  List.rev !out

exception Check_failed of violation list

(* class tallies make the exception readable without the design at hand;
   the full rendering lives in [report] *)
let summarize vs =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let c = class_name v in
      Hashtbl.replace tally c (1 + Option.value ~default:0 (Hashtbl.find_opt tally c)))
    vs;
  let classes =
    Hashtbl.fold (fun c n acc -> (c, n) :: acc) tally [] |> List.sort compare
  in
  Printf.sprintf "%d violation(s): %s" (List.length vs)
    (String.concat ", " (List.map (fun (c, n) -> Printf.sprintf "%s x%d" c n) classes))

let () =
  Printexc.register_printer (function
    | Check_failed vs -> Some ("Netlist.Check.Check_failed: " ^ summarize vs)
    | _ -> None)

let report_cap = 20

let report (d : Design.t) vs =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let total = List.length vs in
  Format.fprintf ppf "design %s: %d check violations:@." d.design_name total;
  List.iteri
    (fun k v -> if k < report_cap then Format.fprintf ppf "  %a@." (pp_violation d) v)
    vs;
  if total > report_cap then
    Format.fprintf ppf "  ... and %d more@." (total - report_cap);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let assert_clean ?(allow_dangling = false) d =
  let vs = run d in
  let vs =
    if allow_dangling then
      List.filter (function Dangling_output _ -> false | _ -> true) vs
    else vs
  in
  match vs with
  | [] -> ()
  | vs -> raise (Check_failed vs)
