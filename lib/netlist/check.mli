(** Netlist design-rule checks, run after every transformation in tests. *)

type violation =
  | Undriven_net of int          (** net with sinks but no driver *)
  | Floating_input of int * int  (** (instance, pin) input left unconnected *)
  | Dangling_output of int       (** instance output drives nothing *)
  | Unbound_port of int
  | Inconsistent_conn of int * int
      (** instance pin points at a net that does not list it back *)
  | Ff_without_domain of int
  | Ff_clock_mismatch of int
      (** FF clock pin not on its domain's clock net *)

val class_name : violation -> string
(** Stable kebab-case tag for a violation's class, e.g. ["undriven-net"];
    used by {!Flow.Guard} to classify stage errors. *)

val pp_violation : Design.t -> Format.formatter -> violation -> unit

val run : Design.t -> violation list
(** Empty list = clean design. Dangling outputs are reported but tolerated
    by the flow (tie cells and spare logic can legitimately dangle). *)

exception Check_failed of violation list
(** The complete violation list — never truncated — so callers (and
    {!Flow.Guard}, which maps it to a ["check-failed"] stage-error class)
    can report true counts. A registered printer renders per-class
    tallies. *)

val report : Design.t -> violation list -> string
(** Human-readable rendering: the total count, the first 20 violations,
    and an ["... and N more"] line when the list is longer. *)

val assert_clean : ?allow_dangling:bool -> Design.t -> unit
(** Raises {!Check_failed} with every remaining violation. *)
