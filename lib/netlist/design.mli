(** Gate-level netlists.

    A design is a mutable graph of cell instances connected by nets, plus
    top-level ports and clock-domain definitions. Instances and nets are
    identified by dense integer ids so downstream passes (testability, ATPG,
    placement, STA) can key arrays by id. Instances are never deleted:
    design transformations (scan replacement, TPI, buffering) mutate cells
    in place or append new instances, mirroring how ECO flows work. *)

type port_dir =
  | In
  | Out

type driver =
  | No_driver
  | Port_in of int        (** driven by input port [id] *)
  | Cell_pin of int * int (** driven by (instance id, pin index) *)

type instance = {
  id : int;
  mutable iname : string;
  mutable cell : Stdcell.Cell.t;
  mutable conns : int array;  (** pin index -> net id; [-1] = unconnected *)
  mutable domain : int;       (** clock domain for sequential cells; [-1] else *)
}

type net = {
  nid : int;
  mutable nname : string;
  mutable driver : driver;
  mutable sinks : (int * int) list;  (** (instance id, pin index) loads *)
  mutable out_port : int;            (** output port id driven by this net; [-1] *)
}

type port = {
  pid : int;
  pname : string;
  dir : port_dir;
  mutable pnet : int;  (** net bound to this port; [-1] while unbound *)
}

type domain = {
  dom_name : string;
  period_ps : float;       (** target clock period *)
  mutable clock_net : int; (** the clock distribution net *)
}

type t = {
  design_name : string;
  lib : Stdcell.Library.t;
  insts : instance Util.Vec.t;
  nets : net Util.Vec.t;
  ports : port Util.Vec.t;
  mutable domains : domain array;
}

val create : ?lib:Stdcell.Library.t -> string -> t

(** {1 Construction} *)

val add_net : t -> string -> net
val add_port : t -> string -> port_dir -> port
(** Creates the port and a net of the same name bound to it. Input-port nets
    are driven by the port. *)

val add_instance : t -> name:string -> cell:Stdcell.Cell.t -> instance
val add_domain : t -> name:string -> period_ps:float -> clock_net:int -> int
(** Returns the domain index. *)

val connect : t -> inst:int -> pin:int -> net:int -> unit
(** Attach an instance pin to a net, maintaining driver/sink consistency.
    Raises [Invalid_argument] on double-driven nets or already-connected
    pins. *)

val disconnect : t -> inst:int -> pin:int -> unit
val connect_out_port : t -> port:int -> net:int -> unit

(** {1 Access} *)

val num_insts : t -> int
val num_nets : t -> int
val inst : t -> int -> instance
val net : t -> int -> net
val port : t -> int -> port
val iter_insts : t -> (instance -> unit) -> unit
val iter_nets : t -> (net -> unit) -> unit
val find_port : t -> string -> port option

val fanout : t -> int -> int
(** Number of sink pins on a net. *)

val net_of_output : t -> instance -> int
(** Net driven by the instance's output pin, [-1] if none. *)

val is_ff : instance -> bool
val ffs : t -> instance list
(** All sequential instances, in id order. *)

val input_ports : t -> port list
val output_ports : t -> port list

val replace_cell : t -> inst:int -> cell:Stdcell.Cell.t -> pin_map:(int * int) list -> unit
(** [replace_cell t ~inst ~cell ~pin_map] swaps the instance's cell,
    rewiring old pin [o] to new pin [n] for each [(o, n)] in [pin_map];
    unmapped old pins are disconnected, unmapped new pins left open. *)

val fingerprint : t -> string
(** Structural hash of the complete design (instances, cells by name,
    connectivity, ports, domains) as a fixed-width hex string. Physical
    identity never enters the hash: structurally equal designs — e.g. two
    runs of the same deterministic generator — fingerprint equally. Used
    by the stage cache to key cached stage results (DESIGN.md §6.2). *)

val split_net : t -> net:int -> name:string -> net
(** [split_net t ~net ~name] creates a fresh net that takes over every sink
    (and output-port binding) of [net], leaving [net] with its driver only.
    This is the primitive under test point insertion: the inserted cell then
    reads [net] and drives the new net. *)

(** {1 Speculative-edit undo}

    Instances are never deleted by optimization passes; the one sanctioned
    exception is rolling back the {e most recent} edit of a trial-and-revert
    loop ({!Flow.Repair}): the trial cell/net is by construction the newest
    element and must be fully disconnected before removal. Undoing in the
    reverse order of the edit restores the exact pre-edit structure — same
    ids, same sink-list orders, same {!fingerprint}. *)

val unsplit_net : t -> net:int -> fresh:int -> unit
(** Exact inverse of {!split_net}: moves [fresh]'s whole sink list (and any
    output-port binding) back to [net], preserving order. [net] must have no
    sinks of its own and [fresh] no driver — detach any trial cell first.
    Raises [Invalid_argument] otherwise. *)

val remove_last_instance : t -> unit
(** Drops the newest instance; it must be fully disconnected.
    Raises [Invalid_argument] otherwise. *)

val remove_last_net : t -> unit
(** Drops the newest net; it must be driverless, sinkless and unbound.
    Raises [Invalid_argument] otherwise. *)
