(* Deterministic fork-join domain pool on stdlib Domain/Mutex/Condition
   (the switch has no domainslib).

   Determinism contract, relied on by Atpg.Patgen, Sta.Analysis and
   Flow.Experiment: work is split into *fixed* contiguous index ranges
   ([partition]) whose boundaries depend only on (n, slots), results land
   in preallocated arrays by index, and every reduction happens on the
   owner domain in index order. Which domain executes which range never
   influences an observable value. Obs state follows the same rule: at
   every join the workers' local metric registries and span buffers are
   absorbed in ascending slot order (see Obs.Metrics / Obs.Trace). *)

type slot_exn = { se_exn : exn; se_bt : Printexc.raw_backtrace }

type t = {
  size : int;  (* total slots, including the owner's slot 0 *)
  owner : int;  (* Domain.id of the creating domain *)
  mutable workers : unit Domain.t array;  (* length size-1 *)
  m : Mutex.t;
  ready : Condition.t;
  finished : Condition.t;
  mutable job : (int -> unit) option;
  mutable generation : int;
  mutable remaining : int;
  mutable stopping : bool;
  mutable busy : bool;  (* owner-side re-entrance guard *)
  (* per-slot hand-off cells, written by a worker before it decrements
     [remaining] (under the mutex), read by the owner after the join --
     the mutex hand-shake orders the accesses *)
  flushed : (Obs.Metrics.local * Obs.Trace.local) option array;
  failures : slot_exn option array;
}

let size t = t.size

(* fixed contiguous chunking: slot [s] of [slots] gets [q = n / slots]
   indices, the first [n mod slots] slots one extra *)
let partition ~n ~slots ~slot =
  let q = n / slots and r = n mod slots in
  let lo = (slot * q) + min slot r in
  let hi = lo + q + (if slot < r then 1 else 0) in
  (lo, hi)

let worker_loop t slot =
  let seen = ref 0 in
  Mutex.lock t.m;
  let rec loop () =
    if t.stopping then Mutex.unlock t.m
    else if t.generation = !seen then begin
      Condition.wait t.ready t.m;
      loop ()
    end
    else begin
      seen := t.generation;
      let job = t.job in
      Mutex.unlock t.m;
      (match job with
       | Some f ->
         (try f slot
          with e ->
            t.failures.(slot) <- Some { se_exn = e; se_bt = Printexc.get_raw_backtrace () })
       | None -> ());
      (* collect this domain's observability state while still on it *)
      t.flushed.(slot) <- Some (Obs.Metrics.local_flush (), Obs.Trace.local_flush ());
      Mutex.lock t.m;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.finished;
      loop ()
    end
  in
  loop ()

let create ~domains =
  let size = max 1 (min domains 128) in
  let t =
    { size;
      owner = (Domain.self () :> int);
      workers = [||];
      m = Mutex.create ();
      ready = Condition.create ();
      finished = Condition.create ();
      job = None;
      generation = 0;
      remaining = 0;
      stopping = false;
      busy = false;
      flushed = Array.make size None;
      failures = Array.make size None }
  in
  t.workers <- Array.init (size - 1) (fun w -> Domain.spawn (fun () -> worker_loop t (w + 1)));
  t

let shutdown t =
  if (Domain.self () :> int) = t.owner && not t.stopping then begin
    Mutex.lock t.m;
    t.stopping <- true;
    Condition.broadcast t.ready;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* A nested call (from a slot body), a call from a foreign domain, or a
   call on a stopped pool runs every slot inline on the calling domain:
   one level of parallelism, the outermost region wins. Inline execution
   is sequential in slot order, so it is trivially deterministic, and its
   obs updates stay on the calling domain to be flushed by the outer
   join (or to land directly in the global registry on the owner). *)
let inline_run t f =
  for slot = 0 to t.size - 1 do
    f ~slot
  done

let run t f =
  if t.size = 1 || t.busy || t.stopping || (Domain.self () :> int) <> t.owner then
    inline_run t f
  else begin
    t.busy <- true;
    Array.fill t.failures 0 t.size None;
    Mutex.lock t.m;
    t.job <- Some (fun slot -> f ~slot);
    t.generation <- t.generation + 1;
    t.remaining <- t.size - 1;
    Condition.broadcast t.ready;
    Mutex.unlock t.m;
    (* the owner takes slot 0 *)
    (try f ~slot:0
     with e ->
       t.failures.(0) <- Some { se_exn = e; se_bt = Printexc.get_raw_backtrace () });
    Mutex.lock t.m;
    while t.remaining > 0 do
      Condition.wait t.finished t.m
    done;
    t.job <- None;
    Mutex.unlock t.m;
    (* deterministic obs merge, ascending slot order *)
    for slot = 1 to t.size - 1 do
      match t.flushed.(slot) with
      | Some (metrics, spans) ->
        t.flushed.(slot) <- None;
        if not (Obs.Metrics.local_is_empty metrics) then Obs.Metrics.absorb metrics;
        if not (Obs.Trace.local_is_empty spans) then Obs.Trace.absorb ~domain:slot spans
      | None -> ()
    done;
    t.busy <- false;
    (* re-raise the first failure in slot order *)
    Array.iter
      (function
        | Some { se_exn; se_bt } -> Printexc.raise_with_backtrace se_exn se_bt
        | None -> ())
      t.failures
  end

let iter_slots t ~n f =
  if n > 0 then
    run t (fun ~slot ->
        let lo, hi = partition ~n ~slots:t.size ~slot in
        if lo < hi then f ~slot ~lo ~hi)

let parallel_map_with t ~state ~n f =
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    iter_slots t ~n (fun ~slot ~lo ~hi ->
        let s = state ~slot in
        for i = lo to hi - 1 do
          out.(i) <- Some (f s i)
        done);
    Array.map
      (function Some v -> v | None -> invalid_arg "Par.Pool.parallel_map: missing result")
      out
  end

let parallel_map t ~n f = parallel_map_with t ~state:(fun ~slot:_ -> ()) ~n (fun () i -> f i)

let map_reduce_with t ~state ~n ~map ~merge ~init =
  let parts = parallel_map_with t ~state ~n map in
  Array.fold_left merge init parts

let map_reduce t ~n ~map ~merge ~init =
  map_reduce_with t ~state:(fun ~slot:_ -> ()) ~n ~map:(fun () i -> map i) ~merge ~init
