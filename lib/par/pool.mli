(** Deterministic fork-join domain pool.

    A reusable pool of [domains - 1] worker domains (plus the creating
    domain, which takes slot 0 of every region) built on stdlib
    [Domain]/[Mutex]/[Condition]. Designed for the flow's hot layers —
    per-fault PPSFP fan-out, level-parallel STA, sweep fan-out — under a
    hard determinism contract:

    {ul
    {- {b Fixed chunking}: index ranges are split by {!partition} into
       contiguous blocks whose boundaries depend only on [(n, slots)],
       never on timing.}
    {- {b Ordered reduction}: results land in arrays by index; folds run
       on the owner domain in index order ({!map_reduce}).}
    {- {b Scoped per-domain state}: {!parallel_map_with} materialises one
       [state ~slot] per participating slot per region (a simulator
       replica, a scratch buffer), so domains never share mutable
       kernels.}
    {- {b Observability}: at every join the workers' local
       [Obs.Metrics] registries and [Obs.Trace] buffers are absorbed in
       ascending slot order, keeping [--metrics] output identical across
       domain counts and stitching worker spans into the trace as
       separate tracks.}}

    Nesting: a call into the pool from inside a region (or from any
    domain other than the creator) degrades to inline sequential
    execution of all slots — one level of parallelism, the outermost
    region wins, results unchanged. A slot body that raises makes the
    whole region re-raise the first failure in slot order after all
    slots have finished. *)

type t

val create : domains:int -> t
(** Spawn a pool of [max 1 (min domains 128)] total slots. [domains = 1]
    creates a degenerate pool that runs everything inline — the [-j 1]
    baseline — with no worker domains at all. *)

val size : t -> int
(** Total slots, including the owner's slot 0. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; only the creating
    domain may call it. After shutdown the pool still works, inline. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val partition : n:int -> slots:int -> slot:int -> int * int
(** [partition ~n ~slots ~slot] is the fixed contiguous [(lo, hi)] range
    of slot [slot]: [n / slots] indices each, the first [n mod slots]
    slots one extra. Pure — exported so tests and callers can reason
    about chunk boundaries. *)

val run : t -> (slot:int -> unit) -> unit
(** Fork-join: the body runs once per slot, slot 0 on the calling
    domain. Blocks until every slot finishes. *)

val iter_slots : t -> n:int -> (slot:int -> lo:int -> hi:int -> unit) -> unit
(** {!run}, with each slot handed its {!partition} range of [0..n-1];
    slots with an empty range are not called. The zero-allocation
    primitive for filling preallocated result arrays. *)

val parallel_map : t -> n:int -> (int -> 'a) -> 'a array
(** Deterministic indexed map: element [i] of the result is [f i],
    whatever the domain count. *)

val parallel_map_with : t -> state:(slot:int -> 's) -> n:int -> ('s -> int -> 'a) -> 'a array
(** Like {!parallel_map} with scoped per-domain state: [state ~slot] is
    created once per participating slot per call, on that slot's domain,
    and passed to every [f] invocation the slot runs. *)

val map_reduce : t -> n:int -> map:(int -> 'a) -> merge:('acc -> 'a -> 'acc) -> init:'acc -> 'acc
(** Parallel map, then a sequential fold over the results in index order
    on the calling domain — the ordered reduction of the determinism
    contract. *)

val map_reduce_with :
  t ->
  state:(slot:int -> 's) ->
  n:int ->
  map:('s -> int -> 'a) ->
  merge:('acc -> 'a -> 'acc) ->
  init:'acc ->
  'acc
