(** JSONL wire protocol of the [tpi_flow serve] daemon.

    One request per line, one JSON event per line back; a connection can
    pipeline any number of requests and receives each job's events tagged
    with the job's client-chosen [id]. The parser is the daemon's first
    line of defence: every malformed, oversized, non-UTF-8 or
    absurdly-nested line becomes a typed ["bad-request"] error — no input
    can raise past {!parse_request}.

    Requests:
    {v
    {"op":"ping"}
    {"op":"stats"}
    {"op":"cancel","id":"job-1"}
    {"op":"submit","id":"job-1","circuit":"s38417","scale":0.1,
     "levels":[0,1,2],"atpg":false,"tables":[2,3],"priority":3,
     "deadline_ms":60000}
    v}

    Events ([event] field): [accepted], [rejected], [started], [stage],
    [retrying], [metrics], [done], [error], [pong], [stats]. A [done]
    event's [output] field is byte-identical to what the one-shot CLI
    prints for the same job spec (DESIGN.md §6.3). *)

val max_line_bytes : int
(** Longest admissible request line (1 MiB); longer lines are rejected
    without being buffered in full. *)

val max_depth : int
(** Deepest admissible JSON nesting (32). *)

type job_spec = {
  circuit : string;
  scale : float option;
  tp_levels : int list;
  with_atpg : bool;
  repair : bool;
      (** run the step-7 {!Flow.Repair} stage per level; table 3 output
          then also carries the repaired-vs-unrepaired comparison *)
  tables : int list;
  policy : Flow.Guard.policy;
  fail_attempts : int;
      (** chaos hook: fail the job's first [n] attempts with an injected
          transient stage fault, to exercise retry/backoff end to end *)
  sleep_ms : int;
      (** chaos hook: hold the executor for this long (cooperatively
          cancellable) before running, to make queueing observable *)
}

val default_spec : job_spec
(** Matches the one-shot CLI defaults: s38417, levels 0-5, no ATPG,
    tables 2+3, fail-fast. *)

type request =
  | Ping
  | Stats
  | Metrics_req
      (** [{"op":"metrics"}]: live Prometheus text exposition of the
          daemon's registry, answered from a service thread even while
          a job is running *)
  | Cancel_job of { id : string }
  | Submit of {
      id : string;
      priority : int;           (** 0 (default) .. 9 (most urgent) *)
      deadline_ms : float option;
      spec : job_spec;
    }

val parse_request : string -> (request, string) result
(** [Error detail] is the ["bad-request"] detail string; it never raises,
    whatever the input bytes. *)

val is_valid_utf8 : string -> bool
(** Strict UTF-8 validation (rejects overlongs, surrogates, > U+10FFFF);
    exposed for the fuzz tests. *)

(** {2 Response events} *)

val to_line : Obs.Json.t -> string
(** Compact JSON plus the trailing newline. *)

val accepted : id:string -> queue_depth:int -> Obs.Json.t
val rejected : id:string option -> cls:string -> detail:string -> Obs.Json.t
val started : id:string -> attempt:int -> Obs.Json.t
val stage_event :
  id:string -> level:int -> stage:string -> status:string -> ms:float -> Obs.Json.t
(** [level] is the test-point insertion percentage the stage ran under. *)

val retrying : id:string -> attempt:int -> cls:string -> backoff_ms:float -> Obs.Json.t
val metrics_event : id:string -> counters:(string * int) list -> Obs.Json.t
val done_event : id:string -> attempts:int -> elapsed_ms:float -> output:string -> Obs.Json.t
val error_event : id:string -> cls:string -> detail:string -> Obs.Json.t
val pong : unit -> Obs.Json.t

val stats_event :
  counters:(string * int) list -> queue_depth:int -> draining:bool -> Obs.Json.t

val prometheus_event : text:string -> Obs.Json.t
(** The [metrics] op's answer: the full exposition document as one JSON
    string field (newlines escaped by the JSON emitter, so the event
    still fits the one-line-per-event framing). *)

(** {2 Event accessors (client side)} *)

val event_of : Obs.Json.t -> string
(** The [event] field; [""] when absent. *)

val id_of : Obs.Json.t -> string option
val str_field : string -> Obs.Json.t -> string option
val int_field : string -> Obs.Json.t -> int option
val float_field : string -> Obs.Json.t -> float option
