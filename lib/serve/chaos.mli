(** Execution harness for the service-level fault matrix
    ({!Flow.Inject.service_all}).

    Each scenario boots a real daemon on a scratch Unix socket, injects
    one fault class through the socket — a malformed request line, an
    admission burst past a capacity-1 queue, a client that vanishes with
    a job in flight — and asserts the daemon (a) answers with the typed
    error class the matrix expects and (b) still serves a fresh
    connection afterwards. Deterministic: the scenarios steer timing with
    the [sleep_ms] chaos hook, never with races. *)

val run_one : ?dir:string -> Flow.Inject.service_fault -> Flow.Inject.service_outcome
(** [dir] hosts the scratch socket (default [Filename.get_temp_dir_name ()]). *)

val selftest : ?dir:string -> unit -> Flow.Inject.service_outcome list
(** {!run_one} over {!Flow.Inject.service_all}, matrix order. *)

val retry_recovers : ?dir:string -> unit -> bool
(** Chaos demo for the retry path: a job whose first attempt carries an
    injected transient stage fault ([fail_attempts=1]) must complete on
    attempt 2 after one [retrying] event, with output identical to an
    untampered job's. *)
