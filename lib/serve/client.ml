module J = Obs.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t =
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
  (try close_in_noerr t.ic with _ -> ());
  try close_out_noerr t.oc with _ -> ()

let request t j =
  output_string t.oc (Protocol.to_line j);
  flush t.oc

let send_raw t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let rec next_event t =
  match input_line t.ic with
  | exception (End_of_file | Sys_error _) -> None
  | line ->
    (match J.parse line with Ok j -> Some j | Error _ -> next_event t)

let ping t =
  match request t (J.Obj [ ("op", J.String "ping") ]) with
  | exception (Sys_error _ | Unix.Unix_error _) -> false
  | () ->
    (match next_event t with
     | Some j -> Protocol.event_of j = "pong"
     | None -> false)

let stats t =
  request t (J.Obj [ ("op", J.String "stats") ]);
  let rec wait () =
    match next_event t with
    | None -> None
    | Some j when Protocol.event_of j = "stats" -> Some j
    | Some _ -> wait ()
  in
  wait ()

let prometheus t =
  match request t (J.Obj [ ("op", J.String "metrics") ]) with
  | exception (Sys_error _ | Unix.Unix_error _) -> None
  | () ->
    let rec wait () =
      match next_event t with
      | None -> None
      | Some j when Protocol.event_of j = "prometheus" -> Protocol.str_field "text" j
      | Some _ -> wait ()
    in
    wait ()

let submit_line ~id ?priority ?deadline_ms ?circuit ?scale ?levels ?atpg ?repair ?tables
    ?policy
    ?fail_attempts ?sleep_ms () =
  let opt f name v = Option.map (fun v -> (name, f v)) v in
  let fields =
    List.filter_map Fun.id
      [ Some ("op", J.String "submit");
        Some ("id", J.String id);
        opt (fun i -> J.Int i) "priority" priority;
        opt (fun f -> J.Float f) "deadline_ms" deadline_ms;
        opt (fun s -> J.String s) "circuit" circuit;
        opt (fun f -> J.Float f) "scale" scale;
        opt (fun ls -> J.List (List.map (fun l -> J.Int l) ls)) "levels" levels;
        opt (fun b -> J.Bool b) "atpg" atpg;
        opt (fun b -> J.Bool b) "repair" repair;
        opt (fun ts -> J.List (List.map (fun t -> J.Int t) ts)) "tables" tables;
        opt (fun s -> J.String s) "policy" policy;
        opt (fun i -> J.Int i) "fail_attempts" fail_attempts;
        opt (fun i -> J.Int i) "sleep_ms" sleep_ms ]
  in
  J.Obj fields

type outcome = {
  events : J.t list;
  output : string option;
  error : (string * string) option;
  attempts : int;
  retries : int;
  rejected : bool;
}

let run_job t req =
  let id = Option.value ~default:"" (Protocol.str_field "id" req) in
  request t req;
  let rec wait acc retries =
    match next_event t with
    | None ->
      { events = List.rev acc; output = None;
        error = Some ("io-error", "connection closed before a terminal event");
        attempts = 0; retries; rejected = false }
    | Some j ->
      (* a [rejected] for a bad request may carry no id; everything else
         must match ours (other jobs can share the connection) *)
      let mine =
        match Protocol.id_of j with Some i -> i = id | None -> true
      in
      if not mine then wait acc retries
      else begin
        let acc = j :: acc in
        match Protocol.event_of j with
        | "done" ->
          { events = List.rev acc;
            output = Protocol.str_field "output" j;
            error = None;
            attempts = Option.value ~default:1 (Protocol.int_field "attempts" j);
            retries; rejected = false }
        | "error" ->
          { events = List.rev acc; output = None;
            error =
              Some
                (Option.value ~default:"" (Protocol.str_field "class" j),
                 Option.value ~default:"" (Protocol.str_field "detail" j));
            attempts = 0; retries; rejected = false }
        | "rejected" ->
          { events = List.rev acc; output = None;
            error =
              Some
                (Option.value ~default:"" (Protocol.str_field "class" j),
                 Option.value ~default:"" (Protocol.str_field "detail" j));
            attempts = 0; retries; rejected = true }
        | "retrying" -> wait acc (retries + 1)
        | _ -> wait acc retries
      end
  in
  wait [] 0
