type policy = {
  max_retries : int;
  base_backoff_ms : float;
  multiplier : float;
  max_backoff_ms : float;
}

(* the service contract's retry table (DESIGN.md §6.3): transient faults
   get a real budget, resource exhaustion one cautious retry after a
   longer pause; everything else fails the job immediately *)
let table =
  [ ("transient",
     { max_retries = 4; base_backoff_ms = 25.0; multiplier = 2.0; max_backoff_ms = 2000.0 });
    ("out-of-memory",
     { max_retries = 1; base_backoff_ms = 250.0; multiplier = 2.0; max_backoff_ms = 2000.0 })
  ]

let policy_for cls = List.assoc_opt cls table

let retryable e =
  if Flow.Guard.is_cancelled e then None
  else policy_for (Flow.Guard.error_class e)

let backoff_ms p ~attempt =
  let k = max 0 (attempt - 1) in
  Float.min p.max_backoff_ms (p.base_backoff_ms *. (p.multiplier ** float_of_int k))
