(** The [tpi_flow serve] daemon: flow-as-a-service over a Unix socket.

    Robustness is the design center (DESIGN.md §6.3):

    {ul
    {- {b Admission control}: jobs land in a bounded priority queue
       ({!Jobq}); a full queue answers with a typed ["backpressure"]
       rejection immediately — the daemon never blocks a reader and never
       buffers unbounded work.}
    {- {b Deadlines and cancellation}: every job carries a
       {!Flow.Cancel} token (client [cancel] op, [deadline_ms], or client
       death all fire it); the guarded flow stops at the next stage
       boundary and the job reports a typed ["cancelled"] error.}
    {- {b Retry with backoff}: stage errors whose
       {!Flow.Guard.error_class} has a {!Retry} policy re-run the job
       after exponential backoff, up to the class budget — an injected
       transient fault recovers without restarting the daemon.}
    {- {b Disconnect detection}: EOF or a failed write marks the
       connection dead, cancels its running job and removes its queued
       jobs, reclaiming their slots.}
    {- {b Graceful drain}: SIGTERM/SIGINT (or {!drain}) stop admission,
       finish every accepted job, flush metrics and exit 0.}}

    Execution model: connection readers and the acceptor are threads; the
    {e executor} is a single thread that runs accepted jobs one at a time
    — in priority order — against the shared {!Par.Pool} (intra-job
    parallelism) and the shared {!Cache.Store}. Serializing job compute is
    what keeps served results byte-identical to the one-shot CLI at any
    [-j], warm or cold cache: determinism is part of the service contract,
    concurrency lives in admission, streaming and the pool. *)

type config = {
  socket_path : string;
  cache_dir : string option;   (** shared stage cache ([--cache DIR]) *)
  jobs : int;                  (** pool domains for the kernels ([-j N]) *)
  queue_capacity : int;        (** bounded queue size (default 64) *)
  metrics_file : string option;
      (** JSON metrics snapshot, re-published atomically about once a
          second from the accept loop (and finally at drain) — a crash
          or SIGKILL loses at most the last interval *)
  prom_file : string option;
      (** Prometheus text exposition, same atomic once-a-second cadence
          — point a node_exporter textfile collector (or a test) at it *)
  verbose : bool;
  lint : bool;
      (** pre-flight every job's generated design through the lint gate
          ({!Flow.Pipeline.preflight}); a rejected design surfaces as a
          degraded level with error class ["lint-failed"] *)
}

val default_config : socket_path:string -> config

type t

val start : config -> t
(** Bind the socket (replacing a stale file), spawn acceptor and
    executor. Raises [Unix.Unix_error] if the socket cannot be bound. *)

val drain : t -> unit
(** Request graceful drain: stop admitting, finish accepted jobs, then
    let {!wait} return. Idempotent; safe from signal handlers (it only
    sets a flag). *)

val wait : t -> int
(** Block until a drain completes; returns the exit code (0 on a clean
    drain). Joins every thread, closes every connection, shuts the pool
    down and writes [metrics_file] if configured. *)

val run : config -> int
(** {!start}, install SIGTERM/SIGINT handlers that {!drain}, then
    {!wait} — the CLI entry point. *)
