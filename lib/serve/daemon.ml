module Guard = Flow.Guard
module Cancel = Flow.Cancel
module Experiment = Flow.Experiment
module Report = Flow.Report
module J = Obs.Json

type config = {
  socket_path : string;
  cache_dir : string option;
  jobs : int;
  queue_capacity : int;
  metrics_file : string option;
  prom_file : string option;
  verbose : bool;
  lint : bool;
}

let default_config ~socket_path =
  { socket_path; cache_dir = None; jobs = 1; queue_capacity = 64;
    metrics_file = None; prom_file = None; verbose = false; lint = false }

(* ---- service metrics ---- *)

let m_submitted = Obs.Metrics.counter "serve.jobs_submitted"
let m_completed = Obs.Metrics.counter "serve.jobs_completed"
let m_failed = Obs.Metrics.counter "serve.jobs_failed"
let m_cancelled = Obs.Metrics.counter "serve.jobs_cancelled"
let m_rejected = Obs.Metrics.counter "serve.jobs_rejected"
let m_bad_requests = Obs.Metrics.counter "serve.bad_requests"
let m_retries = Obs.Metrics.counter "serve.retries"
let m_disconnects = Obs.Metrics.counter "serve.disconnects"
let m_slots_reclaimed = Obs.Metrics.counter "serve.slots_reclaimed"
let g_queue_depth = Obs.Metrics.gauge "serve.queue_depth"
let h_job_ms = Obs.Metrics.histogram "serve.job_ms"

(* service gauges written via [set_direct] (see Obs.Metrics): readers,
   the acceptor and the executor are systhreads of one domain, so a
   scoped write from a service thread would land in the executor's open
   capture and poison cache replay *)
let g_uptime = Obs.Metrics.gauge "serve.uptime_s"
let g_inflight = Obs.Metrics.gauge "serve.jobs_inflight"

(* per-stage latency histograms, interned at module load so the hot
   [on_stage] path and the live exposition never race a Hashtbl resize *)
let stage_hists =
  List.map
    (fun s ->
      let name = Guard.stage_name s in
      (name, Obs.Metrics.histogram ("serve.stage_ms." ^ name)))
    Guard.all_stages

let stat_counters =
  [ ("serve.jobs_submitted", m_submitted); ("serve.jobs_completed", m_completed);
    ("serve.jobs_failed", m_failed); ("serve.jobs_cancelled", m_cancelled);
    ("serve.jobs_rejected", m_rejected); ("serve.bad_requests", m_bad_requests);
    ("serve.retries", m_retries); ("serve.disconnects", m_disconnects);
    ("serve.slots_reclaimed", m_slots_reclaimed) ]

(* ---- connections and jobs ---- *)

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_in : in_channel;
  c_out : out_channel;
  c_wmutex : Mutex.t;          (* serializes writes (reader + executor) *)
  c_alive : bool Atomic.t;
  mutable c_jobs : job list;   (* outstanding jobs, under t.mutex *)
}

and job = {
  j_id : string;
  j_conn : conn;
  j_spec : Protocol.job_spec;
  j_cancel : Cancel.t;
  j_priority : int;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  queue : job Jobq.t;
  drain_req : bool Atomic.t;
  signalled : bool Atomic.t;   (* drain came from SIGTERM/SIGINT *)
  started_us : float;
  pool : Par.Pool.t option;
  cache : Cache.Store.t option;
  mutex : Mutex.t;             (* guards conns/readers/c_jobs *)
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable acceptor : Thread.t option;
  mutable executor : Thread.t option;
}

(* refresh the self-describing gauges, then (optionally) republish the
   snapshot files atomically — called about once a second from the
   accept loop and once more at drain, so a crash or SIGKILL loses at
   most the last interval instead of the whole run *)
let flush_telemetry t =
  Obs.Metrics.set_direct g_uptime ((Obs.Clock.now_us () -. t.started_us) /. 1e6);
  (match t.cfg.metrics_file with
   | Some path -> (try Obs.Export.write_metrics_json path with Sys_error _ -> ())
   | None -> ());
  match t.cfg.prom_file with
  | Some path -> (try Obs.Export.write_prom path with Sys_error _ -> ())
  | None -> ()

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* a write to a vanished client must never kill the daemon (SIGPIPE is
   ignored process-wide by the CLI; here we additionally catch the
   resulting EPIPE/Sys_error) -- it just marks the connection dead *)
let send_raw conn json =
  if Atomic.get conn.c_alive then begin
    Mutex.lock conn.c_wmutex;
    let ok =
      try
        output_string conn.c_out (Protocol.to_line json);
        flush conn.c_out;
        true
      with Sys_error _ | Unix.Unix_error _ -> false
    in
    Mutex.unlock conn.c_wmutex;
    ok
  end
  else false

(* disconnect: cancel the connection's running job(s), pull its queued
   jobs back out of the queue (slot reclamation) and close the fd. The
   CAS makes this idempotent whichever side (reader EOF, failed write,
   drain teardown) notices first. *)
let disconnect t conn ~count_disconnect =
  if Atomic.compare_and_set conn.c_alive true false then begin
    if count_disconnect then begin
      Obs.Metrics.incr m_disconnects;
      Obs.Log.info "conn %d disconnected" conn.c_id
    end;
    let jobs = with_lock t (fun () -> conn.c_jobs) in
    List.iter (fun j -> Cancel.cancel j.j_cancel ~reason:"client-disconnect") jobs;
    let reclaimed = Jobq.scan_remove t.queue (fun j -> j.j_conn.c_id = conn.c_id) in
    List.iter
      (fun _ ->
        Obs.Metrics.incr m_slots_reclaimed;
        Obs.Metrics.incr m_cancelled)
      reclaimed;
    Obs.Metrics.set g_queue_depth (float_of_int (Jobq.length t.queue));
    with_lock t (fun () ->
        conn.c_jobs <- [];
        t.conns <- List.filter (fun c -> c.c_id <> conn.c_id) t.conns);
    (try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL with _ -> ());
    (try close_in_noerr conn.c_in with _ -> ());
    try close_out_noerr conn.c_out with _ -> ()
  end

let send t conn json =
  if not (send_raw conn json) && Atomic.get conn.c_alive then
    disconnect t conn ~count_disconnect:true

let remove_job t job =
  with_lock t (fun () ->
      job.j_conn.c_jobs <- List.filter (fun j -> j != job) job.j_conn.c_jobs)

(* ---- bounded line reader ----
   input_line would buffer a hostile line whole; this caps the buffer at
   the protocol limit and discards the overflow, so an oversized line
   costs O(limit) memory and comes back as a typed rejection. *)

type read_result = Line of string | Too_long | Eof

let read_line_bounded ic =
  let buf = Buffer.create 256 in
  let rec skip () = match input_char ic with '\n' -> () | _ -> skip () in
  let rec go () =
    match input_char ic with
    | '\n' -> Line (Buffer.contents buf)
    | c ->
      if Buffer.length buf > Protocol.max_line_bytes then begin
        (try skip () with End_of_file -> ());
        Too_long
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    | exception End_of_file ->
      if Buffer.length buf = 0 then Eof else Line (Buffer.contents buf)
  in
  try go () with Sys_error _ | Unix.Unix_error _ -> Eof

(* ---- request handling (reader threads) ---- *)

let counter_values () = List.map (fun (name, c) -> (name, Obs.Metrics.value c)) stat_counters

let handle_submit t conn ~id ~priority ~deadline_ms ~(spec : Protocol.job_spec) =
  if Atomic.get t.drain_req then begin
    Obs.Metrics.incr m_rejected;
    send t conn
      (Protocol.rejected ~id:(Some id) ~cls:"draining"
         ~detail:"daemon is draining; not admitting new jobs")
  end
  else
    match Experiment.spec_for ?scale:spec.Protocol.scale spec.Protocol.circuit with
    | exception Invalid_argument msg ->
      Obs.Metrics.incr m_bad_requests;
      send t conn (Protocol.rejected ~id:(Some id) ~cls:"bad-request" ~detail:msg)
    | _ ->
      let job =
        { j_id = id; j_conn = conn; j_spec = spec;
          j_cancel = Cancel.create ?deadline_ms (); j_priority = priority }
      in
      (match Jobq.push t.queue ~priority job with
       | Ok depth ->
         with_lock t (fun () -> conn.c_jobs <- job :: conn.c_jobs);
         Obs.Metrics.incr m_submitted;
         Obs.Metrics.set g_queue_depth (float_of_int depth);
         Obs.Log.info ~job:id "accepted %s (priority %d, depth %d)"
           spec.Protocol.circuit priority depth;
         send t conn (Protocol.accepted ~id ~queue_depth:depth)
       | Error (Jobq.Full { depth; capacity }) ->
         Obs.Metrics.incr m_rejected;
         Obs.Log.warn ~job:id "rejected: queue full (%d/%d)" depth capacity;
         send t conn
           (Protocol.rejected ~id:(Some id) ~cls:"backpressure"
              ~detail:
                (Printf.sprintf "queue full: %d jobs queued, capacity %d" depth capacity))
       | Error Jobq.Closed ->
         Obs.Metrics.incr m_rejected;
         send t conn
           (Protocol.rejected ~id:(Some id) ~cls:"draining"
              ~detail:"daemon is draining; not admitting new jobs"))

let handle_cancel t conn ~id =
  match with_lock t (fun () -> List.find_opt (fun j -> j.j_id = id) conn.c_jobs) with
  | None ->
    send t conn
      (Protocol.rejected ~id:(Some id) ~cls:"bad-request" ~detail:("unknown job id " ^ id))
  | Some job ->
    Cancel.cancel job.j_cancel ~reason:"client-cancel";
    (* if it never started, reclaim its slot and report right away; a
       running job reports when it stops at the next stage boundary *)
    (match Jobq.scan_remove t.queue (fun j -> j == job) with
     | [] -> ()
     | _ :: _ ->
       remove_job t job;
       Obs.Metrics.incr m_cancelled;
       Obs.Metrics.set g_queue_depth (float_of_int (Jobq.length t.queue));
       send t conn
         (Protocol.error_event ~id ~cls:"cancelled" ~detail:"cancelled: client-cancel"))

let handle_line t conn line =
  match Protocol.parse_request line with
  | Error detail ->
    Obs.Metrics.incr m_bad_requests;
    Obs.Log.warn "bad request from conn %d: %s" conn.c_id detail;
    send t conn (Protocol.rejected ~id:None ~cls:"bad-request" ~detail)
  | Ok Protocol.Ping -> send t conn (Protocol.pong ())
  | Ok Protocol.Stats ->
    send t conn
      (Protocol.stats_event ~counters:(counter_values ())
         ~queue_depth:(Jobq.length t.queue) ~draining:(Atomic.get t.drain_req))
  | Ok Protocol.Metrics_req ->
    (* answered on the reader thread: live exposition works while the
       executor is mid-job, and rendering only reads the global registry *)
    Obs.Metrics.set_direct g_uptime ((Obs.Clock.now_us () -. t.started_us) /. 1e6);
    send t conn (Protocol.prometheus_event ~text:(Obs.Export.prometheus ()))
  | Ok (Protocol.Cancel_job { id }) -> handle_cancel t conn ~id
  | Ok (Protocol.Submit { id; priority; deadline_ms; spec }) ->
    handle_submit t conn ~id ~priority ~deadline_ms ~spec

let reader t conn =
  let rec loop () =
    if Atomic.get conn.c_alive then begin
      match read_line_bounded conn.c_in with
      | Line "" -> loop () (* keepalive newline *)
      | Line line ->
        handle_line t conn line;
        loop ()
      | Too_long ->
        Obs.Metrics.incr m_bad_requests;
        send t conn
          (Protocol.rejected ~id:None ~cls:"bad-request"
             ~detail:
               (Printf.sprintf "line too long: exceeds the %d-byte limit"
                  Protocol.max_line_bytes));
        loop ()
      | Eof -> disconnect t conn ~count_disconnect:true
    end
  in
  try loop () with _ -> disconnect t conn ~count_disconnect:true

(* ---- job execution (the single executor thread) ---- *)

(* sleep in short, cancel-aware steps; true = slept through *)
let cancellable_sleep cancel ms =
  let until = Obs.Clock.now_us () +. (float_of_int ms *. 1000.0) in
  let rec nap () =
    if Cancel.state cancel <> None then false
    else if Obs.Clock.now_us () >= until then true
    else begin
      Thread.delay 0.01;
      nap ()
    end
  in
  ms <= 0 || nap ()

let status_string : Guard.stage_status -> string = function
  | Guard.Completed _ -> "ok"
  | Guard.Failed _ -> "failed"
  | Guard.Skipped -> "skipped"

let status_ms : Guard.stage_status -> float = function
  | Guard.Completed ms | Guard.Failed ms -> ms
  | Guard.Skipped -> 0.0

let counters_snapshot () =
  match Obs.Metrics.snapshot () with
  | J.Obj fields ->
    (match List.assoc_opt "counters" fields with
     | Some (J.Obj cs) ->
       List.filter_map (function (k, J.Int v) -> Some (k, v) | _ -> None) cs
     | _ -> [])
  | _ -> []

let counters_delta before after =
  List.filter_map
    (fun (k, v1) ->
      let v0 = Option.value ~default:0 (List.assoc_opt k before) in
      if v1 <> v0 then Some (k, v1 - v0) else None)
    after

(* one guarded sweep, mirroring the CLI's loop exactly (early stop under
   fail-fast) so a [done] event's output is byte-identical to the one-shot
   `tpi_flow` stdout for the same spec *)
let run_levels t (job : job) spec ~tamper =
  let s = job.j_spec in
  let rec loop acc = function
    | [] -> List.rev acc
    | tp_pct :: rest ->
      let on_stage stage status =
        (match status with
         | Guard.Completed ms | Guard.Failed ms ->
           (match List.assoc_opt (Guard.stage_name stage) stage_hists with
            | Some h -> Obs.Metrics.observe h ms
            | None -> ())
         | Guard.Skipped -> ());
        send t job.j_conn
          (Protocol.stage_event ~id:job.j_id ~level:tp_pct ~stage:(Guard.stage_name stage)
             ~status:(status_string status) ~ms:(status_ms status))
      in
      let g =
        Experiment.run_one_guarded ?pool:t.pool ?cache:t.cache ~policy:s.Protocol.policy
          ?tamper ~cancel:job.j_cancel ~on_stage ~lint:t.cfg.lint
          ~repair:s.Protocol.repair ~with_atpg:s.Protocol.with_atpg spec ~tp_pct
      in
      let failed = g.Experiment.g_report.Guard.result = None in
      if failed && s.Protocol.policy = Guard.Fail_fast then List.rev (g :: acc)
      else loop (g :: acc) rest
  in
  loop [] s.Protocol.tp_levels

let render_output (spec : Protocol.job_spec) grows =
  let buf = Buffer.create 1024 in
  let rows = Experiment.completed_rows grows in
  if rows <> [] then begin
    if List.mem 1 spec.Protocol.tables && spec.Protocol.with_atpg then
      Buffer.add_string buf (Report.table1 rows);
    if List.mem 2 spec.Protocol.tables then Buffer.add_string buf (Report.table2 rows);
    if List.mem 3 spec.Protocol.tables then begin
      Buffer.add_string buf (Report.table3 rows);
      if spec.Protocol.repair then Buffer.add_string buf (Report.table3_repaired rows)
    end
  end;
  Buffer.add_string buf (Report.guarded_summary grows);
  Buffer.contents buf

let first_error_matching grows pred =
  List.find_map
    (fun g ->
      match g.Experiment.g_report.Guard.error with
      | Some e when pred e -> Some e
      | _ -> None)
    grows

let finish_cancelled t job ~detail =
  Obs.Metrics.incr m_cancelled;
  Obs.Log.info ~job:job.j_id "cancelled: %s" detail;
  send t job.j_conn (Protocol.error_event ~id:job.j_id ~cls:"cancelled" ~detail)

let cancel_detail cancel =
  "cancelled: " ^ Option.value ~default:"cancelled" (Cancel.state cancel)

(* injected transient stage fault for the chaos matrix / retry proof; a
   tamper hook also makes the guarded run bypass the shared cache, so an
   injected failure can never poison entries other tenants would share *)
let inject_transient ~attempt:_ stage _ =
  if stage = Guard.Extract then
    raise (Guard.Transient "injected service fault (fail_attempts)")

let execute t (job : job) =
  let t0 = Obs.Clock.now_us () in
  match Cancel.state job.j_cancel with
  | Some _ -> finish_cancelled t job ~detail:(cancel_detail job.j_cancel)
  | None ->
    if not (cancellable_sleep job.j_cancel job.j_spec.Protocol.sleep_ms) then
      finish_cancelled t job ~detail:(cancel_detail job.j_cancel)
    else begin
      let spec =
        Experiment.spec_for ?scale:job.j_spec.Protocol.scale job.j_spec.Protocol.circuit
      in
      let before = counters_snapshot () in
      let rec attempt a =
        Obs.Log.info ~job:job.j_id "started %s (attempt %d)"
          job.j_spec.Protocol.circuit (a + 1);
        send t job.j_conn (Protocol.started ~id:job.j_id ~attempt:(a + 1));
        let tamper =
          if job.j_spec.Protocol.fail_attempts > a then Some inject_transient else None
        in
        let grows = run_levels t job spec ~tamper in
        match first_error_matching grows Guard.is_cancelled with
        | Some e -> finish_cancelled t job ~detail:e.Guard.detail
        | None ->
          let retry =
            List.find_map
              (fun g ->
                match g.Experiment.g_report.Guard.error with
                | Some e ->
                  Option.map (fun p -> (e, p)) (Retry.retryable e)
                | None -> None)
              grows
          in
          (match retry with
           | Some (e, policy) when a < policy.Retry.max_retries ->
             let backoff = Retry.backoff_ms policy ~attempt:(a + 1) in
             Obs.Metrics.incr m_retries;
             Obs.Log.warn ~job:job.j_id "retrying after %s (attempt %d, backoff %.0f ms)"
               (Guard.error_class e) (a + 1) backoff;
             send t job.j_conn
               (Protocol.retrying ~id:job.j_id ~attempt:(a + 1)
                  ~cls:(Guard.error_class e) ~backoff_ms:backoff);
             if cancellable_sleep job.j_cancel (int_of_float backoff) then attempt (a + 1)
             else finish_cancelled t job ~detail:(cancel_detail job.j_cancel)
           | _ ->
             let degraded = Experiment.degraded_rows grows in
             let fail_fast_error =
               if degraded <> [] && job.j_spec.Protocol.policy = Guard.Fail_fast then
                 first_error_matching grows (fun _ -> true)
               else None
             in
             (match fail_fast_error with
              | Some e ->
                Obs.Metrics.incr m_failed;
                Obs.Log.error ~job:job.j_id "failed at %s: %s"
                  (Guard.stage_name e.Guard.stage) e.Guard.detail;
                (* guard already dumped on the terminal stage fault; this
                   one adds the job context (retries exhausted included) *)
                ignore
                  (Obs.Recorder.dump
                     ~reason:
                       (Printf.sprintf "job-failed: %s: %s" job.j_id
                          (Guard.error_class e)));
                send t job.j_conn
                  (Protocol.error_event ~id:job.j_id ~cls:(Guard.error_class e)
                     ~detail:e.Guard.detail)
              | None ->
                (* degrade/recover semantics match the CLI: remaining
                   failures become DEGRADED summary lines, not job errors *)
                let elapsed = (Obs.Clock.now_us () -. t0) /. 1000.0 in
                Obs.Metrics.observe h_job_ms elapsed;
                Obs.Metrics.incr m_completed;
                Obs.Log.info ~job:job.j_id "done in %.0f ms (%d attempt%s)" elapsed
                  (a + 1)
                  (if a = 0 then "" else "s");
                send t job.j_conn
                  (Protocol.metrics_event ~id:job.j_id
                     ~counters:(counters_delta before (counters_snapshot ())));
                send t job.j_conn
                  (Protocol.done_event ~id:job.j_id ~attempts:(a + 1) ~elapsed_ms:elapsed
                     ~output:(render_output job.j_spec grows))))
      in
      attempt 0
    end

let executor t =
  let rec loop () =
    match Jobq.pop t.queue with
    | None -> () (* closed and drained *)
    | Some job ->
      Obs.Metrics.set g_queue_depth (float_of_int (Jobq.length t.queue));
      Obs.Metrics.set_direct g_inflight 1.0;
      (try execute t job
       with e ->
         (* the executor must survive anything a job throws at it *)
         Obs.Metrics.incr m_failed;
         Obs.Log.error ~job:job.j_id "internal: %s" (Printexc.to_string e);
         send t job.j_conn
           (Protocol.error_event ~id:job.j_id ~cls:"internal"
              ~detail:("internal: " ^ Printexc.to_string e)));
      Obs.Metrics.set_direct g_inflight 0.0;
      remove_job t job;
      loop ()
  in
  loop ()

(* ---- accept loop ---- *)

let conn_seq = Atomic.make 0

let acceptor t =
  (* telemetry heartbeat rides the 0.2 s accept timeout: about once a
     second the snapshot files are re-published atomically, fixing the
     old write-once-at-drain behaviour that lost everything on SIGKILL *)
  let last_flush = ref (Obs.Clock.now_us ()) in
  let maybe_flush () =
    let now = Obs.Clock.now_us () in
    if now -. !last_flush >= 1_000_000.0 then begin
      last_flush := now;
      flush_telemetry t
    end
  in
  let rec loop () =
    if not (Atomic.get t.drain_req) then begin
      maybe_flush ();
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ ->
        let fd, _ = Unix.accept t.listen_fd in
        let conn =
          { c_id = Atomic.fetch_and_add conn_seq 1;
            c_fd = fd;
            c_in = Unix.in_channel_of_descr fd;
            c_out = Unix.out_channel_of_descr fd;
            c_wmutex = Mutex.create ();
            c_alive = Atomic.make true;
            c_jobs = [] }
        in
        let thread = Thread.create (fun () -> reader t conn) () in
        with_lock t (fun () ->
            t.conns <- conn :: t.conns;
            t.readers <- thread :: t.readers);
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> if not (Atomic.get t.drain_req) then loop ()
    end
  in
  loop ();
  (try Unix.close t.listen_fd with _ -> ());
  try Unix.unlink t.cfg.socket_path with _ -> ()

(* ---- lifecycle ---- *)

let start cfg =
  (* a stale socket file from a crashed daemon would make bind fail *)
  (try Unix.unlink cfg.socket_path with _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let pool = if cfg.jobs > 1 then Some (Par.Pool.create ~domains:cfg.jobs) else None in
  let cache = Option.map (fun dir -> Cache.Store.create ~dir ()) cfg.cache_dir in
  let t =
    { cfg; listen_fd;
      queue = Jobq.create ~capacity:cfg.queue_capacity ();
      drain_req = Atomic.make false;
      signalled = Atomic.make false;
      started_us = Obs.Clock.now_us ();
      pool; cache;
      mutex = Mutex.create ();
      conns = []; readers = []; acceptor = None; executor = None }
  in
  Obs.Log.info "serve: listening on %s (queue %d, -j %d)" cfg.socket_path
    cfg.queue_capacity cfg.jobs;
  t.acceptor <- Some (Thread.create (fun () -> acceptor t) ());
  t.executor <- Some (Thread.create (fun () -> executor t) ());
  t

let drain t = Atomic.set t.drain_req true

let wait t =
  (* only poll here: the SIGTERM handler may run on any thread, so it
     merely sets the flag and all mutex work happens on this one *)
  while not (Atomic.get t.drain_req) do
    Thread.delay 0.05
  done;
  Jobq.close t.queue;
  Option.iter Thread.join t.acceptor;
  Option.iter Thread.join t.executor;
  (* jobs are done; drop the remaining connections so readers unblock *)
  let conns = with_lock t (fun () -> t.conns) in
  List.iter (fun c -> disconnect t c ~count_disconnect:false) conns;
  List.iter Thread.join (with_lock t (fun () -> t.readers));
  Option.iter Par.Pool.shutdown t.pool;
  flush_telemetry t;
  (* a signal-initiated death leaves a post-mortem; a programmatic drain
     is a clean exit and leaves the flight recorder alone *)
  (if Atomic.get t.signalled then
     let (_ : bool) = Obs.Recorder.dump ~reason:"signal-drain" in
     ());
  Obs.Log.info "serve: drained (%d completed, %d failed, %d cancelled)"
    (Obs.Metrics.value m_completed) (Obs.Metrics.value m_failed)
    (Obs.Metrics.value m_cancelled);
  if t.cfg.verbose then
    Printf.eprintf "tpi_flow serve: drained (%d jobs completed, %d failed, %d cancelled)\n%!"
      (Obs.Metrics.value m_completed) (Obs.Metrics.value m_failed)
      (Obs.Metrics.value m_cancelled);
  0

let run cfg =
  let t = start cfg in
  let stop _ =
    Atomic.set t.signalled true;
    drain t
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Printf.printf "tpi_flow serve: listening on %s (queue %d, -j %d%s)\n%!" cfg.socket_path
    cfg.queue_capacity cfg.jobs
    (match cfg.cache_dir with Some d -> ", cache " ^ d | None -> "");
  wait t
