let priorities = 10

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queues : 'a Queue.t array;  (* index = priority; [priorities-1] popped first *)
  capacity : int;
  mutable count : int;
  mutable closed : bool;
}

let create ~capacity () =
  { mutex = Mutex.create ();
    nonempty = Condition.create ();
    queues = Array.init priorities (fun _ -> Queue.create ());
    capacity = max 1 capacity;
    count = 0;
    closed = false }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let capacity t = t.capacity
let length t = with_lock t (fun () -> t.count)
let is_closed t = with_lock t (fun () -> t.closed)

type rejection =
  | Full of { depth : int; capacity : int }
  | Closed

let push t ~priority item =
  with_lock t (fun () ->
      if t.closed then Error Closed
      else if t.count >= t.capacity then
        Error (Full { depth = t.count; capacity = t.capacity })
      else begin
        let p = max 0 (min (priorities - 1) priority) in
        Queue.push item t.queues.(p);
        t.count <- t.count + 1;
        Condition.signal t.nonempty;
        Ok t.count
      end)

let take_highest t =
  let rec go p =
    if p < 0 then None
    else if Queue.is_empty t.queues.(p) then go (p - 1)
    else begin
      t.count <- t.count - 1;
      Some (Queue.pop t.queues.(p))
    end
  in
  go (priorities - 1)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        match take_highest t with
        | Some item -> Some item
        | None ->
          if t.closed then None
          else begin
            Condition.wait t.nonempty t.mutex;
            wait ()
          end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      (* wake the consumer so an empty closed queue returns None *)
      Condition.broadcast t.nonempty)

let scan_remove t pred =
  with_lock t (fun () ->
      let removed = ref [] in
      (* walk priorities in pop order so the returned list is too *)
      for p = priorities - 1 downto 0 do
        let q = t.queues.(p) in
        let keep = Queue.create () in
        Queue.iter
          (fun item ->
            if pred item then begin
              removed := item :: !removed;
              t.count <- t.count - 1
            end
            else Queue.push item keep)
          q;
        Queue.clear q;
        Queue.transfer keep q
      done;
      List.rev !removed)
