(** Minimal blocking client for the [tpi_flow serve] daemon.

    One connection, synchronous request/response helpers on top of the
    JSONL protocol — enough for the CLI [client] subcommand, the serve
    benchmark and the CI smoke test. Thread-safe for one user; open one
    client per concurrent caller. *)

type t

val connect : socket_path:string -> t
(** Raises [Unix.Unix_error] if the daemon is not listening. *)

val close : t -> unit

val request : t -> Obs.Json.t -> unit
(** Send one request line. *)

val send_raw : t -> string -> unit
(** Send arbitrary bytes plus a newline — the chaos/fuzz harness's way of
    putting hostile lines on the wire. *)

val next_event : t -> Obs.Json.t option
(** Next event line from the daemon; [None] on EOF. Skips lines that do
    not parse (there should be none). *)

val ping : t -> bool

val stats : t -> Obs.Json.t option
(** The [stats] event, as parsed JSON. *)

val prometheus : t -> string option
(** Live Prometheus text exposition ([{"op":"metrics"}]); [None] if the
    daemon vanished mid-request. Answered by a daemon reader thread, so
    it works while a job is running on the executor. *)

val submit_line :
  id:string ->
  ?priority:int ->
  ?deadline_ms:float ->
  ?circuit:string ->
  ?scale:float ->
  ?levels:int list ->
  ?atpg:bool ->
  ?repair:bool ->
  ?tables:int list ->
  ?policy:string ->
  ?fail_attempts:int ->
  ?sleep_ms:int ->
  unit ->
  Obs.Json.t
(** Build a [submit] request; omitted fields use the daemon defaults. *)

type outcome = {
  events : Obs.Json.t list;  (** every event for this job id, in order *)
  output : string option;    (** the [done] event's output, if completed *)
  error : (string * string) option;  (** terminal (class, detail), if failed *)
  attempts : int;            (** attempts reported by the terminal event *)
  retries : int;             (** [retrying] events observed *)
  rejected : bool;           (** true when admission refused the job *)
}

val run_job : t -> Obs.Json.t -> outcome
(** Submit and block until the job's terminal event ([done], [error] or
    [rejected]); events for other job ids on the same connection are
    ignored. *)
