module J = Obs.Json

let max_line_bytes = 1024 * 1024
let max_depth = 32

type job_spec = {
  circuit : string;
  scale : float option;
  tp_levels : int list;
  with_atpg : bool;
  repair : bool;
  tables : int list;
  policy : Flow.Guard.policy;
  fail_attempts : int;
  sleep_ms : int;
}

let default_spec =
  { circuit = "s38417";
    scale = None;
    tp_levels = [ 0; 1; 2; 3; 4; 5 ];
    with_atpg = false;
    repair = false;
    tables = [ 2; 3 ];
    policy = Flow.Guard.Fail_fast;
    fail_attempts = 0;
    sleep_ms = 0 }

type request =
  | Ping
  | Stats
  | Metrics_req
  | Cancel_job of { id : string }
  | Submit of {
      id : string;
      priority : int;
      deadline_ms : float option;
      spec : job_spec;
    }

(* strict UTF-8: reject continuation-byte misuse, overlong encodings,
   surrogates and anything past U+10FFFF. Hostile bytes reach this before
   any other layer sees them. *)
let is_valid_utf8 s =
  let n = String.length s in
  let rec go i =
    if i >= n then true
    else
      let b0 = Char.code s.[i] in
      if b0 < 0x80 then go (i + 1)
      else if b0 < 0xC2 then false (* continuation byte or overlong 2-byte lead *)
      else if b0 < 0xE0 then
        i + 1 < n
        && Char.code s.[i + 1] land 0xC0 = 0x80
        && go (i + 2)
      else if b0 < 0xF0 then
        i + 2 < n
        &&
        let b1 = Char.code s.[i + 1] and b2 = Char.code s.[i + 2] in
        b1 land 0xC0 = 0x80
        && b2 land 0xC0 = 0x80
        && (b0 <> 0xE0 || b1 >= 0xA0)      (* overlong *)
        && (b0 <> 0xED || b1 < 0xA0)       (* surrogates *)
        && go (i + 3)
      else if b0 < 0xF5 then
        i + 3 < n
        &&
        let b1 = Char.code s.[i + 1]
        and b2 = Char.code s.[i + 2]
        and b3 = Char.code s.[i + 3] in
        b1 land 0xC0 = 0x80
        && b2 land 0xC0 = 0x80
        && b3 land 0xC0 = 0x80
        && (b0 <> 0xF0 || b1 >= 0x90)      (* overlong *)
        && (b0 <> 0xF4 || b1 < 0x90)       (* > U+10FFFF *)
        && go (i + 4)
      else false
  in
  go 0

(* early-exit depth probe: recursion bounded by [max_depth + 1] whatever
   the document looks like, so the probe itself cannot blow the stack *)
let rec deeper_than k = function
  | J.List vs -> k = 0 || List.exists (deeper_than (k - 1)) vs
  | J.Obj fields -> k = 0 || List.exists (fun (_, v) -> deeper_than (k - 1) v) fields
  | _ -> false

let member name j = J.member name j

let str_field name j =
  match member name j with Some (J.String s) -> Some s | _ -> None

let int_field name j =
  match member name j with
  | Some (J.Int i) -> Some i
  | Some (J.Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let float_field name j =
  match member name j with
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

let bool_field name j =
  match member name j with Some (J.Bool b) -> Some b | _ -> None

let int_list_field name j =
  match member name j with
  | Some (J.List vs) ->
    let ints =
      List.filter_map (function J.Int i -> Some i | _ -> None) vs
    in
    if List.length ints = List.length vs then Some ints else None
  | _ -> None

let ( let* ) r f = Result.bind r f

let parse_submit j =
  let* id =
    match str_field "id" j with
    | Some id when id <> "" && String.length id <= 128 -> Ok id
    | Some _ -> Error "invalid id: must be 1-128 bytes"
    | None -> Error "missing id"
  in
  let* priority =
    match int_field "priority" j with
    | None -> Ok 0
    | Some p when p >= 0 && p <= 9 -> Ok p
    | Some p -> Error (Printf.sprintf "priority %d out of range 0-9" p)
  in
  let* deadline_ms =
    match member "deadline_ms" j with
    | None -> Ok None
    | Some _ ->
      (match float_field "deadline_ms" j with
       | Some d when d > 0.0 -> Ok (Some d)
       | _ -> Error "deadline_ms must be a positive number")
  in
  let* tp_levels =
    match int_list_field "levels" j with
    | None when member "levels" j = None -> Ok default_spec.tp_levels
    | None -> Error "levels must be an array of integers"
    | Some [] -> Error "levels must be non-empty"
    | Some ls ->
      (match List.find_opt (fun l -> l < 0 || l > 100) ls with
       | Some l -> Error (Printf.sprintf "test point level %d%% out of range 0-100" l)
       | None -> Ok ls)
  in
  let* tables =
    match int_list_field "tables" j with
    | None when member "tables" j = None -> Ok default_spec.tables
    | None -> Error "tables must be an array of integers"
    | Some ts -> Ok ts
  in
  let* policy =
    match str_field "policy" j with
    | None -> Ok default_spec.policy
    | Some s ->
      (match Flow.Guard.policy_of_string s with
       | Some p -> Ok p
       | None -> Error ("unknown policy " ^ s ^ " (fail-fast|recover|degrade)"))
  in
  let* fail_attempts =
    match int_field "fail_attempts" j with
    | None -> Ok 0
    | Some k when k >= 0 && k <= 16 -> Ok k
    | Some _ -> Error "fail_attempts out of range 0-16"
  in
  let* sleep_ms =
    match int_field "sleep_ms" j with
    | None -> Ok 0
    | Some ms when ms >= 0 && ms <= 60_000 -> Ok ms
    | Some _ -> Error "sleep_ms out of range 0-60000"
  in
  let spec =
    { circuit = Option.value ~default:default_spec.circuit (str_field "circuit" j);
      scale = float_field "scale" j;
      tp_levels;
      with_atpg = Option.value ~default:false (bool_field "atpg" j);
      repair = Option.value ~default:false (bool_field "repair" j);
      tables;
      policy;
      fail_attempts;
      sleep_ms }
  in
  Ok (Submit { id; priority; deadline_ms; spec })

let parse_request line =
  if String.length line > max_line_bytes then
    Error
      (Printf.sprintf "line too long: %d bytes exceeds the %d-byte limit"
         (String.length line) max_line_bytes)
  else if not (is_valid_utf8 line) then Error "request is not valid UTF-8"
  else
    match (try J.parse line with Stack_overflow -> Error "nesting blew the parser stack") with
    | Error msg -> Error ("malformed JSON: " ^ msg)
    | Ok j ->
      if deeper_than max_depth j then
        Error (Printf.sprintf "JSON nested deeper than %d levels" max_depth)
      else begin
        match j with
        | J.Obj _ ->
          (match str_field "op" j with
           | Some "ping" -> Ok Ping
           | Some "stats" -> Ok Stats
           | Some "metrics" -> Ok Metrics_req
           | Some "cancel" ->
             (match str_field "id" j with
              | Some id when id <> "" -> Ok (Cancel_job { id })
              | _ -> Error "cancel needs a non-empty id")
           | Some "submit" -> parse_submit j
           | Some op -> Error ("unknown op " ^ op ^ " (ping|stats|metrics|submit|cancel)")
           | None -> Error "missing op field")
        | _ -> Error "request must be a JSON object"
      end

(* ---- response events ---- *)

let to_line j = J.to_string j ^ "\n"

let ev name fields = J.Obj (("event", J.String name) :: fields)

let accepted ~id ~queue_depth =
  ev "accepted" [ ("id", J.String id); ("queue_depth", J.Int queue_depth) ]

let rejected ~id ~cls ~detail =
  ev "rejected"
    ((match id with Some id -> [ ("id", J.String id) ] | None -> [])
     @ [ ("class", J.String cls); ("detail", J.String detail) ])

let started ~id ~attempt =
  ev "started" [ ("id", J.String id); ("attempt", J.Int attempt) ]

let stage_event ~id ~level ~stage ~status ~ms =
  ev "stage"
    [ ("id", J.String id); ("level", J.Int level); ("stage", J.String stage);
      ("status", J.String status); ("ms", J.Float ms) ]

let retrying ~id ~attempt ~cls ~backoff_ms =
  ev "retrying"
    [ ("id", J.String id); ("attempt", J.Int attempt); ("class", J.String cls);
      ("backoff_ms", J.Float backoff_ms) ]

let metrics_event ~id ~counters =
  ev "metrics"
    [ ("id", J.String id);
      ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) counters)) ]

let done_event ~id ~attempts ~elapsed_ms ~output =
  ev "done"
    [ ("id", J.String id); ("attempts", J.Int attempts);
      ("elapsed_ms", J.Float elapsed_ms); ("output", J.String output) ]

let error_event ~id ~cls ~detail =
  ev "error" [ ("id", J.String id); ("class", J.String cls); ("detail", J.String detail) ]

let pong () = ev "pong" []

let stats_event ~counters ~queue_depth ~draining =
  ev "stats"
    [ ("queue_depth", J.Int queue_depth); ("draining", J.Bool draining);
      ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) counters)) ]

let prometheus_event ~text = ev "prometheus" [ ("text", J.String text) ]

let event_of j = match str_field "event" j with Some e -> e | None -> ""
let id_of j = str_field "id" j
