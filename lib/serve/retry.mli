(** Per-class retry policies with exponential backoff.

    When a job's guarded run fails, the daemon looks the error's
    {!Flow.Guard.error_class} up here: a class with a policy is retried —
    after an exponentially growing, capped backoff — up to the class's
    budget; everything else (and every budget exhaustion) is a permanent,
    typed job error. ["cancelled"] never appears in the table: stopping a
    job is the caller's decision, not a fault.

    The table is part of the service contract (DESIGN.md §6.3). *)

type policy = {
  max_retries : int;        (** retry budget; attempts = 1 + this at most *)
  base_backoff_ms : float;  (** delay before the first retry *)
  multiplier : float;       (** backoff growth per retry *)
  max_backoff_ms : float;   (** backoff ceiling *)
}

val table : (string * policy) list
(** Error class -> policy, e.g. [("transient", ...)]. Classes absent from
    the table are not retryable. *)

val policy_for : string -> policy option

val retryable : Flow.Guard.stage_error -> policy option
(** [policy_for (Guard.error_class e)], with the guarantee that cancelled
    errors are never retryable. *)

val backoff_ms : policy -> attempt:int -> float
(** Delay before retry [attempt] (1-based):
    [min max_backoff (base * multiplier ^ (attempt - 1))]. *)
