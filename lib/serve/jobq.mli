(** Bounded priority job queue with typed admission control.

    The daemon's overload valve: {!push} never blocks and never grows the
    queue past its capacity — a full queue answers with a typed
    {!rejection} the caller turns into a ["backpressure"] error, so a
    request burst can neither OOM the daemon nor wedge its readers.

    Priorities are [0..9], higher first, strict FIFO within a priority.
    One consumer ({!pop}) blocks until work arrives; {!close} stops
    admission while letting the consumer drain what was already accepted —
    the first half of graceful drain. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** [capacity] is clamped to at least 1. *)

val capacity : 'a t -> int
val length : 'a t -> int

type rejection =
  | Full of { depth : int; capacity : int }  (** queue at capacity *)
  | Closed                                   (** draining: admission stopped *)

val push : 'a t -> priority:int -> 'a -> (int, rejection) result
(** Non-blocking admission; [Ok depth] is the queue depth after the push.
    Priorities outside [0..9] are clamped. *)

val pop : 'a t -> 'a option
(** Block until an item is available (highest priority first, FIFO
    within); [None] once the queue is closed {e and} empty. *)

val close : 'a t -> unit
(** Stop admitting; idempotent. Pending items remain poppable. *)

val is_closed : 'a t -> bool

val scan_remove : 'a t -> ('a -> bool) -> 'a list
(** Remove (and return, in pop order) every queued item matching the
    predicate — how a dead client's queued jobs give their slots back. *)
