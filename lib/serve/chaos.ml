module Inject = Flow.Inject
module J = Obs.Json

let seq = Atomic.make 0

let scratch_socket dir =
  let n = Atomic.fetch_and_add seq 1 in
  Filename.concat dir (Printf.sprintf "tpi-chaos-%d-%d.sock" (Unix.getpid ()) n)

(* every scenario gets its own daemon; drain must complete even when the
   scenario raises, or the process leaks threads and a bound socket *)
let with_daemon ?dir ?(capacity = 4) f =
  let dir = match dir with Some d -> d | None -> Filename.get_temp_dir_name () in
  let socket_path = scratch_socket dir in
  let cfg = { (Daemon.default_config ~socket_path) with queue_capacity = capacity } in
  let t = Daemon.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Daemon.drain t;
      let (_ : int) = Daemon.wait t in
      ())
    (fun () -> f socket_path)

(* scenarios use a deliberately tiny spec so drain stays fast *)
let tiny ~id ?fail_attempts ?sleep_ms () =
  Client.submit_line ~id ?fail_attempts ?sleep_ms ~circuit:"s38417" ~scale:0.05
    ~levels:[ 0 ] ~tables:[ 2 ] ()

let fresh_connection_answers socket_path =
  match Client.connect ~socket_path with
  | exception Unix.Unix_error _ -> false
  | c ->
    Fun.protect ~finally:(fun () -> Client.close c) (fun () -> Client.ping c)

let class_of_event j = Protocol.str_field "class" j

(* wait on [c] for the first event matching [pred]; None after ~3 s *)
let await c pred =
  let deadline = Obs.Clock.now_us () +. 3.0e6 in
  let rec go () =
    if Obs.Clock.now_us () > deadline then None
    else
      match Client.next_event c with
      | None -> None
      | Some j -> if pred j then Some j else go ()
  in
  go ()

let counter_of_stats name j =
  match J.member "counters" j with
  | Some counters ->
    (match J.member name counters with Some (J.Int v) -> Some v | _ -> None)
  | None -> None

let jobs_cancelled c =
  match Client.stats c with
  | Some j -> counter_of_stats "serve.jobs_cancelled" j
  | None -> None

let malformed_request socket_path =
  let c = Client.connect ~socket_path in
  let observed =
    Fun.protect ~finally:(fun () -> Client.close c)
      (fun () ->
        Client.send_raw c "{\"op\": \"submit\", oops";
        Option.bind
          (await c (fun j -> Protocol.event_of j = "rejected"))
          class_of_event)
  in
  (observed, fresh_connection_answers socket_path)

let queue_overflow socket_path =
  let c = Client.connect ~socket_path in
  let observed =
    Fun.protect ~finally:(fun () -> Client.close c)
      (fun () ->
        (* hold the executor so the capacity-1 queue stays full: job 1
           occupies the executor (wait for its [started]), job 2 takes the
           only slot, job 3 must bounce with a typed backpressure *)
        Client.request c (tiny ~id:"hold" ~sleep_ms:700 ());
        (match
           await c (fun j ->
               Protocol.event_of j = "started" && Protocol.id_of j = Some "hold")
         with
         | None -> None
         | Some _ ->
           Client.request c (tiny ~id:"queued" ());
           (match
              await c (fun j ->
                  Protocol.event_of j = "accepted" && Protocol.id_of j = Some "queued")
            with
            | None -> None
            | Some _ ->
              Client.request c (tiny ~id:"burst" ());
              Option.bind
                (await c (fun j ->
                     Protocol.event_of j = "rejected"
                     && Protocol.id_of j = Some "burst"))
                class_of_event)))
  in
  (observed, fresh_connection_answers socket_path)

let client_disconnect socket_path =
  let watcher = Client.connect ~socket_path in
  Fun.protect ~finally:(fun () -> Client.close watcher)
    (fun () ->
      let baseline = Option.value ~default:0 (jobs_cancelled watcher) in
      let victim = Client.connect ~socket_path in
      Client.request victim (tiny ~id:"orphan" ~sleep_ms:2000 ());
      (match
         await victim (fun j ->
             Protocol.event_of j = "started" && Protocol.id_of j = Some "orphan")
       with
       | None -> ()
       | Some _ -> ());
      (* vanish mid-job: the daemon must cancel the orphan on its own *)
      Client.close victim;
      let deadline = Obs.Clock.now_us () +. 3.0e6 in
      let rec poll () =
        match jobs_cancelled watcher with
        | Some n when n > baseline -> Some "cancelled"
        | _ ->
          if Obs.Clock.now_us () > deadline then None
          else begin
            Thread.delay 0.02;
            poll ()
          end
      in
      let observed = poll () in
      (observed, fresh_connection_answers socket_path))

let run_one ?dir fault =
  let capacity =
    match fault with Inject.Queue_overflow -> 1 | _ -> 4
  in
  let observed, recovered =
    with_daemon ?dir ~capacity
      (fun socket_path ->
        match fault with
        | Inject.Malformed_request -> malformed_request socket_path
        | Inject.Queue_overflow -> queue_overflow socket_path
        | Inject.Client_disconnect -> client_disconnect socket_path)
  in
  Inject.service_outcome fault ~observed ~recovered

let selftest ?dir () = List.map (run_one ?dir) Inject.service_all

let retry_recovers ?dir () =
  with_daemon ?dir
    (fun socket_path ->
      let c = Client.connect ~socket_path in
      Fun.protect ~finally:(fun () -> Client.close c)
        (fun () ->
          let tampered = Client.run_job c (tiny ~id:"tampered" ~fail_attempts:1 ()) in
          let clean = Client.run_job c (tiny ~id:"clean" ()) in
          tampered.Client.attempts = 2
          && tampered.Client.retries >= 1
          && tampered.Client.error = None
          && tampered.Client.output <> None
          && tampered.Client.output = clean.Client.output))
