(** Growable arrays (OCaml 5.1 has no [Dynarray]); used pervasively for
    netlist storage where element counts are discovered incrementally. *)

type 'a t

val create : unit -> 'a t

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** [push v x] appends [x] and returns its index. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val exists : ('a -> bool) -> 'a t -> bool
val map_to_array : ('a -> 'b) -> 'a t -> 'b array
val clear : 'a t -> unit

val truncate : 'a t -> int -> unit
(** [truncate v n] drops every element at index [n] and above ([n] must be
    [<= length v]); capacity is retained. The undo primitive behind
    speculative netlist edits ({!Netlist.Design.remove_last_instance}). *)
