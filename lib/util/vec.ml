type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  Array.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  Array.unsafe_set v.data i x

let grow v x =
  let cap = Array.length v.data in
  let cap' = max 8 (2 * cap) in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1;
  v.len - 1

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let exists p v =
  let rec loop i = i < v.len && (p (Array.unsafe_get v.data i) || loop (i + 1)) in
  loop 0

let map_to_array f v = Array.init v.len (fun i -> f (Array.unsafe_get v.data i))

let clear v = v.len <- 0

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate";
  v.len <- n
