module Design = Netlist.Design
module Cell = Stdcell.Cell

exception Parse_error of int * string

type raw =
  | Input of string
  | Output of string
  | Gate of string * string * string list  (* out, kind, ins *)

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some k -> String.sub line 0 k
    | None -> line
  in
  let line = String.trim line in
  if line = "" then None
  else begin
    let err msg = raise (Parse_error (lineno, msg)) in
    let inside s =
      match (String.index_opt s '(', String.rindex_opt s ')') with
      | Some a, Some b when b > a -> String.trim (String.sub s (a + 1) (b - a - 1))
      | _ -> err "expected (...)"
    in
    let upper = String.uppercase_ascii line in
    if String.length upper >= 5 && String.sub upper 0 5 = "INPUT" then
      Some (Input (inside line))
    else if String.length upper >= 6 && String.sub upper 0 6 = "OUTPUT" then
      Some (Output (inside line))
    else
      match String.index_opt line '=' with
      | None -> err "expected assignment"
      | Some eq ->
        let out = String.trim (String.sub line 0 eq) in
        let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
        let kind =
          match String.index_opt rhs '(' with
          | Some k -> String.uppercase_ascii (String.trim (String.sub rhs 0 k))
          | None -> err "expected GATE(...)"
        in
        let ins =
          inside rhs |> String.split_on_char ',' |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        if ins = [] then err "gate with no inputs";
        Some (Gate (out, kind, ins))
  end

let parse ?(name = "iscas") ?(period_ps = 8000.0) src =
  let lines = String.split_on_char '\n' src in
  let raws =
    List.concat (List.mapi (fun k l -> Option.to_list (parse_line (k + 1) l)) lines)
  in
  let d = Design.create name in
  let lib = d.Design.lib in
  let clk = Design.add_port d "CK" Design.In in
  let dom = Design.add_domain d ~name:"clk" ~period_ps ~clock_net:clk.Design.pnet in
  let nets : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let net_of n =
    match Hashtbl.find_opt nets n with
    | Some id -> id
    | None ->
      let fresh = Design.add_net d n in
      Hashtbl.replace nets n fresh.Design.nid;
      fresh.Design.nid
  in
  (* declare ports first so port-bound nets use the port name *)
  List.iter
    (function
      | Input n ->
        if Hashtbl.mem nets n then raise (Parse_error (0, "duplicate INPUT " ^ n));
        let p = Design.add_port d n Design.In in
        Hashtbl.replace nets n p.Design.pnet
      | Output _ | Gate _ -> ())
    raws;
  let counter = ref 0 in
  let fresh_cell kind =
    incr counter;
    Design.add_instance d ~name:(Printf.sprintf "u%d" !counter) ~cell:(Stdcell.Library.min_drive_strength lib kind)
  in
  (* a malformed operand list here is a mapper bug, not a user error, but
     it still surfaces as a typed Parse_error carrying the mapper state
     instead of an assertion crash *)
  let internal_error what =
    raise
      (Parse_error
         (0,
          Printf.sprintf "internal: %s (after %d mapped cells, %d nets)" what
            !counter (Hashtbl.length nets)))
  in
  (* reduce an n-ary associative function to a tree of 2-input cells *)
  let rec reduce kind2 = function
    | [] -> internal_error ("empty " ^ Cell.kind_name kind2 ^ " reduction")
    | [ last ] -> last
    | a :: b :: rest ->
      let g = fresh_cell kind2 in
      let out = Design.add_net d (Printf.sprintf "t%d" !counter) in
      Design.connect d ~inst:g.Design.id ~pin:0 ~net:a;
      Design.connect d ~inst:g.Design.id ~pin:1 ~net:b;
      Design.connect d ~inst:g.Design.id ~pin:2 ~net:out.Design.nid;
      reduce kind2 (rest @ [ out.Design.nid ])
  in
  let unary kind input out_net =
    let g = fresh_cell kind in
    Design.connect d ~inst:g.Design.id ~pin:0 ~net:input;
    Design.connect d ~inst:g.Design.id ~pin:1 ~net:out_net
  in
  let binary_root kind2 ins out_net =
    match ins with
    | [] -> internal_error ("rootless " ^ Cell.kind_name kind2 ^ " gate")
    | [ a ] -> unary Cell.Buf a out_net
    | [ a; b ] ->
      let g = fresh_cell kind2 in
      Design.connect d ~inst:g.Design.id ~pin:0 ~net:a;
      Design.connect d ~inst:g.Design.id ~pin:1 ~net:b;
      Design.connect d ~inst:g.Design.id ~pin:2 ~net:out_net
    | ins ->
      (* n-ary: reduce with the positive 2-input kind, then close with the
         matching root (NAND(a,b,c) = NOT(AND-tree); XOR trees associate) *)
      (match kind2 with
       | Cell.Nand2 | Cell.Nor2 ->
         let inner =
           reduce (if kind2 = Cell.Nand2 then Cell.And2 else Cell.Or2) ins
         in
         unary Cell.Inv inner out_net
       | _ ->
         match List.rev ins with
         | last :: rev_rest ->
           let prefix = reduce kind2 (List.rev rev_rest) in
           let g = fresh_cell kind2 in
           Design.connect d ~inst:g.Design.id ~pin:0 ~net:prefix;
           Design.connect d ~inst:g.Design.id ~pin:1 ~net:last;
           Design.connect d ~inst:g.Design.id ~pin:2 ~net:out_net
         | [] -> internal_error ("empty " ^ Cell.kind_name kind2 ^ " operand split"))
  in
  List.iter
    (function
      | Input _ | Output _ -> ()
      | Gate (out, kind, ins) ->
        let out_net = net_of out in
        let in_nets = List.map net_of ins in
        (match (kind, in_nets) with
         | ("NOT", [ a ]) -> unary Cell.Inv a out_net
         | (("BUF" | "BUFF"), [ a ]) -> unary Cell.Buf a out_net
         | ("DFF", [ a ]) ->
           let ff = fresh_cell Cell.Dff in
           ff.Design.domain <- dom;
           Design.connect d ~inst:ff.Design.id ~pin:0 ~net:a;
           Design.connect d ~inst:ff.Design.id ~pin:1 ~net:clk.Design.pnet;
           Design.connect d ~inst:ff.Design.id ~pin:2 ~net:out_net
         | ("AND", ins) -> binary_root Cell.And2 ins out_net
         | ("OR", ins) -> binary_root Cell.Or2 ins out_net
         | ("NAND", ins) -> binary_root Cell.Nand2 ins out_net
         | ("NOR", ins) -> binary_root Cell.Nor2 ins out_net
         | ("XOR", ins) -> binary_root Cell.Xor2 ins out_net
         | ("XNOR", ins) -> binary_root Cell.Xnor2 ins out_net
         | (k, _) -> raise (Parse_error (0, "unsupported gate " ^ k))))
    raws;
  List.iter
    (function
      | Output n ->
        let p = Design.add_port d ("out_" ^ n) Design.Out in
        Design.connect_out_port d ~port:p.Design.pid ~net:(net_of n)
      | Input _ | Gate _ -> ())
    raws;
  d

let parse_file ?period_ps path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      parse ~name:(Filename.remove_extension (Filename.basename path)) ?period_ps src)
