module Design = Netlist.Design
module Cell = Stdcell.Cell
module Rng = Util.Rng
module Vec = Util.Vec

type pool_entry = {
  pnet : int;
  plevel : int;
  mutable uses : int;
}

exception Generation_error of string
(* invariant breaks in the generator surface as typed errors carrying the
   generator state at the point of failure, never as assertion crashes *)

type state = {
  d : Design.t;
  rng : Rng.t;
  pool : pool_entry Vec.t;
  unused : int Queue.t;  (* pool indexes with uses = 0 (lazy deletion) *)
  mutable gates_made : int;
}

let add_pool st ~net ~level =
  let idx = Vec.push st.pool { pnet = net; plevel = level; uses = 0 } in
  Queue.add idx st.unused

let mark_used st idx = (Vec.get st.pool idx).uses <- (Vec.get st.pool idx).uses + 1

(* Pick a pool index with level < max_level. Preference order: an unused net
   (keeps dangling outputs rare), then a recent net (builds depth), then a
   uniform one. Level-0 entries always exist, so this terminates. *)
let pick_input st ~max_level ~avoid =
  let n = Vec.length st.pool in
  let ok idx =
    idx >= 0 && idx < n
    && (Vec.get st.pool idx).plevel < max_level
    && not (List.mem idx avoid)
  in
  let try_unused () =
    let rec drain attempts =
      if attempts = 0 || Queue.is_empty st.unused then None
      else
        let idx = Queue.pop st.unused in
        if (Vec.get st.pool idx).uses > 0 then drain attempts
        else if ok idx then Some idx
        else begin
          Queue.add idx st.unused;
          drain (attempts - 1)
        end
    in
    drain 4
  in
  let try_recent () =
    let window = min n 256 in
    let rec loop k =
      if k = 0 then None
      else
        let idx = n - 1 - Rng.int st.rng window in
        if ok idx then Some idx else loop (k - 1)
    in
    loop 6
  in
  let try_uniform () =
    let rec loop k =
      if k = 0 then None
      else
        let idx = Rng.int st.rng n in
        if ok idx then Some idx else loop (k - 1)
    in
    loop 20
  in
  let fallback () =
    (* level-0 seeds live at the front of the pool *)
    let rec loop idx = if ok idx then idx else loop (idx + 1) in
    loop 0
  in
  let choice =
    if Rng.float st.rng 1.0 < 0.35 then try_unused () else None
  in
  let choice = match choice with Some _ -> choice | None -> try_recent () in
  let choice = match choice with Some _ -> choice | None -> try_uniform () in
  match choice with
  | Some idx -> idx
  | None -> fallback ()

(* Level-uniform pick for observation sinks (FF D inputs, POs): no recency
   bias, so observe sites spread over all logic levels as in real designs. *)
let pick_observed_net st =
  let n = Vec.length st.pool in
  let try_unused () =
    let rec drain attempts =
      if attempts = 0 || Queue.is_empty st.unused then None
      else
        let idx = Queue.pop st.unused in
        if (Vec.get st.pool idx).uses > 0 then drain attempts else Some idx
    in
    drain 4
  in
  let idx =
    if Rng.float st.rng 1.0 < 0.5 then
      match try_unused () with
      | Some idx -> idx
      | None -> Rng.int st.rng n
    else Rng.int st.rng n
  in
  idx

let new_gate st kind (input_idxs : int list) =
  let cell = Stdcell.Library.min_drive_strength st.d.Design.lib kind in
  let name = Printf.sprintf "g%d" st.gates_made in
  let i = Design.add_instance st.d ~name ~cell in
  let out_net = Design.add_net st.d (name ^ "_y") in
  List.iteri
    (fun pin idx ->
      let e = Vec.get st.pool idx in
      Design.connect st.d ~inst:i.Design.id ~pin ~net:e.pnet;
      mark_used st idx)
    input_idxs;
  Design.connect st.d ~inst:i.Design.id ~pin:(Cell.output_pin cell) ~net:out_net.Design.nid;
  let level =
    1 + List.fold_left (fun acc idx -> max acc (Vec.get st.pool idx).plevel) 0 input_idxs
  in
  st.gates_made <- st.gates_made + 1;
  add_pool st ~net:out_net.Design.nid ~level;
  Vec.length st.pool - 1

(* Kind mixes chosen to keep per-gate sensitisation probability realistic:
   inverters/buffers and XORs propagate fault effects unconditionally, and
   synthesized netlists contain plenty of them; a mix without them makes
   observability decay geometrically with depth, which no real circuit
   exhibits. *)
let control_kinds =
  [| Cell.Nand2; Cell.Nand2; Cell.Nand2; Cell.Nor2; Cell.Nor2; Cell.Inv; Cell.Inv;
     Cell.Inv; Cell.Buf; Cell.Nand3; Cell.Nor3; Cell.Aoi21; Cell.Oai21; Cell.Mux2;
     Cell.Mux2; Cell.And2; Cell.Or2; Cell.Xor2; Cell.Xor2; Cell.Xnor2 |]

let datapath_kinds =
  [| Cell.Xor2; Cell.Xor2; Cell.Xor2; Cell.Xnor2; Cell.And2; Cell.And2; Cell.Or2;
     Cell.Mux2; Cell.Mux2; Cell.Nand2; Cell.Nor2; Cell.Inv; Cell.Inv; Cell.Aoi21;
     Cell.Oai21; Cell.Nand3 |]

let pick_kind st texture =
  let kinds =
    match texture with
    | Profile.Control -> control_kinds
    | Profile.Datapath -> datapath_kinds
  in
  Rng.choose st.rng kinds

let pick_inputs st ~arity ~max_level =
  let rec loop acc k =
    if k = 0 then List.rev acc
    else
      let idx = pick_input st ~max_level ~avoid:acc in
      loop (idx :: acc) (k - 1)
  in
  loop [] arity

let regular_gate st ~texture ~depth_target =
  let kind = pick_kind st texture in
  let arity = Cell.num_inputs kind in
  (* target level shaping: deep targets chain onto recent (deep) nets *)
  let target = 2 + Rng.int st.rng (max 1 (depth_target - 1)) in
  let (_ : int) = new_gate st kind (pick_inputs st ~arity ~max_level:target) in
  ()

(* Regular logic is generated module by module, like synthesized RTL: each
   module has a bounded input boundary and draws most gate inputs locally.
   Test cubes then touch a few dozen sources instead of the whole design,
   so compatible tests merge the way they do in real circuits; a single
   flat random graph would make every cube global and cap dynamic
   compaction far below realistic levels. *)
let module_block st ~texture ~depth_target ~size ~boundary_width ~adopted_ffs =
  let local : int Vec.t = Vec.create () in
  (* the module's own registers: their Q nets are the bulk of the local
     signal boundary, and their D inputs are wired back to module-local
     nets below -- register-to-logic nets stay physically local, as they
     do in synthesized RTL *)
  List.iter
    (fun (_, _, pool_idx) ->
      let (_ : int) = Vec.push local pool_idx in
      ())
    adopted_ffs;
  for _ = 1 to boundary_width do
    let idx = pick_input st ~max_level:2 ~avoid:[] in
    let (_ : int) = Vec.push local idx in
    ()
  done;
  let pick_local ~max_level ~avoid =
    let n = Vec.length local in
    let rec loop k =
      if k = 0 then pick_input st ~max_level ~avoid
      else
        let idx = Vec.get local (Rng.int st.rng n) in
        if (Vec.get st.pool idx).plevel < max_level && not (List.mem idx avoid) then idx
        else loop (k - 1)
    in
    loop 8
  in
  for _ = 1 to size do
    let kind = pick_kind st texture in
    let arity = Cell.num_inputs kind in
    let target = 2 + Rng.int st.rng (max 1 (depth_target - 1)) in
    let rec collect acc k =
      if k = 0 then List.rev acc
      else
        let idx =
          if Rng.float st.rng 1.0 < 0.9 then pick_local ~max_level:target ~avoid:acc
          else pick_input st ~max_level:target ~avoid:acc
        in
        collect (idx :: acc) (k - 1)
    in
    let ins = collect [] arity in
    let out = new_gate st kind ins in
    let (_ : int) = Vec.push local out in
    ()
  done;
  (* close the loop: adopted registers capture module-local signals *)
  List.iter
    (fun (iid, d_pin, _) ->
      let idx = Vec.get local (Rng.int st.rng (Vec.length local)) in
      mark_used st idx;
      Design.connect st.d ~inst:iid ~pin:d_pin ~net:(Vec.get st.pool idx).pnet)
    adopted_ffs

(* ---- decoder-gated hard cones ----

   The structures that dominate compact-ATPG pattern counts in real designs
   are decoder-like: a cone of logic is active only while a shared bus
   carries one specific code. Faults inside such a cone all need the code
   in their test cube, so cones on the same bus produce mutually exclusive
   tests that cannot merge -- until a control point on the cone's enable
   lets ATPG activate it without the code. Each block here is a [width]-bit
   constant comparator on a shared bus, gating a private body of gates
   whose outputs land directly on flip-flop D inputs.

   Body cells are created outside the global pool so the (almost always
   idle) gated logic does not poison the controllability of the regular
   logic that is generated afterwards. *)

let new_gate_nets st kind (input_nets : int list) =
  let cell = Stdcell.Library.min_drive_strength st.d.Design.lib kind in
  let name = Printf.sprintf "g%d" st.gates_made in
  let i = Design.add_instance st.d ~name ~cell in
  let out_net = Design.add_net st.d (name ^ "_y") in
  List.iteri (fun pin net -> Design.connect st.d ~inst:i.Design.id ~pin ~net) input_nets;
  Design.connect st.d ~inst:i.Design.id ~pin:(Cell.output_pin cell) ~net:out_net.Design.nid;
  st.gates_made <- st.gates_made + 1;
  out_net.Design.nid

let body_kinds = [| Cell.And2; Cell.Or2; Cell.Nand2; Cell.Nor2; Cell.Xor2; Cell.Mux2 |]

let decoder_block st ~bus_nets ~body_gates ~ff_sink =
  (* the comparator: per-bit match against a random code, then an AND tree *)
  let code = Array.map (fun _ -> Rng.bool st.rng) (Array.of_list bus_nets) in
  let terms =
    List.mapi
      (fun i b -> if code.(i) then b else new_gate_nets st Cell.Inv [ b ])
      bus_nets
  in
  let rec reduce = function
    | [] ->
      raise
        (Generation_error
           (Printf.sprintf
              "decoder comparator over an empty bus (%d body gates requested, %d gates made)"
              body_gates st.gates_made))
    | [ last ] -> last
    | a :: b :: rest -> reduce (rest @ [ new_gate_nets st Cell.And2 [ a; b ] ])
  in
  let eq = reduce terms in
  (* gated seeds: free side inputs come from the global level-0 pool *)
  let seed () =
    let idx = pick_input st ~max_level:2 ~avoid:[] in
    mark_used st idx;
    new_gate_nets st Cell.And2 [ eq; (Vec.get st.pool idx).pnet ]
  in
  let local = ref (List.init 4 (fun _ -> seed ())) in
  let local_uses : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let use n = Hashtbl.replace local_uses n (1 + Option.value ~default:0 (Hashtbl.find_opt local_uses n)) in
  let pick_local () =
    let arr = Array.of_list !local in
    arr.(Rng.int st.rng (Array.length arr))
  in
  for _ = 1 to body_gates do
    let kind = Rng.choose st.rng body_kinds in
    let arity = Cell.num_inputs kind in
    let ins =
      List.init arity (fun k ->
          if k = 0 || Rng.float st.rng 1.0 < 0.85 then pick_local ()
          else begin
            (* an occasional ungated side input, as real gated logic has *)
            let idx = pick_input st ~max_level:3 ~avoid:[] in
            mark_used st idx;
            (Vec.get st.pool idx).pnet
          end)
    in
    let ins =
      (* avoid degenerate gates on one repeated net *)
      match ins with
      | [ a; b ] when a = b -> [ a; pick_local () ]
      | ins -> ins
    in
    List.iter use ins;
    local := new_gate_nets st kind ins :: !local
  done;
  (* everything unconsumed inside the block funnels into one XOR and out to
     a flip-flop, so the whole body is observable yet stays code-gated *)
  let leftovers = List.filter (fun n -> not (Hashtbl.mem local_uses n)) !local in
  (* balanced XOR reduction: a linear fold here would fabricate an
     implausibly deep chain that dominates every critical path *)
  let rec reduce_xor = function
    | [] -> pick_local ()
    | [ n ] -> n
    | n :: m :: rest -> reduce_xor (rest @ [ new_gate_nets st Cell.Xor2 [ n; m ] ])
  in
  ff_sink (reduce_xor leftovers)

(* Reduce leftovers in small XOR trees so every signal is observable
   somewhere, like the parity/observation logic real designs hang off
   spares. Small trees matter: one giant XOR observer would force ATPG to
   justify hundreds of unrelated cones per propagation. Returns one net per
   tree, each destined for its own spare output port. *)
let mop_up_chunk = 8

let mop_up st =
  let leftovers = ref [] in
  Vec.iteri
    (fun idx e -> if e.uses = 0 && e.plevel > 0 then leftovers := idx :: !leftovers)
    st.pool;
  let rec reduce = function
    | [] ->
      raise
        (Generation_error
           (Printf.sprintf "mop-up XOR tree over an empty chunk (pool size %d)"
              (Vec.length st.pool)))
    | [ last ] -> last
    | a :: b :: rest -> reduce (rest @ [ new_gate st Cell.Xor2 [ a; b ] ])
  in
  let rec chunks acc = function
    | [] -> List.rev acc
    | rest ->
      let chunk = List.filteri (fun i _ -> i < mop_up_chunk) rest in
      let rest' = List.filteri (fun i _ -> i >= mop_up_chunk) rest in
      let idx = reduce chunk in
      mark_used st idx;
      chunks ((Vec.get st.pool idx).pnet :: acc) rest'
  in
  chunks [] !leftovers

(* Synthesis tools bound net fanout by duplicating drivers or inserting
   buffers; without this the popular nets end up with loads far outside the
   library's characterised range and the whole design reads as slow nodes.
   Nets above [max_fanout] get their sinks split into buffered groups.
   Clock nets are left alone (clock-tree synthesis owns them). *)
let max_fanout = 12
let buffer_group = 8

let fix_fanout st =
  let d = st.d in
  let clock_nets =
    Array.to_list (Array.map (fun (dom : Design.domain) -> dom.Design.clock_net) d.Design.domains)
  in
  let buf = Stdcell.Library.find d.Design.lib Cell.Buf ~drive:2 in
  let to_fix = ref [] in
  Design.iter_nets d (fun n ->
      if List.length n.Design.sinks > max_fanout && not (List.mem n.Design.nid clock_nets)
      then to_fix := n.Design.nid :: !to_fix);
  List.iter
    (fun nid ->
      let n = Design.net d nid in
      let sinks = n.Design.sinks in
      let rec groups acc current count = function
        | [] -> if current = [] then acc else List.rev current :: acc
        | s :: rest ->
          if count = buffer_group then groups (List.rev current :: acc) [ s ] 1 rest
          else groups acc (s :: current) (count + 1) rest
      in
      match groups [] [] 0 sinks with
      | [] | [ _ ] -> ()
      | _keep :: buffered ->
        List.iter
          (fun group ->
            let name = Printf.sprintf "fbuf%d" st.gates_made in
            let b = Design.add_instance d ~name ~cell:buf in
            st.gates_made <- st.gates_made + 1;
            let out = Design.add_net d (name ^ "_y") in
            List.iter
              (fun (iid, pin) ->
                Design.disconnect d ~inst:iid ~pin;
                Design.connect d ~inst:iid ~pin ~net:out.Design.nid)
              group;
            Design.connect d ~inst:b.Design.id ~pin:0 ~net:nid;
            Design.connect d ~inst:b.Design.id ~pin:1 ~net:out.Design.nid)
          buffered)
    !to_fix

let generate (p : Profile.t) =
  Profile.validate p;
  let d = Design.create p.Profile.name in
  let st =
    { d;
      rng = Rng.create p.Profile.seed;
      pool = Vec.create ();
      unused = Queue.create ();
      gates_made = 0 }
  in
  (* clock domains *)
  let domain_ids =
    List.map
      (fun (ds : Profile.domain_spec) ->
        let port = Design.add_port d ("clk_" ^ ds.Profile.dname) Design.In in
        Design.add_domain d ~name:ds.Profile.dname ~period_ps:ds.Profile.period_ps
          ~clock_net:port.Design.pnet)
      p.Profile.domains
  in
  (* primary inputs seed the pool at level 0 *)
  for k = 0 to p.Profile.num_pis - 1 do
    let port = Design.add_port d (Printf.sprintf "pi%d" k) Design.In in
    add_pool st ~net:port.Design.pnet ~level:0
  done;
  (* flip-flops, domains assigned by share *)
  let dff = Stdcell.Library.min_drive_strength d.Design.lib Cell.Dff in
  let shares = List.map (fun (ds : Profile.domain_spec) -> ds.Profile.ff_share) p.Profile.domains in
  let pick_domain k =
    let x = float_of_int k /. float_of_int (max 1 p.Profile.num_ffs) in
    let rec walk acc doms shs =
      match (doms, shs) with
      | [ dom ], _ -> dom
      | dom :: _, s :: _ when x < acc +. s -> dom
      | _ :: doms', s :: shs' -> walk (acc +. s) doms' shs'
      | _ ->
        raise
          (Generation_error
             (Printf.sprintf
                "flip-flop %d: %d clock domains but %d FF shares (position %.3f, share prefix %.3f)"
                k (List.length domain_ids) (List.length shares) x acc))
    in
    walk 0.0 domain_ids shares
  in
  let ff_records = ref [] in
  for k = 0 to p.Profile.num_ffs - 1 do
    let dom = pick_domain k in
    let i = Design.add_instance d ~name:(Printf.sprintf "ff%d" k) ~cell:dff in
    i.Design.domain <- dom;
    let clock_net = d.Design.domains.(dom).Design.clock_net in
    Design.connect d ~inst:i.Design.id ~pin:1 ~net:clock_net;
    let q = Design.add_net d (Printf.sprintf "ff%d_q" k) in
    Design.connect d ~inst:i.Design.id ~pin:2 ~net:q.Design.nid;
    add_pool st ~net:q.Design.nid ~level:0;
    let pool_idx = Vec.length st.pool - 1 in
    ff_records := (i.Design.id, 0, pool_idx) :: !ff_records
  done;
  let ff_records = ref (List.rev !ff_records) in
  (* decoder-gated hard cones first; their outputs claim FF D pins *)
  let hard_budget = int_of_float (p.Profile.hard_fraction *. float_of_int p.Profile.num_gates) in
  let blocks = p.Profile.hard_blocks in
  if blocks > 0 && hard_budget > 0 then begin
    let body_gates =
      max 8 ((hard_budget / blocks) - (p.Profile.bus_width * 3 / 2) - 5)
    in
    let bus = ref [] in
    for b = 0 to blocks - 1 do
      if b mod p.Profile.blocks_per_bus = 0 then begin
        (* a fresh bus of distinct level-0 nets, shared by the next group *)
        let picked = ref [] in
        for _ = 1 to p.Profile.bus_width do
          let idx = pick_input st ~max_level:1 ~avoid:!picked in
          mark_used st idx;
          picked := idx :: !picked
        done;
        bus := List.map (fun idx -> (Vec.get st.pool idx).pnet) !picked
      end;
      let ff_sink out =
        match !ff_records with
        | (iid, pin, _) :: rest ->
          ff_records := rest;
          Design.connect d ~inst:iid ~pin ~net:out
        | [] ->
          let port = Design.add_port d (Printf.sprintf "po_hard%d" b) Design.Out in
          Design.connect_out_port d ~port:port.Design.pid ~net:out
      in
      decoder_block st ~bus_nets:!bus ~body_gates ~ff_sink
    done
  end;
  (* regular logic in modules, leaving room for the mop-up trees *)
  let mop_up_reserve = 2 + (Vec.length st.pool / 64) in
  let module_size = 900 + Rng.int st.rng 500 in
  while st.gates_made < p.Profile.num_gates - mop_up_reserve do
    let remaining = p.Profile.num_gates - mop_up_reserve - st.gates_made in
    if remaining < 64 then
      regular_gate st ~texture:p.Profile.texture ~depth_target:p.Profile.depth_target
    else begin
      let size = min remaining module_size in
      let boundary_width = 8 + Rng.int st.rng 8 in
      let gates_per_ff =
        Float.max 2.0 (float_of_int p.Profile.num_gates /. float_of_int (max 1 p.Profile.num_ffs))
      in
      let adopt_count = int_of_float (float_of_int size /. gates_per_ff) in
      let rec take n acc =
        if n = 0 then List.rev acc
        else
          match !ff_records with
          | [] -> List.rev acc
          | r :: rest ->
            ff_records := rest;
            take (n - 1) (r :: acc)
      in
      let adopted_ffs = take adopt_count [] in
      module_block st ~texture:p.Profile.texture ~depth_target:p.Profile.depth_target
        ~size ~boundary_width ~adopted_ffs
    end
  done;
  (* remaining flip-flops (not adopted by any module): level-uniform D *)
  List.iter
    (fun (iid, pin, _) ->
      let idx = pick_observed_net st in
      mark_used st idx;
      Design.connect d ~inst:iid ~pin ~net:(Vec.get st.pool idx).pnet)
    !ff_records;
  (* primary outputs *)
  for k = 0 to p.Profile.num_pos - 1 do
    let port = Design.add_port d (Printf.sprintf "po%d" k) Design.Out in
    let idx = pick_observed_net st in
    mark_used st idx;
    Design.connect_out_port d ~port:port.Design.pid ~net:(Vec.get st.pool idx).pnet
  done;
  (* everything still unobserved funnels into spare observation outputs *)
  List.iteri
    (fun k net ->
      let port = Design.add_port d (Printf.sprintf "po_spare%d" k) Design.Out in
      Design.connect_out_port d ~port:port.Design.pid ~net)
    (mop_up st);
  fix_fanout st;
  d
