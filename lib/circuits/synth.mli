(** Seeded synthetic netlist generation from a {!Profile.t}.

    The generator builds a DAG of mapped standard cells (minimum drive
    strength everywhere, as the paper maps s38417): primary inputs and
    flip-flop outputs seed a net pool, combinational gates draw inputs from
    the pool with a locality bias that develops realistic logic depth, and a
    configurable share of the budget goes to wide comparators and long
    AND/OR chains — the random-pattern-resistant structures whose faults
    make test point insertion worthwhile. Flip-flops are plain DFFs; scan
    and test points are inserted later by the [scan] and [tpi] passes, as in
    the paper's flow. *)

exception Generation_error of string
(** An internal generator invariant broke (empty reduction tree, exhausted
    domain shares, ...); the message carries the generator state at the
    point of failure. Distinct from [Invalid_argument], which
    {!Profile.validate} raises for inconsistent profiles before generation
    starts. *)

val generate : Profile.t -> Netlist.Design.t
(** Deterministic in [profile.seed]. The result passes
    [Netlist.Check.assert_clean] and is acyclic. Raises [Invalid_argument]
    on an inconsistent profile ({!Profile.validate}) and
    {!Generation_error} if an internal invariant breaks mid-generation. *)
