module Design = Netlist.Design
module Cell = Stdcell.Cell

let port_net (d : Design.t) name =
  match Design.find_port d name with
  | Some p -> p.Design.pnet
  | None -> (Design.add_port d name Design.In).Design.pnet

let test_se_net d = port_net d "test_se"

let test_tr_net d = port_net d "test_tr"

let tie_low_net (d : Design.t) =
  let name = "scan_tie0" in
  let existing = ref (-1) in
  Design.iter_insts d (fun i ->
      if i.Design.iname = name then existing := Design.net_of_output d i);
  if !existing >= 0 then !existing
  else begin
    let cell = Stdcell.Library.min_drive_strength d.Design.lib Cell.Tielo in
    let i = Design.add_instance d ~name ~cell in
    let n = Design.add_net d (name ^ "_y") in
    Design.connect d ~inst:i.Design.id ~pin:0 ~net:n.Design.nid;
    n.Design.nid
  end

let insert_point ?clock_net (d : Design.t) ~net ~index =
  (match (Design.net d net).Design.driver with
   | Design.No_driver -> invalid_arg "Insert.insert_point: undriven net"
   | Design.Port_in _ | Design.Cell_pin _ -> ());
  let dom = Clocking.domain_for d ~net in
  let se = test_se_net d
  and tr = test_tr_net d
  and ti = tie_low_net d in
  let name = Printf.sprintf "tp%d" index in
  let sinks_net = Design.split_net d ~net ~name:((Design.net d net).Design.nname ^ "_tp") in
  let cell = Stdcell.Library.min_drive_strength d.Design.lib Cell.Tsff in
  let i = Design.add_instance d ~name ~cell in
  i.Design.domain <- dom;
  Design.connect d ~inst:i.Design.id ~pin:0 ~net;                                  (* D  *)
  Design.connect d ~inst:i.Design.id ~pin:1 ~net:ti;                               (* TI *)
  Design.connect d ~inst:i.Design.id ~pin:2 ~net:se;                               (* TE *)
  Design.connect d ~inst:i.Design.id ~pin:3 ~net:tr;                               (* TR *)
  let ck =
    match clock_net with Some n -> n | None -> d.Design.domains.(dom).Design.clock_net
  in
  Design.connect d ~inst:i.Design.id ~pin:4 ~net:ck;
  Design.connect d ~inst:i.Design.id ~pin:5 ~net:sinks_net.Design.nid;             (* Q  *)
  i
