(** Netlist surgery for test point insertion (§3.1 step 3).

    Inserting a point at net [n] splits it: the original driver keeps [n],
    a new TSFF reads [n] on its [D] pin and drives the former sinks through
    a fresh net. Global test controls [test_se] (TE) and [test_tr] (TR) are
    created as ports on first use; [TI] is parked on a shared tie-low cell
    until scan stitching rewires it into a chain. *)

val test_se_net : Netlist.Design.t -> int
(** Net of the global scan-enable port, created on demand. *)

val test_tr_net : Netlist.Design.t -> int

val tie_low_net : Netlist.Design.t -> int
(** Output net of the shared parking tie cell, created on demand. *)

val insert_point :
  ?clock_net:int -> Netlist.Design.t -> net:int -> index:int -> Netlist.Design.instance
(** [insert_point d ~net ~index] splices TSFF [tp<index>] into [net] and
    returns it; the clock comes from {!Clocking.domain_for}. Raises
    [Invalid_argument] if [net] has no driver (nothing to observe).

    [clock_net] overrides the CK connection (default: the domain's root
    clock net). Post-CTS ECO insertion passes a leaf clock-buffer net so
    the clock tree above it — and the latency of every other sink — is
    untouched, keeping the re-timing cone bounded. *)
