(** The synthetic 130 nm-class standard-cell library.

    Substitutes for the Philips 130 nm CMOS library used in the paper (see
    DESIGN.md): every functional kind is characterised at drive strengths
    X1/X2/X4/X8 with NLDM delay and slew tables, realistic areas and pin
    capacitances, so that area and delay *ratios* between layouts are
    meaningful. *)

type t

val default : t
(** The library singleton (construction is pure and deterministic). *)

val row_height : float
(** um. *)

val find : t -> Cell.kind -> drive:int -> Cell.t
(** Raises [Not_found] if the kind/drive combination is not characterised. *)

val find_opt : t -> Cell.kind -> drive:int -> Cell.t option

val by_name : t -> string -> Cell.t option

val cells : t -> Cell.t list
(** All characterised cells. *)

val drives : Cell.kind -> int list
(** Drive strengths available for a kind. *)

val upsize : t -> Cell.t -> Cell.t option
(** The same kind at the next larger drive, if characterised; used to
    resolve slow nodes (which the paper's experiments deliberately do not
    do — see §4.4 — but the ablation benches exercise it). *)

val downsize : t -> Cell.t -> Cell.t option
(** The same kind at the next smaller drive, if characterised; [None] at
    minimum drive. The area-recovery move of {!Flow.Repair} — shrink
    cells with timing to spare — and the exact inverse of {!upsize}, which
    is what lets a trial upsize be reverted in place. *)

val fillers : t -> Cell.t list
(** Filler cells in decreasing width order, for gap filling (step 4). *)

val input_names : ?arity:int -> Cell.kind -> string list
(** Input pin names for a cell of the given kind: ["A"], ["B"], ... then
    ["AA"], ["AB"], ... for arbitrary arity ([Mux2] keeps its select pin
    ["S"]). [arity] overrides the kind's natural input count, for wide-gate
    variants of the n-ary kinds. *)

val min_drive_strength : t -> Cell.kind -> Cell.t
(** The X1 variant, used when mapping generated netlists (§4.1: s38417 is
    mapped with minimum drive strength everywhere). *)
