type t = {
  table : (string, Cell.t) Hashtbl.t;
  order : Cell.t list;
}

let row_height = Cell.row_height_um

let slew_axis = [| 5.0; 30.0; 80.0; 200.0; 600.0; 1500.0 |]

let load_axis_x1 = [| 0.0; 3.0; 10.0; 25.0; 60.0; 140.0 |]

(* Per-kind characterisation at X1: intrinsic delay d0 (ps), output
   resistance slope r (ps/fF), input pin capacitance (fF), cell width (um).
   Values are in normal 130 nm ranges; see DESIGN.md on why only ratios
   matter for the reproduction. *)
let comb_params =
  [ (Cell.Inv, (22.0, 5.5, 1.8, 1.1));
    (Cell.Buf, (45.0, 4.5, 1.9, 1.5));
    (Cell.Clkbuf, (40.0, 3.5, 2.2, 1.8));
    (Cell.Nand2, (32.0, 6.0, 2.0, 1.5));
    (Cell.Nand3, (42.0, 6.8, 2.2, 1.9));
    (Cell.Nor2, (36.0, 7.2, 2.0, 1.5));
    (Cell.Nor3, (50.0, 8.4, 2.2, 1.9));
    (Cell.And2, (55.0, 4.8, 1.9, 1.9));
    (Cell.Or2, (60.0, 5.0, 1.9, 1.9));
    (Cell.Xor2, (75.0, 6.5, 3.2, 2.6));
    (Cell.Xnor2, (78.0, 6.5, 3.2, 2.6));
    (Cell.Aoi21, (48.0, 7.5, 2.1, 1.9));
    (Cell.Oai21, (46.0, 7.3, 2.1, 1.9));
    (Cell.Mux2, (65.0, 6.0, 2.4, 2.6)) ]

let log2f x = log x /. log 2.0

(* Drive scaling: stronger output stage -> proportionally lower resistance,
   slightly higher intrinsic delay (self loading), larger inputs and area. *)
let scale_d0 d0 drive = d0 *. (1.0 +. (0.05 *. log2f (float_of_int drive)))
let scale_r r drive = r /. float_of_int drive
let scale_cap cap drive = cap *. (0.5 +. (0.5 *. float_of_int drive))
let scale_width w drive = w *. (0.7 +. (0.3 *. float_of_int drive))
let scale_loads drive = Array.map (fun l -> l *. float_of_int drive) load_axis_x1

let delay_lut ~d0 ~r ~drive =
  Lut.of_model ~slews:slew_axis ~loads:(scale_loads drive)
    ~f:(fun ~slew ~load -> d0 +. (0.15 *. slew) +. (r *. load))

let slew_lut ~d0 ~r ~drive =
  Lut.of_model ~slews:slew_axis ~loads:(scale_loads drive)
    ~f:(fun ~slew ~load -> (0.6 *. d0) +. 15.0 +. (2.0 *. r *. load) +. (0.1 *. slew))

let cell_name kind drive = Printf.sprintf "%sX%d" (Cell.kind_name kind) drive

(* spreadsheet-style pin names: A..Z, then AA, AB, ... -- the flow's fault
   simulator deliberately supports arbitrary gate arity, so pin naming must
   too (wide gates show up in handcrafted test models and future mapped
   netlists) *)
let rec input_name i =
  let last = String.make 1 (Char.chr (Char.code 'A' + (i mod 26))) in
  if i < 26 then last else input_name ((i / 26) - 1) ^ last

let input_names ?arity kind =
  let n = match arity with Some n -> n | None -> Cell.num_inputs kind in
  if n < 0 then invalid_arg "Library.input_names: negative arity";
  match (kind, n) with
  | Cell.Mux2, 3 -> [ "A"; "B"; "S" ]
  | _ -> List.init n input_name

(* Input-stage asymmetry: pin A sits closest to the output node of the
   transistor stack and switches fastest; every later input pays a small
   extra stack delay. Real libraries characterise each arc separately, and
   the asymmetry is what gives commutative-pin swapping (Flow.Repair) a
   lever — moving the latest-arriving signal onto the fastest pin shortens
   the worst arc. Single-input kinds are unaffected (factor 1 at pin 0). *)
let pin_d0_factor i = 1.0 +. (0.05 *. float_of_int i)

let make_comb kind drive =
  let d0, r, cap, width = List.assoc kind comb_params in
  let d0 = scale_d0 d0 drive
  and r = scale_r r drive
  and cap = scale_cap cap drive in
  let names = input_names kind in
  let pin_cap name = if name = "S" then cap *. 1.2 else cap in
  let inputs = List.map (fun name -> Pin.input name ~cap:(pin_cap name)) names in
  let pins = Array.of_list (inputs @ [ Pin.output "Y" ]) in
  let out = Array.length pins - 1 in
  let arc i : Cell.arc =
    let d0 = d0 *. pin_d0_factor i in
    { from_pin = i; to_pin = out;
      delay = delay_lut ~d0 ~r ~drive;
      out_slew = slew_lut ~d0 ~r ~drive;
      test_only = false }
  in
  { Cell.name = cell_name kind drive;
    kind;
    drive;
    width = scale_width width drive;
    pins;
    arcs = Array.init (List.length names) arc;
    setup = 0.0;
    hold = 0.0;
    sequential = false }

let make_tie kind =
  { Cell.name = cell_name kind 1;
    kind;
    drive = 1;
    width = 0.8;
    pins = [| Pin.output "Y" |];
    arcs = [||];
    setup = 0.0;
    hold = 0.0;
    sequential = false }

let make_filler width suffix =
  { Cell.name = Printf.sprintf "FILL%d" suffix;
    kind = Cell.Filler;
    drive = 1;
    width;
    pins = [||];
    arcs = [||];
    setup = 0.0;
    hold = 0.0;
    sequential = false }

let make_dff drive =
  let d0 = scale_d0 160.0 drive and r = scale_r 5.5 drive in
  let pins =
    [| Pin.input "D" ~cap:(scale_cap 2.2 drive);
       Pin.input ~role:Pin.Clock "CK" ~cap:1.6;
       Pin.output "Q" |]
  in
  { Cell.name = cell_name Cell.Dff drive;
    kind = Cell.Dff;
    drive;
    width = scale_width 6.5 drive;
    pins;
    arcs =
      [| { from_pin = 1; to_pin = 2;
           delay = delay_lut ~d0 ~r ~drive;
           out_slew = slew_lut ~d0 ~r ~drive;
           test_only = false } |];
    setup = 95.0;
    hold = 15.0;
    sequential = true }

let make_sdff drive =
  let d0 = scale_d0 175.0 drive and r = scale_r 5.8 drive in
  let pins =
    [| Pin.input "D" ~cap:(scale_cap 2.2 drive);
       Pin.input ~role:Pin.Scan_in "TI" ~cap:2.0;
       Pin.input ~role:Pin.Scan_enable "TE" ~cap:1.5;
       Pin.input ~role:Pin.Clock "CK" ~cap:1.6;
       Pin.output "Q" |]
  in
  { Cell.name = cell_name Cell.Sdff drive;
    kind = Cell.Sdff;
    drive;
    width = scale_width 8.0 drive;
    pins;
    arcs =
      [| { from_pin = 3; to_pin = 4;
           delay = delay_lut ~d0 ~r ~drive;
           out_slew = slew_lut ~d0 ~r ~drive;
           test_only = false } |];
    setup = 105.0;
    hold = 15.0;
    sequential = true }

(* The TSFF of Fig. 1. In application mode (TE=TR=0) the cell is transparent
   from D to Q through the input and output multiplexers, hence the
   functional D->Q arc (two mux delays). The flip-flop output reaches Q only
   in test mode, so CK->Q is a test-only arc; likewise the TI->Q flush
   path. *)
let make_tsff drive =
  let r = scale_r 6.0 drive in
  let app_d0 = scale_d0 130.0 drive in
  let ckq_d0 = scale_d0 185.0 drive in
  let pins =
    [| Pin.input "D" ~cap:(scale_cap 2.2 drive);
       Pin.input ~role:Pin.Scan_in "TI" ~cap:2.0;
       Pin.input ~role:Pin.Scan_enable "TE" ~cap:1.5;
       Pin.input ~role:Pin.Test_reconf "TR" ~cap:1.5;
       Pin.input ~role:Pin.Clock "CK" ~cap:1.6;
       Pin.output "Q" |]
  in
  let arc ~from_pin ~d0 ~test_only : Cell.arc =
    { from_pin; to_pin = 5;
      delay = delay_lut ~d0 ~r ~drive;
      out_slew = slew_lut ~d0 ~r ~drive;
      test_only }
  in
  { Cell.name = cell_name Cell.Tsff drive;
    kind = Cell.Tsff;
    drive;
    width = scale_width 10.5 drive;
    pins;
    arcs =
      [| arc ~from_pin:0 ~d0:app_d0 ~test_only:false;
         arc ~from_pin:4 ~d0:ckq_d0 ~test_only:true;
         arc ~from_pin:1 ~d0:(app_d0 +. 5.0) ~test_only:true |];
    setup = 110.0;
    hold = 15.0;
    sequential = true }

let drives = function
  | Cell.Clkbuf -> [ 2; 4; 8 ]
  | Cell.Dff | Cell.Sdff | Cell.Tsff -> [ 1; 2 ]
  | Cell.Tiehi | Cell.Tielo | Cell.Filler -> [ 1 ]
  | _ -> [ 1; 2; 4; 8 ]

let build () =
  let cells = ref [] in
  let add c = cells := c :: !cells in
  List.iter
    (fun (kind, _) -> List.iter (fun d -> add (make_comb kind d)) (drives kind))
    comb_params;
  add (make_tie Cell.Tiehi);
  add (make_tie Cell.Tielo);
  List.iter (fun d -> add (make_dff d)) (drives Cell.Dff);
  List.iter (fun d -> add (make_sdff d)) (drives Cell.Sdff);
  List.iter (fun d -> add (make_tsff d)) (drives Cell.Tsff);
  add (make_filler 0.4 1);
  add (make_filler 0.8 2);
  add (make_filler 1.6 4);
  let order = List.rev !cells in
  let table = Hashtbl.create 64 in
  List.iter (fun (c : Cell.t) -> Hashtbl.replace table c.name c) order;
  { table; order }

let default = build ()

let by_name t name = Hashtbl.find_opt t.table name

let find_opt t kind ~drive =
  if kind = Cell.Filler then
    by_name t (Printf.sprintf "FILL%d" drive)
  else by_name t (cell_name kind drive)

let find t kind ~drive =
  match find_opt t kind ~drive with
  | Some c -> c
  | None -> raise Not_found

let cells t = t.order

let upsize t (c : Cell.t) =
  let rec next = function
    | [] | [ _ ] -> None
    | d :: (d' :: _ as rest) -> if d = c.drive then Some d' else next rest
  in
  match next (drives c.kind) with
  | None -> None
  | Some d -> find_opt t c.kind ~drive:d

let downsize t (c : Cell.t) =
  let rec prev = function
    | [] | [ _ ] -> None
    | d :: (d' :: _ as rest) -> if d' = c.drive then Some d else prev rest
  in
  match prev (drives c.kind) with
  | None -> None
  | Some d -> find_opt t c.kind ~drive:d

let fillers t =
  let all =
    List.filter (fun (c : Cell.t) -> c.kind = Cell.Filler) t.order
  in
  List.sort (fun (a : Cell.t) (b : Cell.t) -> compare b.width a.width) all

let min_drive_strength t kind =
  match drives kind with
  | [] -> raise Not_found
  | d :: _ -> find t kind ~drive:d
