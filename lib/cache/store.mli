(** Content-addressed stage cache.

    A byte store keyed by digest strings, with an in-memory LRU tier and an
    optional on-disk tier, shared by every level of a sweep. Keys are
    derived from structural fingerprints of a stage's inputs (see
    {!Flow.Pipeline} and DESIGN.md §6.2), so a lookup can only ever return
    bytes produced by the identical computation — the cache accelerates
    repeated sweeps without touching the §6.1 bit-identity contract.

    {b Domains.} One store may be shared by all domains of a {!Par.Pool}
    fan-out: every operation holds an internal mutex, and concurrent
    requests for the same missing key are single-flighted — exactly one
    caller computes while the rest block and then take the hit. Hit/miss
    totals are therefore identical at any [-j], which keeps the [cache.*]
    counters deterministic.

    {b Disk tier.} Entries are written atomically (temp file + rename) as
    a magic header, an MD5 digest of the payload and the payload itself;
    the digest is verified before a disk entry is returned, so truncated
    or corrupted files fall back to a recompute (counted in
    [cache.disk_corrupt]) instead of feeding [Marshal] unchecked bytes.

    {b Processes.} A disk directory may be shared by several processes
    (e.g. a serving daemon next to one-shot CLI runs). {!find_or_compute}
    extends single-flight across them with an exclusive [fcntl] lock on
    a per-key ["<key>.lock"] file: the computing process publishes the
    entry before releasing the lock, and a process that loses the race
    finds the entry on its post-lock re-check instead of recomputing
    (counted as a disk hit). {!create} sweeps debris left by crashed
    writers — temp files whose recorded owner PID is dead — while leaving
    live writers' files alone.

    Effectiveness is observable in the metrics registry: [cache.mem_hits],
    [cache.disk_hits], [cache.misses], [cache.stores], [cache.evictions],
    [cache.disk_corrupt], [cache.bytes_written], [cache.bytes_read]. *)

type t

val create : ?mem_capacity:int -> ?dir:string -> unit -> t
(** [mem_capacity] bounds the in-memory tier in payload bytes (default
    256 MiB); least-recently-used entries are evicted past it. [dir]
    enables the disk tier (the directory is created if missing); evicted
    entries remain readable from disk and survive across processes. *)

val key : string list -> string
(** Digest a list of key parts into a hex cache key. Parts are
    length-prefixed before hashing, so no two distinct part lists
    collide by concatenation. *)

val find : t -> string -> string option
(** Memory tier first (refreshing recency), then disk (verifying the
    payload digest and promoting the entry into memory). *)

val add : t -> string -> string -> unit
(** Insert into both tiers. Adding an existing key is a no-op. *)

val find_or_compute : t -> key:string -> (unit -> string) -> string * bool
(** [find_or_compute t ~key f] returns [(value, hit)]. On a miss, [f]
    runs outside the store lock and its result is inserted; concurrent
    callers of the same missing key wait for the computing one instead
    of duplicating the work. If [f] raises, nothing is stored and every
    waiter re-races the computation. *)

val memo : t -> key:string -> (unit -> 'a) -> 'a
(** [find_or_compute] with [Marshal] round-tripping: always returns a
    structurally fresh copy, safe for callers that mutate the result.
    The caller is responsible for keying so that the stored type is
    unambiguous (include a version token in the key parts). *)

val mem_entries : t -> int
val mem_bytes : t -> int
(** Occupancy of the memory tier, for tests and reports. *)
