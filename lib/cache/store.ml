let m_mem_hits = Obs.Metrics.counter "cache.mem_hits"
let m_disk_hits = Obs.Metrics.counter "cache.disk_hits"
let m_misses = Obs.Metrics.counter "cache.misses"
let m_stores = Obs.Metrics.counter "cache.stores"
let m_evictions = Obs.Metrics.counter "cache.evictions"
let m_disk_corrupt = Obs.Metrics.counter "cache.disk_corrupt"
let m_bytes_written = Obs.Metrics.counter "cache.bytes_written"
let m_bytes_read = Obs.Metrics.counter "cache.bytes_read"

(* doubly-linked LRU list over the memory tier; [head] is most recent *)
type node = {
  n_key : string;
  n_value : string;
  mutable n_prev : node option;  (* towards head *)
  mutable n_next : node option;  (* towards tail *)
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;                  (* single-flight wakeups *)
  table : (string, node) Hashtbl.t;
  inflight : (string, unit) Hashtbl.t; (* keys being computed right now *)
  mutable head : node option;
  mutable tail : node option;
  mutable bytes : int;
  capacity : int;
  dir : string option;
}

let default_capacity = 256 * 1024 * 1024

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* "<key>.tmp-<pid>-<seq>" -> Some pid *)
let tmp_owner name =
  let marker = ".tmp-" in
  let mlen = String.length marker in
  let n = String.length name in
  let rec last_at i best =
    if i + mlen > n then best
    else
      last_at (i + 1) (if String.sub name i mlen = marker then Some i else best)
  in
  match last_at 0 None with
  | None -> None
  | Some i ->
    (match
       Scanf.sscanf (String.sub name (i + mlen) (n - i - mlen)) "%d-%d%!"
         (fun pid _seq -> pid)
     with
     | pid -> Some pid
     | exception _ -> None)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception _ -> true (* EPERM and friends: someone else's live process *)

(* a temp file whose writer is gone is debris from a crash: it will never
   be renamed into place and lookups skip it, so it only wastes disk.
   Files of live writers in other processes are left strictly alone. *)
let clean_stale_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        match tmp_owner name with
        | Some pid when pid = Unix.getpid () || not (pid_alive pid) ->
          (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        | _ -> ())
      entries

let create ?(mem_capacity = default_capacity) ?dir () =
  Option.iter mkdir_p dir;
  Option.iter clean_stale_tmp dir;
  { mutex = Mutex.create ();
    cond = Condition.create ();
    table = Hashtbl.create 64;
    inflight = Hashtbl.create 8;
    head = None;
    tail = None;
    bytes = 0;
    capacity = mem_capacity;
    dir }

let key parts =
  let buf = Buffer.create 128 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---- LRU list plumbing (all under the mutex) ---- *)

let unlink t n =
  (match n.n_prev with Some p -> p.n_next <- n.n_next | None -> t.head <- n.n_next);
  (match n.n_next with Some s -> s.n_prev <- n.n_prev | None -> t.tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front t n =
  n.n_next <- t.head;
  (match t.head with Some h -> h.n_prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let evict_to_capacity t =
  while t.bytes > t.capacity && t.tail <> None do
    match t.tail with
    | None -> ()
    | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.n_key;
      t.bytes <- t.bytes - String.length n.n_value;
      Obs.Metrics.incr m_evictions
  done

let mem_insert t key value =
  if not (Hashtbl.mem t.table key) then begin
    let size = String.length value in
    if size <= t.capacity then begin
      let n = { n_key = key; n_value = value; n_prev = None; n_next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      t.bytes <- t.bytes + size;
      evict_to_capacity t
    end
  end

(* ---- disk tier ---- *)

let magic = "TPICACHE1\n"

let path_of dir key = Filename.concat dir key

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* verify magic + payload digest before handing bytes to a caller (which
   will typically Marshal.from_string them -- unchecked input could crash
   the process, not just raise) *)
let disk_read t key =
  match t.dir with
  | None -> None
  | Some dir ->
    let path = path_of dir key in
    if not (Sys.file_exists path) then None
    else begin
      match read_file path with
      | exception _ ->
        Obs.Metrics.incr m_disk_corrupt;
        None
      | raw ->
        let header = String.length magic + 16 in
        if
          String.length raw >= header
          && String.sub raw 0 (String.length magic) = magic
          &&
          let payload = String.sub raw header (String.length raw - header) in
          Digest.string payload = String.sub raw (String.length magic) 16
        then begin
          let payload = String.sub raw header (String.length raw - header) in
          Obs.Metrics.add m_bytes_read (String.length payload);
          Some payload
        end
        else begin
          Obs.Metrics.incr m_disk_corrupt;
          None
        end
    end

let tmp_seq = Atomic.make 0

(* atomic publish: a reader never sees a partially written entry, and a
   crashed writer leaves only a .tmp file behind (ignored by lookups) *)
let disk_write t key value =
  match t.dir with
  | None -> ()
  | Some dir ->
    (* written unconditionally: an add only happens after a disk miss, so
       an existing file here is a corrupted entry being healed *)
    let path = path_of dir key in
    let tmp =
      Printf.sprintf "%s.tmp-%d-%d" path (Unix.getpid ()) (Atomic.fetch_and_add tmp_seq 1)
    in
    (match
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           output_string oc magic;
           output_string oc (Digest.string value);
           output_string oc value);
       Sys.rename tmp path
     with
     | () -> Obs.Metrics.add m_bytes_written (String.length value)
     | exception _ -> ( (* best effort: a full disk degrades to memory-only *)
       try Sys.remove tmp with _ -> ()))

(* ---- lookups ---- *)

let find_unlocked t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
    touch t n;
    Obs.Metrics.incr m_mem_hits;
    Some n.n_value
  | None ->
    (match disk_read t key with
     | Some value ->
       Obs.Metrics.incr m_disk_hits;
       mem_insert t key value;
       Some value
     | None -> None)

let add_unlocked t key value =
  Obs.Metrics.incr m_stores;
  mem_insert t key value;
  disk_write t key value

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key = with_lock t (fun () -> find_unlocked t key)
let add t key value = with_lock t (fun () -> add_unlocked t key value)

(* cross-process single-flight: compute under an exclusive fcntl lock on
   "<path>.lock", re-checking the disk tier once the lock is ours — if a
   concurrent process got there first we take its entry instead of
   duplicating the work. The entry is published (atomic tmp + rename)
   before the lock is released, so the next lock owner's re-check hits.
   fcntl locks are per-process, which is exactly right here: in-process
   racers are already serialized by the inflight table, so the second
   thread never reaches this function for the same key. Returns
   [(value, served_from_disk)]; called with the store mutex NOT held. *)
let compute_locked t key f =
  match t.dir with
  | None -> (f (), false)
  | Some dir ->
    (match
       Unix.openfile (path_of dir key ^ ".lock") [ Unix.O_CREAT; Unix.O_WRONLY ] 0o644
     with
     | exception Unix.Unix_error _ ->
       (* unlockable (read-only dir, fd exhaustion): degrade to the
          in-process guarantee rather than failing the computation *)
       let value = f () in
       disk_write t key value;
       (value, false)
     | fd ->
       Fun.protect
         ~finally:(fun () -> try Unix.close fd (* releases the lock *) with _ -> ())
         (fun () ->
           (try Unix.lockf fd Unix.F_LOCK 0 with Unix.Unix_error _ -> ());
           match disk_read t key with
           | Some value -> (value, true)
           | None ->
             let value = f () in
             disk_write t key value;
             (value, false)))

let find_or_compute t ~key f =
  Mutex.lock t.mutex;
  let rec lookup () =
    match find_unlocked t key with
    | Some value ->
      Mutex.unlock t.mutex;
      (value, true)
    | None ->
      if Hashtbl.mem t.inflight key then begin
        (* another domain is computing this key: wait for it, then re-run
           the lookup (the wait can also wake on an unrelated store) *)
        Condition.wait t.cond t.mutex;
        lookup ()
      end
      else begin
        Hashtbl.replace t.inflight key ();
        Obs.Metrics.incr m_misses;
        Mutex.unlock t.mutex;
        let settle () =
          Hashtbl.remove t.inflight key;
          Condition.broadcast t.cond;
          Mutex.unlock t.mutex
        in
        match compute_locked t key f with
        | exception e ->
          Mutex.lock t.mutex;
          settle ();
          raise e
        | value, from_disk ->
          Mutex.lock t.mutex;
          if from_disk then begin
            Obs.Metrics.incr m_disk_hits;
            mem_insert t key value
          end
          else begin
            Obs.Metrics.incr m_stores;
            mem_insert t key value
          end;
          settle ();
          (value, from_disk)
      end
  in
  lookup ()

let memo t ~key f =
  let bytes, _hit = find_or_compute t ~key (fun () -> Marshal.to_string (f ()) []) in
  Marshal.from_string bytes 0

let mem_entries t = with_lock t (fun () -> Hashtbl.length t.table)
let mem_bytes t = with_lock t (fun () -> t.bytes)
