type t = {
  lfsr : Lfsr.t;
  mutable sig_ : int64;
}

let create ?taps ~width () = { lfsr = Lfsr.create ?taps ~width (); sig_ = 0L }

let rotl1 x =
  Int64.logor (Int64.shift_left x 1) (Int64.shift_right_logical x 63)

let compact t word =
  (* shift the signature through the LFSR dynamics, then inject the word *)
  let (_ : bool) = Lfsr.step t.lfsr in
  t.sig_ <- Int64.logxor (rotl1 t.sig_) (Int64.logxor word (Lfsr.state t.lfsr))

let signature t = t.sig_

let reset t = t.sig_ <- 0L
