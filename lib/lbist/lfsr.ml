type t = {
  w : int;
  poly : int64;          (* tap mask *)
  mutable s : int64;
}

(* primitive polynomials (Galois form) for the common widths *)
let default_taps = function
  | 16 -> [ 16; 14; 13; 11 ]
  | 24 -> [ 24; 23; 22; 17 ]
  | 32 -> [ 32; 22; 2; 1 ]
  | w -> [ w; w - 1 ] (* not necessarily maximal, but well defined *)

let mask_of_taps w taps =
  List.fold_left
    (fun acc tap ->
      if tap < 1 || tap > w then invalid_arg "Lfsr.create: tap out of range"
      else Int64.logor acc (Int64.shift_left 1L (tap - 1)))
    0L taps

let create ?taps ?(seed = 0x1L) ~width () =
  if width < 2 || width > 64 then invalid_arg "Lfsr.create: width";
  let taps = match taps with Some t -> t | None -> default_taps width in
  let wmask =
    if width = 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L
  in
  let s = Int64.logand seed wmask in
  { w = width; poly = mask_of_taps width taps; s = (if s = 0L then 1L else s) }

let width t = t.w

let state t = t.s

(* Galois form: shift right, and when a 1 falls out, xor the tap mask in *)
let step t =
  let out = Int64.logand t.s 1L = 1L in
  let s' = Int64.shift_right_logical t.s 1 in
  t.s <- (if out then Int64.logxor s' t.poly else s');
  out

let next_word t =
  let acc = ref 0L in
  for bit = 0 to 63 do
    if step t then acc := Int64.logor !acc (Int64.shift_left 1L bit)
  done;
  !acc

let period_probe t n =
  let s0 = t.s in
  let rec go k =
    if k = 0 then false
    else begin
      let (_ : bool) = step t in
      t.s = s0 || go (k - 1)
    end
  in
  let hit = go n in
  t.s <- s0;
  hit
