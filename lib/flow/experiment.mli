(** The paper's experimental matrix (§4.1): for each circuit, six layouts —
    no test points, then 1% to 5% — each generated from scratch through the
    full flow, with the per-circuit settings of the paper (chain limits,
    row utilization targets). *)

type spec = {
  circuit : string;               (** "s38417" | "pcore_a" | "pcore_b" *)
  scale : float;
  utilization : float;
  chain_config : Scan.Chains.config;
}

val spec_for : ?scale:float -> string -> spec
(** Paper settings: 100-FF chains and 97% utilization for s38417 and
    pcore_a; 32 chains and 50% utilization for pcore_b. Default scales come
    from {!Circuits.Bench.default_scales}. *)

type row = {
  spec : spec;
  tp_pct : int;
  result : Pipeline.result;
}

val run_one :
  ?pool:Par.Pool.t ->
  ?cache:Cache.Store.t ->
  ?lint:bool ->
  ?sta_mode:Pipeline.sta_mode ->
  ?repair:bool ->
  ?with_atpg:bool ->
  spec ->
  tp_pct:int ->
  row
(** [lint] (default false) turns on the {!Pipeline.preflight} gate:
    error-severity {!Lint} findings on the generated design raise
    {!Lint.Engine.Lint_failed} before the first stage. [repair] (default
    false) appends the step-7 {!Repair} stage, so the row's [result.sta]
    is the repaired timing and [result.repair] carries the report
    (including the unrepaired [pre_sta]). *)

val sweep :
  ?pool:Par.Pool.t ->
  ?cache:Cache.Store.t ->
  ?lint:bool ->
  ?sta_mode:Pipeline.sta_mode ->
  ?repair:bool ->
  ?with_atpg:bool ->
  ?tp_levels:int list ->
  ?scale:float ->
  string ->
  row list
(** Default levels [0;1;2;3;4;5]. With [pool], the independent levels fan
    out across the pool's domains (and the pool is also handed to each
    level's pipeline, where the innermost non-nested layer uses it); rows
    come back in level order and are bit-identical to the sequential
    sweep. With [cache], level-invariant work is shared: design generation
    runs once per sweep (single-flighted across concurrent levels) and
    every stage consults the content-addressed stage cache
    ({!Pipeline.cached_stage}), so a repeated sweep is served almost
    entirely from cache — still byte-identical to a cold, cache-less
    run. *)

(** {1 ECO sweep}

    One layout, one compiled timing graph, incremental TP levels: the 0%
    baseline runs the full flow once (under {!Pipeline.Incremental_sta}),
    then each level splices in only its {e additional} test points as
    post-layout ECOs — clocked from CTS leaf buffers, legalized in place,
    re-routed per net, worklist-retimed per cone ({!Retime}) — instead of
    re-running six stages per level. *)

type eco_row = {
  e_tp_pct : int;
  e_tp_count : int;       (** cumulative test points in the design *)
  e_wns : float;          (** worst negative slack at this level *)
  e_tcp : float;          (** worst critical-path delay (eq. 3 total) *)
  e_insts_retimed : int;  (** instances re-evaluated for this level's TPs *)
}

type eco_sweep = {
  eco_baseline : row;
  eco_rows : eco_row list;
  eco_ctx : Retime.t;  (** still live: further ECO edits continue from it *)
}

val sweep_eco :
  ?pool:Par.Pool.t ->
  ?cache:Cache.Store.t ->
  ?lint:bool ->
  ?tp_levels:int list ->
  ?scale:float ->
  string ->
  eco_sweep
(** Default levels [1;2;3;4;5] (ascending; levels are cumulative).
    Candidate nets are ranked hardest-to-detect first by COP on the
    baseline netlist, the same signal {!Tpi.Select} batches on. Timing at
    every level is exact — each ECO leaves the context byte-identical to a
    from-scratch route/extract/STA of the same netlist — but the layouts
    differ from {!sweep}'s by construction: test points are spliced into a
    finished placement rather than placed before it, which is precisely
    the ECO-style flow whose timing cost the rows measure. *)

(** {1 Guarded experiments}

    Same matrix, but each level runs under {!Guard}: a stage failure in one
    layout becomes a degraded row (reported by {!Report.guarded_summary})
    instead of aborting the sweep. *)

type guarded_row = {
  g_spec : spec;
  g_tp_pct : int;
  g_report : Guard.report;
}

val run_one_guarded :
  ?pool:Par.Pool.t ->
  ?cache:Cache.Store.t ->
  ?policy:Guard.policy ->
  ?retries:int ->
  ?tamper:(attempt:int -> Guard.stage -> Pipeline.state -> unit) ->
  ?cancel:Cancel.t ->
  ?on_stage:(Guard.stage -> Guard.stage_status -> unit) ->
  ?lint:bool ->
  ?sta_mode:Pipeline.sta_mode ->
  ?repair:bool ->
  ?with_atpg:bool ->
  spec ->
  tp_pct:int ->
  guarded_row

val sweep_guarded :
  ?pool:Par.Pool.t ->
  ?cache:Cache.Store.t ->
  ?policy:Guard.policy ->
  ?retries:int ->
  ?tamper:(attempt:int -> Guard.stage -> Pipeline.state -> unit) ->
  ?cancel:Cancel.t ->
  ?on_stage:(Guard.stage -> Guard.stage_status -> unit) ->
  ?lint:bool ->
  ?sta_mode:Pipeline.sta_mode ->
  ?repair:bool ->
  ?with_atpg:bool ->
  ?tp_levels:int list ->
  ?scale:float ->
  string ->
  guarded_row list
(** Never raises on a stage failure; [tamper] is the chaos/fault-injection
    hook threaded through to {!Guard.run} (tampered runs bypass the
    cache). [cancel] and [on_stage] are the service layer's cancellation
    token and per-stage streaming hook ({!Guard.run}); a cancelled level
    surfaces as a degraded row with a typed ["cancelled"] error. *)

val completed_rows : guarded_row list -> row list
(** The levels whose flow completed, as plain rows for the table renderers. *)

val degraded_rows : guarded_row list -> guarded_row list

val blocked_critical_nets :
  ?pool:Par.Pool.t -> spec -> tp_pct:int -> slack_margin_ps:float -> row
(** The §5 ablation: run a baseline layout + STA first, collect nets on
    paths within [slack_margin_ps] of the critical path, then insert test
    points with those nets excluded. *)
