(** Cooperative cancellation tokens for the guarded flow.

    A token is handed to a run through {!Pipeline.options.cancel} (and
    {!Guard.run}'s [?cancel]); the pipeline polls it between stages, so a
    cancelled or expired job stops at the next stage boundary instead of
    running the flow to completion. Cancellation is cooperative — a stage
    body already underway finishes — which keeps the §6.1/§6.2 determinism
    contracts intact: a token never changes {e what} a surviving stage
    computes, only whether the next one starts.

    Tokens carry an optional deadline; once it passes, the token behaves
    as if [cancel] had been called with reason ["deadline"]. Both the
    manual reason and the deadline check are visible through {!state},
    and {!check} converts them into the {!Cancelled} exception that
    {!Guard} classifies under the ["cancelled"] error class. *)

type t

exception Cancelled of string
(** Raised by {!check}; the payload is the cancellation reason. *)

val create : ?deadline_ms:float -> unit -> t
(** A fresh, uncancelled token. [deadline_ms] is a time budget from now;
    once it elapses the token reads as cancelled with reason
    ["deadline"]. *)

val cancel : t -> reason:string -> unit
(** Idempotent; the first reason wins. Safe from any thread or signal
    handler. *)

val state : t -> string option
(** [Some reason] once cancelled (or past the deadline), [None] while the
    token is live. *)

val is_cancelled : t -> bool

val check : t -> unit
(** Raise {!Cancelled} if the token is cancelled or expired. *)

val deadline_ms_left : t -> float option
(** Remaining budget, for reporting; [None] without a deadline. *)
