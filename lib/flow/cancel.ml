type t = {
  cancelled : string option Atomic.t;
  deadline_us : float option;  (* absolute, on the Obs.Clock timeline *)
}

exception Cancelled of string

let () =
  Printexc.register_printer (function
    | Cancelled reason -> Some (Printf.sprintf "Flow.Cancel.Cancelled(%s)" reason)
    | _ -> None)

let create ?deadline_ms () =
  { cancelled = Atomic.make None;
    deadline_us =
      Option.map (fun ms -> Obs.Clock.now_us () +. (ms *. 1000.0)) deadline_ms }

(* first reason wins; a lost race just means someone else cancelled us a
   moment earlier, which is the same outcome *)
let cancel t ~reason =
  let (_ : bool) = Atomic.compare_and_set t.cancelled None (Some reason) in
  ()

let state t =
  match Atomic.get t.cancelled with
  | Some _ as s -> s
  | None ->
    (match t.deadline_us with
     | Some d when Obs.Clock.now_us () > d ->
       cancel t ~reason:"deadline";
       Atomic.get t.cancelled
     | _ -> None)

let is_cancelled t = state t <> None

let check t =
  match state t with Some reason -> raise (Cancelled reason) | None -> ()

let deadline_ms_left t =
  Option.map (fun d -> (d -. Obs.Clock.now_us ()) /. 1000.0) t.deadline_us
