module Design = Netlist.Design
module Cell = Stdcell.Cell

type mode = Full_sta | Incremental_sta

type report = {
  rounds : int;
  upsized_cells : int;
  t_cp_before : float;
  t_cp_after : float;
  cell_area_before : float;
  cell_area_after : float;
  sta : Sta.Analysis.t;
  route : Layout.Route.t;
  rc : Layout.Extract.net_rc array;
}

let cell_area d =
  (Netlist.Stats.compute d).Netlist.Stats.cell_area

let analyse pl =
  let route = Layout.Route.run pl in
  let rc = Layout.Extract.run pl route in
  (route, rc, Sta.Analysis.run pl rc)

let worst_tcp (sta : Sta.Analysis.t) =
  match sta.Sta.Analysis.worst with
  | Some p -> Some p.Sta.Analysis.t_cp
  | None -> None

(* report sentinel: a design with no constrained path has no critical-path
   delay, which the report records as 0.0 (documented in the .mli; the
   optimisation loop itself never compares against the sentinel) *)
let tcp_or_zero sta = Option.value ~default:0.0 (worst_tcp sta)

let improved ~before ~after =
  match (before, after) with Some b, Some a -> a < b | _ -> false

(* the upsize schedule a report implies: every step of every reported
   critical path, in path order — a cell on several paths is taken once
   per appearance, stepping one drive strength each time, exactly as the
   in-place loop always did *)
let path_insts (sta : Sta.Analysis.t) =
  let acc = ref [] in
  Array.iter
    (fun path ->
      match path with
      | None -> ()
      | Some (p : Sta.Analysis.critical_path) ->
        List.iter
          (fun (s : Sta.Analysis.step) ->
            if s.Sta.Analysis.st_inst >= 0 then acc := s.Sta.Analysis.st_inst :: !acc)
          p.Sta.Analysis.steps)
    sta.Sta.Analysis.per_domain;
  List.rev !acc

let swap_cell (pl : Layout.Place.t) ~inst ~(cell : Cell.t) =
  let d = pl.Layout.Place.design in
  let i = Design.inst d inst in
  let old_width = i.Design.cell.Cell.width in
  let pins = List.init (Array.length i.Design.cell.Cell.pins) (fun k -> (k, k)) in
  Design.replace_cell d ~inst ~cell ~pin_map:pins;
  if Layout.Place.is_placed pl inst then begin
    let r = pl.Layout.Place.row.(inst) in
    pl.Layout.Place.row_used.(r) <-
      pl.Layout.Place.row_used.(r) +. cell.Cell.width -. old_width
  end

(* upsize every upsizable cell on the reported critical paths; returns the
   count and the undo log (newest first) so a round that regresses timing
   can be rolled back cell-for-cell *)
let upsize_paths (pl : Layout.Place.t) (sta : Sta.Analysis.t) =
  let d = pl.Layout.Place.design in
  List.fold_left
    (fun (count, undo) iid ->
      let i = Design.inst d iid in
      match Stdcell.Library.upsize d.Design.lib i.Design.cell with
      | None -> (count, undo)
      | Some bigger ->
        let old_cell = i.Design.cell in
        swap_cell pl ~inst:iid ~cell:bigger;
        (count + 1, (iid, old_cell) :: undo))
    (0, []) (path_insts sta)

(* roll a round back: the log is newest-first, so replaying it restores a
   multiply-upsized cell through each intermediate drive to the original *)
let revert_upsizes (pl : Layout.Place.t) undo =
  List.iter (fun (iid, cell) -> swap_cell pl ~inst:iid ~cell) undo

let run_full ~max_rounds (pl : Layout.Place.t) =
  let d = pl.Layout.Place.design in
  let cell_area_before = cell_area d in
  let route0, rc0, sta0 = analyse pl in
  let t_cp_before = tcp_or_zero sta0 in
  let best = ref (route0, rc0, sta0) in
  let upsized = ref 0 and rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    let _, _, sta = !best in
    let n, undo = upsize_paths pl sta in
    if n = 0 then continue_ := false
    else begin
      let route', rc', sta' = analyse pl in
      if improved ~before:(worst_tcp sta) ~after:(worst_tcp sta') then begin
        upsized := !upsized + n;
        best := (route', rc', sta')
      end
      else begin
        (* the round regressed (or flat-lined): undo its upsizes so the
           reported layout and t_cp_after are the best state seen, not the
           last one tried *)
        revert_upsizes pl undo;
        continue_ := false
      end
    end
  done;
  let route, rc, sta = !best in
  { rounds = !rounds;
    upsized_cells = !upsized;
    t_cp_before;
    t_cp_after = tcp_or_zero sta;
    cell_area_before;
    cell_area_after = cell_area d;
    sta;
    route;
    rc }

(* Same loop, but the layout/timing state lives in an ECO context: each
   upsize re-routes only the resized cell's incident nets and worklist-
   retimes its cone instead of re-running route/extract/STA over the
   whole design once per round. Retime's exactness guarantee makes every
   round's analysis — and hence every upsize decision and the final
   report — byte-identical to [run_full]. *)
let run_incremental ~max_rounds (pl : Layout.Place.t) =
  let d = pl.Layout.Place.design in
  let cell_area_before = cell_area d in
  let route0 = Layout.Route.run pl in
  let rc0 = Layout.Extract.run pl route0 in
  let ctx = Retime.create pl route0 rc0 in
  let sta0 = Retime.analysis ctx in
  let t_cp_before = tcp_or_zero sta0 in
  let best_sta = ref sta0 in
  let upsized = ref 0 and rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    let sta = !best_sta in
    let n, undo =
      List.fold_left
        (fun (acc, undo) iid ->
          let old_cell = (Design.inst d iid).Design.cell in
          match Retime.upsize ctx ~inst:iid with
          | Some _ -> (acc + 1, (iid, old_cell) :: undo)
          | None -> (acc, undo))
        (0, []) (path_insts sta)
    in
    if n = 0 then continue_ := false
    else begin
      let sta' = Retime.analysis ctx in
      if improved ~before:(worst_tcp sta) ~after:(worst_tcp sta') then begin
        upsized := !upsized + n;
        best_sta := sta'
      end
      else begin
        (* roll the round back through the ECO context (newest first, so a
           multiply-upsized cell steps down through each drive); Retime's
           exactness makes the post-revert state byte-identical to the end
           of the best round, matching run_full's revert *)
        List.iter (fun (iid, cell) -> ignore (Retime.resize ctx ~inst:iid ~cell)) undo;
        continue_ := false
      end
    end
  done;
  { rounds = !rounds;
    upsized_cells = !upsized;
    t_cp_before;
    t_cp_after = tcp_or_zero !best_sta;
    cell_area_before;
    cell_area_after = cell_area d;
    sta = !best_sta;
    route = Retime.route ctx;
    rc = Retime.rc ctx }

let run ?(max_rounds = 3) ?(mode = Incremental_sta) (pl : Layout.Place.t) =
  match mode with
  | Full_sta -> run_full ~max_rounds pl
  | Incremental_sta -> run_incremental ~max_rounds pl
