module Design = Netlist.Design
module Cell = Stdcell.Cell

type mode = Full_sta | Incremental_sta

type report = {
  rounds : int;
  upsized_cells : int;
  t_cp_before : float;
  t_cp_after : float;
  cell_area_before : float;
  cell_area_after : float;
  sta : Sta.Analysis.t;
  route : Layout.Route.t;
  rc : Layout.Extract.net_rc array;
}

let cell_area d =
  (Netlist.Stats.compute d).Netlist.Stats.cell_area

let analyse pl =
  let route = Layout.Route.run pl in
  let rc = Layout.Extract.run pl route in
  (route, rc, Sta.Analysis.run pl rc)

let worst_tcp (sta : Sta.Analysis.t) =
  match sta.Sta.Analysis.worst with
  | Some p -> p.Sta.Analysis.t_cp
  | None -> 0.0

(* the upsize schedule a report implies: every step of every reported
   critical path, in path order — a cell on several paths is taken once
   per appearance, stepping one drive strength each time, exactly as the
   in-place loop always did *)
let path_insts (sta : Sta.Analysis.t) =
  let acc = ref [] in
  Array.iter
    (fun path ->
      match path with
      | None -> ()
      | Some (p : Sta.Analysis.critical_path) ->
        List.iter
          (fun (s : Sta.Analysis.step) ->
            if s.Sta.Analysis.st_inst >= 0 then acc := s.Sta.Analysis.st_inst :: !acc)
          p.Sta.Analysis.steps)
    sta.Sta.Analysis.per_domain;
  List.rev !acc

(* upsize every upsizable cell on the reported critical paths *)
let upsize_paths (pl : Layout.Place.t) (sta : Sta.Analysis.t) =
  let d = pl.Layout.Place.design in
  let count = ref 0 in
  List.iter
    (fun iid ->
      let i = Design.inst d iid in
      match Stdcell.Library.upsize d.Design.lib i.Design.cell with
      | None -> ()
      | Some bigger ->
        let old_width = i.Design.cell.Cell.width in
        let pins = List.init (Array.length i.Design.cell.Cell.pins) (fun k -> (k, k)) in
        Design.replace_cell d ~inst:i.Design.id ~cell:bigger ~pin_map:pins;
        if Layout.Place.is_placed pl i.Design.id then begin
          let r = pl.Layout.Place.row.(i.Design.id) in
          pl.Layout.Place.row_used.(r) <-
            pl.Layout.Place.row_used.(r) +. bigger.Cell.width -. old_width
        end;
        incr count)
    (path_insts sta);
  !count

let run_full ~max_rounds (pl : Layout.Place.t) =
  let d = pl.Layout.Place.design in
  let cell_area_before = cell_area d in
  let route0, rc0, sta0 = analyse pl in
  let t_cp_before = worst_tcp sta0 in
  let best = ref (route0, rc0, sta0) in
  let upsized = ref 0 and rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    let _, _, sta = !best in
    let n = upsize_paths pl sta in
    upsized := !upsized + n;
    if n = 0 then continue_ := false
    else begin
      let route', rc', sta' = analyse pl in
      if worst_tcp sta' < worst_tcp sta then best := (route', rc', sta')
      else begin
        best := (route', rc', sta');
        continue_ := false
      end
    end
  done;
  let route, rc, sta = !best in
  { rounds = !rounds;
    upsized_cells = !upsized;
    t_cp_before;
    t_cp_after = worst_tcp sta;
    cell_area_before;
    cell_area_after = cell_area d;
    sta;
    route;
    rc }

(* Same loop, but the layout/timing state lives in an ECO context: each
   upsize re-routes only the resized cell's incident nets and worklist-
   retimes its cone instead of re-running route/extract/STA over the
   whole design once per round. Retime's exactness guarantee makes every
   round's analysis — and hence every upsize decision and the final
   report — byte-identical to [run_full]. *)
let run_incremental ~max_rounds (pl : Layout.Place.t) =
  let d = pl.Layout.Place.design in
  let cell_area_before = cell_area d in
  let route0 = Layout.Route.run pl in
  let rc0 = Layout.Extract.run pl route0 in
  let ctx = Retime.create pl route0 rc0 in
  let sta0 = Retime.analysis ctx in
  let t_cp_before = worst_tcp sta0 in
  let best_sta = ref sta0 in
  let upsized = ref 0 and rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    let sta = !best_sta in
    let n =
      List.fold_left
        (fun acc iid ->
          match Retime.upsize ctx ~inst:iid with Some _ -> acc + 1 | None -> acc)
        0 (path_insts sta)
    in
    upsized := !upsized + n;
    if n = 0 then continue_ := false
    else begin
      let sta' = Retime.analysis ctx in
      if worst_tcp sta' < worst_tcp sta then best_sta := sta'
      else begin
        best_sta := sta';
        continue_ := false
      end
    end
  done;
  { rounds = !rounds;
    upsized_cells = !upsized;
    t_cp_before;
    t_cp_after = worst_tcp !best_sta;
    cell_area_before;
    cell_area_after = cell_area d;
    sta = !best_sta;
    route = Retime.route ctx;
    rc = Retime.rc ctx }

let run ?(max_rounds = 3) ?(mode = Incremental_sta) (pl : Layout.Place.t) =
  match mode with
  | Full_sta -> run_full ~max_rounds pl
  | Incremental_sta -> run_incremental ~max_rounds pl
