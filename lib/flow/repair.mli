(** Post-route timing-repair ECO stage (DESIGN.md §6.7).

    Walks the near-critical net set of the compiled timing graph and
    trials parasitic-aware ECOs through {!Retime} — buffer insertion on
    loaded critical nets, driver upsizing, commutative-pin swapping, and
    off-critical downsizing for area recovery. Every ECO is speculative:
    re-timed individually, accepted only if the (WNS, TNS) objective
    improves lexicographically (area moves: only if it does not degrade),
    and reverted {e exactly} otherwise, so a rejected trial leaves no
    trace in timing, routing or area.

    The engine runs identically under full or incremental STA: both
    evaluation modes leave the graph byte-identical after every edit
    (§6.6), so every accept/revert decision — and hence the final report
    — matches bit for bit; only the [sta.*] counters that move differ.
    This is pinned by the repair test suite and the CI byte-diff. *)

type mode = Timingfix.mode = Full_sta | Incremental_sta

type config = {
  margin_ps : float;
  (** criticality window: nets whose slack is within this of the worst *)
  max_edits : int;
  (** trial budget, applied once to the timing passes together and once
      more to the area-recovery pass *)
  max_passes : int;      (** sweeps over the (recomputed) critical set *)
  area_recovery : bool;  (** run the off-critical downsize pass *)
  slack_guard_ps : float;
  (** headroom every net of a downsize candidate must keep *)
  buffer_min_sinks : int;
  (** only nets with at least this many sinks get a trial buffer *)
}

val default_config : config

type eco_kind = Insert_buffer | Upsize | Downsize | Swap_pins

type eco = {
  kind : eco_kind;
  target : string;       (** net or instance name *)
  accepted : bool;
  wns_gain_ps : float;   (** objective movement of this trial *)
}

type report = {
  passes : int;
  tried : int;
  accepted : int;
  buffers_inserted : int;
  upsized : int;
  downsized : int;
  swapped : int;
  wns_before : float;
  tns_before : float;
  wns_after : float;    (** never worse than [wns_before] *)
  tns_after : float;
  t_cp_before : float;
  t_cp_after : float;
  cell_area_before : float;
  cell_area_after : float;
  pre_sta : Sta.Analysis.t;
  (** analysis before any repair — byte-identical to the unrepaired
      flow's STA, which is what lets one repaired sweep report both the
      repaired and unrepaired Table 3 columns *)
  sta : Sta.Analysis.t;             (** analysis of the repaired state *)
  route : Layout.Route.t;
  rc : Layout.Extract.net_rc array;
  edits : eco list;                 (** every trial, in application order *)
}

val kind_name : eco_kind -> string

val run :
  ?config:config ->
  ?mode:mode ->
  ?route:Layout.Route.t ->
  ?rc:Layout.Extract.net_rc array ->
  Layout.Place.t ->
  report
(** Repair the placed design in place. [route]/[rc] reuse an existing
    routing/extraction of exactly this placement (the pipeline passes its
    stage products); both are recomputed when absent. Defaults:
    {!default_config}, [Incremental_sta]. *)
