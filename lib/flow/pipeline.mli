(** The complete tool flow of Figure 2:

    {ol
    {- test point insertion and scan insertion on the gate-level netlist;}
    {- floorplanning and placement;}
    {- layout-driven scan-chain reordering, then ATPG on the updated
       netlist;}
    {- ECO of the reordering's buffers, clock-tree insertion, filler
       insertion and routing;}
    {- RC extraction;}
    {- static timing analysis;}
    {- (optionally) post-route timing repair ({!Repair}), off by default
       — the paper's layouts are deliberately unoptimised (§5).}}

    One call = one layout, generated from scratch, as in the paper. *)

type sta_mode =
  | Full_sta         (** step 6 runs {!Sta.Analysis.run} directly *)
  | Incremental_sta
      (** step 6 compiles a flat {!Sta.Tgraph}, propagates it (same float
          ops, same [sta.*] counters, byte-identical report) and keeps it
          alive in [result.tgraph] so downstream ECO passes — timing fix,
          TP% re-sweeps — can worklist-retime instead of re-running STA *)

type options = {
  tp_percent : float;              (** test points as % of flip-flops (0-5) *)
  chain_config : Scan.Chains.config;
  utilization : float;             (** target row utilization *)
  run_atpg : bool;                 (** Table 1 needs it; Tables 2-3 do not *)
  atpg_config : Atpg.Patgen.config;
  tpi_config : Tpi.Select.config;  (** e.g. blocked nets for the §5 ablation *)
  seed : int;
  pool : Par.Pool.t option;
      (** domain pool for the parallel kernels (ATPG fault simulation, STA
          propagation). [None] (the default) runs fully sequentially; any
          pool produces bit-identical results at any domain count *)
  cache : Cache.Store.t option;
      (** content-addressed stage cache consulted before each stage
          ({!cached_stage}): a hit restores the stage's serialized state
          and replays its metrics delta instead of recomputing. Cached and
          uncached runs are byte-identical in results and kernel metrics
          (DESIGN.md §6.2); like the pool, the cache never affects {e
          what} is computed, only how fast *)
  cancel : Cancel.t option;
      (** cooperative cancellation token, polled at every stage boundary
          ({!cached_stage} raises {!Cancel.Cancelled} before starting the
          next stage once the token is cancelled or past its deadline).
          Like the pool and the cache, excluded from cache keys: it never
          changes what a completed stage computes *)
  lint : bool;
      (** pre-flight the input design through {!Lint.Engine} before the
          first stage; error-severity findings abort with
          {!Lint.Engine.Lint_failed} (error class ["lint-failed"] under
          {!Guard}). Read-only over the design, so — like the pool, cache
          and cancel token — excluded from stage-cache keys *)
  sta_mode : sta_mode;
      (** how step 6 computes the (identical) timing report; excluded from
          stage-cache keys for the same reason as the pool. Also selects
          {!Repair}'s evaluation mode, which likewise never changes the
          repaired result. Default {!Full_sta} *)
  repair : bool;
      (** run the step-7 {!Repair} stage: WNS/TNS-driven ECO repair of the
          routed design, updating [route]/[rc]/[sta] to the repaired
          state. Part of the stage-cache key. Default [false] *)
  repair_config : Repair.config;  (** budgets/margins for the repair stage *)
}

val default_options : options

type result = {
  design : Netlist.Design.t;
  options : options;
  tp_count : int;
  tpi_report : Tpi.Select.report option;  (** None when no points requested *)
  chains : Scan.Chains.t;
  reorder : Scan.Reorder.result;
  atpg : Atpg.Patgen.outcome option;
  tdv_bits : int;   (** equation (1); 0 without ATPG *)
  tat_cycles : int; (** equation (2) *)
  placement : Layout.Place.t;
  cts : Layout.Cts.report;
  filler : Layout.Filler.report;
  route : Layout.Route.t;
  rc : Layout.Extract.net_rc array;
  sta : Sta.Analysis.t;
      (** post-repair when the repair stage ran; its pre-repair STA is
          then in [repair.pre_sta] *)
  repair : Repair.report option;  (** [Some] iff [options.repair] *)
  tgraph : Sta.Tgraph.t option;
      (** the live compiled timing graph when the sta stage actually ran
          under {!Incremental_sta} ([None] in {!Full_sta} mode, when the
          stage was restored from the cache, or after a repair stage —
          whose edits the stage-6 graph does not mirror) *)
  lint_report : Lint.Engine.report option;
      (** post-layout run of the TPI/timing lint pack, fed the real slack
          report and near-critical net set straight off the compiled
          graph; only under [lint = true] + {!Incremental_sta} (the
          pre-flight lint gate runs in every mode) *)
  stats : Netlist.Stats.t;  (** post-flow netlist statistics *)
  drc : Layout.Drc.report;  (** max-capacitance fixes applied before routing *)
}

val preflight : options:options -> Netlist.Design.t -> unit
(** Lint gate ahead of the first stage: when [options.lint] is set, run
    {!Lint.Engine.run} over the input design and raise
    {!Lint.Engine.Lint_failed} on any error-severity finding. Read-only;
    no-op when the flag is off. Called by {!run} and by {!Guard}
    (which maps the escape to the ["lint-failed"] error class). *)

val run : ?options:options -> Netlist.Design.t -> result
(** Mutates the design (TPI, scan, buffers, fillers). *)

(** {1 Staged execution}

    The same flow, one stage at a time, for guarded/recoverable execution
    (see {!Guard}). A [state] accumulates the per-stage products; stages
    must be run in Figure-2 order and raise [Invalid_argument] when a
    prerequisite is missing. [run] is exactly
    [init |> the six stages |> finish]. *)

type state = {
  mutable s_design : Netlist.Design.t;
      (** mutable so a cache hit can swap in the deserialized design *)
  s_options : options;
  mutable s_tp_count : int;
  mutable s_tpi_report : Tpi.Select.report option;
  mutable s_placement : Layout.Place.t option;
  mutable s_chains : Scan.Chains.t option;
  mutable s_reorder : Scan.Reorder.result option;
  mutable s_atpg : Atpg.Patgen.outcome option;
  mutable s_tdv_bits : int;
  mutable s_tat_cycles : int;
  mutable s_cts : Layout.Cts.report option;
  mutable s_drc : Layout.Drc.report option;
  mutable s_filler : Layout.Filler.report option;
  mutable s_route : Layout.Route.t option;
  mutable s_rc : Layout.Extract.net_rc array option;
  mutable s_sta : Sta.Analysis.t option;
  mutable s_repair : Repair.report option;
  mutable s_tgraph : Sta.Tgraph.t option;
      (** {!Incremental_sta} only; outside the cache snapshot *)
  mutable s_lint : Lint.Engine.report option;
      (** lint + {!Incremental_sta} only; outside the cache snapshot *)
}

val init : ?options:options -> Netlist.Design.t -> state

val stage_tpi_scan : state -> unit
val stage_place : state -> unit
val stage_reorder_atpg : state -> unit
val stage_eco_route : state -> unit
val stage_extract : state -> unit
val stage_sta : state -> unit

val stage_repair : state -> unit
(** No-op unless [options.repair]; otherwise runs {!Repair.run} on the
    routed design and moves the route/rc/sta slots to the repaired
    state. *)

val finish : state -> result
(** Collects a complete [result]; raises [Invalid_argument] if any stage
    has not run. *)

(** {1 Stage cache}

    Content-addressed memoization of whole stages (see DESIGN.md §6.2). A
    stage's key chains [Design.fingerprint] of the state's design, a
    fingerprint of the result-relevant options (pool and cache excluded)
    and the previous stage's key, so products living outside the netlist
    (placement, route, ...) are pinned transitively. Used by both {!run}
    and {!Guard}; fault-injection runs (a [tamper] hook) bypass it. *)

type snapshot
(** The design plus every stage slot, as restored by a cache hit. *)

val snapshot : state -> snapshot
val restore : state -> snapshot -> unit

type cache_ctx
(** Per-run chaining state; create one per attempt. *)

val cache_ctx : options -> cache_ctx option
(** [None] when the options carry no cache. *)

val cached_stage : cache_ctx option -> string -> (state -> unit) -> state -> unit
(** [cached_stage ctx name body st] runs [body st], consulting the cache
    first when [ctx] is present: on a hit the stored snapshot is restored
    into [st] and the stage's recorded metrics delta replayed; on a miss
    [body] runs under {!Obs.Metrics.with_scoped} and the resulting
    snapshot + delta are stored. [name] must be the stage's flow name
    (["tpi-scan"], ["place"], ...). Raises {!Cancel.Cancelled} before
    doing anything when the options carry a cancelled token. *)
