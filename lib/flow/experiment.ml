type spec = {
  circuit : string;
  scale : float;
  utilization : float;
  chain_config : Scan.Chains.config;
}

let spec_for ?scale circuit =
  let scale =
    match scale with
    | Some s -> s
    | None ->
      (match List.assoc_opt circuit Circuits.Bench.default_scales with
       | Some s -> s
       | None -> invalid_arg ("Experiment.spec_for: unknown circuit " ^ circuit))
  in
  match circuit with
  | "s38417" ->
    { circuit; scale; utilization = 0.97; chain_config = Scan.Chains.Max_length 100 }
  | "pcore_a" ->
    { circuit; scale; utilization = 0.97; chain_config = Scan.Chains.Max_length 100 }
  | "pcore_b" ->
    { circuit; scale; utilization = 0.50; chain_config = Scan.Chains.Num_chains 32 }
  | other -> invalid_arg ("Experiment.spec_for: unknown circuit " ^ other)

type row = {
  spec : spec;
  tp_pct : int;
  result : Pipeline.result;
}

let options_of ?pool ?cache ?cancel ?(lint = false)
    ?(sta_mode = Pipeline.Full_sta) ?(repair = false) spec ~with_atpg ~tp_pct =
  { Pipeline.default_options with
    Pipeline.tp_percent = float_of_int tp_pct;
    chain_config = spec.chain_config;
    utilization = spec.utilization;
    run_atpg = with_atpg;
    pool;
    cache;
    cancel;
    lint;
    sta_mode;
    repair }

(* design generation is level-invariant: with a cache every level of the
   fan-out shares one generator run (the store single-flights concurrent
   requests), each taking a structurally fresh unmarshaled copy so the
   levels can still mutate their designs independently *)
let generate ?cache spec =
  let mk () = Circuits.Bench.by_name spec.circuit ~scale:spec.scale in
  match cache with
  | None -> mk ()
  | Some store ->
    let key =
      Cache.Store.key [ "tpi-design-gen-v1"; spec.circuit; Printf.sprintf "%h" spec.scale ]
    in
    Cache.Store.memo store ~key mk

let run_one ?pool ?cache ?lint ?sta_mode ?repair ?(with_atpg = true) spec ~tp_pct =
  let d = generate ?cache spec in
  let result =
    Pipeline.run
      ~options:(options_of ?pool ?cache ?lint ?sta_mode ?repair spec ~with_atpg ~tp_pct)
      d
  in
  { spec; tp_pct; result }

(* fan the (independent, each internally deterministic) levels across the
   pool; parallel_map keeps results in level order, and a nested Pool.run
   inside a worker-side pipeline degrades to inline, so the rows are
   identical to the sequential sweep whichever layer wins the pool *)
let fan_levels pool tp_levels f =
  match pool with
  | Some p when Par.Pool.size p > 1 && List.length tp_levels > 1 ->
    let arr = Array.of_list tp_levels in
    Array.to_list (Par.Pool.parallel_map p ~n:(Array.length arr) (fun i -> f arr.(i)))
  | _ -> List.map f tp_levels

let sweep ?pool ?cache ?lint ?sta_mode ?repair ?(with_atpg = true)
    ?(tp_levels = [ 0; 1; 2; 3; 4; 5 ]) ?scale circuit =
  let spec = spec_for ?scale circuit in
  fan_levels pool tp_levels (fun tp_pct ->
      run_one ?pool ?cache ?lint ?sta_mode ?repair ~with_atpg spec ~tp_pct)

type guarded_row = {
  g_spec : spec;
  g_tp_pct : int;
  g_report : Guard.report;
}

let run_one_guarded ?pool ?cache ?policy ?retries ?tamper ?cancel ?on_stage ?lint
    ?sta_mode ?repair ?(with_atpg = true) spec ~tp_pct =
  let report =
    Guard.run ?policy ?retries ?tamper ?on_stage ~circuit:spec.circuit
      ~options:
        (options_of ?pool ?cache ?cancel ?lint ?sta_mode ?repair spec ~with_atpg
           ~tp_pct)
      (fun () -> generate ?cache spec)
  in
  { g_spec = spec; g_tp_pct = tp_pct; g_report = report }

(* guarded sweep: a failed level becomes a degraded row instead of killing
   the whole experiment matrix *)
let sweep_guarded ?pool ?cache ?policy ?retries ?tamper ?cancel ?on_stage ?lint
    ?sta_mode ?repair ?(with_atpg = true) ?(tp_levels = [ 0; 1; 2; 3; 4; 5 ])
    ?scale circuit =
  let spec = spec_for ?scale circuit in
  fan_levels pool tp_levels (fun tp_pct ->
      run_one_guarded ?pool ?cache ?policy ?retries ?tamper ?cancel ?on_stage ?lint
        ?sta_mode ?repair ~with_atpg spec ~tp_pct)

let completed_rows grows =
  List.filter_map
    (fun g ->
      match g.g_report.Guard.result with
      | Some result -> Some { spec = g.g_spec; tp_pct = g.g_tp_pct; result }
      | None -> None)
    grows

let degraded_rows grows =
  List.filter (fun g -> g.g_report.Guard.result = None) grows

(* ---- ECO sweep: one layout, one compiled timing graph, incremental TP
   levels ----

   The classic [sweep] builds every TP% level from scratch — six stages
   per level, full route/extract/STA each time. The ECO sweep lays out the
   0% baseline once, compiles its timing graph once, then walks the levels
   by splicing in only the *additional* test points each level asks for
   and worklist-retiming their cones. What it measures is the layout
   question the paper actually poses — what does each extra point cost in
   timing on this placement — without paying a full flow per level. *)

type eco_row = {
  e_tp_pct : int;
  e_tp_count : int;              (* cumulative TPs in the design *)
  e_wns : float;
  e_tcp : float;                 (* worst critical-path delay, eq. 3 total *)
  e_insts_retimed : int;         (* cone work this level (all its TPs) *)
}

type eco_sweep = {
  eco_baseline : row;            (* the 0% full flow the ECO starts from *)
  eco_rows : eco_row list;
  eco_ctx : Retime.t;            (* live context, usable for further ECO *)
}

(* candidate nets ranked hardest-to-detect first (COP), the same signal
   Tpi.Select batches on; ranked once on the baseline netlist *)
let eco_candidates (d : Netlist.Design.t) =
  let module Design = Netlist.Design in
  let module Cell = Stdcell.Cell in
  let m = Netlist.Cmodel.build d in
  let cop = Testability.Cop.compute m in
  let cand = ref [] in
  for n = 0 to m.Netlist.Cmodel.num_nets - 1 do
    let net = Design.net d n in
    let driver_is_tsff =
      match net.Design.driver with
      | Design.Cell_pin (iid, _) -> (Design.inst d iid).Design.cell.Cell.kind = Cell.Tsff
      | _ -> false
    in
    if
      m.Netlist.Cmodel.modeled.(n)
      && (not m.Netlist.Cmodel.is_source.(n))
      && net.Design.driver <> Design.No_driver
      && (not driver_is_tsff)
      && net.Design.sinks <> []
    then cand := (Testability.Cop.detectability cop n, n) :: !cand
  done;
  List.sort compare !cand |> List.map snd

let worst_tcp_of (sta : Sta.Analysis.t) =
  match sta.Sta.Analysis.worst with Some p -> p.Sta.Analysis.t_cp | None -> 0.0

let sweep_eco ?pool ?cache ?lint ?(tp_levels = [ 1; 2; 3; 4; 5 ]) ?scale circuit =
  let spec = spec_for ?scale circuit in
  let d = generate ?cache spec in
  let options =
    options_of ?pool ?cache ?lint ~sta_mode:Pipeline.Incremental_sta spec
      ~with_atpg:false ~tp_pct:0
  in
  let result = Pipeline.run ~options d in
  let baseline = { spec; tp_pct = 0; result } in
  let ctx =
    Retime.create result.Pipeline.placement result.Pipeline.route result.Pipeline.rc
  in
  let ffs = List.length (Netlist.Design.ffs result.Pipeline.design) in
  let candidates = ref (eco_candidates result.Pipeline.design) in
  let inserted = ref 0 in
  let rows =
    List.map
      (fun tp_pct ->
        let target =
          int_of_float (Float.round (float_of_int (tp_pct * ffs) /. 100.0))
        in
        let retimed = ref 0 in
        while !inserted < target && !candidates <> [] do
          let net = List.hd !candidates in
          candidates := List.tl !candidates;
          let _, stats = Retime.insert_tp ctx ~net in
          retimed := !retimed + stats.Sta.Incremental.insts_evaluated;
          incr inserted
        done;
        let sta = Retime.analysis ctx in
        let slack = Sta.Tgraph.slack (Retime.tgraph ctx) in
        { e_tp_pct = tp_pct;
          e_tp_count = !inserted;
          e_wns = slack.Sta.Slack.wns;
          e_tcp = worst_tcp_of sta;
          e_insts_retimed = !retimed })
      (List.sort compare tp_levels)
  in
  { eco_baseline = baseline; eco_rows = rows; eco_ctx = ctx }

(* §5: exclude nets on near-critical paths from TPI. The baseline layout's
   STA identifies the worst paths per domain; nets within the slack margin
   of them are off limits for insertion. *)
let blocked_critical_nets ?pool spec ~tp_pct ~slack_margin_ps =
  let d0 = Circuits.Bench.by_name spec.circuit ~scale:spec.scale in
  let baseline =
    Pipeline.run ~options:(options_of ?pool spec ~with_atpg:false ~tp_pct:0) d0
  in
  let blocked_names =
    (* blocked nets must survive into the *fresh* design of the real run:
       the generator is deterministic, so net ids are reproducible *)
    Sta.Slack.nets_on_worst_paths baseline.Pipeline.placement baseline.Pipeline.sta
      ~margin_ps:slack_margin_ps
  in
  let d = Circuits.Bench.by_name spec.circuit ~scale:spec.scale in
  let options =
    { (options_of ?pool spec ~with_atpg:true ~tp_pct) with
      Pipeline.tpi_config =
        { Tpi.Select.default_config with Tpi.Select.blocked_nets = blocked_names } }
  in
  let result = Pipeline.run ~options d in
  { spec; tp_pct; result }
