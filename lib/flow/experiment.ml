type spec = {
  circuit : string;
  scale : float;
  utilization : float;
  chain_config : Scan.Chains.config;
}

let spec_for ?scale circuit =
  let scale =
    match scale with
    | Some s -> s
    | None ->
      (match List.assoc_opt circuit Circuits.Bench.default_scales with
       | Some s -> s
       | None -> invalid_arg ("Experiment.spec_for: unknown circuit " ^ circuit))
  in
  match circuit with
  | "s38417" ->
    { circuit; scale; utilization = 0.97; chain_config = Scan.Chains.Max_length 100 }
  | "pcore_a" ->
    { circuit; scale; utilization = 0.97; chain_config = Scan.Chains.Max_length 100 }
  | "pcore_b" ->
    { circuit; scale; utilization = 0.50; chain_config = Scan.Chains.Num_chains 32 }
  | other -> invalid_arg ("Experiment.spec_for: unknown circuit " ^ other)

type row = {
  spec : spec;
  tp_pct : int;
  result : Pipeline.result;
}

let options_of ?pool ?cache ?cancel ?(lint = false) spec ~with_atpg ~tp_pct =
  { Pipeline.default_options with
    Pipeline.tp_percent = float_of_int tp_pct;
    chain_config = spec.chain_config;
    utilization = spec.utilization;
    run_atpg = with_atpg;
    pool;
    cache;
    cancel;
    lint }

(* design generation is level-invariant: with a cache every level of the
   fan-out shares one generator run (the store single-flights concurrent
   requests), each taking a structurally fresh unmarshaled copy so the
   levels can still mutate their designs independently *)
let generate ?cache spec =
  let mk () = Circuits.Bench.by_name spec.circuit ~scale:spec.scale in
  match cache with
  | None -> mk ()
  | Some store ->
    let key =
      Cache.Store.key [ "tpi-design-gen-v1"; spec.circuit; Printf.sprintf "%h" spec.scale ]
    in
    Cache.Store.memo store ~key mk

let run_one ?pool ?cache ?lint ?(with_atpg = true) spec ~tp_pct =
  let d = generate ?cache spec in
  let result =
    Pipeline.run ~options:(options_of ?pool ?cache ?lint spec ~with_atpg ~tp_pct) d
  in
  { spec; tp_pct; result }

(* fan the (independent, each internally deterministic) levels across the
   pool; parallel_map keeps results in level order, and a nested Pool.run
   inside a worker-side pipeline degrades to inline, so the rows are
   identical to the sequential sweep whichever layer wins the pool *)
let fan_levels pool tp_levels f =
  match pool with
  | Some p when Par.Pool.size p > 1 && List.length tp_levels > 1 ->
    let arr = Array.of_list tp_levels in
    Array.to_list (Par.Pool.parallel_map p ~n:(Array.length arr) (fun i -> f arr.(i)))
  | _ -> List.map f tp_levels

let sweep ?pool ?cache ?lint ?(with_atpg = true) ?(tp_levels = [ 0; 1; 2; 3; 4; 5 ])
    ?scale circuit =
  let spec = spec_for ?scale circuit in
  fan_levels pool tp_levels (fun tp_pct -> run_one ?pool ?cache ?lint ~with_atpg spec ~tp_pct)

type guarded_row = {
  g_spec : spec;
  g_tp_pct : int;
  g_report : Guard.report;
}

let run_one_guarded ?pool ?cache ?policy ?retries ?tamper ?cancel ?on_stage ?lint
    ?(with_atpg = true) spec ~tp_pct =
  let report =
    Guard.run ?policy ?retries ?tamper ?on_stage ~circuit:spec.circuit
      ~options:(options_of ?pool ?cache ?cancel ?lint spec ~with_atpg ~tp_pct)
      (fun () -> generate ?cache spec)
  in
  { g_spec = spec; g_tp_pct = tp_pct; g_report = report }

(* guarded sweep: a failed level becomes a degraded row instead of killing
   the whole experiment matrix *)
let sweep_guarded ?pool ?cache ?policy ?retries ?tamper ?cancel ?on_stage ?lint
    ?(with_atpg = true) ?(tp_levels = [ 0; 1; 2; 3; 4; 5 ]) ?scale circuit =
  let spec = spec_for ?scale circuit in
  fan_levels pool tp_levels (fun tp_pct ->
      run_one_guarded ?pool ?cache ?policy ?retries ?tamper ?cancel ?on_stage ?lint
        ~with_atpg spec ~tp_pct)

let completed_rows grows =
  List.filter_map
    (fun g ->
      match g.g_report.Guard.result with
      | Some result -> Some { spec = g.g_spec; tp_pct = g.g_tp_pct; result }
      | None -> None)
    grows

let degraded_rows grows =
  List.filter (fun g -> g.g_report.Guard.result = None) grows

(* §5: exclude nets on near-critical paths from TPI. The baseline layout's
   STA identifies the worst paths per domain; nets within the slack margin
   of them are off limits for insertion. *)
let blocked_critical_nets ?pool spec ~tp_pct ~slack_margin_ps =
  let d0 = Circuits.Bench.by_name spec.circuit ~scale:spec.scale in
  let baseline =
    Pipeline.run ~options:(options_of ?pool spec ~with_atpg:false ~tp_pct:0) d0
  in
  let blocked_names =
    (* blocked nets must survive into the *fresh* design of the real run:
       the generator is deterministic, so net ids are reproducible *)
    Sta.Slack.nets_on_worst_paths baseline.Pipeline.placement baseline.Pipeline.sta
      ~margin_ps:slack_margin_ps
  in
  let d = Circuits.Bench.by_name spec.circuit ~scale:spec.scale in
  let options =
    { (options_of ?pool spec ~with_atpg:true ~tp_pct) with
      Pipeline.tpi_config =
        { Tpi.Select.default_config with Tpi.Select.blocked_nets = blocked_names } }
  in
  let result = Pipeline.run ~options d in
  { spec; tp_pct; result }
