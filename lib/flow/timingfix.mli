(** Timing optimisation after layout — the knob the paper's experiments
    deliberately leave off (§5: "timing optimisation typically implies the
    use of cells with larger drive strengths ... at the cost of larger
    silicon area"). This module implements that loop so the trade-off can
    be measured: upsize the cells on the worst paths, re-route, re-extract,
    re-time, repeat. *)

type mode =
  | Full_sta         (** re-route, re-extract and re-time the whole design
                         once per round (the original engine) *)
  | Incremental_sta  (** per-edit ECO via {!Retime}: each upsize re-routes
                         only its incident nets and worklist-retimes its
                         cone; byte-identical reports, one re-time per cell
                         instead of one full STA per round *)

type report = {
  rounds : int;       (** rounds attempted, including a final reverted one *)
  upsized_cells : int;
  (** upsizes that {e survived} — a round that regressed timing is rolled
      back cell-for-cell and contributes nothing *)
  t_cp_before : float;
  t_cp_after : float;
  (** the best critical-path delay seen across all rounds, never worse
      than any intermediate round's; [0.0] when the design has no
      constrained path (see {!worst_tcp}) *)
  cell_area_before : float;
  cell_area_after : float;
  sta : Sta.Analysis.t;             (** analysis of the best round's state *)
  route : Layout.Route.t;
  rc : Layout.Extract.net_rc array;
}

val worst_tcp : Sta.Analysis.t -> float option
(** Worst-domain critical-path delay; [None] when the design has no
    constrained timing path (no sequential cells and no timed outputs) —
    the case the report encodes as the [0.0] sentinel. *)

val run : ?max_rounds:int -> ?mode:mode -> Layout.Place.t -> report
(** Default 3 rounds, [Incremental_sta]; stops early when the critical
    path stops improving or nothing on it can be upsized further. A round
    that fails to improve T_cp is reverted in place — the placement and
    netlist end at the best state seen, not the last tried. The two modes
    produce byte-identical reports (pinned by the incremental test
    suite); only the work done per round differs. *)
