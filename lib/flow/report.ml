let pct_change ~base v =
  if base = 0.0 then 0.0 else 100.0 *. ((v -. base) /. base)

let buf_table header rows =
  let buf = Buffer.create 4096 in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header) rows
  in
  let emit row =
    List.iteri
      (fun k cell ->
        let w = List.nth widths k in
        Buffer.add_string buf (String.make (w - String.length cell) ' ');
        Buffer.add_string buf cell;
        Buffer.add_string buf (if k = List.length row - 1 then "\n" else "  "))
      row
  in
  emit header;
  emit (List.map (fun w -> String.make w '-') widths);
  List.iter emit rows;
  Buffer.contents buf

let circuit_name (rows : Experiment.row list) =
  match rows with
  | [] -> "?"
  | r :: _ -> r.Experiment.spec.Experiment.circuit

let f0 v = Printf.sprintf "%.0f" v
let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let d v = string_of_int v

let table1 (rows : Experiment.row list) =
  let base_patterns = ref 0 and base_tdv = ref 0 and base_tat = ref 0 in
  let data =
    List.map
      (fun (r : Experiment.row) ->
        let res = r.Experiment.result in
        let patterns =
          match res.Pipeline.atpg with Some o -> Atpg.Patgen.num_patterns o | None -> 0
        in
        if r.Experiment.tp_pct = 0 then begin
          base_patterns := patterns;
          base_tdv := res.Pipeline.tdv_bits;
          base_tat := res.Pipeline.tat_cycles
        end;
        let fc, fe, faults =
          match res.Pipeline.atpg with
          | Some o ->
            (100.0 *. o.Atpg.Patgen.fault_coverage,
             100.0 *. o.Atpg.Patgen.fault_efficiency,
             o.Atpg.Patgen.universe.Atpg.Fault.total)
          | None -> (0.0, 0.0, 0)
        in
        [ d res.Pipeline.tp_count;
          d res.Pipeline.stats.Netlist.Stats.ffs;
          d (Scan.Chains.num_chains res.Pipeline.chains);
          d res.Pipeline.chains.Scan.Chains.lmax;
          d faults;
          f2 fc;
          f2 fe;
          d patterns;
          f1 (Atpg.Tdv.reduction_pct ~before:!base_patterns ~after:patterns);
          d res.Pipeline.tdv_bits;
          f1 (Atpg.Tdv.reduction_pct ~before:!base_tdv ~after:res.Pipeline.tdv_bits);
          d res.Pipeline.tat_cycles;
          f1 (Atpg.Tdv.reduction_pct ~before:!base_tat ~after:res.Pipeline.tat_cycles) ])
      rows
  in
  Printf.sprintf "Table 1 -- impact of TPI on test data (%s)\n%s" (circuit_name rows)
    (buf_table
       [ "#TP"; "#FF"; "#chains"; "l_max"; "#faults"; "FC%"; "FE%"; "SAF pat";
         "dec%"; "TDV bits"; "dec%"; "TAT cyc"; "dec%" ]
       data)

let table2 (rows : Experiment.row list) =
  let base_core = ref 0.0 and base_chip = ref 0.0 in
  let data =
    List.map
      (fun (r : Experiment.row) ->
        let res = r.Experiment.result in
        let fp = res.Pipeline.placement.Layout.Place.fp in
        let core = Layout.Floorplan.core_area fp and chip = Layout.Floorplan.chip_area fp in
        if r.Experiment.tp_pct = 0 then begin
          base_core := core;
          base_chip := chip
        end;
        [ d res.Pipeline.tp_count;
          d res.Pipeline.stats.Netlist.Stats.cells;
          d (Layout.Floorplan.num_rows fp);
          f0 (Layout.Floorplan.total_row_length fp);
          f0 core;
          f2 (pct_change ~base:!base_core core);
          f2 res.Pipeline.filler.Layout.Filler.filler_area_pct;
          f0 chip;
          f2 (pct_change ~base:!base_chip chip);
          f0 res.Pipeline.route.Layout.Route.total_wirelength ])
      rows
  in
  Printf.sprintf "Table 2 -- impact of TPI on silicon area (%s)\n%s" (circuit_name rows)
    (buf_table
       [ "#TP"; "#cells"; "#rows"; "L_rows um"; "core um2"; "inc%"; "filler%";
         "chip um2"; "inc%"; "L_wires um" ]
       data)

let table3 (rows : Experiment.row list) =
  let num_domains =
    List.fold_left
      (fun acc (r : Experiment.row) ->
        max acc (Array.length r.Experiment.result.Pipeline.sta.Sta.Analysis.per_domain))
      1 rows
  in
  let base_tcp = Array.make num_domains 0.0 in
  let data = ref [] in
  List.iter
    (fun (r : Experiment.row) ->
      let res = r.Experiment.result in
      Array.iteri
        (fun dom path ->
          match path with
          | None -> ()
          | Some (p : Sta.Analysis.critical_path) ->
            if r.Experiment.tp_pct = 0 then base_tcp.(dom) <- p.Sta.Analysis.t_cp;
            let b = p.Sta.Analysis.breakdown in
            data :=
              [ d res.Pipeline.tp_count;
                d dom;
                d p.Sta.Analysis.test_points_on_path;
                f0 p.Sta.Analysis.t_cp;
                f2 (pct_change ~base:base_tcp.(dom) p.Sta.Analysis.t_cp);
                f1 p.Sta.Analysis.fmax_mhz;
                f0 b.Sta.Analysis.b_wires;
                f0 b.Sta.Analysis.b_intrinsic;
                f0 b.Sta.Analysis.b_load_dep;
                f0 b.Sta.Analysis.b_setup;
                f0 b.Sta.Analysis.b_skew ]
              :: !data)
        res.Pipeline.sta.Sta.Analysis.per_domain)
    rows;
  Printf.sprintf "Table 3 -- impact of TPI on timing (%s)\n%s" (circuit_name rows)
    (buf_table
       [ "#TP"; "dom"; "#TP_cp"; "T_cp ps"; "inc%"; "F_max MHz"; "T_wires";
         "T_intr"; "T_load"; "T_setup"; "T_skew" ]
       (List.rev !data))

(* repaired sweep: one pass yields both columns, because [repair.pre_sta]
   is byte-identical to what the unrepaired flow would have reported *)
let table3_repaired (rows : Experiment.row list) =
  let base_tcp = ref 0.0 in
  let worst_tcp (sta : Sta.Analysis.t) =
    match sta.Sta.Analysis.worst with
    | Some p -> p.Sta.Analysis.t_cp
    | None -> 0.0
  in
  let worst_fmax (sta : Sta.Analysis.t) =
    match sta.Sta.Analysis.worst with
    | Some p -> p.Sta.Analysis.fmax_mhz
    | None -> 0.0
  in
  let data =
    List.filter_map
      (fun (r : Experiment.row) ->
        let res = r.Experiment.result in
        match res.Pipeline.repair with
        | None -> None
        | Some rep ->
          let un_tcp = worst_tcp rep.Repair.pre_sta in
          let rp_tcp = worst_tcp res.Pipeline.sta in
          if r.Experiment.tp_pct = 0 then base_tcp := un_tcp;
          Some
            [ d res.Pipeline.tp_count;
              f0 un_tcp;
              f2 (pct_change ~base:!base_tcp un_tcp);
              f0 rp_tcp;
              f2 (pct_change ~base:!base_tcp rp_tcp);
              f1 (worst_fmax rep.Repair.pre_sta);
              f1 (worst_fmax res.Pipeline.sta);
              f0 rep.Repair.cell_area_before;
              f0 rep.Repair.cell_area_after;
              d rep.Repair.accepted;
              d rep.Repair.buffers_inserted;
              d rep.Repair.upsized;
              d rep.Repair.downsized;
              d rep.Repair.swapped ])
      rows
  in
  if data = [] then ""
  else
    Printf.sprintf "Table 3R -- timing after post-route repair (%s)\n%s"
      (circuit_name rows)
      (buf_table
         [ "#TP"; "T_cp ps"; "inc%"; "rT_cp ps"; "rinc%"; "F_max MHz";
           "rF_max MHz"; "cells um2"; "rcells um2"; "acc"; "buf"; "up"; "down";
           "swap" ]
         data)

let degraded_lines (grows : Experiment.guarded_row list) =
  List.map
    (fun (g : Experiment.guarded_row) ->
      let r = g.Experiment.g_report in
      let detail =
        match r.Guard.error with
        | Some e -> Printf.sprintf "stage %s: %s" (Guard.stage_name e.Guard.stage) e.Guard.detail
        | None -> "unknown failure"
      in
      Printf.sprintf "DEGRADED %s @%d%% TP (after %d attempt%s): %s"
        g.Experiment.g_spec.Experiment.circuit g.Experiment.g_tp_pct r.Guard.attempts
        (if r.Guard.attempts = 1 then "" else "s")
        detail)
    (Experiment.degraded_rows grows)

let summary (rows : Experiment.row list) =
  let nonzero =
    List.filter (fun (r : Experiment.row) -> r.Experiment.tp_pct > 0) rows
    |> List.sort (fun a b -> compare a.Experiment.tp_pct b.Experiment.tp_pct)
  in
  match
    ( List.find_opt (fun (r : Experiment.row) -> r.Experiment.tp_pct = 0) rows,
      (match nonzero with r :: _ -> Some r | [] -> None) )
  with
  | Some r0, Some r1 ->
    let core r =
      Layout.Floorplan.core_area r.Experiment.result.Pipeline.placement.Layout.Place.fp
    in
    let tcp (r : Experiment.row) =
      match r.Experiment.result.Pipeline.sta.Sta.Analysis.worst with
      | Some p -> p.Sta.Analysis.t_cp
      | None -> 0.0
    in
    let pats (r : Experiment.row) =
      match r.Experiment.result.Pipeline.atpg with
      | Some o -> Atpg.Patgen.num_patterns o
      | None -> 0
    in
    Printf.sprintf
      "%s: inserting %d%% test points changes core area by %+.2f%%, critical-path delay \
       by %+.2f%%, and the compact stuck-at pattern count by %+.1f%%.\n"
      (circuit_name rows) r1.Experiment.tp_pct
      (pct_change ~base:(core r0) (core r1))
      (pct_change ~base:(tcp r0) (tcp r1))
      (if pats r0 = 0 then 0.0
       else -.Atpg.Tdv.reduction_pct ~before:(pats r0) ~after:(pats r1))
  | _ -> "summary requires a baseline and at least one test-point level\n"

let guarded_summary (grows : Experiment.guarded_row list) =
  let ok = Experiment.completed_rows grows in
  let flags = degraded_lines grows in
  let body =
    match ok with
    | [] -> "no level of the sweep completed\n"
    | ok -> summary ok
  in
  match flags with
  | [] -> body
  | flags -> body ^ String.concat "\n" flags ^ "\n"
