module Design = Netlist.Design
module Cell = Stdcell.Cell
module P = Pipeline

type mutation =
  | Dangling_output
  | Floating_input
  | Clock_mismatch
  | Broken_scan_order
  | Overlapping_placement
  | Out_of_core_cell
  | Corrupt_rc
  | Combinational_cycle
  | Undriven_net
  | Zero_length_row
  | Orphan_repair_buffer

let all =
  [ Dangling_output; Floating_input; Clock_mismatch; Broken_scan_order;
    Overlapping_placement; Out_of_core_cell; Corrupt_rc; Combinational_cycle;
    Undriven_net; Zero_length_row; Orphan_repair_buffer ]

let name = function
  | Dangling_output -> "dangling-output"
  | Floating_input -> "floating-input"
  | Clock_mismatch -> "clock-domain-mismatch"
  | Broken_scan_order -> "broken-scan-order"
  | Overlapping_placement -> "overlapping-placement"
  | Out_of_core_cell -> "out-of-core-cell"
  | Corrupt_rc -> "corrupt-rc"
  | Combinational_cycle -> "combinational-cycle"
  | Undriven_net -> "undriven-net"
  | Zero_length_row -> "zero-length-row"
  | Orphan_repair_buffer -> "orphan-repair-buffer"

(* where the corruption is applied (after that stage's body, before its
   checks) and the error-class tag the guard must classify it under *)
let injection_stage = function
  | Dangling_output | Floating_input | Clock_mismatch | Undriven_net -> Guard.Tpi_scan
  | Overlapping_placement | Out_of_core_cell | Zero_length_row -> Guard.Placement
  | Broken_scan_order -> Guard.Reorder_atpg
  | Combinational_cycle -> Guard.Eco_cts_route
  | Corrupt_rc -> Guard.Extract
  | Orphan_repair_buffer -> Guard.Repair

let expected_class = function
  | Dangling_output -> "dangling-output"
  | Floating_input -> "floating-input"
  | Clock_mismatch -> "clock-mismatch"
  | Broken_scan_order -> "scan-chain-order"
  | Overlapping_placement -> "cell-overlap"
  | Out_of_core_cell -> "outside-core"
  | Corrupt_rc -> "nonfinite-rc"
  | Combinational_cycle -> "combinational-cycle"
  | Undriven_net -> "undriven-net"
  | Zero_length_row -> "zero-length-row"
  | Orphan_repair_buffer -> "dangling-output"

(* the stage whose guarded run must surface the error (the corruption may
   legitimately ride along until a later stage's tool chokes on it) *)
let detection_stage = function
  | Combinational_cycle -> Guard.Sta
  | m -> injection_stage m

exception No_candidate of string

let () =
  Printexc.register_printer (function
    | No_candidate what -> Some ("Inject.No_candidate: no candidate for " ^ what)
    | _ -> None)

let no_candidate what = raise (No_candidate what)

let is_plain_comb (i : Design.instance) =
  match i.Design.cell.Cell.kind with
  | Cell.Inv | Cell.Buf | Cell.Clkbuf | Cell.Tiehi | Cell.Tielo | Cell.Filler
  | Cell.Dff | Cell.Sdff | Cell.Tsff -> false
  | _ -> true

let find_inst d pred =
  let found = ref None in
  Design.iter_insts d (fun i -> if !found = None && pred i then found := Some i);
  !found

(* detach every load of a gate's output and park them on one of the gate's
   own (driven) input nets: the output then drives nothing *)
let make_dangling_output d =
  let cand (i : Design.instance) =
    is_plain_comb i
    &&
    let o = Design.net_of_output d i in
    o >= 0
    && (Design.net d o).Design.sinks <> []
    && (Design.net d o).Design.out_port < 0
    && Array.exists (fun nid -> nid >= 0) i.Design.conns
  in
  match find_inst d cand with
  | None -> no_candidate "dangling output"
  | Some i ->
    let o = Design.net_of_output d i in
    let out_pin = Cell.output_pin i.Design.cell in
    let park =
      let p = ref (-1) in
      Array.iteri
        (fun pin nid -> if !p < 0 && pin <> out_pin && nid >= 0 then p := nid)
        i.Design.conns;
      !p
    in
    List.iter
      (fun (si, sp) ->
        Design.disconnect d ~inst:si ~pin:sp;
        Design.connect d ~inst:si ~pin:sp ~net:park)
      (Design.net d o).Design.sinks

let make_floating_input d =
  let cand (i : Design.instance) =
    is_plain_comb i
    && Array.exists
         (fun nid -> nid >= 0 && List.length (Design.net d nid).Design.sinks >= 2)
         i.Design.conns
  in
  match find_inst d cand with
  | None -> no_candidate "floating input"
  | Some i ->
    let pin = ref (-1) in
    Array.iteri
      (fun p nid ->
        if
          !pin < 0
          && p <> Cell.output_pin i.Design.cell
          && nid >= 0
          && List.length (Design.net d nid).Design.sinks >= 2
        then pin := p)
      i.Design.conns;
    Design.disconnect d ~inst:i.Design.id ~pin:!pin

let make_clock_mismatch d =
  let ff =
    find_inst d (fun i -> Design.is_ff i && Cell.clock_pin i.Design.cell <> None)
  in
  let rogue =
    find_inst d (fun i ->
        is_plain_comb i
        && (match i.Design.cell.Cell.kind with
            | Cell.Nand2 | Cell.Nand3 | Cell.Nor2 | Cell.Nor3 | Cell.And2 | Cell.Or2
            | Cell.Xor2 | Cell.Xnor2 | Cell.Aoi21 | Cell.Oai21 | Cell.Mux2 -> true
            | _ -> false)
        && Design.net_of_output d i >= 0)
  in
  match (ff, rogue) with
  | Some ff, Some g ->
    let ck = Option.get (Cell.clock_pin ff.Design.cell) in
    Design.disconnect d ~inst:ff.Design.id ~pin:ck;
    Design.connect d ~inst:ff.Design.id ~pin:ck ~net:(Design.net_of_output d g)
  | _ -> no_candidate "clock mismatch"

let make_undriven_net d =
  let cand (i : Design.instance) =
    is_plain_comb i
    &&
    let o = Design.net_of_output d i in
    o >= 0 && (Design.net d o).Design.sinks <> []
  in
  match find_inst d cand with
  | None -> no_candidate "undriven net"
  | Some i -> Design.disconnect d ~inst:i.Design.id ~pin:(Cell.output_pin i.Design.cell)

let make_comb_cycle d =
  let g1 = find_inst d is_plain_comb in
  let g2 =
    find_inst d (fun i ->
        is_plain_comb i && (match g1 with Some a -> a.Design.id <> i.Design.id | None -> false))
  in
  match (g1, g2) with
  | Some g1, Some g2 when Design.net_of_output d g1 >= 0 && Design.net_of_output d g2 >= 0 ->
    let o1 = Design.net_of_output d g1 and o2 = Design.net_of_output d g2 in
    Design.disconnect d ~inst:g1.Design.id ~pin:0;
    Design.connect d ~inst:g1.Design.id ~pin:0 ~net:o2;
    Design.disconnect d ~inst:g2.Design.id ~pin:0;
    Design.connect d ~inst:g2.Design.id ~pin:0 ~net:o1
  | _ -> no_candidate "combinational cycle"

let make_broken_scan_order (st : P.state) =
  match st.P.s_chains with
  | Some { Scan.Chains.chains; _ } ->
    let k = ref (-1) in
    Array.iteri (fun c chain -> if !k < 0 && Array.length chain >= 2 then k := c) chains;
    if !k < 0 then no_candidate "scan chain with two cells";
    let chain = chains.(!k) in
    let tmp = chain.(0) in
    chain.(0) <- chain.(1);
    chain.(1) <- tmp
  | None -> no_candidate "chains"

let make_overlap (st : P.state) =
  let pl = Option.get st.P.s_placement in
  let d = st.P.s_design in
  let seen = Hashtbl.create 64 in
  let done_ = ref false in
  Design.iter_insts d (fun i ->
      if
        (not !done_)
        && i.Design.cell.Cell.kind <> Cell.Filler
        && Layout.Place.is_placed pl i.Design.id
      then begin
        let r = pl.Layout.Place.row.(i.Design.id) in
        match Hashtbl.find_opt seen r with
        | Some other ->
          pl.Layout.Place.x.(i.Design.id) <- pl.Layout.Place.x.(other);
          done_ := true
        | None -> Hashtbl.add seen r i.Design.id
      end);
  if not !done_ then no_candidate "two cells in one row"

let make_out_of_core (st : P.state) =
  let pl = Option.get st.P.s_placement in
  let d = st.P.s_design in
  match
    find_inst d (fun i ->
        i.Design.cell.Cell.kind <> Cell.Filler && Layout.Place.is_placed pl i.Design.id)
  with
  | None -> no_candidate "placed cell"
  | Some i ->
    pl.Layout.Place.x.(i.Design.id) <-
      pl.Layout.Place.fp.Layout.Floorplan.core.Geom.Rect.lx -. 50.0

let make_zero_length_row (st : P.state) =
  let fp = (Option.get st.P.s_placement).Layout.Place.fp in
  if Array.length fp.Layout.Floorplan.rows = 0 then no_candidate "row";
  let r = fp.Layout.Floorplan.rows.(0) in
  fp.Layout.Floorplan.rows.(0) <-
    Geom.Rect.of_size ~lx:r.Geom.Rect.lx ~ly:r.Geom.Rect.ly ~w:0.0
      ~h:(Geom.Rect.height r)

(* splice a buffer onto a net but leave its output unwired and its load
   list untouched: exactly the inconsistent netlist a buggy speculative
   buffer-revert in the repair stage would leave behind *)
let make_orphan_repair_buffer (st : P.state) =
  let d = st.P.s_design in
  let pl = Option.get st.P.s_placement in
  let cand (i : Design.instance) =
    is_plain_comb i
    && Design.net_of_output d i >= 0
    && Layout.Place.is_placed pl i.Design.id
  in
  match find_inst d cand with
  | None -> no_candidate "net to hang a repair buffer on"
  | Some g ->
    let buf = Stdcell.Library.min_drive_strength d.Design.lib Cell.Buf in
    let b = Design.add_instance d ~name:"repair_orphan_buf" ~cell:buf in
    Design.connect d ~inst:b.Design.id ~pin:0 ~net:(Design.net_of_output d g);
    Layout.Eco.add_cell pl ~inst:b.Design.id
      ~near:(Layout.Place.position pl g.Design.id)

let make_corrupt_rc (st : P.state) =
  match st.P.s_rc with
  | Some rc when Array.length rc > 0 ->
    let k = Array.length rc / 2 in
    rc.(k) <- { rc.(k) with Layout.Extract.total_cap_ff = Float.nan }
  | _ -> no_candidate "rc array"

let corrupt m (st : P.state) =
  let d = st.P.s_design in
  match m with
  | Dangling_output -> make_dangling_output d
  | Floating_input -> make_floating_input d
  | Clock_mismatch -> make_clock_mismatch d
  | Undriven_net -> make_undriven_net d
  | Combinational_cycle -> make_comb_cycle d
  | Broken_scan_order -> make_broken_scan_order st
  | Overlapping_placement -> make_overlap st
  | Out_of_core_cell -> make_out_of_core st
  | Zero_length_row -> make_zero_length_row st
  | Corrupt_rc -> make_corrupt_rc st
  | Orphan_repair_buffer -> make_orphan_repair_buffer st

type outcome = {
  mutation : mutation;
  injected_at : Guard.stage;
  expected : string;
  error : Guard.stage_error option;
  detected : bool;
}

let test_options =
  { P.default_options with
    P.tp_percent = 2.0;
    chain_config = Scan.Chains.Max_length 10;
    run_atpg = false }

let run_one ?pool ?(ffs = 40) ?(gates = 500) m =
  let at = injection_stage m in
  let tamper ~attempt:_ stage st = if stage = at then corrupt m st in
  (* a repair-stage fault should hit a repair stage that actually ran *)
  let repair = at = Guard.Repair in
  let report =
    Guard.run ~policy:Guard.Degrade
      ~options:{ test_options with P.pool; repair }
      ~tamper
      ~circuit:("inject:" ^ name m)
      (fun () -> Circuits.Bench.tiny ~ffs ~gates ())
  in
  let expected = expected_class m in
  let detected =
    match report.Guard.error with
    | Some e ->
      e.Guard.stage = detection_stage m
      && String.length e.Guard.detail >= String.length expected
      && String.sub e.Guard.detail 0 (String.length expected) = expected
    | None -> false
  in
  { mutation = m; injected_at = at; expected; error = report.Guard.error; detected }

let selftest ?pool ?ffs ?gates () = List.map (fun m -> run_one ?pool ?ffs ?gates m) all

let all_detected outcomes = List.for_all (fun o -> o.detected) outcomes

(* chaos demos for the Recover / Degrade policies, used by the selftest
   command and the test suite *)

let recover_converges () =
  (* the placement "tool" crashes on the first attempt only: Recover must
     reseed, restart and converge *)
  let tamper ~attempt stage _ =
    if stage = Guard.Placement && attempt = 0 then failwith "injected placement crash"
  in
  let r =
    Guard.run ~policy:Guard.Recover ~retries:3 ~options:test_options ~tamper
      ~circuit:"chaos:recover"
      (fun () -> Circuits.Bench.tiny ~ffs:40 ~gates:500 ())
  in
  Guard.succeeded r && r.Guard.attempts = 2

let degrade_keeps_partials () =
  (* extraction dies; Degrade must keep the placed/routed head stages and
     mark extract/sta absent without raising *)
  let tamper ~attempt:_ stage _ =
    if stage = Guard.Extract then failwith "injected extraction crash"
  in
  let r =
    Guard.run ~policy:Guard.Degrade ~options:test_options ~tamper ~circuit:"chaos:degrade"
      (fun () -> Circuits.Bench.tiny ~ffs:40 ~gates:500 ())
  in
  (not (Guard.succeeded r))
  && r.Guard.result = None
  && (match r.Guard.error with
      | Some e -> e.Guard.stage = Guard.Extract
      | None -> false)
  && List.mem_assoc Guard.Sta r.Guard.stage_log
  && List.assoc Guard.Sta r.Guard.stage_log = Guard.Skipped
  &&
  match r.Guard.state with
  | Some st -> st.P.s_placement <> None && st.P.s_route <> None && st.P.s_sta = None
  | None -> false

(* ---- service-level fault matrix (executed by Serve.Chaos) ---- *)

type service_fault =
  | Malformed_request
  | Queue_overflow
  | Client_disconnect

let service_all = [ Malformed_request; Queue_overflow; Client_disconnect ]

let service_name = function
  | Malformed_request -> "malformed-request"
  | Queue_overflow -> "queue-overflow"
  | Client_disconnect -> "client-disconnect"

let service_expected_class = function
  | Malformed_request -> "bad-request"
  | Queue_overflow -> "backpressure"
  | Client_disconnect -> "cancelled"

type service_outcome = {
  fault : service_fault;
  s_expected : string;
  observed : string option;
  recovered : bool;
  s_detected : bool;
}

let service_outcome fault ~observed ~recovered =
  let s_expected = service_expected_class fault in
  { fault;
    s_expected;
    observed;
    recovered;
    s_detected = observed = Some s_expected && recovered }

let all_service_detected outcomes = List.for_all (fun o -> o.s_detected) outcomes

let pp_service_outcome ppf o =
  Format.fprintf ppf "%-22s -> %s" (service_name o.fault)
    (match (o.s_detected, o.observed) with
     | true, _ -> Printf.sprintf "detected (%s) and daemon recovered" o.s_expected
     | false, Some c when not o.recovered ->
       Printf.sprintf "classified (%s) but daemon DID NOT RECOVER" c
     | false, Some c -> Printf.sprintf "MISCLASSIFIED (wanted %s, got %s)" o.s_expected c
     | false, None -> Printf.sprintf "MISSED (wanted %s, no error reported)" o.s_expected)

let pp_outcome ppf o =
  Format.fprintf ppf "%-22s at %-13s -> %s" (name o.mutation)
    (Guard.stage_name o.injected_at)
    (match (o.detected, o.error) with
     | true, Some e -> Printf.sprintf "detected (%s)" e.Guard.detail
     | false, Some e -> Printf.sprintf "MISCLASSIFIED (wanted %s, got %s)" o.expected e.Guard.detail
     | _, None -> Printf.sprintf "MISSED (wanted %s, flow completed)" o.expected)
