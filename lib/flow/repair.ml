(* Post-route, parasitic-aware timing repair (DESIGN.md §6.7).

   Driven by WNS/TNS off the compiled timing graph, the engine walks the
   near-critical net set and trials three timing ECOs through the Retime
   context — buffer insertion on loaded critical nets, driver upsizing,
   and commutative-pin swapping — plus off-critical downsizing for area
   recovery. Every ECO is speculative: it is re-timed individually and
   accepted only if the (WNS, TNS) objective improves lexicographically,
   reverted exactly otherwise. Because each revert restores the context
   byte-for-byte (§6.6), a rejected trial leaves no trace in timing,
   routing or area — the structural discipline whose absence was the
   Timingfix accept-worse bug. *)

module Design = Netlist.Design
module Cell = Stdcell.Cell
module Place = Layout.Place

type mode = Timingfix.mode = Full_sta | Incremental_sta

type config = {
  margin_ps : float;
  max_edits : int;
  max_passes : int;
  area_recovery : bool;
  slack_guard_ps : float;
  buffer_min_sinks : int;
}

let default_config =
  { margin_ps = 120.0;
    max_edits = 200;
    max_passes = 3;
    area_recovery = true;
    slack_guard_ps = 250.0;
    buffer_min_sinks = 2 }

type eco_kind = Insert_buffer | Upsize | Downsize | Swap_pins

type eco = {
  kind : eco_kind;
  target : string;
  accepted : bool;
  wns_gain_ps : float;
}

type report = {
  passes : int;
  tried : int;
  accepted : int;
  buffers_inserted : int;
  upsized : int;
  downsized : int;
  swapped : int;
  wns_before : float;
  tns_before : float;
  wns_after : float;
  tns_after : float;
  t_cp_before : float;
  t_cp_after : float;
  cell_area_before : float;
  cell_area_after : float;
  pre_sta : Sta.Analysis.t;
  sta : Sta.Analysis.t;
  route : Layout.Route.t;
  rc : Layout.Extract.net_rc array;
  edits : eco list;
}

let kind_name = function
  | Insert_buffer -> "buffer"
  | Upsize -> "upsize"
  | Downsize -> "downsize"
  | Swap_pins -> "swap"

let m_tried = Obs.Metrics.counter "repair.ecos_tried"
let m_accepted = Obs.Metrics.counter "repair.ecos_accepted"
let m_reverted = Obs.Metrics.counter "repair.ecos_reverted"
let m_buffers = Obs.Metrics.counter "repair.buffers_inserted"
let m_upsizes = Obs.Metrics.counter "repair.cells_upsized"
let m_downsizes = Obs.Metrics.counter "repair.cells_downsized"
let m_swaps = Obs.Metrics.counter "repair.pins_swapped"

(* the objective: worst then total negative slack off the live graph.
   WNS is the *smallest* slack regardless of sign, so repair keeps
   buying timing margin even when the design already closes — which is
   what turns the paper's Table 3 T_cp increases back down. *)
let objective ctx =
  let s = Sta.Tgraph.slack (Retime.tgraph ctx) in
  (s.Sta.Slack.wns, s.Sta.Slack.tns)

(* timing ECOs must strictly improve; ties are reverts (no free churn) *)
let better (w', t') (w, t) = w' > w || (w' = w && t' > t)

(* area ECOs must not degrade timing at all *)
let no_worse (w', t') (w, t) = w' >= w && t' >= t

let cell_area d = (Netlist.Stats.compute d).Netlist.Stats.cell_area

(* input pins that may be exchanged without changing the logic function:
   the n-ary symmetric kinds on all inputs, AOI21/OAI21 on A/B only
   (Y = !((A op B) op' C) is symmetric in A,B alone); Mux2's select and
   everything sequential are off limits *)
let commutative_pins (c : Cell.t) =
  let inputs =
    List.filter
      (fun p -> Stdcell.Pin.is_input c.Cell.pins.(p))
      (List.init (Array.length c.Cell.pins) Fun.id)
  in
  match c.Cell.kind with
  | Cell.Nand2 | Cell.Nand3 | Cell.Nor2 | Cell.Nor3 | Cell.And2 | Cell.Or2
  | Cell.Xor2 | Cell.Xnor2 ->
    inputs
  | Cell.Aoi21 | Cell.Oai21 ->
    (match inputs with a :: b :: _ -> [ a; b ] | _ -> [])
  | _ -> []

type engine = {
  ctx : Retime.t;
  cfg : config;
  mutable obj : float * float;
  mutable tried : int;
  mutable budget_base : int;
  (* [max_edits] is a per-phase budget: the area-recovery pass rebases the
     counter so exhausting the timing passes cannot starve it *)
  mutable accepted : int;
  mutable buffers : int;
  mutable upsizes : int;
  mutable downsizes : int;
  mutable swaps : int;
  mutable edits : eco list;  (* newest first *)
}

let budget_left e = e.tried - e.budget_base < e.cfg.max_edits

(* one speculative ECO: [apply] mutates the context, [revert] must undo it
   exactly. Records the trial, moves the objective on acceptance. *)
let trial e ~kind ~target ~accept apply revert =
  e.tried <- e.tried + 1;
  Obs.Metrics.incr m_tried;
  apply ();
  let obj' = objective e.ctx in
  let ok = accept obj' e.obj in
  if ok then begin
    e.accepted <- e.accepted + 1;
    Obs.Metrics.incr m_accepted
  end
  else begin
    revert ();
    Obs.Metrics.incr m_reverted
  end;
  e.edits <-
    { kind; target; accepted = ok; wns_gain_ps = fst obj' -. fst e.obj } :: e.edits;
  if ok then e.obj <- obj';
  ok

let try_swap e ~inst ~fast_pin ~slow_pin =
  let d = Retime.design e.ctx in
  let i = Design.inst d inst in
  let target = Printf.sprintf "%s.%d<->%d" i.Design.iname fast_pin slow_pin in
  let swap () =
    ignore (Retime.swap_pins e.ctx ~inst ~pin_a:fast_pin ~pin_b:slow_pin)
  in
  if trial e ~kind:Swap_pins ~target ~accept:better swap swap then begin
    e.swaps <- e.swaps + 1;
    Obs.Metrics.incr m_swaps
  end

let try_upsize e ~inst =
  let d = Retime.design e.ctx in
  let old_cell = (Design.inst d inst).Design.cell in
  match Stdcell.Library.upsize d.Design.lib old_cell with
  | None -> ()
  | Some _ ->
    let ok =
      trial e ~kind:Upsize ~target:(Design.inst d inst).Design.iname ~accept:better
        (fun () -> ignore (Retime.upsize e.ctx ~inst))
        (fun () -> ignore (Retime.resize e.ctx ~inst ~cell:old_cell))
    in
    if ok then begin
      e.upsizes <- e.upsizes + 1;
      Obs.Metrics.incr m_upsizes
    end

let try_buffer e ~net =
  let d = Retime.design e.ctx in
  let target = (Design.net d net).Design.nname in
  let buf = ref (-1) in
  let ok =
    trial e ~kind:Insert_buffer ~target ~accept:better
      (fun () ->
        let b, _ = Retime.insert_buffer e.ctx ~net in
        buf := b.Design.id)
      (fun () -> ignore (Retime.remove_buffer e.ctx ~inst:!buf))
  in
  if ok then begin
    e.buffers <- e.buffers + 1;
    Obs.Metrics.incr m_buffers
  end

let try_downsize e ~inst =
  let d = Retime.design e.ctx in
  let old_cell = (Design.inst d inst).Design.cell in
  match Stdcell.Library.downsize d.Design.lib old_cell with
  | None -> ()
  | Some _ ->
    let ok =
      trial e ~kind:Downsize ~target:(Design.inst d inst).Design.iname
        ~accept:no_worse
        (fun () -> ignore (Retime.downsize e.ctx ~inst))
        (fun () -> ignore (Retime.resize e.ctx ~inst ~cell:old_cell))
    in
    if ok then begin
      e.downsizes <- e.downsizes + 1;
      Obs.Metrics.incr m_downsizes
    end

(* near-critical nets, most critical first (ties by net id for
   determinism); critical_nets recomputes required times on demand, and
   every Retime edit invalidates them, so the set is always fresh *)
let critical_candidates e =
  let tg = Retime.tgraph e.ctx in
  let nets = Sta.Tgraph.critical_nets tg ~margin_ps:e.cfg.margin_ps in
  let slack_of nid =
    match Sta.Tgraph.net_slack tg nid with Some s -> s | None -> infinity
  in
  List.stable_sort
    (fun a b -> compare (slack_of a, a) (slack_of b, b))
    nets

(* all three timing levers on one critical net: move its latest signal to
   the fastest commutative pin of each sink, upsize its driver, and (on
   multi-sink nets) decouple the load behind a buffer *)
let repair_net e ~net =
  let d = Retime.design e.ctx in
  let sinks = (Design.net d net).Design.sinks in
  List.iter
    (fun (iid, pin) ->
      if budget_left e then begin
        let i = Design.inst d iid in
        let comm = commutative_pins i.Design.cell in
        match comm with
        | fast :: _ when List.mem pin comm && pin <> fast ->
          (* the critical signal sits on a slower commutative pin; only
             worth a trial if the fast pin carries a different net *)
          if i.Design.conns.(fast) >= 0 && i.Design.conns.(fast) <> net then
            try_swap e ~inst:iid ~fast_pin:fast ~slow_pin:pin
        | _ -> ()
      end)
    sinks;
  (if budget_left e then
     match (Design.net d net).Design.driver with
     | Design.Cell_pin (iid, _) -> try_upsize e ~inst:iid
     | _ -> ());
  if budget_left e && List.length sinks >= e.cfg.buffer_min_sinks then
    try_buffer e ~net

(* off-critical area recovery: shrink any combinational cell whose every
   incident net keeps [slack_guard_ps] of headroom, accepting only moves
   that leave (WNS, TNS) untouched or better. Clock buffers are excluded
   (their sizing was set by CTS/DRC) as are sequential cells. *)
let recover_area e =
  e.budget_base <- e.tried;
  let d = Retime.design e.ctx in
  let tg = Retime.tgraph e.ctx in
  Sta.Tgraph.compute_required tg;
  let relaxed nid =
    match Sta.Tgraph.net_slack tg nid with
    | Some s -> s >= e.cfg.slack_guard_ps
    | None -> true
  in
  let candidates = ref [] in
  Design.iter_insts d (fun i ->
      let c = i.Design.cell in
      if
        (not c.Cell.sequential)
        && c.Cell.kind <> Cell.Clkbuf
        && Array.length c.Cell.arcs > 0
        && c.Cell.drive > 1
        && Array.for_all (fun nid -> nid < 0 || relaxed nid) i.Design.conns
      then candidates := i.Design.id :: !candidates);
  List.iter
    (fun iid -> if budget_left e then try_downsize e ~inst:iid)
    (List.rev !candidates)

let run ?(config = default_config) ?(mode = Incremental_sta) ?route ?rc
    (pl : Place.t) =
  Obs.Trace.with_span ~name:"flow.repair" @@ fun () ->
  let d = pl.Place.design in
  let cell_area_before = cell_area d in
  let route0 = match route with Some r -> r | None -> Layout.Route.run pl in
  let rc0 = match rc with Some r -> r | None -> Layout.Extract.run pl route0 in
  let ctx = Retime.create ~full_sta:(mode = Full_sta) pl route0 rc0 in
  let pre_sta = Retime.analysis ctx in
  let t_cp_before = Option.value ~default:0.0 (Timingfix.worst_tcp pre_sta) in
  let e =
    { ctx;
      cfg = config;
      obj = objective ctx;
      tried = 0;
      budget_base = 0;
      accepted = 0;
      buffers = 0;
      upsizes = 0;
      downsizes = 0;
      swaps = 0;
      edits = [] }
  in
  let wns_before, tns_before = e.obj in
  let passes = ref 0 in
  let continue_ = ref true in
  while !continue_ && !passes < config.max_passes && budget_left e do
    incr passes;
    let accepted_before = e.accepted in
    Obs.Trace.with_span ~name:"repair.pass"
      ~attrs:[ ("pass", Obs.Json.Int !passes) ]
      (fun () ->
        List.iter
          (fun net -> if budget_left e then repair_net e ~net)
          (critical_candidates e));
    if e.accepted = accepted_before then continue_ := false
  done;
  if config.area_recovery then
    Obs.Trace.with_span ~name:"repair.area-recovery" (fun () -> recover_area e);
  let sta = Retime.analysis ctx in
  let wns_after, tns_after = e.obj in
  { passes = !passes;
    tried = e.tried;
    accepted = e.accepted;
    buffers_inserted = e.buffers;
    upsized = e.upsizes;
    downsized = e.downsizes;
    swapped = e.swaps;
    wns_before;
    tns_before;
    wns_after;
    tns_after;
    t_cp_before;
    t_cp_after = Option.value ~default:0.0 (Timingfix.worst_tcp sta);
    cell_area_before;
    cell_area_after = cell_area d;
    pre_sta;
    sta;
    route = Retime.route ctx;
    rc = Retime.rc ctx;
    edits = List.rev e.edits }
