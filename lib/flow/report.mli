(** Formatting of the paper's tables from experiment rows. *)

val table1 : Experiment.row list -> string
(** Impact of TPI on test data: #TP, #FF, #chains, l_max, #faults, FC, FE,
    SAF patterns (and reduction), TDV (and reduction), TAT (and reduction). *)

val table2 : Experiment.row list -> string
(** Impact on silicon area: #cells, #rows, L_rows, core area (+%), filler
    area %, chip area (+%), L_wires. *)

val table3 : Experiment.row list -> string
(** Impact on timing, one line per clock domain: #TP_cp, T_cp (+%), F_max
    and the equation-(3) decomposition. *)

val table3_repaired : Experiment.row list -> string
(** Repaired vs unrepaired timing at each level of a [~repair:true] sweep:
    unrepaired T_cp/increase% (off each level's {!Repair.report.pre_sta},
    byte-identical to the unrepaired flow's STA), repaired T_cp/increase%
    (both against the unrepaired 0% base), F_max before/after, cell area
    before/after and the accepted-ECO counts. Empty string when no row
    carries a repair report. *)

val summary : Experiment.row list -> string
(** One-paragraph recap in the style of the paper's abstract claims. *)

val degraded_lines : Experiment.guarded_row list -> string list
(** One "DEGRADED circuit @N% TP ..." line per failed level of a guarded
    sweep, naming the failing stage and its typed error. *)

val guarded_summary : Experiment.guarded_row list -> string
(** {!summary} over the completed levels, followed by the degraded-row
    flags. *)
