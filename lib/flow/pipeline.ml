module Design = Netlist.Design

type sta_mode = Full_sta | Incremental_sta

type options = {
  tp_percent : float;
  chain_config : Scan.Chains.config;
  utilization : float;
  run_atpg : bool;
  atpg_config : Atpg.Patgen.config;
  tpi_config : Tpi.Select.config;
  seed : int;
  pool : Par.Pool.t option;
  cache : Cache.Store.t option;
  cancel : Cancel.t option;
  lint : bool;
  sta_mode : sta_mode;
  repair : bool;
  repair_config : Repair.config;
}

let default_options =
  { tp_percent = 0.0;
    chain_config = Scan.Chains.Max_length 100;
    utilization = 0.97;
    run_atpg = true;
    atpg_config = Atpg.Patgen.default_config;
    tpi_config = Tpi.Select.default_config;
    seed = 0x71C0;
    pool = None;
    cache = None;
    cancel = None;
    lint = false;
    sta_mode = Full_sta;
    repair = false;
    repair_config = Repair.default_config }

type result = {
  design : Netlist.Design.t;
  options : options;
  tp_count : int;
  tpi_report : Tpi.Select.report option;
  chains : Scan.Chains.t;
  reorder : Scan.Reorder.result;
  atpg : Atpg.Patgen.outcome option;
  tdv_bits : int;
  tat_cycles : int;
  placement : Layout.Place.t;
  cts : Layout.Cts.report;
  filler : Layout.Filler.report;
  route : Layout.Route.t;
  rc : Layout.Extract.net_rc array;
  sta : Sta.Analysis.t;
  repair : Repair.report option;
  tgraph : Sta.Tgraph.t option;
  lint_report : Lint.Engine.report option;
  stats : Netlist.Stats.t;
  drc : Layout.Drc.report;
}

(* The six Figure-2 stages, split so a guarded runner (Flow.Guard) can
   execute, time, check and retry them one at a time. Each stage reads its
   prerequisites from the state and fills in its own slots; [run] below
   composes them into the original straight-line flow. *)

type state = {
  mutable s_design : Design.t;
  s_options : options;
  mutable s_tp_count : int;
  mutable s_tpi_report : Tpi.Select.report option;
  mutable s_placement : Layout.Place.t option;
  mutable s_chains : Scan.Chains.t option;
  mutable s_reorder : Scan.Reorder.result option;
  mutable s_atpg : Atpg.Patgen.outcome option;
  mutable s_tdv_bits : int;
  mutable s_tat_cycles : int;
  mutable s_cts : Layout.Cts.report option;
  mutable s_drc : Layout.Drc.report option;
  mutable s_filler : Layout.Filler.report option;
  mutable s_route : Layout.Route.t option;
  mutable s_rc : Layout.Extract.net_rc array option;
  mutable s_sta : Sta.Analysis.t option;
  mutable s_repair : Repair.report option;
  (* live compiled graph (Incremental_sta only); deliberately outside the
     stage-cache snapshot — it is a derived accelerator, cheap to recompile
     and not Marshal-friendly to share across processes *)
  mutable s_tgraph : Sta.Tgraph.t option;
  mutable s_lint : Lint.Engine.report option;
}

let init ?(options = default_options) (d : Design.t) =
  { s_design = d;
    s_options = options;
    s_tp_count = 0;
    s_tpi_report = None;
    s_placement = None;
    s_chains = None;
    s_reorder = None;
    s_atpg = None;
    s_tdv_bits = 0;
    s_tat_cycles = 0;
    s_cts = None;
    s_drc = None;
    s_filler = None;
    s_route = None;
    s_rc = None;
    s_sta = None;
    s_repair = None;
    s_tgraph = None;
    s_lint = None }

let need what = function
  | Some v -> v
  | None -> invalid_arg ("Flow.Pipeline: stage run out of order, missing " ^ what)

(* every stage body runs inside a span, so guarded and unguarded runs
   alike show up in traces with the kernels nested underneath *)
let stage_span st name f =
  Obs.Trace.with_span ~name:("pipeline." ^ name)
    ~attrs:[ ("tp_percent", Obs.Json.Float st.s_options.tp_percent) ]
    f

(* --- step 1: TPI and scan insertion --- *)
let stage_tpi_scan st =
  stage_span st "tpi-scan" @@ fun () ->
  let d = st.s_design and options = st.s_options in
  let ffs_before = List.length (Design.ffs d) in
  let tp_count =
    int_of_float (Float.round (options.tp_percent *. float_of_int ffs_before /. 100.0))
  in
  st.s_tp_count <- tp_count;
  st.s_tpi_report <-
    (if tp_count > 0 then Some (Tpi.Select.run ~config:options.tpi_config d ~count:tp_count)
     else None);
  let (_ : int) = Scan.Replace.run d in
  ()

(* --- step 2: floorplanning and placement --- *)
let stage_place st =
  stage_span st "place" @@ fun () ->
  let d = st.s_design and options = st.s_options in
  let fp = Layout.Floorplan.create ~utilization:options.utilization d in
  st.s_placement <- Some (Layout.Place.run ~seed:options.seed d fp)

(* --- step 3: layout-driven scan reordering, then ATPG --- *)
let stage_reorder_atpg st =
  stage_span st "reorder-atpg" @@ fun () ->
  let d = st.s_design and options = st.s_options in
  let placement = need "placement" st.s_placement in
  let position iid = Layout.Place.position placement iid in
  let reorder = Scan.Reorder.run d ~config:options.chain_config ~position in
  let chains = reorder.Scan.Reorder.plan in
  st.s_reorder <- Some reorder;
  st.s_chains <- Some chains;
  let atpg =
    if options.run_atpg then begin
      let m = Netlist.Cmodel.build d in
      Some (Atpg.Patgen.run ?pool:options.pool ~config:options.atpg_config m)
    end
    else None
  in
  st.s_atpg <- atpg;
  let patterns = match atpg with Some o -> Atpg.Patgen.num_patterns o | None -> 0 in
  st.s_tdv_bits <-
    (if patterns = 0 then 0
     else
       Atpg.Tdv.tdv ~chains:(Scan.Chains.num_chains chains) ~lmax:chains.Scan.Chains.lmax
         ~patterns);
  st.s_tat_cycles <-
    (if patterns = 0 then 0 else Atpg.Tdv.tat ~lmax:chains.Scan.Chains.lmax ~patterns)

(* --- step 4: ECO (reorder buffers), clock trees, filler, routing --- *)
let stage_eco_route st =
  stage_span st "eco-cts-route" @@ fun () ->
  let placement = need "placement" st.s_placement in
  let reorder = need "reorder" st.s_reorder in
  List.iter
    (fun (iid, near) -> Layout.Eco.add_cell placement ~inst:iid ~near)
    reorder.Scan.Reorder.new_buffers;
  st.s_cts <- Some (Obs.Trace.with_span ~name:"layout.cts" (fun () -> Layout.Cts.run placement));
  st.s_drc <-
    Some (Obs.Trace.with_span ~name:"layout.drc" (fun () -> Layout.Drc.fix_max_cap placement));
  st.s_filler <-
    Some (Obs.Trace.with_span ~name:"layout.filler" (fun () -> Layout.Filler.run placement));
  st.s_route <- Some (Layout.Route.run placement)

(* --- step 5: extraction --- *)
let stage_extract st =
  stage_span st "extract" @@ fun () ->
  let placement = need "placement" st.s_placement in
  let route = need "route" st.s_route in
  st.s_rc <- Some (Layout.Extract.run placement route)

(* --- step 6: static timing analysis --- *)
let stage_sta st =
  stage_span st "sta" @@ fun () ->
  let placement = need "placement" st.s_placement in
  let rc = need "rc" st.s_rc in
  match st.s_options.sta_mode with
  | Full_sta -> st.s_sta <- Some (Sta.Analysis.run ?pool:st.s_options.pool placement rc)
  | Incremental_sta ->
    (* compile once, propagate, keep the graph alive for downstream ECO
       passes; the report is byte-identical to [Analysis.run] (same float
       ops, same sta.* counters — pinned by the incremental suite) *)
    let tg = Sta.Tgraph.compile st.s_design rc in
    Sta.Tgraph.propagate ?pool:st.s_options.pool tg;
    st.s_tgraph <- Some tg;
    let a = Sta.Tgraph.analysis tg in
    st.s_sta <- Some a;
    (* with the graph still warm, the TPI/timing lint pack gets real
       post-layout artifacts for free: the slack report and the
       near-critical net set fall out of the arrival/required arrays
       instead of the zero-wireload estimate the pack falls back to *)
    if st.s_options.lint then begin
      let tcp =
        match a.Sta.Analysis.worst with
        | Some p -> p.Sta.Analysis.t_cp
        | None -> 0.0
      in
      let margin_ps = Lint.Tpitiming.near_critical_margin *. tcp in
      let arts =
        { Lint.Rule.no_artifacts with
          Lint.Rule.slack = Some (Sta.Tgraph.slack tg);
          crit_nets = Some (Sta.Tgraph.critical_nets tg ~margin_ps) }
      in
      let rules =
        List.concat_map
          (fun pack ->
            Option.value ~default:[] (Lint.Engine.find_pack pack))
          [ Lint.Tpitiming.pack_name; Lint.Tpirepair.pack_name ]
      in
      st.s_lint <- Some (Lint.Engine.run ~arts ~rules st.s_design)
    end

(* --- step 7: post-route timing repair (off by default) --- *)
let stage_repair st =
  if st.s_options.repair then
    stage_span st "repair" @@ fun () ->
    let placement = need "placement" st.s_placement in
    let route = need "route" st.s_route in
    let rc = need "rc" st.s_rc in
    let mode =
      match st.s_options.sta_mode with
      | Full_sta -> Repair.Full_sta
      | Incremental_sta -> Repair.Incremental_sta
    in
    let r =
      Repair.run ~config:st.s_options.repair_config ~mode ~route ~rc placement
    in
    st.s_repair <- Some r;
    (* downstream slots move to the repaired state; the stage-6 graph no
       longer mirrors the edited design, so it is dropped rather than
       handed out stale *)
    st.s_route <- Some r.Repair.route;
    st.s_rc <- Some r.Repair.rc;
    st.s_sta <- Some r.Repair.sta;
    st.s_tgraph <- None

let finish st =
  { design = st.s_design;
    options = st.s_options;
    tp_count = st.s_tp_count;
    tpi_report = st.s_tpi_report;
    chains = need "chains" st.s_chains;
    reorder = need "reorder" st.s_reorder;
    atpg = st.s_atpg;
    tdv_bits = st.s_tdv_bits;
    tat_cycles = st.s_tat_cycles;
    placement = need "placement" st.s_placement;
    cts = need "cts" st.s_cts;
    filler = need "filler" st.s_filler;
    route = need "route" st.s_route;
    rc = need "rc" st.s_rc;
    sta = need "sta" st.s_sta;
    repair = st.s_repair;
    tgraph = st.s_tgraph;
    lint_report = st.s_lint;
    stats = Netlist.Stats.compute st.s_design;
    drc = need "drc" st.s_drc }

(* ---- stage cache (lib/cache) ----

   A stage's cache key chains three things: a fingerprint of the design
   entering the stage, a fingerprint of every option a stage can read, and
   the previous stage's key. The chain is what carries products that live
   outside the netlist (the placement, the route, ...) into downstream
   keys: stage N's key depends on stage N-1's key, which transitively pins
   every input stage N can see. A hit restores the serialized post-stage
   state snapshot -- taken in a single Marshal, so aliasing between the
   design and e.g. the placement's back-reference survives the round trip
   -- and replays the stage's exact metrics delta, keeping cached and
   uncached runs byte-identical in tables and kernel counters (DESIGN.md
   §6.2); only the [cache.*] counters themselves may differ. *)

type snapshot = {
  c_design : Design.t;
  c_tp_count : int;
  c_tpi_report : Tpi.Select.report option;
  c_placement : Layout.Place.t option;
  c_chains : Scan.Chains.t option;
  c_reorder : Scan.Reorder.result option;
  c_atpg : Atpg.Patgen.outcome option;
  c_tdv_bits : int;
  c_tat_cycles : int;
  c_cts : Layout.Cts.report option;
  c_drc : Layout.Drc.report option;
  c_filler : Layout.Filler.report option;
  c_route : Layout.Route.t option;
  c_rc : Layout.Extract.net_rc array option;
  c_sta : Sta.Analysis.t option;
  c_repair : Repair.report option;
}

let snapshot st =
  { c_design = st.s_design;
    c_tp_count = st.s_tp_count;
    c_tpi_report = st.s_tpi_report;
    c_placement = st.s_placement;
    c_chains = st.s_chains;
    c_reorder = st.s_reorder;
    c_atpg = st.s_atpg;
    c_tdv_bits = st.s_tdv_bits;
    c_tat_cycles = st.s_tat_cycles;
    c_cts = st.s_cts;
    c_drc = st.s_drc;
    c_filler = st.s_filler;
    c_route = st.s_route;
    c_rc = st.s_rc;
    c_sta = st.s_sta;
    c_repair = st.s_repair }

let restore st c =
  st.s_design <- c.c_design;
  st.s_tp_count <- c.c_tp_count;
  st.s_tpi_report <- c.c_tpi_report;
  st.s_placement <- c.c_placement;
  st.s_chains <- c.c_chains;
  st.s_reorder <- c.c_reorder;
  st.s_atpg <- c.c_atpg;
  st.s_tdv_bits <- c.c_tdv_bits;
  st.s_tat_cycles <- c.c_tat_cycles;
  st.s_cts <- c.c_cts;
  st.s_drc <- c.c_drc;
  st.s_filler <- c.c_filler;
  st.s_route <- c.c_route;
  st.s_rc <- c.c_rc;
  st.s_sta <- c.c_sta;
  st.s_repair <- c.c_repair;
  (* any live graph mirrors the pre-hit design, not the restored one *)
  st.s_tgraph <- None

(* bump whenever the snapshot layout or any stage semantics change: old
   on-disk entries then simply never match a key again *)
let cache_version = "tpi-stage-cache-v2"

(* every option a stage outcome can depend on; the pool (execution layout
   only, §6.1), the cache itself, the cancellation token (which only
   decides whether the next stage starts, never what it computes) and
   [sta_mode] (both modes produce byte-identical stage products, so cache
   entries are valid across them) are deliberately excluded. Marshal of
   this immutable tuple of scalars and plain variants is byte-stable. *)
let options_fingerprint o =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( o.tp_percent, o.chain_config, o.utilization, o.run_atpg, o.atpg_config,
            o.tpi_config, o.seed, o.repair, o.repair_config )
          []))

type cache_ctx = {
  ck_store : Cache.Store.t;
  ck_options_fp : string;
  mutable ck_prev : string;  (* previous stage's key: the chain *)
}

let cache_ctx options =
  match options.cache with
  | None -> None
  | Some store ->
    Some { ck_store = store; ck_options_fp = options_fingerprint options; ck_prev = "root" }

type cache_entry = {
  e_snapshot : snapshot;
  e_metrics : Obs.Metrics.local;  (* the stage body's exact metrics delta *)
}

let m_hits = Obs.Metrics.counter "cache.stage_hits"
let m_misses = Obs.Metrics.counter "cache.stage_misses"

let cached_stage ctx name body (st : state) =
  (* stage boundary: the one place a cancelled/expired job stops; a hit or
     a body already underway always runs to completion (Cancel contract) *)
  Option.iter Cancel.check st.s_options.cancel;
  match ctx with
  | None -> body st
  | Some ctx ->
    let key =
      Cache.Store.key
        [ cache_version; name; ctx.ck_options_fp; Design.fingerprint st.s_design;
          ctx.ck_prev ]
    in
    ctx.ck_prev <- key;
    let bytes, hit =
      Cache.Store.find_or_compute ctx.ck_store ~key (fun () ->
          let (), delta = Obs.Metrics.with_scoped (fun () -> body st) in
          Marshal.to_string { e_snapshot = snapshot st; e_metrics = delta } [])
    in
    if hit then begin
      Obs.Metrics.incr m_hits;
      let entry : cache_entry = Marshal.from_string bytes 0 in
      restore st entry.e_snapshot;
      Obs.Metrics.absorb entry.e_metrics
    end
    else Obs.Metrics.incr m_misses

let stage_names_in_order =
  [ "tpi-scan"; "place"; "reorder-atpg"; "eco-cts-route"; "extract"; "sta"; "repair" ]

(* read-only gate ahead of the first stage: a design that would mis-build
   (combinational loops, multi-driven nets, mis-clocked test points, ...)
   is rejected before any stage spends time on it *)
let preflight ~options d =
  if options.lint then Lint.Engine.gate (Lint.Engine.run d)

let run ?(options = default_options) (d : Design.t) =
  preflight ~options d;
  let st = init ~options d in
  let ctx = cache_ctx options in
  List.iter2
    (fun name stage -> cached_stage ctx name stage st)
    stage_names_in_order
    [ stage_tpi_scan; stage_place; stage_reorder_atpg; stage_eco_route; stage_extract;
      stage_sta; stage_repair ];
  finish st
