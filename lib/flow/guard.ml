module P = Pipeline

type stage =
  | Tpi_scan
  | Placement
  | Reorder_atpg
  | Eco_cts_route
  | Extract
  | Sta
  | Repair

let all_stages = [ Tpi_scan; Placement; Reorder_atpg; Eco_cts_route; Extract; Sta; Repair ]

let stage_name = function
  | Tpi_scan -> "tpi-scan"
  | Placement -> "place"
  | Reorder_atpg -> "reorder-atpg"
  | Eco_cts_route -> "eco-cts-route"
  | Extract -> "extract"
  | Sta -> "sta"
  | Repair -> "repair"

type stage_error = {
  stage : stage;
  circuit : string;
  detail : string;
}

exception Stage_failure of stage_error

exception Transient of string
(* a tool's way of saying "try the same thing again": classified under the
   "transient" error class, which retry policies (Serve.Retry) treat as
   retryable with backoff *)

let () =
  Printexc.register_printer (function
    | Stage_failure e ->
      Some
        (Printf.sprintf "Flow.Guard.Stage_failure(%s, %s: %s)" (stage_name e.stage)
           e.circuit e.detail)
    | Transient m -> Some (Printf.sprintf "Flow.Guard.Transient(%s)" m)
    | _ -> None)

type policy =
  | Fail_fast
  | Recover
  | Degrade

let policy_name = function
  | Fail_fast -> "fail-fast"
  | Recover -> "recover"
  | Degrade -> "degrade"

let policy_of_string = function
  | "fail-fast" | "fail_fast" | "failfast" -> Some Fail_fast
  | "recover" -> Some Recover
  | "degrade" -> Some Degrade
  | _ -> None

type stage_status =
  | Completed of float
  | Failed of float
  | Skipped

type report = {
  circuit : string;
  policy : policy;
  attempts : int;
  stage_log : (stage * stage_status) list;
  error : stage_error option;
  state : P.state option;
  result : P.result option;
}

let succeeded r = r.error = None

let outcome r =
  match (r.result, r.error) with
  | Some res, _ -> Ok res
  | None, Some e -> Error e
  | None, None ->
    Error { stage = Tpi_scan; circuit = r.circuit; detail = "internal: empty report" }

let completed_stages r =
  List.filter_map
    (fun (s, st) -> match st with Completed _ -> Some s | _ -> None)
    r.stage_log

(* seed-sensitive stages: placement is seeded directly; scan reordering is
   a deterministic function of the placement, so its retry also reruns from
   a fresh seed (the whole attempt restarts on a freshly generated design —
   stages 1/3/4 mutate the netlist, so resuming mid-flow after a failure
   would compound the damage) *)
let seed_sensitive = function
  | Placement | Reorder_atpg -> true
  | _ -> false

let default_retries = 3

let reseed base k = (base lxor (k * 0x9E3779B1)) land 0x3FFFFFFF

let describe_exn = function
  | Stage_failure e -> e.detail
  | Transient m -> "transient: " ^ m
  | Cancel.Cancelled reason -> "cancelled: " ^ reason
  | Netlist.Check.Check_failed vs ->
    let first =
      match vs with v :: _ -> Netlist.Check.class_name v | [] -> "none"
    in
    Printf.sprintf "check-failed: %d violation(s), first class: %s" (List.length vs)
      first
  | Sta.Analysis.Combinational_cycle { inst; iname } ->
    Printf.sprintf "combinational-cycle: instance %d (%s) sits on a combinational loop"
      inst iname
  | Sta.Analysis.Backtrack_diverged { net; nname } ->
    Printf.sprintf "backtrack-diverged: arrival bookkeeping inconsistent at net %d (%s)"
      net nname
  | Lint.Engine.Lint_failed m -> "lint-failed: " ^ m
  | Failure m -> "failure: " ^ m
  | Invalid_argument m -> "invalid-argument: " ^ m
  | Not_found -> "not-found"
  | Out_of_memory -> "out-of-memory"
  | Stack_overflow -> "stack-overflow"
  | e -> "exception: " ^ Printexc.to_string e

(* the class tag is the detail's leading token: "cell-overlap: ..." ->
   "cell-overlap". Every detail produced here and by the checkers follows
   that convention, so retry policies can dispatch on the class alone. *)
let error_class (e : stage_error) =
  match String.index_opt e.detail ':' with
  | Some i -> String.sub e.detail 0 i
  | None -> e.detail

let is_transient e = error_class e = "transient"
let is_cancelled e = error_class e = "cancelled"

let fail stage circuit detail = raise (Stage_failure { stage; circuit; detail })

let netlist_check ~stage ~circuit d =
  match Netlist.Check.run d with
  | [] -> ()
  | v :: _ as vs ->
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf "%s: %d violation(s), first: %a" (Netlist.Check.class_name v)
      (List.length vs) (Netlist.Check.pp_violation d) v;
    Format.pp_print_flush ppf ();
    fail stage circuit (Buffer.contents buf)

let layout_check ~stage ~circuit d vs =
  match vs with [] -> () | vs -> fail stage circuit (Layout.Check.render d vs)

(* Post-stage invariant checks: the netlist checker after the netlist
   transformations (steps 1 and 3), the layout checker after placement,
   ECO/route and extraction (steps 2/4/5). Violations become typed stage
   errors whose detail leads with the violation-class tag. *)
let post_check ~circuit stage (st : P.state) =
  Obs.Trace.with_span ~name:("check." ^ stage_name stage) @@ fun () ->
  let d = st.P.s_design in
  match stage with
  | Tpi_scan -> netlist_check ~stage ~circuit d
  | Placement ->
    let pl = Option.get st.P.s_placement in
    layout_check ~stage ~circuit d (Layout.Check.check_placement ~overlaps:true pl)
  | Reorder_atpg ->
    netlist_check ~stage ~circuit d;
    (match st.P.s_chains with
     | Some chains ->
       (match Scan.Chains.verify d chains with
        | None -> ()
        | Some msg -> fail stage circuit ("scan-chain-order: " ^ msg))
     | None -> ())
  | Eco_cts_route ->
    let pl = Option.get st.P.s_placement in
    (* overlaps off: ECO legalisation and DRC upsizing legitimately crowd
       rows; a generous margin still catches cells flung out of the core *)
    layout_check ~stage ~circuit d
      (Layout.Check.check_placement ~overlaps:false ~margin:10.0 pl);
    layout_check ~stage ~circuit d
      (Layout.Check.check_route pl (Option.get st.P.s_route))
  | Extract ->
    layout_check ~stage ~circuit d (Layout.Check.check_rc (Option.get st.P.s_rc))
  | Sta -> ()
  | Repair ->
    (* repair rewires, resizes and inserts cells post-route: re-check the
       netlist, the (ECO-crowded) placement and the refreshed parasitics *)
    netlist_check ~stage ~circuit d;
    let pl = Option.get st.P.s_placement in
    layout_check ~stage ~circuit d
      (Layout.Check.check_placement ~overlaps:false ~margin:10.0 pl);
    layout_check ~stage ~circuit d (Layout.Check.check_rc (Option.get st.P.s_rc))

let stage_body = function
  | Tpi_scan -> P.stage_tpi_scan
  | Placement -> P.stage_place
  | Reorder_atpg -> P.stage_reorder_atpg
  | Eco_cts_route -> P.stage_eco_route
  | Extract -> P.stage_extract
  | Sta -> P.stage_sta
  | Repair -> P.stage_repair

let m_stage_failures = Obs.Metrics.counter "guard.stage_failures"
let m_retries = Obs.Metrics.counter "guard.retries"
let m_stages_run = Obs.Metrics.counter "guard.stages_run"
let m_cancelled = Obs.Metrics.counter "guard.cancelled"

(* progress callbacks come from the service layer; a misbehaving one (say,
   writing to a dead client) must not take the flow down with it *)
let notify on_stage stage status =
  match on_stage with
  | None -> ()
  | Some f -> (try f stage status with _ -> ())

(* One pass over the stages. Returns the stage log (all six stages, in
   order), the reached state and the first error, never raising.

   Stage timing comes from the {!Obs.Trace} span clock: each stage
   (body + tamper hook + invariant checks) runs between [Trace.enter]
   and [Trace.stop], whose elapsed milliseconds become the
   [Completed]/[Failed] payload — the same numbers that land in the
   exported trace, so there is exactly one clock. *)
let attempt ~circuit ~options ~tamper ~cancel ~on_stage ~k mk_design =
  match (try Ok (mk_design ()) with e -> Error e) with
  | Error e ->
    let err =
      { stage = Tpi_scan; circuit; detail = "design-generation: " ^ describe_exn e }
    in
    (List.map (fun s -> (s, Skipped)) all_stages, None, Some err)
  | Ok d ->
  match (try P.preflight ~options d; None with e -> Some e) with
  | Some e ->
    (* the lint gate rejected the input before any stage ran *)
    let detail = describe_exn e in
    let err = { stage = Tpi_scan; circuit; detail } in
    Obs.Metrics.incr m_stage_failures;
    Obs.Recorder.fault ~label:"lint.preflight"
      ~detail:(Printf.sprintf "%s: %s" circuit detail)
      ();
    (List.map (fun s -> (s, Skipped)) all_stages, None, Some err)
  | None ->
    let st = P.init ~options d in
    (* fault-injection runs bypass the cache: a tampered stage must not
       store (or be served) an entry a clean run could share *)
    let ctx = match tamper with None -> P.cache_ctx options | Some _ -> None in
    let log = ref [] in
    let error = ref None in
    let record stage status =
      log := (stage, status) :: !log;
      notify on_stage stage status
    in
    List.iter
      (fun stage ->
        match !error with
        | Some _ -> record stage Skipped
        | None ->
          (* stage boundary: a cancelled or expired token stops the attempt
             here; the stage never starts, so it logs as Skipped under a
             typed "cancelled" error *)
          (match Option.bind cancel Cancel.state with
           | Some reason ->
             error := Some { stage; circuit; detail = "cancelled: " ^ reason };
             Obs.Metrics.incr m_cancelled;
             record stage Skipped
           | None ->
             let span =
               Obs.Trace.enter
                 ~name:("stage." ^ stage_name stage)
                 ~attrs:
                   [ ("circuit", Obs.Json.String circuit);
                     ("attempt", Obs.Json.Int (k + 1)) ]
                 ()
             in
             Obs.Metrics.incr m_stages_run;
             (try
                P.cached_stage ctx (stage_name stage) (stage_body stage) st;
                (match tamper with Some f -> f ~attempt:k stage st | None -> ());
                post_check ~circuit stage st;
                let ms = Obs.Trace.stop span in
                Obs.Recorder.span
                  ~label:("stage." ^ stage_name stage)
                  ~detail:(Printf.sprintf "%s: completed in %.1f ms" circuit ms)
                  ();
                record stage (Completed ms)
              with
              | Stage_failure e ->
                error := Some e;
                Obs.Metrics.incr m_stage_failures;
                Obs.Recorder.fault
                  ~label:("stage." ^ stage_name stage)
                  ~detail:(Printf.sprintf "%s: %s" circuit e.detail)
                  ();
                record stage (Failed (Obs.Trace.stop ~error:e.detail span))
              | e ->
                let detail = describe_exn e in
                error := Some { stage; circuit; detail };
                Obs.Metrics.incr
                  (if String.starts_with ~prefix:"cancelled:" detail then m_cancelled
                   else m_stage_failures);
                Obs.Recorder.fault
                  ~label:("stage." ^ stage_name stage)
                  ~detail:(Printf.sprintf "%s: %s" circuit detail)
                  ();
                record stage (Failed (Obs.Trace.stop ~error:detail span)))))
      all_stages;
    (List.rev !log, Some st, !error)

let run ?(policy = Fail_fast) ?(retries = default_retries) ?(options = P.default_options)
    ?tamper ?cancel ?on_stage ~circuit mk_design =
  (* the explicit token wins; otherwise the one already threaded through
     the options (which the pipeline polls inside cached_stage) is also
     the one the guard polls between stages *)
  let cancel = match cancel with Some _ as c -> c | None -> options.P.cancel in
  let options =
    match (cancel, options.P.cancel) with
    | Some _, None -> { options with P.cancel }
    | _ -> options
  in
  let rec go k options =
    let log, state, error =
      attempt ~circuit ~options ~tamper ~cancel ~on_stage ~k mk_design
    in
    match error with
    | None ->
      let result =
        match state with
        | Some st -> (try Some (P.finish st) with _ -> None)
        | None -> None
      in
      (match result with
       | Some _ ->
         { circuit; policy; attempts = k + 1; stage_log = log; error = None; state;
           result }
       | None ->
         (* finish only fails if a stage left a slot empty: report, never raise *)
         { circuit; policy; attempts = k + 1; stage_log = log;
           error =
             Some { stage = Sta; circuit; detail = "internal: incomplete final state" };
           state; result = None })
    | Some e ->
      (* a cancelled attempt is the caller's decision, never retried *)
      if policy = Recover && k < retries && seed_sensitive e.stage && not (is_cancelled e)
      then begin
        Obs.Metrics.incr m_retries;
        go (k + 1) { options with P.seed = reseed options.P.seed (k + 1) }
      end
      else begin
        (* terminal failure: publish the flight recorder's view of the
           last moments (no-op unless a dump path is configured) *)
        ignore
          (Obs.Recorder.dump
             ~reason:
               (Printf.sprintf "stage-fault: %s/%s: %s" circuit (stage_name e.stage)
                  (error_class e)));
        { circuit; policy; attempts = k + 1; stage_log = log; error = Some e;
          state = (if policy = Fail_fast then None else state); result = None }
      end
  in
  go 0 options

let pp_stage_error ppf (e : stage_error) =
  Format.fprintf ppf "%s: stage %s failed: %s" e.circuit (stage_name e.stage) e.detail

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s (policy %s, %d attempt%s):@ " r.circuit
    (policy_name r.policy) r.attempts
    (if r.attempts = 1 then "" else "s");
  List.iter
    (fun (s, st) ->
      match st with
      | Completed ms -> Format.fprintf ppf "  %-14s ok     %8.1f ms@ " (stage_name s) ms
      | Failed ms -> Format.fprintf ppf "  %-14s FAILED %8.1f ms@ " (stage_name s) ms
      | Skipped -> Format.fprintf ppf "  %-14s skipped@ " (stage_name s))
    r.stage_log;
  (match r.error with
   | Some e -> Format.fprintf ppf "  error: %s@]" e.detail
   | None -> Format.fprintf ppf "  complete@]")
