(** Incremental ECO re-timing context (DESIGN.md §6.6).

    Binds a placed, routed, extracted design to a compiled {!Sta.Tgraph}
    and keeps all four views consistent under netlist edits. Each edit
    re-places only new cells, re-routes and re-extracts only the nets
    whose terminals changed, and worklist-retimes only the dirtied cone —
    yet leaves the context byte-identical to re-running
    [Route.run → Extract.run → Analysis.run] from scratch on the same
    mutated design (routing and extraction are pure per-net maps and
    {!Sta.Incremental.retime} is exact). *)

type t

val create :
  ?config:Sta.Analysis.config ->
  ?full_sta:bool ->
  Layout.Place.t ->
  Layout.Route.t ->
  Layout.Extract.net_rc array ->
  t
(** Compile the timing graph and snapshot per-net routes/parasitics.
    The placement (and the design under it) are borrowed and mutated by
    subsequent edits; the route and rc arrays are copied.

    With [full_sta:true] every edit ends in a whole-graph re-propagation
    instead of a worklist cone retime. The end state is byte-identical
    either way (§6.6) — only the sta counters that move differ — which is
    what lets {!Repair} run under either mode and produce the same
    report. *)

val insert_tp :
  t -> net:int -> Netlist.Design.instance * Sta.Incremental.stats
(** Splice an observe/control TSFF into [net] (§3.1 step 3) as a
    post-layout ECO: clocked from the nearest CTS leaf buffer of its
    domain (root clock net when no tree exists), legalized near the
    net's driver, with only the split net, the test-control nets and
    the leaf clock net re-routed and re-timed. *)

val insert_buffer :
  t -> net:int -> Netlist.Design.instance * Sta.Incremental.stats
(** Split [net] behind a minimum-drive buffer placed near its driver. *)

val upsize : t -> inst:int -> Sta.Incremental.stats option
(** Swap [inst] for the next drive strength up ({!Stdcell.Library.upsize});
    [None] when it is already at maximum drive. Every incident net is
    re-routed (the cell centre, hence every pin position, moves). *)

val downsize : t -> inst:int -> Sta.Incremental.stats option
(** Swap [inst] for the next drive strength down — the area-recovery move
    and the exact inverse of {!upsize}; [None] at minimum drive. *)

val resize : t -> inst:int -> cell:Stdcell.Cell.t -> Sta.Incremental.stats
(** Swap [inst] for [cell] (same pin interface, identity pin map). The
    revert primitive behind speculative sizing: remember the old cell,
    trial an {!upsize}/{!downsize}, and [resize] back if timing regressed.
    Raises [Invalid_argument] if the pin counts differ. *)

val swap_pins : t -> inst:int -> pin_a:int -> pin_b:int -> Sta.Incremental.stats
(** Exchange the nets on two input pins of [inst] — the commutative-pin
    ECO: with per-pin arc asymmetry ({!Stdcell.Library.default}, pin A
    fastest), moving the latest-arriving signal onto the fastest pin
    shortens the worst arc. Self-inverse, so a regressing swap is
    reverted by swapping back. Raises [Invalid_argument] unless both
    pins are connected inputs. *)

val remove_buffer : t -> inst:int -> Sta.Incremental.stats
(** Exact structural undo of the most recent {!insert_buffer}: [inst]
    must still be the newest instance and its output net the newest net.
    Unsplits the net (sink order preserved), removes the buffer cell and
    net, unplaces it, and re-times the restored cone — leaving the
    context byte-identical to one in which the buffer was never
    inserted. Raises [Invalid_argument] if anything was appended since. *)

val analysis : t -> Sta.Analysis.t
(** Full report from the current graph state — endpoint slacks, eq. 3
    breakdown, critical paths — without any propagation. *)

val route : t -> Layout.Route.t
(** Congestion/wirelength statistics rebuilt over the patched routes. *)

val rc : t -> Layout.Extract.net_rc array
(** Live per-net parasitics (do not mutate). *)

val design : t -> Netlist.Design.t
val placement : t -> Layout.Place.t
val tgraph : t -> Sta.Tgraph.t

val last_stats : t -> Sta.Incremental.stats option
(** Cone statistics of the most recent edit. *)
