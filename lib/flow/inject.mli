(** Deterministic fault injection against the guarded flow.

    Each {!mutation} corrupts a specific artefact of the Figure-2 flow —
    netlist wiring after step 1, the placement after step 2, the scan plan
    after step 3, parasitics after step 5 — through the same public APIs a
    buggy tool would use, then re-runs the remaining stages under
    {!Guard.Degrade} and asserts the corruption is (a) caught by the
    matching checker, (b) classified under the expected error-class tag and
    (c) surfaced as a typed {!Guard.stage_error}, never an unhandled
    exception or a silently wrong table row. *)

type mutation =
  | Dangling_output        (** gate output left driving nothing *)
  | Floating_input         (** input pin disconnected *)
  | Clock_mismatch         (** FF clock pin rewired off its domain's net *)
  | Broken_scan_order      (** scan plan no longer matches the TI stitching *)
  | Overlapping_placement  (** two cells legalised onto the same site *)
  | Out_of_core_cell       (** cell placed outside the core rows *)
  | Corrupt_rc             (** NaN parasitics from extraction *)
  | Combinational_cycle    (** combinational loop wired into the netlist *)
  | Undriven_net           (** loaded net loses its driver *)
  | Zero_length_row        (** floorplan row collapsed to zero width *)
  | Orphan_repair_buffer   (** repair-style buffer spliced in but never
                               wired up nor reverted — the wreckage a
                               buggy speculative revert would leave *)

val all : mutation list
(** The full injection matrix (10 classes). *)

exception No_candidate of string
(** An injector found no suitable site in the target design (e.g. no
    scan chain with two cells to mis-order). A setup error of the
    injection harness, never a flow fault — kept typed and registered
    with {!Printexc} so it is distinguishable from a real [Failure]
    raised by the stage under test. *)

val name : mutation -> string
val injection_stage : mutation -> Guard.stage
val expected_class : mutation -> string
val detection_stage : mutation -> Guard.stage
(** Where the error must surface; usually the injection stage, but a
    combinational cycle legally rides along until STA chokes on it. *)

type outcome = {
  mutation : mutation;
  injected_at : Guard.stage;
  expected : string;                 (** expected error-class tag *)
  error : Guard.stage_error option;  (** what the guard reported *)
  detected : bool;  (** error present, right stage, right class tag *)
}

val run_one : ?pool:Par.Pool.t -> ?ffs:int -> ?gates:int -> mutation -> outcome
(** Generates a fresh tiny benchmark, injects, runs guarded. *)

val selftest : ?pool:Par.Pool.t -> ?ffs:int -> ?gates:int -> unit -> outcome list
val all_detected : outcome list -> bool

val recover_converges : unit -> bool
(** Chaos demo: placement crashes on attempt 0 only; {!Guard.Recover} must
    reseed, restart and complete on the second attempt. *)

val degrade_keeps_partials : unit -> bool
(** Chaos demo: the extraction stage crashes; {!Guard.Degrade} must keep
    the placed and routed head stages, skip STA entirely and report the
    typed error, without raising. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {1 Service-level fault matrix}

    Fault classes aimed at the {!Serve} daemon rather than the flow
    itself: hostile input, overload and client death. The matrix (what to
    inject, which typed error class must come back, and that the daemon
    must keep serving afterwards) is declared here next to the flow
    matrix; the execution harness lives in [Serve.Chaos], which drives a
    real in-process daemon through its Unix socket and fills in a
    {!service_outcome} per class. *)

type service_fault =
  | Malformed_request   (** syntactically broken JSONL request line *)
  | Queue_overflow      (** admission burst past the bounded queue *)
  | Client_disconnect   (** client vanishes while its job is in flight *)

val service_all : service_fault list
(** The service injection matrix (3 classes). *)

val service_name : service_fault -> string

val service_expected_class : service_fault -> string
(** The typed error class the daemon must produce: ["bad-request"],
    ["backpressure"], ["cancelled"]. *)

type service_outcome = {
  fault : service_fault;
  s_expected : string;          (** expected error class *)
  observed : string option;     (** class the daemon actually reported *)
  recovered : bool;  (** daemon still answers on a fresh connection after *)
  s_detected : bool; (** right class AND recovered *)
}

val service_outcome :
  service_fault -> observed:string option -> recovered:bool -> service_outcome
(** Smart constructor: fills in [s_expected] and derives [s_detected]. *)

val all_service_detected : service_outcome list -> bool

val pp_service_outcome : Format.formatter -> service_outcome -> unit
