(* Incremental ECO re-timing context.

   Owns the mutable post-layout state — placement, per-net routes,
   per-net parasitics, the compiled flat timing graph — and threads each
   netlist edit through the minimal physical update: re-place only new
   cells (ECO legalization), re-route and re-extract only the nets whose
   terminals moved, then worklist-retime only the dirtied cone. Because
   routing and extraction are pure per-net maps and Incremental.retime is
   exact, the state after any edit sequence is byte-identical to tearing
   the layout down and re-running Route.run + Extract.run + Analysis.run
   on the same mutated design — the property the incremental suite and
   the QCheck random-ECO property pin down. *)

module Design = Netlist.Design
module Cell = Stdcell.Cell
module Place = Layout.Place
module Route = Layout.Route
module Extract = Layout.Extract

let m_edits = Obs.Metrics.counter "sta.incremental.eco_edits"

type t = {
  pl : Place.t;
  tg : Sta.Tgraph.t;
  (* full-STA evaluation: every edit ends in a whole-graph re-propagation
     instead of a cone retime. Byte-identical end state (§6.6); this is the
     reference mode Flow.Repair's incremental mode is diffed against. *)
  full : bool;
  mutable routes : Route.net_route option array;
  mutable rc : Extract.net_rc array;
  mutable next_tp : int;
  mutable leaf_clocks : (int * int) list;  (* (domain, leaf clock net) *)
  mutable last_stats : Sta.Incremental.stats option;
  mutable edits : int;
}

(* CTS leaf buffers: clock buffers whose output net feeds sequential
   clock pins directly. An ECO TSFF hangs off the nearest one so the
   tree above — and every other leaf group's latency — stays untouched. *)
let find_leaf_clocks (d : Design.t) =
  let leaves = ref [] in
  Design.iter_insts d (fun b ->
      if b.Design.cell.Cell.kind = Cell.Clkbuf then begin
        match Design.net_of_output d b with
        | -1 -> ()
        | o ->
          let dom = ref (-1) in
          List.iter
            (fun (sid, pin) ->
              if !dom < 0 then begin
                let s = Design.inst d sid in
                if s.Design.cell.Cell.sequential
                   && Cell.clock_pin s.Design.cell = Some pin then
                  dom := s.Design.domain
              end)
            (Design.net d o).Design.sinks;
          if !dom >= 0 then leaves := (!dom, b.Design.id, o) :: !leaves
      end);
  !leaves

let create ?config ?(full_sta = false) (pl : Place.t) (rt : Route.t)
    (rc : Extract.net_rc array) =
  let d = pl.Place.design in
  let tg = Sta.Tgraph.compile ?config d rc in
  Sta.Tgraph.propagate tg;
  let next_tp = ref 0 in
  Design.iter_insts d (fun i ->
      if i.Design.cell.Cell.kind = Cell.Tsff then incr next_tp);
  { pl;
    tg;
    full = full_sta;
    routes = Array.copy rt.Route.routes;
    rc = Array.copy rc;
    next_tp = !next_tp;
    leaf_clocks = List.map (fun (dom, _, o) -> (dom, o)) (find_leaf_clocks d);
    last_stats = None;
    edits = 0 }

let design t = t.pl.Place.design
let tgraph t = t.tg
let placement t = t.pl
let rc t = t.rc
let last_stats t = t.last_stats

let analysis t = Sta.Tgraph.analysis t.tg

let route t = Route.rebuild_stats t.pl t.routes

(* nearest leaf clock net of a domain; falls back to the domain's root
   clock net (pre-CTS designs wire flip-flops to the root directly) *)
let leaf_clock_for t ~dom ~near =
  let d = design t in
  let best = ref None in
  List.iter
    (fun (ldom, lnet) ->
      if ldom = dom then
        match (Design.net d lnet).Design.driver with
        | Design.Cell_pin (bid, _) when Place.is_placed t.pl bid ->
          let p = Place.position t.pl bid in
          let dist = Geom.Point.manhattan p near in
          (match !best with
           | Some (bd, _) when bd <= dist -> ()
           | _ -> best := Some (dist, lnet))
        | _ -> ())
    t.leaf_clocks;
  match !best with Some (_, lnet) -> Some lnet | None -> None

(* a point to legalize a new cell near: the edited net's driver, else its
   first placed sink, else the core centre *)
let anchor t nid =
  let d = design t in
  match Layout.Pinpos.of_driver t.pl (Design.net d nid) with
  | Some p -> p
  | None ->
    let n = Design.net d nid in
    let rec first = function
      | [] ->
        let core = t.pl.Place.fp.Layout.Floorplan.core in
        Geom.Point.make
          ((core.Geom.Rect.lx +. core.Geom.Rect.ux) /. 2.0)
          ((core.Geom.Rect.ly +. core.Geom.Rect.uy) /. 2.0)
      | (sid, _) :: rest ->
        if Place.is_placed t.pl sid then Place.position t.pl sid else first rest
    in
    first n.Design.sinks

(* cone retime in the default mode; whole-graph re-propagation in
   full-STA mode — both leave the arrival/slew/provenance arrays in the
   exact state a from-scratch propagate would, so the choice never shows
   in any report, only in which sta counters move *)
let reeval t ~dirty_nets ~dirty_insts =
  if t.full then begin
    Sta.Tgraph.propagate t.tg;
    { Sta.Incremental.insts_evaluated = 0; nets_changed = 0; nets_settled = 0;
      required_patched = 0 }
  end
  else Sta.Incremental.retime t.tg ~dirty_nets ~dirty_insts

(* absorb one completed design edit: legalize any new cells, mirror the
   topology into the graph, re-route/re-extract the touched nets, retime
   the cone. [old_ni]/[old_nn]/[old_np] are the design sizes before the
   edit; [nets]/[insts] the pre-existing nets and instances it touched. *)
let refresh t ~old_ni ~old_nn ~old_np ~near ~nets ~insts =
  let d = design t in
  let nn = Design.num_nets d and ni = Design.num_insts d in
  (* port pin positions are a function of the total port count (they share
     the core perimeter), so an edit that adds a port — the first TP's
     test_se/test_tr — moves every existing port's pin and with it the
     route of every port-connected net *)
  let nets =
    if Util.Vec.length d.Design.ports = old_np then nets
    else begin
      let acc = ref nets in
      for nid = 0 to old_nn - 1 do
        let n = Design.net d nid in
        let port_connected =
          (match n.Design.driver with Design.Port_in _ -> true | _ -> false)
          || n.Design.out_port >= 0
        in
        if port_connected && not (List.mem nid !acc) then acc := nid :: !acc
      done;
      !acc
    end
  in
  (* any cell the edit created that it did not place itself *)
  for iid = old_ni to ni - 1 do
    if not (Place.is_placed t.pl iid) then Layout.Eco.add_cell t.pl ~inst:iid ~near
  done;
  Sta.Tgraph.sync_topology t.tg ~nets ~insts;
  (* grow the per-net mirrors *)
  if nn > Array.length t.routes then begin
    let routes = Array.make nn None in
    Array.blit t.routes 0 routes 0 old_nn;
    t.routes <- routes;
    let rc = Array.make nn t.rc.(0) in
    Array.blit t.rc 0 rc 0 old_nn;
    t.rc <- rc
  end;
  let dirty = ref [] in
  for nid = nn - 1 downto old_nn do
    dirty := nid :: !dirty
  done;
  List.iter (fun nid -> if not (List.mem nid !dirty) then dirty := nid :: !dirty) nets;
  List.iter
    (fun nid ->
      let n = Design.net d nid in
      t.routes.(nid) <- Route.route_net t.pl n;
      t.rc.(nid) <- Extract.extract_net t.pl t.routes.(nid) n;
      Sta.Tgraph.update_rc t.tg nid t.rc.(nid))
    !dirty;
  let stats = reeval t ~dirty_nets:!dirty ~dirty_insts:insts in
  t.last_stats <- Some stats;
  t.edits <- t.edits + 1;
  Obs.Metrics.incr m_edits;
  stats

let touched_nets (i : Design.instance) ~old_nn =
  Array.to_list i.Design.conns
  |> List.filter (fun nid -> nid >= 0 && nid < old_nn)
  |> List.sort_uniq compare

(* ---- edits ---- *)

let insert_tp t ~net =
  let d = design t in
  let old_ni = Design.num_insts d and old_nn = Design.num_nets d in
  let old_np = Util.Vec.length d.Design.ports in
  let near = anchor t net in
  let dom = Tpi.Clocking.domain_for d ~net in
  let clock_net = leaf_clock_for t ~dom ~near in
  let i = Tpi.Insert.insert_point ?clock_net d ~net ~index:t.next_tp in
  t.next_tp <- t.next_tp + 1;
  Layout.Eco.add_cell t.pl ~inst:i.Design.id ~near;
  let stats =
    refresh t ~old_ni ~old_nn ~old_np ~near ~nets:(touched_nets i ~old_nn) ~insts:[]
  in
  (i, stats)

let insert_buffer t ~net =
  let d = design t in
  let old_ni = Design.num_insts d and old_nn = Design.num_nets d in
  let old_np = Util.Vec.length d.Design.ports in
  let near = anchor t net in
  let n = Design.net d net in
  let buf = Stdcell.Library.min_drive_strength d.Design.lib Cell.Buf in
  let nb = Design.split_net d ~net ~name:(n.Design.nname ^ "_buf") in
  let b = Design.add_instance d ~name:(n.Design.nname ^ "_ecobuf") ~cell:buf in
  Design.connect d ~inst:b.Design.id ~pin:0 ~net;
  Design.connect d ~inst:b.Design.id ~pin:1 ~net:nb.Design.nid;
  Layout.Eco.add_cell t.pl ~inst:b.Design.id ~near;
  let stats = refresh t ~old_ni ~old_nn ~old_np ~near ~nets:[ net ] ~insts:[] in
  (b, stats)

let resize t ~inst ~cell =
  let d = design t in
  let old_ni = Design.num_insts d and old_nn = Design.num_nets d in
  let old_np = Util.Vec.length d.Design.ports in
  let i = Design.inst d inst in
  if Array.length (cell : Cell.t).Cell.pins <> Array.length i.Design.cell.Cell.pins then
    invalid_arg "Retime.resize: pin interface differs";
  let old_width = i.Design.cell.Cell.width in
  let pins = List.init (Array.length i.Design.cell.Cell.pins) (fun k -> (k, k)) in
  Design.replace_cell d ~inst ~cell ~pin_map:pins;
  if Place.is_placed t.pl inst then begin
    let r = t.pl.Place.row.(inst) in
    t.pl.Place.row_used.(r) <- t.pl.Place.row_used.(r) +. cell.Cell.width -. old_width
  end;
  let near =
    if Place.is_placed t.pl inst then Place.position t.pl inst
    else anchor t (List.hd (touched_nets i ~old_nn))
  in
  refresh t ~old_ni ~old_nn ~old_np ~near ~nets:(touched_nets i ~old_nn) ~insts:[ inst ]

let upsize t ~inst =
  let d = design t in
  match Stdcell.Library.upsize d.Design.lib (Design.inst d inst).Design.cell with
  | None -> None
  | Some bigger -> Some (resize t ~inst ~cell:bigger)

let downsize t ~inst =
  let d = design t in
  match Stdcell.Library.downsize d.Design.lib (Design.inst d inst).Design.cell with
  | None -> None
  | Some smaller -> Some (resize t ~inst ~cell:smaller)

let swap_pins t ~inst ~pin_a ~pin_b =
  let d = design t in
  let old_ni = Design.num_insts d and old_nn = Design.num_nets d in
  let old_np = Util.Vec.length d.Design.ports in
  let i = Design.inst d inst in
  let input p =
    p >= 0
    && p < Array.length i.Design.cell.Cell.pins
    && i.Design.cell.Cell.pins.(p).Stdcell.Pin.dir = Stdcell.Pin.Input
  in
  if not (input pin_a && input pin_b) then invalid_arg "Retime.swap_pins: not input pins";
  let na = i.Design.conns.(pin_a) and nb = i.Design.conns.(pin_b) in
  if na < 0 || nb < 0 then invalid_arg "Retime.swap_pins: disconnected pin";
  Design.disconnect d ~inst ~pin:pin_a;
  Design.disconnect d ~inst ~pin:pin_b;
  Design.connect d ~inst ~pin:pin_a ~net:nb;
  Design.connect d ~inst ~pin:pin_b ~net:na;
  let nets = List.sort_uniq compare [ na; nb ] in
  refresh t ~old_ni ~old_nn ~old_np ~near:(anchor t na) ~nets ~insts:[ inst ]

(* exact structural undo of the *most recent* [insert_buffer]: the buffer
   must still be the newest instance and its output net the newest net.
   Restores the design bit for bit (the split moved the whole sink list, so
   unsplitting preserves its order), unplaces the buffer, retires its
   graph/route/rc mirror slots and re-times the restored net's cone back
   onto the pre-edit fixpoint. *)
let remove_buffer t ~inst =
  let d = design t in
  let old_ni = Design.num_insts d and old_nn = Design.num_nets d in
  let b = Design.inst d inst in
  if inst <> old_ni - 1 then invalid_arg "Retime.remove_buffer: not the newest instance";
  if b.Design.cell.Cell.kind <> Cell.Buf then
    invalid_arg "Retime.remove_buffer: not a buffer";
  let net = b.Design.conns.(0) and nb = b.Design.conns.(1) in
  if nb <> old_nn - 1 then invalid_arg "Retime.remove_buffer: not the newest net";
  Design.disconnect d ~inst ~pin:1;
  Design.disconnect d ~inst ~pin:0;
  Design.unsplit_net d ~net ~fresh:nb;
  Design.remove_last_instance d;
  Design.remove_last_net d;
  if Place.is_placed t.pl inst then begin
    let r = t.pl.Place.row.(inst) in
    t.pl.Place.row_used.(r) <-
      t.pl.Place.row_used.(r) -. b.Design.cell.Cell.width;
    t.pl.Place.x.(inst) <- Float.nan;
    t.pl.Place.row.(inst) <- -1
  end;
  (* retire the dead net's mirrors: route stats iterate the raw array *)
  if nb < Array.length t.routes then t.routes.(nb) <- None;
  Sta.Tgraph.sync_topology t.tg ~nets:[ net ] ~insts:[];
  let n = Design.net d net in
  t.routes.(net) <- Route.route_net t.pl n;
  t.rc.(net) <- Extract.extract_net t.pl t.routes.(net) n;
  Sta.Tgraph.update_rc t.tg net t.rc.(net);
  let stats = reeval t ~dirty_nets:[ net ] ~dirty_insts:[] in
  t.last_stats <- Some stats;
  t.edits <- t.edits + 1;
  Obs.Metrics.incr m_edits;
  stats
