(** Guarded execution of the Figure-2 flow.

    Wraps each of the six {!Pipeline} stages with wall-clock timing, typed
    stage errors and inter-stage invariant checks ({!Netlist.Check} after
    the netlist transformations, {!Layout.Check} after placement/ECO/
    extraction, {!Scan.Chains.verify} after reordering), under a failure
    policy:

    - {!Fail_fast} — stop at the first failing stage and report it;
    - {!Recover} — a failure in a seed-sensitive stage (placement, scan
      reorder) restarts the whole attempt on a freshly generated design
      with a reseeded RNG, up to [retries] times;
    - {!Degrade} — keep the partial state of the completed head stages and
      mark the failed tail absent, so a sweep can keep going and report
      the level as degraded instead of crashing.

    [run] never lets an exception escape: tool crashes, checker violations
    and even misbehaving [tamper] hooks all land in the report as a
    {!stage_error}.

    When the options carry a stage cache ({!Pipeline.options.cache}), each
    stage body runs through {!Pipeline.cached_stage}; runs with a [tamper]
    hook bypass the cache entirely so injected faults can neither store
    nor be served shared entries. *)

type stage =
  | Tpi_scan        (** step 1: TPI + scan insertion *)
  | Placement       (** step 2: floorplan + placement *)
  | Reorder_atpg    (** step 3: scan reorder + ATPG *)
  | Eco_cts_route   (** step 4: ECO + CTS + DRC + filler + routing *)
  | Extract         (** step 5: RC extraction *)
  | Sta             (** step 6: static timing analysis *)
  | Repair          (** step 7: post-route timing repair (optional) *)

val all_stages : stage list
(** Flow order. *)

val stage_name : stage -> string

type stage_error = {
  stage : stage;
  circuit : string;
  detail : string;  (** leads with a class tag, e.g. ["cell-overlap: ..."] *)
}

exception Stage_failure of stage_error
(** Internal signalling; never escapes {!run}. *)

exception Transient of string
(** A tool's signal that the same attempt may succeed if simply re-run
    (resource hiccup, flaky license, injected chaos). Classified under
    the ["transient"] error class, which service-level retry policies
    ({!Serve.Retry}) treat as retryable with backoff. *)

val error_class : stage_error -> string
(** The detail's leading class tag (["cell-overlap: two cells..."] ->
    ["cell-overlap"]); the whole detail when untagged. *)

val is_transient : stage_error -> bool
(** [error_class e = "transient"]. *)

val is_cancelled : stage_error -> bool
(** [error_class e = "cancelled"] — the attempt was stopped by a
    {!Cancel} token (explicit cancel or deadline), not by a fault. *)

type policy =
  | Fail_fast
  | Recover
  | Degrade

val policy_name : policy -> string
val policy_of_string : string -> policy option

type stage_status =
  | Completed of float
      (** elapsed ms, measured by the {!Obs.Trace} span clock (the same
          timing that appears in an exported trace) *)
  | Failed of float
  | Skipped

type report = {
  circuit : string;
  policy : policy;
  attempts : int;                         (** 1 + retries actually used *)
  stage_log : (stage * stage_status) list; (** all six stages, flow order *)
  error : stage_error option;
  state : Pipeline.state option;
      (** partial stage products of the last attempt; dropped under
          {!Fail_fast} failures *)
  result : Pipeline.result option;        (** [Some] iff the flow completed *)
}

val succeeded : report -> bool
val outcome : report -> (Pipeline.result, stage_error) result
val completed_stages : report -> stage list

val default_retries : int

val run :
  ?policy:policy ->
  ?retries:int ->
  ?options:Pipeline.options ->
  ?tamper:(attempt:int -> stage -> Pipeline.state -> unit) ->
  ?cancel:Cancel.t ->
  ?on_stage:(stage -> stage_status -> unit) ->
  circuit:string ->
  (unit -> Netlist.Design.t) ->
  report
(** [run ~circuit mk_design] generates a design with [mk_design] and runs
    the guarded flow. [tamper], used by {!Inject} and the chaos tests, is
    called after each stage's body and before its invariant checks; it may
    mutate the state (fault injection) or raise (simulated tool crash).

    [cancel] is polled at every stage boundary (both here and inside
    {!Pipeline.cached_stage}); once it fires, the remaining stages are
    skipped and the report carries a typed ["cancelled"] error, which
    {!Recover} never retries. When absent, [options.cancel] is used.

    [on_stage], the service layer's streaming hook, is called with each
    stage's resolution (completed, failed or skipped) as it happens;
    exceptions it raises are swallowed. *)

val pp_stage_error : Format.formatter -> stage_error -> unit
val pp_report : Format.formatter -> report -> unit
