(* Perf-regression gate: compare a freshly measured BENCH_perf.json
   against a checked-in baseline and name every metric that moved past
   tolerance in the bad direction. Pure — bench/main.ml measures and
   this module judges, which is what makes the pass/fail boundary unit
   testable without running a benchmark. *)

type direction = Lower_better | Higher_better

type violation = {
  v_metric : string;
  v_baseline : float;
  v_current : float;
  v_limit : float;     (* the bound current had to stay within *)
  v_ratio : float;     (* current / baseline *)
}

type verdict = {
  checked : int;    (* metrics present in both documents *)
  skipped : string list;  (* baseline metrics absent from current *)
  violations : violation list;
}

let limit ~tolerance_pct ~dir base =
  match dir with
  | Lower_better -> base *. (1.0 +. (tolerance_pct /. 100.0))
  | Higher_better -> base /. (1.0 +. (tolerance_pct /. 100.0))

let violates ~dir ~lim current =
  match dir with Lower_better -> current > lim | Higher_better -> current < lim

let num = function
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

let str = function Some (Json.String s) -> Some s | _ -> None

(* (metric path, direction, value) triples a perf document exposes to
   the gate. Name-keyed so baseline and current line up regardless of
   section order or extra kernels on either side. *)
let gated_metrics doc =
  let out = ref [] in
  let push name dir v = out := (name, dir, v) :: !out in
  let each_item section f =
    match Json.member section doc with
    | Some (Json.List items) -> List.iter f items
    | _ -> ()
  in
  each_item "kernels" (fun item ->
      match (str (Json.member "name" item), num (Json.member "ns_per_run" item)) with
      | Some name, Some v -> push (name ^ "/ns_per_run") Lower_better v
      | _ -> ());
  (match Json.member "parallel" doc with
   | Some par ->
     (match Json.member "kernels" par with
      | Some (Json.List items) ->
        List.iter
          (fun item ->
            match (str (Json.member "name" item), num (Json.member "speedup" item)) with
            | Some name, Some v -> push ("parallel/" ^ name ^ "/speedup") Higher_better v
            | _ -> ())
          items
      | _ -> ())
   | None -> ());
  let speedup_section section =
    match Json.member section doc with
    | Some sec ->
      (match Json.member "kernels" sec with
       | Some (Json.List items) ->
         List.iter
           (fun item ->
             match (str (Json.member "name" item), num (Json.member "speedup" item)) with
             | Some name, Some v ->
               push (section ^ "/" ^ name ^ "/speedup") Higher_better v
             | _ -> ())
           items
       | _ -> ())
    | None -> ()
  in
  speedup_section "cache";
  speedup_section "incremental";
  speedup_section "repair";
  (match Json.member "serve" doc with
   | Some serve ->
     (match num (Json.member "throughput_jobs_per_s" serve) with
      | Some v -> push "serve/throughput_jobs_per_s" Higher_better v
      | None -> ());
     (match num (Json.member "p95_ms" serve) with
      | Some v -> push "serve/p95_ms" Lower_better v
      | None -> ())
   | None -> ());
  List.rev !out

(* The parallel speedups only mean something when both documents were
   measured on comparably provisioned hosts: a 4-core baseline compared
   against a 1-core CI runner would fail the gate on hardware, not on a
   code regression. [host_cores] travels in the parallel section for
   exactly this judgement. *)
let parallel_host_cores doc =
  match Json.member "parallel" doc with
  | Some par -> num (Json.member "host_cores" par)
  | None -> None

let compare_docs ~baseline ~current ~tolerance_pct =
  let cores_differ =
    match (parallel_host_cores baseline, parallel_host_cores current) with
    | Some b, Some c -> b <> c
    | _ -> false
  in
  let cur = gated_metrics current in
  let lookup name = List.find_opt (fun (n, _, _) -> n = name) cur in
  let checked = ref 0 in
  let skipped = ref [] in
  let violations = ref [] in
  List.iter
    (fun (name, dir, base) ->
      if cores_differ && String.starts_with ~prefix:"parallel/" name then
        skipped := name :: !skipped
      else
      match lookup name with
      | None -> skipped := name :: !skipped
      | Some (_, _, v) ->
        incr checked;
        let lim = limit ~tolerance_pct ~dir base in
        if violates ~dir ~lim v then
          violations :=
            { v_metric = name; v_baseline = base; v_current = v; v_limit = lim;
              v_ratio = (if base <> 0.0 then v /. base else Float.infinity) }
            :: !violations)
    (gated_metrics baseline);
  { checked = !checked; skipped = List.rev !skipped; violations = List.rev !violations }

let pp_verdict ppf v =
  Format.fprintf ppf "@[<v>perf gate: %d metric(s) checked, %d violation(s)" v.checked
    (List.length v.violations);
  List.iter
    (fun s -> Format.fprintf ppf "@ skipped (absent from current): %s" s)
    v.skipped;
  List.iter
    (fun viol ->
      Format.fprintf ppf "@ FAIL %-44s baseline %.4g -> current %.4g (%.2fx, limit %.4g)"
        viol.v_metric viol.v_baseline viol.v_current viol.v_ratio viol.v_limit)
    v.violations;
  Format.fprintf ppf "@]"

exception Invalid_baseline of string

let () =
  Printexc.register_printer (function
    | Invalid_baseline msg -> Some ("Perfgate.Invalid_baseline: " ^ msg)
    | _ -> None)

let check ~baseline_path ~current_path ~tolerance_pct =
  let read path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.parse s with
    | Ok doc -> doc
    | Error msg -> raise (Invalid_baseline (Printf.sprintf "%s: invalid JSON: %s" path msg))
  in
  compare_docs ~baseline:(read baseline_path) ~current:(read current_path) ~tolerance_pct
