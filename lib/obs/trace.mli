(** Hierarchical span tracer for the Figure-2 flow.

    A span is one timed region of execution — a flow stage, a kernel
    inside it, an inner phase of a kernel — with wall-clock duration,
    allocation delta ([Gc.quick_stat], so tracing never perturbs the
    RNG or the results) and arbitrary JSON attributes. Spans nest: the
    innermost open span when a new one starts becomes its parent, which
    is what makes the Chrome trace render as a flame graph.

    Tracing is {e off} by default and zero-cost while off: {!with_span}
    checks one flag and tail-calls the body; {!enter}/{!stop} still
    read the clock (they are the timing source of {!Flow.Guard}'s stage
    statuses) but record nothing.

    Export formats: Chrome trace-event JSON ({!chrome_json}, open in
    Perfetto or chrome://tracing) and one-span-per-line JSONL
    ({!jsonl}). *)

type span = {
  id : int;           (** creation order, 0-based *)
  parent : int;       (** id of the enclosing span, -1 at top level *)
  depth : int;        (** 0 at top level *)
  name : string;      (** dotted, e.g. ["stage.place"], ["place.partition"] *)
  attrs : (string * Json.t) list;
  start_us : float;   (** {!Clock.now_us} at entry *)
  dur_us : float;
  alloc_words : float;  (** words allocated while the span was open *)
  error : string option;  (** set when the body raised *)
  domain : int;
      (** [Par.Pool] slot the span was recorded on: 0 for the main
          domain, the worker's slot index otherwise. Exported as its own
          Chrome track ([tid = 1 + domain]). *)
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded spans (the enabled flag is untouched). *)

(** {2 Recording} *)

type timer
(** An open span (or, when tracing is disabled, just a clock sample). *)

val enter : ?attrs:(string * Json.t) list -> name:string -> unit -> timer

val stop : ?error:string -> timer -> float
(** Close the span and return its duration in milliseconds. The
    duration is measured even when tracing is disabled — callers that
    need stage timings ({!Flow.Guard}) always go through here, so there
    is exactly one clock. *)

val with_span : ?attrs:(string * Json.t) list -> name:string -> (unit -> 'a) -> 'a
(** Run the body inside a span. An exception closes the span with
    [error] set and is re-raised. When tracing is disabled this is just
    a flag check. *)

val current_id : unit -> int
(** Id of the innermost open span on the calling context, [-1] when no
    span is open or tracing is disabled. Worker-domain ids are local to
    the current flush window — unique within one record stream, which is
    all the {!Log} correlation field needs. *)

(** {2 Per-domain collection}

    Spans recorded on a worker domain go to a domain-local buffer with
    local ids; [Par.Pool] flushes each worker at the join of a parallel
    region and stitches the buffers into the main timeline, renumbering
    ids and tagging each span with its domain. While tracing is disabled,
    {!with_span} on a worker is the same single flag check as on the main
    domain — no allocation, no buffer touch. *)

type local
(** A flushed batch of one worker domain's spans. *)

val local_flush : unit -> local
(** Take and clear the calling domain's local span buffer. *)

val local_is_empty : local -> bool

val absorb : domain:int -> local -> unit
(** Stitch a worker batch into the main span list (main domain only):
    ids are renumbered into the global id space, parents rewritten, and
    every span tagged with [domain]. *)

(** {2 Inspection and export} *)

val spans : unit -> span list
(** Completed spans in creation (= start) order. *)

val chrome_json : unit -> Json.t
(** Chrome trace-event document: [{"traceEvents": [...], ...}] with one
    ["ph": "X"] (complete) event per span. *)

val jsonl : unit -> string
(** One JSON object per line per span, in creation order. *)

val write_chrome : string -> unit
val write_jsonl : string -> unit

(** {2 Profiles} *)

type agg = {
  a_name : string;
  a_calls : int;
  a_total_us : float;    (** inclusive *)
  a_self_us : float;     (** total minus time in child spans *)
  a_alloc_words : float; (** inclusive *)
  a_errors : int;
}

val aggregate : unit -> agg list
(** Per-name rollup of all recorded spans, ranked by self time
    (descending) — the [tpi_flow profile] table. *)

val pp_profile : Format.formatter -> unit -> unit

type domain_agg = {
  d_domain : int;        (** [Par.Pool] slot, 0 = main domain *)
  d_spans : int;
  d_total_us : float;    (** inclusive *)
  d_self_us : float;     (** total minus time in child spans *)
  d_alloc_words : float;
  d_errors : int;
}

val aggregate_domains : unit -> domain_agg list
(** Self-time rollup per recording domain, ascending slot order — shows
    whether a [-j N] run actually spread work across workers or starved
    them (the diagnosis view for a parallel slowdown). *)

val pp_domains : Format.formatter -> unit -> unit
