(** Perf-regression gate over [BENCH_perf.json] documents.

    Compares a freshly measured perf document against a checked-in
    baseline and reports every gated metric that moved past tolerance
    in its bad direction: kernel [ns_per_run] must not rise, parallel,
    cache, incremental and repair [speedup] must not fall, serve throughput
    must not fall, serve [p95_ms] must not rise. Metrics are matched by name, so
    kernels added or removed on either side are skipped (and listed),
    never spuriously failed.

    The comparison is pure — [bench --perf --check] measures and this
    module judges — which makes the pass/fail boundary unit testable
    without running a benchmark. *)

type direction = Lower_better | Higher_better

type violation = {
  v_metric : string;    (** e.g. ["kernel/table1/atpg/ns_per_run"] *)
  v_baseline : float;
  v_current : float;
  v_limit : float;      (** the bound current had to stay within *)
  v_ratio : float;      (** current / baseline *)
}

type verdict = {
  checked : int;            (** metrics present in both documents *)
  skipped : string list;
      (** baseline metrics absent from current, plus every [parallel/*]
          speedup when the two documents record different
          [parallel.host_cores] — a 4-core baseline against a 1-core
          runner would fail on hardware, not on a code regression *)
  violations : violation list;
}

val limit : tolerance_pct:float -> dir:direction -> float -> float
(** Tolerance bound for one baseline value: [base * (1 + t/100)] when
    lower is better, [base / (1 + t/100)] when higher is better. *)

val violates : dir:direction -> lim:float -> float -> bool
(** Strict comparison against the bound — a value exactly on the limit
    passes. *)

val gated_metrics : Json.t -> (string * direction * float) list
(** The metrics a perf document exposes to the gate, in document
    order. *)

val compare_docs : baseline:Json.t -> current:Json.t -> tolerance_pct:float -> verdict

exception Invalid_baseline of string
(** A perf snapshot file that exists but does not parse as JSON; the
    payload names the file and the parse error. *)

val check : baseline_path:string -> current_path:string -> tolerance_pct:float -> verdict
(** Read both files and compare. Raises [Sys_error] on an unreadable
    file and {!Invalid_baseline} on invalid JSON. *)

val pp_verdict : Format.formatter -> verdict -> unit
