let now_us () = 1e6 *. Unix.gettimeofday ()

let ms_since start_us = (now_us () -. start_us) /. 1000.0
