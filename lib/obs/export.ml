let version = "tpi-repro/0.7"

(* ---- name and label sanitization ---- *)

let name_ok_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize_name s =
  if s = "" then "_"
  else begin
    let b = Buffer.create (String.length s) in
    String.iter (fun c -> Buffer.add_char b (if name_ok_char c then c else '_')) s;
    let s = Buffer.contents b in
    match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s
  end

let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ---- value formatting ---- *)

(* Prometheus floats: plain decimal when exact, +Inf for the open bucket.
   %.17g round-trips every finite double; the shortest form is nicer but
   %g at 17 digits is deterministic and parseable, which is what the
   golden tests pin down. *)
let float_str v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* ---- exposition ---- *)

let build_info_labels () =
  [ ("version", version);
    ("ocaml", Sys.ocaml_version);
    ("host_cores", string_of_int (Domain.recommended_domain_count ()));
    ("word_size", string_of_int Sys.word_size) ]

let add_labels b labels =
  if labels <> [] then begin
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (sanitize_name k);
        Buffer.add_string b "=\"";
        Buffer.add_string b (escape_label v);
        Buffer.add_char b '"')
      labels;
    Buffer.add_char b '}'
  end

let add_sample b name labels value =
  Buffer.add_string b name;
  add_labels b labels;
  Buffer.add_char b ' ';
  Buffer.add_string b value;
  Buffer.add_char b '\n'

let add_type b name kind =
  Buffer.add_string b "# TYPE ";
  Buffer.add_string b name;
  Buffer.add_char b ' ';
  Buffer.add_string b kind;
  Buffer.add_char b '\n'

let prometheus () =
  let b = Buffer.create 4096 in
  add_type b "tpi_build_info" "gauge";
  add_sample b "tpi_build_info" (build_info_labels ()) "1";
  List.iter
    (fun (name, v) ->
      let name = sanitize_name name in
      add_type b name "counter";
      add_sample b name [] (string_of_int v))
    (Metrics.export_counters ());
  List.iter
    (fun (name, v) ->
      let name = sanitize_name name in
      add_type b name "gauge";
      add_sample b name [] (float_str v))
    (Metrics.export_gauges ());
  List.iter
    (fun (name, hv) ->
      let name = sanitize_name name in
      add_type b name "histogram";
      (* cumulative le-series over the occupied log-2 buckets; the +Inf
         bucket always closes the series and equals _count *)
      let cum = ref 0 in
      List.iter
        (fun (k, n) ->
          cum := !cum + n;
          let upper = Metrics.bucket_upper k in
          if upper < Float.infinity then
            add_sample b (name ^ "_bucket")
              [ ("le", float_str upper) ]
              (string_of_int !cum))
        hv.Metrics.hv_buckets;
      add_sample b (name ^ "_bucket") [ ("le", "+Inf") ] (string_of_int hv.Metrics.hv_count);
      add_sample b (name ^ "_sum") [] (float_str hv.Metrics.hv_sum);
      add_sample b (name ^ "_count") [] (string_of_int hv.Metrics.hv_count))
    (Metrics.export_histograms ());
  Buffer.contents b

(* ---- atomic snapshot files ---- *)

let write_atomic path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.concat dir ("." ^ Filename.basename path ^ ".tmp") in
  let oc = open_out tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_prom path = write_atomic path (prometheus ())
let write_metrics_json path = write_atomic path (Json.to_string ~pretty:true (Metrics.snapshot ()) ^ "\n")

(* ---- parsing (the [tpi_flow top] client side) ---- *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

let parse_labels s =
  (* s is the text between '{' and '}' *)
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  (try
     while !i < n do
       let eq = String.index_from s !i '=' in
       let key = String.trim (String.sub s !i (eq - !i)) in
       if eq + 1 >= n || s.[eq + 1] <> '"' then raise Exit;
       let b = Buffer.create 16 in
       let j = ref (eq + 2) in
       let fin = ref (-1) in
       while !fin < 0 do
         if !j >= n then raise Exit
         else if s.[!j] = '\\' && !j + 1 < n then begin
           (match s.[!j + 1] with
            | 'n' -> Buffer.add_char b '\n'
            | c -> Buffer.add_char b c);
           j := !j + 2
         end
         else if s.[!j] = '"' then fin := !j
         else begin
           Buffer.add_char b s.[!j];
           incr j
         end
       done;
       out := (key, Buffer.contents b) :: !out;
       i := !fin + 1;
       while !i < n && (s.[!i] = ',' || s.[!i] = ' ') do incr i done
     done
   with Exit -> ());
  List.rev !out

let parse_value s =
  let s = String.trim s in
  if s = "+Inf" then Some Float.infinity
  else if s = "-Inf" then Some Float.neg_infinity
  else if s = "NaN" then Some Float.nan
  else float_of_string_opt s

let parse text =
  let out = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then
           let name_end =
             match String.index_opt line '{' with
             | Some i -> i
             | None -> (match String.index_opt line ' ' with Some i -> i | None -> -1)
           in
           if name_end > 0 then begin
             let name = String.sub line 0 name_end in
             let labels, rest =
               if line.[name_end] = '{' then
                 match String.index_from_opt line name_end '}' with
                 | Some close ->
                   ( parse_labels (String.sub line (name_end + 1) (close - name_end - 1)),
                     String.sub line (close + 1) (String.length line - close - 1) )
                 | None -> ([], "")
               else ([], String.sub line name_end (String.length line - name_end))
             in
             match parse_value rest with
             | Some v -> out := { s_name = name; s_labels = labels; s_value = v } :: !out
             | None -> ()
           end);
  List.rev !out

let find ?(labels = []) samples name =
  List.find_opt
    (fun s ->
      s.s_name = name
      && List.for_all
           (fun (k, v) -> List.assoc_opt k s.s_labels = Some v)
           labels)
    samples
  |> Option.map (fun s -> s.s_value)

(* Cumulative le-buckets of [name] (the _bucket series), ascending by
   upper bound, as (upper, cumulative_count). *)
let buckets_of samples name =
  List.filter_map
    (fun s ->
      if s.s_name = name ^ "_bucket" then
        match List.assoc_opt "le" s.s_labels with
        | Some le -> parse_value le |> Option.map (fun u -> (u, int_of_float s.s_value))
        | None -> None
      else None)
    samples
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Quantile estimate from cumulative log-2 buckets: the answer is the
   upper bound of the first bucket whose cumulative count reaches
   q * total — conservative by at most one octave, which is the
   resolution the histogram stores in the first place. *)
let quantile ~buckets ~q =
  match List.rev buckets with
  | [] -> None
  | (_, total) :: _ when total <= 0 -> None
  | (top, total) :: _ ->
    let rank = q *. float_of_int total in
    let rec scan = function
      | [] -> Some top
      | (upper, cum) :: rest ->
        if float_of_int cum >= rank then Some upper else scan rest
    in
    scan buckets
