(** The one clock of the observability layer. Every duration in the
    system — span timings, {!Flow.Guard} stage statuses, profile tables —
    derives from this module, so numbers from different layers are
    directly comparable. *)

val now_us : unit -> float
(** Current wall-clock time in microseconds (Chrome trace-event unit). *)

val ms_since : float -> float
(** Milliseconds elapsed since a [now_us] sample. *)
