(** Always-on crash flight recorder.

    A fixed-capacity ring buffer of the most recent noteworthy events —
    log records, stage completions, faults — recorded unconditionally
    (a few stores under a mutex, constant memory forever). When
    something dies, {!dump} writes the last N events as a post-mortem
    JSON snapshot, so every fault explains itself even when nobody
    enabled logging or tracing beforehand.

    Dump triggers wired through the system: a guarded stage faulting
    ({!Flow.Guard}), a served job exhausting its retries, and the
    daemon's signal-initiated drain. Dumping is a no-op until
    {!set_dump_path} names a destination (the [--flight FILE] flag). *)

type kind = Log | Span | Fault

type event = {
  ts_us : float;
  kind : kind;
  label : string;   (** what: stage or logger name, e.g. ["stage.place"] *)
  detail : string;  (** free-form message or error rendering *)
  job : string option;  (** served job id, when in a job context *)
  domain : int;     (** recording domain; 0 = main *)
}

val default_capacity : int

val set_capacity : int -> unit
(** Resize the ring (clamped to [>= 1]); existing events are dropped. *)

val capacity : unit -> int

val clear : unit -> unit
(** Drop all events and reset the lifetime counters. *)

val record : ?job:string -> kind:kind -> label:string -> detail:string -> unit -> unit

val log : ?job:string -> label:string -> detail:string -> unit -> unit
val span : ?job:string -> label:string -> detail:string -> unit -> unit
val fault : ?job:string -> label:string -> detail:string -> unit -> unit

val events : unit -> event list
(** Current ring contents, oldest first (at most {!capacity} events). *)

val total : unit -> int
(** Events ever recorded — exceeds [List.length (events ())] once the
    ring has wrapped. *)

val snapshot_json : reason:string -> Json.t
(** The post-mortem document: reason, capture timestamp, lifetime event
    count and the ring contents oldest-first. *)

val set_dump_path : string option -> unit
(** Destination for {!dump}; [None] (the default) disables dumping. *)

val dump : reason:string -> bool
(** Atomically write {!snapshot_json} to the configured path. Returns
    whether a dump was written ([false] when no path is set or the
    write failed — a flight recorder must never take the process down
    with it). *)

val dumps : unit -> int
(** Dumps successfully written since start (or {!clear}). *)
