type span = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  attrs : (string * Json.t) list;
  start_us : float;
  dur_us : float;
  alloc_words : float;
  error : string option;
}

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

(* completed spans, newest first; (id, depth) stack of open spans *)
let completed : span list ref = ref []
let stack : (int * int) list ref = ref []
let next_id = ref 0

let reset () =
  completed := [];
  stack := [];
  next_id := 0

let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

type timer = {
  t_start_us : float;
  t_id : int;  (* -1 when not recording *)
  t_parent : int;
  t_depth : int;
  t_name : string;
  t_attrs : (string * Json.t) list;
  t_alloc0 : float;
}

let enter ?(attrs = []) ~name () =
  let start = Clock.now_us () in
  if not !on then
    { t_start_us = start; t_id = -1; t_parent = -1; t_depth = 0; t_name = name;
      t_attrs = []; t_alloc0 = 0.0 }
  else begin
    let id = !next_id in
    incr next_id;
    let parent, depth =
      match !stack with [] -> (-1, 0) | (pid, pdepth) :: _ -> (pid, pdepth + 1)
    in
    stack := (id, depth) :: !stack;
    { t_start_us = start; t_id = id; t_parent = parent; t_depth = depth;
      t_name = name; t_attrs = attrs; t_alloc0 = allocated_words () }
  end

let stop ?error t =
  let ms = Clock.ms_since t.t_start_us in
  if t.t_id >= 0 then begin
    (* tolerate an unbalanced stop (a span closed out of order) by
       removing the span wherever it sits *)
    (match !stack with
     | (id, _) :: rest when id = t.t_id -> stack := rest
     | _ -> stack := List.filter (fun (id, _) -> id <> t.t_id) !stack);
    completed :=
      { id = t.t_id; parent = t.t_parent; depth = t.t_depth; name = t.t_name;
        attrs = t.t_attrs; start_us = t.t_start_us; dur_us = 1000.0 *. ms;
        alloc_words = Float.max 0.0 (allocated_words () -. t.t_alloc0); error }
      :: !completed
  end;
  ms

let with_span ?attrs ~name f =
  if not !on then f ()
  else begin
    let t = enter ?attrs ~name () in
    match f () with
    | v ->
      ignore (stop t);
      v
    | exception e ->
      ignore (stop ~error:(Printexc.to_string e) t);
      raise e
  end

(* spans are recorded at stop time; sort by id to restore start order *)
let spans () =
  List.sort (fun a b -> compare a.id b.id) !completed

(* ---- export ---- *)

let span_fields sp =
  let base =
    [ ("name", Json.String sp.name);
      ("id", Json.Int sp.id);
      ("parent", Json.Int sp.parent);
      ("depth", Json.Int sp.depth);
      ("start_us", Json.Float sp.start_us);
      ("dur_us", Json.Float sp.dur_us);
      ("alloc_words", Json.Float sp.alloc_words) ]
  in
  let base =
    match sp.error with
    | Some e -> base @ [ ("error", Json.String e) ]
    | None -> base
  in
  match sp.attrs with [] -> base | attrs -> base @ [ ("attrs", Json.Obj attrs) ]

let chrome_event sp =
  let args =
    [ ("alloc_words", Json.Float sp.alloc_words) ]
    @ (match sp.error with Some e -> [ ("error", Json.String e) ] | None -> [])
    @ sp.attrs
  in
  Json.Obj
    [ ("name", Json.String sp.name);
      ("cat", Json.String "flow");
      ("ph", Json.String "X");
      ("ts", Json.Float sp.start_us);
      ("dur", Json.Float sp.dur_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("args", Json.Obj args) ]

let chrome_json () =
  Json.Obj
    [ ("traceEvents", Json.List (List.map chrome_event (spans ())));
      ("displayTimeUnit", Json.String "ms") ]

let jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun sp ->
      Buffer.add_string buf (Json.to_string (Json.Obj (span_fields sp)));
      Buffer.add_char buf '\n')
    (spans ());
  Buffer.contents buf

let write_chrome path = Json.write_file path (chrome_json ())

let write_jsonl path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (jsonl ()))

(* ---- profiles ---- *)

type agg = {
  a_name : string;
  a_calls : int;
  a_total_us : float;
  a_self_us : float;
  a_alloc_words : float;
  a_errors : int;
}

let aggregate () =
  let sps = spans () in
  (* time inside child spans, by parent id *)
  let child_us = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      if sp.parent >= 0 then
        Hashtbl.replace child_us sp.parent
          (sp.dur_us
           +. (match Hashtbl.find_opt child_us sp.parent with Some v -> v | None -> 0.0)))
    sps;
  let by_name : (string, agg) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      let children =
        match Hashtbl.find_opt child_us sp.id with Some v -> v | None -> 0.0
      in
      let self = Float.max 0.0 (sp.dur_us -. children) in
      let prev =
        match Hashtbl.find_opt by_name sp.name with
        | Some a -> a
        | None ->
          { a_name = sp.name; a_calls = 0; a_total_us = 0.0; a_self_us = 0.0;
            a_alloc_words = 0.0; a_errors = 0 }
      in
      Hashtbl.replace by_name sp.name
        { prev with
          a_calls = prev.a_calls + 1;
          a_total_us = prev.a_total_us +. sp.dur_us;
          a_self_us = prev.a_self_us +. self;
          a_alloc_words = prev.a_alloc_words +. sp.alloc_words;
          a_errors = prev.a_errors + (if sp.error = None then 0 else 1) })
    sps;
  let all = Hashtbl.fold (fun _ a acc -> a :: acc) by_name [] in
  List.sort (fun a b -> compare b.a_self_us a.a_self_us) all

let pp_profile ppf () =
  let aggs = aggregate () in
  let grand_self = List.fold_left (fun acc a -> acc +. a.a_self_us) 0.0 aggs in
  Format.fprintf ppf "@[<v>%-28s %6s %12s %12s %6s %12s@ " "kernel" "calls"
    "total ms" "self ms" "self%" "alloc kw";
  Format.fprintf ppf "%s@ " (String.make 80 '-');
  List.iter
    (fun a ->
      Format.fprintf ppf "%-28s %6d %12.2f %12.2f %5.1f%% %12.1f%s@ " a.a_name
        a.a_calls (a.a_total_us /. 1000.0) (a.a_self_us /. 1000.0)
        (if grand_self > 0.0 then 100.0 *. a.a_self_us /. grand_self else 0.0)
        (a.a_alloc_words /. 1000.0)
        (if a.a_errors > 0 then Printf.sprintf "  (%d error)" a.a_errors else ""))
    aggs;
  Format.fprintf ppf "@]"
