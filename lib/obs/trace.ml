type span = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  attrs : (string * Json.t) list;
  start_us : float;
  dur_us : float;
  alloc_words : float;
  error : string option;
  domain : int;
}

(* the enabled flag is read from every domain, so it is atomic; everything
   else is either owned by the main domain or domain-local *)
let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

(* main-domain state: completed spans, newest first; (id, depth) stack of
   open spans *)
let completed : span list ref = ref []
let stack : (int * int) list ref = ref []
let next_id = ref 0

let main_domain = (Domain.self () :> int)
let on_main () = (Domain.self () :> int) = main_domain

(* worker-domain state, one per domain, collected by Par.Pool at join.
   Worker span ids are local (0-based per flush window); [absorb] renumbers
   them into the main id space. *)
type wstate = {
  mutable w_completed : span list;
  mutable w_stack : (int * int) list;
  mutable w_next : int;
}

let wkey = Domain.DLS.new_key (fun () -> { w_completed = []; w_stack = []; w_next = 0 })

let reset () =
  completed := [];
  stack := [];
  next_id := 0

let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

type timer = {
  t_start_us : float;
  t_id : int;  (* -1 when not recording *)
  t_parent : int;
  t_depth : int;
  t_name : string;
  t_attrs : (string * Json.t) list;
  t_alloc0 : float;
  t_local : bool;  (* recorded in the calling worker's local buffer *)
}

let enter ?(attrs = []) ~name () =
  let start = Clock.now_us () in
  if not (Atomic.get on) then
    { t_start_us = start; t_id = -1; t_parent = -1; t_depth = 0; t_name = name;
      t_attrs = []; t_alloc0 = 0.0; t_local = false }
  else if on_main () then begin
    let id = !next_id in
    incr next_id;
    let parent, depth =
      match !stack with [] -> (-1, 0) | (pid, pdepth) :: _ -> (pid, pdepth + 1)
    in
    stack := (id, depth) :: !stack;
    { t_start_us = start; t_id = id; t_parent = parent; t_depth = depth;
      t_name = name; t_attrs = attrs; t_alloc0 = allocated_words (); t_local = false }
  end
  else begin
    let w = Domain.DLS.get wkey in
    let id = w.w_next in
    w.w_next <- id + 1;
    let parent, depth =
      match w.w_stack with [] -> (-1, 0) | (pid, pdepth) :: _ -> (pid, pdepth + 1)
    in
    w.w_stack <- (id, depth) :: w.w_stack;
    { t_start_us = start; t_id = id; t_parent = parent; t_depth = depth;
      t_name = name; t_attrs = attrs; t_alloc0 = allocated_words (); t_local = true }
  end

let stop ?error t =
  let ms = Clock.ms_since t.t_start_us in
  if t.t_id >= 0 then begin
    let sp =
      { id = t.t_id; parent = t.t_parent; depth = t.t_depth; name = t.t_name;
        attrs = t.t_attrs; start_us = t.t_start_us; dur_us = 1000.0 *. ms;
        alloc_words = Float.max 0.0 (allocated_words () -. t.t_alloc0); error;
        domain = 0 }
    in
    if t.t_local then begin
      let w = Domain.DLS.get wkey in
      (match w.w_stack with
       | (id, _) :: rest when id = t.t_id -> w.w_stack <- rest
       | _ -> w.w_stack <- List.filter (fun (id, _) -> id <> t.t_id) w.w_stack);
      w.w_completed <- sp :: w.w_completed
    end
    else begin
      (* tolerate an unbalanced stop (a span closed out of order) by
         removing the span wherever it sits *)
      (match !stack with
       | (id, _) :: rest when id = t.t_id -> stack := rest
       | _ -> stack := List.filter (fun (id, _) -> id <> t.t_id) !stack);
      completed := sp :: !completed
    end
  end;
  ms

let with_span ?attrs ~name f =
  if not (Atomic.get on) then f ()
  else begin
    let t = enter ?attrs ~name () in
    match f () with
    | v ->
      let (_ : float) = stop t in
      v
    | exception e ->
      let (_ : float) = stop ~error:(Printexc.to_string e) t in
      raise e
  end

(* Innermost open span on the calling context, -1 when none is open (or
   tracing is off). Worker ids are flush-window-local, which is fine for
   the log correlation this feeds (Obs.Log): correlation only has to be
   unique within one record stream. *)
let current_id () =
  if not (Atomic.get on) then -1
  else if on_main () then match !stack with [] -> -1 | (id, _) :: _ -> id
  else
    let w = Domain.DLS.get wkey in
    match w.w_stack with [] -> -1 | (id, _) :: _ -> id

(* ---- per-domain collection (the Par.Pool join protocol) ---- *)

type local = {
  ls_spans : span list;  (* newest first, local ids *)
  ls_count : int;        (* local ids allocated, >= length ls_spans *)
}

let local_flush () =
  let w = Domain.DLS.get wkey in
  let spans = w.w_completed and count = w.w_next in
  w.w_completed <- [];
  w.w_stack <- [];
  w.w_next <- 0;
  { ls_spans = spans; ls_count = count }

let local_is_empty l = l.ls_spans = []

let absorb ~domain l =
  if l.ls_spans <> [] then begin
    let base = !next_id in
    next_id := base + l.ls_count;
    completed :=
      List.fold_left
        (fun acc sp ->
          { sp with
            id = base + sp.id;
            parent = (if sp.parent >= 0 then base + sp.parent else -1);
            domain }
          :: acc)
        !completed l.ls_spans
  end

(* spans are recorded at stop time; sort by id to restore start order *)
let spans () =
  List.sort (fun a b -> compare a.id b.id) !completed

(* ---- export ---- *)

let span_fields sp =
  let base =
    [ ("name", Json.String sp.name);
      ("id", Json.Int sp.id);
      ("parent", Json.Int sp.parent);
      ("depth", Json.Int sp.depth);
      ("start_us", Json.Float sp.start_us);
      ("dur_us", Json.Float sp.dur_us);
      ("alloc_words", Json.Float sp.alloc_words) ]
  in
  let base = if sp.domain <> 0 then base @ [ ("domain", Json.Int sp.domain) ] else base in
  let base =
    match sp.error with
    | Some e -> base @ [ ("error", Json.String e) ]
    | None -> base
  in
  match sp.attrs with [] -> base | attrs -> base @ [ ("attrs", Json.Obj attrs) ]

let chrome_event sp =
  let args =
    [ ("alloc_words", Json.Float sp.alloc_words) ]
    @ (match sp.error with Some e -> [ ("error", Json.String e) ] | None -> [])
    @ sp.attrs
  in
  Json.Obj
    [ ("name", Json.String sp.name);
      ("cat", Json.String "flow");
      ("ph", Json.String "X");
      ("ts", Json.Float sp.start_us);
      ("dur", Json.Float sp.dur_us);
      ("pid", Json.Int 1);
      (* one track per domain: main stays tid 1, worker slot d gets 1+d *)
      ("tid", Json.Int (1 + sp.domain));
      ("args", Json.Obj args) ]

let chrome_json () =
  Json.Obj
    [ ("traceEvents", Json.List (List.map chrome_event (spans ())));
      ("displayTimeUnit", Json.String "ms") ]

let jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun sp ->
      Buffer.add_string buf (Json.to_string (Json.Obj (span_fields sp)));
      Buffer.add_char buf '\n')
    (spans ());
  Buffer.contents buf

let write_chrome path = Json.write_file path (chrome_json ())

let write_jsonl path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (jsonl ()))

(* ---- profiles ---- *)

type agg = {
  a_name : string;
  a_calls : int;
  a_total_us : float;
  a_self_us : float;
  a_alloc_words : float;
  a_errors : int;
}

let aggregate () =
  let sps = spans () in
  (* time inside child spans, by parent id *)
  let child_us = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      if sp.parent >= 0 then
        Hashtbl.replace child_us sp.parent
          (sp.dur_us
           +. (match Hashtbl.find_opt child_us sp.parent with Some v -> v | None -> 0.0)))
    sps;
  let by_name : (string, agg) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      let children =
        match Hashtbl.find_opt child_us sp.id with Some v -> v | None -> 0.0
      in
      let self = Float.max 0.0 (sp.dur_us -. children) in
      let prev =
        match Hashtbl.find_opt by_name sp.name with
        | Some a -> a
        | None ->
          { a_name = sp.name; a_calls = 0; a_total_us = 0.0; a_self_us = 0.0;
            a_alloc_words = 0.0; a_errors = 0 }
      in
      Hashtbl.replace by_name sp.name
        { prev with
          a_calls = prev.a_calls + 1;
          a_total_us = prev.a_total_us +. sp.dur_us;
          a_self_us = prev.a_self_us +. self;
          a_alloc_words = prev.a_alloc_words +. sp.alloc_words;
          a_errors = prev.a_errors + (if sp.error = None then 0 else 1) })
    sps;
  let all = Hashtbl.fold (fun _ a acc -> a :: acc) by_name [] in
  List.sort (fun a b -> compare b.a_self_us a.a_self_us) all

type domain_agg = {
  d_domain : int;
  d_spans : int;
  d_total_us : float;
  d_self_us : float;
  d_alloc_words : float;
  d_errors : int;
}

(* Self time per Par.Pool slot: the -j N diagnosis view. A worker whose
   self time is a small fraction of the wall clock spent in the parallel
   region is starved (fan-out too coarse) or serialized (lock/join
   overhead) — which is exactly what BENCH_perf.json's sub-1.0 parallel
   speedups on this host cannot distinguish on their own. *)
let aggregate_domains () =
  let sps = spans () in
  let child_us = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      if sp.parent >= 0 then
        Hashtbl.replace child_us sp.parent
          (sp.dur_us
           +. (match Hashtbl.find_opt child_us sp.parent with Some v -> v | None -> 0.0)))
    sps;
  let by_domain : (int, domain_agg) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let children =
        match Hashtbl.find_opt child_us sp.id with Some v -> v | None -> 0.0
      in
      let self = Float.max 0.0 (sp.dur_us -. children) in
      let prev =
        match Hashtbl.find_opt by_domain sp.domain with
        | Some a -> a
        | None ->
          { d_domain = sp.domain; d_spans = 0; d_total_us = 0.0; d_self_us = 0.0;
            d_alloc_words = 0.0; d_errors = 0 }
      in
      Hashtbl.replace by_domain sp.domain
        { prev with
          d_spans = prev.d_spans + 1;
          d_total_us = prev.d_total_us +. sp.dur_us;
          d_self_us = prev.d_self_us +. self;
          d_alloc_words = prev.d_alloc_words +. sp.alloc_words;
          d_errors = prev.d_errors + (if sp.error = None then 0 else 1) })
    sps;
  let all = Hashtbl.fold (fun _ a acc -> a :: acc) by_domain [] in
  List.sort (fun a b -> compare a.d_domain b.d_domain) all

let pp_domains ppf () =
  let aggs = aggregate_domains () in
  let grand_self = List.fold_left (fun acc a -> acc +. a.d_self_us) 0.0 aggs in
  Format.fprintf ppf "@[<v>%-8s %6s %12s %12s %6s %12s@ " "domain" "spans"
    "total ms" "self ms" "self%" "alloc kw";
  Format.fprintf ppf "%s@ " (String.make 62 '-');
  List.iter
    (fun a ->
      Format.fprintf ppf "%-8s %6d %12.2f %12.2f %5.1f%% %12.1f%s@ "
        (if a.d_domain = 0 then "main" else Printf.sprintf "w%d" a.d_domain)
        a.d_spans (a.d_total_us /. 1000.0) (a.d_self_us /. 1000.0)
        (if grand_self > 0.0 then 100.0 *. a.d_self_us /. grand_self else 0.0)
        (a.d_alloc_words /. 1000.0)
        (if a.d_errors > 0 then Printf.sprintf "  (%d error)" a.d_errors else ""))
    aggs;
  Format.fprintf ppf "@]"

let pp_profile ppf () =
  let aggs = aggregate () in
  let grand_self = List.fold_left (fun acc a -> acc +. a.a_self_us) 0.0 aggs in
  Format.fprintf ppf "@[<v>%-28s %6s %12s %12s %6s %12s@ " "kernel" "calls"
    "total ms" "self ms" "self%" "alloc kw";
  Format.fprintf ppf "%s@ " (String.make 80 '-');
  List.iter
    (fun a ->
      Format.fprintf ppf "%-28s %6d %12.2f %12.2f %5.1f%% %12.1f%s@ " a.a_name
        a.a_calls (a.a_total_us /. 1000.0) (a.a_self_us /. 1000.0)
        (if grand_self > 0.0 then 100.0 *. a.a_self_us /. grand_self else 0.0)
        (a.a_alloc_words /. 1000.0)
        (if a.a_errors > 0 then Printf.sprintf "  (%d error)" a.a_errors else ""))
    aggs;
  Format.fprintf ppf "@]"
