type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type sink = Disabled | Stderr | Channel of out_channel

(* One mutex guards threshold, sink and the write itself: log records
   from the daemon's reader/executor/acceptor systhreads interleave at
   line granularity, never mid-record. *)
let m = Mutex.create ()
let threshold = ref Info
let sink = ref Disabled
let emitted = ref 0

let locked f = Mutex.lock m; Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let set_level l = locked (fun () -> threshold := l)
let level () = locked (fun () -> !threshold)

let close_sink () =
  (match !sink with Channel oc -> close_out_noerr oc | Stderr | Disabled -> ());
  sink := Disabled

let to_file path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  locked (fun () ->
      close_sink ();
      sink := Channel oc)

let to_stderr () = locked (fun () -> close_sink (); sink := Stderr)
let disable () = locked (fun () -> close_sink ())
let emitted_count () = locked (fun () -> !emitted)

let enabled l = level_rank l >= level_rank (locked (fun () -> !threshold))

let record_json ~l ?job ?(fields = []) msg =
  let span = Trace.current_id () in
  Json.Obj
    ([ ("ts_us", Json.Float (Clock.now_us ()));
       ("level", Json.String (level_name l));
       ("domain", Json.Int (Domain.self () :> int));
       ("msg", Json.String msg) ]
     @ (match job with Some j -> [ ("job", Json.String j) ] | None -> [])
     @ (if span >= 0 then [ ("span", Json.Int span) ] else [])
     @ fields)

let logf l ?job ?fields fmt =
  Printf.ksprintf
    (fun msg ->
      if level_rank l >= level_rank (locked (fun () -> !threshold)) then begin
        (* the flight recorder sees every record that passes the filter,
           sink or no sink — that is what makes post-mortems useful when
           nobody enabled logging *)
        Recorder.log ?job ~label:(level_name l) ~detail:msg ();
        locked (fun () ->
            match !sink with
            | Disabled -> ()
            | (Stderr | Channel _) as s ->
              let line = Json.to_string (record_json ~l ?job ?fields msg) in
              incr emitted;
              (match s with
               | Stderr ->
                 output_string stderr line;
                 output_char stderr '\n';
                 flush stderr
               | Channel oc ->
                 output_string oc line;
                 output_char oc '\n';
                 flush oc
               | Disabled -> ()))
      end)
    fmt

let debug ?job ?fields fmt = logf Debug ?job ?fields fmt
let info ?job ?fields fmt = logf Info ?job ?fields fmt
let warn ?job ?fields fmt = logf Warn ?job ?fields fmt
let error ?job ?fields fmt = logf Error ?job ?fields fmt
