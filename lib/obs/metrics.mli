(** Process-wide metrics registry: named counters, gauges and log-scale
    histograms for the flow's kernels ([atpg.patterns_generated],
    [place.fm_moves], [sta.arcs_evaluated], ...).

    Handles are interned by name: [counter "x"] always returns the same
    cell, so hot loops hoist the lookup and pay one integer add per
    event. {!reset} zeroes values {e in place} — handles obtained
    before a reset stay valid.

    Naming convention: [<subsystem>.<what>], lowercase, snake_case
    after the dot ([route.segments], [guard.stage_failures]). *)

type counter
type gauge
type histogram

val counter : string -> counter
val add : counter -> int -> unit
val incr : counter -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> histogram
val observe : histogram -> float -> unit

val bucket_of : float -> int
(** Log-2 bucket index of a sample: bucket 0 holds everything [<= 1.0]
    (including zero, negatives and NaN), bucket [k >= 1] holds
    [(2^(k-1), 2^k]], bucket 63 additionally holds everything larger
    than [2^62]. *)

val bucket_upper : int -> float
(** Inclusive upper bound of a bucket ([2.0 ** k]; [infinity] for 63). *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_bucket : histogram -> int -> int
(** Occupancy of one bucket. *)

val reset : unit -> unit
(** Zero every registered metric (registry membership and existing
    handles are preserved). *)

val snapshot : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}], names
    sorted, zero-valued metrics included, empty histogram buckets
    omitted. *)

val write_json : string -> unit

val pp : Format.formatter -> unit -> unit
(** Human-readable dump of every non-zero metric (the [-v] report). *)
