(** Process-wide metrics registry: named counters, gauges and log-scale
    histograms for the flow's kernels ([atpg.patterns_generated],
    [place.fm_moves], [sta.arcs_evaluated], ...).

    Handles are interned by name: [counter "x"] always returns the same
    cell, so hot loops hoist the lookup and pay one integer add per
    event. {!reset} zeroes values {e in place} — handles obtained
    before a reset stay valid.

    Naming convention: [<subsystem>.<what>], lowercase, snake_case
    after the dot ([route.segments], [guard.stage_failures]).

    {b Domains.} The registry above is owned by the main domain (the one
    that loaded this module). Updates made on a worker domain transparently
    land in a domain-local registry (handles resolve by name), so hot
    kernels never write across domains. {!Par.Pool} flushes each worker's
    local registry at the join of every parallel region ({!local_flush})
    and merges them into the global registry in ascending domain order
    ({!absorb}): counters sum, gauges take the last writer, histograms add
    bucket-wise. The global snapshot is therefore byte-identical whatever
    the domain count. *)

type counter
type gauge
type histogram

val counter : string -> counter
val add : counter -> int -> unit
val incr : counter -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val set_direct : gauge -> float -> unit
(** Write the handle's own cell, bypassing scoped-capture resolution.
    For service telemetry (uptime, in-flight jobs) updated from daemon
    systhreads that share the executor's domain: a plain {!set} during
    an open {!with_scoped} region would leak the update into the
    region's delta and poison cache replay. *)

val histogram : string -> histogram
val observe : histogram -> float -> unit

val bucket_of : float -> int
(** Log-2 bucket index of a sample: bucket 0 holds everything [<= 1.0]
    (including zero, negatives and NaN), bucket [k >= 1] holds
    [(2^(k-1), 2^k]], bucket 63 additionally holds everything larger
    than [2^62]. *)

val bucket_upper : int -> float
(** Inclusive upper bound of a bucket ([2.0 ** k]; [infinity] for 63). *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_bucket : histogram -> int -> int
(** Occupancy of one bucket. *)

val reset : unit -> unit
(** Zero every registered metric (registry membership and existing
    handles are preserved). Main domain only. *)

(** {2 Per-domain snapshots}

    The join protocol used by [Par.Pool]: each worker flushes its local
    registry on its own domain, the pool owner absorbs the snapshots in
    ascending domain order. *)

type local
(** A flushed, immutable snapshot of one domain's local registry. *)

val local_flush : unit -> local
(** Snapshot and clear the {e calling} domain's local registry. Must run
    on the domain whose metrics are being collected. *)

val local_is_empty : local -> bool

val absorb : local -> unit
(** Merge a worker snapshot into the calling domain's registry (the
    global one when called, as intended, on the main domain): counters
    add, gauges overwrite (so absorbing in ascending domain order makes
    the highest-indexed writer win), histograms merge bucket-wise with
    count/sum added and min/max widened. *)

val with_scoped : (unit -> 'a) -> 'a * local
(** [with_scoped f] runs [f] with the calling domain's metric updates
    redirected into a fresh private registry, then merges that registry
    back (via {!absorb}) and returns [f]'s result together with the
    region's exact metrics delta. The net effect on the ambient registry
    is identical to running [f] unscoped; the delta is what a stage
    cache serializes and replays ({!absorb}) on a hit so cached runs
    expose the same kernel counters as uncached ones. Scopes nest; a
    parallel region joined inside the scope lands its workers' metrics
    in the scope. If [f] raises, the partial delta is merged and the
    exception re-raised. *)

(** {2 Sorted global views}

    Read the {e global} registry directly (never a scoped capture), in
    ascending name order — the input of {!Export.prometheus}. Safe to
    call from any systhread of the main domain. *)

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_buckets : (int * int) list;
      (** occupied log-2 buckets as [(index, occupancy)], ascending;
          see {!bucket_upper} for the bound of an index *)
}

val export_counters : unit -> (string * int) list
val export_gauges : unit -> (string * float) list
val export_histograms : unit -> (string * hist_view) list

val snapshot : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}], names
    sorted, zero-valued metrics included, empty histogram buckets
    omitted. *)

val write_json : string -> unit

val pp : Format.formatter -> unit -> unit
(** Human-readable dump of every non-zero metric (the [-v] report). *)
