(** Minimal JSON without external dependencies: a value type, an emitter
    and a strict parser. The emitter backs the trace/metrics exporters;
    the parser exists so tests and tools can validate exported files
    round-trip ([parse (to_string v)] succeeds for every emitted [v]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values are clamped on emission *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** RFC 8259 text. [pretty] indents objects and arrays (default false). *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document; [Error msg] carries the
    byte offset of the first problem. Numbers without [.], [e] or [E]
    that fit in an OCaml [int] parse as [Int], everything else as
    [Float]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val write_file : string -> t -> unit
(** Pretty-print to a file, trailing newline included. *)
