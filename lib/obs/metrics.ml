type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_buckets : int array;  (* 64 log-2 buckets *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type registry = {
  r_counters : (string, counter) Hashtbl.t;
  r_gauges : (string, gauge) Hashtbl.t;
  r_histograms : (string, histogram) Hashtbl.t;
}

let fresh_registry () =
  { r_counters = Hashtbl.create 32;
    r_gauges = Hashtbl.create 32;
    r_histograms = Hashtbl.create 32 }

(* The process-wide registry belongs to the domain that loaded this module
   (the main domain). Worker domains write to a domain-local registry that
   Par.Pool flushes and absorbs into the global one, in domain order, at
   the join of every parallel region -- which is what keeps snapshots
   identical whatever the domain count. *)
let global = fresh_registry ()
let main_domain = (Domain.self () :> int)
let on_main () = (Domain.self () :> int) = main_domain
let local_registry_key = Domain.DLS.new_key fresh_registry

let intern table name make =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.replace table name v;
    v

let mk_counter name () = { c_name = name; c_value = 0 }
let mk_gauge name () = { g_name = name; g_value = 0.0 }

let mk_histogram name () =
  { h_name = name; h_buckets = Array.make 64 0; h_count = 0; h_sum = 0.0;
    h_min = Float.infinity; h_max = Float.neg_infinity }

(* Scoped capture (see [with_scoped]): while a scope is open on a domain,
   that domain's updates land in the scope's private registry instead, so
   the exact metrics delta of a code region can be taken. A stack supports
   nesting; the common case is an empty stack and one DLS read. *)
let scoped_key = Domain.DLS.new_key (fun () -> ([] : registry list))

let registry () =
  match Domain.DLS.get scoped_key with
  | r :: _ -> r
  | [] -> if on_main () then global else Domain.DLS.get local_registry_key

let counter name = intern (registry ()).r_counters name (mk_counter name)
let gauge name = intern (registry ()).r_gauges name (mk_gauge name)
let histogram name = intern (registry ()).r_histograms name (mk_histogram name)

(* Handles are interned per domain: a handle obtained at module-load time
   (on the main domain) used from a worker resolves, by name, to the
   worker's local cell, so hot loops never write across domains. On the
   main domain the handle is used directly -- the historical fast path. *)
let resolve_counter c =
  match Domain.DLS.get scoped_key with
  | r :: _ -> intern r.r_counters c.c_name (mk_counter c.c_name)
  | [] ->
    if on_main () then c
    else intern (Domain.DLS.get local_registry_key).r_counters c.c_name (mk_counter c.c_name)

let resolve_gauge g =
  match Domain.DLS.get scoped_key with
  | r :: _ -> intern r.r_gauges g.g_name (mk_gauge g.g_name)
  | [] ->
    if on_main () then g
    else intern (Domain.DLS.get local_registry_key).r_gauges g.g_name (mk_gauge g.g_name)

let resolve_histogram h =
  match Domain.DLS.get scoped_key with
  | r :: _ -> intern r.r_histograms h.h_name (mk_histogram h.h_name)
  | [] ->
    if on_main () then h
    else
      intern (Domain.DLS.get local_registry_key).r_histograms h.h_name (mk_histogram h.h_name)

let add c k =
  let c = resolve_counter c in
  c.c_value <- c.c_value + k

let incr c = add c 1
let value c = (resolve_counter c).c_value

let set g v =
  let g = resolve_gauge g in
  g.g_value <- v

let gauge_value g = (resolve_gauge g).g_value

(* Direct write to the handle's own cell, skipping scoped-capture
   resolution. Systhreads share their domain's DLS, so a daemon service
   thread updating service gauges (uptime, inflight) while the executor
   thread has a scoped capture open would otherwise leak those updates
   into the job's cached metrics delta — and a replayed delta must
   reproduce only what the job itself did. *)
let set_direct g v = g.g_value <- v

let bucket_of v =
  if Float.is_nan v || v <= 1.0 then 0
  else if v >= 0x1p62 (* covers infinity: int_of_float inf is unspecified *) then 63
  else
    let b = int_of_float (Float.ceil (Float.log2 v)) in
    if b < 1 then 1 else if b > 63 then 63 else b

let bucket_upper k = if k >= 63 then Float.infinity else Float.pow 2.0 (float_of_int k)

let observe h v =
  let h = resolve_histogram h in
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count h = (resolve_histogram h).h_count
let hist_sum h = (resolve_histogram h).h_sum
let hist_bucket h k = (resolve_histogram h).h_buckets.(k)

(* ---- per-domain snapshots (the Par.Pool join protocol) ---- *)

type local = {
  l_counters : (string * int) list;
  l_gauges : (string * float) list;
  l_histograms : (string * histogram) list;
}

let flush_registry r =
  let take table f =
    let items = Hashtbl.fold (fun name v acc -> (name, f v) :: acc) table [] in
    Hashtbl.reset table;
    List.sort (fun (a, _) (b, _) -> compare (a : string) b) items
  in
  { l_counters = take r.r_counters (fun c -> c.c_value);
    l_gauges = take r.r_gauges (fun g -> g.g_value);
    l_histograms = take r.r_histograms Fun.id }

let local_flush () = flush_registry (Domain.DLS.get local_registry_key)

let local_is_empty l = l.l_counters = [] && l.l_gauges = [] && l.l_histograms = []

let absorb l =
  List.iter
    (fun (name, v) ->
      let c = counter name in
      c.c_value <- c.c_value + v)
    l.l_counters;
  List.iter
    (fun (name, v) ->
      let g = gauge name in
      g.g_value <- v)
    l.l_gauges;
  List.iter
    (fun (name, h) ->
      let g = histogram name in
      for k = 0 to 63 do
        g.h_buckets.(k) <- g.h_buckets.(k) + h.h_buckets.(k)
      done;
      g.h_count <- g.h_count + h.h_count;
      g.h_sum <- g.h_sum +. h.h_sum;
      if h.h_min < g.h_min then g.h_min <- h.h_min;
      if h.h_max > g.h_max then g.h_max <- h.h_max)
    l.l_histograms

(* Exact-delta capture for the stage cache (Flow.Pipeline): the region's
   updates go to a private registry, which is then merged back through
   [absorb] -- the same merge a cache hit replays later, so a replayed
   delta reproduces the very sequence of additions the region would have
   performed. On an exception the partial delta is still merged (a failed
   stage's kernel counts must match an uncached failing run) but not
   returned. *)
let with_scoped f =
  let r = fresh_registry () in
  let stack = Domain.DLS.get scoped_key in
  Domain.DLS.set scoped_key (r :: stack);
  match f () with
  | v ->
    Domain.DLS.set scoped_key stack;
    let delta = flush_registry r in
    absorb delta;
    (v, delta)
  | exception e ->
    Domain.DLS.set scoped_key stack;
    absorb (flush_registry r);
    raise e

(* ---- global registry views (main domain) ---- *)

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) global.r_counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) global.r_gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_buckets 0 64 0;
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- Float.infinity;
      h.h_max <- Float.neg_infinity)
    global.r_histograms

let sorted_fold table f =
  let items = Hashtbl.fold (fun name v acc -> (name, v) :: acc) table [] in
  List.map (fun (name, v) -> (name, f v)) (List.sort compare items)

let hist_json h =
  let buckets = ref [] in
  for k = 63 downto 0 do
    if h.h_buckets.(k) > 0 then
      buckets :=
        Json.Obj
          [ ("le", Json.Float (bucket_upper k)); ("count", Json.Int h.h_buckets.(k)) ]
        :: !buckets
  done;
  Json.Obj
    ([ ("count", Json.Int h.h_count); ("sum", Json.Float h.h_sum) ]
     @ (if h.h_count > 0 then
          [ ("min", Json.Float h.h_min); ("max", Json.Float h.h_max) ]
        else [])
     @ [ ("buckets", Json.List !buckets) ])

(* Sorted views of the global registry for the Prometheus exposition
   (Obs.Export). Reading [global] directly — rather than [registry ()] —
   keeps live exposition from a daemon service thread consistent even
   while the executor thread has a scoped capture open. *)

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_buckets : (int * int) list;  (* occupied (bucket index, occupancy), ascending *)
}

let export_counters () = sorted_fold global.r_counters (fun c -> c.c_value)
let export_gauges () = sorted_fold global.r_gauges (fun g -> g.g_value)

let export_histograms () =
  sorted_fold global.r_histograms (fun h ->
      let buckets = ref [] in
      for k = 63 downto 0 do
        if h.h_buckets.(k) > 0 then buckets := (k, h.h_buckets.(k)) :: !buckets
      done;
      { hv_count = h.h_count; hv_sum = h.h_sum; hv_buckets = !buckets })

let snapshot () =
  Json.Obj
    [ ("counters", Json.Obj (sorted_fold global.r_counters (fun c -> Json.Int c.c_value)));
      ("gauges", Json.Obj (sorted_fold global.r_gauges (fun g -> Json.Float g.g_value)));
      ("histograms", Json.Obj (sorted_fold global.r_histograms hist_json)) ]

let write_json path = Json.write_file path (snapshot ())

let pp ppf () =
  Format.fprintf ppf "@[<v>";
  Hashtbl.fold (fun name c acc -> (name, c) :: acc) global.r_counters []
  |> List.sort compare
  |> List.iter (fun (name, c) ->
         if c.c_value <> 0 then Format.fprintf ppf "%-32s %d@ " name c.c_value);
  Hashtbl.fold (fun name g acc -> (name, g) :: acc) global.r_gauges []
  |> List.sort compare
  |> List.iter (fun (name, g) ->
         if g.g_value <> 0.0 then Format.fprintf ppf "%-32s %.2f@ " name g.g_value);
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) global.r_histograms []
  |> List.sort compare
  |> List.iter (fun (name, h) ->
         if h.h_count > 0 then
           Format.fprintf ppf "%-32s n=%d sum=%.0f min=%.0f max=%.0f@ " name h.h_count
             h.h_sum h.h_min h.h_max);
  Format.fprintf ppf "@]"
