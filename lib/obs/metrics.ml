type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_buckets : int array;  (* 64 log-2 buckets *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let intern table name make =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.replace table name v;
    v

let counter name = intern counters name (fun () -> { c_name = name; c_value = 0 })
let add c k = c.c_value <- c.c_value + k
let incr c = add c 1
let value c = c.c_value

let gauge name = intern gauges name (fun () -> { g_name = name; g_value = 0.0 })
let set g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram name =
  intern histograms name (fun () ->
      { h_name = name; h_buckets = Array.make 64 0; h_count = 0; h_sum = 0.0;
        h_min = Float.infinity; h_max = Float.neg_infinity })

let bucket_of v =
  if Float.is_nan v || v <= 1.0 then 0
  else if v >= 0x1p62 (* covers infinity: int_of_float inf is unspecified *) then 63
  else
    let b = int_of_float (Float.ceil (Float.log2 v)) in
    if b < 1 then 1 else if b > 63 then 63 else b

let bucket_upper k = if k >= 63 then Float.infinity else Float.pow 2.0 (float_of_int k)

let observe h v =
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_bucket h k = h.h_buckets.(k)

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_buckets 0 64 0;
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- Float.infinity;
      h.h_max <- Float.neg_infinity)
    histograms

let sorted_fold table f =
  let items = Hashtbl.fold (fun name v acc -> (name, v) :: acc) table [] in
  List.map (fun (name, v) -> (name, f v)) (List.sort compare items)

let hist_json h =
  let buckets = ref [] in
  for k = 63 downto 0 do
    if h.h_buckets.(k) > 0 then
      buckets :=
        Json.Obj
          [ ("le", Json.Float (bucket_upper k)); ("count", Json.Int h.h_buckets.(k)) ]
        :: !buckets
  done;
  Json.Obj
    ([ ("count", Json.Int h.h_count); ("sum", Json.Float h.h_sum) ]
     @ (if h.h_count > 0 then
          [ ("min", Json.Float h.h_min); ("max", Json.Float h.h_max) ]
        else [])
     @ [ ("buckets", Json.List !buckets) ])

let snapshot () =
  Json.Obj
    [ ("counters", Json.Obj (sorted_fold counters (fun c -> Json.Int c.c_value)));
      ("gauges", Json.Obj (sorted_fold gauges (fun g -> Json.Float g.g_value)));
      ("histograms", Json.Obj (sorted_fold histograms hist_json)) ]

let write_json path = Json.write_file path (snapshot ())

let pp ppf () =
  Format.fprintf ppf "@[<v>";
  Hashtbl.fold (fun name c acc -> (name, c) :: acc) counters []
  |> List.sort compare
  |> List.iter (fun (name, c) ->
         if c.c_value <> 0 then Format.fprintf ppf "%-32s %d@ " name c.c_value);
  Hashtbl.fold (fun name g acc -> (name, g) :: acc) gauges []
  |> List.sort compare
  |> List.iter (fun (name, g) ->
         if g.g_value <> 0.0 then Format.fprintf ppf "%-32s %.2f@ " name g.g_value);
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) histograms []
  |> List.sort compare
  |> List.iter (fun (name, h) ->
         if h.h_count > 0 then
           Format.fprintf ppf "%-32s n=%d sum=%.0f min=%.0f max=%.0f@ " name h.h_count
             h.h_sum h.h_min h.h_max);
  Format.fprintf ppf "@]"
