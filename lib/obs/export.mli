(** Prometheus text-format exposition of the {!Metrics} registry, plus
    the client-side parser that [tpi_flow top] renders from.

    The exposition reads the {e global} registry (never a scoped
    capture), so a daemon service thread can render it live while the
    executor thread is mid-job. Every counter and gauge becomes one
    sample; every log-2 histogram becomes a cumulative
    [_bucket{le="..."}] series (occupied buckets only, closed by the
    mandatory [+Inf] bucket) plus [_sum] and [_count]. A synthetic
    [tpi_build_info] gauge carries version, OCaml version, host cores
    and word size so snapshots are self-describing.

    Rendering is read-only and touches neither {!Util.Rng} nor any
    kernel state: exposition on or off cannot change table bytes. *)

val version : string
(** Build identity string exported in [tpi_build_info]. *)

val sanitize_name : string -> string
(** Map an internal dotted metric name onto the Prometheus charset
    [[a-zA-Z0-9_:]] ([.] and friends become [_]; a leading digit is
    prefixed with [_]; the empty string becomes ["_"]). *)

val escape_label : string -> string
(** Escape a label value per the exposition format: backslash, double
    quote and newline. *)

val float_str : float -> string
(** Exposition rendering of a sample value ([+Inf]/[-Inf]/[NaN] spelled
    the Prometheus way; integral values without a fraction). *)

val prometheus : unit -> string
(** Render the full exposition document, [# TYPE] comments included,
    metrics in ascending name order. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents] writes via a dot-prefixed temp file in
    the same directory and [Sys.rename] — readers never observe a
    partial snapshot, and a crash mid-write leaves the previous file. *)

val write_prom : string -> unit
(** Atomic {!prometheus} snapshot. *)

val write_metrics_json : string -> unit
(** Atomic equivalent of {!Metrics.write_json} (same bytes, crash-safe
    publication) — the daemon's periodic [--metrics] flush. *)

(** {2 Parsing}

    A deliberately small parser for the exposition format this module
    itself emits (plus labels in any order): enough for [tpi_flow top]
    and the tests to consume live snapshots without a JSON side
    channel. *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

val parse : string -> sample list
(** All samples in document order; comment ([#]) and blank lines are
    skipped, malformed lines dropped. *)

val find : ?labels:(string * string) list -> sample list -> string -> float option
(** First sample with the given name whose labels include every pair in
    [labels]. *)

val buckets_of : sample list -> string -> (float * int) list
(** Cumulative [le]-buckets of histogram [name], ascending by upper
    bound (the [+Inf] bucket parses as [infinity]). *)

val quantile : buckets:(float * int) list -> q:float -> float option
(** Quantile estimate from cumulative buckets: upper bound of the first
    bucket whose cumulative count reaches [q * total]. [None] on empty
    input. Conservative by at most one octave (the histogram's own
    resolution). *)
