type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- emission ---- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no non-finite numbers: clamp infinities, zero NaN *)
let float_str f =
  if Float.is_nan f then "0"
  else if f = Float.infinity then "1.7976931348623157e308"
  else if f = Float.neg_infinity then "-1.7976931348623157e308"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int k -> Buffer.add_string buf (string_of_int k)
    | Float f -> Buffer.add_string buf (float_str f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun k item ->
          if k > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          emit (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun k (key, item) ->
          if k > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          escape buf key;
          Buffer.add_string buf (if pretty then ": " else ":");
          emit (depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Bad of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail ("expected " ^ word)
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let fin = ref false in
    while not !fin do
      if !pos >= n then fail "unterminated string";
      (match s.[!pos] with
       | '"' -> fin := true
       | '\\' ->
         incr pos;
         if !pos >= n then fail "unterminated escape";
         (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
             | Some cp -> add_utf8 buf cp
             | None -> fail "bad \\u escape");
            pos := !pos + 4
          | _ -> fail "unknown escape")
       | c when Char.code c < 0x20 -> fail "raw control character in string"
       | c -> Buffer.add_char buf c);
      incr pos
    done;
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if !pos < n && s.[!pos] = '-' then incr pos;
    let digits () =
      let k = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done;
      if !pos = k then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if !pos < n && s.[!pos] = '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      is_float := true;
      incr pos;
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then incr pos;
      digits ()
    end;
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some k -> Int k
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input";
    match s.[!pos] with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> String (parse_string ())
    | '-' | '0' .. '9' -> parse_number ()
    | '[' ->
      incr pos;
      skip_ws ();
      if !pos < n && s.[!pos] = ']' then begin incr pos; List [] end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while !pos < n && s.[!pos] = ',' do
          incr pos;
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | '{' ->
      incr pos;
      skip_ws ();
      if !pos < n && s.[!pos] = '}' then begin incr pos; Obj [] end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          (key, parse_value ())
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while !pos < n && s.[!pos] = ',' do
          incr pos;
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) -> Error (Printf.sprintf "%s at offset %d" msg at)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~pretty:true v);
      output_char oc '\n')
