(* Always-on crash flight recorder: a fixed-size ring of the most recent
   noteworthy events (log records, stage completions, faults). Recording
   is a few stores under a mutex — cheap enough to leave on everywhere —
   and the ring never grows, so a long-lived daemon pays constant
   memory. The payoff is [dump]: when a stage faults, a job exhausts its
   retries or the daemon dies on a signal, the last N events explain
   what the process was doing, without anyone having had the foresight
   to enable logging. *)

type kind = Log | Span | Fault

type event = {
  ts_us : float;
  kind : kind;
  label : string;
  detail : string;
  job : string option;
  domain : int;
}

let default_capacity = 256

type state = {
  mutable ring : event array;  (* slot i valid iff i < filled *)
  mutable head : int;          (* next write position *)
  mutable filled : int;
  mutable total : int;         (* events ever recorded, survives wraparound *)
  mutable dump_path : string option;
  mutable dumps : int;
}

let dummy =
  { ts_us = 0.0; kind = Log; label = ""; detail = ""; job = None; domain = 0 }

let st =
  { ring = Array.make default_capacity dummy; head = 0; filled = 0; total = 0;
    dump_path = None; dumps = 0 }

let m = Mutex.create ()
let locked f = Mutex.lock m; Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let set_capacity n =
  let n = max 1 n in
  locked (fun () ->
      st.ring <- Array.make n dummy;
      st.head <- 0;
      st.filled <- 0)

let capacity () = locked (fun () -> Array.length st.ring)

let clear () =
  locked (fun () ->
      Array.fill st.ring 0 (Array.length st.ring) dummy;
      st.head <- 0;
      st.filled <- 0;
      st.total <- 0;
      st.dumps <- 0)

let set_dump_path p = locked (fun () -> st.dump_path <- p)
let dumps () = locked (fun () -> st.dumps)
let total () = locked (fun () -> st.total)

let record ?job ~kind ~label ~detail () =
  let ev =
    { ts_us = Clock.now_us (); kind; label; detail; job;
      domain = (Domain.self () :> int) }
  in
  locked (fun () ->
      let cap = Array.length st.ring in
      st.ring.(st.head) <- ev;
      st.head <- (st.head + 1) mod cap;
      if st.filled < cap then st.filled <- st.filled + 1;
      st.total <- st.total + 1)

let log ?job ~label ~detail () = record ?job ~kind:Log ~label ~detail ()
let span ?job ~label ~detail () = record ?job ~kind:Span ~label ~detail ()
let fault ?job ~label ~detail () = record ?job ~kind:Fault ~label ~detail ()

(* oldest first *)
let events () =
  locked (fun () ->
      let cap = Array.length st.ring in
      let start = (st.head - st.filled + cap) mod cap in
      List.init st.filled (fun i -> st.ring.((start + i) mod cap)))

let kind_name = function Log -> "log" | Span -> "span" | Fault -> "fault"

let event_json ev =
  Json.Obj
    ([ ("ts_us", Json.Float ev.ts_us);
       ("kind", Json.String (kind_name ev.kind));
       ("label", Json.String ev.label);
       ("detail", Json.String ev.detail) ]
     @ (match ev.job with Some j -> [ ("job", Json.String j) ] | None -> [])
     @ if ev.domain <> 0 then [ ("domain", Json.Int ev.domain) ] else [])

let snapshot_json ~reason =
  let evs = events () in
  Json.Obj
    [ ("reason", Json.String reason);
      ("captured_us", Json.Float (Clock.now_us ()));
      ("events_total", Json.Int (total ()));
      ("events", Json.List (List.map event_json evs)) ]

let dump ~reason =
  let path = locked (fun () -> st.dump_path) in
  match path with
  | None -> false
  | Some path ->
    let doc = Json.to_string ~pretty:true (snapshot_json ~reason) ^ "\n" in
    (try
       Export.write_atomic path doc;
       locked (fun () -> st.dumps <- st.dumps + 1);
       true
     with Sys_error _ -> false)
