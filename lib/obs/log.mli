(** Structured leveled logging: one JSON object per line, with
    timestamp, level, domain id and optional job/span correlation
    fields — the daemon's replacement for ad-hoc stderr prints.

    Off by default ({!disable}d sink, [Info] threshold): a library user
    who never touches this module pays one mutexed threshold check per
    suppressed call. Records that pass the threshold are {e always} fed
    to the {!Recorder} flight recorder, sink or no sink, so post-mortem
    dumps carry recent log context even when no [--log-file] was given.

    Thread-safety: a single mutex serializes threshold, sink switches
    and record writes, so records from different systhreads interleave
    at line granularity. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_string : string -> level option
(** Case-insensitive; accepts ["warning"] for [Warn]. *)

val set_level : level -> unit
(** Minimum level that is recorded (default [Info]). *)

val level : unit -> level
val enabled : level -> bool

(** {2 Sinks} *)

val to_file : string -> unit
(** Append JSONL records to [path] (created [0o644] if missing); any
    previous file sink is closed. *)

val to_stderr : unit -> unit
val disable : unit -> unit
(** Close and drop the sink (the default state). Recording into the
    flight recorder continues regardless. *)

val emitted_count : unit -> int
(** Records written to a sink since start. *)

(** {2 Emission}

    [fields] appends extra key/value pairs to the record. The [span]
    correlation field is filled automatically from
    {!Trace.current_id} when a span is open on the calling context. *)

val debug : ?job:string -> ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a
val info : ?job:string -> ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a
val warn : ?job:string -> ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a
val error : ?job:string -> ?fields:(string * Json.t) list -> ('a, unit, string, unit) format4 -> 'a
