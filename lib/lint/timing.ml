module Design = Netlist.Design
module Cell = Stdcell.Cell
module Pin = Stdcell.Pin

type t = {
  arrival : float array;
  departure : float array;
  path : float array;
  crit : float;
  loop_insts : int list;
  min_period : float;
}

let nominal_slew = 50.0 (* ps, matches Sta.Analysis.default_config input slew *)

let app_arcs (cell : Cell.t) =
  List.filter (fun (a : Cell.arc) -> not a.Cell.test_only) (Array.to_list cell.Cell.arcs)

(* a propagation gate is any instance with an application-mode arc whose
   from-pin is not its clock: combinational cells, clock buffers and the
   transparent TSFF. Dff/Sdff only launch (their lone app arc is CK->Q)
   and tie/filler cells have no arcs at all. *)
let prop_arcs (i : Design.instance) =
  let ck = Cell.clock_pin i.Design.cell in
  List.filter (fun (a : Cell.arc) -> Some a.Cell.from_pin <> ck) (app_arcs i.Design.cell)

let is_prop i = prop_arcs i <> []

let launch_arc (i : Design.instance) =
  match Cell.clock_pin i.Design.cell with
  | None -> None
  | Some ck -> List.find_opt (fun (a : Cell.arc) -> a.Cell.from_pin = ck) (app_arcs i.Design.cell)

let estimate (d : Design.t) =
  let nn = Design.num_nets d and ni = Design.num_insts d in
  let arrival = Array.make nn Float.nan in
  let slew = Array.make nn nominal_slew in
  let load = Array.make nn 0.0 in
  Design.iter_nets d (fun n ->
      load.(n.Design.nid) <-
        List.fold_left
          (fun acc (si, sp) ->
            let c = Design.inst d si in
            if sp < Array.length c.Design.cell.Cell.pins then
              acc +. c.Design.cell.Cell.pins.(sp).Pin.cap
            else acc)
          0.0 n.Design.sinks);
  (* sources: input ports at 0, tie outputs at 0, Dff/Sdff Q at clk->q *)
  List.iter
    (fun (p : Design.port) -> if p.Design.pnet >= 0 then arrival.(p.Design.pnet) <- 0.0)
    (Design.input_ports d);
  Design.iter_insts d (fun i ->
      let out = Design.net_of_output d i in
      if out >= 0 then begin
        match i.Design.cell.Cell.kind with
        | Cell.Tiehi | Cell.Tielo -> arrival.(out) <- 0.0
        | (Cell.Dff | Cell.Sdff) -> (
          match launch_arc i with
          | Some a ->
            arrival.(out) <- Stdcell.Lut.value a.Cell.delay ~slew:nominal_slew ~load:load.(out);
            slew.(out) <- Stdcell.Lut.value a.Cell.out_slew ~slew:nominal_slew ~load:load.(out)
          | None -> arrival.(out) <- 0.0)
        | _ -> ()
      end);
  (* Kahn over propagation gates: a gate fires once every net feeding one
     of its propagation from-pins is final. A net is pending only while
     its driver is an unfired propagation gate. *)
  let pending = Array.make ni 0 in
  let queue = Queue.create () in
  let prop_count = ref 0 in
  let net_pending nid =
    nid >= 0
    &&
    match (Design.net d nid).Design.driver with
    | Design.Cell_pin (src, _) -> is_prop (Design.inst d src)
    | _ -> false
  in
  Design.iter_insts d (fun i ->
      let arcs = prop_arcs i in
      if arcs <> [] then begin
        incr prop_count;
        let count =
          List.length
            (List.sort_uniq Int.compare
               (List.filter_map
                  (fun (a : Cell.arc) ->
                    let nid = i.Design.conns.(a.Cell.from_pin) in
                    if net_pending nid then Some nid else None)
                  arcs))
        in
        pending.(i.Design.id) <- count;
        if count = 0 then Queue.add i.Design.id queue
      end);
  let order = ref [] in
  let fired = Array.make ni false in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let iid = Queue.pop queue in
    if not fired.(iid) then begin
      fired.(iid) <- true;
      incr emitted;
      order := iid :: !order;
      let i = Design.inst d iid in
      List.iter
        (fun (a : Cell.arc) ->
          let fnet = i.Design.conns.(a.Cell.from_pin)
          and onet = i.Design.conns.(a.Cell.to_pin) in
          if onet >= 0 then begin
            let in_arr, in_slew =
              if fnet >= 0 && not (Float.is_nan arrival.(fnet)) then
                (arrival.(fnet), slew.(fnet))
              else (0.0, nominal_slew)
            in
            let dly = Stdcell.Lut.value a.Cell.delay ~slew:in_slew ~load:load.(onet) in
            let cand = in_arr +. dly in
            if Float.is_nan arrival.(onet) || cand > arrival.(onet) then begin
              arrival.(onet) <- cand;
              slew.(onet) <-
                Stdcell.Lut.value a.Cell.out_slew ~slew:in_slew ~load:load.(onet)
            end
          end)
        (prop_arcs i);
      let out = Design.net_of_output d i in
      if out >= 0 then
        (* one decrement per sink gate, even when the net feeds it on
           several pins: pending counted distinct nets *)
        List.iter
          (fun sink ->
            if (not fired.(sink)) && pending.(sink) > 0 then begin
              pending.(sink) <- pending.(sink) - 1;
              if pending.(sink) = 0 then Queue.add sink queue
            end)
          (List.sort_uniq Int.compare (List.map fst (Design.net d out).Design.sinks))
    end
  done;
  let loop_insts = ref [] in
  if !emitted <> !prop_count then
    Design.iter_insts d (fun i ->
        if is_prop i && not fired.(i.Design.id) then
          loop_insts := i.Design.id :: !loop_insts);
  let loop_insts = List.rev !loop_insts in
  (* backward pass, reverse topological order: departure of a net is the
     worst remaining delay to an endpoint (setup at a capturing FF data
     pin, 0 at an output port) *)
  let departure = Array.make nn Float.nan in
  Design.iter_nets d (fun n ->
      let nid = n.Design.nid in
      if n.Design.out_port >= 0 then departure.(nid) <- 0.0;
      List.iter
        (fun (si, sp) ->
          let i = Design.inst d si in
          if i.Design.cell.Cell.sequential && Cell.data_pin i.Design.cell = Some sp then
            let s = i.Design.cell.Cell.setup in
            if Float.is_nan departure.(nid) || s > departure.(nid) then
              departure.(nid) <- s)
        n.Design.sinks);
  List.iter
    (fun iid ->
      let i = Design.inst d iid in
      List.iter
        (fun (a : Cell.arc) ->
          let fnet = i.Design.conns.(a.Cell.from_pin)
          and onet = i.Design.conns.(a.Cell.to_pin) in
          if fnet >= 0 && onet >= 0 && not (Float.is_nan departure.(onet)) then begin
            let in_slew = if fnet >= 0 then slew.(fnet) else nominal_slew in
            let dly = Stdcell.Lut.value a.Cell.delay ~slew:in_slew ~load:load.(onet) in
            let cand = dly +. departure.(onet) in
            if Float.is_nan departure.(fnet) || cand > departure.(fnet) then
              departure.(fnet) <- cand
          end)
        (prop_arcs i))
    !order;
  let path = Array.make nn Float.nan in
  let crit = ref 0.0 in
  for nid = 0 to nn - 1 do
    if not (Float.is_nan arrival.(nid) || Float.is_nan departure.(nid)) then begin
      path.(nid) <- arrival.(nid) +. departure.(nid);
      if path.(nid) > !crit then crit := path.(nid)
    end
  done;
  let min_period =
    Array.fold_left
      (fun acc (dom : Design.domain) -> Float.min acc dom.Design.period_ps)
      Float.infinity d.Design.domains
  in
  { arrival; departure; path; crit = !crit; loop_insts; min_period }

let near_critical t ~net ~margin_frac =
  net >= 0
  && net < Array.length t.path
  && (not (Float.is_nan t.path.(net)))
  && t.crit > 0.0
  && t.path.(net) >= t.crit *. (1.0 -. margin_frac)
