(** The structural rule pack: netlist-graph sanity independent of any
    stage artifact. Rule ids (stable, DESIGN.md §6.5):

    - [struct.comb-loop] (error) — application-mode combinational loop;
    - [struct.multi-driver] (error) — net driven by more than one pin;
    - [struct.undriven-net] (error) — net with loads but no driver;
    - [struct.floating-input] (error) — unconnected input pin;
    - [struct.unbound-port] (error) — port never bound to a net;
    - [struct.unloaded-output] (warn) — gate output driving nothing;
    - [struct.dangling-ff] (warn) — flip-flop output driving nothing;
    - [struct.arity-mismatch] (error) — connection/pin count or library
      disagreement. *)

val pack_name : string
val rules : Rule.t list
