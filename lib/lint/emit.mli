(** Report rendering: human text, machine JSON, and SARIF 2.1.0.

    All three emitters are pure functions of a {!Engine.report} plus the
    design (needed to resolve location anchors into names). The JSON and
    SARIF forms carry the waiver fingerprints so external dashboards can
    track a finding across renames; SARIF additionally renders waived
    findings as suppressed results, which is how code-scanning UIs
    expect baselines to arrive. *)

val summary : Engine.report -> string
(** One line: ["lint: 2 errors, 1 warning (3 waived, 1 stale waiver) in 4.2 ms"]. *)

val text : Netlist.Design.t -> Engine.report -> string
(** One diagnostic per line in report order, then stale-waiver notes,
    then the summary line. Empty-report output is just the summary. *)

val json : Netlist.Design.t -> Engine.report -> Obs.Json.t
(** Stable machine shape: [{version; summary; diagnostics; waived;
    stale_waivers; rules}] — see DESIGN.md §6.5. *)

val sarif : Netlist.Design.t -> Engine.report -> Obs.Json.t
(** SARIF 2.1.0 with one run, rule metadata for every registered rule,
    logical locations, [partialFingerprints.tpiLint/v1] and
    [suppressions] on waived results. *)
