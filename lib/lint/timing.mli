(** Zero-wireload timing estimate for pre-layout lint rules.

    A cheap stand-in for {!Sta.Analysis} that needs no placement or
    extraction: worst arrivals are propagated over the application-mode
    cell arcs (NLDM lookups at the net's lumped pin load, test-only arcs
    blocked, TSFFs combinationally transparent exactly as in real STA)
    with zero wire delay and zero clock latency. A matching backward pass
    yields, for every net, the longest path {e through} it — the quantity
    the paper's §5 critical-path exclusion needs before any layout
    exists.

    The estimator is total: a combinational loop does not raise — the
    gates stuck on it are reported in [loop_insts] and the nets they feed
    keep unknown ([nan]) arrivals, so lint can report the loop {e and}
    still time the rest of the design. *)

type t = {
  arrival : float array;
      (** worst arrival per net, ps; [nan] when unknown (loop cone) *)
  departure : float array;
      (** worst downstream delay from the net to any endpoint (setup
          included at capturing flip-flops); [nan] when unknown *)
  path : float array;
      (** [arrival + departure]: the longest path through the net *)
  crit : float;   (** max finite [path]; 0 for a design with no paths *)
  loop_insts : int list;
      (** propagation gates never resolved by the topological pass — the
          members (and downstream cone heads) of application-mode
          combinational loops, in instance-id order *)
  min_period : float;
      (** smallest declared domain period, [infinity] if none *)
}

val estimate : Netlist.Design.t -> t

val near_critical : t -> net:int -> margin_frac:float -> bool
(** The longest path through [net] is within [margin_frac] (e.g. 0.05)
    of the design's critical path. False for unknown nets. *)
