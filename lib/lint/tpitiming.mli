(** The TPI/timing rule pack — the paper's findings as lint rules: test
    point insertion silently degrades T_cp and wastes area unless the
    sites are screened first. Rule ids (stable, DESIGN.md §6.5):

    - [tpi.critical-path] — a test point sits on a critical or
      near-critical path (§5: "this approach requires timing analysis
      for identifying all paths with slack below a certain threshold").
      Uses the caller's {!Sta.Slack}-derived critical-net artifact when
      present, the {!Timing} zero-wireload estimate otherwise. A TP
      whose path exceeds its domain's clock period is an error; one
      within 5 % of the design's critical path is a warning.
    - [tpi.density] (warn) — test point count outside the paper's 1–3 %
      envelope (§4: beyond ~3 % the area and timing cost outgrows the
      coverage gain), or several TPs piled into one fanout-free region
      (one observation point at the FFR head already covers it).
    - [tpi.low-observability] (warn) — a TP site that cannot pay for its
      area: the injected value is COP-unobservable downstream, or the
      tapped net was already directly observed. *)

val pack_name : string

val near_critical_margin : float
(** Fraction of the critical path treated as "near" (0.05). *)

val density_envelope_pct : float
(** Upper edge of the paper's TP density envelope (3.0). *)

val min_observability : float
(** COP observability below which an injected value is considered lost
    (0.02). *)

val rules : Rule.t list
