module Design = Netlist.Design
module Cell = Stdcell.Cell
module Cmodel = Netlist.Cmodel

let pack_name = "clock-scan"

let rule id title severity checkgen : Rule.t =
  let rec r =
    { Rule.id; pack = pack_name; title; severity; check = (fun ctx -> checkgen r ctx) }
  in
  r

let facts (ctx : Rule.ctx) = Lazy.force ctx.Rule.facts

let ff_no_domain =
  rule "clock.ff-no-domain" "sequential cell without a clock domain" Diag.Error
    (fun r ctx ->
      List.map
        (fun iid ->
          Rule.diag r ~loc:(Diag.Inst iid)
            ~hint:"assign the flip-flop to a declared domain"
            "sequential cell has no valid clock domain")
        (facts ctx).Structfacts.ffs_without_domain)

let ff_clock_mismatch =
  rule "clock.ff-clock-mismatch" "flip-flop clock pin off its domain's clock net"
    Diag.Error
    (fun r ctx ->
      let d = ctx.Rule.design in
      List.map
        (fun iid ->
          let i = Design.inst d iid in
          let dom = d.Design.domains.(i.Design.domain) in
          Rule.diag r ~loc:(Diag.Inst iid)
            ~hint:"reconnect the clock pin to the domain's clock net"
            (Printf.sprintf "clock pin is not on domain %s's clock net (n%d)"
               dom.Design.dom_name dom.Design.clock_net))
        (facts ctx).Structfacts.ff_clock_mismatches)

(* capture-side CDC sweep: walk each capture flip-flop's data cone back
   through modelled gates; a source flip-flop in another domain reached
   through at least one combinational gate has no synchronizer in front
   of the crossing (a direct FF->FF hop is treated as the first stage of
   one and stays quiet) *)
let cdc_unsynced =
  rule "clock.cdc-unsynced" "unsynchronized clock-domain crossing" Diag.Warn
    (fun r ctx ->
      let d = ctx.Rule.design in
      if Array.length d.Design.domains < 2 then []
      else
        match Lazy.force ctx.Rule.cmodel with
        | None -> []
        | Some m ->
          let source_ff_of_net = Hashtbl.create 64 in
          Array.iter
            (fun (nid, src) ->
              match src with
              | Cmodel.From_ff ff -> Hashtbl.replace source_ff_of_net nid ff
              | Cmodel.From_port _ -> ())
            m.Cmodel.sources;
          let diags = ref [] in
          Design.iter_insts d (fun i ->
              if Cell.is_ff i.Design.cell && i.Design.domain >= 0 then
                match Cell.data_pin i.Design.cell with
                | None -> ()
                | Some dp ->
                  let dnet = i.Design.conns.(dp) in
                  if dnet >= 0 && dnet < m.Cmodel.num_nets then begin
                    (* BFS back through gates, counting traversed logic *)
                    let seen = Hashtbl.create 32 in
                    let queue = Queue.create () in
                    Queue.add (dnet, 0) queue;
                    Hashtbl.replace seen dnet ();
                    let crossing = ref None in
                    while !crossing = None && not (Queue.is_empty queue) do
                      let n, gates = Queue.pop queue in
                      (match Hashtbl.find_opt source_ff_of_net n with
                       | Some src_ff when gates > 0 ->
                         let src = Design.inst d src_ff in
                         if src.Design.domain >= 0 && src.Design.domain <> i.Design.domain
                         then crossing := Some (src_ff, n)
                       | _ -> ());
                      if !crossing = None && n < Array.length m.Cmodel.driver_gate then begin
                        let g = m.Cmodel.driver_gate.(n) in
                        if g >= 0 then
                          Array.iter
                            (fun inp ->
                              if inp >= 0 && not (Hashtbl.mem seen inp) then begin
                                Hashtbl.replace seen inp ();
                                Queue.add (inp, gates + 1) queue
                              end)
                            m.Cmodel.gates.(g).Cmodel.g_ins
                      end
                    done;
                    match !crossing with
                    | Some (src_ff, _) ->
                      let src = Design.inst d src_ff in
                      diags :=
                        Rule.diag r ~loc:(Diag.Inst i.Design.id)
                          ~hint:"double-flop the crossing or move the logic into one domain"
                          (Printf.sprintf
                             "captures domain-%d data from %s (domain %d) through \
                              combinational logic"
                             i.Design.domain src.Design.iname src.Design.domain)
                        :: !diags
                    | None -> ()
                  end);
          List.rev !diags)

let tp_domain =
  rule "clock.tp-domain" "test point clocked in the wrong domain" Diag.Error
    (fun r ctx ->
      let d = ctx.Rule.design in
      if Array.length d.Design.domains = 0 then []
      else
        List.filter_map
          (fun iid ->
            let i = Design.inst d iid in
            let tap = i.Design.conns.(0) in
            if tap < 0 then None
            else
              let expect = Tpi.Clocking.domain_for d ~net:tap in
              if i.Design.domain <> expect then
                Some
                  (Rule.diag r ~loc:(Diag.Inst iid)
                     ~hint:"reclock the TSFF into its neighbourhood's domain"
                     (Printf.sprintf
                        "TSFF is in domain %d but its tapped net belongs to domain %d"
                        i.Design.domain expect))
              else None)
          (facts ctx).Structfacts.tsffs)

let ti_pin = 1 (* TI on both SDFF and TSFF *)

let chain_stitch =
  rule "scan.chain-stitch" "broken scan stitching" Diag.Error
    (fun r ctx ->
      let d = ctx.Rule.design in
      match ctx.Rule.arts.Rule.chains with
      | Some chains ->
        (match Scan.Chains.verify d chains with
         | None -> []
         | Some msg ->
           [ Rule.diag r ~loc:(Diag.Stage "scan-chains")
               ~hint:"restitch the chains from the current plan" msg ])
      | None ->
        (* no plan to check against: the TI of every scan cell must still
           ride a plausible shift source *)
        let diags = ref [] in
        Design.iter_insts d (fun i ->
            match i.Design.cell.Cell.kind with
            | Cell.Sdff | Cell.Tsff ->
              let bad detail =
                diags :=
                  Rule.diag r ~loc:(Diag.Inst i.Design.id)
                    ~hint:"stitch TI to the previous scan cell's Q or a scan-in port"
                    detail
                  :: !diags
              in
              let ti = i.Design.conns.(ti_pin) in
              if ti < 0 then bad "scan TI pin is unconnected"
              else begin
                match (Design.net d ti).Design.driver with
                | Design.No_driver -> bad "scan TI rides an undriven net"
                | Design.Port_in _ -> ()
                | Design.Cell_pin (src, _) ->
                  let s = Design.inst d src in
                  (match s.Design.cell.Cell.kind with
                   | Cell.Sdff | Cell.Tsff | Cell.Tiehi | Cell.Tielo -> ()
                   | k ->
                     bad
                       (Printf.sprintf "scan TI is driven by combinational %s"
                          (Cell.kind_name k)))
              end
            | _ -> ());
        List.rev !diags)

let lockup_crossing =
  rule "scan.lockup-crossing" "chain crosses domains without a lockup element"
    Diag.Warn
    (fun r ctx ->
      match ctx.Rule.arts.Rule.chains with
      | None -> []
      | Some chains ->
        let d = ctx.Rule.design in
        let diags = ref [] in
        Array.iteri
          (fun k chain ->
            Array.iteri
              (fun j iid ->
                if j > 0 then begin
                  let prev = Design.inst d chain.(j - 1) and cur = Design.inst d iid in
                  if
                    prev.Design.domain >= 0 && cur.Design.domain >= 0
                    && prev.Design.domain <> cur.Design.domain
                  then
                    diags :=
                      Rule.diag r
                        ~loc:(Diag.Stage (Printf.sprintf "scan-chain-%d[%d]" k j))
                        ~hint:"insert a lockup latch at the domain boundary"
                        (Printf.sprintf
                           "%s (domain %d) shifts into %s (domain %d) with no lockup"
                           prev.Design.iname prev.Design.domain cur.Design.iname
                           cur.Design.domain)
                      :: !diags
                end)
              chain)
          chains.Scan.Chains.chains;
        List.rev !diags)

let rules =
  [ ff_no_domain; ff_clock_mismatch; cdc_unsynced; tp_domain; chain_stitch;
    lockup_crossing ]
