(** The clock/scan rule pack: clock-domain discipline and scan-chain
    integrity. Rule ids (stable, DESIGN.md §6.5):

    - [clock.ff-no-domain] (error) — sequential cell without a clock
      domain;
    - [clock.ff-clock-mismatch] (error) — flip-flop clock pin not on its
      domain's declared clock net;
    - [clock.cdc-unsynced] (warn) — a capture flip-flop's data cone
      crosses clock domains through combinational logic (no
      synchronizer);
    - [clock.tp-domain] (error) — inserted test point clocked in a
      different domain than {!Tpi.Clocking} assigns its tapped net;
    - [scan.chain-stitch] (error) — scan stitching broken: against the
      planned chains when the caller provides them, structurally (every
      TI must ride a scan Q, scan-in port or tie) otherwise;
    - [scan.lockup-crossing] (warn) — adjacent chain cells in different
      domains with no lockup element between them (needs the chains
      artifact). *)

val pack_name : string
val rules : Rule.t list
