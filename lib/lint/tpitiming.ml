module Design = Netlist.Design
module Cell = Stdcell.Cell

let pack_name = "tpi-timing"

let near_critical_margin = 0.05
let density_envelope_pct = 3.0
let min_observability = 0.02

let rule id title severity checkgen : Rule.t =
  let rec r =
    { Rule.id; pack = pack_name; title; severity; check = (fun ctx -> checkgen r ctx) }
  in
  r

let facts (ctx : Rule.ctx) = Lazy.force ctx.Rule.facts

let tap_net (d : Design.t) iid = (Design.inst d iid).Design.conns.(0)

let q_net (d : Design.t) iid = Design.net_of_output d (Design.inst d iid)

let critical_path =
  rule "tpi.critical-path" "test point on a (near-)critical path" Diag.Error
    (fun r ctx ->
      let d = ctx.Rule.design in
      let tsffs = (facts ctx).Structfacts.tsffs in
      if tsffs = [] then []
      else
        match ctx.Rule.arts.Rule.crit_nets with
        | Some crit ->
          (* post-layout truth from STA: nets within the slack margin *)
          let critical = Hashtbl.create 64 in
          List.iter (fun n -> Hashtbl.replace critical n ()) crit;
          List.filter_map
            (fun iid ->
              let tap = tap_net d iid in
              if tap >= 0 && Hashtbl.mem critical tap then
                Some
                  (Rule.diag r ~loc:(Diag.Inst iid)
                     ~hint:"block this net in Tpi.Select.config.blocked_nets"
                     "test point taps a net on an STA-critical path")
              else None)
            tsffs
        | None ->
          (* pre-layout estimate: longest path through the tapped net *)
          let t = Lazy.force ctx.Rule.timing in
          List.filter_map
            (fun iid ->
              let tap = tap_net d iid in
              if tap < 0 || tap >= Array.length t.Timing.path then None
              else
                let path = t.Timing.path.(tap) in
                if Float.is_nan path then None
                else if path > t.Timing.min_period then
                  Some
                    (Rule.diag r ~loc:(Diag.Inst iid)
                       ~hint:"block this net in Tpi.Select.config.blocked_nets"
                       (Printf.sprintf
                          "test point pushes a %.0f ps path past the %.0f ps period"
                          path t.Timing.min_period))
                else if Timing.near_critical t ~net:tap ~margin_frac:near_critical_margin
                then
                  Some
                    (Rule.diag_at r ~severity:Diag.Warn ~loc:(Diag.Inst iid)
                       ~hint:"block this net in Tpi.Select.config.blocked_nets"
                       (Printf.sprintf
                          "test point on a near-critical path (%.0f ps of %.0f ps worst)"
                          path t.Timing.crit))
                else None)
            tsffs)

let density =
  rule "tpi.density" "test point density outside the paper's envelope" Diag.Warn
    (fun r ctx ->
      let d = ctx.Rule.design in
      let f = facts ctx in
      let tsffs = f.Structfacts.tsffs in
      let plain_ffs = f.Structfacts.ff_count - List.length tsffs in
      let global =
        if tsffs = [] || plain_ffs <= 0 then []
        else
          let pct = 100.0 *. float_of_int (List.length tsffs) /. float_of_int plain_ffs in
          if pct > density_envelope_pct then
            [ Rule.diag r ~loc:Diag.Design
                ~hint:"stay within the 1-3% envelope; extra points cost area for little coverage"
                (Printf.sprintf "%d test points on %d flip-flops = %.1f%% (envelope %.0f%%)"
                   (List.length tsffs) plain_ffs pct density_envelope_pct) ]
          else []
      in
      let regional =
        match Lazy.force ctx.Rule.regions with
        | None -> []
        | Some regions ->
          let per_head = Hashtbl.create 16 in
          List.iter
            (fun iid ->
              let tap = tap_net d iid in
              if tap >= 0 && tap < Array.length regions.Testability.Regions.head_of_net
              then begin
                let head = regions.Testability.Regions.head_of_net.(tap) in
                if head >= 0 then
                  Hashtbl.replace per_head head
                    (iid :: Option.value ~default:[] (Hashtbl.find_opt per_head head))
              end)
            tsffs;
          Hashtbl.fold
            (fun head tps acc ->
              if List.length tps > 1 then
                Rule.diag r ~loc:(Diag.Net head)
                  ~hint:"one observation point at the FFR head covers the whole region"
                  (Printf.sprintf
                     "%d test points inside one fanout-free region of %d gate(s)"
                     (List.length tps)
                     (Testability.Regions.size regions head))
                :: acc
              else acc)
            per_head []
          |> List.sort Diag.compare
      in
      global @ regional)

let low_observability =
  rule "tpi.low-observability" "test point site wastes area for no coverage" Diag.Warn
    (fun r ctx ->
      let d = ctx.Rule.design in
      let tsffs = (facts ctx).Structfacts.tsffs in
      if tsffs = [] then []
      else
        let cop = Lazy.force ctx.Rule.cop in
        List.concat_map
          (fun iid ->
            let control =
              match cop with
              | None -> []
              | Some cop ->
                let q = q_net d iid in
                if q >= 0 && q < Array.length cop.Testability.Cop.o
                   && cop.Testability.Cop.o.(q) < min_observability
                then
                  [ Rule.diag r ~loc:(Diag.Inst iid)
                      ~hint:"move the point where its injected values can reach an observable site"
                      (Printf.sprintf
                         "injected values are unobservable downstream (COP o = %.4f)"
                         cop.Testability.Cop.o.(q)) ]
                else []
            in
            let redundant =
              let tap = tap_net d iid in
              if tap < 0 then []
              else
                let n = Design.net d tap in
                let directly_observed =
                  n.Design.out_port >= 0
                  || List.exists
                       (fun (si, sp) ->
                         si <> iid
                         &&
                         let s = Design.inst d si in
                         s.Design.cell.Cell.sequential
                         && Cell.data_pin s.Design.cell = Some sp)
                       n.Design.sinks
                in
                if directly_observed then
                  [ Rule.diag r ~loc:(Diag.Inst iid)
                      ~hint:"drop the point; the tapped net is already captured every cycle"
                      "tapped net is already directly observed at a port or flip-flop" ]
                else []
            in
            control @ redundant)
          tsffs)

let rules = [ critical_path; density; low_observability ]
