(** Lint rules: pure functions from a shared analysis context to
    diagnostics.

    Rules never mutate the design (DESIGN.md §6.5: [Lint.Engine] asserts
    this with a fingerprint check in tests) and never raise — a rule that
    does is caught by the engine and reported as an [engine.rule-crash]
    diagnostic. Expensive shared analyses (capture-mode model, COP
    probabilities, fanout-free regions, the zero-wireload timing
    estimate) are computed lazily and at most once per engine run, so a
    pack's rules share one traversal instead of re-deriving the world. *)

(** Optional stage artifacts a caller may already have. Rules degrade
    gracefully without them: scan-chain rules fall back to structural
    stitching checks, the critical-path rule falls back to the
    {!Timing} estimate when no real {!Sta.Slack} report exists yet. *)
type artifacts = {
  chains : Scan.Chains.t option;   (** planned scan chains *)
  slack : Sta.Slack.t option;      (** post-layout slack report *)
  crit_nets : int list option;     (** nets on near-critical paths (STA) *)
}

val no_artifacts : artifacts

type ctx = {
  design : Netlist.Design.t;
  arts : artifacts;
  cmodel : Netlist.Cmodel.t option lazy_t;
      (** capture-mode combinational view; [None] if the design cannot
          be modelled (e.g. a combinational loop) *)
  cop : Testability.Cop.t option lazy_t;
  regions : Testability.Regions.t option lazy_t;
  timing : Timing.t lazy_t;  (** total: loops reported, never raised *)
  facts : Structfacts.t lazy_t;
      (** the one-pass structural fact sweep shared by the whole
          structural pack *)
}

val make_ctx : ?arts:artifacts -> Netlist.Design.t -> ctx

type t = {
  id : string;           (** stable, kebab-case, pack-prefixed *)
  pack : string;         (** ["structural"], ["clock-scan"], ["tpi-timing"] *)
  title : string;        (** one-line description (SARIF shortDescription) *)
  severity : Diag.severity;  (** default severity of this rule's findings *)
  check : ctx -> Diag.t list;
}

val diag : t -> loc:Diag.location -> ?hint:string -> string -> Diag.t
(** A diagnostic carrying the rule's id and default severity. *)

val diag_at : t -> severity:Diag.severity -> loc:Diag.location -> ?hint:string -> string -> Diag.t
(** Same, overriding the severity (e.g. a warn-rule finding so extreme
    it is promoted to error). *)
