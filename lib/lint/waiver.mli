(** Content-addressed diagnostic waivers.

    A waiver suppresses one known diagnostic without silencing its rule.
    Each entry carries a fingerprint computed from the diagnostic's
    {e structure} — rule id, severity, and a signature of the anchored
    object built from cell kinds, pin indices and port directions, never
    from instance/net/port names — so a waiver keeps matching after the
    design is renamed. Structurally identical diagnostics (two floating
    pins on twin gates) are told apart by a deterministic occurrence
    index appended to the hash ([<hex>#<k>], in engine emission order).

    File format (JSON, one object):
    {v
    { "version": 1,
      "waivers": [
        { "fingerprint": "3f2a...#0",
          "rule": "struct.floating-input",
          "reason": "tie cell arrives in the next ECO" } ] }
    v} *)

type entry = {
  fingerprint : string;  (** occurrence-qualified hash, [<hex>#<k>] *)
  rule : string;         (** advisory; shown when a waiver goes stale *)
  reason : string;
}

type t = { entries : entry list }

val empty : t

val signature : Netlist.Design.t -> Diag.t -> string
(** Pre-hash structural signature (exposed for tests: rename stability
    is a property of this string). *)

val fingerprints : Netlist.Design.t -> Diag.t list -> (Diag.t * string) list
(** Occurrence-qualified fingerprint for every diagnostic, preserving
    list order. *)

val load : string -> (t, string) result
(** Parse a waiver file; [Error] describes the first problem. *)

val save : string -> t -> unit

val of_diags : Netlist.Design.t -> Diag.t list -> reason:string -> t
(** Baseline: waive everything currently reported. *)

val apply :
  t ->
  Netlist.Design.t ->
  Diag.t list ->
  (Diag.t * string) list * (Diag.t * string) list * entry list
(** [apply w d diags] is [(active, waived, stale)]: diagnostics no
    waiver matched, diagnostics suppressed, and entries that matched
    nothing (candidates for deletion). Both diagnostic lists carry
    their occurrence-qualified fingerprints and keep emission order. *)
