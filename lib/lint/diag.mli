(** Typed lint diagnostics.

    Every finding of the static-analysis engine is one [t]: a stable rule
    id, a severity, a location anchored in the design (net, instance,
    port, a stage artifact, or the design as a whole), a human message and
    an optional fix hint. Diagnostics are plain immutable data — rendering
    (text/JSON/SARIF) lives in {!Emit}, waiver fingerprints in {!Waiver}.

    Rule ids are part of the tool's public contract (DESIGN.md §6.5):
    they are kebab-case, namespaced by pack ([struct.], [clock.],
    [scan.], [tpi.]) and never reused for a different check. *)

type severity =
  | Error  (** the flow would mis-build or crash on this design *)
  | Warn   (** legal but suspicious; costs area, coverage or timing *)
  | Info   (** advisory *)

val severity_name : severity -> string
(** ["error"], ["warn"], ["info"]. *)

val severity_rank : severity -> int
(** [Error] = 0 (most severe) — sort key. *)

type location =
  | Net of int     (** net id *)
  | Inst of int    (** instance id *)
  | Port of int    (** port id *)
  | Stage of string
      (** anchored in a stage artifact (e.g. a scan chain), not the
          netlist graph; the string names the artifact element *)
  | Design         (** whole-design finding *)

type t = {
  rule : string;        (** stable rule id, e.g. ["struct.comb-loop"] *)
  severity : severity;
  loc : location;
  message : string;
  hint : string option; (** how to fix it, when the rule knows *)
}

val make : rule:string -> severity:severity -> loc:location -> ?hint:string -> string -> t

val loc_string : Netlist.Design.t -> location -> string
(** Human anchor: ["net n42 (scan_en)"], ["inst i7 (u_core/g12)"], ... *)

val compare : t -> t -> int
(** Severity first (errors lead), then rule id, then location, then
    message — the deterministic report order. *)

val pp : Netlist.Design.t -> Format.formatter -> t -> unit
(** One-line rendering: [severity rule loc: message (hint)]. *)
