(** Lint driver: run rule packs over one design in a single
    shared-traversal pass, apply waivers, and summarize.

    All rules drawing on the same derived views ({!Structfacts},
    {!Timing}, {!Netlist.Cmodel}, {!Testability.Cop}) share one lazily
    forced instance through {!Rule.ctx}, so the cost of a run is one
    sweep per view plus the per-rule deltas. Every rule body runs under
    an {!Obs.Trace} span named [lint.<rule-id>] and feeds the
    [lint.rules_run] / [lint.diags] counters in {!Obs.Metrics}.

    A rule that raises does not abort the run: the escape is converted
    into an error-severity diagnostic for that rule anchored at
    [Stage "lint"], so a crashing check reads as a finding, never as a
    silent pass. *)

type stat = {
  rule_id : string;
  pack : string;
  count : int;  (** diagnostics emitted (pre-waiver) *)
  ms : float;   (** wall-clock spent in the rule body *)
}

type report = {
  diags : (Diag.t * string) list;
      (** active diagnostics with occurrence-qualified fingerprints,
          sorted by {!Diag.compare} *)
  waived : (Diag.t * string) list;  (** suppressed, emission order *)
  stale : Waiver.entry list;        (** waivers that matched nothing *)
  stats : stat list;                (** one per rule run, rule order *)
  total_ms : float;
  errors : int;
  warnings : int;
  infos : int;  (** counts over active diagnostics only *)
}

val all_rules : Rule.t list
(** Every registered rule: structural, clock/scan, TPI/timing packs in
    that order. *)

val packs : (string * Rule.t list) list
val find_pack : string -> Rule.t list option

val run :
  ?arts:Rule.artifacts ->
  ?rules:Rule.t list ->
  ?waivers:Waiver.t ->
  Netlist.Design.t ->
  report
(** [rules] defaults to {!all_rules}; [waivers] to {!Waiver.empty}. The
    design is never mutated (checked by a fingerprint property test). *)

val worst : report -> Diag.severity option
(** Highest active severity, [None] for a clean report. *)

val baseline : ?reason:string -> report -> Waiver.t
(** Waiver file content covering every diagnostic of this run, active
    and already-waived alike ([--write-waivers]). *)

exception Lint_failed of string
(** Raised by {!gate}; the payload is a one-line summary naming the
    first few offending rule ids. Mapped to the ["lint-failed"] error
    class by {!Flow.Guard}. *)

val gate : report -> unit
(** Raise {!Lint_failed} when the report holds error-severity
    diagnostics; no-op otherwise. *)
