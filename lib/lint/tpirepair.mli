(** The repair rule pack — hygiene checks around the post-route
    timing-repair ECO stage ({!Flow.Repair}). Rule ids (stable,
    DESIGN.md §6.5):

    - [repair.timing-violations] (warn) — the caller's {!Sta.Slack}
      artifact reports setup violations the repair stage could work on;
      fires only when a slack report is provided.
    - [repair.buffer-chain] (warn) — three or more buffers in series,
      each one's whole fanout being the next: repeated repair/ECO churn
      piling up cell delay where one stronger driver would do.
    - [repair.oversized-driver] (warn) — a combinational cell at drive
      strength 4 or more whose output drives at most one sink: an
      area-recovery (downsize) candidate the repair stage would claim. *)

val pack_name : string

val buffer_chain_min : int
(** Series length at which a buffer chain is reported (3). *)

val oversize_drive : int
(** Drive strength at or above which a light-load driver is reported (4). *)

val oversize_max_sinks : int
(** Sink count at or below which such a driver counts as light-load (1). *)

val rules : Rule.t list
