module Design = Netlist.Design
module Cell = Stdcell.Cell
module Json = Obs.Json

type entry = { fingerprint : string; rule : string; reason : string }
type t = { entries : entry list }

let empty = { entries = [] }

(* --- structural signatures: kinds, pin indices and directions only --- *)

let driver_sig (d : Design.t) nid =
  if nid < 0 then "-"
  else
    match (Design.net d nid).Design.driver with
    | Design.No_driver -> "none"
    | Design.Port_in _ -> "in"
    | Design.Cell_pin (iid, pin) ->
      Printf.sprintf "%s:%d" (Cell.kind_name (Design.inst d iid).Design.cell.Cell.kind) pin

let sink_sigs (d : Design.t) (n : Design.net) =
  let pins =
    List.map
      (fun (iid, pin) ->
        Printf.sprintf "%s:%d"
          (Cell.kind_name (Design.inst d iid).Design.cell.Cell.kind)
          pin)
      n.Design.sinks
  in
  let pins = if n.Design.out_port >= 0 then "out" :: pins else pins in
  String.concat "," (List.sort String.compare pins)

let net_sig d nid =
  let n = Design.net d nid in
  Printf.sprintf "net|%s|%s" (driver_sig d nid) (sink_sigs d n)

let inst_sig d iid =
  let i = Design.inst d iid in
  let per_pin =
    Array.to_list i.Design.conns
    |> List.mapi (fun pin nid ->
           if nid < 0 then "-"
           else if pin < Array.length i.Design.cell.Cell.pins
                   && i.Design.cell.Cell.pins.(pin).Stdcell.Pin.dir = Stdcell.Pin.Output
           then Printf.sprintf "~%d" (List.length (Design.net d nid).Design.sinks)
           else driver_sig d nid)
  in
  Printf.sprintf "inst|%s|d%d|%s" i.Design.cell.Cell.name i.Design.domain
    (String.concat "," per_pin)

let port_sig d pid =
  let p = Design.port d pid in
  let dir = match p.Design.dir with Design.In -> "in" | Design.Out -> "out" in
  let bound =
    if p.Design.pnet < 0 then "-"
    else
      match p.Design.dir with
      | Design.In -> sink_sigs d (Design.net d p.Design.pnet)
      | Design.Out -> driver_sig d p.Design.pnet
  in
  Printf.sprintf "port|%s|%s" dir bound

let loc_sig d = function
  | Diag.Net nid -> net_sig d nid
  | Diag.Inst iid -> inst_sig d iid
  | Diag.Port pid -> port_sig d pid
  | Diag.Stage s -> "stage|" ^ s
  | Diag.Design -> "design"

let signature d (diag : Diag.t) =
  Printf.sprintf "%s|%s|%s" diag.Diag.rule
    (Diag.severity_name diag.Diag.severity)
    (loc_sig d diag.Diag.loc)

let hash s = Digest.to_hex (Digest.string s)

(* occurrence index #k disambiguates structural twins; k counts in list
   (= engine emission) order, which follows ids, not names *)
let fingerprints d diags =
  let seen = Hashtbl.create 32 in
  List.map
    (fun diag ->
      let h = hash (signature d diag) in
      let k = Option.value ~default:0 (Hashtbl.find_opt seen h) in
      Hashtbl.replace seen h (k + 1);
      (diag, Printf.sprintf "%s#%d" h k))
    diags

(* --- file io --- *)

let to_json w =
  Json.Obj
    [ ("version", Json.Int 1);
      ( "waivers",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [ ("fingerprint", Json.String e.fingerprint);
                   ("rule", Json.String e.rule);
                   ("reason", Json.String e.reason) ])
             w.entries) ) ]

let save path w = Json.write_file path (to_json w)

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match Json.parse text with
    | Error msg -> Error (Printf.sprintf "%s: invalid JSON (%s)" path msg)
    | Ok json -> (
      match Json.member "version" json with
      | Some (Json.Int 1) -> (
        match Json.member "waivers" json with
        | Some (Json.List items) -> (
          let entry_of = function
            | Json.Obj _ as o -> (
              match (Json.member "fingerprint" o, Json.member "rule" o) with
              | Some (Json.String fingerprint), Some (Json.String rule) ->
                let reason =
                  match Json.member "reason" o with
                  | Some (Json.String s) -> s
                  | _ -> ""
                in
                Ok { fingerprint; rule; reason }
              | _ -> Error "waiver entry needs string fields fingerprint and rule")
            | _ -> Error "waiver entry must be an object"
          in
          let rec all acc = function
            | [] -> Ok { entries = List.rev acc }
            | x :: rest -> (
              match entry_of x with
              | Ok e -> all (e :: acc) rest
              | Error m -> Error (Printf.sprintf "%s: %s" path m))
          in
          all [] items)
        | _ -> Error (Printf.sprintf "%s: missing waivers array" path))
      | _ -> Error (Printf.sprintf "%s: missing or unsupported version" path)))

let of_diags d diags ~reason =
  { entries =
      List.map
        (fun (diag, fp) -> { fingerprint = fp; rule = diag.Diag.rule; reason })
        (fingerprints d diags) }

let apply w d diags =
  let by_fp = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace by_fp e.fingerprint e) w.entries;
  let used = Hashtbl.create 16 in
  let active, waived =
    List.partition_map
      (fun (diag, fp) ->
        if Hashtbl.mem by_fp fp then begin
          Hashtbl.replace used fp ();
          Right (diag, fp)
        end
        else Left (diag, fp))
      (fingerprints d diags)
  in
  let stale = List.filter (fun e -> not (Hashtbl.mem used e.fingerprint)) w.entries in
  (active, waived, stale)
