type stat = { rule_id : string; pack : string; count : int; ms : float }

type report = {
  diags : (Diag.t * string) list;
  waived : (Diag.t * string) list;
  stale : Waiver.entry list;
  stats : stat list;
  total_ms : float;
  errors : int;
  warnings : int;
  infos : int;
}

let packs =
  [ (Structural.pack_name, Structural.rules);
    (Clockscan.pack_name, Clockscan.rules);
    (Tpitiming.pack_name, Tpitiming.rules);
    (Tpirepair.pack_name, Tpirepair.rules) ]

let all_rules = List.concat_map snd packs
let find_pack name = List.assoc_opt name packs

let c_rules_run = Obs.Metrics.counter "lint.rules_run"
let c_diags = Obs.Metrics.counter "lint.diags"
let c_waived = Obs.Metrics.counter "lint.waived"

let run_rule ctx (r : Rule.t) =
  let timer = Obs.Trace.enter ~name:("lint." ^ r.Rule.id) () in
  let diags, err =
    match r.Rule.check ctx with
    | ds -> (ds, None)
    | exception exn ->
      (* a crashing check is itself a finding, never a silent pass *)
      ( [ Diag.make ~rule:r.Rule.id ~severity:Diag.Error ~loc:(Diag.Stage "lint")
            ~hint:"fix the rule or report a lint bug"
            (Printf.sprintf "rule crashed: %s" (Printexc.to_string exn)) ],
        Some (Printexc.to_string exn) )
  in
  let ms = Obs.Trace.stop ?error:err timer in
  Obs.Metrics.incr c_rules_run;
  Obs.Metrics.add c_diags (List.length diags);
  (diags, { rule_id = r.Rule.id; pack = r.Rule.pack; count = List.length diags; ms })

let run ?arts ?(rules = all_rules) ?(waivers = Waiver.empty) design =
  let timer = Obs.Trace.enter ~name:"lint.run" () in
  let ctx = Rule.make_ctx ?arts design in
  let per_rule = List.map (run_rule ctx) rules in
  let emitted = List.concat_map fst per_rule in
  let stats = List.map snd per_rule in
  let active, waived, stale = Waiver.apply waivers design emitted in
  Obs.Metrics.add c_waived (List.length waived);
  (* fingerprints are assigned in emission order (stable under renames);
     the sort below is presentation only *)
  let diags = List.sort (fun (a, _) (b, _) -> Diag.compare a b) active in
  let count sev = List.length (List.filter (fun (d, _) -> d.Diag.severity = sev) diags) in
  let total_ms = Obs.Trace.stop timer in
  { diags; waived; stale; stats; total_ms;
    errors = count Diag.Error; warnings = count Diag.Warn; infos = count Diag.Info }

let worst r =
  if r.errors > 0 then Some Diag.Error
  else if r.warnings > 0 then Some Diag.Warn
  else if r.infos > 0 then Some Diag.Info
  else None

let baseline ?(reason = "baselined") r =
  { Waiver.entries =
      List.map
        (fun (d, fp) -> { Waiver.fingerprint = fp; rule = d.Diag.rule; reason })
        (r.diags @ r.waived) }

exception Lint_failed of string

let () =
  Printexc.register_printer (function
    | Lint_failed msg -> Some (Printf.sprintf "Lint_failed: %s" msg)
    | _ -> None)

let gate r =
  if r.errors > 0 then begin
    let rules =
      List.filter_map
        (fun (d, _) -> if d.Diag.severity = Diag.Error then Some d.Diag.rule else None)
        r.diags
      |> List.sort_uniq String.compare
    in
    let shown = List.filteri (fun k _ -> k < 3) rules in
    let more = List.length rules - List.length shown in
    raise
      (Lint_failed
         (Printf.sprintf "%d error(s) from %s%s" r.errors
            (String.concat ", " shown)
            (if more > 0 then Printf.sprintf " and %d more rule(s)" more else "")))
  end
