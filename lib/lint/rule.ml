type artifacts = {
  chains : Scan.Chains.t option;
  slack : Sta.Slack.t option;
  crit_nets : int list option;
}

let no_artifacts = { chains = None; slack = None; crit_nets = None }

type ctx = {
  design : Netlist.Design.t;
  arts : artifacts;
  cmodel : Netlist.Cmodel.t option lazy_t;
  cop : Testability.Cop.t option lazy_t;
  regions : Testability.Regions.t option lazy_t;
  timing : Timing.t lazy_t;
  facts : Structfacts.t lazy_t;
}

let make_ctx ?(arts = no_artifacts) design =
  let cmodel = lazy (try Some (Netlist.Cmodel.build design) with _ -> None) in
  let on_model f = lazy (match Lazy.force cmodel with None -> None | Some m -> (try Some (f m) with _ -> None)) in
  { design;
    arts;
    cmodel;
    cop = on_model Testability.Cop.compute;
    regions = on_model Testability.Regions.compute;
    timing = lazy (Timing.estimate design);
    facts = lazy (Structfacts.compute design) }

type t = {
  id : string;
  pack : string;
  title : string;
  severity : Diag.severity;
  check : ctx -> Diag.t list;
}

let diag r ~loc ?hint message =
  Diag.make ~rule:r.id ~severity:r.severity ~loc ?hint message

let diag_at r ~severity ~loc ?hint message =
  Diag.make ~rule:r.id ~severity ~loc ?hint message
