(* One shared traversal over instances, nets and ports collecting every
   cheap structural fact the rule packs consume. Computed lazily, at most
   once per engine run, so the structural pack is one pass over the
   design regardless of how many of its rules are enabled. *)

module Design = Netlist.Design
module Cell = Stdcell.Cell
module Pin = Stdcell.Pin

type t = {
  multi_driven : (int * string list) list;
      (** net id, description of each driving pin ("kind.pin" / "port"),
          for nets with more than one driver according to the instance
          connection arrays — the ground truth even when [net.driver]
          records only one *)
  undriven : int list;        (** nets with loads but no driver *)
  floating_inputs : (int * int) list;  (** (instance, pin) *)
  unloaded_outputs : int list;
      (** combinational instances whose output drives nothing *)
  dangling_ffs : int list;    (** flip-flops whose Q drives nothing *)
  arity_mismatches : (int * string) list;  (** (instance, what is wrong) *)
  unbound_ports : int list;
  ffs_without_domain : int list;
  ff_clock_mismatches : int list;
      (** sequential instances whose clock pin is not on their domain's
          declared clock net *)
  tsffs : int list;           (** test points, id order *)
  ff_count : int;             (** all sequential instances *)
}

let compute (d : Design.t) =
  let nn = Design.num_nets d in
  let drive_count = Array.make nn 0 in
  let drive_desc = Array.make nn [] in
  let floating_inputs = ref [] in
  let unloaded_outputs = ref [] in
  let dangling_ffs = ref [] in
  let arity_mismatches = ref [] in
  let ffs_without_domain = ref [] in
  let ff_clock_mismatches = ref [] in
  let tsffs = ref [] in
  let ff_count = ref 0 in
  Design.iter_nets d (fun n ->
      match n.Design.driver with
      | Design.Port_in _ ->
        drive_count.(n.Design.nid) <- drive_count.(n.Design.nid) + 1;
        drive_desc.(n.Design.nid) <- "port" :: drive_desc.(n.Design.nid)
      | _ -> ());
  Design.iter_insts d (fun i ->
      let cell = i.Design.cell in
      let pins = cell.Cell.pins in
      if Array.length i.Design.conns <> Array.length pins then
        arity_mismatches :=
          ( i.Design.id,
            Printf.sprintf "%d connection slots for %d pins of %s"
              (Array.length i.Design.conns) (Array.length pins) cell.Cell.name )
          :: !arity_mismatches
      else begin
        (match Stdcell.Library.by_name d.Design.lib cell.Cell.name with
         | Some lib_cell when Array.length lib_cell.Cell.pins <> Array.length pins ->
           arity_mismatches :=
             ( i.Design.id,
               Printf.sprintf "%s has %d pins here but %d in the library" cell.Cell.name
                 (Array.length pins)
                 (Array.length lib_cell.Cell.pins) )
           :: !arity_mismatches
         | Some _ -> ()
         | None ->
           arity_mismatches :=
             (i.Design.id, Printf.sprintf "cell %s not in the library" cell.Cell.name)
           :: !arity_mismatches);
        Array.iteri
          (fun pin nid ->
            if pin < Array.length pins then
              if Pin.is_input pins.(pin) then begin
                if nid < 0 && cell.Cell.kind <> Cell.Filler then
                  floating_inputs := (i.Design.id, pin) :: !floating_inputs
              end
              else if nid >= 0 then begin
                drive_count.(nid) <- drive_count.(nid) + 1;
                drive_desc.(nid) <-
                  Printf.sprintf "%s.%d" (Cell.kind_name cell.Cell.kind) pin
                  :: drive_desc.(nid)
              end)
          i.Design.conns;
        (* output-load accounting: a gate or flip-flop whose output feeds
           neither a sink pin nor an output port computes into the void *)
        (match cell.Cell.kind with
         | Cell.Tiehi | Cell.Tielo | Cell.Filler -> ()
         | _ ->
           let out = Design.net_of_output d i in
           let unloaded =
             out < 0
             ||
             let n = Design.net d out in
             n.Design.sinks = [] && n.Design.out_port < 0
           in
           if unloaded then
             if Cell.is_ff cell then dangling_ffs := i.Design.id :: !dangling_ffs
             else unloaded_outputs := i.Design.id :: !unloaded_outputs);
        if cell.Cell.sequential then begin
          incr ff_count;
          if cell.Cell.kind = Cell.Tsff then tsffs := i.Design.id :: !tsffs;
          if
            i.Design.domain < 0
            || i.Design.domain >= Array.length d.Design.domains
          then ffs_without_domain := i.Design.id :: !ffs_without_domain
          else
            match Cell.clock_pin cell with
            | Some ck ->
              let expect = d.Design.domains.(i.Design.domain).Design.clock_net in
              if i.Design.conns.(ck) <> expect then
                ff_clock_mismatches := i.Design.id :: !ff_clock_mismatches
            | None -> ()
        end
      end);
  let undriven = ref [] and multi = ref [] in
  Design.iter_nets d (fun n ->
      let nid = n.Design.nid in
      if drive_count.(nid) > 1 then multi := (nid, List.rev drive_desc.(nid)) :: !multi;
      if
        drive_count.(nid) = 0
        && (n.Design.sinks <> [] || n.Design.out_port >= 0)
      then undriven := nid :: !undriven);
  let unbound_ports = ref [] in
  Util.Vec.iter
    (fun (p : Design.port) ->
      if p.Design.pnet < 0 then unbound_ports := p.Design.pid :: !unbound_ports)
    d.Design.ports;
  { multi_driven = List.rev !multi;
    undriven = List.rev !undriven;
    floating_inputs = List.rev !floating_inputs;
    unloaded_outputs = List.rev !unloaded_outputs;
    dangling_ffs = List.rev !dangling_ffs;
    arity_mismatches = List.rev !arity_mismatches;
    unbound_ports = List.rev !unbound_ports;
    ffs_without_domain = List.rev !ffs_without_domain;
    ff_clock_mismatches = List.rev !ff_clock_mismatches;
    tsffs = List.rev !tsffs;
    ff_count = !ff_count }
