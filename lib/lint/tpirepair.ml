module Design = Netlist.Design
module Cell = Stdcell.Cell

let pack_name = "tpi-repair"

let buffer_chain_min = 3
let oversize_drive = 4
let oversize_max_sinks = 1

let rule id title severity checkgen : Rule.t =
  let rec r =
    { Rule.id; pack = pack_name; title; severity; check = (fun ctx -> checkgen r ctx) }
  in
  r

let driver_inst (d : Design.t) nid =
  if nid < 0 then None
  else
    match (Design.net d nid).Design.driver with
    | Design.Cell_pin (src, _) -> Some src
    | _ -> None

let is_buf (i : Design.instance) = i.Design.cell.Cell.kind = Cell.Buf

(* a repairable buffer link: [i] is a Buf whose whole fanout is the single
   next buffer, so the pair adds two cell delays where one driver would do *)
let next_buf (d : Design.t) (i : Design.instance) =
  let out = Design.net_of_output d i in
  if out < 0 then None
  else
    match (Design.net d out).Design.sinks with
    | [ (si, _) ] ->
      let s = Design.inst d si in
      if is_buf s then Some s else None
    | _ -> None

let timing_violations =
  rule "repair.timing-violations" "unrepaired setup violations" Diag.Warn
    (fun r ctx ->
      match ctx.Rule.arts.Rule.slack with
      | Some s when s.Sta.Slack.violations > 0 ->
        [ Rule.diag r ~loc:Diag.Design
            ~hint:"run the post-route repair stage (tpi_flow --repair)"
            (Printf.sprintf
               "%d endpoint(s) violate setup, WNS %.0f ps, TNS %.0f ps"
               s.Sta.Slack.violations s.Sta.Slack.wns s.Sta.Slack.tns) ]
      | _ -> [])

let buffer_chain =
  rule "repair.buffer-chain" "buffers chained back to back" Diag.Warn
    (fun r ctx ->
      let d = ctx.Rule.design in
      let diags = ref [] in
      Design.iter_insts d (fun i ->
          if is_buf i then begin
            (* report each chain once, from its head buffer *)
            let upstream_buf =
              match driver_inst d i.Design.conns.(0) with
              | Some src ->
                let s = Design.inst d src in
                is_buf s && next_buf d s <> None
              | None -> false
            in
            if not upstream_buf then begin
              let rec len acc b =
                match next_buf d b with Some nxt -> len (acc + 1) nxt | None -> acc
              in
              let n = len 1 i in
              if n >= buffer_chain_min then
                diags :=
                  Rule.diag r ~loc:(Diag.Inst i.Design.id)
                    ~hint:"collapse the chain or upsize the original driver instead"
                    (Printf.sprintf "%d buffers in series from here" n)
                  :: !diags
            end
          end);
      List.sort Diag.compare !diags)

let oversized_driver =
  rule "repair.oversized-driver" "strong driver on a light load" Diag.Warn
    (fun r ctx ->
      let d = ctx.Rule.design in
      let diags = ref [] in
      Design.iter_insts d (fun i ->
          let c = i.Design.cell in
          if
            c.Cell.drive >= oversize_drive
            && (not c.Cell.sequential)
            && c.Cell.kind <> Cell.Clkbuf
            && Array.length c.Cell.arcs > 0
          then begin
            let out = Design.net_of_output d i in
            if
              out >= 0
              && List.length (Design.net d out).Design.sinks <= oversize_max_sinks
            then
              diags :=
                Rule.diag r ~loc:(Diag.Inst i.Design.id)
                  ~hint:"downsize candidate: the repair stage's area-recovery pass"
                  (Printf.sprintf "drive-%d %s drives %d sink(s)" c.Cell.drive
                     (Cell.kind_name c.Cell.kind)
                     (List.length (Design.net d out).Design.sinks))
                :: !diags
          end);
      List.sort Diag.compare !diags)

let rules = [ timing_violations; buffer_chain; oversized_driver ]
