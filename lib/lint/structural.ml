module Design = Netlist.Design

let pack_name = "structural"

(* the record is passed back into its own check so diags inherit the
   rule's id and default severity from one place *)
let rule id title severity checkgen : Rule.t =
  let rec r =
    { Rule.id; pack = pack_name; title; severity; check = (fun ctx -> checkgen r ctx) }
  in
  r

let facts (ctx : Rule.ctx) = Lazy.force ctx.Rule.facts

let comb_loop =
  rule "struct.comb-loop" "application-mode combinational loop" Diag.Error
    (fun r ctx ->
      match (Lazy.force ctx.Rule.timing).Timing.loop_insts with
      | [] -> []
      | (first :: _) as insts ->
        let d = ctx.Rule.design in
        let names =
          List.filteri (fun k _ -> k < 4) insts
          |> List.map (fun i -> (Design.inst d i).Design.iname)
        in
        let more = List.length insts - List.length names in
        [ Rule.diag r ~loc:(Diag.Inst first)
            ~hint:"break the cycle or gate it behind a sequential element"
            (Printf.sprintf "%d instance(s) stuck on a combinational cycle: %s%s"
               (List.length insts)
               (String.concat ", " names)
               (if more > 0 then Printf.sprintf " and %d more" more else "")) ])

let multi_driver =
  rule "struct.multi-driver" "net driven by more than one pin" Diag.Error
    (fun r ctx ->
      List.map
        (fun (nid, drivers) ->
          Rule.diag r ~loc:(Diag.Net nid) ~hint:"keep exactly one driver per net"
            (Printf.sprintf "net has %d drivers (%s)" (List.length drivers)
               (String.concat ", " drivers)))
        (facts ctx).Structfacts.multi_driven)

let undriven_net =
  rule "struct.undriven-net" "net with loads but no driver" Diag.Error
    (fun r ctx ->
      List.map
        (fun nid ->
          let n = Design.net ctx.Rule.design nid in
          Rule.diag r ~loc:(Diag.Net nid) ~hint:"connect a driver or remove the loads"
            (Printf.sprintf "no driver for %d load(s)%s"
               (List.length n.Design.sinks)
               (if n.Design.out_port >= 0 then " and an output port" else "")))
        (facts ctx).Structfacts.undriven)

let floating_input =
  rule "struct.floating-input" "unconnected input pin" Diag.Error
    (fun r ctx ->
      List.map
        (fun (iid, pin) ->
          let i = Design.inst ctx.Rule.design iid in
          Rule.diag r ~loc:(Diag.Inst iid) ~hint:"tie the pin or connect its signal"
            (Printf.sprintf "input pin %d (%s) of %s is unconnected" pin
               i.Design.cell.Stdcell.Cell.pins.(pin).Stdcell.Pin.name
               i.Design.cell.Stdcell.Cell.name))
        (facts ctx).Structfacts.floating_inputs)

let unbound_port =
  rule "struct.unbound-port" "port never bound to a net" Diag.Error
    (fun r ctx ->
      List.map
        (fun pid ->
          Rule.diag r ~loc:(Diag.Port pid) ~hint:"bind the port to a net"
            "port is not bound to any net")
        (facts ctx).Structfacts.unbound_ports)

let unloaded_output =
  rule "struct.unloaded-output" "gate output driving nothing" Diag.Warn
    (fun r ctx ->
      List.map
        (fun iid ->
          Rule.diag r ~loc:(Diag.Inst iid)
            ~hint:"remove the dead gate or connect its output"
            "combinational output drives neither a pin nor a port")
        (facts ctx).Structfacts.unloaded_outputs)

let dangling_ff =
  rule "struct.dangling-ff" "flip-flop output driving nothing" Diag.Warn
    (fun r ctx ->
      List.map
        (fun iid ->
          Rule.diag r ~loc:(Diag.Inst iid)
            ~hint:"remove the register or use its Q output"
            "flip-flop Q output drives neither a pin nor a port")
        (facts ctx).Structfacts.dangling_ffs)

let arity_mismatch =
  rule "struct.arity-mismatch" "connection/pin arity or library disagreement" Diag.Error
    (fun r ctx ->
      List.map
        (fun (iid, what) ->
          Rule.diag r ~loc:(Diag.Inst iid)
            ~hint:"rebuild the instance against the library cell" what)
        (facts ctx).Structfacts.arity_mismatches)

let rules =
  [ comb_loop; multi_driver; undriven_net; floating_input; unbound_port;
    unloaded_output; dangling_ff; arity_mismatch ]
