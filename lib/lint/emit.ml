module Json = Obs.Json

let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s")

let summary (r : Engine.report) =
  let extras =
    (if r.Engine.waived = [] then []
     else [ Printf.sprintf "%d waived" (List.length r.Engine.waived) ])
    @
    if r.Engine.stale = [] then []
    else [ Printf.sprintf "%d stale waiver(s)" (List.length r.Engine.stale) ]
  in
  Printf.sprintf "lint: %s, %s%s in %.1f ms"
    (plural r.Engine.errors "error")
    (plural r.Engine.warnings "warning")
    (match extras with [] -> "" | es -> Printf.sprintf " (%s)" (String.concat ", " es))
    r.Engine.total_ms

let text design (r : Engine.report) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (d, _) ->
      Buffer.add_string buf (Format.asprintf "%a" (Diag.pp design) d);
      Buffer.add_char buf '\n')
    r.Engine.diags;
  List.iter
    (fun (e : Waiver.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "note: stale waiver %s (%s) matched nothing\n"
           e.Waiver.fingerprint e.Waiver.rule))
    r.Engine.stale;
  Buffer.add_string buf (summary r);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- machine JSON --- *)

let loc_json design (loc : Diag.location) =
  let kind, id =
    match loc with
    | Diag.Net n -> ("net", n)
    | Diag.Inst i -> ("inst", i)
    | Diag.Port p -> ("port", p)
    | Diag.Stage _ -> ("stage", -1)
    | Diag.Design -> ("design", -1)
  in
  Json.Obj
    ([ ("kind", Json.String kind) ]
    @ (if id >= 0 then [ ("id", Json.Int id) ] else [])
    @ [ ("text", Json.String (Diag.loc_string design loc)) ])

let diag_json design ((d : Diag.t), fp) =
  Json.Obj
    ([ ("rule", Json.String d.Diag.rule);
       ("severity", Json.String (Diag.severity_name d.Diag.severity));
       ("loc", loc_json design d.Diag.loc);
       ("message", Json.String d.Diag.message) ]
    @ (match d.Diag.hint with
       | Some h -> [ ("hint", Json.String h) ]
       | None -> [])
    @ [ ("fingerprint", Json.String fp) ])

let json design (r : Engine.report) =
  Json.Obj
    [ ("version", Json.Int 1);
      ( "summary",
        Json.Obj
          [ ("errors", Json.Int r.Engine.errors);
            ("warnings", Json.Int r.Engine.warnings);
            ("infos", Json.Int r.Engine.infos);
            ("waived", Json.Int (List.length r.Engine.waived));
            ("stale_waivers", Json.Int (List.length r.Engine.stale));
            ("total_ms", Json.Float r.Engine.total_ms) ] );
      ("diagnostics", Json.List (List.map (diag_json design) r.Engine.diags));
      ("waived", Json.List (List.map (diag_json design) r.Engine.waived));
      ( "stale_waivers",
        Json.List
          (List.map
             (fun (e : Waiver.entry) ->
               Json.Obj
                 [ ("fingerprint", Json.String e.Waiver.fingerprint);
                   ("rule", Json.String e.Waiver.rule);
                   ("reason", Json.String e.Waiver.reason) ])
             r.Engine.stale) );
      ( "rules",
        Json.List
          (List.map
             (fun (s : Engine.stat) ->
               Json.Obj
                 [ ("id", Json.String s.Engine.rule_id);
                   ("pack", Json.String s.Engine.pack);
                   ("count", Json.Int s.Engine.count);
                   ("ms", Json.Float s.Engine.ms) ])
             r.Engine.stats) ) ]

(* --- SARIF 2.1.0 --- *)

let sarif_level = function
  | Diag.Error -> "error"
  | Diag.Warn -> "warning"
  | Diag.Info -> "note"

let sarif_loc_kind = function
  | Diag.Net _ -> "variable"      (* closest SARIF logical kind for a net *)
  | Diag.Inst _ -> "object"
  | Diag.Port _ -> "parameter"
  | Diag.Stage _ -> "resource"
  | Diag.Design -> "module"

let sarif_result design ~suppressed ((d : Diag.t), fp) =
  Json.Obj
    ([ ("ruleId", Json.String d.Diag.rule);
       ("level", Json.String (sarif_level d.Diag.severity));
       ( "message",
         Json.Obj
           [ ( "text",
               Json.String
                 (match d.Diag.hint with
                  | Some h -> d.Diag.message ^ " [fix: " ^ h ^ "]"
                  | None -> d.Diag.message) ) ] );
       ( "locations",
         Json.List
           [ Json.Obj
               [ ( "logicalLocations",
                   Json.List
                     [ Json.Obj
                         [ ("name", Json.String (Diag.loc_string design d.Diag.loc));
                           ("kind", Json.String (sarif_loc_kind d.Diag.loc)) ] ] ) ] ] );
       ("partialFingerprints", Json.Obj [ ("tpiLint/v1", Json.String fp) ]) ]
    @
    if suppressed then
      [ ( "suppressions",
          Json.List
            [ Json.Obj
                [ ("kind", Json.String "external");
                  ("justification", Json.String "waived") ] ] ) ]
    else [])

let sarif design (r : Engine.report) =
  let rule_meta (rule : Rule.t) =
    Json.Obj
      [ ("id", Json.String rule.Rule.id);
        ("name", Json.String rule.Rule.id);
        ("shortDescription", Json.Obj [ ("text", Json.String rule.Rule.title) ]);
        ( "defaultConfiguration",
          Json.Obj [ ("level", Json.String (sarif_level rule.Rule.severity)) ] );
        ( "properties",
          Json.Obj [ ("pack", Json.String rule.Rule.pack) ] ) ]
  in
  Json.Obj
    [ ( "$schema",
        Json.String
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ("version", Json.String "2.1.0");
      ( "runs",
        Json.List
          [ Json.Obj
              [ ( "tool",
                  Json.Obj
                    [ ( "driver",
                        Json.Obj
                          [ ("name", Json.String "tpi_flow-lint");
                            ("version", Json.String "1.0.0");
                            ( "rules",
                              Json.List (List.map rule_meta Engine.all_rules) ) ] )
                    ] );
                ( "results",
                  Json.List
                    (List.map (sarif_result design ~suppressed:false) r.Engine.diags
                    @ List.map (sarif_result design ~suppressed:true) r.Engine.waived)
                ) ] ] ) ]
