module Design = Netlist.Design

type severity =
  | Error
  | Warn
  | Info

let severity_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"

let severity_rank = function
  | Error -> 0
  | Warn -> 1
  | Info -> 2

type location =
  | Net of int
  | Inst of int
  | Port of int
  | Stage of string
  | Design

type t = {
  rule : string;
  severity : severity;
  loc : location;
  message : string;
  hint : string option;
}

let make ~rule ~severity ~loc ?hint message = { rule; severity; loc; message; hint }

let loc_string (d : Design.t) = function
  | Net n when n >= 0 && n < Design.num_nets d ->
    Printf.sprintf "net n%d (%s)" n (Design.net d n).Design.nname
  | Net n -> Printf.sprintf "net n%d" n
  | Inst i when i >= 0 && i < Design.num_insts d ->
    Printf.sprintf "inst i%d (%s)" i (Design.inst d i).Design.iname
  | Inst i -> Printf.sprintf "inst i%d" i
  | Port p when p >= 0 && p < Util.Vec.length d.Design.ports ->
    Printf.sprintf "port p%d (%s)" p (Design.port d p).Design.pname
  | Port p -> Printf.sprintf "port p%d" p
  | Stage s -> s
  | Design -> "design"

(* a total order on locations for the deterministic report sort *)
let loc_rank = function
  | Design -> (0, 0, "")
  | Port p -> (1, p, "")
  | Net n -> (2, n, "")
  | Inst i -> (3, i, "")
  | Stage s -> (4, 0, s)

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = Stdlib.compare (loc_rank a.loc) (loc_rank b.loc) in
      if c <> 0 then c else String.compare a.message b.message

let pp d ppf t =
  Format.fprintf ppf "%-5s %-24s %s: %s" (severity_name t.severity) t.rule
    (loc_string d t.loc) t.message;
  match t.hint with
  | Some h -> Format.fprintf ppf " [fix: %s]" h
  | None -> ()
