module Design = Netlist.Design

type report = {
  cells_added : int;
  filler_area : float;
  filler_area_pct : float;
}

let run (pl : Place.t) =
  let d = pl.Place.design in
  let fillers = Stdcell.Library.fillers d.Design.lib in
  let smallest =
    List.fold_left
      (fun acc (c : Stdcell.Cell.t) -> Float.min acc c.Stdcell.Cell.width)
      infinity fillers
  in
  let added = ref 0 and area = ref 0.0 in
  Array.iteri
    (fun r used ->
      let free = ref (pl.Place.fp.Floorplan.row_length -. used) in
      List.iter
        (fun (cell : Stdcell.Cell.t) ->
          while !free >= cell.Stdcell.Cell.width -. 1e-9 do
            let name = Printf.sprintf "fill_r%d_%d" r !added in
            let (_ : Design.instance) = Design.add_instance d ~name ~cell in
            incr added;
            free := !free -. cell.Stdcell.Cell.width;
            area := !area +. Stdcell.Cell.area cell
          done)
        fillers;
      ignore smallest)
    pl.Place.row_used;
  let core = Floorplan.core_area pl.Place.fp in
  { cells_added = !added;
    filler_area = !area;
    filler_area_pct = (if core > 0.0 then 100.0 *. !area /. core else 0.0) }
