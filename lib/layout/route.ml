module Design = Netlist.Design
module Point = Geom.Point
module Rect = Geom.Rect

type terminal = {
  t_point : Point.t;
  t_inst : int;
  t_pin : int;
}

type net_route = {
  terminals : terminal array;
  parent : int array;
  length : float;
}

type t = {
  routes : net_route option array;
  total_wirelength : float;
  gcell_um : float;
  usage_h : int array array;
  usage_v : int array array;
  overflowed_gcells : int;
}

let prim_threshold = 256

let m_segments = Obs.Metrics.counter "route.segments"
let m_nets_routed = Obs.Metrics.counter "route.nets_routed"
let g_overflowed = Obs.Metrics.gauge "route.overflowed_gcells"
let h_net_terminals = Obs.Metrics.histogram "route.net_terminals"

(* exact RMST by Prim's algorithm, O(k^2) *)
let prim (pts : Point.t array) =
  let k = Array.length pts in
  let parent = Array.make k (-1) in
  let dist = Array.make k infinity in
  let intree = Array.make k false in
  dist.(0) <- 0.0;
  for _ = 1 to k do
    let best = ref (-1) in
    for v = 0 to k - 1 do
      if (not intree.(v)) && (!best < 0 || dist.(v) < dist.(!best)) then best := v
    done;
    let u = !best in
    intree.(u) <- true;
    for v = 0 to k - 1 do
      if not intree.(v) then begin
        let w = Point.manhattan pts.(u) pts.(v) in
        if w < dist.(v) then begin
          dist.(v) <- w;
          parent.(v) <- u
        end
      end
    done
  done;
  parent

(* for enormous nets (pre-CTS clock, unbuffered scan enable): snake chain *)
let snake (pts : Point.t array) =
  let k = Array.length pts in
  let order = Array.init (k - 1) (fun i -> i + 1) in
  Array.sort
    (fun a b ->
      let pa = pts.(a) and pb = pts.(b) in
      let band p = int_of_float (p.Point.y /. 30.0) in
      let ka = (band pa, if band pa mod 2 = 0 then pa.Point.x else -.pa.Point.x) in
      let kb = (band pb, if band pb mod 2 = 0 then pb.Point.x else -.pb.Point.x) in
      compare ka kb)
    order;
  let parent = Array.make k (-1) in
  Array.iteri (fun i v -> parent.(v) <- (if i = 0 then 0 else order.(i - 1))) order;
  parent

(* one net's spanning tree over its placed terminals; pure — no metrics,
   no congestion. Deterministic in the placement and the net's
   driver/sink order, so re-routing one net after an ECO reproduces
   exactly what a whole-design [run] would compute for it. *)
let route_net (pl : Place.t) (n : Design.net) =
  let terms = ref [] in
  (match n.Design.driver with
   | Design.Cell_pin (iid, pin) when Place.is_placed pl iid ->
     terms := [ { t_point = Pinpos.inst_pin pl iid; t_inst = iid; t_pin = pin } ]
   | Design.Port_in pid ->
     terms := [ { t_point = Pinpos.port pl pid; t_inst = -1; t_pin = pid } ]
   | Design.Cell_pin _ | Design.No_driver -> ());
  if !terms = [] then None
  else begin
    List.iter
      (fun (iid, pin) ->
        if Place.is_placed pl iid then
          terms := { t_point = Pinpos.inst_pin pl iid; t_inst = iid; t_pin = pin } :: !terms)
      n.Design.sinks;
    if n.Design.out_port >= 0 then
      terms :=
        { t_point = Pinpos.port pl n.Design.out_port; t_inst = -1; t_pin = n.Design.out_port }
        :: !terms;
    (* driver collected first, so it ends up last after consing *)
    let terminals = Array.of_list (List.rev !terms) in
    if Array.length terminals < 2 then None
    else begin
      let pts = Array.map (fun t -> t.t_point) terminals in
      let parent = if Array.length pts <= prim_threshold then prim pts else snake pts in
      let length = ref 0.0 in
      Array.iteri
        (fun v p ->
          if p >= 0 then length := !length +. Point.manhattan pts.(v) pts.(p))
        parent;
      Some { terminals; parent; length = !length }
    end
  end

(* congestion grid shared by [run] and [rebuild_stats] *)
let grid ~gcell_um (pl : Place.t) =
  let chip = pl.Place.fp.Floorplan.chip in
  let cols = max 1 (int_of_float (Float.round (Rect.width chip /. gcell_um))) in
  let rows = max 1 (int_of_float (Float.round (Rect.height chip /. gcell_um))) in
  let usage_h = Array.make_matrix rows cols 0 in
  let usage_v = Array.make_matrix rows cols 0 in
  let gx x = max 0 (min (cols - 1) (int_of_float ((x -. chip.Rect.lx) /. gcell_um))) in
  let gy y = max 0 (min (rows - 1) (int_of_float ((y -. chip.Rect.ly) /. gcell_um))) in
  let add_h y x0 x1 =
    let r = gy y in
    for c = min (gx x0) (gx x1) to max (gx x0) (gx x1) do
      usage_h.(r).(c) <- usage_h.(r).(c) + 1
    done
  in
  let add_v x y0 y1 =
    let c = gx x in
    for r = min (gy y0) (gy y1) to max (gy y0) (gy y1) do
      usage_v.(r).(c) <- usage_v.(r).(c) + 1
    done
  in
  (rows, cols, usage_h, usage_v, add_h, add_v)

(* every tree edge as an L: horizontal first, then vertical *)
let add_route_to_grid ~add_h ~add_v (r : net_route) =
  Array.iteri
    (fun v p ->
      if p >= 0 then begin
        let a = r.terminals.(v).t_point and b = r.terminals.(p).t_point in
        add_h a.Point.y a.Point.x b.Point.x;
        add_v b.Point.x a.Point.y b.Point.y
      end)
    r.parent

let count_overflow ~capacity ~rows ~cols usage_h usage_v =
  let overflowed = ref 0 in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if usage_h.(r).(c) > capacity || usage_v.(r).(c) > capacity then incr overflowed
    done
  done;
  !overflowed

let run ?(gcell_um = 20.0) ?(capacity = 14) (pl : Place.t) =
  let d = pl.Place.design in
  let rows, cols, usage_h, usage_v, add_h, add_v = grid ~gcell_um pl in
  let routes = Array.make (Design.num_nets d) None in
  let total = ref 0.0 in
  Obs.Trace.with_span ~name:"route.nets"
    ~attrs:[ ("nets", Obs.Json.Int (Design.num_nets d)) ]
    (fun () ->
  Design.iter_nets d (fun n ->
      match route_net pl n with
      | None -> ()
      | Some r ->
        Obs.Metrics.observe h_net_terminals (float_of_int (Array.length r.terminals));
        Array.iter (fun p -> if p >= 0 then Obs.Metrics.incr m_segments) r.parent;
        add_route_to_grid ~add_h ~add_v r;
        total := !total +. r.length;
        Obs.Metrics.incr m_nets_routed;
        routes.(n.Design.nid) <- Some r));
  let overflowed = count_overflow ~capacity ~rows ~cols usage_h usage_v in
  Obs.Metrics.set g_overflowed (float_of_int overflowed);
  { routes;
    total_wirelength = !total;
    gcell_um;
    usage_h;
    usage_v;
    overflowed_gcells = overflowed }

(* recompute the aggregate view (wirelength, congestion, overflow) from a
   routes array whose entries were patched net by net: the result equals
   what [run] would build if it produced the same routes. No route.*
   counters move — this is bookkeeping, not routing work. *)
let rebuild_stats ?(gcell_um = 20.0) ?(capacity = 14) (pl : Place.t)
    (routes : net_route option array) =
  let rows, cols, usage_h, usage_v, add_h, add_v = grid ~gcell_um pl in
  let total = ref 0.0 in
  Array.iter
    (fun ro ->
      match ro with
      | None -> ()
      | Some r ->
        add_route_to_grid ~add_h ~add_v r;
        total := !total +. r.length)
    routes;
  let overflowed = count_overflow ~capacity ~rows ~cols usage_h usage_v in
  Obs.Metrics.set g_overflowed (float_of_int overflowed);
  { routes;
    total_wirelength = !total;
    gcell_um;
    usage_h;
    usage_v;
    overflowed_gcells = overflowed }

let net_length t nid =
  match t.routes.(nid) with
  | Some r -> r.length
  | None -> 0.0
