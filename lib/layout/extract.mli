(** RC extraction (step 5, the HYPEREXTRACT stand-in).

    Per-unit wire resistance and capacitance are applied to each routed
    net's spanning tree; per-sink Elmore delays and the total capacitive
    load seen by the driver feed the STA's delay calculation. *)

type sink_rc = {
  s_inst : int;       (** -1 for an output-port sink *)
  s_pin : int;        (** pin index, or the port id when [s_inst] = -1 *)
  elmore_ps : float;  (** driver-to-sink wire delay *)
}

type net_rc = {
  wire_cap_ff : float;
  pin_cap_ff : float;
  total_cap_ff : float;  (** load seen by the driver *)
  length_um : float;
  sink_delays : sink_rc list;
}

val r_per_um : float
(** 0.2 ohm/um: 130 nm average over a six-layer metal stack (most routing
    on the wider mid/upper layers). *)

val c_per_um : float
(** 0.12 fF/um. *)

val output_port_load_ff : float
(** Assumed external load on output ports. *)

val run : Place.t -> Route.t -> net_rc array
(** Indexed by net id; unrouted nets get zero parasitics (pin caps only). *)

val extract_net : Place.t -> Route.net_route option -> Netlist.Design.net -> net_rc
(** One net's parasitics: the pure per-net map [run] folds over the whole
    design, exposed so an ECO can re-extract just the nets it touched
    with byte-identical values. *)

val sink_elmore : net_rc -> inst:int -> pin:int -> float
(** 0.0 when the sink is not on the net. *)
