module Design = Netlist.Design
module Cell = Stdcell.Cell
module Rect = Geom.Rect
module Point = Geom.Point
module Rng = Util.Rng

type t = {
  design : Design.t;
  fp : Floorplan.t;
  mutable x : float array;
  mutable row : int array;
  row_used : float array;
}

let ensure_capacity t n =
  let len = Array.length t.x in
  if n > len then begin
    let x' = Array.make n Float.nan and row' = Array.make n (-1) in
    Array.blit t.x 0 x' 0 len;
    Array.blit t.row 0 row' 0 len;
    t.x <- x';
    t.row <- row'
  end

(* nets above this fanout (clock, scan enable) are distributed as trees
   later and carry no placement signal *)
let max_fanout_considered = 64

let m_fm_passes = Obs.Metrics.counter "place.fm_passes"
let m_fm_moves = Obs.Metrics.counter "place.fm_moves"
let m_legalize_moves = Obs.Metrics.counter "place.legalize_moves"
let m_legalize_spills = Obs.Metrics.counter "place.legalize_spills"
let h_region_cells = Obs.Metrics.histogram "place.region_cells"

type hypergraph = {
  cell_nets : int array array;  (* movable index -> net ids *)
  net_cells : int array array;  (* net id -> movable indexes *)
  width : float array;          (* movable index -> cell width *)
  inst_of : int array;          (* movable index -> instance id *)
}

let build_hypergraph (d : Design.t) =
  let movable = ref [] in
  Design.iter_insts d (fun i ->
      if i.Design.cell.Cell.kind <> Cell.Filler then movable := i.Design.id :: !movable);
  let inst_of = Array.of_list (List.rev !movable) in
  let index_of = Array.make (Design.num_insts d) (-1) in
  Array.iteri (fun k iid -> index_of.(iid) <- k) inst_of;
  let nn = Design.num_nets d in
  let net_ok = Array.make nn false in
  Design.iter_nets d (fun n ->
      let fanout = List.length n.Design.sinks in
      net_ok.(n.Design.nid) <- fanout >= 1 && fanout <= max_fanout_considered);
  let net_cells = Array.make nn [] in
  let cell_nets = Array.make (Array.length inst_of) [] in
  Array.iteri
    (fun k iid ->
      let i = Design.inst d iid in
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun nid ->
          if nid >= 0 && net_ok.(nid) && not (Hashtbl.mem seen nid) then begin
            Hashtbl.replace seen nid ();
            net_cells.(nid) <- k :: net_cells.(nid);
            cell_nets.(k) <- nid :: cell_nets.(k)
          end)
        i.Design.conns)
    inst_of;
  { cell_nets = Array.map Array.of_list cell_nets;
    net_cells = Array.map Array.of_list net_cells;
    width = Array.map (fun iid -> (Design.inst d iid).Design.cell.Cell.width) inst_of;
    inst_of }

(* ---- Fiduccia-Mattheyses bipartition of a cell subset ----

   [side] is per-movable-index; only cells listed in [members] move. Pins
   of a net outside the region enter as locked counts on the side nearest
   their current target (terminal propagation, Dunlop-Kernighan style) --
   without it every bisection level scrambles the cross-region nets and
   wirelength blows up by a large factor. One call = one complete FM pass
   with rollback to the best prefix. *)
let fm_pass h ~members ~side ~ext ~rng =
  let m = Array.length members in
  if m > 2 then begin
    Obs.Metrics.incr m_fm_passes;
    let in_region = Hashtbl.create m in
    Array.iteri (fun k c -> Hashtbl.replace in_region c k) members;
    (* net pin counts per side: region pins plus locked external pins *)
    let nets = Hashtbl.create 256 in
    Array.iter
      (fun c ->
        Array.iter
          (fun nid ->
            let a, b =
              match Hashtbl.find_opt nets nid with
              | Some counts -> counts
              | None -> ext nid
            in
            if side.(c) then Hashtbl.replace nets nid (a, b + 1)
            else Hashtbl.replace nets nid (a + 1, b))
          h.cell_nets.(c))
      members;
    let area_a = ref 0.0 and area_b = ref 0.0 in
    Array.iter
      (fun c ->
        if side.(c) then area_b := !area_b +. h.width.(c)
        else area_a := !area_a +. h.width.(c))
      members;
    let total_area = !area_a +. !area_b in
    let max_side = 0.55 *. total_area in
    let max_gain =
      Array.fold_left (fun acc c -> max acc (Array.length h.cell_nets.(c))) 1 members
    in
    (* gain buckets *)
    let buckets = Array.make ((2 * max_gain) + 1) [] in
    let gain = Array.make m 0 and locked = Array.make m false in
    let bucket_of g = g + max_gain in
    let cell_gain c =
      let g = ref 0 in
      Array.iter
        (fun nid ->
          let a, b = Hashtbl.find nets nid in
          let from_count, to_count = if side.(c) then (b, a) else (a, b) in
          if from_count = 1 then incr g;
          if to_count = 0 then decr g)
        h.cell_nets.(c);
      !g
    in
    let order = Array.copy members in
    Rng.shuffle rng order;
    Array.iter
      (fun c ->
        let k = Hashtbl.find in_region c in
        gain.(k) <- cell_gain c;
        buckets.(bucket_of gain.(k)) <- c :: buckets.(bucket_of gain.(k)))
      order;
    let best_prefix = ref 0 and best_score = ref 0 and score = ref 0 in
    let moves = Array.make m (-1) in
    let moved = ref 0 in
    let pop_best () =
      let rec scan g =
        if g < -max_gain then None
        else
          match buckets.(bucket_of g) with
          | [] -> scan (g - 1)
          | c :: rest ->
            buckets.(bucket_of g) <- rest;
            let k = Hashtbl.find in_region c in
            if locked.(k) || gain.(k) <> g then scan g (* stale entry *)
            else begin
              (* balance check *)
              let w = h.width.(k) in
              let ok =
                if side.(c) then !area_a +. w <= max_side
                else !area_b +. w <= max_side
              in
              if ok then Some c else scan g (* skip this one entry; retry same g *)
            end
      in
      scan max_gain
    in
    let requeue c =
      match Hashtbl.find_opt in_region c with
      | None -> () (* net pin outside the region *)
      | Some k ->
        if not locked.(k) then begin
        let g = cell_gain c in
        if g <> gain.(k) then begin
          gain.(k) <- g;
          buckets.(bucket_of g) <- c :: buckets.(bucket_of g)
        end
      end
    in
    let continue_ = ref true in
    while !continue_ do
      match pop_best () with
      | None -> continue_ := false
      | Some c ->
        let k = Hashtbl.find in_region c in
        locked.(k) <- true;
        score := !score + gain.(k);
        (* apply the move *)
        let w = h.width.(k) in
        if side.(c) then begin
          area_b := !area_b -. w;
          area_a := !area_a +. w
        end
        else begin
          area_a := !area_a -. w;
          area_b := !area_b +. w
        end;
        Array.iter
          (fun nid ->
            let a, b = Hashtbl.find nets nid in
            let a, b = if side.(c) then (a + 1, b - 1) else (a - 1, b + 1) in
            Hashtbl.replace nets nid (a, b))
          h.cell_nets.(c);
        side.(c) <- not side.(c);
        Obs.Metrics.incr m_fm_moves;
        moves.(!moved) <- c;
        incr moved;
        if !score > !best_score then begin
          best_score := !score;
          best_prefix := !moved
        end;
        (* refresh neighbour gains *)
        Array.iter
          (fun nid ->
            Array.iter (fun c' -> requeue c') h.net_cells.(nid))
          h.cell_nets.(c)
    done;
    (* roll back past the best prefix *)
    for j = !moved - 1 downto !best_prefix do
      let c = moves.(j) in
      side.(c) <- not side.(c)
    done;
    !best_score
  end
  else 0

(* split members into two width-balanced halves, FM-refined. The initial
   partition grows one half by breadth-first search over the netlist from a
   random seed, so connectivity clusters (synthesis modules) start out
   together; flat FM alone cannot recover them from a random start. *)
let bipartition h ~members ~side ~ext ~rng =
  let total = Array.fold_left (fun acc k -> acc +. h.width.(k)) 0.0 members in
  let in_members = Hashtbl.create (Array.length members) in
  Array.iter (fun c -> Hashtbl.replace in_members c ()) members;
  let visited = Hashtbl.create (Array.length members) in
  let queue = Queue.create () in
  let wa = ref 0.0 in
  Array.iter (fun c -> side.(c) <- true) members;
  let seed = members.(Rng.int rng (Array.length members)) in
  Queue.add seed queue;
  Hashtbl.replace visited seed ();
  while !wa < total /. 2.0 && not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    side.(c) <- false;
    wa := !wa +. h.width.(c);
    Array.iter
      (fun nid ->
        Array.iter
          (fun c' ->
            if Hashtbl.mem in_members c' && not (Hashtbl.mem visited c') then begin
              Hashtbl.replace visited c' ();
              Queue.add c' queue
            end)
          h.net_cells.(nid))
      h.cell_nets.(c)
  done;
  (* disconnected leftovers keep side B; top up A if badly unbalanced *)
  if !wa < 0.45 *. total then begin
    let k = ref 0 in
    while !wa < total /. 2.0 && !k < Array.length members do
      let c = members.(!k) in
      if side.(c) then begin
        side.(c) <- false;
        wa := !wa +. h.width.(c)
      end;
      incr k
    done
  end;
  let rec refine n =
    if n > 0 then begin
      let improvement = fm_pass h ~members ~side ~ext ~rng in
      if improvement > 0 then refine (n - 1)
    end
  in
  refine 5

let run ?(seed = 0x914C) d fp =
  let rng = Rng.create seed in
  let h = build_hypergraph d in
  let m = Array.length h.inst_of in
  let target = Array.make m Point.zero in
  let side = Array.make m false in
  let sum_width members =
    Array.fold_left (fun acc k -> acc +. h.width.(k)) 0.0 members
  in
  (* BFS over regions so every cell always has a current coarse target,
     which terminal propagation reads for the nets leaving a region *)
  let region_of = Array.make m (-1) in
  let queue = Queue.create () in
  let process members (rect : Rect.t) depth =
    Obs.Metrics.observe h_region_cells (float_of_int (Array.length members));
    if Array.length members <= 4 || depth > 26 then begin
      let c = Rect.center rect in
      Array.iter (fun k -> target.(k) <- c) members
    end
    else begin
      let region_stamp = depth * 1_000_003 in
      Array.iter (fun k -> region_of.(k) <- region_stamp) members;
      let horizontal = Rect.width rect >= Rect.height rect in
      let mid = if horizontal then (rect.Rect.lx +. rect.Rect.ux) /. 2.0
                else (rect.Rect.ly +. rect.Rect.uy) /. 2.0 in
      let ext nid =
        let a = ref 0 and b = ref 0 in
        Array.iter
          (fun c ->
            if region_of.(c) <> region_stamp then begin
              let coord = if horizontal then target.(c).Point.x else target.(c).Point.y in
              if coord < mid then incr a else incr b
            end)
          h.net_cells.(nid);
        (!a, !b)
      in
      bipartition h ~members ~side ~ext ~rng;
      Array.iter (fun k -> region_of.(k) <- -1) members;
      let a = Array.of_list (List.filter (fun k -> not side.(k)) (Array.to_list members)) in
      let b = Array.of_list (List.filter (fun k -> side.(k)) (Array.to_list members)) in
      if Array.length a = 0 || Array.length b = 0 then begin
        let c = Rect.center rect in
        Array.iter (fun k -> target.(k) <- c) members
      end
      else begin
        let wa = sum_width a and wb = sum_width b in
        let frac = wa /. (wa +. wb) in
        let ra, rb =
          if horizontal then begin
            let xm = rect.Rect.lx +. (frac *. Rect.width rect) in
            ({ rect with Rect.ux = xm }, { rect with Rect.lx = xm })
          end
          else begin
            let ym = rect.Rect.ly +. (frac *. Rect.height rect) in
            ({ rect with Rect.uy = ym }, { rect with Rect.ly = ym })
          end
        in
        Array.iter (fun k -> target.(k) <- Rect.center ra) a;
        Array.iter (fun k -> target.(k) <- Rect.center rb) b;
        Queue.add (a, ra, depth + 1) queue;
        Queue.add (b, rb, depth + 1) queue
      end
    end
  in
  if m > 0 then
    Obs.Trace.with_span ~name:"place.partition"
      ~attrs:[ ("cells", Obs.Json.Int m) ]
      (fun () ->
        Array.iteri (fun k _ -> target.(k) <- Rect.center fp.Floorplan.core) target;
        Queue.add (Array.init m Fun.id, fp.Floorplan.core, 0) queue;
        while not (Queue.is_empty queue) do
          let members, rect, depth = Queue.pop queue in
          process members rect depth
        done);
  (* ---- legalization onto rows ---- *)
  Obs.Trace.with_span ~name:"place.legalize" (fun () ->
  let ni = Design.num_insts d in
  let x = Array.make ni Float.nan in
  let row = Array.make ni (-1) in
  let nrows = Floorplan.num_rows fp in
  let row_used = Array.make (max nrows 1) 0.0 in
  let order = Array.init m Fun.id in
  Array.sort
    (fun a b ->
      compare (target.(a).Point.y, target.(a).Point.x) (target.(b).Point.y, target.(b).Point.x))
    order;
  let total_width = sum_width (Array.init m Fun.id) in
  let per_row = total_width /. float_of_int (max nrows 1) in
  let row_members = Array.make (max nrows 1) [] in
  (* assign by cumulative width so rounding deficits spread over all rows
     instead of piling the shortfall into the last one, spilling forward
     (or backward at the end) when a row reaches capacity *)
  let filled = Array.make (max nrows 1) 0.0 in
  let cum = ref 0.0 in
  Array.iter
    (fun k ->
      let w = h.width.(k) in
      let target =
        min (nrows - 1) (int_of_float ((!cum +. (w /. 2.0)) /. Float.max per_row 1e-9))
      in
      cum := !cum +. w;
      let fits r = filled.(r) +. w <= fp.Floorplan.row_length +. 1e-9 in
      let rec forward r = if r >= nrows - 1 || fits r then r else forward (r + 1) in
      let r = forward (max 0 target) in
      let r =
        if fits r then r
        else begin
          (* end of the core: walk back to the nearest row with space *)
          let rec backward q = if q <= 0 || fits q then q else backward (q - 1) in
          backward r
        end
      in
      Obs.Metrics.incr m_legalize_moves;
      if r <> max 0 target then Obs.Metrics.incr m_legalize_spills;
      filled.(r) <- filled.(r) +. w;
      row_members.(r) <- k :: row_members.(r))
    order;
  Array.iteri
    (fun r members ->
      let members = Array.of_list members in
      Array.sort (fun a b -> compare target.(a).Point.x target.(b).Point.x) members;
      let used = sum_width members in
      let n = Array.length members in
      let gap =
        if n = 0 then 0.0
        else Float.max 0.0 ((fp.Floorplan.row_length -. used) /. float_of_int (n + 1))
      in
      let cursor = ref (fp.Floorplan.core.Rect.lx +. gap) in
      Array.iter
        (fun k ->
          let iid = h.inst_of.(k) in
          x.(iid) <- !cursor;
          row.(iid) <- r;
          cursor := !cursor +. h.width.(k) +. gap)
        members;
      row_used.(r) <- used)
    row_members;
  { design = d; fp; x; row; row_used })

let is_placed t iid = iid < Array.length t.row && t.row.(iid) >= 0

let y_of_row t r = t.fp.Floorplan.core.Rect.ly +. (float_of_int r *. Stdcell.Library.row_height)

let position t iid =
  if not (is_placed t iid) then invalid_arg "Place.position: unplaced instance";
  let i = Design.inst t.design iid in
  Point.make
    (t.x.(iid) +. (i.Design.cell.Cell.width /. 2.0))
    (y_of_row t t.row.(iid) +. (Stdcell.Library.row_height /. 2.0))

let hpwl t =
  let total = ref 0.0 in
  Design.iter_nets t.design (fun n ->
      let pts = ref [] in
      (match n.Design.driver with
       | Design.Cell_pin (iid, _) when is_placed t iid -> pts := position t iid :: !pts
       | _ -> ());
      List.iter
        (fun (iid, _) -> if is_placed t iid then pts := position t iid :: !pts)
        n.Design.sinks;
      match !pts with
      | [] | [ _ ] -> ()
      | first :: rest ->
        let bbox =
          List.fold_left
            (fun acc (p : Point.t) ->
              Rect.union acc (Rect.make ~lx:p.Point.x ~ly:p.Point.y ~ux:p.Point.x ~uy:p.Point.y))
            (Rect.make ~lx:first.Point.x ~ly:first.Point.y ~ux:first.Point.x ~uy:first.Point.y)
            rest
        in
        total := !total +. Rect.half_perimeter bbox);
  !total

let utilization t =
  let n = Array.length t.row_used in
  if n = 0 then 0.0
  else
    Array.fold_left (fun acc u -> acc +. (u /. t.fp.Floorplan.row_length)) 0.0 t.row_used
    /. float_of_int n
