(** Layout invariant checks, the physical-design counterpart of
    {!Netlist.Check}: run by {!Flow.Guard} between the placement, ECO/route
    and extraction stages (steps 4/5/6 of Figure 2) so a corrupted layout
    surfaces as a typed stage error instead of a crash or a silently wrong
    table row. *)

type violation =
  | Zero_length_row of int       (** row index, or [-1] for the whole core *)
  | Unplaced_cell of int         (** non-filler instance with no site *)
  | Cell_outside_core of int     (** placed outside the core rows (or NaN x) *)
  | Cell_overlap of int * int    (** two placed cells sharing row space *)
  | Route_missing_endpoint of int
      (** net id: empty/ill-formed spanning tree, non-finite terminal, or a
          terminal on an unplaced instance *)
  | Nonfinite_rc of int          (** net id with NaN/infinite parasitics *)
  | Negative_rc of int

val class_name : violation -> string
(** Stable kebab-case tag, e.g. ["cell-overlap"]; {!Flow.Guard} prefixes
    stage-error details with it. *)

val pp_violation : Netlist.Design.t -> Format.formatter -> violation -> unit

val check_placement :
  ?overlaps:bool -> ?eco_from:int -> ?margin:float -> Place.t -> violation list
(** Rows, placement legality and (optionally) pairwise overlaps.
    [eco_from] exempts ECO-placed instances (id >= [eco_from]) from the
    overlap check — the stand-in ECO placer may legally overfill a row.
    [margin] (um) loosens the core-boundary test for post-DRC checks where
    upsizing has widened cells in place. *)

val check_route : Place.t -> Route.t -> violation list

val check_rc : Extract.net_rc array -> violation list

val render : Netlist.Design.t -> violation list -> string
(** ["" ] when clean; otherwise "class: N violation(s), first: ...". *)
