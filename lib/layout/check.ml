module Design = Netlist.Design
module Cell = Stdcell.Cell
module Rect = Geom.Rect

type violation =
  | Zero_length_row of int
  | Unplaced_cell of int
  | Cell_outside_core of int
  | Cell_overlap of int * int
  | Route_missing_endpoint of int
  | Nonfinite_rc of int
  | Negative_rc of int

let class_name = function
  | Zero_length_row _ -> "zero-length-row"
  | Unplaced_cell _ -> "unplaced-cell"
  | Cell_outside_core _ -> "outside-core"
  | Cell_overlap _ -> "cell-overlap"
  | Route_missing_endpoint _ -> "route-endpoint"
  | Nonfinite_rc _ -> "nonfinite-rc"
  | Negative_rc _ -> "negative-rc"

let pp_violation (d : Design.t) ppf =
  let iname iid = (Design.inst d iid).Design.iname in
  function
  | Zero_length_row r -> Format.fprintf ppf "row %d has zero length" r
  | Unplaced_cell i -> Format.fprintf ppf "cell %s is unplaced" (iname i)
  | Cell_outside_core i -> Format.fprintf ppf "cell %s lies outside the core rows" (iname i)
  | Cell_overlap (i, j) ->
    Format.fprintf ppf "cells %s and %s overlap" (iname i) (iname j)
  | Route_missing_endpoint n ->
    Format.fprintf ppf "route of net %s has a missing endpoint" (Design.net d n).Design.nname
  | Nonfinite_rc n ->
    Format.fprintf ppf "net %s has non-finite RC" (Design.net d n).Design.nname
  | Negative_rc n ->
    Format.fprintf ppf "net %s has negative RC" (Design.net d n).Design.nname

let eps = 1e-6

(* ECO-placed cells (clock and scan-enable buffers legalised after global
   placement) are allowed to overlap their neighbours: the stand-in ECO
   placer drops them at the nearest legal-capacity row without shuffling
   the incumbents, as documented in {!Eco}. [eco_from] is the first
   instance id created after global placement; pairs touching such cells
   are exempt from the overlap check. DRC upsizing also widens cells in
   place, so callers disable [overlaps] after step 4 and use [margin] to
   tolerate the widened footprints at the core edge. *)
let check_placement ?(overlaps = true) ?(eco_from = max_int) ?(margin = eps)
    (pl : Place.t) =
  let out = ref [] in
  let add v = out := v :: !out in
  let fp = pl.Place.fp in
  let nrows = Floorplan.num_rows fp in
  (* core rows must have physical extent *)
  if fp.Floorplan.row_length <= eps then add (Zero_length_row (-1));
  Array.iteri
    (fun r rect ->
      if Rect.width rect <= eps || Rect.height rect <= eps then add (Zero_length_row r))
    fp.Floorplan.rows;
  let lx = fp.Floorplan.core.Rect.lx in
  let rx = lx +. fp.Floorplan.row_length in
  let per_row = Array.make (max nrows 1) [] in
  Design.iter_insts pl.Place.design (fun i ->
      if i.Design.cell.Cell.kind <> Cell.Filler then begin
        let iid = i.Design.id in
        if not (Place.is_placed pl iid) then add (Unplaced_cell iid)
        else begin
          let x = pl.Place.x.(iid) and r = pl.Place.row.(iid) in
          let w = i.Design.cell.Cell.width in
          if
            (not (Float.is_finite x))
            || r < 0 || r >= nrows
            || x < lx -. margin
            || x +. w > rx +. margin
          then add (Cell_outside_core iid)
          else if overlaps && iid < eco_from then
            per_row.(r) <- (iid, x, w) :: per_row.(r)
        end
      end);
  if overlaps then
    Array.iter
      (fun members ->
        let a = Array.of_list members in
        Array.sort (fun (_, x1, _) (_, x2, _) -> compare x1 x2) a;
        for k = 0 to Array.length a - 2 do
          let i1, x1, w1 = a.(k) and i2, x2, _ = a.(k + 1) in
          if x2 < x1 +. w1 -. eps then add (Cell_overlap (i1, i2))
        done)
      per_row;
  List.rev !out

let check_route (pl : Place.t) (rt : Route.t) =
  let out = ref [] in
  let add v = out := v :: !out in
  Array.iteri
    (fun nid r ->
      match r with
      | None -> ()
      | Some (nr : Route.net_route) ->
        let n = Array.length nr.Route.terminals in
        let bad = ref (n = 0 || Array.length nr.Route.parent <> n) in
        if not !bad then begin
          if nr.Route.parent.(0) <> -1 then bad := true;
          Array.iteri
            (fun k p ->
              if k > 0 && (p < 0 || p >= n || p = k) then bad := true)
            nr.Route.parent;
          Array.iter
            (fun (t : Route.terminal) ->
              if
                (not (Float.is_finite t.Route.t_point.Geom.Point.x))
                || not (Float.is_finite t.Route.t_point.Geom.Point.y)
              then bad := true
              else if t.Route.t_inst >= 0 && not (Place.is_placed pl t.Route.t_inst) then
                bad := true)
            nr.Route.terminals;
          if not (Float.is_finite nr.Route.length) || nr.Route.length < -.eps then
            bad := true
        end;
        if !bad then add (Route_missing_endpoint nid))
    rt.Route.routes;
  List.rev !out

let check_rc (rc : Extract.net_rc array) =
  let out = ref [] in
  let add v = out := v :: !out in
  Array.iteri
    (fun nid (r : Extract.net_rc) ->
      let fin = Float.is_finite in
      let vals =
        r.Extract.wire_cap_ff :: r.Extract.pin_cap_ff :: r.Extract.total_cap_ff
        :: r.Extract.length_um
        :: List.map (fun (s : Extract.sink_rc) -> s.Extract.elmore_ps) r.Extract.sink_delays
      in
      if List.exists (fun v -> not (fin v)) vals then add (Nonfinite_rc nid)
      else if List.exists (fun v -> v < -.eps) vals then add (Negative_rc nid))
    rc;
  List.rev !out

let render (d : Design.t) vs =
  match vs with
  | [] -> ""
  | v :: _ ->
    let buf = Buffer.create 256 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf "%s: %d violation(s), first: %a" (class_name v) (List.length vs)
      (pp_violation d) v;
    Format.pp_print_flush ppf ();
    Buffer.contents buf
