module Design = Netlist.Design
module Point = Geom.Point

type sink_rc = {
  s_inst : int;
  s_pin : int;
  elmore_ps : float;
}

type net_rc = {
  wire_cap_ff : float;
  pin_cap_ff : float;
  total_cap_ff : float;
  length_um : float;
  sink_delays : sink_rc list;
}

let r_per_um = 0.2
let c_per_um = 0.12
let output_port_load_ff = 5.0

let pin_cap (d : Design.t) iid pin =
  if iid < 0 then output_port_load_ff
  else begin
    let cell = (Design.inst d iid).Design.cell in
    cell.Stdcell.Cell.pins.(pin).Stdcell.Pin.cap
  end

let empty_rc d (n : Design.net) =
  let pin_cap_ff =
    List.fold_left (fun acc (iid, pin) -> acc +. pin_cap d iid pin) 0.0 n.Design.sinks
    +. (if n.Design.out_port >= 0 then output_port_load_ff else 0.0)
  in
  { wire_cap_ff = 0.0;
    pin_cap_ff;
    total_cap_ff = pin_cap_ff;
    length_um = 0.0;
    sink_delays = [] }

(* one net's parasitics from its (possibly absent) route: a pure per-net
   map, so re-extracting the nets an ECO touched yields byte-identical
   values to a whole-design [run] *)
let extract_net (pl : Place.t) (ro : Route.net_route option) (n : Design.net) =
  let d = pl.Place.design in
  match ro with
  | None -> empty_rc d n
  | Some route ->
        let terms = route.Route.terminals in
        let k = Array.length terms in
        let parent = route.Route.parent in
        let children = Array.make k [] in
        Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) parent;
        let edge_len = Array.make k 0.0 in
        Array.iteri
          (fun v p ->
            if p >= 0 then
              edge_len.(v) <- Point.manhattan terms.(v).Route.t_point terms.(p).Route.t_point)
          parent;
        (* subtree capacitance (wire + pins), computed leaves-first *)
        let subtree_cap = Array.make k 0.0 in
        let rec cap_of v =
          let own =
            if v = 0 then 0.0 (* the driver terminal has no input pin cap *)
            else pin_cap d terms.(v).Route.t_inst terms.(v).Route.t_pin
          in
          let c =
            List.fold_left
              (fun acc ch -> acc +. cap_of ch +. (c_per_um *. edge_len.(ch)))
              own children.(v)
          in
          subtree_cap.(v) <- c;
          c
        in
        let (_ : float) = cap_of 0 in
        (* Elmore from the driver: R(ohm) * C(fF) = 1e-3 ps *)
        let delay = Array.make k 0.0 in
        let rec walk v =
          List.iter
            (fun ch ->
              let r = r_per_um *. edge_len.(ch) in
              let c = subtree_cap.(ch) +. (c_per_um *. edge_len.(ch) /. 2.0) in
              delay.(ch) <- delay.(v) +. (r *. c *. 1e-3);
              walk ch)
            children.(v)
        in
        walk 0;
        let wire_cap_ff = c_per_um *. route.Route.length in
        let pin_cap_ff =
          List.fold_left (fun acc (iid, pin) -> acc +. pin_cap d iid pin) 0.0 n.Design.sinks
          +. (if n.Design.out_port >= 0 then output_port_load_ff else 0.0)
        in
        let sink_delays =
          List.filteri (fun v _ -> v > 0) (Array.to_list (Array.mapi (fun v t -> (v, t)) terms))
          |> List.map (fun (v, (t : Route.terminal)) ->
                 { s_inst = t.Route.t_inst; s_pin = t.Route.t_pin; elmore_ps = delay.(v) })
        in
    { wire_cap_ff;
      pin_cap_ff;
      total_cap_ff = wire_cap_ff +. pin_cap_ff;
      length_um = route.Route.length;
      sink_delays }

let run (pl : Place.t) (rt : Route.t) =
  let d = pl.Place.design in
  Array.init (Design.num_nets d) (fun nid ->
      extract_net pl rt.Route.routes.(nid) (Design.net d nid))

let sink_elmore rc ~inst ~pin =
  let rec find = function
    | [] -> 0.0
    | s :: rest -> if s.s_inst = inst && s.s_pin = pin then s.elmore_ps else find rest
  in
  find rc.sink_delays
