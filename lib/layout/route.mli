(** Global routing (step 4, Figure 3c).

    Each net gets a rectilinear minimum spanning tree over its terminals
    (Prim; very-high-fanout nets fall back to a snake chain), with every
    tree edge realised as an L-shape over a gcell grid for congestion
    accounting. Total wirelength is the L_wires column of Table 2. *)

type terminal = {
  t_point : Geom.Point.t;
  t_inst : int;  (** instance id, or -1 for a port terminal *)
  t_pin : int;   (** pin index, or port id when [t_inst] = -1 *)
}

type net_route = {
  terminals : terminal array;  (** index 0 is the driver *)
  parent : int array;          (** spanning tree; parent.(0) = -1 *)
  length : float;              (** um *)
}

type t = {
  routes : net_route option array;  (** by net id; None for degenerate nets *)
  total_wirelength : float;
  gcell_um : float;
  usage_h : int array array;   (** [row][col] horizontal track demand *)
  usage_v : int array array;
  overflowed_gcells : int;
}

val run : ?gcell_um:float -> ?capacity:int -> Place.t -> t
(** Defaults: 20 um gcells, 14 tracks per direction. *)

val route_net : Place.t -> Netlist.Design.net -> net_route option
(** Route one net in isolation: pure (no metrics, no congestion
    accounting) and deterministic in the placement and the net's
    driver/sink order, so patching one net after an ECO reproduces
    exactly the route a whole-design {!run} would give it. [None] for
    degenerate (driverless or single-terminal) nets. *)

val rebuild_stats :
  ?gcell_um:float -> ?capacity:int -> Place.t -> net_route option array -> t
(** Recompute wirelength, congestion and overflow from a routes array
    whose entries were patched net by net; equal to what {!run} would
    build had it produced the same routes. Moves no [route.*] counters
    (it does no routing work), but refreshes the overflow gauge. *)

val net_length : t -> int -> float
