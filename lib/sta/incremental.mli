(** Worklist-driven incremental STA on top of {!Tgraph} (the ROADMAP's
    "re-time only the affected cone").

    Contract (DESIGN.md §6.6): after a netlist/layout edit, the caller
    {!Tgraph.sync_topology}s every touched net and instance, then
    {!Tgraph.update_rc}s every re-extracted net, then calls {!retime}
    with those same sets. The graph then holds {e exactly} the state a
    full {!Tgraph.propagate} (or {!Analysis.run}) would produce — bit
    for bit, including provenance and slow-node flags — because a cone
    re-evaluation resets each output net to its seed and replays the
    driver's arcs in declaration order, and stops at nets whose
    (arrival, slew, provenance) came out bitwise unchanged.

    Bookkeeping lands in [sta.incremental.*] counters only; the full-STA
    counters ([sta.arcs_evaluated], ...) are never touched, so a
    full-mode and an incremental-mode sweep stay metric-identical
    modulo that namespace. *)

type stats = {
  insts_evaluated : int;   (** instances re-evaluated forward *)
  nets_changed : int;      (** nets whose (arrival, slew, provenance) moved *)
  nets_settled : int;      (** re-evaluated outputs that came out unchanged *)
  required_patched : int;  (** nets whose required time was recomputed *)
}

val retime : Tgraph.t -> dirty_nets:int list -> dirty_insts:int list -> stats
(** Re-time the cone downstream of the dirty sets. Required times are
    patched backward only if {!Tgraph.compute_required} had been run
    (otherwise they stay uncomputed and [required_patched] is 0). *)
