(** Static timing analysis (step 6, the PEARL stand-in).

    Application-mode worst-arrival propagation over the placed, routed and
    extracted design: NLDM table lookups for cell arcs (with explicit slow
    nodes when slew/load leave the characterised range, as the paper
    describes), Elmore interconnect delays, clock latency and skew obtained
    by propagating the clock ports through the inserted buffer trees, and
    test-mode-only arcs blocked as false paths. The critical path report
    decomposes T_cp per equation (3):
    T_cp = T_wires + T_intrinsic + T_load-dep + T_setup + T_skew. *)

type config = {
  input_slew_ps : float;    (** slew assumed at primary inputs *)
  input_arrival_ps : float;
}

val default_config : config

exception Combinational_cycle of { inst : int; iname : string }
(** The netlist has a combinational loop; carries one instance stuck on it. *)

exception Backtrack_diverged of { net : int; nname : string }
(** Critical-path backtracking exceeded its step budget; carries the net at
    which the walk gave up (arrival bookkeeping is inconsistent). *)

type breakdown = {
  b_wires : float;
  b_intrinsic : float;
  b_load_dep : float;
  b_setup : float;
  b_skew : float;
}

val breakdown_total : breakdown -> float

type step = {
  st_inst : int;       (** instance traversed *)
  st_in_pin : int;
  st_cell_delay : float;
  st_wire_delay : float;  (** wire Elmore into this cell's input *)
}

type endpoint =
  | At_ff_data of int   (** capturing flip-flop instance *)
  | At_output of int    (** output port id *)

type startpoint =
  | From_ff of int
  | From_input of int  (** input port id *)

type critical_path = {
  domain : int;
  t_cp : float;          (** ps; the minimum clock period this path allows *)
  fmax_mhz : float;
  breakdown : breakdown;
  endpoint : endpoint;
  startpoint : startpoint;
  steps : step list;     (** startpoint to endpoint order *)
  test_points_on_path : int;  (** Table 3's #TP_cp *)
  launch_latency : float;
  capture_latency : float;
}

type t = {
  arrival : float array;      (** worst arrival per net, ps *)
  slew : float array;         (** slew per net at the driver, ps *)
  slow_nodes : int;           (** cells with out-of-table (extrapolated) lookups *)
  per_domain : critical_path option array;
  worst : critical_path option;
}

val is_launch : Netlist.Design.instance -> bool
(** Clocked launch element in application mode (Dff/Sdff; the TSFF's
    clocked output only exists in test mode, so it times as a
    combinational cell). *)

val app_arcs : Stdcell.Cell.t -> Stdcell.Cell.arc list
(** Application-mode timing arcs: the cell's arcs minus test-only ones
    (blocked as false paths), in declaration order. *)

val timing_inputs : Netlist.Design.instance -> int list
(** Input pins that participate in application-mode timing: the clock pin
    for a launch element, else the from-pins of {!app_arcs}. *)

val level_par_min : int
(** Below this many instances a level bucket is evaluated inline rather
    than fanned across a pool. *)

val build_result :
  Netlist.Design.t ->
  elmore:(int -> inst:int -> pin:int -> float) ->
  arrival:float array ->
  slew:float array ->
  from_pin:int array ->
  slow_nodes:int ->
  t
(** Endpoint enumeration, critical-path backtracking and the eq. 3
    breakdown, from already-propagated per-net state. [elmore nid ~inst
    ~pin] must return the sink wire delay the propagation used. Shared by
    {!run} and the flat timing graph ({!Tgraph.analysis}) so both produce
    byte-identical reports. Bumps [sta.endpoints]; raises
    {!Backtrack_diverged} on inconsistent provenance. *)

val run :
  ?pool:Par.Pool.t -> ?config:config -> Layout.Place.t -> Layout.Extract.net_rc array -> t
(** Raises {!Combinational_cycle} on a combinational loop and
    {!Backtrack_diverged} if path reconstruction fails to terminate.

    With [pool], arrival propagation is levelized and each level bucket is
    evaluated across the pool's domains. Instances within a level write
    disjoint state (each owns its unique output net), so the result — every
    float, provenance index and slow-node flag — is bit-identical to the
    sequential pass at any domain count. *)

val pp_path : Netlist.Design.t -> Format.formatter -> critical_path -> unit
