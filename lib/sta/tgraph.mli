(** Flat structure-of-arrays timing graph (the ROADMAP's "flat-array
    netlist representation"): arrivals, slews, provenance, loads, sink
    Elmores, levels and application-mode timing arcs in flat int/float
    arrays, compiled once from the placed-and-extracted design and kept
    alive across netlist edits.

    {!propagate} + {!analysis} are byte-identical to {!Analysis.run} —
    same float-op order per arc, same [sta.arcs_evaluated] /
    [sta.endpoints] / [sta.slow_nodes] metrics, same critical-path report
    (both funnel through {!Analysis.build_result}). {!Incremental.retime}
    re-evaluates only a dirty cone on top of this graph.

    The graph mirrors a {e mutable} design. After editing the netlist,
    callers must (in order) {!sync_topology} with every net/instance they
    touched, then {!update_rc} each re-extracted net, then re-time. *)

type t

val compile :
  ?config:Analysis.config -> Netlist.Design.t -> Layout.Extract.net_rc array -> t
(** Build the flat mirror and levelize. Raises
    {!Analysis.Combinational_cycle} (same offender as [Analysis.run])
    on a combinational loop. Does not propagate. *)

val propagate : ?pool:Par.Pool.t -> t -> unit
(** Full from-seed level-ordered propagation. With [pool], level buckets
    fan across the pool with bit-identical results. *)

val analysis : t -> Analysis.t
(** Endpoint/critical-path report from the current propagated state, via
    {!Analysis.build_result}. *)

(** {1 Keeping the mirror in sync} *)

val update_rc : t -> int -> Layout.Extract.net_rc -> unit
(** Refresh one net's load and sink Elmores after re-extraction. *)

val sync_topology : t -> nets:int list -> insts:int list -> unit
(** Absorb netlist surgery: appended instances and nets are mirrored
    automatically; [nets]/[insts] must list every {e pre-existing} net
    whose driver/sink set changed and every pre-existing instance whose
    cell was swapped. Re-levelizes the affected cone (levels only rise).
    Also absorbs a shrink — a speculative-edit rollback that removed the
    newest instances/nets ({!Netlist.Design.remove_last_instance}) — by
    retiring their mirror slots and rebuilding the evaluation order.
    Raises {!Analysis.Combinational_cycle} if the edit closed a loop. *)

(** {1 Queries} *)

val num_nets : t -> int
val num_insts : t -> int
val level : t -> int -> int
val max_level : t -> int
val elmore : t -> int -> inst:int -> pin:int -> float
val arrival : t -> int -> float
val slew_of : t -> int -> float

(** {1 Required times and slacks} *)

val compute_required : t -> unit
(** Full backward pass: required arrival per net (setup checks at
    sequential data pins, min-propagated through combinational consumers;
    clock-network nets stay [+inf]). *)

val required : t -> int -> float
val net_slack : t -> int -> float option
(** [required - arrival] where both are finite. *)

val slack : t -> Slack.t
(** Endpoint setup slacks, equal to [Slack.report] on the same state. *)

val wns : t -> float

val critical_nets : t -> margin_ps:float -> int list
(** Nets whose slack is within [margin_ps] of the worst net slack —
    the post-layout truth handed to the lint [tpi-timing] pack
    (computes {!compute_required} on demand). Ascending net ids. *)

(**/**)

(* internal surface for Sta.Incremental *)

val reset_net : t -> int -> unit
val reset_slow : t -> int -> unit
val eval_inst : t -> Obs.Metrics.counter -> int -> unit
val out_net : t -> int -> int
val is_timing_input : t -> int -> int -> bool
val required_of : t -> int -> float
val net_level : t -> int -> int
val count_slow : t -> int
val design : t -> Netlist.Design.t
val arrival_arrays : t -> float array * float array * int array * int array
val required_array : t -> float array
val required_is_valid : t -> bool
val set_required_valid : t -> unit
val driver_of : t -> int -> int
val data_sinks_of_clock : t -> int -> int list
