module Design = Netlist.Design
module Cell = Stdcell.Cell
module Lut = Stdcell.Lut

type config = {
  input_slew_ps : float;
  input_arrival_ps : float;
}

let default_config = { input_slew_ps = 100.0; input_arrival_ps = 0.0 }

let m_arcs = Obs.Metrics.counter "sta.arcs_evaluated"
let m_endpoints = Obs.Metrics.counter "sta.endpoints"
let g_slow_nodes = Obs.Metrics.gauge "sta.slow_nodes"

exception Combinational_cycle of { inst : int; iname : string }
exception Backtrack_diverged of { net : int; nname : string }

let () =
  Printexc.register_printer (function
    | Combinational_cycle { inst; iname } ->
      Some (Printf.sprintf "Sta.Analysis.Combinational_cycle(inst %d, %s)" inst iname)
    | Backtrack_diverged { net; nname } ->
      Some (Printf.sprintf "Sta.Analysis.Backtrack_diverged(net %d, %s)" net nname)
    | _ -> None)

type breakdown = {
  b_wires : float;
  b_intrinsic : float;
  b_load_dep : float;
  b_setup : float;
  b_skew : float;
}

let breakdown_total b = b.b_wires +. b.b_intrinsic +. b.b_load_dep +. b.b_setup +. b.b_skew

type step = {
  st_inst : int;
  st_in_pin : int;
  st_cell_delay : float;
  st_wire_delay : float;
}

type endpoint =
  | At_ff_data of int
  | At_output of int

type startpoint =
  | From_ff of int
  | From_input of int

type critical_path = {
  domain : int;
  t_cp : float;
  fmax_mhz : float;
  breakdown : breakdown;
  endpoint : endpoint;
  startpoint : startpoint;
  steps : step list;
  test_points_on_path : int;
  launch_latency : float;
  capture_latency : float;
}

type t = {
  arrival : float array;
  slew : float array;
  slow_nodes : int;
  per_domain : critical_path option array;
  worst : critical_path option;
}

(* an instance is a launch element when its output is clocked: plain and
   scan flip-flops. The TSFF's clocked output only exists in test mode, so
   in application-mode STA it is a combinational cell (two mux delays,
   D -> Q) with a setup check at D. *)
let is_launch (i : Design.instance) =
  match i.Design.cell.Cell.kind with
  | Cell.Dff | Cell.Sdff -> true
  | _ -> false

let app_arcs (cell : Cell.t) =
  List.filter (fun (a : Cell.arc) -> not a.Cell.test_only) (Array.to_list cell.Cell.arcs)

(* timing input pins of an instance in application mode *)
let timing_inputs (i : Design.instance) =
  if is_launch i then
    match Cell.clock_pin i.Design.cell with Some ck -> [ ck ] | None -> []
  else List.map (fun (a : Cell.arc) -> a.Cell.from_pin) (app_arcs i.Design.cell)

(* below this many instances a level is evaluated inline: the fork-join
   hand-shake would cost more than the arithmetic *)
let level_par_min = 16

(* ---- shared result construction ----

   Everything after arrival propagation — endpoint enumeration, path
   backtracking, the eq. 3 breakdown — reads the propagated state only
   through the arrival/slew/provenance arrays and a sink-Elmore lookup.
   Factoring it out lets the flat timing graph (Tgraph) reuse the exact
   same code path, which is what keeps its reports byte-identical to
   [run]'s. *)
let build_result (d : Design.t) ~elmore ~(arrival : float array) ~(slew : float array)
    ~(from_pin : int array) ~slow_nodes =
  let pin_arrival nid iid pin = arrival.(nid) +. elmore nid ~inst:iid ~pin in
  (* backtrack from a (net, sink inst, sink pin) to the path's start *)
  let backtrack end_net end_inst end_pin =
    let steps = ref [] in
    let rec walk nid iid pin guard =
      if guard > 100_000 then
        raise (Backtrack_diverged { net = nid; nname = (Design.net d nid).Design.nname });
      let wire = elmore nid ~inst:iid ~pin in
      match (Design.net d nid).Design.driver with
      | Design.Port_in pid ->
        steps := { st_inst = -1; st_in_pin = -1; st_cell_delay = 0.0; st_wire_delay = wire } :: !steps;
        From_input pid
      | Design.No_driver -> From_input (-1)
      | Design.Cell_pin (src, _) ->
        let s = Design.inst d src in
        (match s.Design.cell.Cell.kind with
         | Cell.Tiehi | Cell.Tielo -> From_input (-1)
         | _ ->
           let in_pin = from_pin.(nid) in
           (* reconstruct this cell's delay for the step record *)
           let cell_delay =
             let in_net = if in_pin >= 0 then s.Design.conns.(in_pin) else -1 in
             if in_net >= 0 then arrival.(nid) -. arrival.(in_net)
               -. elmore in_net ~inst:src ~pin:in_pin
             else 0.0
           in
           steps :=
             { st_inst = src; st_in_pin = in_pin; st_cell_delay = cell_delay;
               st_wire_delay = wire }
             :: !steps;
           if is_launch s then From_ff src
           else begin
             let in_net = s.Design.conns.(in_pin) in
             walk in_net src in_pin (guard + 1)
           end)
    in
    let start = walk end_net end_inst end_pin 0 in
    (start, !steps)
  in
  let ck_arrival iid =
    let i = Design.inst d iid in
    match Cell.clock_pin i.Design.cell with
    | Some ck ->
      let cknet = i.Design.conns.(ck) in
      if cknet >= 0 && arrival.(cknet) > neg_infinity then
        arrival.(cknet) +. elmore cknet ~inst:iid ~pin:ck
      else 0.0
    | None -> 0.0
  in
  (* candidate endpoints: every sequential D pin (incl. TSFF) *)
  let per_domain, worst =
    Obs.Trace.with_span ~name:"sta.paths" (fun () ->
  let candidates = ref [] in
  Design.iter_insts d (fun i ->
      if i.Design.cell.Cell.sequential then begin
        match Cell.data_pin i.Design.cell with
        | Some dp ->
          let dnet = i.Design.conns.(dp) in
          if dnet >= 0 && arrival.(dnet) > neg_infinity then begin
            let arr_d = pin_arrival dnet i.Design.id dp in
            let t_cp = arr_d +. i.Design.cell.Cell.setup -. ck_arrival i.Design.id in
            candidates := (t_cp, i.Design.domain, dnet, i.Design.id, dp) :: !candidates
          end
        | None -> ()
      end);
  Obs.Metrics.add m_endpoints (List.length !candidates);
  let sorted = List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare b a) !candidates in
  let num_domains = Array.length d.Design.domains in
  let per_domain = Array.make (max num_domains 1) None in
  let build_path (t_cp, dom, dnet, iid, dp) =
    let startpoint, steps = backtrack dnet iid dp in
    (* cross-domain paths are false paths *)
    let same_domain =
      match startpoint with
      | From_ff src -> (Design.inst d src).Design.domain = dom
      | From_input _ -> true
    in
    if not same_domain then None
    else begin
      let launch_latency =
        match startpoint with From_ff src -> ck_arrival src | From_input _ -> 0.0
      in
      let capture_latency = ck_arrival iid in
      let setup = (Design.inst d iid).Design.cell.Cell.setup in
      let b_wires = List.fold_left (fun acc s -> acc +. s.st_wire_delay) 0.0 steps in
      let tps = ref 0 in
      let b_intrinsic = ref 0.0 and b_load_dep = ref 0.0 in
      List.iter
        (fun s ->
          if s.st_inst >= 0 then begin
            let cell = (Design.inst d s.st_inst).Design.cell in
            if cell.Cell.kind = Cell.Tsff then incr tps;
            let arc =
              List.find_opt (fun (a : Cell.arc) -> a.Cell.from_pin = s.st_in_pin)
                (app_arcs cell)
            in
            match arc with
            | Some a ->
              let intr = Lut.corner a.Cell.delay in
              b_intrinsic := !b_intrinsic +. intr;
              b_load_dep := !b_load_dep +. Float.max 0.0 (s.st_cell_delay -. intr)
            | None -> ()
          end)
        steps;
      let breakdown =
        { b_wires;
          b_intrinsic = !b_intrinsic;
          b_load_dep = !b_load_dep;
          b_setup = setup;
          b_skew = launch_latency -. capture_latency }
      in
      Some
        { domain = dom;
          t_cp;
          fmax_mhz = (if t_cp > 0.0 then 1e6 /. t_cp else infinity);
          breakdown;
          endpoint = At_ff_data iid;
          startpoint;
          steps;
          test_points_on_path = !tps;
          launch_latency;
          capture_latency }
    end
  in
  List.iter
    (fun ((_, dom, _, _, _) as cand) ->
      let dom = max dom 0 in
      if dom < Array.length per_domain && per_domain.(dom) = None then
        match build_path cand with
        | Some p -> per_domain.(dom) <- Some p
        | None -> ())
    sorted;
  let worst =
    Array.fold_left
      (fun acc p ->
        match (acc, p) with
        | None, p -> p
        | Some a, Some b -> if b.t_cp > a.t_cp then Some b else Some a
        | Some a, None -> Some a)
      None per_domain
  in
  (per_domain, worst))
  in
  { arrival; slew; slow_nodes; per_domain; worst }

let run ?pool ?(config = default_config) (pl : Layout.Place.t) (rc : Layout.Extract.net_rc array) =
  let d = pl.Layout.Place.design in
  let nn = Design.num_nets d in
  let arrival = Array.make nn neg_infinity in
  let slew = Array.make nn config.input_slew_ps in
  (* which (instance, input pin) set each net's worst arrival *)
  let from_inst = Array.make nn (-1) and from_pin = Array.make nn (-1) in
  let slow_flag = Array.make (Design.num_insts d) false in
  (* seed: ports and constants *)
  List.iter
    (fun (p : Design.port) ->
      if p.Design.pnet >= 0 then begin
        arrival.(p.Design.pnet) <- config.input_arrival_ps;
        slew.(p.Design.pnet) <- config.input_slew_ps
      end)
    (Design.input_ports d);
  Design.iter_insts d (fun i ->
      match i.Design.cell.Cell.kind with
      | Cell.Tiehi | Cell.Tielo ->
        let out = Design.net_of_output d i in
        if out >= 0 then begin
          arrival.(out) <- 0.0;
          slew.(out) <- config.input_slew_ps
        end
      | _ -> ());
  (* Kahn order over instances: a cell is ready when all nets feeding its
     timing input pins have been finalised *)
  let pending = Array.make (Design.num_insts d) 0 in
  let driven_by_cell nid =
    match (Design.net d nid).Design.driver with
    | Design.Cell_pin (src, _) ->
      let s = Design.inst d src in
      (match s.Design.cell.Cell.kind with
       | Cell.Tiehi | Cell.Tielo | Cell.Filler -> None
       | _ -> Some src)
    | Design.Port_in _ | Design.No_driver -> None
  in
  let queue = Queue.create () in
  let considered = Array.make (Design.num_insts d) false in
  Design.iter_insts d (fun i ->
      match i.Design.cell.Cell.kind with
      | Cell.Filler | Cell.Tiehi | Cell.Tielo -> ()
      | _ ->
        considered.(i.Design.id) <- true;
        let count = ref 0 in
        List.iter
          (fun pin ->
            let nid = i.Design.conns.(pin) in
            if nid >= 0 && driven_by_cell nid <> None then incr count)
          (timing_inputs i);
        pending.(i.Design.id) <- !count;
        if !count = 0 then Queue.add i.Design.id queue);
  let processed = ref 0 and total = ref 0 in
  Array.iter (fun c -> if c then incr total) considered;
  let pin_arrival nid iid pin =
    arrival.(nid) +. Layout.Extract.sink_elmore rc.(nid) ~inst:iid ~pin
  in
  let pin_slew nid iid pin =
    slew.(nid) +. (2.0 *. Layout.Extract.sink_elmore rc.(nid) ~inst:iid ~pin)
  in
  (* evaluate one instance's arcs: reads finalised arrivals of its input
     nets, writes only cells owned by this instance (its unique output
     net's arrival/slew/provenance and its own slow flag), so instances of
     the same topological level can be evaluated concurrently — and in any
     order — without changing a single bit of the result *)
  let eval_inst iid =
    let i = Design.inst d iid in
    let cell = i.Design.cell in
    let update_out out_net cand_arr cand_slew pin extrapolated =
      Obs.Metrics.incr m_arcs;
      if cand_arr > arrival.(out_net) then begin
        arrival.(out_net) <- cand_arr;
        slew.(out_net) <- cand_slew;
        from_inst.(out_net) <- iid;
        from_pin.(out_net) <- pin
      end;
      if extrapolated then slow_flag.(iid) <- true
    in
    match is_launch i with
    | true ->
      (match Cell.clock_pin cell with
       | Some ck ->
         let cknet = i.Design.conns.(ck) in
         if cknet >= 0 && arrival.(cknet) > neg_infinity then begin
           let ck_arr = pin_arrival cknet iid ck and ck_slew = pin_slew cknet iid ck in
           List.iter
             (fun (a : Cell.arc) ->
               if a.Cell.from_pin = ck then begin
                 let out_net = i.Design.conns.(a.Cell.to_pin) in
                 if out_net >= 0 then begin
                   let load = rc.(out_net).Layout.Extract.total_cap_ff in
                   let dl = Lut.eval a.Cell.delay ~slew:ck_slew ~load in
                   let sl = Lut.eval a.Cell.out_slew ~slew:ck_slew ~load in
                   update_out out_net (ck_arr +. dl.Lut.value) sl.Lut.value ck
                     (dl.Lut.extrapolated || sl.Lut.extrapolated)
                 end
               end)
             (app_arcs cell)
         end
       | None -> ())
    | false ->
      List.iter
        (fun (a : Cell.arc) ->
          let in_net = i.Design.conns.(a.Cell.from_pin) in
          let out_net = i.Design.conns.(a.Cell.to_pin) in
          if in_net >= 0 && out_net >= 0 && arrival.(in_net) > neg_infinity then begin
            let pa = pin_arrival in_net iid a.Cell.from_pin in
            let ps = pin_slew in_net iid a.Cell.from_pin in
            let load = rc.(out_net).Layout.Extract.total_cap_ff in
            let dl = Lut.eval a.Cell.delay ~slew:ps ~load in
            let sl = Lut.eval a.Cell.out_slew ~slew:ps ~load in
            update_out out_net (pa +. dl.Lut.value) sl.Lut.value a.Cell.from_pin
              (dl.Lut.extrapolated || sl.Lut.extrapolated)
          end)
        (app_arcs cell)
  in
  (* release an instance's dependents; [on_edge sink] fires once per
     released timing edge (the levelizer uses it to take the max) *)
  let release ~on_edge iid =
    let i = Design.inst d iid in
    match Design.net_of_output d i with
    | -1 -> ()
    | out_net ->
      List.iter
        (fun (sink, pin) ->
          let s = Design.inst d sink in
          if considered.(sink) && List.mem pin (timing_inputs s) then begin
            on_edge sink;
            pending.(sink) <- pending.(sink) - 1;
            if pending.(sink) = 0 then Queue.add sink queue
          end)
        (Design.net d out_net).Design.sinks
  in
  Obs.Trace.with_span ~name:"sta.propagate" (fun () ->
  (match pool with
   | Some p when Par.Pool.size p > 1 ->
     (* level-parallel propagation: run the Kahn mechanics first, purely
        to levelize (level = 1 + max level over released timing edges),
        then evaluate each level bucket across the pool. Values are
        bit-identical to the sequential pass because evaluation order
        within a level is immaterial (see [eval_inst]). *)
     let ninsts = Design.num_insts d in
     let level = Array.make ninsts 0 in
     let order = Queue.create () in
     let max_level = ref 0 in
     while not (Queue.is_empty queue) do
       let iid = Queue.pop queue in
       incr processed;
       Queue.add iid order;
       if level.(iid) > !max_level then max_level := level.(iid);
       release iid ~on_edge:(fun sink ->
           if level.(iid) + 1 > level.(sink) then level.(sink) <- level.(iid) + 1)
     done;
     let buckets = Array.make (!max_level + 1) [] in
     Queue.iter (fun iid -> buckets.(level.(iid)) <- iid :: buckets.(level.(iid))) order;
     Array.iter
       (fun bucket ->
         let barr = Array.of_list bucket in
         let nb = Array.length barr in
         if nb < level_par_min then Array.iter eval_inst barr
         else
           Par.Pool.iter_slots p ~n:nb (fun ~slot:_ ~lo ~hi ->
               for k = lo to hi - 1 do
                 eval_inst barr.(k)
               done))
       buckets
   | _ ->
     while not (Queue.is_empty queue) do
       let iid = Queue.pop queue in
       incr processed;
       eval_inst iid;
       release iid ~on_edge:(fun _ -> ())
     done);
  if !processed <> !total then begin
    (* name a cell stuck on the cycle: considered but never released *)
    let offender = ref (-1) in
    Design.iter_insts d (fun i ->
        if !offender < 0 && considered.(i.Design.id) && pending.(i.Design.id) > 0 then
          offender := i.Design.id);
    let iname = if !offender >= 0 then (Design.inst d !offender).Design.iname else "?" in
    raise (Combinational_cycle { inst = !offender; iname })
  end);
  let slow_nodes = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 slow_flag in
  Obs.Metrics.set g_slow_nodes (float_of_int slow_nodes);
  build_result d ~arrival ~slew ~from_pin ~slow_nodes
    ~elmore:(fun nid ~inst ~pin -> Layout.Extract.sink_elmore rc.(nid) ~inst ~pin)

let pp_path (d : Design.t) ppf p =
  let name iid = (Design.inst d iid).Design.iname in
  Format.fprintf ppf
    "@[<v>domain %d: T_cp = %.0f ps (F_max = %.1f MHz), %d test points on path@ \
     wires %.0f + intrinsic %.0f + load-dep %.0f + setup %.0f + skew %.0f@ "
    p.domain p.t_cp p.fmax_mhz p.test_points_on_path p.breakdown.b_wires
    p.breakdown.b_intrinsic p.breakdown.b_load_dep p.breakdown.b_setup p.breakdown.b_skew;
  (match p.startpoint with
   | From_ff i -> Format.fprintf ppf "from %s" (name i)
   | From_input pid -> Format.fprintf ppf "from input port %d" pid);
  (match p.endpoint with
   | At_ff_data i -> Format.fprintf ppf " to %s" (name i)
   | At_output pid -> Format.fprintf ppf " to output port %d" pid);
  Format.fprintf ppf " (%d cells)@]" (List.length p.steps)
