(* Worklist-driven incremental re-timing on the flat graph.

   Given the nets an edit physically touched (re-extracted parasitics,
   split/rewired connectivity) and the instances it edited (resizes,
   fresh cells), seed the worklist with the dirty frontier — each dirty
   net's driver plus its timing consumers — and re-evaluate level by
   level. An instance re-eval resets its output net to the propagation
   seed and replays its arcs in declaration order, which reproduces bit
   for bit what a from-scratch pass computes for that net; propagation
   stops at nets whose (arrival, slew, provenance) came out unchanged.
   Required times are then patched backward from the nets that changed.

   The contract (DESIGN.md §6.6): after [Tgraph.sync_topology] and
   [update_rc] for every touched net, [retime] leaves the graph in the
   exact state a full [Tgraph.propagate] would — enforced by the QCheck
   random-ECO property and the full-vs-incremental CI diff.

   Bookkeeping lands in its own [sta.incremental.*] counters, never in
   the full-STA ones, so full-mode and incremental-mode sweeps stay
   metric-identical modulo that namespace. *)

module Design = Netlist.Design

let m_retimes = Obs.Metrics.counter "sta.incremental.retimes"
let m_arcs = Obs.Metrics.counter "sta.incremental.arcs_evaluated"
let m_insts = Obs.Metrics.counter "sta.incremental.insts_evaluated"
let m_changed = Obs.Metrics.counter "sta.incremental.nets_changed"
let m_settled = Obs.Metrics.counter "sta.incremental.nets_settled"
let m_required = Obs.Metrics.counter "sta.incremental.required_patched"
let g_slow_nodes = Obs.Metrics.gauge "sta.slow_nodes"

type stats = {
  insts_evaluated : int;   (* instances re-evaluated forward *)
  nets_changed : int;      (* nets whose (arrival, slew, provenance) moved *)
  nets_settled : int;      (* re-evaluated outputs that came out unchanged *)
  required_patched : int;  (* nets whose required time was recomputed *)
}

let same_float a b = Int64.bits_of_float a = Int64.bits_of_float b

(* ---- forward: level-bucketed worklist ---- *)

let retime t ~dirty_nets ~dirty_insts =
  Obs.Metrics.incr m_retimes;
  let d = Tgraph.design t in
  let arrival, slew, from_inst, from_pin = Tgraph.arrival_arrays t in
  let ni = Tgraph.num_insts t in
  let nlev = Tgraph.max_level t + 1 in
  let buckets = Array.make nlev [] in
  let queued = Array.make ni false in
  let enqueue iid =
    if iid >= 0 && iid < ni && not queued.(iid) then begin
      queued.(iid) <- true;
      buckets.(Tgraph.level t iid) <- iid :: buckets.(Tgraph.level t iid)
    end
  in
  let consumers_of nid f =
    List.iter
      (fun (sid, pin) -> if Tgraph.is_timing_input t sid pin then f sid)
      (Design.net d nid).Design.sinks
  in
  (* frontier: a dirty net's parasitics feed both its driver (load) and
     its consumers (sink arrival/slew) *)
  List.iter
    (fun nid ->
      enqueue (Tgraph.driver_of t nid);
      consumers_of nid enqueue)
    dirty_nets;
  List.iter enqueue dirty_insts;
  let insts_evaluated = ref 0 in
  let nets_changed = ref 0 and nets_settled = ref 0 in
  let changed_nets = ref [] in
  for l = 0 to nlev - 1 do
    List.iter
      (fun iid ->
        queued.(iid) <- false;
        incr insts_evaluated;
        Obs.Metrics.incr m_insts;
        Tgraph.reset_slow t iid;
        match Tgraph.out_net t iid with
        | -1 -> ()
        | on ->
          let old_arr = arrival.(on) and old_slew = slew.(on) in
          let old_fi = from_inst.(on) and old_fp = from_pin.(on) in
          Tgraph.reset_net t on;
          Tgraph.eval_inst t m_arcs iid;
          if
            same_float old_arr arrival.(on)
            && same_float old_slew slew.(on)
            && old_fi = from_inst.(on) && old_fp = from_pin.(on)
          then begin
            incr nets_settled;
            Obs.Metrics.incr m_settled
          end
          else begin
            incr nets_changed;
            Obs.Metrics.incr m_changed;
            changed_nets := on :: !changed_nets;
            consumers_of on enqueue
          end)
      (List.rev buckets.(l))
  done;
  Obs.Metrics.set g_slow_nodes (float_of_int (Tgraph.count_slow t));
  (* ---- backward: patch required times where the forward pass moved ---- *)
  let required_patched = ref 0 in
  if Tgraph.required_is_valid t then begin
    let required = Tgraph.required_array t in
    let nn = Tgraph.num_nets t in
    let nqueued = Array.make nn false in
    let nbuckets = Array.make nlev [] in
    let nenqueue nid =
      if nid >= 0 && nid < nn && not nqueued.(nid) then begin
        nqueued.(nid) <- true;
        nbuckets.(Tgraph.net_level t nid) <- nid :: nbuckets.(Tgraph.net_level t nid)
      end
    in
    (* a net's required moves when its own forward state or parasitics
       moved, when a consumer net's load changed, or — for data nets —
       when the clock arrival at a capturing element moved *)
    let seed nid =
      nenqueue nid;
      let drv = Tgraph.driver_of t nid in
      if drv >= 0 then begin
        let i = Design.inst d drv in
        Array.iter (fun inn -> if inn >= 0 && inn <> nid then nenqueue inn) i.Design.conns
      end;
      List.iter nenqueue (Tgraph.data_sinks_of_clock t nid)
    in
    List.iter seed !changed_nets;
    List.iter seed dirty_nets;
    for l = nlev - 1 downto 0 do
      List.iter
        (fun nid ->
          nqueued.(nid) <- false;
          let r = Tgraph.required_of t nid in
          incr required_patched;
          Obs.Metrics.incr m_required;
          if not (same_float r required.(nid)) then begin
            required.(nid) <- r;
            (* propagate upstream: the driver's input nets read this
               required *)
            let drv = Tgraph.driver_of t nid in
            if drv >= 0 then begin
              let i = Design.inst d drv in
              Array.iter (fun inn -> if inn >= 0 then nenqueue inn) i.Design.conns
            end
          end)
        nbuckets.(l)
    done;
    Tgraph.set_required_valid t
  end;
  { insts_evaluated = !insts_evaluated;
    nets_changed = !nets_changed;
    nets_settled = !nets_settled;
    required_patched = !required_patched }
