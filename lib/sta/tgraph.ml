(* Flat structure-of-arrays timing graph.

   Compiled once from the extracted design, then kept alive across edits:
   arrivals, slews, provenance, loads, sink Elmores, levels and timing
   arcs all live in flat int/float arrays indexed by net/instance/arc id —
   no per-node records on the hot path. [propagate] re-times the whole
   design from seeds and is byte-identical to [Analysis.run] (same float
   op order per arc, same [sta.arcs_evaluated]/[sta.endpoints] counters,
   same critical-path report via the shared [Analysis.build_result]);
   [Incremental.retime] re-evaluates only a dirty cone.

   Mutators keep the mirror in sync with the (mutable) design:
   [update_rc] refreshes one net's parasitics after re-extraction,
   [sync_topology] absorbs appended instances/nets and rewired pins and
   incrementally re-levelizes the affected cone (levels only ever rise —
   netlist surgery here only lengthens paths). *)

module Design = Netlist.Design
module Cell = Stdcell.Cell
module Lut = Stdcell.Lut

(* same interned cells as Analysis: full propagation on the graph must
   move the same counters by the same amounts as [Analysis.run] *)
let m_arcs = Obs.Metrics.counter "sta.arcs_evaluated"
let g_slow_nodes = Obs.Metrics.gauge "sta.slow_nodes"

let empty_ints : int array = [||]
let empty_floats : float array = [||]

(* sink-Elmore keys pack (instance, pin): pin indices are < 8 for every
   cell kind (Tsff has 6 pins) *)
let elm_key ~inst ~pin = (inst lsl 4) lor (pin land 15)

type t = {
  d : Design.t;
  config : Analysis.config;
  (* --- per-net (length >= num_nets d; [nn] live) --- *)
  mutable nn : int;
  mutable arrival : float array;
  mutable slew : float array;
  mutable from_inst : int array;
  mutable from_pin : int array;
  mutable seed_arr : float array;       (* arrival reset value per net *)
  mutable total_cap : float array;      (* load the net's driver sees, fF *)
  mutable elm_keys : int array array;   (* per net, in rc sink_delays order *)
  mutable elm_vals : float array array;
  mutable driver : int array;           (* considered driving instance or -1 *)
  mutable required : float array;       (* required arrival at driver output *)
  (* --- per-instance (length >= num_insts d; [ni] live) --- *)
  mutable ni : int;
  mutable considered : bool array;
  mutable launch : bool array;
  mutable slow : bool array;
  mutable level : int array;
  mutable ck_pin : int array;           (* clock pin index or -1 *)
  mutable out_pin : int array;          (* output pin index or -1 *)
  mutable arc_lo : int array;           (* CSR range into the arc arrays *)
  mutable arc_hi : int array;
  (* --- flat application-mode arcs (append-only CSR) --- *)
  mutable na : int;
  mutable a_from : int array;
  mutable a_to : int array;
  mutable a_arc : Cell.arc array;
  (* --- levelization --- *)
  mutable max_level : int;
  mutable order : int array;            (* considered insts, (level, id) order *)
  mutable order_valid : bool;
  mutable required_valid : bool;
}

let num_nets t = t.nn
let num_insts t = t.ni
let level t iid = t.level.(iid)
let max_level t = t.max_level

let elmore t nid ~inst ~pin =
  let keys = t.elm_keys.(nid) in
  let key = elm_key ~inst ~pin in
  let n = Array.length keys in
  let rec find k =
    if k >= n then 0.0 else if keys.(k) = key then t.elm_vals.(nid).(k) else find (k + 1)
  in
  find 0

(* ---- array growth ---- *)

let grow_floats a n fill =
  let b = Array.make n fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_ints a n fill =
  let b = Array.make n fill in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_bools a n =
  let b = Array.make n false in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_ints_arr a n =
  let b = Array.make n empty_ints in
  Array.blit a 0 b 0 (Array.length a);
  b

let grow_floats_arr a n =
  let b = Array.make n empty_floats in
  Array.blit a 0 b 0 (Array.length a);
  b

let ensure_net_capacity t n =
  let cap = Array.length t.arrival in
  if n > cap then begin
    let c = max n (max 16 (2 * cap)) in
    t.arrival <- grow_floats t.arrival c neg_infinity;
    t.slew <- grow_floats t.slew c t.config.Analysis.input_slew_ps;
    t.from_inst <- grow_ints t.from_inst c (-1);
    t.from_pin <- grow_ints t.from_pin c (-1);
    t.seed_arr <- grow_floats t.seed_arr c neg_infinity;
    t.total_cap <- grow_floats t.total_cap c 0.0;
    t.elm_keys <- grow_ints_arr t.elm_keys c;
    t.elm_vals <- grow_floats_arr t.elm_vals c;
    t.driver <- grow_ints t.driver c (-1);
    t.required <- grow_floats t.required c infinity
  end

let ensure_inst_capacity t n =
  let cap = Array.length t.level in
  if n > cap then begin
    let c = max n (max 16 (2 * cap)) in
    t.considered <- grow_bools t.considered c;
    t.launch <- grow_bools t.launch c;
    t.slow <- grow_bools t.slow c;
    t.level <- grow_ints t.level c 0;
    t.ck_pin <- grow_ints t.ck_pin c (-1);
    t.out_pin <- grow_ints t.out_pin c (-1);
    t.arc_lo <- grow_ints t.arc_lo c 0;
    t.arc_hi <- grow_ints t.arc_hi c 0
  end

(* [filler] seeds the slots of a freshly grown arc array; every live slot
   is overwritten by [sync_inst] before any read *)
let ensure_arc_capacity t n ~filler =
  let cap = Array.length t.a_from in
  if n > cap then begin
    let c = max n (max 32 (2 * cap)) in
    t.a_from <- grow_ints t.a_from c (-1);
    t.a_to <- grow_ints t.a_to c (-1);
    let b = Array.make c (if cap > 0 then t.a_arc.(0) else filler) in
    Array.blit t.a_arc 0 b 0 cap;
    t.a_arc <- b
  end

(* ---- mirroring the design ---- *)

let considered_kind = function
  | Cell.Filler | Cell.Tiehi | Cell.Tielo -> false
  | _ -> true

(* out-pin is a timing input when it feeds an application-mode arc (the
   clock pin for launch elements): the release predicate of Analysis *)
let is_timing_input t iid pin =
  if t.launch.(iid) then pin = t.ck_pin.(iid)
  else begin
    let rec scan k = k < t.arc_hi.(iid) && (t.a_from.(k) = pin || scan (k + 1)) in
    scan t.arc_lo.(iid)
  end

let update_rc t nid (rc : Layout.Extract.net_rc) =
  t.total_cap.(nid) <- rc.Layout.Extract.total_cap_ff;
  let sd = rc.Layout.Extract.sink_delays in
  let k = List.length sd in
  if k = 0 then begin
    t.elm_keys.(nid) <- empty_ints;
    t.elm_vals.(nid) <- empty_floats
  end
  else begin
    let keys = Array.make k 0 and vals = Array.make k 0.0 in
    List.iteri
      (fun j (s : Layout.Extract.sink_rc) ->
        keys.(j) <- elm_key ~inst:s.Layout.Extract.s_inst ~pin:s.Layout.Extract.s_pin;
        vals.(j) <- s.Layout.Extract.elmore_ps)
      sd;
    t.elm_keys.(nid) <- keys;
    t.elm_vals.(nid) <- vals
  end;
  t.required_valid <- false

(* refresh one net's seed/driver mirror from the design *)
let sync_net t nid =
  let n = Design.net t.d nid in
  (match n.Design.driver with
   | Design.Port_in _ -> t.seed_arr.(nid) <- t.config.Analysis.input_arrival_ps
   | Design.Cell_pin (src, _) ->
     (match (Design.inst t.d src).Design.cell.Cell.kind with
      | Cell.Tiehi | Cell.Tielo -> t.seed_arr.(nid) <- 0.0
      | _ -> t.seed_arr.(nid) <- neg_infinity)
   | Design.No_driver -> t.seed_arr.(nid) <- neg_infinity);
  t.driver.(nid) <-
    (match n.Design.driver with
     | Design.Cell_pin (src, _)
       when considered_kind (Design.inst t.d src).Design.cell.Cell.kind -> src
     | _ -> -1)

(* (re)mirror one instance: cell kind flags and its CSR arc block. A cell
   swap with the same arc count (the resize case) rewrites the block in
   place; a different count appends a fresh block (the old one leaks, by
   design — instances are never deleted and blocks are small). *)
let sync_inst t iid =
  let i = Design.inst t.d iid in
  let cell = i.Design.cell in
  t.considered.(iid) <- considered_kind cell.Cell.kind;
  t.launch.(iid) <- Analysis.is_launch i;
  t.ck_pin.(iid) <- (match Cell.clock_pin cell with Some p -> p | None -> -1);
  t.out_pin.(iid) <-
    (match cell.Cell.kind with Cell.Filler -> -1 | _ -> Cell.output_pin cell);
  let arcs = Analysis.app_arcs cell in
  let k = List.length arcs in
  if t.arc_hi.(iid) - t.arc_lo.(iid) <> k then begin
    if k > 0 then ensure_arc_capacity t (t.na + k) ~filler:(List.hd arcs);
    t.arc_lo.(iid) <- t.na;
    t.arc_hi.(iid) <- t.na + k;
    t.na <- t.na + k
  end;
  List.iteri
    (fun j (a : Cell.arc) ->
      let p = t.arc_lo.(iid) + j in
      t.a_from.(p) <- a.Cell.from_pin;
      t.a_to.(p) <- a.Cell.to_pin;
      t.a_arc.(p) <- a)
    arcs

let out_net t iid =
  let op = t.out_pin.(iid) in
  if op < 0 then -1 else (Design.inst t.d iid).Design.conns.(op)

(* ---- levelization ---- *)

(* structural Kahn pass: assigns levels (1 + max over released timing
   edges), detects combinational cycles with the same offender rule as
   Analysis (first considered instance, in id order, still pending) *)
let levelize t =
  let d = t.d in
  let pending = Array.make t.ni 0 in
  let queue = Queue.create () in
  let total = ref 0 and processed = ref 0 in
  Design.iter_insts d (fun i ->
      let iid = i.Design.id in
      t.level.(iid) <- 0;
      if t.considered.(iid) then begin
        incr total;
        let count = ref 0 in
        if t.launch.(iid) then begin
          let ck = t.ck_pin.(iid) in
          if ck >= 0 then begin
            let nid = i.Design.conns.(ck) in
            if nid >= 0 && t.driver.(nid) >= 0 then incr count
          end
        end
        else
          for k = t.arc_lo.(iid) to t.arc_hi.(iid) - 1 do
            let nid = i.Design.conns.(t.a_from.(k)) in
            if nid >= 0 && t.driver.(nid) >= 0 then incr count
          done;
        pending.(iid) <- !count;
        if !count = 0 then Queue.add iid queue
      end);
  t.max_level <- 0;
  while not (Queue.is_empty queue) do
    let iid = Queue.pop queue in
    incr processed;
    if t.level.(iid) > t.max_level then t.max_level <- t.level.(iid);
    (match out_net t iid with
     | -1 -> ()
     | on ->
       List.iter
         (fun (sink, pin) ->
           if t.considered.(sink) && is_timing_input t sink pin then begin
             if t.level.(iid) + 1 > t.level.(sink) then t.level.(sink) <- t.level.(iid) + 1;
             pending.(sink) <- pending.(sink) - 1;
             if pending.(sink) = 0 then Queue.add sink queue
           end)
         (Design.net d on).Design.sinks)
  done;
  if !processed <> !total then begin
    let offender = ref (-1) in
    Design.iter_insts d (fun i ->
        if !offender < 0 && t.considered.(i.Design.id) && pending.(i.Design.id) > 0 then
          offender := i.Design.id);
    let iname = if !offender >= 0 then (Design.inst d !offender).Design.iname else "?" in
    raise (Analysis.Combinational_cycle { inst = !offender; iname })
  end

let rebuild_order t =
  let buckets = Array.make (t.max_level + 1) [] in
  (* iterate ids descending so each bucket list ends up in ascending id order *)
  for iid = t.ni - 1 downto 0 do
    if t.considered.(iid) then buckets.(t.level.(iid)) <- iid :: buckets.(t.level.(iid))
  done;
  let count = ref 0 in
  Array.iter (fun b -> count := !count + List.length b) buckets;
  let order = Array.make !count 0 in
  let k = ref 0 in
  Array.iter
    (List.iter (fun iid ->
         order.(!k) <- iid;
         incr k))
    buckets;
  t.order <- order;
  t.order_valid <- true

(* monotone incremental re-levelization: raise levels in the cone below
   the given seeds until consistent. Netlist edits only append logic, so
   levels never need to fall; a level driven past the instance count can
   only mean the edit closed a combinational cycle. *)
let relevel t ~seeds =
  let d = t.d in
  let inq = Array.make t.ni false in
  let q = Queue.create () in
  let push iid =
    if iid >= 0 && iid < t.ni && t.considered.(iid) && not inq.(iid) then begin
      inq.(iid) <- true;
      Queue.add iid q
    end
  in
  List.iter push seeds;
  while not (Queue.is_empty q) do
    let iid = Queue.pop q in
    inq.(iid) <- false;
    let i = Design.inst d iid in
    let lr = ref 0 in
    let consider nid =
      if nid >= 0 && t.driver.(nid) >= 0 then begin
        let l = t.level.(t.driver.(nid)) + 1 in
        if l > !lr then lr := l
      end
    in
    if t.launch.(iid) then begin
      if t.ck_pin.(iid) >= 0 then consider i.Design.conns.(t.ck_pin.(iid))
    end
    else
      for k = t.arc_lo.(iid) to t.arc_hi.(iid) - 1 do
        consider i.Design.conns.(t.a_from.(k))
      done;
    if !lr > t.ni then
      raise (Analysis.Combinational_cycle { inst = iid; iname = i.Design.iname });
    if !lr > t.level.(iid) then begin
      t.level.(iid) <- !lr;
      if !lr > t.max_level then t.max_level <- !lr;
      t.order_valid <- false;
      match out_net t iid with
      | -1 -> ()
      | on ->
        List.iter
          (fun (sink, pin) ->
            if t.considered.(sink) && is_timing_input t sink pin
               && t.level.(sink) <= !lr then
              push sink)
          (Design.net d on).Design.sinks
    end
  done

let sync_topology t ~nets ~insts =
  let d = t.d in
  let old_ni = t.ni and old_nn = t.nn in
  ensure_inst_capacity t (Design.num_insts d);
  ensure_net_capacity t (Design.num_nets d);
  t.ni <- Design.num_insts d;
  t.nn <- Design.num_nets d;
  (* shrink: a speculative-edit rollback (Design.remove_last_instance/net)
     dropped the
     newest cells/nets. Their slots go stale — harmless, every live read is
     bounded by [ni]/[nn] and regrowth re-syncs them — but the evaluation
     order may still list a dead instance, so it must be rebuilt. Levels of
     surviving instances are left as they are: a level raised by the undone
     edit still over-approximates, which is all propagation order needs. *)
  if t.ni < old_ni || t.nn < old_nn then t.order_valid <- false;
  (* growth: a fresh instance may land in a slot a rollback freed. The dead
     occupant's level can sit at or above the newcomer's true level, in
     which case the raise-only [relevel] below would leave both the level
     and — fatally — [order_valid] untouched, and a propagate would replay
     an order that predates this instance. Zero the reborn slots and force
     an order rebuild. *)
  if t.ni > old_ni then t.order_valid <- false;
  for iid = old_ni to t.ni - 1 do
    t.level.(iid) <- 0;
    sync_inst t iid
  done;
  for nid = old_nn to t.nn - 1 do
    sync_net t nid;
    (* start the new net at its seed, exactly as a from-scratch propagate
       would: nets whose driver is never evaluated (tie cells, ports) keep
       this value, and a later retime must observe it *)
    t.arrival.(nid) <- t.seed_arr.(nid);
    t.slew.(nid) <- t.config.Analysis.input_slew_ps;
    t.from_inst.(nid) <- -1;
    t.from_pin.(nid) <- -1
  done;
  List.iter (fun iid -> if iid < old_ni then sync_inst t iid) insts;
  List.iter (fun nid -> if nid < old_nn then sync_net t nid) nets;
  (* instances whose input topology may have changed: edited ones, new
     ones, and every sink of an edited net *)
  let seeds = ref [] in
  for iid = old_ni to t.ni - 1 do
    seeds := iid :: !seeds
  done;
  List.iter (fun iid -> seeds := iid :: !seeds) insts;
  List.iter
    (fun nid ->
      List.iter (fun (sink, _) -> seeds := sink :: !seeds) (Design.net d nid).Design.sinks)
    nets;
  relevel t ~seeds:!seeds;
  t.required_valid <- false

(* ---- evaluation ---- *)

(* reset a net to its pre-propagation seed; replaying the driver's arcs in
   declaration order then reproduces exactly what a from-scratch pass
   computes (first-wins tie behaviour included) *)
let reset_net t nid =
  t.arrival.(nid) <- t.seed_arr.(nid);
  t.slew.(nid) <- t.config.Analysis.input_slew_ps;
  t.from_inst.(nid) <- -1;
  t.from_pin.(nid) <- -1

(* one instance's arcs; the float op order mirrors [Analysis.eval_inst]
   expression for expression, which is what keeps results bit-identical *)
let eval_inst t counter iid =
  let i = Design.inst t.d iid in
  let conns = i.Design.conns in
  let update_out on cand_arr cand_slew pin extrapolated =
    Obs.Metrics.incr counter;
    if cand_arr > t.arrival.(on) then begin
      t.arrival.(on) <- cand_arr;
      t.slew.(on) <- cand_slew;
      t.from_inst.(on) <- iid;
      t.from_pin.(on) <- pin
    end;
    if extrapolated then t.slow.(iid) <- true
  in
  if t.launch.(iid) then begin
    let ck = t.ck_pin.(iid) in
    if ck >= 0 then begin
      let cknet = conns.(ck) in
      if cknet >= 0 && t.arrival.(cknet) > neg_infinity then begin
        let ck_arr = t.arrival.(cknet) +. elmore t cknet ~inst:iid ~pin:ck in
        let ck_slew = t.slew.(cknet) +. (2.0 *. elmore t cknet ~inst:iid ~pin:ck) in
        for k = t.arc_lo.(iid) to t.arc_hi.(iid) - 1 do
          if t.a_from.(k) = ck then begin
            let on = conns.(t.a_to.(k)) in
            if on >= 0 then begin
              let a = t.a_arc.(k) in
              let load = t.total_cap.(on) in
              let dl = Lut.eval a.Cell.delay ~slew:ck_slew ~load in
              let sl = Lut.eval a.Cell.out_slew ~slew:ck_slew ~load in
              update_out on (ck_arr +. dl.Lut.value) sl.Lut.value ck
                (dl.Lut.extrapolated || sl.Lut.extrapolated)
            end
          end
        done
      end
    end
  end
  else
    for k = t.arc_lo.(iid) to t.arc_hi.(iid) - 1 do
      let fp = t.a_from.(k) in
      let in_net = conns.(fp) in
      let on = conns.(t.a_to.(k)) in
      if in_net >= 0 && on >= 0 && t.arrival.(in_net) > neg_infinity then begin
        let pa = t.arrival.(in_net) +. elmore t in_net ~inst:iid ~pin:fp in
        let ps = t.slew.(in_net) +. (2.0 *. elmore t in_net ~inst:iid ~pin:fp) in
        let a = t.a_arc.(k) in
        let load = t.total_cap.(on) in
        let dl = Lut.eval a.Cell.delay ~slew:ps ~load in
        let sl = Lut.eval a.Cell.out_slew ~slew:ps ~load in
        update_out on (pa +. dl.Lut.value) sl.Lut.value fp
          (dl.Lut.extrapolated || sl.Lut.extrapolated)
      end
    done

let count_slow t =
  let c = ref 0 in
  for iid = 0 to t.ni - 1 do
    if t.slow.(iid) then incr c
  done;
  !c

(* full propagation from seeds, level-ordered; moves [sta.arcs_evaluated]
   and [sta.slow_nodes] exactly as [Analysis.run] does *)
let propagate ?pool t =
  for nid = 0 to t.nn - 1 do
    reset_net t nid
  done;
  for iid = 0 to t.ni - 1 do
    t.slow.(iid) <- false
  done;
  if not t.order_valid then rebuild_order t;
  Obs.Trace.with_span ~name:"sta.propagate" (fun () ->
      match pool with
      | Some p when Par.Pool.size p > 1 ->
        (* bucket the precomputed order by level, then fan each bucket
           across the pool — bit-identical because instances of a level
           write disjoint state (see Analysis.eval_inst) *)
        let lo = ref 0 in
        let n = Array.length t.order in
        while !lo < n do
          let l = t.level.(t.order.(!lo)) in
          let hi = ref !lo in
          while !hi < n && t.level.(t.order.(!hi)) = l do
            incr hi
          done;
          let base = !lo and nb = !hi - !lo in
          if nb < Analysis.level_par_min then
            for k = base to !hi - 1 do
              eval_inst t m_arcs t.order.(k)
            done
          else
            Par.Pool.iter_slots p ~n:nb (fun ~slot:_ ~lo ~hi ->
                for k = lo to hi - 1 do
                  eval_inst t m_arcs t.order.(base + k)
                done);
          lo := !hi
        done
      | _ -> Array.iter (eval_inst t m_arcs) t.order);
  Obs.Metrics.set g_slow_nodes (float_of_int (count_slow t));
  t.required_valid <- false

let analysis t =
  let nn = Design.num_nets t.d in
  Analysis.build_result t.d ~elmore:(elmore t)
    ~arrival:(Array.sub t.arrival 0 nn)
    ~slew:(Array.sub t.slew 0 nn)
    ~from_pin:(Array.sub t.from_pin 0 nn)
    ~slow_nodes:(count_slow t)

(* ---- compile ---- *)

let compile ?(config = Analysis.default_config) (d : Design.t)
    (rc : Layout.Extract.net_rc array) =
  let ni = Design.num_insts d and nn = Design.num_nets d in
  let t =
    { d;
      config;
      nn;
      arrival = Array.make (max nn 1) neg_infinity;
      slew = Array.make (max nn 1) config.Analysis.input_slew_ps;
      from_inst = Array.make (max nn 1) (-1);
      from_pin = Array.make (max nn 1) (-1);
      seed_arr = Array.make (max nn 1) neg_infinity;
      total_cap = Array.make (max nn 1) 0.0;
      elm_keys = Array.make (max nn 1) empty_ints;
      elm_vals = Array.make (max nn 1) empty_floats;
      driver = Array.make (max nn 1) (-1);
      required = Array.make (max nn 1) infinity;
      ni;
      considered = Array.make (max ni 1) false;
      launch = Array.make (max ni 1) false;
      slow = Array.make (max ni 1) false;
      level = Array.make (max ni 1) 0;
      ck_pin = Array.make (max ni 1) (-1);
      out_pin = Array.make (max ni 1) (-1);
      arc_lo = Array.make (max ni 1) 0;
      arc_hi = Array.make (max ni 1) 0;
      na = 0;
      a_from = empty_ints;
      a_to = empty_ints;
      a_arc = [||];
      max_level = 0;
      order = empty_ints;
      order_valid = false;
      required_valid = false }
  in
  for iid = 0 to ni - 1 do
    sync_inst t iid
  done;
  for nid = 0 to nn - 1 do
    sync_net t nid;
    update_rc t nid rc.(nid)
  done;
  levelize t;
  rebuild_order t;
  t

(* ---- required times / slacks ---- *)

let ck_arrival t iid =
  let ck = t.ck_pin.(iid) in
  if ck < 0 then 0.0
  else begin
    let cknet = (Design.inst t.d iid).Design.conns.(ck) in
    if cknet >= 0 && t.arrival.(cknet) > neg_infinity then
      t.arrival.(cknet) +. elmore t cknet ~inst:iid ~pin:ck
    else 0.0
  end

(* min over the net's consumers: setup checks at sequential data pins
   (period + capture latency - setup - wire), plus propagation through
   combinational consumers (required at their output minus the arc delay
   the forward pass would use). Clock-network nets keep +inf — hold/clock
   checks are out of scope, exactly as in Slack.report. *)
let required_of t nid =
  let d = t.d in
  let req = ref infinity in
  List.iter
    (fun (sid, pin) ->
      if sid < t.ni && t.considered.(sid) then begin
        let s = Design.inst d sid in
        let cell = s.Design.cell in
        (if cell.Cell.sequential && s.Design.domain >= 0
            && s.Design.domain < Array.length d.Design.domains then
           match Cell.data_pin cell with
           | Some dp when dp = pin ->
             let period = d.Design.domains.(s.Design.domain).Design.period_ps in
             let c =
               period +. ck_arrival t sid -. cell.Cell.setup -. elmore t nid ~inst:sid ~pin
             in
             if c < !req then req := c
           | _ -> ());
        if (not t.launch.(sid)) && t.arrival.(nid) > neg_infinity then
          for k = t.arc_lo.(sid) to t.arc_hi.(sid) - 1 do
            if t.a_from.(k) = pin then begin
              let m = s.Design.conns.(t.a_to.(k)) in
              if m >= 0 && t.required.(m) < infinity then begin
                let e = elmore t nid ~inst:sid ~pin in
                let ps = t.slew.(nid) +. (2.0 *. e) in
                let a = t.a_arc.(k) in
                let dl = Lut.eval a.Cell.delay ~slew:ps ~load:t.total_cap.(m) in
                let c = t.required.(m) -. dl.Lut.value -. e in
                if c < !req then req := c
              end
            end
          done
      end)
    (Design.net d nid).Design.sinks;
  !req

let net_level t nid = if t.driver.(nid) >= 0 then t.level.(t.driver.(nid)) else 0

(* full backward pass, descending net level (a net's required depends only
   on required values at strictly higher levels) *)
let compute_required t =
  let buckets = Array.make (t.max_level + 1) [] in
  for nid = t.nn - 1 downto 0 do
    t.required.(nid) <- infinity;
    buckets.(net_level t nid) <- nid :: buckets.(net_level t nid)
  done;
  for l = t.max_level downto 0 do
    List.iter (fun nid -> t.required.(nid) <- required_of t nid) buckets.(l)
  done;
  t.required_valid <- true

let required t nid = t.required.(nid)

let net_slack t nid =
  if t.arrival.(nid) > neg_infinity && t.required.(nid) < infinity then
    Some (t.required.(nid) -. t.arrival.(nid))
  else None

(* endpoint slacks, mirroring Slack.report term for term *)
let slack t =
  let d = t.d in
  let acc = ref [] in
  Design.iter_insts d (fun i ->
      if i.Design.cell.Cell.sequential && i.Design.domain >= 0
         && i.Design.domain < Array.length d.Design.domains then begin
        match Cell.data_pin i.Design.cell with
        | Some dp ->
          let dnet = i.Design.conns.(dp) in
          if dnet >= 0 && t.arrival.(dnet) > neg_infinity then begin
            let arr = t.arrival.(dnet) +. elmore t dnet ~inst:i.Design.id ~pin:dp in
            let capture = ck_arrival t i.Design.id in
            let period = d.Design.domains.(i.Design.domain).Design.period_ps in
            let slack = period +. capture -. (arr +. i.Design.cell.Cell.setup) in
            acc :=
              { Slack.ff = i.Design.id; Slack.domain = i.Design.domain;
                Slack.slack_ps = slack }
              :: !acc
          end
        | None -> ()
      end);
  let endpoints = List.sort (fun x y -> compare x.Slack.slack_ps y.Slack.slack_ps) !acc in
  let wns = match endpoints with [] -> 0.0 | e :: _ -> e.Slack.slack_ps in
  let tns =
    List.fold_left
      (fun s (e : Slack.endpoint_slack) ->
        if e.Slack.slack_ps < 0.0 then s +. e.Slack.slack_ps else s)
      0.0 endpoints
  in
  let violations =
    List.length (List.filter (fun (e : Slack.endpoint_slack) -> e.Slack.slack_ps < 0.0) endpoints)
  in
  { Slack.endpoints; Slack.wns; Slack.tns; Slack.violations }

let wns t = (slack t).Slack.wns

(* nets within margin of the worst per-net slack: the lint pack's
   critical-net artifact, read straight off the flat graph instead of the
   zero-wireload estimator *)
(* ---- internal surface for Sta.Incremental ---- *)

let arrival t nid = t.arrival.(nid)
let slew_of t nid = t.slew.(nid)
let reset_slow t iid = t.slow.(iid) <- false
let design t = t.d
let arrival_arrays t = (t.arrival, t.slew, t.from_inst, t.from_pin)
let required_array t = t.required
let required_is_valid t = t.required_valid
let set_required_valid t = t.required_valid <- true
let driver_of t nid = t.driver.(nid)

(* data nets of the sequential elements clocked by [cknet]: their setup
   checks read the clock arrival, so a changed clock net dirties their
   required times *)
let data_sinks_of_clock t cknet =
  let out = ref [] in
  List.iter
    (fun (sid, pin) ->
      if sid < t.ni && t.considered.(sid) && pin = t.ck_pin.(sid) then begin
        let s = Design.inst t.d sid in
        match Cell.data_pin s.Design.cell with
        | Some dp ->
          let dnet = s.Design.conns.(dp) in
          if dnet >= 0 then out := dnet :: !out
        | None -> ()
      end)
    (Design.net t.d cknet).Design.sinks;
  !out

let critical_nets t ~margin_ps =
  if not t.required_valid then compute_required t;
  let worst = ref infinity in
  for nid = 0 to t.nn - 1 do
    match net_slack t nid with
    | Some s -> if s < !worst then worst := s
    | None -> ()
  done;
  if !worst = infinity then []
  else begin
    let out = ref [] in
    for nid = t.nn - 1 downto 0 do
      match net_slack t nid with
      | Some s -> if s <= !worst +. margin_ps then out := nid :: !out
      | None -> ()
    done;
    !out
  end
