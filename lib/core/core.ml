(** Public facade of the TPI-layout reproduction.

    One-stop access to the full stack: netlist infrastructure, benchmark
    circuit generation, test point insertion, scan, ATPG, physical design
    and STA, plus the Figure-2 pipeline and the paper's experiment matrix.
    Library clients can either use this module or depend on the individual
    libraries directly. *)

module Design = Netlist.Design
module Cmodel = Netlist.Cmodel
module Stats = Netlist.Stats
module Check = Netlist.Check
module Verilog = Netlist.Verilog
module Library = Stdcell.Library
module Cell = Stdcell.Cell
module Bench = Circuits.Bench
module Profile = Circuits.Profile
module Synth = Circuits.Synth
module Scoap = Testability.Scoap
module Cop = Testability.Cop
module Tsff = Tpi.Tsff
module Tpi_select = Tpi.Select
module Tpi_insert = Tpi.Insert
module Scan_chains = Scan.Chains
module Scan_reorder = Scan.Reorder
module Patgen = Atpg.Patgen
module Fault = Atpg.Fault
module Tdv = Atpg.Tdv
module Floorplan = Layout.Floorplan
module Place = Layout.Place
module Cts = Layout.Cts
module Filler = Layout.Filler
module Eco = Layout.Eco
module Drc = Layout.Drc
module Route = Layout.Route
module Extract = Layout.Extract
module Render = Layout.Render
module Defout = Layout.Defout
module Sta_analysis = Sta.Analysis
module Tgraph = Sta.Tgraph
module Incremental = Sta.Incremental
module Slack = Sta.Slack
module Liberty = Stdcell.Liberty
module Iscas = Circuits.Iscas
module Pipeline = Flow.Pipeline
module Experiment = Flow.Experiment
module Retime = Flow.Retime
module Timingfix = Flow.Timingfix
module Repair = Flow.Repair
module Report = Flow.Report
module Guard = Flow.Guard
module Inject = Flow.Inject
module Cancel = Flow.Cancel
module Layout_check = Layout.Check
module Lfsr = Lbist.Lfsr
module Misr = Lbist.Misr
module Bist = Lbist.Bist
module Pool = Par.Pool
module Stage_cache = Cache.Store
module Serve_protocol = Serve.Protocol
module Serve_daemon = Serve.Daemon
module Serve_client = Serve.Client
module Serve_chaos = Serve.Chaos
module Jobq = Serve.Jobq
module Retry = Serve.Retry
module Lint_diag = Lint.Diag
module Lint_rule = Lint.Rule
module Lint_engine = Lint.Engine
module Lint_waiver = Lint.Waiver
module Lint_emit = Lint.Emit
module Lint_timing = Lint.Timing
module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Json = Obs.Json
module Export = Obs.Export
module Log = Obs.Log
module Recorder = Obs.Recorder
module Perfgate = Obs.Perfgate

(** Run the complete Figure-2 flow on a named benchmark circuit at the
    given test point percentage; the fastest way to see everything work. *)
let quickstart ?(circuit = "s38417") ?(scale = 0.25) ?(tp_percent = 1.0)
    ?(with_atpg = true) () =
  let spec = Flow.Experiment.spec_for ~scale circuit in
  Flow.Experiment.run_one ~with_atpg spec ~tp_pct:(int_of_float tp_percent)
