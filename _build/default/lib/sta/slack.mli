(** Slack reporting on top of {!Analysis}: per-endpoint setup slacks at the
    clock period(s) of the design's domains, the worst endpoints, and a
    slack histogram — the view a designer uses to judge whether test point
    insertion broke timing closure (paper §5: "this approach requires
    timing analysis for identifying all paths with slack below a certain
    threshold"). *)

type endpoint_slack = {
  ff : int;            (** capturing flip-flop instance id *)
  domain : int;
  slack_ps : float;    (** period - (arrival + setup - capture latency) *)
}

type t = {
  endpoints : endpoint_slack list;  (** worst first *)
  wns : float;                      (** worst negative (or smallest) slack *)
  tns : float;                      (** total negative slack *)
  violations : int;
}

val report : Layout.Place.t -> Layout.Extract.net_rc array -> Analysis.t -> t
(** Slack against each domain's declared period. *)

val below : t -> float -> endpoint_slack list
(** Endpoints with slack below a margin: the critical-path exclusion set of
    the paper's §5. *)

val histogram : t -> bucket_ps:float -> (float * int) list
(** (bucket lower bound, count) pairs in ascending slack order. *)

val nets_on_worst_paths : Layout.Place.t -> Analysis.t -> margin_ps:float -> int list
(** Nets whose arrival is within [margin_ps] of a domain's critical arrival:
    the nets TPI must avoid in the timing-aware ablation. *)
