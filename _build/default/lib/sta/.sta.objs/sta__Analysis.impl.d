lib/sta/analysis.ml: Array Float Format Layout List Netlist Queue Stdcell
