lib/sta/slack.mli: Analysis Layout
