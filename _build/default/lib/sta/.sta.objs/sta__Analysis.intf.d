lib/sta/analysis.mli: Format Layout Netlist
