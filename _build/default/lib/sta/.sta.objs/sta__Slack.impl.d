lib/sta/slack.ml: Analysis Array Float Hashtbl Layout List Netlist Option Stdcell
