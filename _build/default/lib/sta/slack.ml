module Design = Netlist.Design
module Cell = Stdcell.Cell

type endpoint_slack = {
  ff : int;
  domain : int;
  slack_ps : float;
}

type t = {
  endpoints : endpoint_slack list;
  wns : float;
  tns : float;
  violations : int;
}

let report (pl : Layout.Place.t) (rc : Layout.Extract.net_rc array) (a : Analysis.t) =
  let d = pl.Layout.Place.design in
  let acc = ref [] in
  Design.iter_insts d (fun i ->
      if i.Design.cell.Cell.sequential && i.Design.domain >= 0
         && i.Design.domain < Array.length d.Design.domains then begin
        match Cell.data_pin i.Design.cell with
        | Some dp ->
          let dnet = i.Design.conns.(dp) in
          if dnet >= 0 && a.Analysis.arrival.(dnet) > neg_infinity then begin
            let arr =
              a.Analysis.arrival.(dnet)
              +. Layout.Extract.sink_elmore rc.(dnet) ~inst:i.Design.id ~pin:dp
            in
            let capture =
              match Cell.clock_pin i.Design.cell with
              | Some ck ->
                let cknet = i.Design.conns.(ck) in
                if cknet >= 0 && a.Analysis.arrival.(cknet) > neg_infinity then
                  a.Analysis.arrival.(cknet)
                  +. Layout.Extract.sink_elmore rc.(cknet) ~inst:i.Design.id ~pin:ck
                else 0.0
              | None -> 0.0
            in
            let period = d.Design.domains.(i.Design.domain).Design.period_ps in
            let slack = period +. capture -. (arr +. i.Design.cell.Cell.setup) in
            acc := { ff = i.Design.id; domain = i.Design.domain; slack_ps = slack } :: !acc
          end
        | None -> ()
      end);
  let endpoints = List.sort (fun x y -> compare x.slack_ps y.slack_ps) !acc in
  let wns = match endpoints with [] -> 0.0 | e :: _ -> e.slack_ps in
  let tns =
    List.fold_left (fun s e -> if e.slack_ps < 0.0 then s +. e.slack_ps else s) 0.0 endpoints
  in
  let violations = List.length (List.filter (fun e -> e.slack_ps < 0.0) endpoints) in
  { endpoints; wns; tns; violations }

let below t margin = List.filter (fun e -> e.slack_ps < margin) t.endpoints

let histogram t ~bucket_ps =
  if bucket_ps <= 0.0 then invalid_arg "Slack.histogram: bucket";
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let b = Float.of_int (int_of_float (Float.floor (e.slack_ps /. bucket_ps))) *. bucket_ps in
      Hashtbl.replace tbl b (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
    t.endpoints;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let nets_on_worst_paths (pl : Layout.Place.t) (a : Analysis.t) ~margin_ps =
  let d = pl.Layout.Place.design in
  let out = ref [] in
  Array.iter
    (fun path ->
      match path with
      | None -> ()
      | Some (p : Analysis.critical_path) ->
        let worst = p.Analysis.t_cp in
        Array.iteri
          (fun nid arr -> if arr > worst -. margin_ps then out := nid :: !out)
          a.Analysis.arrival;
        List.iter
          (fun (s : Analysis.step) ->
            if s.Analysis.st_inst >= 0 then
              Array.iter
                (fun nid -> if nid >= 0 then out := nid :: !out)
                (Design.inst d s.Analysis.st_inst).Design.conns)
          p.Analysis.steps)
    a.Analysis.per_domain;
  List.sort_uniq compare !out
