type dir =
  | Input
  | Output

type role =
  | Data
  | Clock
  | Scan_in
  | Scan_enable
  | Test_reconf

type t = {
  name : string;
  dir : dir;
  role : role;
  cap : float;
}

let input ?(role = Data) name ~cap = { name; dir = Input; role; cap }

let output name = { name; dir = Output; role = Data; cap = 0.0 }

let is_input p = p.dir = Input

let is_clock p = p.role = Clock

let pp ppf p =
  Format.fprintf ppf "%s(%s, %.2ffF)" p.name
    (match p.dir with Input -> "in" | Output -> "out")
    p.cap
