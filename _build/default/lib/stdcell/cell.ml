type kind =
  | Inv
  | Buf
  | Clkbuf
  | Nand2
  | Nand3
  | Nor2
  | Nor3
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Aoi21
  | Oai21
  | Mux2
  | Tiehi
  | Tielo
  | Dff
  | Sdff
  | Tsff
  | Filler

type arc = {
  from_pin : int;
  to_pin : int;
  delay : Lut.t;
  out_slew : Lut.t;
  test_only : bool;
}

type t = {
  name : string;
  kind : kind;
  drive : int;
  width : float;
  pins : Pin.t array;
  arcs : arc array;
  setup : float;
  hold : float;
  sequential : bool;
}

let kind_name = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Clkbuf -> "CLKBUF"
  | Nand2 -> "NAND2"
  | Nand3 -> "NAND3"
  | Nor2 -> "NOR2"
  | Nor3 -> "NOR3"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"
  | Mux2 -> "MUX2"
  | Tiehi -> "TIEHI"
  | Tielo -> "TIELO"
  | Dff -> "DFF"
  | Sdff -> "SDFF"
  | Tsff -> "TSFF"
  | Filler -> "FILL"

let num_inputs = function
  | Inv | Buf | Clkbuf -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 -> 2
  | Nand3 | Nor3 | Aoi21 | Oai21 | Mux2 -> 3
  | Tiehi | Tielo | Filler -> 0
  | Dff -> 1
  | Sdff -> 3
  | Tsff -> 4

let output_pin t =
  match t.kind with
  | Filler -> invalid_arg "Cell.output_pin: filler cell"
  | _ -> Array.length t.pins - 1

let input_pin_indices t =
  let n = Array.length t.pins in
  List.filter (fun i -> Pin.is_input t.pins.(i)) (List.init n Fun.id)

let clock_pin t =
  let found = ref None in
  Array.iteri (fun i p -> if Pin.is_clock p then found := Some i) t.pins;
  !found

let data_pin t = if t.sequential then Some 0 else None

let is_ff t = t.sequential

let row_height_um = 3.69

let area t = t.width *. row_height_um

let eval64 kind (inputs : int64 array) =
  let a i = inputs.(i) in
  let ( &: ) = Int64.logand
  and ( |: ) = Int64.logor
  and ( ^: ) = Int64.logxor
  and notl = Int64.lognot in
  match kind with
  | Inv -> notl (a 0)
  | Buf | Clkbuf -> a 0
  | Nand2 -> notl (a 0 &: a 1)
  | Nand3 -> notl (a 0 &: a 1 &: a 2)
  | Nor2 -> notl (a 0 |: a 1)
  | Nor3 -> notl (a 0 |: a 1 |: a 2)
  | And2 -> a 0 &: a 1
  | Or2 -> a 0 |: a 1
  | Xor2 -> a 0 ^: a 1
  | Xnor2 -> notl (a 0 ^: a 1)
  | Aoi21 -> notl ((a 0 &: a 1) |: a 2)
  | Oai21 -> notl ((a 0 |: a 1) &: a 2)
  | Mux2 -> (a 2 &: a 1) |: (notl (a 2) &: a 0)
  | Tiehi -> -1L
  | Tielo -> 0L
  | Dff | Sdff | Tsff | Filler -> invalid_arg "Cell.eval64: not combinational"

type ternary =
  | Zero
  | One
  | Unknown

(* Enumerate the unknown inputs (arity <= 3, so at most 8 assignments); the
   output is known iff all assignments agree. Exact for these cell arities
   and keeps the logic function defined in exactly one place. *)
let eval_ternary kind (inputs : ternary array) =
  let n = Array.length inputs in
  let unknowns = ref [] in
  for i = n - 1 downto 0 do
    if inputs.(i) = Unknown then unknowns := i :: !unknowns
  done;
  let base = Array.map (function One -> -1L | Zero | Unknown -> 0L) inputs in
  let k = List.length !unknowns in
  let result = ref None in
  let conflict = ref false in
  for mask = 0 to (1 lsl k) - 1 do
    if not !conflict then begin
      List.iteri
        (fun bit idx -> base.(idx) <- (if mask land (1 lsl bit) <> 0 then -1L else 0L))
        !unknowns;
      let out = Int64.logand (eval64 kind base) 1L in
      match !result with
      | None -> result := Some out
      | Some prev -> if prev <> out then conflict := true
    end
  done;
  if !conflict then Unknown
  else
    match !result with
    | Some 1L -> One
    | Some _ -> Zero
    | None -> Unknown

(* direct ternary connectives over the 0/1/2 encoding *)
let not3 a = if a = 2 then 2 else 1 - a

let and3 a b = if a = 0 || b = 0 then 0 else if a = 1 && b = 1 then 1 else 2

let or3 a b = if a = 1 || b = 1 then 1 else if a = 0 && b = 0 then 0 else 2

let xor3 a b = if a = 2 || b = 2 then 2 else a lxor b

let eval3 kind a b c =
  match kind with
  | Inv -> not3 a
  | Buf | Clkbuf -> a
  | Nand2 -> not3 (and3 a b)
  | Nand3 -> not3 (and3 (and3 a b) c)
  | Nor2 -> not3 (or3 a b)
  | Nor3 -> not3 (or3 (or3 a b) c)
  | And2 -> and3 a b
  | Or2 -> or3 a b
  | Xor2 -> xor3 a b
  | Xnor2 -> not3 (xor3 a b)
  | Aoi21 -> not3 (or3 (and3 a b) c)
  | Oai21 -> not3 (and3 (or3 a b) c)
  | Mux2 ->
    (* c is the select; on X select the output is known only if both data
       inputs agree *)
    (match c with
     | 0 -> a
     | 1 -> b
     | _ -> if a = b then a else 2)
  | Tiehi -> 1
  | Tielo -> 0
  | Dff | Sdff | Tsff | Filler -> invalid_arg "Cell.eval3: not combinational"

let pp ppf t =
  Format.fprintf ppf "%s (w=%.2fum, %d pins)" t.name t.width (Array.length t.pins)
