(** Liberty (.lib) export of the synthetic cell library.

    Useful for inspecting the characterisation with standard EDA viewers
    and for documenting exactly what the STA consumes: every cell's area,
    pin capacitances, and the NLDM delay/slew tables with their axes. *)

val write : Format.formatter -> Library.t -> unit
val to_string : Library.t -> string
val write_file : string -> Library.t -> unit
