let pp_floats ppf values =
  Format.fprintf ppf "\"%s\""
    (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%.4f") values)))

let write ppf (lib : Library.t) =
  let pr fmt = Format.fprintf ppf fmt in
  pr "/* synthetic 130nm-class library exported by tpi_repro */@.";
  pr "library (tpi_repro_130) {@.";
  pr "  time_unit : \"1ps\";@.";
  pr "  capacitive_load_unit (1, ff);@.";
  List.iter
    (fun (c : Cell.t) ->
      pr "  cell (%s) {@." c.Cell.name;
      pr "    area : %.4f;@." (Cell.area c);
      Array.iteri
        (fun k (p : Pin.t) ->
          pr "    pin (%s) {@." p.Pin.name;
          (match p.Pin.dir with
           | Pin.Input ->
             pr "      direction : input;@.";
             pr "      capacitance : %.4f;@." p.Pin.cap;
             if Pin.is_clock p then pr "      clock : true;@."
           | Pin.Output ->
             pr "      direction : output;@.";
             Array.iter
               (fun (a : Cell.arc) ->
                 if a.Cell.to_pin = k then begin
                   pr "      timing () {@.";
                   pr "        related_pin : \"%s\";@."
                     c.Cell.pins.(a.Cell.from_pin).Pin.name;
                   if a.Cell.test_only then pr "        /* test-mode only arc */@.";
                   let slews = Lut.slew_axis_of a.Cell.delay in
                   let loads = Lut.load_axis_of a.Cell.delay in
                   pr "        cell_rise (delay_template) {@.";
                   pr "          index_1 (%a);@." pp_floats slews;
                   pr "          index_2 (%a);@." pp_floats loads;
                   pr "          values ( \\@.";
                   Array.iteri
                     (fun i slew ->
                       let row =
                         Array.map (fun load -> Lut.value a.Cell.delay ~slew ~load) loads
                       in
                       pr "            %a%s \\@." pp_floats row
                         (if i = Array.length slews - 1 then "" else ","))
                     slews;
                   pr "          );@.";
                   pr "        }@.";
                   pr "      }@."
                 end)
               c.Cell.arcs);
          pr "    }@.")
        c.Cell.pins;
      if c.Cell.sequential then begin
        pr "    ff (IQ) { /* setup %.1fps hold %.1fps */ }@." c.Cell.setup c.Cell.hold
      end;
      pr "  }@.")
    (Library.cells lib);
  pr "}@."

let to_string lib =
  let buf = Buffer.create 65536 in
  let ppf = Format.formatter_of_buffer buf in
  write ppf lib;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let write_file path lib =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      write ppf lib;
      Format.pp_print_flush ppf ())
