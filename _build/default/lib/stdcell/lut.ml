type t = {
  slews : float array;
  loads : float array;
  values : float array array;
}

let check_axis name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty axis");
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then invalid_arg (name ^ ": axis not increasing")
  done

let make ~slews ~loads ~values =
  check_axis "Lut.make slews" slews;
  check_axis "Lut.make loads" loads;
  if Array.length values <> Array.length slews then invalid_arg "Lut.make: row count";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length loads then invalid_arg "Lut.make: column count")
    values;
  { slews; loads; values }

let of_model ~slews ~loads ~f =
  let values =
    Array.map (fun slew -> Array.map (fun load -> f ~slew ~load) loads) slews
  in
  make ~slews ~loads ~values

type lookup = {
  value : float;
  extrapolated : bool;
}

(* Index of the lower cell of the bracketing segment, clamped so that
   out-of-range queries extrapolate from the border segment. *)
let segment axis x =
  let n = Array.length axis in
  if n = 1 then 0
  else begin
    let rec find i = if i >= n - 2 || x < axis.(i + 1) then i else find (i + 1) in
    if x <= axis.(0) then 0 else find 0
  end

let axis_fraction axis i x =
  if Array.length axis = 1 then 0.0
  else (x -. axis.(i)) /. (axis.(i + 1) -. axis.(i))

let eval t ~slew ~load =
  let i = segment t.slews slew and j = segment t.loads load in
  let u = axis_fraction t.slews i slew and v = axis_fraction t.loads j load in
  let at di dj =
    let i' = min (i + di) (Array.length t.slews - 1)
    and j' = min (j + dj) (Array.length t.loads - 1) in
    t.values.(i').(j')
  in
  let v00 = at 0 0 and v01 = at 0 1 and v10 = at 1 0 and v11 = at 1 1 in
  let value =
    ((1.0 -. u) *. (((1.0 -. v) *. v00) +. (v *. v01)))
    +. (u *. (((1.0 -. v) *. v10) +. (v *. v11)))
  in
  let extrapolated =
    slew < t.slews.(0)
    || slew > t.slews.(Array.length t.slews - 1)
    || load < t.loads.(0)
    || load > t.loads.(Array.length t.loads - 1)
  in
  { value; extrapolated }

let value t ~slew ~load = (eval t ~slew ~load).value

let corner t = t.values.(0).(0)

let max_load t = t.loads.(Array.length t.loads - 1)

let max_slew t = t.slews.(Array.length t.slews - 1)

let slew_axis_of t = Array.copy t.slews

let load_axis_of t = Array.copy t.loads
