(** Two-dimensional non-linear delay model (NLDM) lookup tables.

    Cell delay and output slew are tabulated against input slew (ps) and
    effective capacitive output load (fF), exactly as in Liberty-style
    libraries. Lookups inside the table bilinearly interpolate; lookups
    outside the characterised range extrapolate from the nearest border
    cells and are flagged, reproducing the "slow node" behaviour the paper
    describes for PEARL. *)

type t

val make : slews:float array -> loads:float array -> values:float array array -> t
(** [make ~slews ~loads ~values] with [values.(i).(j)] the table entry for
    [slews.(i)] and [loads.(j)]. Axes must be strictly increasing and
    non-empty; dimensions must agree. *)

val of_model :
  slews:float array ->
  loads:float array ->
  f:(slew:float -> load:float -> float) ->
  t
(** Characterise a table by sampling a parametric model at the grid points
    (this is how the synthetic library is built). *)

type lookup = {
  value : float;
  extrapolated : bool;  (** true when (slew, load) fell outside the table *)
}

val eval : t -> slew:float -> load:float -> lookup

val value : t -> slew:float -> load:float -> float
(** [eval] without the flag. *)

val corner : t -> float
(** Table entry at minimum slew and minimum load: the intrinsic delay in the
    paper's decomposition (eq. 3). *)

val max_load : t -> float
val max_slew : t -> float

val slew_axis_of : t -> float array
(** Copy of the slew axis (for table export). *)

val load_axis_of : t -> float array
