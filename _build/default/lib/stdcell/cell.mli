(** Standard cells: kinds, geometry, pins, logic function and timing arcs.

    Pin ordering convention (fixed; the netlist connects by pin index):
    - combinational gates: inputs [A], [B], [C]... then output [Y] last;
    - [Dff]: [D]=0, [CK]=1, [Q]=2;
    - [Sdff]: [D]=0, [TI]=1, [TE]=2, [CK]=3, [Q]=4;
    - [Tsff]: [D]=0, [TI]=1, [TE]=2, [TR]=3, [CK]=4, [Q]=5 (Fig. 1 of the
      paper: an input mux [TE ? TI : D] feeds the internal flip-flop and the
      output mux [TR ? FF.Q : input-mux-out] drives [Q]; in application mode
      both selects are 0 so the cell is combinationally transparent through
      the two muxes). *)

type kind =
  | Inv
  | Buf
  | Clkbuf
  | Nand2
  | Nand3
  | Nor2
  | Nor3
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Aoi21  (** Y = not ((A and B) or C) *)
  | Oai21  (** Y = not ((A or B) and C) *)
  | Mux2   (** Y = if S then B else A; pins A=0 B=1 S=2 *)
  | Tiehi
  | Tielo
  | Dff
  | Sdff
  | Tsff
  | Filler

type arc = {
  from_pin : int;
  to_pin : int;
  delay : Lut.t;      (** ps *)
  out_slew : Lut.t;   (** ps *)
  test_only : bool;
      (** arc exists only in test mode (e.g. TSFF CK->Q); application-mode
          STA blocks it, as the paper blocks test-mode false paths *)
}

type t = {
  name : string;       (** e.g. "NAND2X2" *)
  kind : kind;
  drive : int;         (** 1, 2, 4 or 8 *)
  width : float;       (** um; height is [Library.row_height] for all cells *)
  pins : Pin.t array;
  arcs : arc array;
  setup : float;       (** ps; 0 for combinational cells *)
  hold : float;
  sequential : bool;   (** has an internal state element (Dff/Sdff/Tsff) *)
}

val kind_name : kind -> string
val num_inputs : kind -> int
(** Logic inputs, excluding clock for sequential kinds. *)

val output_pin : t -> int
(** Index of the [Y]/[Q] pin. Raises for [Filler]. *)

val input_pin_indices : t -> int list
(** All input pin indices, including clock/test pins. *)

val clock_pin : t -> int option
val data_pin : t -> int option
(** The functional [D]/[A] input for sequential cells. *)

val is_ff : t -> bool
(** True for Dff/Sdff/Tsff. *)

val row_height_um : float
(** Row height shared by all cells (um). *)

val area : t -> float
(** width * row height, um^2. *)

val eval64 : kind -> int64 array -> int64
(** Bit-parallel logic function over 64 packed patterns. Combinational kinds
    only; [inputs] ordered by pin convention (for [Mux2]: A, B, S). Raises
    [Invalid_argument] for sequential/filler kinds. *)

type ternary =
  | Zero
  | One
  | Unknown

val eval_ternary : kind -> ternary array -> ternary
(** Three-valued evaluation (X-pessimistic), derived from [eval64] by
    enumerating the unknown inputs. *)

val eval3 : kind -> int -> int -> int -> int
(** Allocation-free ternary evaluation with values encoded 0/1/2 (2 = X);
    unused input positions are ignored. Agrees with {!eval_ternary}; this
    is the hot path of the PODEM implication engine. *)

val pp : Format.formatter -> t -> unit
