lib/stdcell/pin.mli: Format
