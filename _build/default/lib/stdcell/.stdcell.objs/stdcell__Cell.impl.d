lib/stdcell/cell.ml: Array Format Fun Int64 List Lut Pin
