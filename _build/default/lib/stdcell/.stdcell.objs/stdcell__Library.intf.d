lib/stdcell/library.mli: Cell
