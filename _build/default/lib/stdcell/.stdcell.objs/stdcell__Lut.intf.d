lib/stdcell/lut.mli:
