lib/stdcell/library.ml: Array Cell Hashtbl List Lut Pin Printf
