lib/stdcell/pin.ml: Format
