lib/stdcell/liberty.ml: Array Buffer Cell Format Fun Library List Lut Pin Printf String
