lib/stdcell/liberty.mli: Format Library
