lib/stdcell/lut.ml: Array
