lib/stdcell/cell.mli: Format Lut Pin
