(** Standard-cell pins. *)

type dir =
  | Input
  | Output

type role =
  | Data         (** ordinary logic pin *)
  | Clock        (** flip-flop clock input *)
  | Scan_in      (** TI *)
  | Scan_enable  (** TE *)
  | Test_reconf  (** TR, the TSFF output-mux select (Fig. 1) *)

type t = {
  name : string;
  dir : dir;
  role : role;
  cap : float;  (** input pin capacitance, fF; 0.0 for outputs *)
}

val input : ?role:role -> string -> cap:float -> t
val output : string -> t
val is_input : t -> bool
val is_clock : t -> bool
val pp : Format.formatter -> t -> unit
