(** Axis-aligned rectangles, used for floorplan regions, rows and rings. *)

type t = {
  lx : float;  (** left *)
  ly : float;  (** bottom *)
  ux : float;  (** right *)
  uy : float;  (** top *)
}

val make : lx:float -> ly:float -> ux:float -> uy:float -> t
(** Raises [Invalid_argument] if the rectangle is inverted. *)

val of_size : lx:float -> ly:float -> w:float -> h:float -> t
val width : t -> float
val height : t -> float
val area : t -> float
val center : t -> Point.t
val contains : t -> Point.t -> bool
val intersects : t -> t -> bool
val inset : t -> float -> t
(** [inset r d] shrinks [r] by [d] on every side. *)

val expand : t -> float -> t
val union : t -> t -> t
val aspect_ratio : t -> float
(** height / width; the paper keeps cores between 0.9 and 1.1. *)

val half_perimeter : t -> float
val pp : Format.formatter -> t -> unit
