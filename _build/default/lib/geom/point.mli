(** Points in layout space. Coordinates are micrometres. *)

type t = {
  x : float;
  y : float;
}

val make : float -> float -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val midpoint : t -> t -> t

val manhattan : t -> t -> float
(** Rectilinear (L1) distance, the routing metric. *)

val euclid : t -> t -> float
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
