type t = {
  lx : float;
  ly : float;
  ux : float;
  uy : float;
}

let make ~lx ~ly ~ux ~uy =
  if ux < lx || uy < ly then invalid_arg "Rect.make: inverted rectangle";
  { lx; ly; ux; uy }

let of_size ~lx ~ly ~w ~h = make ~lx ~ly ~ux:(lx +. w) ~uy:(ly +. h)

let width r = r.ux -. r.lx

let height r = r.uy -. r.ly

let area r = width r *. height r

let center r = Point.make (0.5 *. (r.lx +. r.ux)) (0.5 *. (r.ly +. r.uy))

let contains r (p : Point.t) = p.x >= r.lx && p.x <= r.ux && p.y >= r.ly && p.y <= r.uy

let intersects a b = a.lx <= b.ux && b.lx <= a.ux && a.ly <= b.uy && b.ly <= a.uy

let inset r d = make ~lx:(r.lx +. d) ~ly:(r.ly +. d) ~ux:(r.ux -. d) ~uy:(r.uy -. d)

let expand r d = inset r (-.d)

let union a b =
  { lx = Float.min a.lx b.lx;
    ly = Float.min a.ly b.ly;
    ux = Float.max a.ux b.ux;
    uy = Float.max a.uy b.uy }

let aspect_ratio r = height r /. width r

let half_perimeter r = width r +. height r

let pp ppf r = Format.fprintf ppf "[%.2f %.2f %.2f %.2f]" r.lx r.ly r.ux r.uy
