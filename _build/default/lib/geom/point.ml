type t = {
  x : float;
  y : float;
}

let make x y = { x; y }

let zero = { x = 0.0; y = 0.0 }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let scale k p = { x = k *. p.x; y = k *. p.y }

let midpoint a b = { x = 0.5 *. (a.x +. b.x); y = 0.5 *. (a.y +. b.y) }

let manhattan a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

let euclid a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let equal a b = a.x = b.x && a.y = b.y

let pp ppf p = Format.fprintf ppf "(%.2f, %.2f)" p.x p.y
