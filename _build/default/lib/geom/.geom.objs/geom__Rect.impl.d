lib/geom/rect.ml: Float Format Point
