lib/scan/chains.mli: Netlist
