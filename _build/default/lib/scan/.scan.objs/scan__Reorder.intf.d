lib/scan/reorder.mli: Chains Geom Netlist
