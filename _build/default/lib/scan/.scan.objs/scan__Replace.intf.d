lib/scan/replace.mli: Netlist
