lib/scan/reorder.ml: Array Chains Geom List Netlist Printf Stdcell
