lib/scan/chains.ml: Array List Netlist Printf Stdcell Tpi
