lib/scan/replace.ml: List Netlist Stdcell Tpi
