(** Scan replacement: every plain DFF becomes an SDFF (muxed-D scan cell),
    with TE on the global scan-enable and TI parked on the shared tie cell
    until stitching (step 1 of the paper's flow). TSFFs already carry their
    scan pins. *)

val run : Netlist.Design.t -> int
(** Returns the number of flip-flops converted. *)
