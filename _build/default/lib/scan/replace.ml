module Design = Netlist.Design
module Cell = Stdcell.Cell

let run (d : Design.t) =
  let se = Tpi.Insert.test_se_net d in
  let ti = Tpi.Insert.tie_low_net d in
  let converted = ref 0 in
  let todo = ref [] in
  Design.iter_insts d (fun i -> if i.Design.cell.Cell.kind = Cell.Dff then todo := i.Design.id :: !todo);
  List.iter
    (fun iid ->
      let i = Design.inst d iid in
      let sdff = Stdcell.Library.find d.Design.lib Cell.Sdff ~drive:i.Design.cell.Cell.drive in
      (* DFF pins: D=0 CK=1 Q=2; SDFF pins: D=0 TI=1 TE=2 CK=3 Q=4 *)
      Design.replace_cell d ~inst:iid ~cell:sdff ~pin_map:[ (0, 0); (1, 3); (2, 4) ];
      Design.connect d ~inst:iid ~pin:1 ~net:ti;
      Design.connect d ~inst:iid ~pin:2 ~net:se;
      incr converted)
    !todo;
  !converted
