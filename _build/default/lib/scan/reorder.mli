(** Layout-driven scan-chain reordering (step 3 of the paper's flow).

    After placement, scan cells are re-assigned to chains from their
    physical positions (row-banded snake order, so each chain is a compact
    geographic run) and restitched; buffers are added to the scan-enable
    net to keep its fanout bounded, exactly as the paper describes. The
    returned buffers carry desired coordinates for the ECO placement step. *)

type result = {
  plan : Chains.t;                        (** the reordered chains *)
  new_buffers : (int * Geom.Point.t) list; (** scan-enable buffers to ECO-place *)
  wirelength_before : float;              (** um, id-ordered stitching *)
  wirelength_after : float;               (** um, reordered stitching *)
}

val run :
  ?max_se_fanout:int ->
  Netlist.Design.t ->
  config:Chains.config ->
  position:(int -> Geom.Point.t) ->
  result
(** Restitches the design in place. [position] maps a placed instance id to
    its location; default [max_se_fanout] is 32. *)

val chain_wirelength : Chains.t -> position:(int -> Geom.Point.t) -> float
(** Total Manhattan length of the TI-to-Q hops of a plan. *)
