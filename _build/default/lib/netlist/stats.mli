(** Design statistics: the raw counts behind Tables 1 and 2. *)

type t = {
  cells : int;            (** instances, excluding filler *)
  ffs : int;              (** sequential instances (Dff + Sdff + Tsff) *)
  test_points : int;      (** TSFF instances *)
  scan_ffs : int;         (** Sdff + Tsff *)
  combinational : int;
  nets : int;
  pins : int;             (** connected pins *)
  cell_area : float;      (** um^2, excluding filler *)
  max_fanout : int;
  logic_depth : int;      (** combinational levels *)
  by_kind : (Stdcell.Cell.kind * int) list;
}

val compute : Design.t -> t
val pp : Format.formatter -> t -> unit
