(** Full-scan capture-mode combinational view of a design.

    Testability analysis, ATPG and fault simulation all see the circuit the
    way a scan test does: every flip-flop output (Dff, Sdff or Tsff [Q]) is
    a controllable pseudo-input, every flip-flop [D] pin and primary output
    is an observable site, and only combinational cells remain as gates.
    Scan infrastructure pins (TI/TE/TR/CK) and clock nets are not part of
    the model; faults on them are covered by the scan shift and flush tests
    (§3.1 of the paper). Signals are identified by net id, so downstream
    arrays can be keyed directly by net. *)

type source =
  | From_port of int  (** primary input port id *)
  | From_ff of int    (** flip-flop instance id (its Q net) *)

type observe =
  | At_port of int  (** primary output port id *)
  | At_ff of int    (** flip-flop instance id (its D net is captured) *)

type gate = {
  g_inst : int;                 (** instance id in the design *)
  g_kind : Stdcell.Cell.kind;
  g_ins : int array;            (** input net ids, in pin order *)
  g_out : int;                  (** output net id *)
  g_level : int;
}

type t = {
  design : Design.t;
  gates : gate array;                      (** topological order *)
  gate_of_inst : int array;                (** inst id -> index in [gates]; -1 *)
  sources : (int * source) array;          (** (net id, provenance) *)
  observes : (int * observe) array;        (** (net id, site) *)
  consts : (int * bool) array;             (** tie-cell nets and test-mode constants *)
  fanout : (int * int) list array;         (** net id -> (gate index, input position) *)
  driver_gate : int array;                 (** net id -> driving gate index, or -1 *)
  is_source : bool array;                  (** by net id *)
  is_observed : bool array;                (** by net id *)
  modeled : bool array;                    (** by net id *)
  num_nets : int;
}

val build : Design.t -> t

val in_model : t -> int -> bool
(** Whether a net carries a modelled logic signal (reachable from a source
    or constant through modelled gates, or itself a source/constant). *)

val cone_size_to_inputs : t -> int -> int
(** Number of gates in the transitive fan-in cone of a net; a crude size
    measure used by test point selection. *)
