(** Structural Verilog I/O for gate-level netlists.

    Supports the subset produced by [write]: one flat module, scalar ports
    and wires, named-association cell instantiations over the standard-cell
    library. Clock-domain definitions are carried in structured comments
    ([// domain <name> <period_ps> <clock_net>]) so a write/parse round
    trip is lossless. *)

val write : Format.formatter -> Design.t -> unit

val to_string : Design.t -> string

val write_file : string -> Design.t -> unit

exception Parse_error of int * string
(** (line, message). *)

val parse : ?lib:Stdcell.Library.t -> string -> Design.t
(** Parse from a string. Unknown cell names raise [Parse_error]. *)

val parse_file : ?lib:Stdcell.Library.t -> string -> Design.t
