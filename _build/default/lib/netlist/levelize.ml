type t = {
  order : int array;
  level_of_inst : int array;
  level_of_net : int array;
  max_level : int;
}

exception Combinational_loop of int list

let is_comb (i : Design.instance) =
  (not i.cell.Stdcell.Cell.sequential) && i.cell.Stdcell.Cell.kind <> Stdcell.Cell.Filler

let compute (d : Design.t) =
  let ni = Design.num_insts d and nn = Design.num_nets d in
  let level_of_inst = Array.make ni (-1) in
  let level_of_net = Array.make nn 0 in
  (* pending input-pin count per combinational instance *)
  let pending = Array.make ni 0 in
  let comb_count = ref 0 in
  Design.iter_insts d (fun i ->
      if is_comb i then begin
        incr comb_count;
        let count = ref 0 in
        Array.iteri
          (fun pin nid ->
            if nid >= 0 && Stdcell.Pin.is_input i.cell.Stdcell.Cell.pins.(pin) then begin
              match (Design.net d nid).driver with
              | Design.Cell_pin (src, _) when is_comb (Design.inst d src) -> incr count
              | _ -> ()
            end)
          i.conns;
        pending.(i.id) <- !count
      end);
  let queue = Queue.create () in
  Design.iter_insts d (fun i ->
      if is_comb i && pending.(i.id) = 0 then Queue.add i.id queue);
  let order = Array.make !comb_count 0 in
  let emitted = ref 0 in
  let max_level = ref 0 in
  while not (Queue.is_empty queue) do
    let iid = Queue.pop queue in
    let i = Design.inst d iid in
    let level = ref 0 in
    Array.iteri
      (fun pin nid ->
        if nid >= 0 && Stdcell.Pin.is_input i.cell.Stdcell.Cell.pins.(pin) then
          level := max !level (level_of_net.(nid) + 1))
      i.conns;
    level_of_inst.(iid) <- !level;
    max_level := max !max_level !level;
    order.(!emitted) <- iid;
    incr emitted;
    let out_net = Design.net_of_output d i in
    if out_net >= 0 then begin
      level_of_net.(out_net) <- !level;
      List.iter
        (fun (sink, _) ->
          let s = Design.inst d sink in
          if is_comb s then begin
            pending.(sink) <- pending.(sink) - 1;
            if pending.(sink) = 0 then Queue.add sink queue
          end)
        (Design.net d out_net).sinks
    end
  done;
  if !emitted <> !comb_count then begin
    let stuck = ref [] in
    Design.iter_insts d (fun i ->
        if is_comb i && level_of_inst.(i.id) < 0 then stuck := i.id :: !stuck);
    raise (Combinational_loop (List.rev !stuck))
  end;
  (* nets driven by sequential cells or ports stay at level 0; nets driven by
     combinational cells were set above *)
  { order; level_of_inst; level_of_net; max_level = !max_level }

let depth t = t.max_level
