type source =
  | From_port of int
  | From_ff of int

type observe =
  | At_port of int
  | At_ff of int

type gate = {
  g_inst : int;
  g_kind : Stdcell.Cell.kind;
  g_ins : int array;
  g_out : int;
  g_level : int;
}

type t = {
  design : Design.t;
  gates : gate array;
  gate_of_inst : int array;
  sources : (int * source) array;
  observes : (int * observe) array;
  consts : (int * bool) array;
  fanout : (int * int) list array;
  driver_gate : int array;
  is_source : bool array;
  is_observed : bool array;
  modeled : bool array;
  num_nets : int;
}

let clock_nets (d : Design.t) =
  Array.to_list (Array.map (fun (dom : Design.domain) -> dom.Design.clock_net) d.Design.domains)

let test_port_net (d : Design.t) name =
  match Design.find_port d name with
  | Some p when p.Design.dir = Design.In -> Some p.Design.pnet
  | _ -> None

let build (d : Design.t) =
  let nn = Design.num_nets d in
  let clocks = clock_nets d in
  let is_clock = Array.make nn false in
  List.iter (fun c -> if c >= 0 then is_clock.(c) <- true) clocks;
  (* constants: tie cells, plus capture-mode values of the global test
     controls should they ever feed modelled logic *)
  let consts = ref [] in
  Design.iter_insts d (fun i ->
      match i.Design.cell.Stdcell.Cell.kind with
      | Stdcell.Cell.Tiehi ->
        let n = Design.net_of_output d i in
        if n >= 0 then consts := (n, true) :: !consts
      | Stdcell.Cell.Tielo ->
        let n = Design.net_of_output d i in
        if n >= 0 then consts := (n, false) :: !consts
      | _ -> ());
  (match test_port_net d "test_se" with
   | Some n -> consts := (n, false) :: !consts
   | None -> ());
  (match test_port_net d "test_tr" with
   | Some n -> consts := (n, true) :: !consts
   | None -> ());
  let consts = Array.of_list (List.rev !consts) in
  let is_const = Array.make nn false in
  Array.iter (fun (n, _) -> is_const.(n) <- true) consts;
  (* sources *)
  let sources = ref [] in
  List.iter
    (fun (p : Design.port) ->
      let n = p.Design.pnet in
      if n >= 0 && (not is_clock.(n)) && not is_const.(n) then
        sources := (n, From_port p.Design.pid) :: !sources)
    (Design.input_ports d);
  Design.iter_insts d (fun i ->
      if Design.is_ff i then begin
        let q = Design.net_of_output d i in
        if q >= 0 then sources := (q, From_ff i.Design.id) :: !sources
      end);
  let sources = Array.of_list (List.rev !sources) in
  let is_source = Array.make nn false in
  Array.iter (fun (n, _) -> is_source.(n) <- true) sources;
  (* modelled nets: fixpoint over levelized gates *)
  let lv = Levelize.compute d in
  let modeled = Array.make nn false in
  Array.iter (fun (n, _) -> modeled.(n) <- true) sources;
  Array.iter (fun (n, _) -> modeled.(n) <- true) consts;
  let gates = ref [] in
  let gate_of_inst = Array.make (Design.num_insts d) (-1) in
  let count = ref 0 in
  Array.iter
    (fun iid ->
      let i = Design.inst d iid in
      let cell = i.Design.cell in
      match cell.Stdcell.Cell.kind with
      | Stdcell.Cell.Tiehi | Stdcell.Cell.Tielo | Stdcell.Cell.Filler -> ()
      | kind ->
        let arity = Stdcell.Cell.num_inputs kind in
        let ins = Array.sub i.Design.conns 0 arity in
        let all_modeled =
          Array.for_all (fun n -> n >= 0 && modeled.(n)) ins
        in
        if all_modeled then begin
          let out = Design.net_of_output d i in
          if out >= 0 then begin
            modeled.(out) <- true;
            gate_of_inst.(iid) <- !count;
            incr count;
            gates :=
              { g_inst = iid; g_kind = kind; g_ins = ins; g_out = out;
                g_level = lv.Levelize.level_of_inst.(iid) }
              :: !gates
          end
        end)
    lv.Levelize.order;
  let gates = Array.of_list (List.rev !gates) in
  (* observable sites *)
  let observes = ref [] in
  List.iter
    (fun (p : Design.port) ->
      let n = p.Design.pnet in
      if n >= 0 && modeled.(n) then observes := (n, At_port p.Design.pid) :: !observes)
    (Design.output_ports d);
  Design.iter_insts d (fun i ->
      if Design.is_ff i then begin
        match Stdcell.Cell.data_pin i.Design.cell with
        | Some dp ->
          let n = i.Design.conns.(dp) in
          if n >= 0 && modeled.(n) then observes := (n, At_ff i.Design.id) :: !observes
        | None -> ()
      end);
  let observes = Array.of_list (List.rev !observes) in
  let is_observed = Array.make nn false in
  Array.iter (fun (n, _) -> is_observed.(n) <- true) observes;
  let fanout = Array.make nn [] in
  let driver_gate = Array.make nn (-1) in
  Array.iteri
    (fun gi g ->
      driver_gate.(g.g_out) <- gi;
      Array.iteri (fun pos n -> fanout.(n) <- (gi, pos) :: fanout.(n)) g.g_ins)
    gates;
  { design = d;
    gates;
    gate_of_inst;
    sources;
    observes;
    consts;
    fanout;
    driver_gate;
    is_source;
    is_observed;
    modeled;
    num_nets = nn }

let in_model t n = n >= 0 && n < t.num_nets && t.modeled.(n)

let cone_size_to_inputs t net =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec visit n =
    if (not (Hashtbl.mem seen n)) && n >= 0 then begin
      Hashtbl.replace seen n ();
      let gi = t.driver_gate.(n) in
      if gi >= 0 then begin
        incr count;
        Array.iter visit t.gates.(gi).g_ins
      end
    end
  in
  visit net;
  !count
