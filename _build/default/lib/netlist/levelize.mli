(** Topological levelization of the combinational part of a design.

    Sources are input ports, sequential-cell outputs and tie cells; every
    combinational instance is assigned a level one greater than the deepest
    of its input nets. The order drives logic simulation, testability
    analysis and STA. *)

type t = {
  order : int array;          (** combinational instance ids, topologically sorted *)
  level_of_inst : int array;  (** by instance id; [-1] for sequential/filler *)
  level_of_net : int array;   (** by net id; sources at level 0 *)
  max_level : int;
}

exception Combinational_loop of int list
(** Carries the instance ids still unresolved when a cycle was detected. *)

val compute : Design.t -> t

val depth : t -> int
(** [max_level]. *)
