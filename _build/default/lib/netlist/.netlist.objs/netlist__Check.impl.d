lib/netlist/check.ml: Array Buffer Design Format List Stdcell
