lib/netlist/stats.ml: Array Design Format Hashtbl Levelize List Option Stdcell
