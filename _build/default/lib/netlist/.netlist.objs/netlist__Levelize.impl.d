lib/netlist/levelize.ml: Array Design List Queue Stdcell
