lib/netlist/verilog.ml: Array Buffer Design Format Fun Hashtbl List Printf Stdcell String
