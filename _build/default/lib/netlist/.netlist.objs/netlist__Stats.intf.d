lib/netlist/stats.mli: Design Format Stdcell
