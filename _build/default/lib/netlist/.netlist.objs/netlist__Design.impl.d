lib/netlist/design.ml: Array List Printf Stdcell Util
