lib/netlist/cmodel.mli: Design Stdcell
