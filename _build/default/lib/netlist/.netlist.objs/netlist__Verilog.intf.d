lib/netlist/verilog.mli: Design Format Stdcell
