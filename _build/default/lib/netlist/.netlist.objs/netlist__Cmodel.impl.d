lib/netlist/cmodel.ml: Array Design Hashtbl Levelize List Stdcell
