lib/netlist/design.mli: Stdcell Util
