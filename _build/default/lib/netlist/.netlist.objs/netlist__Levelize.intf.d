lib/netlist/levelize.mli: Design
