type t = {
  cells : int;
  ffs : int;
  test_points : int;
  scan_ffs : int;
  combinational : int;
  nets : int;
  pins : int;
  cell_area : float;
  max_fanout : int;
  logic_depth : int;
  by_kind : (Stdcell.Cell.kind * int) list;
}

let compute (d : Design.t) =
  let cells = ref 0
  and ffs = ref 0
  and test_points = ref 0
  and scan_ffs = ref 0
  and combinational = ref 0
  and pins = ref 0
  and cell_area = ref 0.0 in
  let kind_counts : (Stdcell.Cell.kind, int) Hashtbl.t = Hashtbl.create 32 in
  Design.iter_insts d (fun i ->
      let cell = i.cell in
      let kind = cell.Stdcell.Cell.kind in
      if kind <> Stdcell.Cell.Filler then begin
        incr cells;
        cell_area := !cell_area +. Stdcell.Cell.area cell;
        Array.iter (fun nid -> if nid >= 0 then incr pins) i.conns;
        (match kind with
         | Stdcell.Cell.Dff -> incr ffs
         | Stdcell.Cell.Sdff ->
           incr ffs;
           incr scan_ffs
         | Stdcell.Cell.Tsff ->
           incr ffs;
           incr scan_ffs;
           incr test_points
         | _ -> incr combinational);
        Hashtbl.replace kind_counts kind
          (1 + Option.value ~default:0 (Hashtbl.find_opt kind_counts kind))
      end);
  let max_fanout = ref 0 in
  Design.iter_nets d (fun n -> max_fanout := max !max_fanout (List.length n.sinks));
  let logic_depth =
    match Levelize.compute d with
    | lv -> Levelize.depth lv
    | exception Levelize.Combinational_loop _ -> -1
  in
  let by_kind =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) kind_counts []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  { cells = !cells;
    ffs = !ffs;
    test_points = !test_points;
    scan_ffs = !scan_ffs;
    combinational = !combinational;
    nets = Design.num_nets d;
    pins = !pins;
    cell_area = !cell_area;
    max_fanout = !max_fanout;
    logic_depth;
    by_kind }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cells: %d (%d FF, %d TP, %d comb)@ nets: %d, pins: %d@ cell area: %.0f um^2@ \
     max fanout: %d, depth: %d@]"
    t.cells t.ffs t.test_points t.combinational t.nets t.pins t.cell_area t.max_fanout
    t.logic_depth
