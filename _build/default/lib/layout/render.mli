(** Layout rendering: Figure 3's three stages as SVG, plus a terminal
    density map. *)

val svg_floorplan : Floorplan.t -> string
(** Figure 3a: rings, core, rows. *)

val svg_placement : Place.t -> string
(** Figure 3b: placed cells; flip-flops, test points and clock buffers are
    colour-coded. *)

val svg_routed : ?max_nets:int -> Place.t -> Route.t -> string
(** Figure 3c: placement plus routed net trees (a sample, to keep the file
    small; default 1500 nets). *)

val ascii_density : ?cols:int -> Place.t -> string
(** Utilization heat map for terminal output. *)

val write_file : string -> string -> unit
