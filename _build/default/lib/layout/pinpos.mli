(** Physical positions of connection points: instance pins sit at the cell
    centre (adequate at this abstraction level), ports are spread around the
    core boundary in id order, as pad-ring connections. *)

val inst_pin : Place.t -> int -> Geom.Point.t
(** Position of any pin of a placed instance. *)

val port : Place.t -> int -> Geom.Point.t

val of_driver : Place.t -> Netlist.Design.net -> Geom.Point.t option
(** Position of whatever drives the net, if placeable. *)
