(** ECO placement (step 4): cells created after global placement — clock
    buffers, scan-enable buffers — are legalized into the nearest row with
    available capacity, without disturbing the placed cells. *)

val add_cell : Place.t -> inst:int -> near:Geom.Point.t -> unit
(** Raises [Failure] if no row can absorb the cell (never happens below
    ~99.9% utilization). *)
