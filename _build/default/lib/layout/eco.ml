module Design = Netlist.Design
module Point = Geom.Point
module Rect = Geom.Rect

let add_cell (pl : Place.t) ~inst ~near =
  Place.ensure_capacity pl (Design.num_insts pl.Place.design);
  let i = Design.inst pl.Place.design inst in
  let w = i.Design.cell.Stdcell.Cell.width in
  let fp = pl.Place.fp in
  let nrows = Floorplan.num_rows fp in
  let home = Floorplan.row_of_y fp near.Point.y in
  (* search outward for a row with room; when every row is packed (tiny
     cores at high utilization), overfill the freest row — the detailed
     placer would shuffle neighbours to make the site legal *)
  let rec find delta =
    if delta > nrows then begin
      let best = ref 0 in
      for r = 1 to nrows - 1 do
        if pl.Place.row_used.(r) < pl.Place.row_used.(!best) then best := r
      done;
      !best
    end
    else begin
      let try_row r =
        r >= 0 && r < nrows && pl.Place.row_used.(r) +. w <= fp.Floorplan.row_length
      in
      if try_row (home + delta) then home + delta
      else if try_row (home - delta) then home - delta
      else find (delta + 1)
    end
  in
  let r = find 0 in
  let lx = fp.Floorplan.core.Rect.lx in
  let x = Float.max lx (Float.min (near.Point.x -. (w /. 2.0)) (lx +. fp.Floorplan.row_length -. w)) in
  pl.Place.x.(inst) <- x;
  pl.Place.row.(inst) <- r;
  pl.Place.row_used.(r) <- pl.Place.row_used.(r) +. w
