module Design = Netlist.Design
module Cell = Stdcell.Cell
module Point = Geom.Point

type report = {
  buffers : int;
  max_depth : int;
  sinks : int;
}

type sink = {
  s_inst : int;
  s_pin : int;
  s_pos : Point.t;
}

let centroid sinks =
  let n = float_of_int (List.length sinks) in
  let cx = List.fold_left (fun acc s -> acc +. s.s_pos.Point.x) 0.0 sinks /. n in
  let cy = List.fold_left (fun acc s -> acc +. s.s_pos.Point.y) 0.0 sinks /. n in
  Point.make cx cy

(* split a sink list in two along its wider spread *)
let split sinks =
  let xs = List.map (fun s -> s.s_pos.Point.x) sinks in
  let ys = List.map (fun s -> s.s_pos.Point.y) sinks in
  let spread vs = List.fold_left Float.max neg_infinity vs -. List.fold_left Float.min infinity vs in
  let by_x = spread xs >= spread ys in
  let key s = if by_x then s.s_pos.Point.x else s.s_pos.Point.y in
  let sorted = List.sort (fun a b -> compare (key a) (key b)) sinks in
  let n = List.length sorted in
  (List.filteri (fun i _ -> i < n / 2) sorted, List.filteri (fun i _ -> i >= n / 2) sorted)

let run ?(max_group = 16) (pl : Place.t) =
  let d = pl.Place.design in
  let buf_small = Stdcell.Library.find d.Design.lib Cell.Clkbuf ~drive:4 in
  let buf_big = Stdcell.Library.find d.Design.lib Cell.Clkbuf ~drive:8 in
  let buffers = ref 0 and max_depth = ref 0 and total_sinks = ref 0 in
  let counter = ref 0 in
  (* returns the (inst, input pin) of the subtree's root buffer plus its
     position, so the caller can wire a parent net to it *)
  let rec build dom depth sinks : sink =
    max_depth := max !max_depth depth;
    let make_buffer cell (children : sink list) =
      let pos = centroid children in
      let name = Printf.sprintf "ctsbuf_%d_%d" dom !counter in
      incr counter;
      let b = Design.add_instance d ~name ~cell in
      incr buffers;
      Eco.add_cell pl ~inst:b.Design.id ~near:pos;
      let out = Design.add_net d (name ^ "_y") in
      Design.connect d ~inst:b.Design.id ~pin:1 ~net:out.Design.nid;
      List.iter
        (fun s ->
          Design.disconnect d ~inst:s.s_inst ~pin:s.s_pin;
          Design.connect d ~inst:s.s_inst ~pin:s.s_pin ~net:out.Design.nid)
        children;
      { s_inst = b.Design.id; s_pin = 0; s_pos = Place.position pl b.Design.id }
    in
    if List.length sinks <= max_group then make_buffer buf_small sinks
    else begin
      let left, right = split sinks in
      let l = build dom (depth + 1) left and r = build dom (depth + 1) right in
      make_buffer buf_big [ l; r ]
    end
  in
  Array.iteri
    (fun dom (domain : Design.domain) ->
      let sinks = ref [] in
      Design.iter_insts d (fun i ->
          if Design.is_ff i && i.Design.domain = dom then begin
            match Cell.clock_pin i.Design.cell with
            | Some ck when i.Design.conns.(ck) = domain.Design.clock_net ->
              sinks :=
                { s_inst = i.Design.id; s_pin = ck; s_pos = Place.position pl i.Design.id }
                :: !sinks
            | Some _ | None -> ()
          end);
      total_sinks := !total_sinks + List.length !sinks;
      match !sinks with
      | [] -> ()
      | sinks ->
        let root = build dom 1 sinks in
        (* the root buffer's input comes straight from the clock port net *)
        Design.connect d ~inst:root.s_inst ~pin:root.s_pin ~net:domain.Design.clock_net)
    d.Design.domains;
  { buffers = !buffers; max_depth = !max_depth; sinks = !total_sinks }
