module Design = Netlist.Design
module Rect = Geom.Rect
module Point = Geom.Point

let svg_header (chip : Rect.t) buf =
  let w = Rect.width chip and h = Rect.height chip in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"%.1f %.1f %.1f %.1f\" \
        width=\"800\" height=\"800\">\n<g transform=\"translate(0,%.1f) scale(1,-1)\">\n"
       chip.Rect.lx chip.Rect.ly w h
       (chip.Rect.ly +. chip.Rect.uy))

let svg_footer buf = Buffer.add_string buf "</g>\n</svg>\n"

let rect buf ?(stroke = "none") ?(stroke_w = 0.0) ~fill (r : Rect.t) =
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" fill=\"%s\" \
        stroke=\"%s\" stroke-width=\"%.2f\"/>\n"
       r.Rect.lx r.Rect.ly (Rect.width r) (Rect.height r) fill stroke stroke_w)

let base_floorplan buf (fp : Floorplan.t) =
  rect buf ~fill:"#f4f1e8" fp.Floorplan.chip;
  List.iter
    (fun (ring : Floorplan.ring) ->
      let color =
        match ring.Floorplan.ring_name with
        | "io" -> "#c8bfa9"
        | "power" -> "#c96f4a"
        | _ -> "#5b7f9c"
      in
      rect buf ~fill:"none" ~stroke:color ~stroke_w:ring.Floorplan.width
        (Rect.inset ring.Floorplan.outer (ring.Floorplan.width /. 2.0)))
    fp.Floorplan.rings;
  rect buf ~fill:"#ffffff" ~stroke:"#999999" ~stroke_w:0.5 fp.Floorplan.core;
  Array.iter (fun row -> rect buf ~fill:"none" ~stroke:"#dddddd" ~stroke_w:0.2 row)
    fp.Floorplan.rows

let svg_floorplan fp =
  let buf = Buffer.create 8192 in
  svg_header fp.Floorplan.chip buf;
  base_floorplan buf fp;
  svg_footer buf;
  Buffer.contents buf

let cell_color (cell : Stdcell.Cell.t) =
  match cell.Stdcell.Cell.kind with
  | Stdcell.Cell.Tsff -> "#d62728"
  | Stdcell.Cell.Sdff | Stdcell.Cell.Dff -> "#1f77b4"
  | Stdcell.Cell.Clkbuf -> "#2ca02c"
  | Stdcell.Cell.Filler -> "#eeeeee"
  | _ -> "#bbbbbb"

let svg_placement (pl : Place.t) =
  let fp = pl.Place.fp in
  let buf = Buffer.create 65536 in
  svg_header fp.Floorplan.chip buf;
  base_floorplan buf fp;
  let rh = Stdcell.Library.row_height in
  Design.iter_insts pl.Place.design (fun i ->
      if Place.is_placed pl i.Design.id then begin
        let x = pl.Place.x.(i.Design.id) in
        let y = Place.y_of_row pl pl.Place.row.(i.Design.id) in
        let r = Rect.of_size ~lx:x ~ly:(y +. 0.2) ~w:i.Design.cell.Stdcell.Cell.width ~h:(rh -. 0.4) in
        rect buf ~fill:(cell_color i.Design.cell) r
      end);
  svg_footer buf;
  Buffer.contents buf

let svg_routed ?(max_nets = 1500) (pl : Place.t) (rt : Route.t) =
  let fp = pl.Place.fp in
  let buf = Buffer.create 65536 in
  svg_header fp.Floorplan.chip buf;
  base_floorplan buf fp;
  let drawn = ref 0 in
  Array.iter
    (fun route ->
      match route with
      | Some (r : Route.net_route) when !drawn < max_nets ->
        incr drawn;
        Array.iteri
          (fun v p ->
            if p >= 0 then begin
              let a = r.Route.terminals.(v).Route.t_point
              and b = r.Route.terminals.(p).Route.t_point in
              Buffer.add_string buf
                (Printf.sprintf
                   "<polyline points=\"%.1f,%.1f %.1f,%.1f %.1f,%.1f\" fill=\"none\" \
                    stroke=\"#8888cc\" stroke-width=\"0.15\" opacity=\"0.6\"/>\n"
                   a.Point.x a.Point.y b.Point.x a.Point.y b.Point.x b.Point.y)
            end)
          r.Route.parent
      | Some _ | None -> ())
    rt.Route.routes;
  svg_footer buf;
  Buffer.contents buf

let ascii_density ?(cols = 64) (pl : Place.t) =
  let fp = pl.Place.fp in
  let core = fp.Floorplan.core in
  let rows_out = max 1 (cols / 2) in
  let grid = Array.make_matrix rows_out cols 0.0 in
  Design.iter_insts pl.Place.design (fun i ->
      if Place.is_placed pl i.Design.id && i.Design.cell.Stdcell.Cell.kind <> Stdcell.Cell.Filler
      then begin
        let p = Place.position pl i.Design.id in
        let c =
          min (cols - 1)
            (int_of_float (float_of_int cols *. (p.Point.x -. core.Rect.lx) /. Rect.width core))
        in
        let r =
          min (rows_out - 1)
            (int_of_float
               (float_of_int rows_out *. (p.Point.y -. core.Rect.ly) /. Rect.height core))
        in
        grid.(max 0 r).(max 0 c) <-
          grid.(max 0 r).(max 0 c) +. Stdcell.Cell.area i.Design.cell
      end);
  let bin_area = Rect.area core /. float_of_int (cols * rows_out) in
  let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  let buf = Buffer.create 4096 in
  for r = rows_out - 1 downto 0 do
    for c = 0 to cols - 1 do
      let u = grid.(r).(c) /. bin_area in
      let k = max 0 (min 9 (int_of_float (u *. 9.0))) in
      Buffer.add_char buf shades.(k)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
