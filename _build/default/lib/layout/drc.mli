(** Electrical DRC fixing: drivers whose estimated output load exceeds the
    library's characterised maximum are upsized to the next drive strength.
    This is mandatory max-capacitance cleanup, not timing optimisation —
    the paper's flow optimises for area only but still has to produce
    electrically legal nets (its remaining "slow nodes" are the cases where
    even the largest drive is not enough; the same happens here). *)

type report = {
  upsized : int;
  unresolved : int;  (** still over the limit at the largest drive *)
}

val fix_max_cap : Place.t -> report
(** Estimates each net's load as half-perimeter wire plus pin caps and
    upsizes drivers in place (cell widths change, row occupancy is
    updated). Run after placement, before routing. *)
