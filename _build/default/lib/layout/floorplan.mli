(** Floorplanning (step 2, Figure 3a).

    A square core of abutted standard-cell rows sized for a target row
    utilization, surrounded by ground, power and IO rings. Rows share
    power/ground strips with their neighbours (cells are placed with
    alternating orientation), so row pitch equals row height. The chip
    outline is forced square even when the core drifts slightly
    rectangular, exactly as in the paper's §4.3. *)

type ring = {
  ring_name : string;
  outer : Geom.Rect.t;
  width : float;
}

type t = {
  core : Geom.Rect.t;
  chip : Geom.Rect.t;
  rows : Geom.Rect.t array;   (** bottom row first *)
  row_length : float;         (** um *)
  target_utilization : float;
  rings : ring list;          (** innermost first: ground, power, IO *)
}

val create : ?utilization:float -> Netlist.Design.t -> t
(** Sizes the floorplan from the design's total cell area; default
    utilization 0.97 (the paper uses 97% for s38417 and the control core,
    50% for the DSP core). *)

val num_rows : t -> int
val total_row_length : t -> float
val core_area : t -> float
val chip_area : t -> float
val aspect_ratio : t -> float
val row_of_y : t -> float -> int
(** Index of the row containing (or nearest to) a y coordinate. *)
