module Rect = Geom.Rect

type ring = {
  ring_name : string;
  outer : Rect.t;
  width : float;
}

type t = {
  core : Rect.t;
  chip : Rect.t;
  rows : Rect.t array;
  row_length : float;
  target_utilization : float;
  rings : ring list;
}

let ground_ring_width = 4.0
let power_ring_width = 4.0
let io_ring_width = 25.0
let ring_gap = 2.0

let create ?(utilization = 0.97) (d : Netlist.Design.t) =
  if utilization <= 0.0 || utilization > 1.0 then invalid_arg "Floorplan.create: utilization";
  let cell_area = ref 0.0 in
  Netlist.Design.iter_insts d (fun i ->
      if i.Netlist.Design.cell.Stdcell.Cell.kind <> Stdcell.Cell.Filler then
        cell_area := !cell_area +. Stdcell.Cell.area i.Netlist.Design.cell);
  let rh = Stdcell.Library.row_height in
  let core_area = !cell_area /. utilization in
  let side = sqrt core_area in
  let n_rows = max 1 (int_of_float (Float.round (side /. rh))) in
  let row_length = core_area /. (float_of_int n_rows *. rh) in
  let core = Rect.of_size ~lx:0.0 ~ly:0.0 ~w:row_length ~h:(float_of_int n_rows *. rh) in
  let rows =
    Array.init n_rows (fun k ->
        Rect.of_size ~lx:core.Rect.lx ~ly:(core.Rect.ly +. (float_of_int k *. rh))
          ~w:row_length ~h:rh)
  in
  (* the chip is forced square: take the larger core dimension *)
  let core_side = Float.max (Rect.width core) (Rect.height core) in
  let margin = ring_gap +. ground_ring_width +. ring_gap +. power_ring_width +. ring_gap
               +. io_ring_width in
  let cx = Rect.center core in
  let half = (core_side /. 2.0) +. margin in
  let chip =
    Rect.make ~lx:(cx.Geom.Point.x -. half) ~ly:(cx.Geom.Point.y -. half)
      ~ux:(cx.Geom.Point.x +. half) ~uy:(cx.Geom.Point.y +. half)
  in
  let ring name inset_from_chip width =
    { ring_name = name; outer = Rect.inset chip inset_from_chip; width }
  in
  let rings =
    [ ring "ground" (io_ring_width +. ring_gap +. power_ring_width +. ring_gap) ground_ring_width;
      ring "power" (io_ring_width +. ring_gap) power_ring_width;
      ring "io" 0.0 io_ring_width ]
  in
  { core; chip; rows; row_length; target_utilization = utilization; rings }

let num_rows t = Array.length t.rows

let total_row_length t = float_of_int (num_rows t) *. t.row_length

let core_area t = Rect.area t.core

let chip_area t = Rect.area t.chip

let aspect_ratio t = Rect.aspect_ratio t.core

let row_of_y t y =
  let rh = Stdcell.Library.row_height in
  let k = int_of_float ((y -. t.core.Rect.ly) /. rh) in
  max 0 (min (num_rows t - 1) k)
