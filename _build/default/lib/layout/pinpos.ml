module Design = Netlist.Design
module Point = Geom.Point
module Rect = Geom.Rect

let inst_pin pl iid = Place.position pl iid

(* ports are distributed around the core boundary, in port-id order *)
let port (pl : Place.t) pid =
  let core = pl.Place.fp.Floorplan.core in
  let num_ports = Util.Vec.length pl.Place.design.Design.ports in
  let perimeter = 2.0 *. (Rect.width core +. Rect.height core) in
  let s = perimeter *. float_of_int pid /. float_of_int (max 1 num_ports) in
  let w = Rect.width core and h = Rect.height core in
  if s < w then Point.make (core.Rect.lx +. s) core.Rect.ly
  else if s < w +. h then Point.make core.Rect.ux (core.Rect.ly +. (s -. w))
  else if s < (2.0 *. w) +. h then Point.make (core.Rect.ux -. (s -. w -. h)) core.Rect.uy
  else Point.make core.Rect.lx (core.Rect.uy -. (s -. (2.0 *. w) -. h))

let of_driver pl (n : Design.net) =
  match n.Design.driver with
  | Design.Cell_pin (iid, _) ->
    if Place.is_placed pl iid then Some (inst_pin pl iid) else None
  | Design.Port_in pid -> Some (port pl pid)
  | Design.No_driver -> None
