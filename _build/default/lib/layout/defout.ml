module Design = Netlist.Design
module Rect = Geom.Rect
module Point = Geom.Point

(* DEF uses integer database units; 1000 units per micron is conventional *)
let dbu = 1000.0

let i um = int_of_float (Float.round (um *. dbu))

let write ppf (pl : Place.t) =
  let d = pl.Place.design in
  let fp = pl.Place.fp in
  let pr fmt = Format.fprintf ppf fmt in
  pr "VERSION 5.8 ;@.";
  pr "DIVIDERCHAR \"/\" ;@.";
  pr "BUSBITCHARS \"[]\" ;@.";
  pr "DESIGN %s ;@." d.Design.design_name;
  pr "UNITS DISTANCE MICRONS %d ;@." (int_of_float dbu);
  let chip = fp.Floorplan.chip in
  pr "DIEAREA ( %d %d ) ( %d %d ) ;@." (i chip.Rect.lx) (i chip.Rect.ly)
    (i chip.Rect.ux) (i chip.Rect.uy);
  Array.iteri
    (fun k (row : Rect.t) ->
      pr "ROW core_row_%d CoreSite %d %d %s DO %d BY 1 STEP %d 0 ;@." k
        (i row.Rect.lx) (i row.Rect.ly)
        (if k mod 2 = 0 then "N" else "FS")
        (int_of_float (Rect.width row /. 0.2))
        (i 0.2))
    fp.Floorplan.rows;
  let placed = ref [] and count = ref 0 in
  Design.iter_insts d (fun inst ->
      if Place.is_placed pl inst.Design.id then begin
        incr count;
        placed := inst :: !placed
      end);
  pr "COMPONENTS %d ;@." !count;
  List.iter
    (fun (inst : Design.instance) ->
      let r = pl.Place.row.(inst.Design.id) in
      pr "  - %s %s + PLACED ( %d %d ) %s ;@." inst.Design.iname
        inst.Design.cell.Stdcell.Cell.name
        (i pl.Place.x.(inst.Design.id))
        (i (Place.y_of_row pl r))
        (if r mod 2 = 0 then "N" else "FS"))
    (List.rev !placed);
  pr "END COMPONENTS@.";
  let ports = Design.input_ports d @ Design.output_ports d in
  pr "PINS %d ;@." (List.length ports);
  List.iter
    (fun (p : Design.port) ->
      let pos = Pinpos.port pl p.Design.pid in
      pr "  - %s + NET %s + DIRECTION %s + PLACED ( %d %d ) N ;@." p.Design.pname
        (if p.Design.pnet >= 0 then (Design.net d p.Design.pnet).Design.nname else p.Design.pname)
        (match p.Design.dir with Design.In -> "INPUT" | Design.Out -> "OUTPUT")
        (i pos.Point.x) (i pos.Point.y))
    ports;
  pr "END PINS@.";
  let net_count = ref 0 in
  Design.iter_nets d (fun n ->
      if n.Design.driver <> Design.No_driver || n.Design.sinks <> [] then incr net_count);
  pr "NETS %d ;@." !net_count;
  Design.iter_nets d (fun n ->
      if n.Design.driver <> Design.No_driver || n.Design.sinks <> [] then begin
        pr "  - %s" n.Design.nname;
        (match n.Design.driver with
         | Design.Cell_pin (iid, pin) ->
           let inst = Design.inst d iid in
           pr " ( %s %s )" inst.Design.iname
             inst.Design.cell.Stdcell.Cell.pins.(pin).Stdcell.Pin.name
         | Design.Port_in pid -> pr " ( PIN %s )" (Design.port d pid).Design.pname
         | Design.No_driver -> ());
        List.iter
          (fun (iid, pin) ->
            let inst = Design.inst d iid in
            pr " ( %s %s )" inst.Design.iname
              inst.Design.cell.Stdcell.Cell.pins.(pin).Stdcell.Pin.name)
          n.Design.sinks;
        if n.Design.out_port >= 0 then
          pr " ( PIN %s )" (Design.port d n.Design.out_port).Design.pname;
        pr " ;@."
      end);
  pr "END NETS@.";
  pr "END DESIGN@."

let to_string pl =
  let buf = Buffer.create 65536 in
  let ppf = Format.formatter_of_buffer buf in
  write ppf pl;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let write_file path pl =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      write ppf pl;
      Format.pp_print_flush ppf ())
