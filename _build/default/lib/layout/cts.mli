(** Clock-tree synthesis (step 4, the CT-GEN stand-in).

    Per clock domain, a buffered tree is built over the flip-flop clock
    pins by recursive geometric median splitting: leaves group nearby
    sinks under one clock buffer, internal levels buffer groups of
    buffers, and the root buffer is driven from the clock port. Buffers
    are ECO-placed at their group centroids and the netlist is rewired, so
    the later routing/extraction/STA steps see the tree as ordinary logic
    and clock latency and skew (eq. 3's T_skew) emerge from the same delay
    model as everything else. *)

type report = {
  buffers : int;        (** clock buffers inserted (all domains) *)
  max_depth : int;      (** tree levels *)
  sinks : int;
}

val run : ?max_group:int -> Place.t -> report
(** Default [max_group] (sinks or subtrees per buffer) is 16. *)
