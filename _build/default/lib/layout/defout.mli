(** DEF-style export of a placed (and optionally routed) design: DIEAREA,
    ROWs, COMPONENTS with placement status, PINS on the core boundary and
    per-net connectivity. Enough of the DEF dialect that standard viewers
    and parsers accept it, which makes the layouts this flow produces
    inspectable outside this repository. *)

val write : Format.formatter -> Place.t -> unit
val to_string : Place.t -> string
val write_file : string -> Place.t -> unit
