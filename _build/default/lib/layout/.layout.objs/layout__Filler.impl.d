lib/layout/filler.ml: Array Float Floorplan List Netlist Place Printf Stdcell
