lib/layout/route.ml: Array Float Floorplan Geom List Netlist Pinpos Place
