lib/layout/floorplan.mli: Geom Netlist
