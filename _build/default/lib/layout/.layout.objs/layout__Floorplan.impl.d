lib/layout/floorplan.ml: Array Float Geom Netlist Stdcell
