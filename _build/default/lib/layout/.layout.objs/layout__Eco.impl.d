lib/layout/eco.ml: Array Float Floorplan Geom Netlist Place Stdcell
