lib/layout/render.ml: Array Buffer Floorplan Fun Geom List Netlist Place Printf Route Stdcell
