lib/layout/route.mli: Geom Place
