lib/layout/cts.ml: Array Eco Float Geom List Netlist Place Printf Stdcell
