lib/layout/extract.mli: Place Route
