lib/layout/defout.ml: Array Buffer Float Floorplan Format Fun Geom List Netlist Pinpos Place Stdcell
