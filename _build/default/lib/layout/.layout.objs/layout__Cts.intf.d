lib/layout/cts.mli: Place
