lib/layout/render.mli: Floorplan Place Route
