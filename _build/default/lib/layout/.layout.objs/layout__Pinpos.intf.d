lib/layout/pinpos.mli: Geom Netlist Place
