lib/layout/defout.mli: Format Place
