lib/layout/eco.mli: Geom Place
