lib/layout/drc.mli: Place
