lib/layout/extract.ml: Array Geom List Netlist Place Route Stdcell
