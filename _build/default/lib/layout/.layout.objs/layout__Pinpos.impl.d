lib/layout/pinpos.ml: Floorplan Geom Netlist Place Util
