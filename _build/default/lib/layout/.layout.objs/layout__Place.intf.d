lib/layout/place.mli: Floorplan Geom Netlist
