lib/layout/place.ml: Array Float Floorplan Fun Geom Hashtbl List Netlist Queue Stdcell Util
