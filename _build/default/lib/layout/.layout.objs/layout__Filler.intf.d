lib/layout/filler.mli: Place
