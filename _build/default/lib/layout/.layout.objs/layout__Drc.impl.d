lib/layout/drc.ml: Array Extract Float Geom List Netlist Place Stdcell
