(** Filler insertion (step 4): empty row space is packed with filler cells
    so the power/ground strips at the row edges stay continuous. *)

type report = {
  cells_added : int;
  filler_area : float;     (** um^2 *)
  filler_area_pct : float; (** of the core area — Table 2's "filler cells area" *)
}

val run : Place.t -> report
(** Adds filler instances to the design (they have no pins and are ignored
    by every netlist analysis). *)
