module Design = Netlist.Design
module Cell = Stdcell.Cell
module Point = Geom.Point

type report = {
  upsized : int;
  unresolved : int;
}

let net_load_estimate (pl : Place.t) (n : Design.net) =
  let d = pl.Place.design in
  let pins =
    List.fold_left
      (fun acc (iid, pin) ->
        acc +. (Design.inst d iid).Design.cell.Cell.pins.(pin).Stdcell.Pin.cap)
      0.0 n.Design.sinks
  in
  let pts = ref [] in
  (match n.Design.driver with
   | Design.Cell_pin (iid, _) when Place.is_placed pl iid ->
     pts := Place.position pl iid :: !pts
   | _ -> ());
  List.iter
    (fun (iid, _) -> if Place.is_placed pl iid then pts := Place.position pl iid :: !pts)
    n.Design.sinks;
  let wire =
    match !pts with
    | [] | [ _ ] -> 0.0
    | first :: rest ->
      let lx = ref first.Point.x and ux = ref first.Point.x in
      let ly = ref first.Point.y and uy = ref first.Point.y in
      List.iter
        (fun (p : Point.t) ->
          lx := Float.min !lx p.Point.x;
          ux := Float.max !ux p.Point.x;
          ly := Float.min !ly p.Point.y;
          uy := Float.max !uy p.Point.y)
        rest;
      !ux -. !lx +. !uy -. !ly
  in
  pins +. (Extract.c_per_um *. wire)

(* the binding electrical limit is max transition, not raw max cap: keep
   the estimated load in the part of the table where the output slew stays
   reasonable (about a third of the characterised range) *)
let max_load_of (cell : Cell.t) =
  Array.fold_left
    (fun acc (a : Cell.arc) -> Float.min acc (0.35 *. Stdcell.Lut.max_load a.Cell.delay))
    infinity cell.Cell.arcs

let fix_max_cap (pl : Place.t) =
  let d = pl.Place.design in
  let upsized = ref 0 and unresolved = ref 0 in
  Design.iter_nets d (fun n ->
      match n.Design.driver with
      | Design.Cell_pin (iid, _) ->
        let load = net_load_estimate pl n in
        let rec fix guard =
          let i = Design.inst d iid in
          let cell = i.Design.cell in
          if guard > 4 || Array.length cell.Cell.arcs = 0 then ()
          else if load > max_load_of cell then begin
            match Stdcell.Library.upsize d.Design.lib cell with
            | None -> incr unresolved
            | Some bigger ->
              let old_width = cell.Cell.width in
              let pin_map = List.init (Array.length cell.Cell.pins) (fun k -> (k, k)) in
              Design.replace_cell d ~inst:iid ~cell:bigger ~pin_map;
              if Place.is_placed pl iid then begin
                let r = pl.Place.row.(iid) in
                pl.Place.row_used.(r) <-
                  pl.Place.row_used.(r) +. bigger.Cell.width -. old_width
              end;
              incr upsized;
              fix (guard + 1)
          end
        in
        fix 0
      | Design.Port_in _ | Design.No_driver -> ());
  { upsized = !upsized; unresolved = !unresolved }
