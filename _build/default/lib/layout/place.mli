(** Row-based standard-cell placement (step 2, Figure 3b).

    Recursive min-cut bisection: regions are split along their longer axis
    and the cells partitioned by a Fiduccia–Mattheyses pass to minimise cut
    nets, down to small leaves; cells are then legalized onto the
    floorplan's rows with whitespace spread evenly. Optimisation is
    area/wirelength only — no timing-driven moves — matching the paper's
    setup (§4.1: "optimised for area only"). *)

type t = {
  design : Netlist.Design.t;
  fp : Floorplan.t;
  mutable x : float array;   (** by instance id: cell left edge; NaN if unplaced *)
  mutable row : int array;   (** by instance id: row index, -1 if unplaced *)
  row_used : float array;    (** occupied width per row, um *)
}

val ensure_capacity : t -> int -> unit
(** Grow the position arrays to cover instance ids added after placement
    (used by ECO). *)

val run : ?seed:int -> Netlist.Design.t -> Floorplan.t -> t
(** Places every non-filler instance. *)

val position : t -> int -> Geom.Point.t
(** Cell centre; raises [Invalid_argument] for unplaced instances. *)

val is_placed : t -> int -> bool

val y_of_row : t -> int -> float
(** Bottom edge of a row. *)

val hpwl : t -> float
(** Total half-perimeter wirelength estimate over all nets, um. *)

val utilization : t -> float
(** Achieved average row utilization. *)
