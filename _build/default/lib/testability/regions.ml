module Cmodel = Netlist.Cmodel

type t = {
  head_of_net : int array;
  size_of_head : (int, int) Hashtbl.t;
}

let compute (m : Cmodel.t) =
  let nn = m.Cmodel.num_nets in
  let head_of_net = Array.make nn (-1) in
  (* A net is its own head when it fans out to more than one modelled pin
     or is observed; otherwise it inherits the head of the single gate input
     it feeds. Walk gates in reverse topological order so heads are known
     before their tree inputs are visited. *)
  let is_head n =
    m.Cmodel.is_observed.(n)
    || (match m.Cmodel.fanout.(n) with [] | [ _ ] -> false | _ -> true)
    || m.Cmodel.fanout.(n) = []  (* dead ends close their own region *)
  in
  for n = 0 to nn - 1 do
    if m.Cmodel.modeled.(n) && is_head n then head_of_net.(n) <- n
  done;
  for gi = Array.length m.Cmodel.gates - 1 downto 0 do
    let g = m.Cmodel.gates.(gi) in
    let out = g.Cmodel.g_out in
    if head_of_net.(out) < 0 then
      (* single-fanout, unobserved: head comes from the consuming gate's
         output, which reverse order has already resolved *)
      head_of_net.(out) <- out (* provisional; fixed below if inheritable *);
    Array.iter
      (fun n ->
        if m.Cmodel.modeled.(n) && head_of_net.(n) < 0 then
          head_of_net.(n) <- head_of_net.(out))
      g.Cmodel.g_ins
  done;
  let size_of_head = Hashtbl.create 256 in
  Array.iter
    (fun g ->
      let h = head_of_net.(g.Cmodel.g_out) in
      if h >= 0 then
        Hashtbl.replace size_of_head h
          (1 + Option.value ~default:0 (Hashtbl.find_opt size_of_head h)))
    m.Cmodel.gates;
  { head_of_net; size_of_head }

let heads t =
  Hashtbl.fold (fun h _ acc -> h :: acc) t.size_of_head []

let size t head = Option.value ~default:0 (Hashtbl.find_opt t.size_of_head head)
