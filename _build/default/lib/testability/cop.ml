module Cmodel = Netlist.Cmodel
module Cell = Stdcell.Cell

type t = {
  c : float array;
  o : float array;
}

let eval_bits kind bits =
  let words = Array.map (fun b -> if b then -1L else 0L) bits in
  Int64.logand (Cell.eval64 kind words) 1L = 1L

(* P(out = 1) = sum over input vectors with f = 1 of the vector probability
   under independence. *)
let gate_c c (g : Cmodel.gate) =
  let arity = Array.length g.g_ins in
  let total = ref 0.0 in
  for mask = 0 to (1 lsl arity) - 1 do
    let bits = Array.init arity (fun i -> mask land (1 lsl i) <> 0) in
    if eval_bits g.g_kind bits then begin
      let p = ref 1.0 in
      Array.iteri
        (fun i b ->
          let ci = c.(g.g_ins.(i)) in
          p := !p *. (if b then ci else 1.0 -. ci))
        bits;
      total := !total +. !p
    end
  done;
  !total

(* P(output sensitive to input [pos]) under independence of the others. *)
let gate_sensitivity c (g : Cmodel.gate) pos =
  let arity = Array.length g.g_ins in
  let total = ref 0.0 in
  for mask = 0 to (1 lsl arity) - 1 do
    if mask land (1 lsl pos) = 0 then begin
      let bits = Array.init arity (fun i -> mask land (1 lsl i) <> 0) in
      let bits' = Array.copy bits in
      bits'.(pos) <- true;
      if eval_bits g.g_kind bits <> eval_bits g.g_kind bits' then begin
        let p = ref 1.0 in
        Array.iteri
          (fun i b ->
            if i <> pos then begin
              let ci = c.(g.g_ins.(i)) in
              p := !p *. (if b then ci else 1.0 -. ci)
            end)
          bits;
        total := !total +. !p
      end
    end
  done;
  !total

let compute (m : Cmodel.t) =
  let nn = m.Cmodel.num_nets in
  let c = Array.make nn 0.5 and o = Array.make nn 0.0 in
  Array.iter (fun (n, v) -> c.(n) <- (if v then 1.0 else 0.0)) m.Cmodel.consts;
  Array.iter (fun g -> c.(g.Cmodel.g_out) <- gate_c c g) m.Cmodel.gates;
  Array.iter (fun (n, _) -> o.(n) <- 1.0) m.Cmodel.observes;
  for gi = Array.length m.Cmodel.gates - 1 downto 0 do
    let g = m.Cmodel.gates.(gi) in
    let o_out = o.(g.Cmodel.g_out) in
    if o_out > 0.0 then
      Array.iteri
        (fun pos n ->
          let through = o_out *. gate_sensitivity c g pos in
          (* a stem is observable through its most observable branch *)
          if through > o.(n) then o.(n) <- through)
        g.Cmodel.g_ins
  done;
  { c; o }

let detect_prob0 t n = t.c.(n) *. t.o.(n)

let detect_prob1 t n = (1.0 -. t.c.(n)) *. t.o.(n)

let detectability t n = Float.min (detect_prob0 t n) (detect_prob1 t n)
