(** Testability cost: the scalar objective test point insertion lowers.

    Following Seiss/Trouborst/Schulz (ETC 1991), the cost of a circuit is
    the expected number of random patterns needed per fault,
    [U = mean over faults of 1 / detection probability]; detection
    probabilities come from COP. TPI greedily inserts points that cut [U]. *)

type t = {
  detect0 : float array;  (** per net: detection probability of s-a-0 *)
  detect1 : float array;
}

val compute : Netlist.Cmodel.t -> Cop.t -> t

val fault_cost : float -> float
(** [1 / p], capped to keep untestable faults finite. *)

val global_cost : t -> Netlist.Cmodel.t -> float
(** Mean fault cost over both polarities of all modelled nets. *)

val hardest : t -> Netlist.Cmodel.t -> int -> (int * float) list
(** [hardest t m k]: the [k] modelled non-source nets with the lowest
    detectability, hardest first, with their detectability. *)
