(** SCOAP testability measures (Goldstein 1979) on the full-scan capture
    model. Combinational controllabilities CC0/CC1 and observability CO,
    computed per net; gate rules are derived from the cell logic functions
    by exhaustive enumeration (cells have arity <= 3), so every library
    kind is handled uniformly. *)

type t = {
  cc0 : float array;  (** by net id; cost of setting the net to 0 *)
  cc1 : float array;
  co : float array;   (** cost of observing the net *)
}

val infinity_cost : float
(** Cost assigned to unreachable/unobservable nets. *)

val compute : Netlist.Cmodel.t -> t

val hardest_to_control : t -> Netlist.Cmodel.t -> int -> (int * float) list
(** [hardest_to_control t m k] = the [k] modelled nets with the largest
    [max cc0 cc1], hardest first. *)
