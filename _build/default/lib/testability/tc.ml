module Cmodel = Netlist.Cmodel

type t = {
  detect0 : float array;
  detect1 : float array;
}

let compute (m : Cmodel.t) (cop : Cop.t) =
  let nn = m.Cmodel.num_nets in
  let detect0 = Array.make nn 0.0 and detect1 = Array.make nn 0.0 in
  for n = 0 to nn - 1 do
    if m.Cmodel.modeled.(n) then begin
      detect0.(n) <- Cop.detect_prob0 cop n;
      detect1.(n) <- Cop.detect_prob1 cop n
    end
  done;
  { detect0; detect1 }

let cap = 1e9

let fault_cost p = if p <= 1.0 /. cap then cap else 1.0 /. p

let global_cost t (m : Cmodel.t) =
  let total = ref 0.0 and count = ref 0 in
  for n = 0 to m.Cmodel.num_nets - 1 do
    if m.Cmodel.modeled.(n) then begin
      total := !total +. fault_cost t.detect0.(n) +. fault_cost t.detect1.(n);
      count := !count + 2
    end
  done;
  if !count = 0 then 0.0 else !total /. float_of_int !count

let hardest t (m : Cmodel.t) k =
  let scored = ref [] in
  for n = 0 to m.Cmodel.num_nets - 1 do
    if m.Cmodel.modeled.(n) && not m.Cmodel.is_source.(n) then
      scored := (n, Float.min t.detect0.(n) t.detect1.(n)) :: !scored
  done;
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) !scored in
  List.filteri (fun i _ -> i < k) sorted
