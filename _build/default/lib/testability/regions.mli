(** Fanout-free regions (FFRs).

    An FFR is a maximal tree of gates whose internal nets have fanout 1; its
    head net is either a fanout stem or an observed site. The paper's TPI
    method uses FFR sizes as one of the measures deciding where to insert
    test points (one observation point at an FFR head covers the whole
    region). *)

type t = {
  head_of_net : int array;  (** net id -> head net id of its FFR; -1 if unmodelled *)
  size_of_head : (int, int) Hashtbl.t;  (** head net -> #gates in region *)
}

val compute : Netlist.Cmodel.t -> t

val heads : t -> int list
(** All FFR head nets. *)

val size : t -> int -> int
(** [size t head] = gates in the region; 0 for unknown heads. *)
