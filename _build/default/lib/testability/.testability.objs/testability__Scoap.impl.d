lib/testability/scoap.ml: Array Float List Netlist Stdcell
