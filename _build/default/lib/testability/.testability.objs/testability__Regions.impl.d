lib/testability/regions.ml: Array Hashtbl Netlist Option
