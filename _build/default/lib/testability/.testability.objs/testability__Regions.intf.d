lib/testability/regions.mli: Hashtbl Netlist
