lib/testability/scoap.mli: Netlist
