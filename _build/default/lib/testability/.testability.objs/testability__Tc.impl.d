lib/testability/tc.ml: Array Cop Float List Netlist
