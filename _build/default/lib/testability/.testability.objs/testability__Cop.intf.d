lib/testability/cop.mli: Netlist
