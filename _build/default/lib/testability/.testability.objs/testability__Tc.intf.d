lib/testability/tc.mli: Cop Netlist
