lib/testability/cop.ml: Array Float Int64 Netlist Stdcell
