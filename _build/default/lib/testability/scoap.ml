module Cmodel = Netlist.Cmodel
module Cell = Stdcell.Cell

type t = {
  cc0 : float array;
  cc1 : float array;
  co : float array;
}

let infinity_cost = 1e18

(* Costs are taken over input CUBES (partial assignments, inputs may stay
   X): SCOAP's AND-gate CC0 is min(CC0 inputs) + 1, i.e. the other inputs
   are left unassigned, so enumerating only full vectors would overcount.
   Arity <= 3, so 3^arity <= 27 cubes. *)
let cubes arity =
  let out = ref [] in
  let rec go acc = function
    | 0 -> out := Array.of_list (List.rev acc) :: !out
    | k -> List.iter (fun v -> go (v :: acc) (k - 1)) [ 0; 1; 2 ]
  in
  go [] arity;
  !out

let cube_cost cc0 cc1 (g : Cmodel.gate) ?(skip = -1) cube =
  let cost = ref 0.0 in
  Array.iteri
    (fun i v ->
      if i <> skip then
        match v with
        | 0 -> cost := !cost +. cc0.(g.g_ins.(i))
        | 1 -> cost := !cost +. cc1.(g.g_ins.(i))
        | _ -> ())
    cube;
  !cost

(* CC_v(y) = 1 + min over cubes forcing the output to v. *)
let gate_cc cc0 cc1 (g : Cmodel.gate) =
  let arity = Array.length g.g_ins in
  let best0 = ref infinity_cost and best1 = ref infinity_cost in
  List.iter
    (fun cube ->
      match Cell.eval3 g.g_kind
              (if arity > 0 then cube.(0) else 0)
              (if arity > 1 then cube.(1) else 0)
              (if arity > 2 then cube.(2) else 0)
      with
      | 0 ->
        let c = cube_cost cc0 cc1 g cube in
        if c < !best0 then best0 := c
      | 1 ->
        let c = cube_cost cc0 cc1 g cube in
        if c < !best1 then best1 := c
      | _ -> ())
    (cubes arity);
  let clamp c = if c >= infinity_cost then infinity_cost else c +. 1.0 in
  (clamp !best0, clamp !best1)

(* Observability of input [pos]: the cheapest side cube under which the
   output is determined by that input alone, plus the output's own
   observability. *)
let gate_input_co cc0 cc1 co_out (g : Cmodel.gate) pos =
  let arity = Array.length g.g_ins in
  let best = ref infinity_cost in
  List.iter
    (fun cube ->
      if cube.(pos) = 2 then begin
        let with_v v =
          let c = Array.copy cube in
          c.(pos) <- v;
          Cell.eval3 g.g_kind
            (if arity > 0 then c.(0) else 0)
            (if arity > 1 then c.(1) else 0)
            (if arity > 2 then c.(2) else 0)
        in
        let o0 = with_v 0 and o1 = with_v 1 in
        if o0 <> 2 && o1 <> 2 && o0 <> o1 then begin
          let c = cube_cost cc0 cc1 g ~skip:pos cube in
          if c < !best then best := c
        end
      end)
    (cubes arity);
  if !best >= infinity_cost || co_out >= infinity_cost then infinity_cost
  else co_out +. !best +. 1.0

let compute (m : Cmodel.t) =
  let nn = m.Cmodel.num_nets in
  let cc0 = Array.make nn infinity_cost
  and cc1 = Array.make nn infinity_cost
  and co = Array.make nn infinity_cost in
  Array.iter
    (fun (n, _) ->
      cc0.(n) <- 1.0;
      cc1.(n) <- 1.0)
    m.Cmodel.sources;
  Array.iter
    (fun (n, v) -> if v then cc1.(n) <- 0.0 else cc0.(n) <- 0.0)
    m.Cmodel.consts;
  Array.iter
    (fun g ->
      let c0, c1 = gate_cc cc0 cc1 g in
      cc0.(g.Cmodel.g_out) <- min cc0.(g.Cmodel.g_out) c0;
      cc1.(g.Cmodel.g_out) <- min cc1.(g.Cmodel.g_out) c1)
    m.Cmodel.gates;
  Array.iter (fun (n, _) -> co.(n) <- 0.0) m.Cmodel.observes;
  for gi = Array.length m.Cmodel.gates - 1 downto 0 do
    let g = m.Cmodel.gates.(gi) in
    let co_out = co.(g.Cmodel.g_out) in
    Array.iteri
      (fun pos n ->
        let c = gate_input_co cc0 cc1 co_out g pos in
        if c < co.(n) then co.(n) <- c)
      g.Cmodel.g_ins
  done;
  { cc0; cc1; co }

let hardest_to_control t (m : Cmodel.t) k =
  let scored = ref [] in
  for n = 0 to m.Cmodel.num_nets - 1 do
    if m.Cmodel.modeled.(n) && not m.Cmodel.is_source.(n) then begin
      let s = Float.max t.cc0.(n) t.cc1.(n) in
      if s < infinity_cost then scored := (n, s) :: !scored
    end
  done;
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) !scored in
  List.filteri (fun i _ -> i < k) sorted
