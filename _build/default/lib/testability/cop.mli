(** COP: controllability/observability probabilities (Brglez 1984).

    [c.(n)] is the probability that net [n] carries 1 under uniform random
    inputs (signal independence assumed); [o.(n)] the probability that a
    value change on [n] propagates to some observable site. The product
    [c * o] (resp. [(1-c) * o]) estimates the per-pattern detection
    probability of a stuck-at-0 (resp. stuck-at-1) fault on the net — the
    quantity test point insertion tries to lift. *)

type t = {
  c : float array;  (** 1-controllability, by net id *)
  o : float array;  (** observability, by net id *)
}

val compute : Netlist.Cmodel.t -> t

val detect_prob0 : t -> int -> float
(** Estimated per-pattern detection probability of stuck-at-0 on the net. *)

val detect_prob1 : t -> int -> float

val detectability : t -> int -> float
(** [min (detect_prob0) (detect_prob1)]: the net's weakest fault. *)
