(** The benchmark circuits of the paper's §4.1, as generator profiles.

    [s38417_like] matches ISCAS'89 s38417's published statistics (28 PIs,
    106 POs, 1,636 FFs, ~22k gates) mapped to minimum drive strength.
    [pcore_a] stands in for the Philips digital control core of a wireless
    IC (two clock domains at 8 and 64 MHz); [pcore_b] for the p26909 24-bit
    DSP core (9,993 FFs, 32 scan chains, ~119k cells at full size). Both
    Philips cores are proprietary, so the profiles are synthetic; [pcore_b]
    defaults to 0.3x the published size to keep the full experiment matrix
    laptop-runnable (pass [~scale:1.0] to run at paper size). *)

val s38417_profile : Profile.t
val pcore_a_profile : Profile.t
val pcore_b_profile : Profile.t

val s38417_like : ?scale:float -> unit -> Netlist.Design.t
val pcore_a : ?scale:float -> unit -> Netlist.Design.t
val pcore_b : ?scale:float -> unit -> Netlist.Design.t

val tiny : ?seed:int -> ?ffs:int -> ?gates:int -> unit -> Netlist.Design.t
(** A small circuit for unit tests (defaults: 16 FFs, 120 gates). *)

val default_scales : (string * float) list
(** The scale each named circuit runs at by default in the harness. *)

val by_name : string -> scale:float -> Netlist.Design.t
(** ["s38417" | "pcore_a" | "pcore_b"]; raises [Invalid_argument] otherwise. *)
