(** Seeded synthetic netlist generation from a {!Profile.t}.

    The generator builds a DAG of mapped standard cells (minimum drive
    strength everywhere, as the paper maps s38417): primary inputs and
    flip-flop outputs seed a net pool, combinational gates draw inputs from
    the pool with a locality bias that develops realistic logic depth, and a
    configurable share of the budget goes to wide comparators and long
    AND/OR chains — the random-pattern-resistant structures whose faults
    make test point insertion worthwhile. Flip-flops are plain DFFs; scan
    and test points are inserted later by the [scan] and [tpi] passes, as in
    the paper's flow. *)

val generate : Profile.t -> Netlist.Design.t
(** Deterministic in [profile.seed]. The result passes
    [Netlist.Check.assert_clean] and is acyclic. *)
