type texture =
  | Control
  | Datapath

type domain_spec = {
  dname : string;
  period_ps : float;
  ff_share : float;
}

type t = {
  name : string;
  seed : int;
  num_pis : int;
  num_pos : int;
  num_ffs : int;
  num_gates : int;
  depth_target : int;
  texture : texture;
  hard_fraction : float;
  hard_blocks : int;
  bus_width : int;
  blocks_per_bus : int;
  domains : domain_spec list;
}

let validate p =
  if p.num_pis < 1 then invalid_arg "Profile: need at least one PI";
  if p.num_pos < 1 then invalid_arg "Profile: need at least one PO";
  if p.num_ffs < 0 then invalid_arg "Profile: negative FF count";
  if p.num_gates < 8 then invalid_arg "Profile: gate budget too small";
  if p.depth_target < 2 then invalid_arg "Profile: depth target too small";
  if p.hard_fraction < 0.0 || p.hard_fraction > 0.8 then
    invalid_arg "Profile: hard_fraction out of range";
  if p.hard_blocks < 0 then invalid_arg "Profile: negative hard_blocks";
  if p.hard_blocks > 0 && p.bus_width < 4 then invalid_arg "Profile: bus too narrow";
  if p.hard_blocks > 0 && p.blocks_per_bus < 1 then
    invalid_arg "Profile: blocks_per_bus must be positive";
  if p.domains = [] then invalid_arg "Profile: need at least one clock domain";
  let total = List.fold_left (fun acc d -> acc +. d.ff_share) 0.0 p.domains in
  if Float.abs (total -. 1.0) > 1e-6 then invalid_arg "Profile: domain shares must sum to 1"

let scale f p =
  let s n = max 1 (int_of_float (Float.round (float_of_int n *. f))) in
  { p with
    num_pis = s p.num_pis;
    num_pos = s p.num_pos;
    num_ffs = s p.num_ffs;
    num_gates = max 8 (s p.num_gates);
    hard_blocks = (if p.hard_blocks = 0 then 0 else max 1 (s p.hard_blocks)) }
