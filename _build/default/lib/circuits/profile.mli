(** Statistical profiles for synthetic benchmark circuits.

    The paper's circuits are either ISCAS'89 s38417 (public, but only the
    statistics matter for the experiments) or proprietary Philips cores, so
    this reproduction generates circuits from profiles that match the
    published statistics; see DESIGN.md §2 for the substitution argument. *)

type texture =
  | Control   (** NAND/NOR/MUX-heavy random logic, shallow and wide *)
  | Datapath  (** XOR/AND-heavy arithmetic texture, deeper cones *)

type domain_spec = {
  dname : string;
  period_ps : float;
  ff_share : float;  (** fraction of the circuit's FFs clocked by this domain *)
}

type t = {
  name : string;
  seed : int;
  num_pis : int;
  num_pos : int;
  num_ffs : int;
  num_gates : int;       (** combinational cell budget *)
  depth_target : int;    (** desired combinational depth *)
  texture : texture;
  hard_fraction : float;
      (** share of the gate budget spent on the decoder-gated hard cones:
          these carry the pseudo-random-resistant, mutually conflicting
          faults that dominate compact pattern counts and that TPI exists
          to dissolve *)
  hard_blocks : int;
      (** number of decoder-gated cones; roughly 1% of the flip-flop count,
          which is why the paper sees most of the pattern-count gain at 1%
          test points already *)
  bus_width : int;      (** decoder bus width (match probability 2^-width) *)
  blocks_per_bus : int;
      (** decoders sharing one bus: their activation codes are mutually
          exclusive, so their tests cannot merge until a control point
          frees them *)
  domains : domain_spec list;  (** shares must sum to 1 *)
}

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent profiles. *)

val scale : float -> t -> t
(** [scale f p] multiplies PI/PO/FF/gate counts by [f] (min 1); used to run
    the full experiment matrix at laptop size. *)
