(** ISCAS'89 [.bench] format reader.

    The paper's first circuit is ISCAS'89 s38417; this repository ships a
    statistical stand-in (see {!Bench}), but a user holding the real
    benchmark file can load it here and run the identical flow on it. The
    netlist is technology-mapped onto the standard-cell library during
    parsing (n-ary gates become trees of 2-input cells at minimum drive,
    exactly how the paper maps s38417), a clock port is synthesised for the
    DFFs, and the result passes [Netlist.Check].

    Grammar: [# comment], [INPUT(name)], [OUTPUT(name)],
    [name = GATE(a, b, ...)] with GATE one of AND, OR, NAND, NOR, NOT,
    BUF/BUFF, XOR, XNOR, DFF. *)

exception Parse_error of int * string

val parse : ?name:string -> ?period_ps:float -> string -> Netlist.Design.t
val parse_file : ?period_ps:float -> string -> Netlist.Design.t
