let s38417_profile : Profile.t =
  { name = "s38417";
    seed = 0x384170;
    num_pis = 28;
    num_pos = 106;
    num_ffs = 1636;
    num_gates = 21900;
    depth_target = 20;
    texture = Profile.Control;
    hard_fraction = 0.16;
    hard_blocks = 16;
    bus_width = 14;
    blocks_per_bus = 4;
    domains = [ { Profile.dname = "clk"; period_ps = 8000.0; ff_share = 1.0 } ] }

let pcore_a_profile : Profile.t =
  { name = "pcore_a";
    seed = 0xA11CE;
    num_pis = 64;
    num_pos = 96;
    num_ffs = 3600;
    num_gates = 29000;
    depth_target = 18;
    texture = Profile.Control;
    hard_fraction = 0.15;
    hard_blocks = 36;
    bus_width = 12;
    blocks_per_bus = 4;
    domains =
      [ { Profile.dname = "fast"; period_ps = 15625.0; ff_share = 0.7 };
        { Profile.dname = "slow"; period_ps = 125000.0; ff_share = 0.3 } ] }

let pcore_b_profile : Profile.t =
  { name = "pcore_b";
    seed = 0x26909;
    num_pis = 96;
    num_pos = 128;
    num_ffs = 9993;
    num_gates = 108000;
    depth_target = 26;
    texture = Profile.Datapath;
    hard_fraction = 0.13;
    hard_blocks = 100;
    bus_width = 14;
    blocks_per_bus = 5;
    domains = [ { Profile.dname = "clk"; period_ps = 7143.0; ff_share = 1.0 } ] }

let build profile scale =
  Synth.generate (Profile.scale scale profile)

let s38417_like ?(scale = 1.0) () = build s38417_profile scale
let pcore_a ?(scale = 1.0) () = build pcore_a_profile scale
let pcore_b ?(scale = 0.3) () = build pcore_b_profile scale

let tiny ?(seed = 42) ?(ffs = 16) ?(gates = 120) () =
  Synth.generate
    { name = "tiny";
      seed;
      num_pis = 6;
      num_pos = 6;
      num_ffs = ffs;
      num_gates = gates;
      depth_target = 8;
      texture = Profile.Control;
      hard_fraction = 0.2;
      hard_blocks = 2;
      bus_width = 6;
      blocks_per_bus = 2;
      domains = [ { Profile.dname = "clk"; period_ps = 4000.0; ff_share = 1.0 } ] }

let default_scales = [ ("s38417", 1.0); ("pcore_a", 1.0); ("pcore_b", 0.3) ]

let by_name name ~scale =
  match name with
  | "s38417" -> build s38417_profile scale
  | "pcore_a" -> build pcore_a_profile scale
  | "pcore_b" -> build pcore_b_profile scale
  | _ -> invalid_arg ("Bench.by_name: unknown circuit " ^ name)
