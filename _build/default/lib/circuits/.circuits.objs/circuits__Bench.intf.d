lib/circuits/bench.mli: Netlist Profile
