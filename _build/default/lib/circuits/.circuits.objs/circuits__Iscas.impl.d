lib/circuits/iscas.ml: Filename Fun Hashtbl List Netlist Option Printf Stdcell String
