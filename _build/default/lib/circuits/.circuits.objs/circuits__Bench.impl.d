lib/circuits/bench.ml: Profile Synth
