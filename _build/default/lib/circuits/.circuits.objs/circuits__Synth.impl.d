lib/circuits/synth.ml: Array Float Hashtbl List Netlist Option Printf Profile Queue Stdcell Util
