lib/circuits/profile.ml: Float List
