lib/circuits/synth.mli: Netlist Profile
