lib/circuits/profile.mli:
