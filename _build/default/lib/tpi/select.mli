(** Iterative test point selection (the method of Geuzebroek et al.
    [3][4] as sketched in §3.1).

    Each iteration recomputes the testability measures (COP detection
    probabilities, SCOAP costs, fanout-free region sizes) on the current
    netlist, ranks candidate nets, inserts a batch of TSFFs and repeats, so
    later points react to the coverage the earlier ones already bought.
    When no candidate is COP-hard any more the ranking switches to SCOAP
    (the paper: "the outcome of the analyses determines which TPI method
    and cost function are used"). *)

type config = {
  iterations : int;          (** batches; 5 matches the reference tool's default *)
  blocked_nets : int list;   (** never insert here (critical-path exclusion, §5) *)
  max_per_region : int;      (** region diversity per batch *)
  detect_threshold : float;  (** a net is COP-hard below this detectability *)
}

val default_config : config

type report = {
  inserted : int list;            (** TSFF instance ids, in insertion order *)
  nets_chosen : int list;         (** the nets that were split *)
  cost_before : float;            (** {!Testability.Tc.global_cost} pre-TPI *)
  cost_after : float;
  scoap_fallbacks : int;          (** batches ranked by SCOAP instead of COP *)
}

val run : ?config:config -> Netlist.Design.t -> count:int -> report
(** Inserts [count] test points into the design in place. *)
