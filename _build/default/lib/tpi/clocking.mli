(** Clock-domain assignment for inserted test points (§3.1 step 2).

    A TSFF spliced into a net must be clocked compatibly with the logic
    around it; the nearest sequential neighbour's domain is used: first a
    backward search from the net's driver, then a forward search through
    its sinks, defaulting to domain 0. *)

val domain_for : Netlist.Design.t -> net:int -> int
(** Raises [Invalid_argument] if the design has no clock domains. *)
