type mode =
  | Application
  | Scan_shift
  | Scan_capture
  | Flush

let mode_of ~te ~tr =
  match (te, tr) with
  | false, false -> Application
  | true, true -> Scan_shift
  | false, true -> Scan_capture
  | true, false -> Flush

type t = { mutable ff : bool }

let create ?(init = false) () = { ff = init }

let state t = t.ff

let input_mux ~d ~ti ~te = if te then ti else d

let output t ~d ~ti ~te ~tr = if tr then t.ff else input_mux ~d ~ti ~te

let clock t ~d ~ti ~te = t.ff <- input_mux ~d ~ti ~te
