lib/tpi/tsff.mli:
