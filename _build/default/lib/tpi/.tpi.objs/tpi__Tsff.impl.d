lib/tpi/tsff.ml:
