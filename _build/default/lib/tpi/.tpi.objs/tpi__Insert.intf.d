lib/tpi/insert.mli: Netlist
