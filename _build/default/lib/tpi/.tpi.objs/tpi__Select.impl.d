lib/tpi/select.ml: Array Float Hashtbl Insert Int64 List Netlist Option Stdcell Testability
