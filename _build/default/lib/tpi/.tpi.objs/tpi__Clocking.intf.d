lib/tpi/clocking.mli: Netlist
