lib/tpi/select.mli: Netlist
