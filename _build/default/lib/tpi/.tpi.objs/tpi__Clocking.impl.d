lib/tpi/clocking.ml: Array Hashtbl List Netlist Queue Stdcell
