lib/tpi/insert.ml: Array Clocking Netlist Printf Stdcell
