(** Behavioural model of the transparent scan flip-flop (Figure 1).

    The cell is an input multiplexer [TE ? TI : D] feeding a D flip-flop,
    and an output multiplexer [TR ? FF.Q : input-mux-out] driving [Q].
    The four control combinations give the four operating modes:

    - [TE=0 TR=0] {b application}: Q follows D combinationally (two mux
      delays); the flip-flop shadows D on every clock.
    - [TE=1 TR=1] {b scan shift}: Q drives the stored bit; TI is captured.
    - [TE=0 TR=1] {b scan capture}: the functional value D is captured
      (observation point) while Q is driven from the flip-flop (control
      point) — both at once, which is the whole trick.
    - [TE=1 TR=0] {b flush}: Q follows TI combinationally, testing the
      path through both muxes. *)

type mode =
  | Application
  | Scan_shift
  | Scan_capture
  | Flush

val mode_of : te:bool -> tr:bool -> mode

type t
(** Mutable single-bit TSFF state. *)

val create : ?init:bool -> unit -> t

val state : t -> bool
(** Current flip-flop contents. *)

val output : t -> d:bool -> ti:bool -> te:bool -> tr:bool -> bool
(** Combinational Q for the given inputs and current state. *)

val clock : t -> d:bool -> ti:bool -> te:bool -> unit
(** Rising clock edge: the flip-flop captures the input-mux value. *)
