module Design = Netlist.Design

let visit_limit = 20_000

type direction =
  | Backward  (** towards drivers *)
  | Forward   (** towards sinks *)

(* BFS from a net towards the nearest flip-flop in one direction, walking
   through combinational cells only. Returns that flip-flop's domain. *)
let nearest_ff_domain (d : Design.t) ~net ~direction =
  let seen_inst = Hashtbl.create 64 and seen_net = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace seen_net net ();
  Queue.add net queue;
  let insts_of_net n =
    match direction with
    | Backward ->
      (match (Design.net d n).Design.driver with
       | Design.Cell_pin (iid, _) -> [ iid ]
       | Design.Port_in _ | Design.No_driver -> [])
    | Forward -> List.map fst (Design.net d n).Design.sinks
  in
  let nets_of_inst (i : Design.instance) =
    let cell = i.Design.cell in
    let acc = ref [] in
    Array.iteri
      (fun pin nid ->
        if nid >= 0 then begin
          let is_input = Stdcell.Pin.is_input cell.Stdcell.Cell.pins.(pin) in
          match direction with
          | Backward -> if is_input then acc := nid :: !acc
          | Forward -> if not is_input then acc := nid :: !acc
        end)
      i.Design.conns;
    !acc
  in
  let visits = ref 0 in
  let result = ref None in
  while !result = None && (not (Queue.is_empty queue)) && !visits < visit_limit do
    incr visits;
    let n = Queue.pop queue in
    List.iter
      (fun iid ->
        if !result = None && not (Hashtbl.mem seen_inst iid) then begin
          Hashtbl.replace seen_inst iid ();
          let i = Design.inst d iid in
          if Design.is_ff i then begin
            if i.Design.domain >= 0 then result := Some i.Design.domain
          end
          else
            List.iter
              (fun nid ->
                if not (Hashtbl.mem seen_net nid) then begin
                  Hashtbl.replace seen_net nid ();
                  Queue.add nid queue
                end)
              (nets_of_inst i)
        end)
      (insts_of_net n)
  done;
  !result

let domain_for (d : Design.t) ~net =
  if Array.length d.Design.domains = 0 then
    invalid_arg "Clocking.domain_for: design has no clock domains";
  match nearest_ff_domain d ~net ~direction:Backward with
  | Some dom -> dom
  | None ->
    (match nearest_ff_domain d ~net ~direction:Forward with
     | Some dom -> dom
     | None -> 0)
