module Design = Netlist.Design
module Cmodel = Netlist.Cmodel
module Cell = Stdcell.Cell

type config = {
  iterations : int;
  blocked_nets : int list;
  max_per_region : int;
  detect_threshold : float;
}

let default_config =
  { iterations = 8; blocked_nets = []; max_per_region = 1; detect_threshold = 2e-4 }

type report = {
  inserted : int list;
  nets_chosen : int list;
  cost_before : float;
  cost_after : float;
  scoap_fallbacks : int;
}

let driver_is_tsff (d : Design.t) n =
  match (Design.net d n).Design.driver with
  | Design.Cell_pin (iid, _) -> (Design.inst d iid).Design.cell.Cell.kind = Cell.Tsff
  | Design.Port_in _ | Design.No_driver -> false

let feeds_tsff_d (d : Design.t) n =
  List.exists
    (fun (iid, pin) ->
      pin = 0 && (Design.inst d iid).Design.cell.Cell.kind = Cell.Tsff)
    (Design.net d n).Design.sinks

let candidates (d : Design.t) (m : Cmodel.t) ~blocked =
  let out = ref [] in
  for n = 0 to m.Cmodel.num_nets - 1 do
    if
      m.Cmodel.modeled.(n)
      && (not m.Cmodel.is_source.(n))
      && (not blocked.(n))
      && (Design.net d n).Design.driver <> Design.No_driver
      && (not (driver_is_tsff d n))
      && not (feeds_tsff_d d n)
    then out := n :: !out
  done;
  !out

(* Take up to [batch] insertion sites from the ranked list, at most
   [max_per_region] per fanout-free region -- and insert at the region
   HEAD, not at the ranked net itself: a control point at the head frees
   the entire region (the decoder output rather than a node inside its AND
   tree), which is where the classical methods put points too. *)
let take_diverse ranked (regions : Testability.Regions.t) ~candidate_set ~batch
    ~max_per_region =
  let per_head = Hashtbl.create 64 in
  let chosen = ref [] and count = ref 0 in
  List.iter
    (fun n ->
      if !count < batch then begin
        let head = regions.Testability.Regions.head_of_net.(n) in
        let used = Option.value ~default:0 (Hashtbl.find_opt per_head head) in
        if used < max_per_region then begin
          let site = if Hashtbl.mem candidate_set head then head else n in
          if not (List.mem site !chosen) then begin
            Hashtbl.replace per_head head (used + 1);
            chosen := site :: !chosen;
            incr count
          end
        end
      end)
    ranked;
  List.rev !chosen

let run ?(config = default_config) (d : Design.t) ~count =
  let m0 = Cmodel.build d in
  let cost_before =
    Testability.Tc.global_cost (Testability.Tc.compute m0 (Testability.Cop.compute m0)) m0
  in
  let inserted = ref [] and nets_chosen = ref [] in
  let scoap_fallbacks = ref 0 in
  let next_index = ref 0 in
  Design.iter_insts d (fun i -> if i.Design.cell.Cell.kind = Cell.Tsff then incr next_index);
  let remaining = ref count in
  let iterations = max 1 config.iterations in
  for it = 0 to iterations - 1 do
    if !remaining > 0 then begin
      let batch =
        let slots = iterations - it in
        max 1 ((!remaining + slots - 1) / slots)
      in
      let batch = min batch !remaining in
      let m = Cmodel.build d in
      let blocked = Array.make m.Cmodel.num_nets false in
      List.iter
        (fun n -> if n >= 0 && n < m.Cmodel.num_nets then blocked.(n) <- true)
        config.blocked_nets;
      let cop = Testability.Cop.compute m in
      let tc = Testability.Tc.compute m cop in
      let regions = Testability.Regions.compute m in
      let cands = candidates d m ~blocked in
      let hard =
        List.filter
          (fun n ->
            Float.min tc.Testability.Tc.detect0.(n) tc.Testability.Tc.detect1.(n)
            < config.detect_threshold)
          cands
      in
      let ranked =
        if List.length hard >= batch then begin
          (* Seiss-style gradient, evaluated empirically per candidate: a
             test point at [n] makes [n] perfectly observable and its load
             side controllable (c = 0.5). Re-evaluate the downstream COP
             controllabilities under that change and count how many hard
             nets it frees; add a weighted count for observation gains in
             the backward cone. A decoder/enable output that gates a whole
             cone scores far above any net inside the cone. *)
          let cone_cap = 400 in
          let threshold = config.detect_threshold in
          let is_hard n =
            Float.min tc.Testability.Tc.detect0.(n) tc.Testability.Tc.detect1.(n) < threshold
          in
          let control_gain n =
            (* collect the bounded downstream cone, topologically *)
            let seen = Hashtbl.create 64 in
            let cone = ref [] and count = ref 0 in
            let rec dfs n =
              if !count < cone_cap && not (Hashtbl.mem seen n) then begin
                Hashtbl.replace seen n ();
                List.iter
                  (fun (gi, _) ->
                    if !count < cone_cap then begin
                      incr count;
                      cone := gi :: !cone;
                      dfs m.Cmodel.gates.(gi).Cmodel.g_out
                    end)
                  m.Cmodel.fanout.(n)
              end
            in
            dfs n;
            let gates =
              List.sort_uniq compare !cone
              |> List.map (fun gi -> m.Cmodel.gates.(gi))
              |> List.sort (fun a b -> compare a.Cmodel.g_level b.Cmodel.g_level)
            in
            let c' : (int, float) Hashtbl.t = Hashtbl.create 64 in
            Hashtbl.replace c' n 0.5;
            let lookup k =
              Option.value ~default:cop.Testability.Cop.c.(k) (Hashtbl.find_opt c' k)
            in
            let gain = ref 0 in
            List.iter
              (fun (g : Cmodel.gate) ->
                let arity = Array.length g.Cmodel.g_ins in
                let total = ref 0.0 in
                for mask = 0 to (1 lsl arity) - 1 do
                  let p = ref 1.0 and words = Array.make arity 0L in
                  Array.iteri
                    (fun i inn ->
                      let ci = lookup inn in
                      if mask land (1 lsl i) <> 0 then begin
                        p := !p *. ci;
                        words.(i) <- -1L
                      end
                      else p := !p *. (1.0 -. ci))
                    g.Cmodel.g_ins;
                  if Int64.logand (Cell.eval64 g.Cmodel.g_kind words) 1L = 1L then
                    total := !total +. !p
                done;
                let out = g.Cmodel.g_out in
                Hashtbl.replace c' out !total;
                if is_hard out then begin
                  let o = cop.Testability.Cop.o.(out) in
                  let pd = Float.min (!total *. o) ((1.0 -. !total) *. o) in
                  if pd >= threshold then incr gain
                end)
              gates;
            !gain
          in
          let observe_gain n =
            (* hard nets in the backward cone that are controllable and so
               only lack observation, which the point provides directly *)
            let seen = Hashtbl.create 64 in
            let gain = ref 0 and count = ref 0 in
            let rec dfs n =
              if !count < cone_cap && not (Hashtbl.mem seen n) then begin
                Hashtbl.replace seen n ();
                if
                  is_hard n
                  && Float.min cop.Testability.Cop.c.(n) (1.0 -. cop.Testability.Cop.c.(n))
                     >= threshold
                then incr gain;
                let gi = m.Cmodel.driver_gate.(n) in
                if gi >= 0 then
                  Array.iter
                    (fun inn ->
                      if !count < cone_cap then begin
                        incr count;
                        dfs inn
                      end)
                    m.Cmodel.gates.(gi).Cmodel.g_ins
              end
            in
            dfs n;
            !gain
          in
          let score n = (2 * control_gain n) + observe_gain n in
          let scored = List.map (fun n -> (n, score n)) hard in
          List.map fst
            (List.sort
               (fun (a, sa) (b, sb) ->
                 if sa <> sb then compare sb sa
                 else
                   compare
                     (Float.min tc.Testability.Tc.detect0.(a) tc.Testability.Tc.detect1.(a))
                     (Float.min tc.Testability.Tc.detect0.(b) tc.Testability.Tc.detect1.(b)))
               scored)
        end
        else begin
          (* not enough COP-hard nets left: rank everything by SCOAP cost *)
          incr scoap_fallbacks;
          let scoap = Testability.Scoap.compute m in
          let score n =
            let c = Float.max scoap.Testability.Scoap.cc0.(n) scoap.Testability.Scoap.cc1.(n) in
            let o = scoap.Testability.Scoap.co.(n) in
            Float.min c Testability.Scoap.infinity_cost +. Float.min o Testability.Scoap.infinity_cost
          in
          List.sort (fun a b -> compare (score b) (score a)) cands
        end
      in
      let candidate_set = Hashtbl.create 256 in
      List.iter (fun n -> Hashtbl.replace candidate_set n ()) cands;
      let chosen =
        take_diverse ranked regions ~candidate_set ~batch
          ~max_per_region:config.max_per_region
      in
      List.iter
        (fun n ->
          let i = Insert.insert_point d ~net:n ~index:!next_index in
          incr next_index;
          decr remaining;
          inserted := i.Design.id :: !inserted;
          nets_chosen := n :: !nets_chosen)
        chosen;
      (* if diversity starved the batch, the next iteration will retry *)
      if chosen = [] then remaining := 0
    end
  done;
  let m1 = Cmodel.build d in
  let cost_after =
    Testability.Tc.global_cost (Testability.Tc.compute m1 (Testability.Cop.compute m1)) m1
  in
  { inserted = List.rev !inserted;
    nets_chosen = List.rev !nets_chosen;
    cost_before;
    cost_after;
    scoap_fallbacks = !scoap_fallbacks }
