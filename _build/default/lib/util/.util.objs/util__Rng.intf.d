lib/util/rng.mli:
