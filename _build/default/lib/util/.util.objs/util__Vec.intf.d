lib/util/vec.mli:
