(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic step in the reproduction (circuit generation, X-fill,
    placement tie-breaking) draws from an explicit [Rng.t] so that the whole
    harness is reproducible; the stdlib [Random] module is never used. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** An independent generator derived from the current state. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal deviate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
