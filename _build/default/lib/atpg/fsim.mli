(** Parallel-pattern single-fault propagation (PPSFP) simulator.

    Simulates 64 patterns at once as bit-packed words over the capture
    model: one good-circuit pass, then per-fault event-driven propagation
    limited to the fault's fanout cone, with copy-on-write faulty values.
    [detect_mask] returns the set of patterns (bit per pattern) that detect
    a fault, which the pattern-generation driver uses both to drop faults
    and to pick compact pattern subsets. *)

type t

val create : Netlist.Cmodel.t -> t

val model : t -> Netlist.Cmodel.t

val num_sources : t -> int

val set_sources : t -> int64 array -> unit
(** One word per model source (same order as [model.sources]); bit [p] of
    word [s] is the value of source [s] in pattern [p]. Runs the
    good-circuit simulation. *)

val good : t -> int -> int64
(** Good-circuit value of a net after [set_sources]. *)

val detect_mask : t -> Fault.fault -> int64
(** Patterns among the current batch that detect the fault. *)

val detects : t -> Fault.fault -> bool
