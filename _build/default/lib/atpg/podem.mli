(** PODEM (Goel 1981) deterministic test generation on the capture model.

    Five-valued reasoning is carried as a good-circuit ternary value per net
    plus a per-fault faulty-value overlay (validated by a fault stamp, so
    switching target faults is O(1)); decisions are made on model sources
    only, implication is event-driven forward evaluation (monotone, so a
    trail suffices for backtracking), backtrace is SCOAP-guided and the
    D-frontier is pruned with the classic X-path check.

    The overlay design makes dynamic compaction cheap: a successful test's
    source assignments can be kept in place ([~keep:true]) and further
    target faults attempted on top without re-applying the base cube. *)

type result =
  | Test of (int * bool) list
      (** satisfying cube as (source index, value) assignments, including
          any kept base; unassigned sources are don't-care *)
  | Untestable  (** no test exists consistent with the current base *)
  | Abort       (** backtrack limit exhausted *)

type t

val create : Netlist.Cmodel.t -> t
(** Precomputes backtrace guidance (SCOAP) and observe distances. *)

val reset : t -> unit
(** Clear all assignments (start a fresh pattern). *)

val apply_cube : t -> (int * bool) list -> bool
(** Force source assignments into the current state; [false] on conflict
    with already-implied values (state is left with the compatible prefix
    applied — call {!reset} before reuse). *)

val attempt : ?backtrack_limit:int -> t -> keep:bool -> Fault.fault -> result
(** Search for a test of the fault consistent with the currently applied
    assignments. With [~keep:true] a successful test's assignments stay
    applied (compaction); otherwise, and on failure, the state returns to
    what it was before the call. Default backtrack limit 250. *)

val generate : ?backtrack_limit:int -> t -> Fault.fault -> result
(** Stand-alone test generation from a clean state; [Untestable] here is a
    proof of redundancy. *)

val generate_under :
  ?backtrack_limit:int ->
  t ->
  base:(int * bool) list ->
  Fault.fault ->
  result
(** Like {!generate} under frozen [base] assignments; [Untestable] only
    means untestable under this base, so it is reported as [Abort]. *)

val debug : bool ref
(** Verbose search tracing to stderr, for debugging the engine. *)
