module Cmodel = Netlist.Cmodel
module Cell = Stdcell.Cell
module Design = Netlist.Design

type site =
  | Stem of int
  | Branch of int * int
  | Obs_branch of int

type status =
  | Undetected
  | Detected
  | Redundant
  | Aborted
  | Chain_tested

type fault = {
  fid : int;
  site : site;
  stuck : bool;
  mutable status : status;
  mutable equiv_to : int;
}

type universe = {
  faults : fault array;
  representatives : fault array;
  infra_faults : int;
  total : int;
}

let site_net (m : Cmodel.t) = function
  | Stem n -> n
  | Branch (gi, pos) -> m.Cmodel.gates.(gi).Cmodel.g_ins.(pos)
  | Obs_branch k -> fst m.Cmodel.observes.(k)

let pp_site (m : Cmodel.t) ppf site =
  let d = m.Cmodel.design in
  let net_name n = (Design.net d n).Design.nname in
  match site with
  | Stem n -> Format.fprintf ppf "stem %s" (net_name n)
  | Branch (gi, pos) ->
    let g = m.Cmodel.gates.(gi) in
    Format.fprintf ppf "branch %s/%d (%s)" (Design.inst d g.Cmodel.g_inst).Design.iname pos
      (net_name g.Cmodel.g_ins.(pos))
  | Obs_branch k -> Format.fprintf ppf "capture of %s" (net_name (fst m.Cmodel.observes.(k)))

(* union-find over fault ids, with the smaller id as representative *)
let rec find (faults : fault array) i =
  let p = faults.(i).equiv_to in
  if p = i then i
  else begin
    let r = find faults p in
    faults.(i).equiv_to <- r;
    r
  end

let union faults a b =
  let ra = find faults a and rb = find faults b in
  if ra <> rb then begin
    let keep = min ra rb and drop = max ra rb in
    faults.(drop).equiv_to <- keep
  end

let eval_bits kind bits =
  let words = Array.map (fun b -> if b then -1L else 0L) bits in
  Int64.logand (Cell.eval64 kind words) 1L = 1L

(* If forcing input [pos] of the gate to [v] makes the output constant, the
   branch fault (pos stuck-at v) is equivalent to the corresponding output
   stem fault; returns that constant. *)
let forced_output kind ~arity ~pos ~v =
  let result = ref None and conflict = ref false in
  for mask = 0 to (1 lsl arity) - 1 do
    if not !conflict then begin
      let bits = Array.init arity (fun i -> mask land (1 lsl i) <> 0) in
      bits.(pos) <- v;
      let out = eval_bits kind bits in
      match !result with
      | None -> result := Some out
      | Some prev -> if prev <> out then conflict := true
    end
  done;
  if !conflict then None else !result

let build (m : Cmodel.t) =
  let faults = ref [] in
  let next = ref 0 in
  let mk site stuck =
    let f = { fid = !next; site; stuck; status = Undetected; equiv_to = !next } in
    incr next;
    faults := f :: !faults;
    f.fid
  in
  let nn = m.Cmodel.num_nets in
  let stem0 = Array.make nn (-1) and stem1 = Array.make nn (-1) in
  let mk_stems n =
    if stem0.(n) < 0 then begin
      stem0.(n) <- mk (Stem n) false;
      stem1.(n) <- mk (Stem n) true
    end
  in
  Array.iter (fun (n, _) -> mk_stems n) m.Cmodel.sources;
  Array.iter (fun (g : Cmodel.gate) -> mk_stems g.Cmodel.g_out) m.Cmodel.gates;
  let branch0 = Array.map (fun (g : Cmodel.gate) -> Array.make (Array.length g.Cmodel.g_ins) (-1)) m.Cmodel.gates in
  let branch1 = Array.map (fun (g : Cmodel.gate) -> Array.make (Array.length g.Cmodel.g_ins) (-1)) m.Cmodel.gates in
  Array.iteri
    (fun gi (g : Cmodel.gate) ->
      Array.iteri
        (fun pos _ ->
          branch0.(gi).(pos) <- mk (Branch (gi, pos)) false;
          branch1.(gi).(pos) <- mk (Branch (gi, pos)) true)
        g.Cmodel.g_ins)
    m.Cmodel.gates;
  let obs0 = Array.make (Array.length m.Cmodel.observes) (-1) in
  let obs1 = Array.make (Array.length m.Cmodel.observes) (-1) in
  Array.iteri
    (fun k _ ->
      obs0.(k) <- mk (Obs_branch k) false;
      obs1.(k) <- mk (Obs_branch k) true)
    m.Cmodel.observes;
  let faults = Array.of_list (List.rev !faults) in
  (* equivalence collapsing *)
  Array.iteri
    (fun gi (g : Cmodel.gate) ->
      let arity = Array.length g.Cmodel.g_ins in
      for pos = 0 to arity - 1 do
        List.iter
          (fun v ->
            match forced_output g.Cmodel.g_kind ~arity ~pos ~v with
            | Some out_const ->
              let branch = if v then branch1.(gi).(pos) else branch0.(gi).(pos) in
              let stem = if out_const then stem1.(g.Cmodel.g_out) else stem0.(g.Cmodel.g_out) in
              union faults branch stem
            | None -> ())
          [ false; true ]
      done)
    m.Cmodel.gates;
  (* single-fanout stems collapse onto their only branch *)
  for n = 0 to nn - 1 do
    if stem0.(n) >= 0 then begin
      match (m.Cmodel.fanout.(n), m.Cmodel.is_observed.(n)) with
      | [ (gi, pos) ], false ->
        union faults stem0.(n) branch0.(gi).(pos);
        union faults stem1.(n) branch1.(gi).(pos)
      | _ -> ()
    end
  done;
  (* observed nets with no gate fanout: stem = the capture branch *)
  Array.iteri
    (fun k (n, _) ->
      if stem0.(n) >= 0 && m.Cmodel.fanout.(n) = [] then begin
        union faults stem0.(n) obs0.(k);
        union faults stem1.(n) obs1.(k)
      end)
    m.Cmodel.observes;
  let representatives =
    Array.of_list
      (Array.fold_right
         (fun f acc -> if find faults f.fid = f.fid then f :: acc else acc)
         faults [])
  in
  (* full universe size: two faults per connected cell pin plus per bound
     port; everything not represented in the model is scan-infrastructure *)
  let pin_count = ref 0 in
  Design.iter_insts m.Cmodel.design (fun i ->
      if i.Design.cell.Cell.kind <> Cell.Filler then
        Array.iter (fun nid -> if nid >= 0 then incr pin_count) i.Design.conns);
  let port_count = ref 0 in
  List.iter
    (fun (p : Design.port) -> if p.Design.pnet >= 0 then incr port_count)
    (Design.input_ports m.Cmodel.design @ Design.output_ports m.Cmodel.design);
  let total = 2 * (!pin_count + !port_count) in
  let infra_faults = max 0 (total - Array.length faults) in
  { faults; representatives; infra_faults; total }

let representative u f = u.faults.(find u.faults f.fid)

let coverage u =
  let detected = ref u.infra_faults and redundant = ref 0 in
  Array.iter
    (fun f ->
      match u.faults.(find u.faults f.fid).status with
      | Detected -> incr detected
      | Redundant -> incr redundant
      | Chain_tested -> incr detected
      | Undetected | Aborted -> ())
    u.faults;
  let fl = float_of_int u.total in
  (float_of_int !detected /. fl, float_of_int (!detected + !redundant) /. fl)
