(** Test data volume and test application time, equations (1) and (2).

    With [n] scan chains of maximum length [l_max] and [p] patterns:
    TDV = 2 n ((l_max + 1) p + l_max) bits (stimuli plus responses),
    TAT = (l_max + 1) p + l_max clock cycles (shift-in overlapped with
    shift-out, one capture cycle per pattern, final unload). *)

val tdv : chains:int -> lmax:int -> patterns:int -> int

val tat : lmax:int -> patterns:int -> int

val reduction_pct : before:int -> after:int -> float
(** Percentage decrease, the "dec." columns of Table 1. *)
