(** Single stuck-at fault model.

    Fault sites live on the full-scan capture model: stems (net values),
    branches (individual gate input pins) and observe branches (the [D]
    pins of flip-flops and primary-output bindings). Faults on scan
    infrastructure pins (TI/TE/TR/CK, clock buffers, unmodelled gates) are
    counted in the universe but covered by the scan shift and flush tests
    rather than by ATPG patterns, as in the paper's flow; they are created
    pre-marked [Chain_tested]. *)

type site =
  | Stem of int              (** net id *)
  | Branch of int * int      (** (gate index in the model, input position) *)
  | Obs_branch of int        (** index into the model's [observes] array *)

type status =
  | Undetected
  | Detected
  | Redundant      (** proven untestable by exhaustive search *)
  | Aborted        (** deterministic search hit its backtrack limit *)
  | Chain_tested   (** covered by scan shift/flush, not by capture patterns *)

type fault = {
  fid : int;
  site : site;
  stuck : bool;            (** the stuck-at value *)
  mutable status : status;
  mutable equiv_to : int;  (** representative fault id after collapsing *)
}

type universe = {
  faults : fault array;             (** ATPG-relevant faults, including collapsed ones *)
  representatives : fault array;    (** one fault per equivalence class *)
  infra_faults : int;               (** chain-tested faults outside the model *)
  total : int;                      (** full universe size, the paper's "#faults" *)
}

val build : Netlist.Cmodel.t -> universe
(** Enumerates and equivalence-collapses the universe. *)

val site_net : Netlist.Cmodel.t -> site -> int
(** The net whose value the fault corrupts (for branches: the gate input
    net; the corruption is local to that pin). *)

val forced_output : Stdcell.Cell.kind -> arity:int -> pos:int -> v:bool -> bool option
(** If pinning input [pos] to [v] forces the gate output to a constant,
    that constant ([v] is a controlling value); [None] otherwise. Also used
    by PODEM to pick non-controlling objective values. *)

val representative : universe -> fault -> fault
(** The class representative after collapsing (path-compressing). *)

val coverage : universe -> float * float
(** (fault coverage, fault efficiency) over the full universe:
    FC = detected / total, FE = (detected + redundant) / total, where
    collapsed classes count all their members and chain-tested faults count
    as detected. *)

val pp_site : Netlist.Cmodel.t -> Format.formatter -> site -> unit
