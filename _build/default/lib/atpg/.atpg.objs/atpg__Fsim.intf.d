lib/atpg/fsim.mli: Fault Netlist
