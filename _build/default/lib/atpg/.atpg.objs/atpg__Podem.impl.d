lib/atpg/podem.ml: Array Fault Format Int64 List Netlist Option Queue Stack Stdcell Testability Util
