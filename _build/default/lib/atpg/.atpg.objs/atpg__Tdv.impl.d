lib/atpg/tdv.ml:
