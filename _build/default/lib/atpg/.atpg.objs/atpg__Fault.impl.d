lib/atpg/fault.ml: Array Format Int64 List Netlist Stdcell
