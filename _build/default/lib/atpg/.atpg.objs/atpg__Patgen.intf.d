lib/atpg/patgen.mli: Bytes Fault Netlist
