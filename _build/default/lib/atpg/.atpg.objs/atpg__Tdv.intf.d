lib/atpg/tdv.mli:
