lib/atpg/fault.mli: Format Netlist Stdcell
