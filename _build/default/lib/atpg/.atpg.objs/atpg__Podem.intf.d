lib/atpg/podem.mli: Fault Netlist
