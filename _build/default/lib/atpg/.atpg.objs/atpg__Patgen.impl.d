lib/atpg/patgen.ml: Array Bytes Fault Fsim Hashtbl Int64 List Netlist Podem Seq Testability Util
