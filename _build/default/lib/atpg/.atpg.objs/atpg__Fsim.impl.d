lib/atpg/fsim.ml: Array Fault Int64 List Netlist Stack Stdcell
