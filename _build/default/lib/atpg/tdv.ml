let tat ~lmax ~patterns = ((lmax + 1) * patterns) + lmax

let tdv ~chains ~lmax ~patterns = 2 * chains * tat ~lmax ~patterns

let reduction_pct ~before ~after =
  if before = 0 then 0.0
  else 100.0 *. (1.0 -. (float_of_int after /. float_of_int before))
