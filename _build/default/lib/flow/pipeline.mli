(** The complete tool flow of Figure 2:

    {ol
    {- test point insertion and scan insertion on the gate-level netlist;}
    {- floorplanning and placement;}
    {- layout-driven scan-chain reordering, then ATPG on the updated
       netlist;}
    {- ECO of the reordering's buffers, clock-tree insertion, filler
       insertion and routing;}
    {- RC extraction;}
    {- static timing analysis.}}

    One call = one layout, generated from scratch, as in the paper. *)

type options = {
  tp_percent : float;              (** test points as % of flip-flops (0-5) *)
  chain_config : Scan.Chains.config;
  utilization : float;             (** target row utilization *)
  run_atpg : bool;                 (** Table 1 needs it; Tables 2-3 do not *)
  atpg_config : Atpg.Patgen.config;
  tpi_config : Tpi.Select.config;  (** e.g. blocked nets for the §5 ablation *)
  seed : int;
}

val default_options : options

type result = {
  design : Netlist.Design.t;
  options : options;
  tp_count : int;
  tpi_report : Tpi.Select.report option;  (** None when no points requested *)
  chains : Scan.Chains.t;
  reorder : Scan.Reorder.result;
  atpg : Atpg.Patgen.outcome option;
  tdv_bits : int;   (** equation (1); 0 without ATPG *)
  tat_cycles : int; (** equation (2) *)
  placement : Layout.Place.t;
  cts : Layout.Cts.report;
  filler : Layout.Filler.report;
  route : Layout.Route.t;
  rc : Layout.Extract.net_rc array;
  sta : Sta.Analysis.t;
  stats : Netlist.Stats.t;  (** post-flow netlist statistics *)
  drc : Layout.Drc.report;  (** max-capacitance fixes applied before routing *)
}

val run : ?options:options -> Netlist.Design.t -> result
(** Mutates the design (TPI, scan, buffers, fillers). *)
