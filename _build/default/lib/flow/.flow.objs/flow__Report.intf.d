lib/flow/report.mli: Experiment
