lib/flow/timingfix.ml: Array Layout List Netlist Sta Stdcell
