lib/flow/pipeline.ml: Atpg Float Layout List Netlist Scan Sta Tpi
