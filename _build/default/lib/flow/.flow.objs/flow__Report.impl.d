lib/flow/report.ml: Array Atpg Buffer Experiment Layout List Netlist Pipeline Printf Scan Sta String
