lib/flow/experiment.ml: Circuits List Pipeline Scan Sta Tpi
