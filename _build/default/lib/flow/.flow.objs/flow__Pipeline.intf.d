lib/flow/pipeline.mli: Atpg Layout Netlist Scan Sta Tpi
