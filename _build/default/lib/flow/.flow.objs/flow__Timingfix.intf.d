lib/flow/timingfix.mli: Layout Sta
