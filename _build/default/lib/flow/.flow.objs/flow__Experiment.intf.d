lib/flow/experiment.mli: Pipeline Scan
