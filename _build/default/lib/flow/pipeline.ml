module Design = Netlist.Design

type options = {
  tp_percent : float;
  chain_config : Scan.Chains.config;
  utilization : float;
  run_atpg : bool;
  atpg_config : Atpg.Patgen.config;
  tpi_config : Tpi.Select.config;
  seed : int;
}

let default_options =
  { tp_percent = 0.0;
    chain_config = Scan.Chains.Max_length 100;
    utilization = 0.97;
    run_atpg = true;
    atpg_config = Atpg.Patgen.default_config;
    tpi_config = Tpi.Select.default_config;
    seed = 0x71C0 }

type result = {
  design : Netlist.Design.t;
  options : options;
  tp_count : int;
  tpi_report : Tpi.Select.report option;
  chains : Scan.Chains.t;
  reorder : Scan.Reorder.result;
  atpg : Atpg.Patgen.outcome option;
  tdv_bits : int;
  tat_cycles : int;
  placement : Layout.Place.t;
  cts : Layout.Cts.report;
  filler : Layout.Filler.report;
  route : Layout.Route.t;
  rc : Layout.Extract.net_rc array;
  sta : Sta.Analysis.t;
  stats : Netlist.Stats.t;
  drc : Layout.Drc.report;
}

let run ?(options = default_options) (d : Design.t) =
  (* --- step 1: TPI and scan insertion --- *)
  let ffs_before = List.length (Design.ffs d) in
  let tp_count =
    int_of_float (Float.round (options.tp_percent *. float_of_int ffs_before /. 100.0))
  in
  let tpi_report =
    if tp_count > 0 then Some (Tpi.Select.run ~config:options.tpi_config d ~count:tp_count)
    else None
  in
  ignore (Scan.Replace.run d);
  (* --- step 2: floorplanning and placement --- *)
  let fp = Layout.Floorplan.create ~utilization:options.utilization d in
  let placement = Layout.Place.run ~seed:options.seed d fp in
  (* --- step 3: layout-driven scan reordering, then ATPG --- *)
  let position iid = Layout.Place.position placement iid in
  let reorder = Scan.Reorder.run d ~config:options.chain_config ~position in
  let chains = reorder.Scan.Reorder.plan in
  let atpg =
    if options.run_atpg then begin
      let m = Netlist.Cmodel.build d in
      Some (Atpg.Patgen.run ~config:options.atpg_config m)
    end
    else None
  in
  let patterns = match atpg with Some o -> Atpg.Patgen.num_patterns o | None -> 0 in
  let tdv_bits =
    if patterns = 0 then 0
    else
      Atpg.Tdv.tdv ~chains:(Scan.Chains.num_chains chains) ~lmax:chains.Scan.Chains.lmax
        ~patterns
  in
  let tat_cycles =
    if patterns = 0 then 0 else Atpg.Tdv.tat ~lmax:chains.Scan.Chains.lmax ~patterns
  in
  (* --- step 4: ECO (reorder buffers), clock trees, filler, routing --- *)
  List.iter
    (fun (iid, near) -> Layout.Eco.add_cell placement ~inst:iid ~near)
    reorder.Scan.Reorder.new_buffers;
  let cts = Layout.Cts.run placement in
  let drc = Layout.Drc.fix_max_cap placement in
  let filler = Layout.Filler.run placement in
  let route = Layout.Route.run placement in
  (* --- step 5: extraction --- *)
  let rc = Layout.Extract.run placement route in
  (* --- step 6: static timing analysis --- *)
  let sta = Sta.Analysis.run placement rc in
  let stats = Netlist.Stats.compute d in
  { design = d;
    options;
    tp_count;
    tpi_report;
    chains;
    reorder;
    atpg;
    tdv_bits;
    tat_cycles;
    placement;
    cts;
    filler;
    route;
    rc;
    sta;
    stats;
    drc }
