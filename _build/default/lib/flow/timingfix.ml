module Design = Netlist.Design
module Cell = Stdcell.Cell

type report = {
  rounds : int;
  upsized_cells : int;
  t_cp_before : float;
  t_cp_after : float;
  cell_area_before : float;
  cell_area_after : float;
  sta : Sta.Analysis.t;
  route : Layout.Route.t;
  rc : Layout.Extract.net_rc array;
}

let cell_area d =
  (Netlist.Stats.compute d).Netlist.Stats.cell_area

let analyse pl =
  let route = Layout.Route.run pl in
  let rc = Layout.Extract.run pl route in
  (route, rc, Sta.Analysis.run pl rc)

let worst_tcp (sta : Sta.Analysis.t) =
  match sta.Sta.Analysis.worst with
  | Some p -> p.Sta.Analysis.t_cp
  | None -> 0.0

(* upsize every upsizable cell on the reported critical paths *)
let upsize_paths (pl : Layout.Place.t) (sta : Sta.Analysis.t) =
  let d = pl.Layout.Place.design in
  let count = ref 0 in
  Array.iter
    (fun path ->
      match path with
      | None -> ()
      | Some (p : Sta.Analysis.critical_path) ->
        List.iter
          (fun (s : Sta.Analysis.step) ->
            if s.Sta.Analysis.st_inst >= 0 then begin
              let i = Design.inst d s.Sta.Analysis.st_inst in
              match Stdcell.Library.upsize d.Design.lib i.Design.cell with
              | None -> ()
              | Some bigger ->
                let old_width = i.Design.cell.Cell.width in
                let pins = List.init (Array.length i.Design.cell.Cell.pins) (fun k -> (k, k)) in
                Design.replace_cell d ~inst:i.Design.id ~cell:bigger ~pin_map:pins;
                if Layout.Place.is_placed pl i.Design.id then begin
                  let r = pl.Layout.Place.row.(i.Design.id) in
                  pl.Layout.Place.row_used.(r) <-
                    pl.Layout.Place.row_used.(r) +. bigger.Cell.width -. old_width
                end;
                incr count
            end)
          p.Sta.Analysis.steps)
    sta.Sta.Analysis.per_domain;
  !count

let run ?(max_rounds = 3) (pl : Layout.Place.t) =
  let d = pl.Layout.Place.design in
  let cell_area_before = cell_area d in
  let route0, rc0, sta0 = analyse pl in
  let t_cp_before = worst_tcp sta0 in
  let best = ref (route0, rc0, sta0) in
  let upsized = ref 0 and rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    let _, _, sta = !best in
    let n = upsize_paths pl sta in
    upsized := !upsized + n;
    if n = 0 then continue_ := false
    else begin
      let route', rc', sta' = analyse pl in
      if worst_tcp sta' < worst_tcp sta then best := (route', rc', sta')
      else begin
        best := (route', rc', sta');
        continue_ := false
      end
    end
  done;
  let route, rc, sta = !best in
  { rounds = !rounds;
    upsized_cells = !upsized;
    t_cp_before;
    t_cp_after = worst_tcp sta;
    cell_area_before;
    cell_area_after = cell_area d;
    sta;
    route;
    rc }
