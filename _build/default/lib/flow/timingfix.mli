(** Timing optimisation after layout — the knob the paper's experiments
    deliberately leave off (§5: "timing optimisation typically implies the
    use of cells with larger drive strengths ... at the cost of larger
    silicon area"). This module implements that loop so the trade-off can
    be measured: upsize the cells on the worst paths, re-route, re-extract,
    re-time, repeat. *)

type report = {
  rounds : int;
  upsized_cells : int;
  t_cp_before : float;
  t_cp_after : float;
  cell_area_before : float;
  cell_area_after : float;
  sta : Sta.Analysis.t;             (** analysis after the final round *)
  route : Layout.Route.t;
  rc : Layout.Extract.net_rc array;
}

val run : ?max_rounds:int -> Layout.Place.t -> report
(** Default 3 rounds; stops early when the critical path stops improving
    or nothing on it can be upsized further. *)
