lib/lbist/bist.ml: Array Atpg Int64 Lfsr List Misr Netlist
