lib/lbist/misr.ml: Int64 Lfsr
